package coaxial

import (
	"bytes"
	"strings"
	"testing"
)

func TestCapacityStudy(t *testing.T) {
	rows, err := CapacityStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("capacity rows: %d", len(rows))
	}
	savingsAtHigh := false
	for _, r := range rows {
		if r.Baseline.TotalGB < r.TargetGB || r.Coaxial.TotalGB < r.TargetGB {
			t.Errorf("%d GB: plan below target", r.TargetGB)
		}
		if r.TargetGB >= 1536 && r.CostSaving > 0 {
			savingsAtHigh = true
		}
	}
	if !savingsAtHigh {
		t.Error("no cost savings at high capacity (§IV-E claim)")
	}
	var buf bytes.Buffer
	ReportCapacity(&buf, rows)
	if !strings.Contains(buf.String(), "iso-capacity") {
		t.Error("capacity report render")
	}
}

func TestAblationChannelScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation ablation")
	}
	w, _ := WorkloadByName("stream-scale")
	rows, err := AblationChannelScaling(w, []int{1, 2, 4}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	// More channels must help a bandwidth-bound stream, monotonically
	// within noise.
	if rows[2].Speedup <= rows[0].Speedup {
		t.Errorf("4ch (%.2fx) should beat 1ch (%.2fx)", rows[2].Speedup, rows[0].Speedup)
	}
	if rows[2].QueueNS >= rows[0].QueueNS {
		t.Errorf("queue should shrink with channels: %v vs %v", rows[2].QueueNS, rows[0].QueueNS)
	}
	var buf bytes.Buffer
	ReportChannelScaling(&buf, w.Params.Name, rows)
	if !strings.Contains(buf.String(), "channel count") {
		t.Error("render")
	}
}

func TestAblationCALMThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation ablation")
	}
	w, _ := WorkloadByName("Components")
	rows, err := AblationCALMThreshold(w, []float64{0.3, 0.7}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup < 0.9 {
			t.Errorf("R=%.1f: CALM regressed badly (%.2fx)", r.R, r.Speedup)
		}
	}
	// A lower threshold throttles more: FN rate should not decrease as R
	// drops.
	if rows[0].FNPct < rows[1].FNPct-1 {
		t.Errorf("FN at R=0.3 (%.1f%%) should be >= FN at R=0.7 (%.1f%%)", rows[0].FNPct, rows[1].FNPct)
	}
	var buf bytes.Buffer
	ReportCALMThreshold(&buf, w.Params.Name, rows)
	if !strings.Contains(buf.String(), "CALM_R threshold") {
		t.Error("render")
	}
}

func TestAblationMSHRs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation ablation")
	}
	w, _ := WorkloadByName("kmeans")
	rows, err := AblationMSHRs(w, []int{4, 16}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	// COAXIAL gains more from extra MLP than the bandwidth-bound baseline.
	gain4 := rows[0].CoaxialIPC
	gain16 := rows[1].CoaxialIPC
	if gain16 <= gain4 {
		t.Errorf("COAXIAL should scale with MSHRs: %.3f -> %.3f", gain4, gain16)
	}
	var buf bytes.Buffer
	ReportMSHRs(&buf, w.Params.Name, rows)
	if !strings.Contains(buf.String(), "MSHR budget") {
		t.Error("render")
	}
}

func TestAblationBankPermutation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation ablation")
	}
	w, _ := WorkloadByName("stream-copy")
	rows, err := AblationBankPermutation(w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The permutation must never hurt, and should win clearly on the
		// bandwidth-bound baseline where bank conflicts bind.
		if r.Gain < 0.97 {
			t.Errorf("%s: permutation regressed (%.2fx)", r.Config, r.Gain)
		}
	}
	if rows[0].Gain < 1.2 {
		t.Errorf("baseline permutation gain %.2fx; expected a clear win on streams", rows[0].Gain)
	}
	var buf bytes.Buffer
	ReportBankPermutation(&buf, w.Params.Name, rows)
	if !strings.Contains(buf.String(), "permutation") {
		t.Error("render")
	}
}

func TestAblationIsoPin(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation ablation")
	}
	w, _ := WorkloadByName("stream-add")
	rows, err := AblationIsoPin([]Workload{w}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// On a bandwidth-bound stream the fifth channel should help or tie.
	if r.Speedup5 < r.Speedup4*0.95 {
		t.Errorf("5x (%.2fx) regressed badly vs 4x (%.2fx)", r.Speedup5, r.Speedup4)
	}
	var buf bytes.Buffer
	ReportIsoPin(&buf, rows)
	if !strings.Contains(buf.String(), "iso-pin") {
		t.Error("render")
	}
}

func TestAblationWriteDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation ablation")
	}
	w, _ := WorkloadByName("cam4") // most write-intensive workload
	rows, err := AblationWriteDrain(w, [][2]int{{8, 2}, {36, 12}, {46, 40}}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.IPC <= 0 {
			t.Errorf("watermarks %d/%d wedge the controller", r.High, r.Low)
		}
	}
	var buf bytes.Buffer
	ReportWriteDrain(&buf, w.Params.Name, rows)
	if !strings.Contains(buf.String(), "watermarks") {
		t.Error("render")
	}
}

func TestAblationSameBankRefresh(t *testing.T) {
	rows, err := AblationSameBankRefresh([]float64{0.1, 0.4}, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SameBankP99 >= r.AllBankP99 {
			t.Errorf("util %.0f%%: REFsb p99 %.0f not below all-bank %.0f",
				r.Util*100, r.SameBankP99, r.AllBankP99)
		}
	}
	var buf bytes.Buffer
	ReportSameBankRefresh(&buf, rows)
	if !strings.Contains(buf.String(), "REFsb") {
		t.Error("render")
	}
}
