package clock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCycles(t *testing.T) {
	cases := []struct {
		ns   float64
		want int64
	}{
		{0, 0},
		{12.5, 30},
		{2.5, 6},
		{50, 120},
		{0.41667, 1},
		{-5, 0},
	}
	for _, c := range cases {
		if got := Cycles(c.ns); got != c.want {
			t.Errorf("Cycles(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestNSRoundTrip(t *testing.T) {
	f := func(c uint16) bool {
		cy := int64(c)
		back := Cycles(NS(cy))
		return back == cy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesPerCycle(t *testing.T) {
	// 38.4 GB/s over a 2.4 GHz clock = 16 bytes per cycle.
	if got := BytesPerCycle(38.4); math.Abs(got-16) > 1e-9 {
		t.Errorf("BytesPerCycle(38.4) = %v, want 16", got)
	}
}

func TestSerializationCycles(t *testing.T) {
	// 64B at 26 GB/s ~ 2.46 ns ~ 6 cycles (paper: 2.5 ns).
	if got := SerializationCycles(64, 26); got != 6 {
		t.Errorf("64B @ 26GB/s = %d cycles, want 6", got)
	}
	// 64B at 13 GB/s ~ 4.9 ns ~ 12 cycles (paper quotes 5.5 ns).
	if got := SerializationCycles(64, 13); got < 12 || got > 14 {
		t.Errorf("64B @ 13GB/s = %d cycles, want 12-14", got)
	}
	// Degenerate inputs floor at one cycle.
	if got := SerializationCycles(1, 1000); got != 1 {
		t.Errorf("tiny message = %d cycles, want 1", got)
	}
	if got := SerializationCycles(64, 0); got != 1 {
		t.Errorf("zero goodput = %d cycles, want 1 (guard)", got)
	}
}

func TestSerializationMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a)+1, int(b)+1
		if x > y {
			x, y = y, x
		}
		return SerializationCycles(x, 10) <= SerializationCycles(y, 10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
