// Package clock provides time-base conversions for the COAXIAL simulator.
//
// The simulated CPU runs at 2.4 GHz and DDR5-4800's command clock is also
// 2.4 GHz (4800 MT/s with two transfers per clock), so the whole simulator
// conveniently runs on a single cycle domain: one cycle = 1/2.4 ns.
package clock

// FreqGHz is the frequency of the unified simulation clock domain.
const FreqGHz = 2.4

// CyclePS is the duration of one simulation cycle in picoseconds.
const CyclePS = 1e3 / FreqGHz // 416.67 ps

// Cycles converts a duration in nanoseconds to a whole number of cycles,
// rounding to nearest. Latency parameters quoted in ns by the paper (CXL
// port latency, serialization delays) are converted with this.
func Cycles(ns float64) int64 {
	c := int64(ns*FreqGHz + 0.5)
	if c < 0 {
		return 0
	}
	return c
}

// NS converts a cycle count back to nanoseconds.
func NS(cycles int64) float64 {
	return float64(cycles) / FreqGHz
}

// BytesPerCycle converts a bandwidth in GB/s into bytes transferred per
// simulation cycle. 1 GB/s = 1e9 bytes/s; one cycle = 1/(2.4e9) s.
func BytesPerCycle(gbps float64) float64 {
	return gbps / FreqGHz
}

// SerializationCycles returns the number of cycles a message of size bytes
// occupies a link of the given goodput (GB/s), rounded up to at least 1.
func SerializationCycles(bytes int, gbps float64) int64 {
	if gbps <= 0 {
		return 1
	}
	c := int64(float64(bytes)/BytesPerCycle(gbps) + 0.9999)
	if c < 1 {
		return 1
	}
	return c
}
