package area

import (
	"math"
	"testing"
)

func TestTableIIReproducesPaper(t *testing.T) {
	cfgs := TableII()
	if len(cfgs) != 5 {
		t.Fatalf("config space has %d rows, want 5", len(cfgs))
	}
	want := map[string]struct {
		relBW   float64
		relArea float64
		areaTol float64
	}{
		"DDR-based":    {1, 1.00, 0.001},
		"COAXIAL-5x":   {5, 1.17, 0.01},
		"COAXIAL-2x":   {2, 1.01, 0.01},
		"COAXIAL-4x":   {4, 1.01, 0.01},
		"COAXIAL-asym": {8, 1.01, 0.01},
	}
	for _, c := range cfgs {
		w, ok := want[c.Name]
		if !ok {
			t.Errorf("unexpected config %q", c.Name)
			continue
		}
		if got := c.RelativeMemBW(); math.Abs(got-w.relBW) > 0.001 {
			t.Errorf("%s: relative BW %.2f, want %.2f", c.Name, got, w.relBW)
		}
		if got := c.RelativeArea(); math.Abs(got-w.relArea) > w.areaTol {
			t.Errorf("%s: relative area %.3f, want %.2f (paper Table II)", c.Name, got, w.relArea)
		}
	}
}

func TestIsoPinConstraint(t *testing.T) {
	cfgs := TableII()
	base, fivex := cfgs[0], cfgs[1]
	if base.MemoryPins() != fivex.MemoryPins() {
		t.Errorf("COAXIAL-5x is the iso-pin design: %d vs %d pins",
			fivex.MemoryPins(), base.MemoryPins())
	}
	// 160 pins buy 5 x8 CXL channels (32 pins each).
	if PinsPerDDRChannel/PinsPerX8Channel != 5 {
		t.Errorf("pin arithmetic: %d DDR pins / %d CXL pins != 5", PinsPerDDRChannel, PinsPerX8Channel)
	}
}

func TestPCIeControllerSmallerThanDDR(t *testing.T) {
	// Paper: an x8 PCIe controller is 55% of a DDR controller's area.
	ratio := PCIeX8 / DDRChannel
	if math.Abs(ratio-0.55) > 0.01 {
		t.Errorf("PCIe/DDR area ratio %.3f, want ~0.55", ratio)
	}
}

func TestFig1Series(t *testing.T) {
	norm := NormalizedToPCIe1()
	if norm["PCIe-1.0"] != 1.0 {
		t.Errorf("normalization anchor: %v", norm["PCIe-1.0"])
	}
	gap := BandwidthPerPinGap()
	if gap < 3.5 || gap < 4.0 && gap > 4.5 {
		t.Errorf("PCIe5/DDR5 gap %.2f, want ~4x (paper's headline)", gap)
	}
	if gap < 3.9 || gap > 4.3 {
		t.Errorf("PCIe5/DDR5 gap %.2f outside [3.9, 4.3]", gap)
	}
	// Each DDR generation must fall below the contemporary PCIe point.
	series := Fig1Series()
	byName := map[string]InterfaceGen{}
	for _, g := range series {
		byName[g.Name] = g
	}
	if byName["DDR5-4800"].GBsPerPin >= byName["PCIe-5.0"].GBsPerPin {
		t.Error("DDR5 should trail PCIe5 per pin")
	}
	// Monotone within each family.
	prevPCIe, prevDDR := 0.0, 0.0
	for _, g := range series {
		if g.IsPCIe {
			if g.GBsPerPin <= prevPCIe {
				t.Errorf("PCIe series not increasing at %s", g.Name)
			}
			prevPCIe = g.GBsPerPin
		} else {
			if g.GBsPerPin <= prevDDR {
				t.Errorf("DDR series not increasing at %s", g.Name)
			}
			prevDDR = g.GBsPerPin
		}
	}
}

func TestDieAreaComposition(t *testing.T) {
	c := ServerConfig{Cores: 144, LLCPerCore: 2, DDRChannels: 12}
	want := 144*Zen3Core + 288*LLCPerMB + 12*DDRChannel
	if got := c.DieArea(); math.Abs(got-want) > 1e-9 {
		t.Errorf("die area %v, want %v", got, want)
	}
}
