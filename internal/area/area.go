// Package area implements the paper's silicon-area and interface-bandwidth
// models: the relative component areas measured from die shots (Table I),
// the derivation of the COAXIAL configuration space under iso-pin/iso-area
// constraints (Table II), and the DDR-vs-PCIe bandwidth-per-pin series
// (Fig. 1).
package area

// Component areas relative to 1 MB of LLC (Table I), derived from Golden
// Cove (Intel 10 nm) and Zen 3 (TSMC 7 nm) die shots.
const (
	LLCPerMB   = 1.0
	Zen3Core   = 6.5  // including 512 KB L2
	PCIeX8     = 5.9  // x8 PHY + controller
	DDRChannel = 10.8 // PHY + controller
)

// Pin requirements per interface.
const (
	PinsPerDDRChannel = 160 // data + ECC + command/address, CPU-side
	PinsPerPCIeLane   = 4   // 2 TX + 2 RX
	PinsPerX8Channel  = 8 * PinsPerPCIeLane
)

// ServerConfig is one Table II row.
type ServerConfig struct {
	Name       string
	Cores      int
	LLCPerCore float64 // MB
	// DDRChannels / CXLChannels: exactly one is nonzero.
	DDRChannels int
	CXLChannels int
	// DDRPerCXL is the number of DDR channels per type-3 device (2 for
	// COAXIAL-asym).
	DDRPerCXL int
	Comment   string
}

// TableII returns the paper's configuration space for the 144-core server.
func TableII() []ServerConfig {
	return []ServerConfig{
		{Name: "DDR-based", Cores: 144, LLCPerCore: 2, DDRChannels: 12, Comment: "baseline"},
		{Name: "COAXIAL-5x", Cores: 144, LLCPerCore: 2, CXLChannels: 60, DDRPerCXL: 1, Comment: "iso-pin"},
		{Name: "COAXIAL-2x", Cores: 144, LLCPerCore: 2, CXLChannels: 24, DDRPerCXL: 1, Comment: "iso-LLC"},
		{Name: "COAXIAL-4x", Cores: 144, LLCPerCore: 1, CXLChannels: 48, DDRPerCXL: 1, Comment: "balanced"},
		{Name: "COAXIAL-asym", Cores: 144, LLCPerCore: 1, CXLChannels: 48, DDRPerCXL: 2, Comment: "max BW"},
	}
}

// DieArea returns the configuration's die area in LLC-MB-equivalent units
// (cores + LLC + memory interfaces; uncore fabric is common and omitted,
// as in the paper's relative comparison).
func (c ServerConfig) DieArea() float64 {
	a := float64(c.Cores) * Zen3Core
	a += float64(c.Cores) * c.LLCPerCore * LLCPerMB
	a += float64(c.DDRChannels) * DDRChannel
	a += float64(c.CXLChannels) * PCIeX8
	return a
}

// RelativeArea returns the die area normalized to the DDR baseline.
func (c ServerConfig) RelativeArea() float64 {
	base := TableII()[0]
	return c.DieArea() / base.DieArea()
}

// MemoryPins returns the processor pins spent on memory interfaces.
func (c ServerConfig) MemoryPins() int {
	return c.DDRChannels*PinsPerDDRChannel + c.CXLChannels*PinsPerX8Channel
}

// RelativeMemBW returns peak memory bandwidth relative to the baseline
// (each CXL channel fronts DDRPerCXL full DDR channels).
func (c ServerConfig) RelativeMemBW() float64 {
	base := TableII()[0]
	ch := float64(c.DDRChannels)
	if c.CXLChannels > 0 {
		d := c.DDRPerCXL
		if d == 0 {
			d = 1
		}
		ch = float64(c.CXLChannels * d)
	}
	return ch / float64(base.DDRChannels)
}

// InterfaceGen is one point of the Fig. 1 bandwidth-per-pin series.
type InterfaceGen struct {
	Name string
	Year int
	// GBsPerPin is peak bandwidth per processor pin (per direction for
	// PCIe; combined for DDR, as vendors quote them — the gap understates
	// PCIe's advantage, as the paper notes).
	GBsPerPin float64
	IsPCIe    bool
}

// Fig1Series returns bandwidth-per-pin across interface generations.
// PCIe per-lane bandwidths are per direction over 4 pins; DDR channel
// bandwidths are spread over 160 CPU-side pins.
func Fig1Series() []InterfaceGen {
	ddr := func(name string, year int, gbs float64) InterfaceGen {
		return InterfaceGen{Name: name, Year: year, GBsPerPin: gbs / PinsPerDDRChannel}
	}
	pcie := func(name string, year int, lane float64) InterfaceGen {
		return InterfaceGen{Name: name, Year: year, GBsPerPin: lane / PinsPerPCIeLane, IsPCIe: true}
	}
	return []InterfaceGen{
		pcie("PCIe-1.0", 2003, 0.25),
		pcie("PCIe-2.0", 2007, 0.5),
		pcie("PCIe-3.0", 2010, 0.985),
		pcie("PCIe-4.0", 2017, 1.969),
		pcie("PCIe-5.0", 2019, 3.938),
		pcie("PCIe-6.0", 2022, 7.563),
		ddr("DDR-400", 2000, 3.2),
		ddr("DDR2-800", 2003, 6.4),
		ddr("DDR3-1600", 2007, 12.8),
		ddr("DDR4-3200", 2014, 25.6),
		ddr("DDR5-4800", 2021, 38.4),
		ddr("DDR5-6400", 2024, 51.2),
	}
}

// NormalizedToPCIe1 returns the series scaled so PCIe-1.0 is 1.0 (the
// paper's Fig. 1 normalization).
func NormalizedToPCIe1() map[string]float64 {
	series := Fig1Series()
	var ref float64
	for _, g := range series {
		if g.Name == "PCIe-1.0" {
			ref = g.GBsPerPin
		}
	}
	out := make(map[string]float64, len(series))
	for _, g := range series {
		out[g.Name] = g.GBsPerPin / ref
	}
	return out
}

// BandwidthPerPinGap returns the current PCIe5-vs-DDR5 bandwidth-per-pin
// ratio (the paper's headline 4x).
func BandwidthPerPinGap() float64 {
	var pcie5, ddr5 float64
	for _, g := range Fig1Series() {
		switch g.Name {
		case "PCIe-5.0":
			pcie5 = g.GBsPerPin
		case "DDR5-4800":
			ddr5 = g.GBsPerPin
		}
	}
	return pcie5 / ddr5
}
