// Package cache implements the set-associative caches of the simulated
// hierarchy: per-core L1/L2 and the distributed, shared, non-inclusive LLC.
//
// Caches here are timing-functional: lookups and fills mutate the state at
// issue time while latencies are applied by the caller (the hierarchy model
// in internal/sim). This is the standard fast-simulation compromise — it
// preserves hit/miss behaviour, capacity and conflict effects, and dirty
// write-back traffic, which are what the memory-system study needs.
package cache

import "coaxial/internal/memreq"

// Config sizes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyCycles is the lookup (hit) latency.
	LatencyCycles int64
}

// Way metadata is split into two parallel set-major arrays so the tag-match
// scan — the inner loop of every access — touches 8 bytes per way instead
// of a 16-byte struct. tags packs the line address with the state bits
// (tag<<2 | dirty<<1 | valid; an invalid way is stored as 0), and stamps
// holds the LRU clock, which is only read when a full set must choose a
// victim and only written on the matched way.
const (
	tagValid uint64 = 1 << 0
	tagDirty uint64 = 1 << 1
	tagShift        = 2
)

// Cache is a single set-associative write-back, write-allocate cache with
// per-set LRU replacement.
type Cache struct {
	cfg    Config
	sets   int
	mask   uint64
	tags   []uint64 // sets*assoc, set-major: tag<<2 | dirty<<1 | valid
	stamps []uint32 // sets*assoc, set-major: LRU clock at last touch
	clock  uint32
	stats  Stats
	shift  uint // additional index shift above the line offset
	hasher bool // XOR-fold high bits into the index (for shared LLC slices)
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Fills      uint64
	DirtyEvict uint64
	CleanEvict uint64
}

// New constructs a cache. SizeBytes/Assoc must yield a power-of-two set
// count; New panics otherwise (configurations are static and validated at
// system construction).
func New(cfg Config) *Cache {
	if cfg.Assoc < 1 {
		panic("cache: associativity must be >= 1")
	}
	setBytes := cfg.Assoc * memreq.LineSize
	if cfg.SizeBytes%setBytes != 0 {
		panic("cache: size not divisible by assoc*line")
	}
	sets := cfg.SizeBytes / setBytes
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	return &Cache{
		cfg:    cfg,
		sets:   sets,
		mask:   uint64(sets - 1),
		tags:   make([]uint64, sets*cfg.Assoc),
		stamps: make([]uint32, sets*cfg.Assoc),
	}
}

// Clone returns an independent deep copy of the cache, including contents,
// LRU state, and counters. Used to snapshot warmed state between runs.
func (c *Cache) Clone() *Cache {
	d := *c
	d.tags = append([]uint64(nil), c.tags...)
	d.stamps = append([]uint32(nil), c.stamps...)
	return &d
}

// Latency returns the configured hit latency.
func (c *Cache) Latency() int64 { return c.cfg.LatencyCycles }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.sets }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(lineAddr uint64) uint64 {
	// Fold high bits so distinct per-core address spaces spread over sets.
	h := lineAddr ^ (lineAddr >> 17) ^ (lineAddr >> 31)
	return h & c.mask
}

// setBase returns the flat index of lineAddr's set (its first way).
func (c *Cache) setBase(lineAddr uint64) int {
	return int(c.index(lineAddr)) * c.cfg.Assoc
}

// Lookup probes the cache for addr, updating LRU on a hit. If markDirty is
// set and the line hits, it is marked dirty (store hit).
func (c *Cache) Lookup(addr uint64, markDirty bool) bool {
	la := addr >> memreq.LineShift
	base := c.setBase(la)
	tags := c.tags[base : base+c.cfg.Assoc]
	want := la<<tagShift | tagValid
	c.stats.Accesses++
	for i := range tags {
		if tags[i]&^tagDirty == want {
			c.clock++
			c.stamps[base+i] = c.clock
			if markDirty {
				tags[i] |= tagDirty
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Probe checks residency without updating LRU or counters (used by the
// ideal CALM oracle).
func (c *Cache) Probe(addr uint64) bool {
	la := addr >> memreq.LineShift
	base := c.setBase(la)
	tags := c.tags[base : base+c.cfg.Assoc]
	want := la<<tagShift | tagValid
	for i := range tags {
		if tags[i]&^tagDirty == want {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by a fill.
type Victim struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Fill inserts addr (allocating on miss); dirty sets the installed line's
// dirty bit (e.g. an RFO fill or a write-back allocation). The displaced
// victim, if any, is returned for the caller to propagate.
func (c *Cache) Fill(addr uint64, dirty bool) Victim {
	la := addr >> memreq.LineShift
	base := c.setBase(la)
	tags := c.tags[base : base+c.cfg.Assoc]
	want := la<<tagShift | tagValid
	c.stats.Fills++

	// Tag pass: refresh if already present (e.g. a racing fill), otherwise
	// remember the first invalid way. The stamp array is only consulted when
	// every way is valid and a victim must be chosen.
	inv := -1
	for i := range tags {
		t := tags[i]
		if t&^tagDirty == want {
			c.clock++
			c.stamps[base+i] = c.clock
			if dirty {
				tags[i] |= tagDirty
			}
			return Victim{}
		}
		if t&tagValid == 0 && inv < 0 {
			inv = i
		}
	}
	var out Victim
	vi := inv
	if vi < 0 {
		// Full set: evict the LRU way (first way with the minimal stamp).
		stamps := c.stamps[base : base+c.cfg.Assoc]
		vi = 0
		oldest := stamps[0]
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < oldest {
				oldest = stamps[i]
				vi = i
			}
		}
		out = Victim{
			Addr:  tags[vi] >> tagShift << memreq.LineShift,
			Dirty: tags[vi]&tagDirty != 0,
			Valid: true,
		}
		if out.Dirty {
			c.stats.DirtyEvict++
		} else {
			c.stats.CleanEvict++
		}
	}
	c.clock++
	t := want
	if dirty {
		t |= tagDirty
	}
	tags[vi] = t
	c.stamps[base+vi] = c.clock
	return out
}

// Touch reads addr's set without mutating anything, one word per 64 bytes
// of way metadata. Callers about to Fill a batch of scattered addresses use
// it to start the host-memory misses for every set in the batch before the
// (order-sensitive) fills run, overlapping latencies that would otherwise
// serialize. The returned sum must be kept live by the caller so the loads
// are not optimized away.
func (c *Cache) Touch(addr uint64) uint64 {
	base := c.setBase(addr >> memreq.LineShift)
	tags := c.tags[base : base+c.cfg.Assoc]
	var x uint64
	for i := 0; i < len(tags); i += 8 {
		x += tags[i]
	}
	return x
}

// Invalidate removes addr if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := addr >> memreq.LineShift
	base := c.setBase(la)
	tags := c.tags[base : base+c.cfg.Assoc]
	want := la<<tagShift | tagValid
	for i := range tags {
		if tags[i]&^tagDirty == want {
			d := tags[i]&tagDirty != 0
			tags[i] = 0
			c.stamps[base+i] = 0
			return true, d
		}
	}
	return false, false
}
