// Package cache implements the set-associative caches of the simulated
// hierarchy: per-core L1/L2 and the distributed, shared, non-inclusive LLC.
//
// Caches here are timing-functional: lookups and fills mutate the state at
// issue time while latencies are applied by the caller (the hierarchy model
// in internal/sim). This is the standard fast-simulation compromise — it
// preserves hit/miss behaviour, capacity and conflict effects, and dirty
// write-back traffic, which are what the memory-system study needs.
package cache

import "coaxial/internal/memreq"

// Config sizes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyCycles is the lookup (hit) latency.
	LatencyCycles int64
}

// line is one cache line's bookkeeping. Tags store the full line address
// (address >> 6) for simplicity; the set index is derived from it.
type line struct {
	tag   uint64
	stamp uint32 // LRU clock value at last touch
	valid bool
	dirty bool
}

// Cache is a single set-associative write-back, write-allocate cache with
// per-set LRU replacement.
type Cache struct {
	cfg    Config
	sets   int
	mask   uint64
	lines  []line // sets*assoc, set-major
	clock  uint32
	stats  Stats
	shift  uint // additional index shift above the line offset
	hasher bool // XOR-fold high bits into the index (for shared LLC slices)
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Fills      uint64
	DirtyEvict uint64
	CleanEvict uint64
}

// New constructs a cache. SizeBytes/Assoc must yield a power-of-two set
// count; New panics otherwise (configurations are static and validated at
// system construction).
func New(cfg Config) *Cache {
	if cfg.Assoc < 1 {
		panic("cache: associativity must be >= 1")
	}
	setBytes := cfg.Assoc * memreq.LineSize
	if cfg.SizeBytes%setBytes != 0 {
		panic("cache: size not divisible by assoc*line")
	}
	sets := cfg.SizeBytes / setBytes
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		mask:  uint64(sets - 1),
		lines: make([]line, sets*cfg.Assoc),
	}
}

// Latency returns the configured hit latency.
func (c *Cache) Latency() int64 { return c.cfg.LatencyCycles }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.sets }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) index(lineAddr uint64) uint64 {
	// Fold high bits so distinct per-core address spaces spread over sets.
	h := lineAddr ^ (lineAddr >> 17) ^ (lineAddr >> 31)
	return h & c.mask
}

func (c *Cache) set(lineAddr uint64) []line {
	i := c.index(lineAddr)
	return c.lines[i*uint64(c.cfg.Assoc) : (i+1)*uint64(c.cfg.Assoc)]
}

// Lookup probes the cache for addr, updating LRU on a hit. If markDirty is
// set and the line hits, it is marked dirty (store hit).
func (c *Cache) Lookup(addr uint64, markDirty bool) bool {
	la := addr >> memreq.LineShift
	set := c.set(la)
	c.stats.Accesses++
	for i := range set {
		if set[i].valid && set[i].tag == la {
			c.clock++
			set[i].stamp = c.clock
			if markDirty {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Probe checks residency without updating LRU or counters (used by the
// ideal CALM oracle).
func (c *Cache) Probe(addr uint64) bool {
	la := addr >> memreq.LineShift
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by a fill.
type Victim struct {
	Addr  uint64
	Dirty bool
	Valid bool
}

// Fill inserts addr (allocating on miss); dirty sets the installed line's
// dirty bit (e.g. an RFO fill or a write-back allocation). The displaced
// victim, if any, is returned for the caller to propagate.
func (c *Cache) Fill(addr uint64, dirty bool) Victim {
	la := addr >> memreq.LineShift
	set := c.set(la)
	c.stats.Fills++

	// One pass: refresh if already present (e.g. a racing fill), otherwise
	// remember the first invalid way and the LRU way (first way with the
	// minimal stamp — the LRU result is only used when every way is valid).
	inv := -1
	vi := 0
	oldest := set[0].stamp
	for i := range set {
		w := &set[i]
		if w.valid {
			if w.tag == la {
				c.clock++
				w.stamp = c.clock
				if dirty {
					w.dirty = true
				}
				return Victim{}
			}
			if w.stamp < oldest {
				oldest = w.stamp
				vi = i
			}
		} else if inv < 0 {
			inv = i
		}
	}
	var out Victim
	if inv >= 0 {
		vi = inv
	} else {
		out = Victim{
			Addr:  set[vi].tag << memreq.LineShift,
			Dirty: set[vi].dirty,
			Valid: true,
		}
		if out.Dirty {
			c.stats.DirtyEvict++
		} else {
			c.stats.CleanEvict++
		}
	}
	c.clock++
	set[vi] = line{tag: la, stamp: c.clock, valid: true, dirty: dirty}
	return out
}

// Touch reads addr's set without mutating anything, one word per 64 bytes
// of way metadata. Callers about to Fill a batch of scattered addresses use
// it to start the host-memory misses for every set in the batch before the
// (order-sensitive) fills run, overlapping latencies that would otherwise
// serialize. The returned sum must be kept live by the caller so the loads
// are not optimized away.
func (c *Cache) Touch(addr uint64) uint64 {
	set := c.set(addr >> memreq.LineShift)
	var x uint64
	for i := 0; i < len(set); i += 4 {
		x += set[i].tag
	}
	return x
}

// Invalidate removes addr if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := addr >> memreq.LineShift
	set := c.set(la)
	for i := range set {
		if set[i].valid && set[i].tag == la {
			d := set[i].dirty
			set[i] = line{}
			return true, d
		}
	}
	return false, false
}
