package cache

import "coaxial/internal/memreq"

// LLC is the distributed, shared last-level cache: one slice per tile,
// address-interleaved. It is non-inclusive of the private levels; fills
// install lines on memory fill, and dirty L2 victims are absorbed
// (allocated) on write-back, victim-cache style.
type LLC struct {
	slices []*Cache
	lat    int64
}

// NewLLC builds an LLC of n slices, each sliceBytes large with the given
// associativity and lookup latency.
func NewLLC(n, sliceBytes, assoc int, latency int64) *LLC {
	l := &LLC{lat: latency}
	for i := 0; i < n; i++ {
		l.slices = append(l.slices, New(Config{
			SizeBytes:     sliceBytes,
			Assoc:         assoc,
			LatencyCycles: latency,
		}))
	}
	return l
}

// Clone returns an independent deep copy of all slices (see Cache.Clone).
func (l *LLC) Clone() *LLC {
	d := &LLC{lat: l.lat, slices: make([]*Cache, len(l.slices))}
	for i, s := range l.slices {
		d.slices[i] = s.Clone()
	}
	return d
}

// Slices returns the number of slices.
func (l *LLC) Slices() int { return len(l.slices) }

// Latency returns the slice lookup latency.
func (l *LLC) Latency() int64 { return l.lat }

// SliceOf maps an address to its home slice index.
func (l *LLC) SliceOf(addr uint64) int {
	if len(l.slices) == 1 {
		return 0
	}
	line := addr >> memreq.LineShift
	h := line ^ (line >> 10) ^ (line >> 21)
	return int(h % uint64(len(l.slices)))
}

// Slice returns slice i.
func (l *LLC) Slice(i int) *Cache { return l.slices[i] }

// Lookup probes the home slice (LRU update on hit).
func (l *LLC) Lookup(addr uint64, markDirty bool) bool {
	return l.slices[l.SliceOf(addr)].Lookup(addr, markDirty)
}

// Probe checks residency without side effects.
func (l *LLC) Probe(addr uint64) bool {
	return l.slices[l.SliceOf(addr)].Probe(addr)
}

// Touch reads addr's home set without side effects (see Cache.Touch).
func (l *LLC) Touch(addr uint64) uint64 {
	return l.slices[l.SliceOf(addr)].Touch(addr)
}

// Fill installs addr in its home slice, returning any displaced victim.
func (l *LLC) Fill(addr uint64, dirty bool) Victim {
	return l.slices[l.SliceOf(addr)].Fill(addr, dirty)
}

// Stats sums slice counters.
func (l *LLC) Stats() Stats {
	var total Stats
	for _, s := range l.slices {
		st := s.Stats()
		total.Accesses += st.Accesses
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Fills += st.Fills
		total.DirtyEvict += st.DirtyEvict
		total.CleanEvict += st.CleanEvict
	}
	return total
}

// ResetStats zeroes all slice counters.
func (l *LLC) ResetStats() {
	for _, s := range l.slices {
		s.ResetStats()
	}
}
