package cache

// DebugDirtyCount reports (dirty, valid) line counts (test helper).
func (c *Cache) DebugDirtyCount() (dirty, valid int) {
	for i := range c.lines {
		if c.lines[i].valid {
			valid++
			if c.lines[i].dirty {
				dirty++
			}
		}
	}
	return
}
