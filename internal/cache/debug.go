package cache

// DebugDirtyCount reports (dirty, valid) line counts (test helper).
func (c *Cache) DebugDirtyCount() (dirty, valid int) {
	for _, t := range c.tags {
		if t&tagValid != 0 {
			valid++
			if t&tagDirty != 0 {
				dirty++
			}
		}
	}
	return
}
