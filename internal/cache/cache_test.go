package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coaxial/internal/memreq"
)

func small() *Cache {
	return New(Config{SizeBytes: 4 * 64 * 2, Assoc: 2, LatencyCycles: 4}) // 4 sets x 2 ways
}

func TestNewValidation(t *testing.T) {
	defertest := func(name string, cfg Config) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New(cfg)
		})
	}
	defertest("zero-assoc", Config{SizeBytes: 1024, Assoc: 0})
	defertest("non-divisible", Config{SizeBytes: 100, Assoc: 1})
	defertest("non-pow2-sets", Config{SizeBytes: 3 * 64, Assoc: 1})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Lookup(0x1000, false) {
		t.Error("cold lookup must miss")
	}
	c.Fill(0x1000, false)
	if !c.Lookup(0x1000, false) {
		t.Error("filled line must hit")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 64, Assoc: 2, LatencyCycles: 1}) // 1 set, 2 ways
	c.Fill(0*64, false)
	c.Fill(1*64, false)
	c.Lookup(0*64, false) // touch 0: 1 is now LRU
	v := c.Fill(2*64, false)
	if !v.Valid || v.Addr != 1*64 {
		t.Errorf("expected eviction of line 1, got %+v", v)
	}
	if !c.Probe(0 * 64) {
		t.Error("MRU line evicted")
	}
}

func TestDirtyTracking(t *testing.T) {
	c := New(Config{SizeBytes: 1 * 64, Assoc: 1, LatencyCycles: 1})
	c.Fill(0, false)
	c.Lookup(0, true) // store hit marks dirty
	v := c.Fill(64, false)
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Errorf("dirty eviction expected, got %+v", v)
	}
	v2 := c.Fill(128, false)
	if v2.Dirty {
		t.Error("clean line evicted dirty")
	}
	st := c.Stats()
	if st.DirtyEvict != 1 || st.CleanEvict != 1 {
		t.Errorf("evict stats: %+v", st)
	}
}

func TestFillDirtyFlag(t *testing.T) {
	c := New(Config{SizeBytes: 1 * 64, Assoc: 1, LatencyCycles: 1})
	c.Fill(0, true) // RFO-style dirty install
	if v := c.Fill(64, false); !v.Dirty {
		t.Error("dirty install lost")
	}
}

func TestRefillRefreshesAndMerges(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 64, Assoc: 2, LatencyCycles: 1})
	c.Fill(0, false)
	c.Fill(64, false)
	// Re-fill line 0 with dirty: no victim, dirty bit set, LRU refresh.
	if v := c.Fill(0, true); v.Valid {
		t.Errorf("refill produced victim %+v", v)
	}
	v := c.Fill(128, false) // should evict 64 (LRU), not 0
	if v.Addr != 64 {
		t.Errorf("evicted %#x, want 64", v.Addr)
	}
	v2 := c.Fill(192, false) // now 0 goes, dirty
	if v2.Addr != 0 || !v2.Dirty {
		t.Errorf("expected dirty 0, got %+v", v2)
	}
}

func TestProbeNoSideEffects(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 64, Assoc: 2, LatencyCycles: 1})
	c.Fill(0, false)
	c.Fill(64, false)
	before := c.Stats()
	c.Probe(0) // must not touch LRU or stats
	if c.Stats() != before {
		t.Error("probe mutated stats")
	}
	// 0 must still be LRU (fill order): eviction takes 0.
	if v := c.Fill(128, false); v.Addr != 0 {
		t.Errorf("probe changed LRU: evicted %#x", v.Addr)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Probe(0) {
		t.Error("line survived invalidate")
	}
	if p, _ := c.Invalidate(0xdead000); p {
		t.Error("invalidate of absent line reported present")
	}
}

// TestCapacityProperty: after any access sequence the cache never holds
// more valid lines than its capacity, and each set at most Assoc.
func TestCapacityProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{SizeBytes: 8 * 64 * 4, Assoc: 4, LatencyCycles: 1})
		for _, op := range ops {
			addr := uint64(op) * 64
			if !c.Lookup(addr, op%3 == 0) {
				c.Fill(addr, op%5 == 0)
			}
		}
		dirty, valid := c.DebugDirtyCount()
		return valid <= 8*4 && dirty <= valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestInclusionOfRecentLines: with fewer distinct lines than capacity,
// everything filled remains resident.
func TestInclusionOfRecentLines(t *testing.T) {
	c := New(Config{SizeBytes: 64 * 64 * 8, Assoc: 8, LatencyCycles: 1})
	rng := rand.New(rand.NewSource(5))
	lines := make([]uint64, 100) // 100 distinct lines << 512 capacity
	for i := range lines {
		lines[i] = uint64(rng.Intn(1<<20)) * 64
	}
	for _, l := range lines {
		if !c.Lookup(l, false) {
			c.Fill(l, false)
		}
	}
	for _, l := range lines {
		if !c.Probe(l) {
			t.Fatalf("line %#x evicted below capacity", l)
		}
	}
}

func TestLLCSliceMapping(t *testing.T) {
	l := NewLLC(12, 1<<20, 16, 20)
	if l.Slices() != 12 || l.Latency() != 20 {
		t.Fatalf("geometry: %d slices lat %d", l.Slices(), l.Latency())
	}
	// Stable mapping.
	for i := 0; i < 100; i++ {
		a := uint64(i) * 977 * 64
		if l.SliceOf(a) != l.SliceOf(a) {
			t.Fatal("slice mapping unstable")
		}
	}
	// Spread: sequential lines cover most slices.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[l.SliceOf(uint64(i)*64)] = true
	}
	if len(seen) < 10 {
		t.Errorf("sequential lines cover only %d/12 slices", len(seen))
	}
}

func TestLLCLookupFillStats(t *testing.T) {
	l := NewLLC(4, 64*64*4, 4, 20)
	if l.Lookup(0x5000, false) {
		t.Error("cold LLC lookup hit")
	}
	l.Fill(0x5000, false)
	if !l.Lookup(0x5000, false) {
		t.Error("LLC fill lost")
	}
	if !l.Probe(0x5000) {
		t.Error("LLC probe lost")
	}
	st := l.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Fills != 1 {
		t.Errorf("LLC stats: %+v", st)
	}
	l.ResetStats()
	if l.Stats().Accesses != 0 {
		t.Error("LLC stats reset")
	}
}

func TestLLCSingleSlice(t *testing.T) {
	l := NewLLC(1, 64*64, 4, 20)
	if l.SliceOf(0xABCDEF00) != 0 {
		t.Error("single-slice mapping")
	}
}

// TestSetIsolation: filling one set never evicts lines from another.
func TestSetIsolation(t *testing.T) {
	c := New(Config{SizeBytes: 16 * 64 * 2, Assoc: 2, LatencyCycles: 1})
	anchor := uint64(0)
	c.Fill(anchor, false)
	set0 := c.index(anchor >> memreq.LineShift)
	// Hammer a different set.
	hammered := 0
	for i := uint64(1); hammered < 64; i++ {
		a := i * 64
		if c.index(a>>memreq.LineShift) != set0 {
			c.Fill(a, false)
			hammered++
		}
	}
	if !c.Probe(anchor) {
		t.Error("cross-set eviction")
	}
}
