package noc

import (
	"testing"
	"testing/quick"
)

func TestCoreTilePlacement(t *testing.T) {
	m := Default12()
	if m.W*m.H != 12 {
		t.Fatalf("default mesh is %dx%d, want 12 tiles", m.W, m.H)
	}
	seen := map[Tile]bool{}
	for i := 0; i < 12; i++ {
		tl := m.CoreTile(i)
		if tl.X < 0 || tl.X >= m.W || tl.Y < 0 || tl.Y >= m.H {
			t.Errorf("core %d tile %v out of bounds", i, tl)
		}
		if seen[tl] {
			t.Errorf("core %d shares tile %v", i, tl)
		}
		seen[tl] = true
	}
	// Wrap-around for out-of-range cores.
	if m.CoreTile(12) != m.CoreTile(0) {
		t.Error("core tile wrap")
	}
}

func TestSliceColocation(t *testing.T) {
	m := Default12()
	for i := 0; i < 12; i++ {
		if m.SliceTile(i) != m.CoreTile(i) {
			t.Errorf("slice %d not colocated", i)
		}
	}
}

func TestHopsMetric(t *testing.T) {
	a, b, c := Tile{0, 0}, Tile{3, 2}, Tile{1, 1}
	if Hops(a, b) != 5 {
		t.Errorf("hops = %d, want 5", Hops(a, b))
	}
	// Symmetry and triangle inequality (property).
	f := func(ax, ay, bx, by, cx, cy uint8) bool {
		p := Tile{int(ax % 8), int(ay % 8)}
		q := Tile{int(bx % 8), int(by % 8)}
		r := Tile{int(cx % 8), int(cy % 8)}
		if Hops(p, q) != Hops(q, p) {
			return false
		}
		return Hops(p, r) <= Hops(p, q)+Hops(q, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = c
}

func TestLatency(t *testing.T) {
	m := Default12()
	// Same tile still pays one hop (router traversal).
	if got := m.Latency(Tile{1, 1}, Tile{1, 1}); got != 3 {
		t.Errorf("same-tile latency = %d, want 3", got)
	}
	if got := m.Latency(Tile{0, 0}, Tile{3, 2}); got != 15 {
		t.Errorf("corner latency = %d, want 15", got)
	}
}

func TestPerimeter(t *testing.T) {
	m := Default12()
	per := m.perimeter()
	// A 4x3 mesh has 4+4+2 = 10 boundary tiles.
	if len(per) != 10 {
		t.Fatalf("perimeter has %d tiles, want 10", len(per))
	}
	seen := map[Tile]bool{}
	for _, tl := range per {
		if seen[tl] {
			t.Errorf("duplicate perimeter tile %v", tl)
		}
		seen[tl] = true
		if tl.X != 0 && tl.X != m.W-1 && tl.Y != 0 && tl.Y != m.H-1 {
			t.Errorf("tile %v not on boundary", tl)
		}
	}
}

func TestPerimeterDegenerate(t *testing.T) {
	if got := (Mesh{W: 4, H: 1}).perimeter(); len(got) != 4 {
		t.Errorf("1-row mesh perimeter = %d tiles", len(got))
	}
	if got := (Mesh{W: 1, H: 3}).perimeter(); len(got) != 3 {
		t.Errorf("1-col mesh perimeter = %d tiles", len(got))
	}
	if got := (Mesh{}).perimeter(); len(got) != 0 {
		t.Errorf("empty mesh perimeter = %d tiles", len(got))
	}
}

func TestPortTileSpread(t *testing.T) {
	m := Default12()
	for _, total := range []int{1, 2, 4, 5, 8} {
		seen := map[Tile]bool{}
		for ch := 0; ch < total; ch++ {
			tl := m.PortTile(ch, total)
			if tl.X < 0 || tl.X >= m.W || tl.Y < 0 || tl.Y >= m.H {
				t.Errorf("port %d/%d tile %v out of bounds", ch, total, tl)
			}
			seen[tl] = true
		}
		// Up to the perimeter size, ports should spread to distinct tiles.
		want := total
		if want > 10 {
			want = 10
		}
		if len(seen) < want {
			t.Errorf("%d ports share tiles: only %d distinct", total, len(seen))
		}
	}
	// Degenerate total.
	if m.PortTile(0, 0) != m.PortTile(0, 1) {
		t.Error("zero total should behave as one port")
	}
}
