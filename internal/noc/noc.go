// Package noc models the on-chip 2D mesh interconnect as a hop-latency
// model: 3 cycles per hop over Manhattan routes (paper Table III). Each
// core tile hosts an LLC slice; memory interface ports (DDR PHYs or CXL
// controllers) sit on the mesh perimeter.
//
// Link contention is not modelled: the paper accounts NoC time as a pure
// per-hop latency and its on-chip component is dominated by distance, not
// congestion, at the simulated scales.
package noc

// Mesh is a W x H tile grid.
type Mesh struct {
	W, H int
	// HopCycles is the per-hop latency (3 in the paper).
	HopCycles int64
}

// Default12 returns the 4x3 mesh used for the 12-core simulated systems.
func Default12() Mesh { return Mesh{W: 4, H: 3, HopCycles: 3} }

// Tile is a mesh coordinate.
type Tile struct{ X, Y int }

// CoreTile returns the tile of core i (row-major placement).
func (m Mesh) CoreTile(i int) Tile {
	n := m.W * m.H
	if n > 0 {
		i %= n
		if i < 0 {
			i += n
		}
	}
	return Tile{X: i % m.W, Y: i / m.W}
}

// SliceTile returns the tile hosting LLC slice i (colocated with core i).
func (m Mesh) SliceTile(i int) Tile { return m.CoreTile(i) }

// PortTile returns the tile adjacent to memory interface port ch of
// total ports, distributed around the mesh perimeter so channels spread
// evenly (matching a pin-ring floorplan).
func (m Mesh) PortTile(ch, total int) Tile {
	if total < 1 {
		total = 1
	}
	perim := m.perimeter()
	if len(perim) == 0 {
		return Tile{}
	}
	idx := ch * len(perim) / total
	if idx >= len(perim) {
		idx = len(perim) - 1
	}
	return perim[idx]
}

// perimeter enumerates boundary tiles clockwise from the origin.
func (m Mesh) perimeter() []Tile {
	var ts []Tile
	if m.W <= 0 || m.H <= 0 {
		return ts
	}
	if m.H == 1 {
		for x := 0; x < m.W; x++ {
			ts = append(ts, Tile{x, 0})
		}
		return ts
	}
	if m.W == 1 {
		for y := 0; y < m.H; y++ {
			ts = append(ts, Tile{0, y})
		}
		return ts
	}
	for x := 0; x < m.W; x++ {
		ts = append(ts, Tile{x, 0})
	}
	for y := 1; y < m.H; y++ {
		ts = append(ts, Tile{m.W - 1, y})
	}
	for x := m.W - 2; x >= 0; x-- {
		ts = append(ts, Tile{x, m.H - 1})
	}
	for y := m.H - 2; y >= 1; y-- {
		ts = append(ts, Tile{0, y})
	}
	return ts
}

// Hops returns the Manhattan distance between two tiles.
func Hops(a, b Tile) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Latency returns the traversal latency between two tiles in cycles. A
// same-tile transfer still costs one hop (router injection/ejection).
func (m Mesh) Latency(a, b Tile) int64 {
	h := Hops(a, b)
	if h == 0 {
		h = 1
	}
	return int64(h) * m.HopCycles
}
