package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"coaxial"
)

// JobState is one node of the job state machine:
//
//	queued ──► running ──► done
//	   │           ├─────► failed
//	   └───────────┴─────► canceled
//
// Transitions happen only inside the store, under its lock.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// jobStates lists every state in lifecycle order (metrics iterate this
// slice — never a map — so output order is deterministic).
var jobStates = []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}

// terminal reports whether s is an end state.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// PointResult is one completed (or salvaged) point on the wire.
type PointResult struct {
	Index int    `json:"index"`
	Label string `json:"label"`

	Result coaxial.Result      `json:"result"`
	Rack   *coaxial.RackResult `json:"rack,omitempty"`

	// Partial marks measurements salvaged from a canceled window: real
	// simulated data, shorter window than requested.
	Partial bool   `json:"partial,omitempty"`
	Error   string `json:"error,omitempty"`
}

// ProgressEvent is one per-window progress observation on the wire.
type ProgressEvent struct {
	Point   int    `json:"point"`
	Label   string `json:"label"`
	Phase   string `json:"phase"`
	Cycles  int64  `json:"cycles"`
	Retired uint64 `json:"retired"`
	Target  uint64 `json:"target"`
}

// JobStatus is the GET /v1/jobs/{id} payload: metadata timestamps come
// from the injected Clock; everything under Results is simulated data.
type JobStatus struct {
	ID         string         `json:"id"`
	Kind       string         `json:"kind"`
	State      JobState       `json:"state"`
	Created    time.Time      `json:"created"`
	Started    *time.Time     `json:"started,omitempty"`
	Finished   *time.Time     `json:"finished,omitempty"`
	Points     int            `json:"points"`
	PointsDone int            `json:"points_done"`
	Progress   *ProgressEvent `json:"progress,omitempty"`
	Results    []PointResult  `json:"results,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// StreamEvent is one line of the chunked JSON-lines stream
// (GET /v1/jobs/{id}/stream). Type is "status" (initial snapshot),
// "progress" (per-window), "point" (one point finished), or "end"
// (terminal snapshot; always the last line).
type StreamEvent struct {
	Type     string         `json:"type"`
	Progress *ProgressEvent `json:"progress,omitempty"`
	Point    *PointResult   `json:"point,omitempty"`
	Job      *JobStatus     `json:"job,omitempty"`
}

// subCap bounds each stream subscriber's event buffer. Progress and point
// events are dropped (never block the simulation) when a slow client falls
// behind; the terminal "end" snapshot carries the complete results, so a
// dropped intermediate event costs latency, not data.
const subCap = 64

// job is the store-side record. Immutable identity fields are set at
// creation; every mutable field below the marker is guarded by the store
// lock (coaxlint's race suite and the -race job storm enforce this).
type job struct {
	id     string
	req    JobRequest
	points []Point

	ctx    context.Context
	cancel context.CancelFunc
	// done closes exactly once, when the job reaches a terminal state.
	done chan struct{}

	state    JobState           //lint:guardedby store.mu
	created  time.Time          //lint:guardedby store.mu
	started  time.Time          //lint:guardedby store.mu
	finished time.Time          //lint:guardedby store.mu
	results  []PointResult      //lint:guardedby store.mu
	progress *ProgressEvent     //lint:guardedby store.mu
	errMsg   string             //lint:guardedby store.mu
	subs     []chan StreamEvent //lint:guardedby store.mu
}

// store owns every job's mutable state. One lock serializes all mutations
// and snapshots; simulation work never runs under it.
type store struct {
	mu    sync.Mutex
	seq   int             //lint:guardedby mu
	jobs  map[string]*job //lint:guardedby mu
	order []*job          //lint:guardedby mu
	clock Clock
}

func newStore(clock Clock) *store {
	return &store{jobs: make(map[string]*job), clock: clock}
}

// create registers a new queued job under ctx. IDs are deterministic
// ("j1", "j2", ...) — submission order, not wall clock, names jobs.
func (st *store) create(base context.Context, req JobRequest, points []Point) *job {
	ctx, cancel := context.WithCancel(base)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	j := &job{
		id:      fmt.Sprintf("j%d", st.seq),
		req:     req,
		points:  points,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: st.clock(),
	}
	st.jobs[j.id] = j
	st.order = append(st.order, j)
	return j
}

// get looks a job up by ID.
func (st *store) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// markRunning moves a queued job to running, reporting false when the job
// was canceled while still queued (the worker then skips it).
func (st *store) markRunning(j *job) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = st.clock()
	st.broadcastLocked(j, StreamEvent{Type: "status", Job: st.snapshotLocked(j)})
	return true
}

// notePoint records one finished point and streams it.
func (st *store) notePoint(j *job, pr PointResult) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.results = append(j.results, pr)
	j.progress = nil
	prCopy := pr
	st.broadcastLocked(j, StreamEvent{Type: "point", Point: &prCopy})
}

// noteProgress records the latest per-window observation and streams it.
func (st *store) noteProgress(j *job, ev ProgressEvent) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	j.progress = &ev
	st.broadcastLocked(j, StreamEvent{Type: "progress", Progress: &ev})
}

// finish moves a job to a terminal state, closes done, and emits the
// terminal stream event. Idempotent: later calls are ignored.
func (st *store) finish(j *job, state JobState, errMsg string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = st.clock()
	j.progress = nil
	st.broadcastLocked(j, StreamEvent{Type: "end", Job: st.snapshotLocked(j)})
	j.subs = nil
	close(j.done)
	j.cancel()
}

// cancelQueued terminates a still-queued job (DELETE before a worker
// claimed it). Running jobs are canceled through j.cancel instead, and
// reach their terminal state through the worker's finish call.
func (st *store) cancelQueued(j *job) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCanceled
	j.finished = st.clock()
	st.broadcastLocked(j, StreamEvent{Type: "end", Job: st.snapshotLocked(j)})
	j.subs = nil
	close(j.done)
	j.cancel()
	return true
}

// subscribe attaches a stream subscriber, returning the event channel and
// an unsubscribe func. A job already terminal returns a nil channel — the
// caller serves the final snapshot directly.
func (st *store) subscribe(j *job) (<-chan StreamEvent, func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state.terminal() {
		return nil, func() {}
	}
	ch := make(chan StreamEvent, subCap)
	j.subs = append(j.subs, ch)
	return ch, st.unsubscribeFunc(j, ch)
}

// unsubscribeFunc builds the detach closure for one subscriber.
func (st *store) unsubscribeFunc(j *job, ch chan StreamEvent) func() {
	return func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		for i, s := range j.subs {
			if s == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
}

// broadcastLocked fans an event to j's subscribers, dropping on full
// buffers (see subCap). Caller holds st.mu.
func (st *store) broadcastLocked(j *job, ev StreamEvent) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// snapshot returns the job's wire status.
func (st *store) snapshot(j *job) JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return *st.snapshotLocked(j)
}

// snapshotLocked builds the wire status. Caller holds st.mu.
func (st *store) snapshotLocked(j *job) *JobStatus {
	s := &JobStatus{
		ID:         j.id,
		Kind:       j.req.Kind,
		State:      j.state,
		Created:    j.created,
		Points:     len(j.points),
		PointsDone: len(j.results),
		Error:      j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if j.progress != nil {
		p := *j.progress
		s.Progress = &p
	}
	if len(j.results) > 0 {
		s.Results = append([]PointResult(nil), j.results...)
	}
	return s
}

// list snapshots every job in submission order.
func (st *store) list() []JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]JobStatus, 0, len(st.order))
	for _, j := range st.order {
		out = append(out, *st.snapshotLocked(j))
	}
	return out
}

// stateCounts tallies jobs per state in jobStates order (for /metrics).
func (st *store) stateCounts() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	counts := make([]int, len(jobStates))
	for _, j := range st.order {
		for i, s := range jobStates {
			if j.state == s {
				counts[i]++
				break
			}
		}
	}
	return counts
}
