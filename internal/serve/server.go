package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"coaxial"
)

// Options configures a Server. The zero value is usable: GOMAXPROCS
// workers, a 16-deep queue, a fresh Runner-backed engine, and a
// deterministic synthetic clock (the daemon injects time.Now).
type Options struct {
	// Workers sizes the simulation worker pool (GOMAXPROCS when 0).
	Workers int
	// QueueDepth bounds queued-but-unclaimed jobs (16 when 0); beyond it,
	// submissions answer 429 + Retry-After.
	QueueDepth int
	// Engine is the simulation backend (a shared-Runner engine when nil).
	Engine Engine
	// Clock stamps job metadata (synthetic deterministic clock when nil).
	Clock Clock
}

// Server is the simulation service: a bounded worker pool over a shared
// single-flight group and job store, fronted by an http.Handler speaking
// the /v1 JSON API.
type Server struct {
	store   *store
	engine  Engine
	flights *group
	queue   chan *job
	workers int
	wg      sync.WaitGroup
	mux     *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	draining bool //lint:guardedby mu
}

// New builds and starts a Server (its worker pool runs until Shutdown or
// Close).
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Engine == nil {
		opts.Engine = NewRunnerEngine(coaxial.NewRunner())
	}
	if opts.Clock == nil {
		opts.Clock = syntheticClock()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		store:      newStore(opts.Clock),
		engine:     opts.Engine,
		flights:    newGroup(),
		queue:      make(chan *job, opts.QueueDepth),
		workers:    opts.Workers,
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// syntheticClock returns a deterministic Clock: monotonically increasing
// millisecond ticks from the Unix epoch. The serve package never reads the
// wall clock itself (coaxlint's determinism checker enforces it); real
// time enters only when the daemon injects time.Now.
func syntheticClock() Clock {
	var (
		mu   sync.Mutex
		tick int64
	)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		tick++
		return time.Unix(0, tick*int64(time.Millisecond)).UTC()
	}
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	ID     string `json:"id"`
	Points int    `json:"points"`
	Status string `json:"status_url"`
	Stream string `json:"stream_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeJobRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case IsRequestError(err):
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	j, _ := s.store.get(id)
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:     id,
		Points: len(j.points),
		Status: "/v1/jobs/" + id,
		Stream: "/v1/jobs/" + id + "/stream",
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.list())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.store.snapshot(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	status, ok, err := s.Cancel(r.Context(), r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if err != nil {
		// The client gave up before the job went terminal; report the
		// best-known state.
		writeJSON(w, http.StatusAccepted, status)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

// handleStream serves the chunked JSON-lines stream: one initial "status"
// snapshot, interleaved "progress"/"point" events as simulation windows
// retire, and a terminal "end" snapshot carrying the complete results.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by connection")
		return
	}
	events, unsubscribe := s.store.subscribe(j)
	defer unsubscribe()

	w.Header().Set("Content-Type", "application/jsonlines")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	snap := s.store.snapshot(j)
	if events == nil {
		// Already terminal: the whole stream is the final snapshot.
		_ = enc.Encode(StreamEvent{Type: "end", Job: &snap})
		flusher.Flush()
		return
	}
	_ = enc.Encode(StreamEvent{Type: "status", Job: &snap})
	flusher.Flush()

	for {
		select {
		case ev := <-events:
			if err := enc.Encode(ev); err != nil {
				return
			}
			flusher.Flush()
			if ev.Type == "end" {
				return
			}
		case <-j.done:
			// Terminal state reached; the "end" event may have been
			// dropped on a full buffer — synthesize it from the store.
			final := s.store.snapshot(j)
			_ = enc.Encode(StreamEvent{Type: "end", Job: &final})
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// presetsResponse enumerates what the service can simulate.
type presetsResponse struct {
	Topologies []string `json:"topologies"`
	Workloads  []string `json:"workloads"`
}

func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, presetsResponse{
		Topologies: coaxial.TopologyNames(),
		Workloads:  coaxial.WorkloadNames(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics reports scheduler and cache counters in Prometheus text
// exposition format (deterministic line order: states iterate a slice).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	counts := s.store.stateCounts()
	started, coalesced := s.flights.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for i, st := range jobStates {
		fmt.Fprintf(w, "coaxial_serve_jobs{state=%q} %d\n", string(st), counts[i])
	}
	fmt.Fprintf(w, "coaxial_serve_points_started_total %d\n", started)
	fmt.Fprintf(w, "coaxial_serve_points_coalesced_total %d\n", coalesced)
	fmt.Fprintf(w, "coaxial_serve_points_in_flight %d\n", s.flights.inFlight())
	fmt.Fprintf(w, "coaxial_serve_queue_depth %d\n", len(s.queue))
	fmt.Fprintf(w, "coaxial_serve_workers %d\n", s.workers)
	if ws, ok := s.engine.(WarmStater); ok {
		st := ws.WarmStats()
		fmt.Fprintf(w, "coaxial_serve_warm_entries %d\n", st.Entries)
		fmt.Fprintf(w, "coaxial_serve_warm_captures_total %d\n", st.Captures)
	}
}
