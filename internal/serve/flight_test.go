package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"coaxial"
)

// blockingRun builds a runFunc that signals entry, then blocks until
// released or canceled (returning a distinguishable partial outcome).
func blockingRun(entered chan struct{}, release chan struct{}) runFunc {
	return func(ctx context.Context, onProgress func(coaxial.Progress)) (PointOutcome, error) {
		entered <- struct{}{}
		if onProgress != nil {
			onProgress(coaxial.Progress{Phase: "measure", Cycles: 1})
		}
		select {
		case <-release:
			return PointOutcome{Result: coaxial.Result{Cycles: 100}}, nil
		case <-ctx.Done():
			return PointOutcome{Result: coaxial.Result{Cycles: 7}}, fmt.Errorf("stopped: %w", ctx.Err())
		}
	}
}

// TestFlightCoalesce: N concurrent do() calls on one key run the body
// once and all receive its outcome.
func TestFlightCoalesce(t *testing.T) {
	g := newGroup()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})

	const n = 5
	var wg sync.WaitGroup
	outs := make([]PointOutcome, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], errs[i] = g.do(context.Background(), "k", nil, blockingRun(entered, release))
		}()
	}
	<-entered // body running; every waiter attaches to this call
	for {
		g.mu.Lock()
		w := 0
		if c, ok := g.calls["k"]; ok {
			w = c.waiters
		}
		g.mu.Unlock()
		if w == n {
			break
		}
	}
	close(release)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if outs[i].Result.Cycles != 100 {
			t.Fatalf("waiter %d got cycles %d, want the shared 100", i, outs[i].Result.Cycles)
		}
	}
	if started, coalesced := g.stats(); started != 1 || coalesced != n-1 {
		t.Fatalf("stats = (%d started, %d coalesced), want (1, %d)", started, coalesced, n-1)
	}
	if g.inFlight() != 0 {
		t.Fatalf("%d calls still registered after completion", g.inFlight())
	}
}

// TestFlightLastWaiterCancels: an early canceler detaches empty-handed
// while the body keeps running; the last canceler stops the body and
// receives its salvaged partial outcome.
func TestFlightLastWaiterCancels(t *testing.T) {
	g := newGroup()
	entered := make(chan struct{}, 1)
	release := make(chan struct{}) // never closed: only cancellation ends the body
	defer close(release)

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()

	type res struct {
		out PointOutcome
		err error
	}
	r1 := make(chan res, 1)
	r2 := make(chan res, 1)
	go func() {
		out, err := g.do(ctx1, "k", nil, blockingRun(entered, release))
		r1 <- res{out, err}
	}()
	<-entered
	go func() {
		out, err := g.do(ctx2, "k", nil, blockingRun(entered, release))
		r2 <- res{out, err}
	}()
	for {
		g.mu.Lock()
		w := g.calls["k"].waiters
		g.mu.Unlock()
		if w == 2 {
			break
		}
	}

	cancel1()
	got1 := <-r1
	if !errors.Is(got1.err, context.Canceled) {
		t.Fatalf("early canceler error = %v, want context.Canceled", got1.err)
	}
	if got1.out.Result.Cycles != 0 {
		t.Fatalf("early canceler got a partial outcome (%d cycles); the body must keep running", got1.out.Result.Cycles)
	}
	if g.inFlight() != 1 {
		t.Fatal("body stopped when a non-last waiter canceled")
	}

	cancel2()
	got2 := <-r2
	if !errors.Is(got2.err, context.Canceled) {
		t.Fatalf("last canceler error = %v, want context.Canceled", got2.err)
	}
	if got2.out.Result.Cycles != 7 {
		t.Fatalf("last canceler got cycles %d, want the salvaged partial 7", got2.out.Result.Cycles)
	}
	if g.inFlight() != 0 {
		t.Fatal("call still registered after cancellation")
	}
}

// TestFlightDistinctKeys: different keys never share a body.
func TestFlightDistinctKeys(t *testing.T) {
	g := newGroup()
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	close(release)

	var wg sync.WaitGroup
	for _, key := range []string{"a", "b"} {
		key := key
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.do(context.Background(), key, nil, blockingRun(entered, release)); err != nil {
				t.Errorf("%s: %v", key, err)
			}
		}()
	}
	wg.Wait()
	if started, coalesced := g.stats(); started != 2 || coalesced != 0 {
		t.Fatalf("stats = (%d, %d), want (2, 0)", started, coalesced)
	}
}

// TestFlightProgressFanout: every attached waiter's observer sees the
// body's progress; detached waiters stop observing.
func TestFlightProgressFanout(t *testing.T) {
	g := newGroup()
	c := &call{g: g, done: make(chan struct{})}
	g.calls["k"] = c

	var mu sync.Mutex
	counts := [2]int{}
	s0 := &progressSink{fn: func(coaxial.Progress) { mu.Lock(); counts[0]++; mu.Unlock() }}
	s1 := &progressSink{fn: func(coaxial.Progress) { mu.Lock(); counts[1]++; mu.Unlock() }}
	c.sinks = []*progressSink{s0, s1}

	c.broadcast(coaxial.Progress{Phase: "warmup"})
	g.mu.Lock()
	c.dropSink(s0)
	g.mu.Unlock()
	c.broadcast(coaxial.Progress{Phase: "measure"})

	mu.Lock()
	defer mu.Unlock()
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("sink counts = %v, want [1 2]", counts)
	}
}
