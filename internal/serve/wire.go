// Package serve is the simulation-as-a-service front-end: a long-running
// HTTP/JSON daemon over the coaxial library. Clients POST run/sweep/rack
// jobs to /v1/jobs; the server schedules them on a bounded worker pool
// with a queue-depth limit (saturation answers 429 + Retry-After), shares
// one Runner warm-state cache across all requests, single-flights
// identical in-flight points so N concurrent clients asking for the same
// sweep point cost one simulation, streams per-window partial results over
// chunked JSON lines, and cancels jobs (DELETE) returning the Runner's
// partial measurements.
//
// Determinism discipline: result payloads carry only simulated quantities
// (cycles, retired instructions, the usual Result metrics) — the wall
// clock appears exclusively in job *metadata* timestamps, supplied by an
// injected Clock, so the httptest suite is deterministic and the package
// sits inside coaxlint's determinism/phaseiso scope. All job-store
// mutations happen under the store lock; the -race suite is the proof.
//
// The wire schema is documented in testdata/serve/README.md (next to the
// golden corpus) and pinned by the golden wire files there.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"coaxial"
)

// Request bounds: a decoded job may not exceed these, keeping a single
// POST from monopolizing the daemon. Violations are 400s, not truncation.
const (
	// MaxHosts bounds rack scaling per point.
	MaxHosts = 16
	// MaxPoints bounds the preset × workload cross product of one sweep.
	MaxPoints = 64
	// MaxInstr bounds each simulation window (per core, instructions).
	MaxInstr = 200_000_000
	// MaxParallelism bounds the requested tick-phase worker counts.
	MaxParallelism = 64
	// maxRequestBytes bounds the request body read by DecodeJobRequest.
	maxRequestBytes = 1 << 20
)

// JobRequest is the POST /v1/jobs payload. Kind selects the shape:
//
//   - "run": one Preset × one Workload — a single simulation point.
//   - "sweep": Presets × Workloads — the capacity-planning grid, one point
//     per combination, executed in order.
//   - "rack": one Preset scaled to Hosts hosts sharing its pooled devices,
//     every active core of every host running Workload.
//
// Hosts also scales "run"/"sweep" points (a run at hosts > 1 is a rack
// point); 0 keeps each preset's own host count.
type JobRequest struct {
	Kind string `json:"kind"`

	Preset   string   `json:"preset,omitempty"`
	Presets  []string `json:"presets,omitempty"`
	Workload string   `json:"workload,omitempty"`

	Workloads []string `json:"workloads,omitempty"`

	Hosts       int `json:"hosts,omitempty"`
	ActiveCores int `json:"active_cores,omitempty"`

	Seed    uint64   `json:"seed,omitempty"`
	Windows *Windows `json:"windows,omitempty"`
	Sample  *Sample  `json:"sample,omitempty"`

	Clocking        string `json:"clocking,omitempty"`
	Parallelism     int    `json:"parallelism,omitempty"`
	RackParallelism int    `json:"rack_parallelism,omitempty"`
	Validate        bool   `json:"validate,omitempty"`
}

// Windows overrides the default simulation windows (per core,
// instructions). Measure must be positive; a zero FunctionalWarmup keeps
// the library's 1M-instruction default; a zero Warmup disables the timed
// warmup.
type Windows struct {
	FunctionalWarmup uint64 `json:"functional_warmup,omitempty"`
	Warmup           uint64 `json:"warmup,omitempty"`
	Measure          uint64 `json:"measure"`
}

// Sample enables sampled simulation: detailed windows of Detail
// instructions alternate with functional fast-forward gaps of FastForward.
// Both must be positive together; incompatible with multi-host points.
type Sample struct {
	Detail      uint64 `json:"detail"`
	FastForward uint64 `json:"fast_forward"`
}

// RequestError is a client-side job-request defect (unknown preset,
// out-of-range windows, malformed shape); the HTTP layer maps it to 400.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// DecodeJobRequest reads one JSON job request, rejecting unknown fields,
// trailing data, and bodies over maxRequestBytes. Decode errors (including
// negative values for unsigned fields) come back as *RequestError.
func DecodeJobRequest(r io.Reader) (JobRequest, error) {
	var q JobRequest
	dec := json.NewDecoder(io.LimitReader(r, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		return JobRequest{}, badRequestf("decoding job request: %v", err)
	}
	if dec.More() {
		return JobRequest{}, badRequestf("trailing data after job request")
	}
	return q, nil
}

// Point is one fully-resolved simulation: either a single-host config with
// per-core workloads or a rack topology with per-host workload sets, plus
// the run configuration. Identical points share one execution in flight
// (flightKey) and one warm snapshot in the Runner cache.
type Point struct {
	// Label names the point in results ("coaxial-4x/stream-copy", ...).
	Label string

	// Single is the host config of a single-host point (nil for racks).
	Single    *coaxial.Config
	Workloads []coaxial.Workload

	// Rack is the topology of a multi-host point (nil for single hosts).
	Rack          *coaxial.RackConfig
	HostWorkloads [][]coaxial.Workload

	RC coaxial.RunConfig
}

// flightKey fingerprints everything the point's Result depends on: the
// full system/topology configuration, the workload assignment, and the run
// configuration (with the progress observer stripped — observation never
// changes measurements). It refines sim.WarmKey, which covers only the
// warmup-relevant facets (geometry, seed, functional budget, topology):
// two points with equal flight keys are the same simulation bit-for-bit,
// so the in-flight single-flight group may collapse them.
func (p Point) flightKey() string {
	rc := p.RC
	rc.OnProgress = nil
	if p.Rack != nil {
		return fmt.Sprintf("rack|%+v|%+v|%+v", *p.Rack, p.HostWorkloads, rc)
	}
	return fmt.Sprintf("single|%+v|%+v|%+v", *p.Single, p.Workloads, rc)
}

// Points resolves and validates the request into its simulation points,
// in execution order. All defects come back as *RequestError.
func (q JobRequest) Points() ([]Point, error) {
	presets, workloads, err := q.grid()
	if err != nil {
		return nil, err
	}
	rc, err := q.runConfig()
	if err != nil {
		return nil, err
	}
	if len(presets)*len(workloads) > MaxPoints {
		return nil, badRequestf("%d points exceed the per-job limit of %d", len(presets)*len(workloads), MaxPoints)
	}
	points := make([]Point, 0, len(presets)*len(workloads))
	for _, pname := range presets {
		preset, err := coaxial.TopologyPresetByName(pname)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		if q.Hosts > 0 {
			preset = preset.WithHosts(q.Hosts)
		}
		for h := range preset.Rack.Hosts {
			if q.ActiveCores > 0 {
				if q.ActiveCores > preset.Rack.Hosts[h].Cores {
					return nil, badRequestf("active_cores %d exceeds %q's %d cores",
						q.ActiveCores, pname, preset.Rack.Hosts[h].Cores)
				}
				preset.Rack.Hosts[h] = preset.Rack.Hosts[h].WithActiveCores(q.ActiveCores)
			}
		}
		if len(preset.Rack.Hosts) > 1 && q.Sample != nil {
			return nil, badRequestf("sampled simulation is incompatible with multi-host points")
		}
		for _, wname := range workloads {
			w, err := coaxial.WorkloadByName(wname)
			if err != nil {
				return nil, badRequestf("%v", err)
			}
			p, err := buildPoint(preset, w, rc)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// grid normalizes the request kind into the preset × workload lists.
func (q JobRequest) grid() (presets, workloads []string, err error) {
	switch q.Kind {
	case "run", "rack":
		if q.Preset == "" || q.Workload == "" {
			return nil, nil, badRequestf("%s job needs preset and workload", q.Kind)
		}
		if len(q.Presets) > 0 || len(q.Workloads) > 0 {
			return nil, nil, badRequestf("%s job takes singular preset/workload, not lists", q.Kind)
		}
		if q.Kind == "rack" && q.Hosts < 1 {
			return nil, nil, badRequestf("rack job needs hosts >= 1")
		}
		return []string{q.Preset}, []string{q.Workload}, nil
	case "sweep":
		if len(q.Presets) == 0 || len(q.Workloads) == 0 {
			return nil, nil, badRequestf("sweep job needs non-empty presets and workloads lists")
		}
		if q.Preset != "" || q.Workload != "" {
			return nil, nil, badRequestf("sweep job takes presets/workloads lists, not singular fields")
		}
		return q.Presets, q.Workloads, nil
	case "":
		return nil, nil, badRequestf("missing job kind (want run, sweep, or rack)")
	default:
		return nil, nil, badRequestf("unknown job kind %q (want run, sweep, or rack)", q.Kind)
	}
}

// runConfig translates the request's run parameters, applying defaults and
// bounds.
func (q JobRequest) runConfig() (coaxial.RunConfig, error) {
	rc := coaxial.DefaultRunConfig()
	if q.Seed > 0 {
		rc.Seed = q.Seed
	}
	if q.Hosts < 0 || q.Hosts > MaxHosts {
		return rc, badRequestf("hosts %d out of range [0, %d]", q.Hosts, MaxHosts)
	}
	if q.ActiveCores < 0 {
		return rc, badRequestf("active_cores must be >= 0")
	}
	if w := q.Windows; w != nil {
		if w.Measure == 0 {
			return rc, badRequestf("windows.measure must be > 0")
		}
		if w.Measure > MaxInstr || w.Warmup > MaxInstr || w.FunctionalWarmup > MaxInstr {
			return rc, badRequestf("simulation windows exceed the %d-instruction limit", MaxInstr)
		}
		rc.FunctionalWarmupInstr = w.FunctionalWarmup
		rc.WarmupInstr = w.Warmup
		rc.MeasureInstr = w.Measure
	}
	if sp := q.Sample; sp != nil {
		if sp.Detail == 0 || sp.FastForward == 0 {
			return rc, badRequestf("sample needs both detail and fast_forward > 0")
		}
		if sp.Detail > MaxInstr || sp.FastForward > MaxInstr {
			return rc, badRequestf("sample windows exceed the %d-instruction limit", MaxInstr)
		}
		rc.SampleDetailInstr = sp.Detail
		rc.SampleFastFwdInstr = sp.FastForward
	}
	switch q.Clocking {
	case "", "event":
		rc.Clocking = coaxial.EventDriven
	case "cycle":
		rc.Clocking = coaxial.CycleByCycle
	default:
		return rc, badRequestf("unknown clocking %q (want event or cycle)", q.Clocking)
	}
	if q.Parallelism < 0 || q.Parallelism > MaxParallelism ||
		q.RackParallelism < 0 || q.RackParallelism > MaxParallelism {
		return rc, badRequestf("parallelism out of range [0, %d]", MaxParallelism)
	}
	rc.Parallelism = q.Parallelism
	rc.RackParallelism = q.RackParallelism
	rc.Validate = q.Validate
	return rc, nil
}

// buildPoint assembles one resolved point from a scaled preset.
func buildPoint(preset coaxial.TopologyPreset, w coaxial.Workload, rc coaxial.RunConfig) (Point, error) {
	label := preset.Name + "/" + w.Params.Name
	if cfg, ok := preset.Single(); ok {
		active := cfg.ActiveCores
		if active == 0 {
			active = cfg.Cores
		}
		wl := make([]coaxial.Workload, active)
		for i := range wl {
			wl[i] = w
		}
		return Point{Label: label, Single: &cfg, Workloads: wl, RC: rc}, nil
	}
	rack := preset.Rack
	hw := make([][]coaxial.Workload, len(rack.Hosts))
	for h, hc := range rack.Hosts {
		active := hc.ActiveCores
		if active == 0 {
			active = hc.Cores
		}
		hw[h] = make([]coaxial.Workload, active)
		for i := range hw[h] {
			hw[h][i] = w
		}
	}
	if err := rack.Validate(); err != nil {
		return Point{}, badRequestf("%v", err)
	}
	return Point{Label: label, Rack: &rack, HostWorkloads: hw, RC: rc}, nil
}

// IsRequestError reports whether err is a client-side request defect.
func IsRequestError(err error) bool {
	var re *RequestError
	return errors.As(err, &re)
}

// Clock supplies wall-clock timestamps for job metadata (created/started/
// finished). The daemon injects time.Now; tests inject fakes; the default
// is a deterministic synthetic clock — simulated measurements never touch
// it, keeping result payloads reproducible bit-for-bit.
type Clock func() time.Time
