package serve

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

var updateWire = flag.Bool("update", false, "rewrite testdata/serve wire fixtures")

// TestWireGolden pins the JSON wire schema against the checked-in fixture
// (testdata/serve/, next to the simulation golden corpus): the injected
// synthetic clock and a deterministic fake engine make the full response
// byte-stable, so any wire-schema drift shows up as a diff. Refresh with
// `go test ./internal/serve -run TestWireGolden -update`.
func TestWireGolden(t *testing.T) {
	eng := &fakeEngine{}
	s := New(Options{Workers: 1, QueueDepth: 4, Engine: eng}) // default deterministic clock
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		_ = s.Close()
	}()

	sub, resp := postJob(t, ts, JobRequest{
		Kind: "run", Preset: "coaxial-4x", Workload: "gcc",
		Windows: &Windows{FunctionalWarmup: 500, Warmup: 100, Measure: 1000},
		Seed:    7,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitTerminal(t, ts, sub.ID)

	raw, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(raw.Body)
	raw.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("..", "..", "testdata", "serve", "job_status.json")
	if *updateWire {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing wire fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire schema drifted from %s\ngot:\n%s\nwant:\n%s\n(refresh deliberately with -update)", path, got, want)
	}
}
