package serve

import (
	"context"

	"coaxial"
)

// PointOutcome is one executed point's measurements: the headline Result
// (for rack points, the RackResult summary — per-core IPCs concatenated
// across hosts, traffic summed) plus, for racks, the full per-host and
// per-device detail.
type PointOutcome struct {
	Result coaxial.Result      `json:"result"`
	Rack   *coaxial.RackResult `json:"rack,omitempty"`
}

// Engine is the simulation backend the scheduler drives. The production
// engine wraps one shared coaxial.Runner; tests substitute counting or
// blocking fakes to pin scheduler behavior without paying for simulations.
//
// RunPoint honors ctx (returning salvaged partial measurements alongside
// the cancellation error, like the Runner it fronts) and reports
// per-window progress through onProgress when non-nil.
type Engine interface {
	RunPoint(ctx context.Context, p Point, onProgress func(coaxial.Progress)) (PointOutcome, error)
}

// WarmStater is optionally implemented by engines exposing warm-state
// cache statistics (the Runner-backed engine does); /metrics reports them.
type WarmStater interface {
	WarmStats() coaxial.WarmStats
}

// runnerEngine adapts one shared Runner. Every point derives a child
// Runner carrying the point's RunConfig and progress observer while
// sharing the parent's warm-state cache, so all jobs — concurrent or
// sequential — reuse each other's warm snapshots.
type runnerEngine struct {
	r *coaxial.Runner
}

// NewRunnerEngine wraps r as the service's simulation backend.
func NewRunnerEngine(r *coaxial.Runner) Engine {
	return &runnerEngine{r: r}
}

func (e *runnerEngine) RunPoint(ctx context.Context, p Point, onProgress func(coaxial.Progress)) (PointOutcome, error) {
	rc := p.RC
	rc.OnProgress = onProgress
	r := e.r.With(coaxial.WithRunConfig(rc))
	if p.Rack != nil {
		rr, err := r.RunRack(ctx, *p.Rack, p.HostWorkloads)
		out := PointOutcome{Result: rr.Summary()}
		if len(rr.Hosts) > 0 {
			out.Rack = &rr
		}
		return out, err
	}
	res, err := r.RunMix(ctx, *p.Single, p.Workloads)
	return PointOutcome{Result: res}, err
}

func (e *runnerEngine) WarmStats() coaxial.WarmStats { return e.r.WarmStats() }
