package serve

import (
	"context"
	"errors"
	"fmt"

	"coaxial"
)

// ErrQueueFull is returned by Submit when the bounded queue is saturated;
// the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDraining is returned by Submit once shutdown began; the HTTP layer
// maps it to 503.
var ErrDraining = errors.New("serve: server draining")

// Submit validates, registers, and enqueues one job, returning its ID.
// The queue-depth check and the enqueue happen under the server lock, so
// the bounded channel can never overfill: submitters serialize, workers
// only drain.
func (s *Server) Submit(req JobRequest) (string, error) {
	points, err := req.Points()
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", ErrDraining
	}
	if len(s.queue) >= cap(s.queue) {
		return "", ErrQueueFull
	}
	j := s.store.create(s.baseCtx, req, points)
	//lint:ignore lockcheck the queue-depth check above runs under the same lock as every send, so the bounded channel has room and this send never blocks
	s.queue <- j
	return j.id, nil
}

// worker is one pool goroutine: it drains the queue until Shutdown closes
// it. Named method, so the phaseiso checker sees a spawner, not an
// anonymous goroutine mutating shared state.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job's points in order through the single-flight
// group, recording each point as it lands so streams and GETs observe
// partial completion. A canceled point salvages the Runner's partial
// window into the job's results before the job goes terminal.
func (s *Server) runJob(j *job) {
	if !s.store.markRunning(j) {
		return // canceled while queued
	}
	for i := range j.points {
		if j.ctx.Err() != nil {
			s.store.finish(j, StateCanceled, context.Cause(j.ctx).Error())
			return
		}
		p := j.points[i]
		out, err := s.flights.do(j.ctx, p.flightKey(), s.progressSink(j, i, p.Label), s.runPointFunc(p))
		pr := PointResult{Index: i, Label: p.Label, Result: out.Result, Rack: out.Rack}
		if err == nil {
			s.store.notePoint(j, pr)
			continue
		}
		pr.Error = err.Error()
		if errors.Is(err, context.Canceled) || j.ctx.Err() != nil {
			// Salvaged partial measurements: real simulated data over a
			// shorter window than requested (empty when another waiter
			// keeps the flight alive).
			pr.Partial = out.Result.Cycles > 0 || out.Rack != nil
			s.store.notePoint(j, pr)
			s.store.finish(j, StateCanceled, fmt.Sprintf("point %d (%s): %v", i, p.Label, err))
			return
		}
		s.store.notePoint(j, pr)
		s.store.finish(j, StateFailed, fmt.Sprintf("point %d (%s): %v", i, p.Label, err))
		return
	}
	s.store.finish(j, StateDone, "")
}

// progressSink builds the per-point progress observer feeding the store.
func (s *Server) progressSink(j *job, point int, label string) func(p coaxial.Progress) {
	return func(p coaxial.Progress) {
		s.store.noteProgress(j, ProgressEvent{
			Point:   point,
			Label:   label,
			Phase:   p.Phase,
			Cycles:  p.Cycles,
			Retired: p.Retired,
			Target:  p.Target,
		})
	}
}

// runPointFunc builds the flight body for one point.
func (s *Server) runPointFunc(p Point) runFunc {
	return func(ctx context.Context, onProgress func(coaxial.Progress)) (PointOutcome, error) {
		return s.engine.RunPoint(ctx, p, onProgress)
	}
}

// Cancel cancels a job by ID and blocks until it reaches a terminal state
// (so the response carries the salvaged partials), or until ctx gives up
// waiting. Reports whether the job exists.
func (s *Server) Cancel(ctx context.Context, id string) (JobStatus, bool, error) {
	j, ok := s.store.get(id)
	if !ok {
		return JobStatus{}, false, nil
	}
	if !s.store.cancelQueued(j) {
		j.cancel()
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return s.store.snapshot(j), true, ctx.Err()
	}
	return s.store.snapshot(j), true, nil
}

// Shutdown drains gracefully: new submissions are rejected (ErrDraining),
// queued and running jobs finish, workers exit. Returns ctx's error if it
// expires first (jobs keep draining in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go s.waitWorkers(done)
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close shuts down hard: every job's context is canceled (running
// simulations salvage partials and go terminal), then workers drain.
func (s *Server) Close() error {
	s.baseCancel()
	return s.Shutdown(context.Background())
}

// waitWorkers signals done once the pool exits.
func (s *Server) waitWorkers(done chan struct{}) {
	s.wg.Wait()
	close(done)
}
