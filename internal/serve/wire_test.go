package serve

import (
	"strings"
	"testing"

	"coaxial"
)

// TestDecodeJobRequestRejects pins the strict-decode contract: unknown
// fields, trailing data, and type mismatches are 400s, never panics.
func TestDecodeJobRequestRejects(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"malformed", `{`},
		{"unknown field", `{"kind":"run","presett":"coaxial-4x"}`},
		{"trailing data", `{"kind":"run"} {"kind":"run"}`},
		{"negative window", `{"kind":"run","windows":{"measure":-5}}`},
		{"negative seed", `{"kind":"run","seed":-1}`},
		{"wrong type", `{"kind":["run"]}`},
	}
	for _, tc := range cases {
		_, err := DecodeJobRequest(strings.NewReader(tc.body))
		if err == nil {
			t.Errorf("%s: decoded %q without error", tc.name, tc.body)
			continue
		}
		if !IsRequestError(err) {
			t.Errorf("%s: error is not a RequestError: %v", tc.name, err)
		}
	}
}

// TestJobRequestPointsRejects pins request validation: every defect is a
// RequestError naming the problem.
func TestJobRequestPointsRejects(t *testing.T) {
	w := &Windows{Measure: 1000}
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"missing kind", JobRequest{}},
		{"unknown kind", JobRequest{Kind: "blorp"}},
		{"run without preset", JobRequest{Kind: "run", Workload: "gcc"}},
		{"run without workload", JobRequest{Kind: "run", Preset: "coaxial-4x"}},
		{"run with lists", JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc", Presets: []string{"x"}}},
		{"sweep without lists", JobRequest{Kind: "sweep", Preset: "coaxial-4x", Workload: "gcc"}},
		{"unknown preset", JobRequest{Kind: "run", Preset: "nope", Workload: "gcc", Windows: w}},
		{"unknown workload", JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "nope", Windows: w}},
		{"zero measure", JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc", Windows: &Windows{}}},
		{"oversize window", JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc", Windows: &Windows{Measure: MaxInstr + 1}}},
		{"too many hosts", JobRequest{Kind: "rack", Preset: "coaxial-pooled", Workload: "gcc", Hosts: MaxHosts + 1, Windows: w}},
		{"rack without hosts", JobRequest{Kind: "rack", Preset: "coaxial-pooled", Workload: "gcc", Windows: w}},
		{"too many cores", JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc", ActiveCores: 99, Windows: w}},
		{"sample on rack", JobRequest{Kind: "rack", Preset: "coaxial-pooled", Workload: "gcc", Hosts: 2,
			Sample: &Sample{Detail: 100, FastForward: 100}, Windows: w}},
		{"half sample", JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc",
			Sample: &Sample{Detail: 100}, Windows: w}},
		{"bad clocking", JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc", Clocking: "warp", Windows: w}},
		{"negative parallelism", JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc", Parallelism: -1, Windows: w}},
		{"too many points", JobRequest{Kind: "sweep",
			Presets:   []string{"ddr-baseline", "coaxial-2x", "coaxial-4x", "coaxial-5x", "coaxial-asym"},
			Workloads: coaxial.WorkloadNames()[:13], Windows: w}},
	}
	for _, tc := range cases {
		_, err := tc.req.Points()
		if err == nil {
			t.Errorf("%s: validated without error", tc.name)
			continue
		}
		if !IsRequestError(err) {
			t.Errorf("%s: error is not a RequestError: %v", tc.name, err)
		}
	}
}

// TestJobRequestPointsShapes pins point construction for each kind.
func TestJobRequestPointsShapes(t *testing.T) {
	run := JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc",
		Windows: &Windows{FunctionalWarmup: 500, Warmup: 100, Measure: 1000}, Seed: 7}
	pts, err := run.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("run: %d points", len(pts))
	}
	p := pts[0]
	if p.Label != "coaxial-4x/gcc" || p.Single == nil || p.Rack != nil {
		t.Fatalf("run point shape: %+v", p)
	}
	if len(p.Workloads) != p.Single.Cores {
		t.Fatalf("run point: %d workloads for %d cores", len(p.Workloads), p.Single.Cores)
	}
	if p.RC.Seed != 7 || p.RC.MeasureInstr != 1000 || p.RC.WarmupInstr != 100 || p.RC.FunctionalWarmupInstr != 500 {
		t.Fatalf("run point RC: %+v", p.RC)
	}

	rack := JobRequest{Kind: "rack", Preset: "coaxial-pooled", Workload: "stream-copy", Hosts: 4,
		Windows: &Windows{Measure: 1000}}
	pts, err = rack.Points()
	if err != nil {
		t.Fatal(err)
	}
	p = pts[0]
	if p.Rack == nil || p.Single != nil {
		t.Fatalf("rack point shape: %+v", p)
	}
	if len(p.Rack.Hosts) != 4 || len(p.HostWorkloads) != 4 {
		t.Fatalf("rack point: %d hosts, %d workload sets", len(p.Rack.Hosts), len(p.HostWorkloads))
	}

	cores := JobRequest{Kind: "run", Preset: "ddr-baseline", Workload: "gcc", ActiveCores: 3,
		Windows: &Windows{Measure: 1000}}
	pts, err = cores.Points()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pts[0].Workloads); got != 3 {
		t.Fatalf("active_cores=3 produced %d workloads", got)
	}
}

// TestFlightKey pins single-flight keying: the key covers config, seed,
// windows, and topology, and ignores the progress observer.
func TestFlightKey(t *testing.T) {
	mk := func(mut func(*JobRequest)) Point {
		req := JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc",
			Windows: &Windows{Measure: 1000}}
		if mut != nil {
			mut(&req)
		}
		pts, err := req.Points()
		if err != nil {
			t.Fatal(err)
		}
		return pts[0]
	}
	base := mk(nil)
	if base.flightKey() != mk(nil).flightKey() {
		t.Fatal("identical requests produced different flight keys")
	}
	for name, mut := range map[string]func(*JobRequest){
		"seed":     func(q *JobRequest) { q.Seed = 9 },
		"measure":  func(q *JobRequest) { q.Windows.Measure = 2000 },
		"workload": func(q *JobRequest) { q.Workload = "mcf" },
		"preset":   func(q *JobRequest) { q.Preset = "ddr-baseline" },
		"cores":    func(q *JobRequest) { q.ActiveCores = 2 },
		"clocking": func(q *JobRequest) { q.Clocking = "cycle" },
	} {
		if mk(mut).flightKey() == base.flightKey() {
			t.Errorf("%s change did not change the flight key", name)
		}
	}
	// Observation never changes identity: same key with an observer bound.
	observed := mk(nil)
	observed.RC.OnProgress = func(coaxial.Progress) {}
	if observed.flightKey() != base.flightKey() {
		t.Fatal("progress observer leaked into the flight key")
	}
}

// FuzzDecodeJobRequest fuzzes the full request path — decode, validate,
// point construction — which must never panic, whatever the bytes.
func FuzzDecodeJobRequest(f *testing.F) {
	f.Add(`{"kind":"run","preset":"coaxial-4x","workload":"gcc"}`)
	f.Add(`{"kind":"sweep","presets":["ddr-baseline"],"workloads":["mcf"],"windows":{"measure":1000}}`)
	f.Add(`{"kind":"rack","preset":"coaxial-pooled","workload":"gcc","hosts":4}`)
	f.Add(`{"kind":"run","preset":"nope","workload":"gcc","windows":{"measure":-1}}`)
	f.Add(`{"kind":"run","seed":18446744073709551615,"hosts":99999999999}`)
	f.Add(`{`)
	f.Add(``)
	f.Add(`[1,2,3]`)
	f.Add(`{"kind":"run","unknown":{"deeply":["nested"]}}`)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := DecodeJobRequest(strings.NewReader(body))
		if err != nil {
			return
		}
		pts, err := req.Points()
		if err != nil {
			return
		}
		// Valid requests must produce bounded, executable points with
		// stable keys.
		if len(pts) == 0 || len(pts) > MaxPoints {
			t.Fatalf("accepted request produced %d points", len(pts))
		}
		for _, p := range pts {
			if (p.Single == nil) == (p.Rack == nil) {
				t.Fatalf("point is neither single nor rack: %+v", p)
			}
			if p.flightKey() == "" {
				t.Fatal("empty flight key")
			}
		}
	})
}
