package serve

import (
	"context"
	"sync"

	"coaxial"
)

// group single-flights identical in-flight points: while a point with some
// flight key is executing, further requests for the same key attach as
// waiters instead of starting a second simulation, and all waiters receive
// the one result. Safe because a flight key fingerprints everything the
// result depends on (Point.flightKey) and simulations are deterministic —
// sharing is observationally identical to re-running.
//
// Cancellation is refcounted: the simulation runs under a context detached
// from any one waiter, so an early canceler detaches without disturbing
// the others; only the last waiter to leave cancels the simulation itself,
// then waits for (and receives) the partial result the engine salvages.
type group struct {
	mu    sync.Mutex
	calls map[string]*call //lint:guardedby mu

	// started counts simulations actually launched; coalesced counts
	// waiters beyond the first that attached to an in-flight call. The
	// single-flight tests and /metrics read both.
	started   int //lint:guardedby mu
	coalesced int //lint:guardedby mu
}

// call is one in-flight point execution.
type call struct {
	g      *group
	cancel context.CancelFunc
	done   chan struct{}

	// Read-only after done closes; the post-close reads carry
	// per-site lockcheck suppressions citing that happens-before edge.
	waiters int             //lint:guardedby group.mu
	sinks   []*progressSink //lint:guardedby group.mu
	out     PointOutcome    //lint:guardedby group.mu
	err     error           //lint:guardedby group.mu
}

// progressSink is one waiter's progress observer. A one-field struct
// (rather than the bare func) so detaching waiters can remove their own
// entry by identity.
type progressSink struct{ fn func(coaxial.Progress) }

// runFunc executes one point under the flight's context, reporting
// progress through the supplied observer.
type runFunc func(ctx context.Context, onProgress func(coaxial.Progress)) (PointOutcome, error)

func newGroup() *group {
	return &group{calls: make(map[string]*call)}
}

// do returns key's outcome, attaching to an in-flight execution when one
// exists and launching run otherwise. onProgress (optional) observes
// progress while attached. When ctx is canceled: non-last waiters detach
// immediately with ctx's error; the last waiter cancels the execution and
// returns its partial outcome and cancellation error.
func (g *group) do(ctx context.Context, key string, onProgress func(coaxial.Progress), run runFunc) (PointOutcome, error) {
	g.mu.Lock()
	c, inFlight := g.calls[key]
	var cctx context.Context
	if !inFlight {
		var cancel context.CancelFunc
		cctx, cancel = context.WithCancel(context.Background())
		c = &call{g: g, cancel: cancel, done: make(chan struct{})}
		g.calls[key] = c
		g.started++
	} else {
		g.coalesced++
	}
	c.waiters++
	var sink *progressSink
	if onProgress != nil {
		sink = &progressSink{fn: onProgress}
		c.sinks = append(c.sinks, sink)
	}
	g.mu.Unlock()

	if !inFlight {
		go g.exec(key, c, cctx, run)
	}

	select {
	case <-c.done:
		//lint:ignore lockcheck receiving on done happens-after exec's final writes and close; out and err are immutable from then on
		return c.out, c.err
	case <-ctx.Done():
	}

	// The waiter's context fired. If the call happened to finish in the
	// same instant, take its result; otherwise detach, and — as the last
	// waiter out — cancel the execution and collect the partials.
	select {
	case <-c.done:
		//lint:ignore lockcheck receiving on done happens-after exec's final writes and close; out and err are immutable from then on
		return c.out, c.err
	default:
	}
	g.mu.Lock()
	c.waiters--
	last := c.waiters == 0
	if sink != nil {
		c.dropSink(sink)
	}
	g.mu.Unlock()
	if !last {
		return PointOutcome{}, ctx.Err()
	}
	c.cancel()
	<-c.done
	//lint:ignore lockcheck the receive on done happens-after exec's final writes and close; out and err are immutable from then on
	return c.out, c.err
}

// exec runs the flight body and publishes its outcome. Named method —
// never a goroutine literal — so coaxlint's phaseiso checker applies its
// spawner discipline, not an exemption.
func (g *group) exec(key string, c *call, ctx context.Context, run runFunc) {
	out, err := run(ctx, c.broadcast)
	g.mu.Lock()
	delete(g.calls, key)
	c.out, c.err = out, err
	g.mu.Unlock()
	close(c.done)
	c.cancel()
}

// broadcast fans one progress observation out to the currently-attached
// waiters. The sink list is copied under the lock and invoked outside it,
// so observers may take other locks (the job store's) freely.
func (c *call) broadcast(p coaxial.Progress) {
	c.g.mu.Lock()
	sinks := append([]*progressSink(nil), c.sinks...)
	c.g.mu.Unlock()
	for _, s := range sinks {
		s.fn(p)
	}
}

// dropSink removes one waiter's sink by identity. Caller holds g.mu.
func (c *call) dropSink(sink *progressSink) {
	for i, s := range c.sinks {
		if s == sink {
			c.sinks = append(c.sinks[:i], c.sinks[i+1:]...)
			return
		}
	}
}

// stats reports lifetime launch/coalesce counters.
func (g *group) stats() (started, coalesced int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.started, g.coalesced
}

// inFlight reports how many distinct points are currently executing.
func (g *group) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
