package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"coaxial"
)

// testWindows keeps real-engine tests fast: a short functional warmup and
// small timed windows (the golden corpus uses larger ones; determinism is
// window-independent).
func testWindows() *Windows {
	return &Windows{FunctionalWarmup: 20_000, Warmup: 1_000, Measure: 3_000}
}

// testRunConfig mirrors what wire.go builds for testWindows, for direct
// Runner comparison runs.
func testRunConfig() coaxial.RunConfig {
	rc := coaxial.DefaultRunConfig()
	w := testWindows()
	rc.FunctionalWarmupInstr = w.FunctionalWarmup
	rc.WarmupInstr = w.Warmup
	rc.MeasureInstr = w.Measure
	return rc
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (submitResponse, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var sub submitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return sub, resp
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("decode job status: %v", err)
	}
	return js
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.NewTimer(60 * time.Second)
	defer deadline.Stop()
	for !cond() {
		select {
		case <-deadline.C:
			t.Fatalf("timed out waiting for %s", what)
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	var js JobStatus
	waitFor(t, "job "+id+" terminal", func() bool {
		js = getStatus(t, ts, id)
		return js.State.terminal()
	})
	return js
}

// fakeEngine is a counting, optionally-blocking backend standing in for
// the simulator in scheduler tests.
type fakeEngine struct {
	mu      sync.Mutex
	calls   int
	entered chan string   // receives one label per RunPoint entry, when non-nil
	block   chan struct{} // when non-nil, RunPoint waits for close or ctx
}

func (e *fakeEngine) RunPoint(ctx context.Context, p Point, onProgress func(coaxial.Progress)) (PointOutcome, error) {
	e.mu.Lock()
	e.calls++
	e.mu.Unlock()
	if e.entered != nil {
		e.entered <- p.Label
	}
	if onProgress != nil {
		onProgress(coaxial.Progress{Phase: "measure", Cycles: 4096, Retired: 1, Target: p.RC.MeasureInstr})
	}
	if e.block != nil {
		select {
		case <-e.block:
		case <-ctx.Done():
			// Salvaged partial, like the real engine.
			return PointOutcome{Result: coaxial.Result{Config: p.Label, Cycles: 42}},
				fmt.Errorf("fake: stopped: %w", ctx.Err())
		}
	}
	return PointOutcome{Result: coaxial.Result{Config: p.Label, Cycles: 100, IPC: 1, Retired: p.RC.MeasureInstr}}, nil
}

func (e *fakeEngine) callCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

// TestServeConcurrentDeterminism is the headline correctness test: 16
// concurrent clients posting a mix of identical and differing jobs all get
// results bit-identical (as JSON) to a direct, fresh Runner.Run of the
// same configuration. Runs under -race in CI.
func TestServeConcurrentDeterminism(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 32})

	presets := []string{"ddr-baseline", "coaxial-4x"}
	// Direct reference runs: a fresh Runner per preset, same RunConfig the
	// wire layer builds.
	want := make(map[string][]byte)
	for _, p := range presets {
		topo, err := coaxial.TopologyPresetByName(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg, _ := topo.Single()
		w, err := coaxial.WorkloadByName("stream-copy")
		if err != nil {
			t.Fatal(err)
		}
		wl := make([]coaxial.Workload, cfg.Cores)
		for i := range wl {
			wl[i] = w
		}
		res, err := coaxial.NewRunner(coaxial.WithRunConfig(testRunConfig())).
			RunMix(context.Background(), cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		want[p] = b
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		preset := presets[c%len(presets)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, resp := postJob(t, ts, JobRequest{
				Kind: "run", Preset: preset, Workload: "stream-copy", Windows: testWindows(),
			})
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("%s: submit status %d", preset, resp.StatusCode)
				return
			}
			js := waitTerminal(t, ts, sub.ID)
			if js.State != StateDone {
				errs <- fmt.Errorf("%s: job %s ended %s (%s)", preset, sub.ID, js.State, js.Error)
				return
			}
			if len(js.Results) != 1 {
				errs <- fmt.Errorf("%s: %d results", preset, len(js.Results))
				return
			}
			got, err := json.MarshalIndent(js.Results[0].Result, "", "  ")
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, want[preset]) {
				errs <- fmt.Errorf("%s: served result differs from direct Runner.Run:\ngot:\n%s\nwant:\n%s",
					preset, got, want[preset])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeSingleFlightCollapse pins the single-flight guarantee: K
// identical in-flight jobs start exactly one simulation, and a second
// batch after completion starts exactly one more (results are not cached
// across flights — only warm state is, at the Runner layer).
func TestServeSingleFlightCollapse(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{})}
	s, ts := newTestServer(t, Options{Workers: 8, QueueDepth: 32, Engine: eng})

	const k = 6
	req := JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc", Windows: testWindows()}
	ids := make([]string, k)
	for i := range ids {
		sub, resp := postJob(t, ts, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids[i] = sub.ID
	}
	// All k jobs must be attached to one flight before release.
	waitFor(t, "all jobs coalesced onto one flight", func() bool {
		started, coalesced := s.flights.stats()
		return started == 1 && coalesced == k-1
	})
	close(eng.block)
	for _, id := range ids {
		js := waitTerminal(t, ts, id)
		if js.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", id, js.State, js.Error)
		}
		if js.Results[0].Result.Cycles != 100 {
			t.Fatalf("job %s: cycles %d, want the shared flight's 100", id, js.Results[0].Result.Cycles)
		}
	}
	if got := eng.callCount(); got != 1 {
		t.Fatalf("engine ran %d times for %d identical in-flight jobs, want 1", got, k)
	}

	// Completed flights don't cache: a fresh identical job simulates again.
	eng.block = nil
	sub, _ := postJob(t, ts, req)
	if js := waitTerminal(t, ts, sub.ID); js.State != StateDone {
		t.Fatalf("second batch job ended %s", js.State)
	}
	if got := eng.callCount(); got != 2 {
		t.Fatalf("engine calls after second batch = %d, want 2", got)
	}
}

// TestServeWarmCacheSharing pins the warm-state story end to end with the
// real engine: the first job captures one warm snapshot; an identical
// later job reuses it (zero new captures) and returns identical bytes.
func TestServeWarmCacheSharing(t *testing.T) {
	runner := coaxial.NewRunner()
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8, Engine: NewRunnerEngine(runner)})

	req := JobRequest{Kind: "run", Preset: "ddr-baseline", Workload: "stream-copy", Windows: testWindows()}
	first, _ := postJob(t, ts, req)
	js1 := waitTerminal(t, ts, first.ID)
	if js1.State != StateDone {
		t.Fatalf("first job ended %s (%s)", js1.State, js1.Error)
	}
	st := runner.WarmStats()
	if st.Captures != 1 || st.Entries != 1 {
		t.Fatalf("after first job: WarmStats = %+v, want 1 capture / 1 entry", st)
	}

	second, _ := postJob(t, ts, req)
	js2 := waitTerminal(t, ts, second.ID)
	if js2.State != StateDone {
		t.Fatalf("second job ended %s (%s)", js2.State, js2.Error)
	}
	if st = runner.WarmStats(); st.Captures != 1 {
		t.Fatalf("second identical job captured again: WarmStats = %+v, want 1 capture", st)
	}
	b1, _ := json.Marshal(js1.Results[0].Result)
	b2, _ := json.Marshal(js2.Results[0].Result)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("warm-reuse result differs from cold result:\ncold: %s\nwarm: %s", b1, b2)
	}
}

// TestServeCancelReturnsPartials cancels a real simulation mid-measure and
// checks DELETE returns salvaged partial measurements.
func TestServeCancelReturnsPartials(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	sub, resp := postJob(t, ts, JobRequest{
		Kind: "run", Preset: "ddr-baseline", Workload: "stream-copy",
		Windows: &Windows{FunctionalWarmup: 20_000, Measure: 100_000_000},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	// Wait for the measure window to actually be underway (progress events
	// fire at cancellation-poll boundaries).
	waitFor(t, "job running with progress", func() bool {
		js := getStatus(t, ts, sub.ID)
		return js.State == StateRunning && js.Progress != nil && js.Progress.Cycles > 0
	})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", dresp.StatusCode)
	}
	var js JobStatus
	if err := json.NewDecoder(dresp.Body).Decode(&js); err != nil {
		t.Fatalf("decode DELETE response: %v", err)
	}
	if js.State != StateCanceled {
		t.Fatalf("state %s after cancel, want canceled", js.State)
	}
	if len(js.Results) != 1 {
		t.Fatalf("%d results after cancel, want 1 partial", len(js.Results))
	}
	pr := js.Results[0]
	if !pr.Partial {
		t.Fatalf("canceled point not marked partial: %+v", pr)
	}
	if pr.Result.Cycles <= 0 || pr.Result.Retired == 0 {
		t.Fatalf("partial result carries no measurements: cycles=%d retired=%d", pr.Result.Cycles, pr.Result.Retired)
	}
	if pr.Result.Retired >= 100_000_000 {
		t.Fatalf("partial result retired a full window (%d), cancellation was a no-op", pr.Result.Retired)
	}
	if pr.Error == "" || js.Error == "" {
		t.Fatalf("cancellation left no error trace: point=%q job=%q", pr.Error, js.Error)
	}
}

// TestServeQueueFull saturates the bounded queue and checks the 429 +
// Retry-After backpressure contract.
func TestServeQueueFull(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{}), entered: make(chan string, 8)}
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, Engine: eng})

	mk := func(seed uint64) JobRequest {
		return JobRequest{Kind: "run", Preset: "coaxial-2x", Workload: "gcc", Seed: seed, Windows: testWindows()}
	}
	first, resp := postJob(t, ts, mk(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	<-eng.entered // the worker claimed it; the queue is empty again

	if _, resp = postJob(t, ts, mk(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d", resp.StatusCode)
	}
	_, resp = postJob(t, ts, mk(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit into full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(eng.block)
	if js := waitTerminal(t, ts, first.ID); js.State != StateDone {
		t.Fatalf("first job ended %s", js.State)
	}
}

// TestServeGracefulShutdown checks the drain contract: running jobs
// finish, new submissions answer 503, health flips to draining.
func TestServeGracefulShutdown(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{}), entered: make(chan string, 8)}
	s := New(Options{Workers: 1, QueueDepth: 4, Engine: eng})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sub, _ := postJob(t, ts, JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "gcc", Windows: testWindows()})
	<-eng.entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	waitFor(t, "draining state", func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.draining
	})

	if _, resp := postJob(t, ts, JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "mcf", Windows: testWindows()}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
		}
	}

	close(eng.block) // let the running job finish
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if js := getStatus(t, ts, sub.ID); js.State != StateDone {
		t.Fatalf("drained job ended %s, want done", js.State)
	}
}

// TestServeStream reads the chunked JSON-lines stream end to end.
func TestServeStream(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})

	sub, _ := postJob(t, ts, JobRequest{Kind: "run", Preset: "coaxial-4x", Workload: "stream-copy", Windows: testWindows()})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	for _, ev := range events {
		switch ev.Type {
		case "status", "progress", "point", "end":
		default:
			t.Fatalf("unknown stream event type %q", ev.Type)
		}
	}
	last := events[len(events)-1]
	if last.Type != "end" || last.Job == nil {
		t.Fatalf("stream did not end with a terminal snapshot: %+v", last)
	}
	if last.Job.State != StateDone || len(last.Job.Results) != 1 {
		t.Fatalf("terminal snapshot incomplete: state=%s results=%d", last.Job.State, len(last.Job.Results))
	}
	// The stream's terminal snapshot and a plain GET agree.
	direct := getStatus(t, ts, sub.ID)
	b1, _ := json.Marshal(last.Job.Results)
	b2, _ := json.Marshal(direct.Results)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("stream end results differ from GET:\nstream: %s\nget:    %s", b1, b2)
	}
}

// TestServeJobStorm hammers every endpoint concurrently; its value is
// running under -race (CI does) over the full submit/get/stream/cancel
// surface.
func TestServeJobStorm(t *testing.T) {
	eng := &fakeEngine{}
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 256, Engine: eng})

	workloads := []string{"gcc", "mcf", "stream-copy"}
	const clients = 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				req := JobRequest{
					Kind: "run", Preset: "coaxial-4x",
					Workload: workloads[(c+i)%len(workloads)],
					Seed:     uint64(i%2 + 1),
					Windows:  testWindows(),
				}
				sub, resp := postJob(t, ts, req)
				if resp.StatusCode != http.StatusAccepted {
					continue // queue-full under storm is a valid answer
				}
				switch i % 3 {
				case 0:
					waitTerminal(t, ts, sub.ID)
				case 1:
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
					if dresp, err := http.DefaultClient.Do(req); err == nil {
						io.Copy(io.Discard, dresp.Body)
						dresp.Body.Close()
					}
				case 2:
					if sresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/stream"); err == nil {
						io.Copy(io.Discard, sresp.Body)
						sresp.Body.Close()
					}
				}
				if lresp, err := http.Get(ts.URL + "/v1/jobs"); err == nil {
					io.Copy(io.Discard, lresp.Body)
					lresp.Body.Close()
				}
				if mresp, err := http.Get(ts.URL + "/metrics"); err == nil {
					io.Copy(io.Discard, mresp.Body)
					mresp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("post-storm shutdown: %v", err)
	}
	started, coalesced := s.flights.stats()
	if started == 0 {
		t.Fatal("storm started no simulations")
	}
	t.Logf("storm: %d flights started, %d coalesced, %d engine calls", started, coalesced, eng.callCount())
}

// TestServeEndpointEdges covers the small HTTP contracts: 404s, method
// rejection, bad payloads, presets, metrics shape.
func TestServeEndpointEdges(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, Engine: &fakeEngine{}})

	if resp, _ := http.Get(ts.URL + "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET missing job: %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE missing job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/nope/stream"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stream missing job: %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit: %d, want 400", resp.StatusCode)
	}
	if resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","preset":"nope","workload":"gcc"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown preset: %d, want 400", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/presets")
	if err != nil {
		t.Fatal(err)
	}
	var pr presetsResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pr.Topologies) == 0 || len(pr.Workloads) != 36 {
		t.Fatalf("presets: %d topologies, %d workloads (want 36)", len(pr.Topologies), len(pr.Workloads))
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"coaxial_serve_jobs{state=\"queued\"}", "coaxial_serve_points_started_total", "coaxial_serve_queue_depth"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServeSweepJob runs a 2×2 sweep through the fake engine and checks
// point ordering and labeling.
func TestServeSweepJob(t *testing.T) {
	eng := &fakeEngine{}
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8, Engine: eng})

	sub, resp := postJob(t, ts, JobRequest{
		Kind:    "sweep",
		Presets: []string{"ddr-baseline", "coaxial-4x"}, Workloads: []string{"gcc", "mcf"},
		Windows: testWindows(),
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if sub.Points != 4 {
		t.Fatalf("sweep points = %d, want 4", sub.Points)
	}
	js := waitTerminal(t, ts, sub.ID)
	if js.State != StateDone {
		t.Fatalf("sweep ended %s (%s)", js.State, js.Error)
	}
	wantLabels := []string{"ddr-baseline/gcc", "ddr-baseline/mcf", "coaxial-4x/gcc", "coaxial-4x/mcf"}
	if len(js.Results) != len(wantLabels) {
		t.Fatalf("%d results, want %d", len(js.Results), len(wantLabels))
	}
	for i, pr := range js.Results {
		if pr.Index != i || pr.Label != wantLabels[i] {
			t.Fatalf("result %d: index=%d label=%q, want %q", i, pr.Index, pr.Label, wantLabels[i])
		}
	}
}
