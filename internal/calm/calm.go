// Package calm implements the paper's Concurrent Access of LLC and Memory
// mechanisms (§IV-C): the decision, per L2 miss, of whether to look up the
// LLC and memory in parallel, trading memory bandwidth for the removal of
// LLC lookup latency from the miss path.
//
// Three deciders are provided, matching §IV-C and the Fig. 7 sensitivity
// study:
//
//   - BandwidthRegulated (CALM_R): monitors the LLC-filtered and unfiltered
//     memory bandwidth demand over epochs; performs CALM with probability
//     min(1, (R-bw_filtered)/bw_unfiltered) when the filtered demand is
//     below the R threshold, and never when above.
//   - MAPI: a PC-indexed saturating-counter predictor of LLC misses
//     (MAP-I from Qureshi & Loh), CALMing predicted misses.
//   - Ideal: an oracle that probes the LLC without side effects.
//   - Off: the conventional serial LLC-then-memory access.
package calm

// Kind selects the CALM mechanism.
type Kind uint8

const (
	// Off serializes LLC and memory access (conventional hierarchy).
	Off Kind = iota
	// Regulated is CALM_R: bandwidth-utilization-regulated probabilistic
	// CALM.
	Regulated
	// MAPI uses the PC-indexed MAP-I LLC miss predictor.
	MAPI
	// Ideal uses an oracle LLC probe.
	Ideal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Off:
		return "serial"
	case Regulated:
		return "calm-r"
	case MAPI:
		return "map-i"
	case Ideal:
		return "ideal"
	default:
		return "invalid"
	}
}

// Config selects and parameterizes a mechanism.
type Config struct {
	Kind Kind
	// R is the bandwidth-utilization threshold for Regulated, as a
	// fraction of peak (the paper's default is 0.70).
	R float64
	// EpochCycles is the bandwidth estimation epoch for Regulated
	// (default 20k cycles).
	EpochCycles int64
}

// Default returns the paper's default mechanism: CALM_70%.
func Default() Config { return Config{Kind: Regulated, R: 0.70} }

// Decisions tallies CALM outcomes for Fig. 7b: a false positive is a CALM
// access that hit in the LLC (wasted memory bandwidth); a false negative is
// a serial access that missed in the LLC (serialized latency).
type Decisions struct {
	L2Misses  uint64
	CALMed    uint64
	TruePos   uint64 // CALM and LLC miss
	FalsePos  uint64 // CALM but LLC hit
	TrueNeg   uint64 // serial and LLC hit
	FalseNeg  uint64 // serial but LLC miss
	LLCMisses uint64
}

// Merge adds other's tallies into d (multi-host aggregation).
func (d *Decisions) Merge(other Decisions) {
	d.L2Misses += other.L2Misses
	d.CALMed += other.CALMed
	d.TruePos += other.TruePos
	d.FalsePos += other.FalsePos
	d.TrueNeg += other.TrueNeg
	d.FalseNeg += other.FalseNeg
	d.LLCMisses += other.LLCMisses
}

// FPRate returns false positives as a fraction of memory accesses (the
// paper's Fig. 7b metric: wasted accesses / true memory accesses).
func (d Decisions) FPRate() float64 {
	if d.LLCMisses == 0 {
		return 0
	}
	return float64(d.FalsePos) / float64(d.LLCMisses)
}

// FNRate returns false negatives as a fraction of all LLC misses.
func (d Decisions) FNRate() float64 {
	if d.LLCMisses == 0 {
		return 0
	}
	return float64(d.FalseNeg) / float64(d.LLCMisses)
}

// Policy is the per-system CALM decision engine. Implementations are not
// safe for concurrent use; each simulated system owns one.
type Policy interface {
	// Decide returns whether this L2 miss should access LLC and memory
	// concurrently. probe reports LLC residency without side effects
	// (used only by the Ideal oracle).
	Decide(core int, pc uint64, now int64, probe func() bool) bool
	// Observe records the access outcome after the LLC lookup: whether
	// the line hit in the LLC and whether CALM was performed, updating
	// predictor state, bandwidth estimates, and decision tallies.
	Observe(core int, pc uint64, llcHit, didCALM bool)
	// Decisions returns the tally so far.
	Decisions() Decisions
	// Reset clears tallies (epoch state and predictor tables persist, as
	// they would across a warmup boundary in hardware).
	Reset()
}

// New constructs the policy for a config. peakGBs is the memory system's
// peak bandwidth (for Regulated's utilization estimates); cores sizes
// per-core predictor state.
func New(cfg Config, cores int, peakGBs float64) Policy {
	switch cfg.Kind {
	case Regulated:
		r := cfg.R
		if r <= 0 {
			r = 0.70
		}
		epoch := cfg.EpochCycles
		if epoch <= 0 {
			epoch = 20000
		}
		return newRegulated(r, epoch, peakGBs)
	case MAPI:
		return newMAPI(cores)
	case Ideal:
		return &ideal{}
	default:
		return &off{}
	}
}

// off never CALMs.
type off struct{ d Decisions }

func (o *off) Decide(int, uint64, int64, func() bool) bool { return false }

func (o *off) Observe(_ int, _ uint64, llcHit, didCALM bool) {
	tally(&o.d, llcHit, didCALM)
}

func (o *off) Decisions() Decisions { return o.d }
func (o *off) Reset()               { o.d = Decisions{} }

// ideal CALMs exactly the L2 misses that miss in the LLC.
type ideal struct{ d Decisions }

func (i *ideal) Decide(_ int, _ uint64, _ int64, probe func() bool) bool {
	return !probe()
}

func (i *ideal) Observe(_ int, _ uint64, llcHit, didCALM bool) {
	tally(&i.d, llcHit, didCALM)
}

func (i *ideal) Decisions() Decisions { return i.d }
func (i *ideal) Reset()               { i.d = Decisions{} }

func tally(d *Decisions, llcHit, didCALM bool) {
	d.L2Misses++
	if !llcHit {
		d.LLCMisses++
	}
	switch {
	case didCALM && llcHit:
		d.CALMed++
		d.FalsePos++
	case didCALM && !llcHit:
		d.CALMed++
		d.TruePos++
	case !didCALM && llcHit:
		d.TrueNeg++
	default:
		d.FalseNeg++
	}
}
