package calm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Off: "serial", Regulated: "calm-r", MAPI: "map-i", Ideal: "ideal", Kind(99): "invalid"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestDefault(t *testing.T) {
	d := Default()
	if d.Kind != Regulated || d.R != 0.70 {
		t.Errorf("default = %+v, want CALM_70%%", d)
	}
}

func TestOffNeverCALMs(t *testing.T) {
	p := New(Config{Kind: Off}, 12, 38.4)
	for i := 0; i < 100; i++ {
		if p.Decide(i%12, uint64(i), int64(i), func() bool { return i%2 == 0 }) {
			t.Fatal("Off policy decided to CALM")
		}
		p.Observe(i%12, uint64(i), i%2 == 0, false)
	}
	d := p.Decisions()
	if d.CALMed != 0 || d.L2Misses != 100 || d.FalseNeg != 50 || d.TrueNeg != 50 {
		t.Errorf("tally: %+v", d)
	}
}

func TestIdealMatchesOracle(t *testing.T) {
	p := New(Config{Kind: Ideal}, 12, 38.4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		hit := rng.Float64() < 0.3
		did := p.Decide(0, uint64(i), int64(i), func() bool { return hit })
		if did == hit {
			t.Fatalf("ideal decided CALM=%v for hit=%v", did, hit)
		}
		p.Observe(0, uint64(i), hit, did)
	}
	d := p.Decisions()
	if d.FalsePos != 0 || d.FalseNeg != 0 {
		t.Errorf("oracle produced errors: %+v", d)
	}
}

func TestMAPILearnsPerPC(t *testing.T) {
	p := New(Config{Kind: MAPI}, 2, 38.4)
	const hitPC, missPC = 0x100, 0x2000
	// Train: hitPC always hits, missPC always misses.
	for i := 0; i < 32; i++ {
		d1 := p.Decide(0, hitPC, int64(i), nil)
		p.Observe(0, hitPC, true, d1)
		d2 := p.Decide(0, missPC, int64(i), nil)
		p.Observe(0, missPC, false, d2)
	}
	if p.Decide(0, hitPC, 100, nil) {
		t.Error("MAP-I still predicts miss for always-hit PC")
	}
	if !p.Decide(0, missPC, 100, nil) {
		t.Error("MAP-I predicts hit for always-miss PC")
	}
	// Per-core isolation: core 1's table is untrained (init = weak miss).
	if !p.Decide(1, hitPC, 100, nil) {
		t.Error("core 1 table should still hold the initial miss bias")
	}
}

func TestRegulatedThrottlesAtHighUtilization(t *testing.T) {
	// peak 38.4 GB/s = 16 bytes/cycle. Feed an epoch where LLC-missing
	// traffic alone exceeds R: policy must stop CALMing.
	p := newRegulated(0.70, 1000, 38.4)
	// Epoch 1: 1000 cycles, 500 L2 misses all LLC misses = 32 KB over
	// 1000 cycles = 32 B/cycle = 200% of peak -> utilFiltered >> R.
	for i := 0; i < 500; i++ {
		p.Observe(0, 0, false, false)
	}
	p.rollEpoch(1000)
	calmed := 0
	for i := 0; i < 200; i++ {
		if p.Decide(0, 0, 1000+int64(i), nil) {
			calmed++
		}
	}
	if calmed != 0 {
		t.Errorf("CALMed %d times above the R threshold", calmed)
	}
}

func TestRegulatedCALMsWhenIdle(t *testing.T) {
	p := newRegulated(0.70, 1000, 38.4)
	// Epoch with tiny filtered demand: 10 LLC misses in 10000 cycles.
	for i := 0; i < 10; i++ {
		p.Observe(0, 0, false, false)
	}
	p.rollEpoch(10_000)
	calmed := 0
	for i := 0; i < 200; i++ {
		if p.Decide(0, 0, 10_000+int64(i), nil) {
			calmed++
		}
	}
	if calmed < 190 {
		t.Errorf("only %d/200 CALMed at near-zero utilization", calmed)
	}
}

func TestRegulatedProbabilityBand(t *testing.T) {
	// utilFiltered = 0.35, utilUnfiltered = 0.70 -> p = (0.7-0.35)/0.7 = 0.5.
	p := newRegulated(0.70, 1000, 38.4)
	// 16 B/cycle peak; epoch 1000 cycles; filtered 0.35 => 5600 B =
	// 87.5 lines; unfiltered 0.7 => 175 lines.
	for i := 0; i < 175; i++ {
		p.Observe(0, 0, i >= 87, false) // first 87 miss LLC (llcHit=false)... inverted below
	}
	// Recount precisely: we want 87 LLC misses of 175 L2 misses.
	p.l2Misses, p.llcMisses = 175, 87
	p.rollEpoch(1000)
	// Keep the estimate alive across epochs by observing the same demand
	// mix while deciding.
	calmed := 0
	const n = 4000
	for i := 0; i < n; i++ {
		now := 1000 + int64(i)
		if p.Decide(0, 0, now, nil) {
			calmed++
		}
		// ~0.175 L2 misses/cycle with ~50% LLC miss ratio.
		if i%6 == 0 {
			p.Observe(0, 0, i%12 != 0, false)
		}
	}
	frac := float64(calmed) / n
	if frac < 0.35 || frac > 0.68 {
		t.Errorf("CALM probability %.2f, want ~0.5", frac)
	}
}

func TestTallyInvariants(t *testing.T) {
	f := func(events []bool) bool {
		var d Decisions
		rng := rand.New(rand.NewSource(7))
		for _, hit := range events {
			tally(&d, hit, rng.Intn(2) == 0)
		}
		return d.L2Misses == uint64(len(events)) &&
			d.CALMed == d.TruePos+d.FalsePos &&
			d.L2Misses == d.TruePos+d.FalsePos+d.TrueNeg+d.FalseNeg &&
			d.LLCMisses == d.TruePos+d.FalseNeg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRates(t *testing.T) {
	d := Decisions{LLCMisses: 100, FalsePos: 4, FalseNeg: 11}
	if d.FPRate() != 0.04 || d.FNRate() != 0.11 {
		t.Errorf("rates: %v %v", d.FPRate(), d.FNRate())
	}
	var empty Decisions
	if empty.FPRate() != 0 || empty.FNRate() != 0 {
		t.Error("empty rates must be 0")
	}
}

func TestResetKeepsLearnedState(t *testing.T) {
	p := New(Config{Kind: MAPI}, 1, 38.4)
	for i := 0; i < 16; i++ {
		p.Observe(0, 0x42, true, false) // train toward hit
	}
	p.Reset()
	if p.Decisions().L2Misses != 0 {
		t.Error("tallies survived reset")
	}
	if p.Decide(0, 0x42, 0, nil) {
		t.Error("predictor training lost across reset")
	}
}

func TestNewDefaultsByKind(t *testing.T) {
	if _, ok := New(Config{Kind: Regulated}, 1, 38.4).(*regulated); !ok {
		t.Error("Regulated constructor")
	}
	if _, ok := New(Config{Kind: Off}, 1, 38.4).(*off); !ok {
		t.Error("Off constructor")
	}
	if _, ok := New(Config{Kind: Ideal}, 1, 38.4).(*ideal); !ok {
		t.Error("Ideal constructor")
	}
	if _, ok := New(Config{Kind: MAPI}, 1, 38.4).(*mapi); !ok {
		t.Error("MAPI constructor")
	}
	if _, ok := New(Config{Kind: Kind(42)}, 1, 38.4).(*off); !ok {
		t.Error("unknown kind must fall back to Off")
	}
}

func TestRegulatedDeterministic(t *testing.T) {
	mk := func() []bool {
		p := newRegulated(0.7, 100, 38.4)
		p.l2Misses, p.llcMisses = 40, 20
		p.rollEpoch(100)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, p.Decide(0, 0, 100+int64(i), nil))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("regulated decisions not deterministic")
		}
	}
}
