package calm

import (
	"coaxial/internal/clock"
	"coaxial/internal/memreq"
)

// regulated implements CALM_R (§IV-C). Each L2 controller estimates its
// memory bandwidth demand with and without the LLC acting as a filter
// (bw_filtered from L2 misses that also miss the LLC, bw_unfiltered from
// all L2 misses). If the filtered demand already exceeds R, CALM is not
// performed; otherwise the L2 miss performs CALM with probability
// min(1, (R - bw_filtered)/bw_unfiltered). We aggregate the estimate
// globally, which is what the per-L2 estimates converge to for the
// rate-mode workloads the paper evaluates.
type regulated struct {
	d Decisions

	r            float64
	epoch        int64 //lint:unit cycles
	peakBytesCyc float64 //lint:unit bytes/cycle

	epochStart int64 //lint:unit cycles
	l2Misses   uint64 // this epoch
	llcMisses  uint64 // this epoch

	// Estimates from the last completed epoch, as utilization fractions.
	utilFiltered   float64
	utilUnfiltered float64

	rng uint64
}

func newRegulated(r float64, epoch int64, peakGBs float64) *regulated {
	return &regulated{
		r:            r,
		epoch:        epoch,
		peakBytesCyc: clock.BytesPerCycle(peakGBs),
		rng:          0x1234_5678_9ABC_DEF1,
	}
}

func (g *regulated) rand01() float64 {
	g.rng ^= g.rng >> 12
	g.rng ^= g.rng << 25
	g.rng ^= g.rng >> 27
	return float64((g.rng*0x2545F4914F6CDD1D)>>11) / (1 << 53)
}

func (g *regulated) rollEpoch(now int64) {
	span := now - g.epochStart
	if span < g.epoch {
		return
	}
	bytesFiltered := float64(g.llcMisses * memreq.LineSize)
	bytesUnfiltered := float64(g.l2Misses * memreq.LineSize)
	denom := float64(span) * g.peakBytesCyc
	if denom > 0 {
		g.utilFiltered = bytesFiltered / denom
		g.utilUnfiltered = bytesUnfiltered / denom
	}
	g.epochStart = now
	g.l2Misses = 0
	g.llcMisses = 0
}

func (g *regulated) Decide(_ int, _ uint64, now int64, _ func() bool) bool {
	g.rollEpoch(now)
	if g.utilFiltered >= g.r {
		return false
	}
	if g.utilUnfiltered <= 0 {
		// No demand estimate yet (first epoch): CALM freely; the system
		// is unloaded.
		return true
	}
	p := (g.r - g.utilFiltered) / g.utilUnfiltered
	if p >= 1 {
		return true
	}
	return g.rand01() < p
}

func (g *regulated) Observe(_ int, _ uint64, llcHit, didCALM bool) {
	g.l2Misses++
	if !llcHit {
		g.llcMisses++
	}
	tally(&g.d, llcHit, didCALM)
}

func (g *regulated) Decisions() Decisions { return g.d }
func (g *regulated) Reset()               { g.d = Decisions{} }

// mapi is the MAP-I predictor: per-core tables of 3-bit saturating
// counters indexed by a PC hash; counter >= 4 predicts an LLC miss (CALM).
type mapi struct {
	d      Decisions
	tables [][]uint8
}

const mapiEntries = 1024

func newMAPI(cores int) *mapi {
	m := &mapi{tables: make([][]uint8, cores)}
	for i := range m.tables {
		t := make([]uint8, mapiEntries)
		for j := range t {
			t[j] = 4 // weakly predict miss: memory-intensive phases ramp fast
		}
		m.tables[i] = t
	}
	return m
}

func (m *mapi) slot(core int, pc uint64) *uint8 {
	if core < 0 || core >= len(m.tables) {
		core = 0
	}
	h := pc ^ (pc >> 10) ^ (pc >> 20)
	return &m.tables[core][h%mapiEntries]
}

func (m *mapi) Decide(core int, pc uint64, _ int64, _ func() bool) bool {
	return *m.slot(core, pc) >= 4
}

func (m *mapi) Observe(core int, pc uint64, llcHit, didCALM bool) {
	s := m.slot(core, pc)
	if llcHit {
		if *s > 0 {
			*s--
		}
	} else if *s < 7 {
		*s++
	}
	tally(&m.d, llcHit, didCALM)
}

func (m *mapi) Decisions() Decisions { return m.d }
func (m *mapi) Reset()               { m.d = Decisions{} }
