package cxl

import (
	"math"

	"coaxial/internal/dram"
	"coaxial/internal/memreq"
	"coaxial/internal/stats"
)

// This file splits the single-host Channel into the two halves a rack-scale
// pooled topology needs: a host-side Port (the CPU-side CXL controller and
// the serial link, private to one host) and a shared PooledDevice (the
// type-3 pool: per-port arbitration into a common set of DDR channels).
//
// The split preserves Channel's per-cycle operation order exactly. One
// Channel tick runs: (1) deliver due responses, (2) admit due ingress onto
// the TX link, (3) retry device-stalled requests, (4) drain link arrivals
// into the DDR controllers, (5) tick the DDR channels. A Port tick runs
// steps 1–2 (host-side state only, so hosts tick in parallel race-free);
// the device phase runs steps 3–5, visiting ports in fixed attach order.
// With a single port the interleaving of the two halves across channels is
// immaterial — steps 1–2 never read device state, steps 3–5 never read
// host-side state, and every cross-step handoff (a response scheduled in
// step 5 via Port.Complete, an arrival pushed in step 2) targets a strictly
// future cycle — so a one-host rack is bit-identical to the equivalent
// single-System run (TestRackClockingEquivalence).

// PooledDeviceConfig describes one shared type-3 pool device.
type PooledDeviceConfig struct {
	// Name labels the device in rack results ("pool0", ...).
	Name string
	// DDR configures each DDR channel on the device.
	DDR dram.Config
	// DDRChannels is the number of DDR channels on the device.
	DDRChannels int
}

// PortStats counts one port's link-level activity (the per-host slice of
// Stats for a pooled device).
type PortStats = Stats

// PooledDevice is a type-3 memory pool shared by several hosts: a set of
// DDR channels fed by per-host Ports. All device-side state advances only
// inside TickDevice, which the rack driver calls once per cycle from a
// single goroutine, in fixed device order — the deterministic coupling
// point between hosts.
type PooledDevice struct {
	cfg   PooledDeviceConfig
	ddr   []*dram.Channel
	ports []*Port

	// Per-host accounting over the measurement window, indexed by host ID
	// (grown on attach). Reads/writes are counted as the device forwards
	// them into a DDR controller; bytes at data transfer (response for
	// reads, forward for writes).
	hostReadBytes  []uint64
	hostWriteBytes []uint64

	// queueHist distributes device-side queuing delay (DDR controller
	// arrival to first command) of completed reads, in cycles; the rack
	// quotes its tails as the pooled-queue latency percentiles.
	queueHist *stats.Histogram
	// totalQueueCycles sums the same delays plus ingress-stall (retry)
	// cycles across all hosts: the device's total queueing, the quantity
	// the metamorphic rack law bounds (adding a host to a contended device
	// never reduces it).
	totalQueueCycles uint64
}

// NewPooledDevice builds a pool device. systemSubChannels densifies the DDR
// address decode exactly as NewChannel does for single-host channels, so a
// one-port device is timing-identical to the device inside a Channel.
func NewPooledDevice(cfg PooledDeviceConfig, systemSubChannels int) *PooledDevice {
	if cfg.DDRChannels < 1 {
		cfg.DDRChannels = 1
	}
	d := &PooledDevice{
		cfg:       cfg,
		queueHist: stats.NewHistogram(6000, 4),
	}
	for i := 0; i < cfg.DDRChannels; i++ {
		d.ddr = append(d.ddr, dram.NewChannel(cfg.DDR, systemSubChannels))
	}
	return d
}

// Name returns the device's configured label.
func (d *PooledDevice) Name() string { return d.cfg.Name }

// AttachHost creates a Port binding one of a host's CXL channels to this
// device. Attach order is arbitration order: TickDevice serves ports in the
// order they were attached, so the rack driver attaches hosts in index
// order to make cross-host arbitration deterministic. host tags the port's
// traffic for fairness accounting and validation walks.
func (d *PooledDevice) AttachHost(link LinkParams, ingressDepth, host int) *Port {
	if ingressDepth < 1 {
		ingressDepth = 64
	}
	p := &Port{
		dev:          d,
		host:         host,
		ingressDepth: ingressDepth,
		port:         link.portCycles(),
		rxSer:        link.rxSerCycles(),
		txData:       link.txDataSerCycles(),
		txReq:        link.txReqSerCycles(),
	}
	d.ports = append(d.ports, p)
	for len(d.hostReadBytes) <= host {
		d.hostReadBytes = append(d.hostReadBytes, 0)
		d.hostWriteBytes = append(d.hostWriteBytes, 0)
	}
	return p
}

// Ports returns the attached ports in arbitration order.
func (d *PooledDevice) Ports() []*Port { return d.ports }

// DDR exposes the device's DDR channels (validation taps and tests).
func (d *PooledDevice) DDR() []*dram.Channel { return d.ddr }

// TickDevice advances the device side of every attached port, then the DDR
// channels, to cycle now. Ports are served in attach order: stalled
// requests retry first (FIFO), then due link arrivals drain into the DDR
// controllers — the same order Channel.Tick uses for its single host.
// Must be called from one goroutine, after every host's port ticks for the
// cycle (the rack's sequential device phase).
func (d *PooledDevice) TickDevice(now int64) {
	for _, p := range d.ports {
		p.tickDeviceSide(now)
	}
	for _, ch := range d.ddr {
		ch.Tick(now)
	}
}

// NextEvent returns the earliest cycle after now at which TickDevice could
// make progress: a link arrival coming due at any port, or a device DDR
// channel event. Stalled retries need no separate bound for the same
// reason as Channel.NextEvent: a DDR queue slot only frees at a cycle the
// DDR channels' own NextEvent already reports.
func (d *PooledDevice) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	for _, p := range d.ports {
		if t, ok := p.deviceQ.PeekAt(); ok && t < next {
			next = t
		}
	}
	for _, ch := range d.ddr {
		if t := ch.NextEvent(now); t < next {
			next = t
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// SetLazy switches per-sub-channel event skipping in the device's DDR
// channels (see Channel.SetLazy).
func (d *PooledDevice) SetLazy(on bool) {
	for _, ch := range d.ddr {
		ch.SetLazy(on)
	}
}

// Sync realizes lagging background accounting in the DDR channels.
// Idempotent at a cycle, so each host's port may forward its Sync here.
func (d *PooledDevice) Sync(now int64) {
	for _, ch := range d.ddr {
		ch.Sync(now)
	}
}

// Counters sums the device's DRAM activity across its DDR channels.
func (d *PooledDevice) Counters() dram.Counters {
	var total dram.Counters
	for _, ch := range d.ddr {
		total.Accumulate(ch.Counters())
	}
	return total
}

// ResetCounters zeroes the device DDR counters. Idempotent, so each port's
// ResetCounters may forward here at the same measurement boundary.
func (d *PooledDevice) ResetCounters() {
	for _, ch := range d.ddr {
		ch.ResetCounters()
	}
}

// ResetStats zeroes the device-level queueing and fairness accounting at
// the measurement boundary (the rack driver calls it alongside each host's
// stats reset).
func (d *PooledDevice) ResetStats() {
	d.queueHist.Reset()
	d.totalQueueCycles = 0
	for i := range d.hostReadBytes {
		d.hostReadBytes[i] = 0
		d.hostWriteBytes[i] = 0
	}
}

// TotalQueueCycles returns the device's accumulated queueing: DDR
// controller queuing delay of completed reads plus ingress-stall cycles,
// summed across all hosts since the last ResetStats.
func (d *PooledDevice) TotalQueueCycles() uint64 { return d.totalQueueCycles }

// QueuePercentile returns the p-th percentile of device-side read queuing
// delay, in cycles.
func (d *PooledDevice) QueuePercentile(p float64) int64 { return d.queueHist.Percentile(p) }

// HostBytes returns host h's bytes read from and written to this device
// since the last ResetStats (the fairness accounting input).
func (d *PooledDevice) HostBytes(h int) (read, write uint64) {
	if h < 0 || h >= len(d.hostReadBytes) {
		return 0, 0
	}
	return d.hostReadBytes[h], d.hostWriteBytes[h]
}

// PeakGBs returns the device's peak deliverable DDR bandwidth.
func (d *PooledDevice) PeakGBs() float64 {
	var total float64
	for _, ch := range d.ddr {
		total += ch.PeakGBs()
	}
	return total
}

// Idle reports whether the device's DDR channels have fully drained.
func (d *PooledDevice) Idle() bool {
	for _, ch := range d.ddr {
		if !ch.Idle() {
			return false
		}
	}
	return true
}

// ddrEnqueue routes a request to the device DDR channel for its address,
// with the same hash Channel uses.
func (d *PooledDevice) ddrEnqueue(r *memreq.Request, now int64) bool {
	ch := d.ddr[0]
	if len(d.ddr) > 1 {
		line := r.Addr >> memreq.LineShift
		h := line ^ (line >> 6) ^ (line >> 11)
		ch = d.ddr[h%uint64(len(d.ddr))]
	}
	return ch.Enqueue(r, now)
}

// Port is the host-side half of one CXL channel into a PooledDevice: the
// CPU-side CXL controller, the serial link in both directions, and the
// response path. It implements the same backend surface as Channel
// (memreq.Backend, counters, retired-write collection, validation walks),
// so a sim.System embeds it exactly like any other memory backend.
//
// Concurrency contract: Enqueue, Tick, NextEvent, and the response
// deliveries inside Tick touch only port-local state, so the owning host
// may tick on its own goroutine during the parallel host phase. deviceQ,
// stalled, outstanding, and stats are written by the device phase
// (TickDevice) and by Enqueue/Tick — never concurrently, because the rack
// driver separates the phases with barriers.
type Port struct {
	dev          *Device
	host         int
	ingressDepth int

	// Link traversal and serialization latencies, pre-converted to cycles.
	port                 int64 //lint:unit cycles
	rxSer, txData, txReq int64 //lint:unit cycles

	// Link occupancy cursors.
	txFree int64 //lint:unit cycles
	rxFree int64 //lint:unit cycles

	// ingress: requests accepted from the cache hierarchy, awaiting TX link
	// allocation (host phase).
	ingress memreq.TimedHeap
	// deviceQ: requests in flight on the link, ordered by device arrival;
	// drained by the device phase.
	deviceQ memreq.TimedHeap
	// stalled: requests at the device waiting for a DDR queue slot
	// (device phase).
	stalled []waiting
	// responses: completed reads traversing back, ordered by CPU-side
	// delivery cycle (pushed by the device phase, popped by the host phase
	// of later cycles).
	responses memreq.TimedHeap

	// outstanding counts requests admitted but not yet accepted by a DDR
	// controller. Enqueue (host phase) increments; the device phase
	// decrements. Never concurrently: admission decisions only read it in
	// the host phase.
	outstanding int

	collectRetired bool
	//lint:owns handed to the owning System's retired drain by DrainRetired, which releases them
	retired []*memreq.Request

	stats PortStats
	// readBytes/writeBytes tally this port's data transfers for per-host
	// counter attribution on shared devices.
	readBytes, writeBytes uint64
	now                   int64 //lint:unit cycles
}

// Device is an alias kept so Port's field reads naturally; the pooled
// device is the only device kind ports attach to.
type Device = PooledDevice

// Host returns the attached host's index.
func (p *Port) Host() int { return p.host }

// Device returns the pool device this port feeds.
func (p *Port) Device() *PooledDevice { return p.dev }

// Enqueue implements memreq.Backend: the request enters the CPU-side CXL
// controller at cycle at. Same admission bound and completer interposition
// as Channel.Enqueue.
func (p *Port) Enqueue(r *memreq.Request, at int64) bool {
	if p.outstanding >= p.ingressDepth {
		return false
	}
	if at < p.now {
		at = p.now
	}
	p.outstanding++
	r.Inner = r.Ret
	r.Ret = p
	p.ingress.Push(at, r)
	return true
}

// Complete receives DRAM-side completions from the shared device (read
// data ready, or write committed) and schedules the response path. Runs in
// the sequential device phase (the DDR channels tick there), so pushing
// into the port's response heap is race-free; deliveries happen in later
// cycles' host phases because the device egress port alone puts the
// delivery at least one cycle out.
func (p *Port) Complete(r *memreq.Request, now int64) {
	if r.Kind == memreq.Write {
		p.writeBytes += memreq.LineSize
		p.dev.hostWriteBytes[p.host] += memreq.LineSize
		if r.Inner != nil {
			r.Inner.Complete(r, now)
		} else if p.collectRetired {
			p.retired = append(p.retired, r)
		}
		return
	}
	p.readBytes += memreq.LineSize
	p.dev.hostReadBytes[p.host] += memreq.LineSize
	if q := r.QueueDelay(); q >= 0 {
		p.dev.queueHist.Add(q)
		p.dev.totalQueueCycles += uint64(q)
	}
	ready := now + p.port
	start := ready
	if p.rxFree > start {
		start = p.rxFree
	}
	p.rxFree = start + p.rxSer
	deliver := start + p.rxSer + p.port
	r.CXLTime += deliver - now
	p.responses.Push(deliver, r)
}

// Tick implements memreq.Backend: the host-side half of Channel.Tick —
// deliver due responses, admit due ingress onto the TX link. Device-side
// work (stalled retries, link-arrival drain, DDR ticks) belongs to
// PooledDevice.TickDevice.
func (p *Port) Tick(now int64) {
	if now <= p.now {
		return
	}
	p.now = now

	for {
		r, ok := p.responses.PopDue(now)
		if !ok {
			break
		}
		p.stats.RespDelivered++
		if r.Inner != nil {
			r.Inner.Complete(r, now)
		}
	}

	for {
		r, ok := p.ingress.PopDue(now)
		if !ok {
			break
		}
		ser := p.txReq
		if r.Kind == memreq.Write {
			ser = p.txData
		}
		ready := now + p.port
		start := ready
		if p.txFree > start {
			start = p.txFree
		}
		p.txFree = start + ser
		arrive := start + ser + p.port
		r.CXLTime += arrive - now
		p.deviceQ.Push(arrive, r)
	}
}

// tickDeviceSide runs this port's device-phase work at cycle now: retry
// stalled requests in FIFO order, then drain due link arrivals into the
// shared DDR controllers, stopping at the first stall. Called only by
// PooledDevice.TickDevice.
func (p *Port) tickDeviceSide(now int64) {
	for len(p.stalled) > 0 {
		w := p.stalled[0]
		if !p.dev.ddrEnqueue(w.req, now) {
			break
		}
		wait := uint64(now - w.since)
		p.stats.RetryCycles += wait
		p.dev.totalQueueCycles += wait
		w.req.Spill += now - w.since
		p.stalled = p.stalled[1:]
		p.noteForwarded(w.req)
	}
	if len(p.stalled) == 0 {
		for {
			r, ok := p.deviceQ.PopDue(now)
			if !ok {
				break
			}
			if p.dev.ddrEnqueue(r, now) {
				p.noteForwarded(r)
			} else {
				p.stalled = append(p.stalled, waiting{req: r, since: now})
				break
			}
		}
	}
}

func (p *Port) noteForwarded(r *memreq.Request) {
	p.outstanding--
	if r.Kind == memreq.Write {
		p.stats.WritesForwarded++
	} else {
		p.stats.ReadsForwarded++
	}
}

// NextEvent implements memreq.Backend for the host-side half only: the
// earliest due response delivery or ingress admission. Device-side events
// (link arrivals, DDR activity) are bounded by PooledDevice.NextEvent,
// which the rack driver folds into the global cycle choice; after each
// device phase it re-arms the owning system's cached bound with a fresh
// call here (responses scheduled by the device phase only ever lower it).
func (p *Port) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	if t, ok := p.responses.PeekAt(); ok && t < next {
		next = t
	}
	if t, ok := p.ingress.PeekAt(); ok && t < next {
		next = t
	}
	if next <= now {
		return now + 1
	}
	return next
}

// SetLazy forwards the clocking mode to the shared device's DDR channels
// (idempotent across ports).
func (p *Port) SetLazy(on bool) { p.dev.SetLazy(on) }

// Sync realizes lagging accounting in the shared device (idempotent across
// ports; the port itself keeps no per-cycle accounting).
func (p *Port) Sync(now int64) { p.dev.Sync(now) }

// PeakGBs implements memreq.Backend: the DDR capacity behind the device
// (the host's utilization is quoted against the full pool it can reach,
// matching Channel.PeakGBs for one-port devices).
func (p *Port) PeakGBs() float64 { return p.dev.PeakGBs() }

// Counters reports the DRAM activity attributable to this port. A sole
// port owns its device outright and reports the device's full DRAM
// counters — making a one-host rack's per-host Result identical to the
// single-System one. With multiple ports sharing the device, DRAM commands
// cannot be attributed per host, so the port reports only its own data
// transfers (RD/WR command counts and bytes); the full device counters
// appear in the rack result's per-device stats.
func (p *Port) Counters() dram.Counters {
	if len(p.dev.ports) == 1 {
		return p.dev.Counters()
	}
	return dram.Counters{
		RD:         p.readBytes / memreq.LineSize,
		WR:         p.writeBytes / memreq.LineSize,
		ReadBytes:  p.readBytes,
		WriteBytes: p.writeBytes,
	}
}

// ResetCounters zeroes the port's tallies and the device DDR counters
// (idempotent across ports resetting at the same measurement boundary).
func (p *Port) ResetCounters() {
	p.stats = PortStats{}
	p.readBytes, p.writeBytes = 0, 0
	p.dev.ResetCounters()
}

// LinkStats returns this port's link activity counters.
func (p *Port) LinkStats() PortStats { return p.stats }

// SetCollectRetired enables buffering of writes that die inside the device
// (committed with no requester completer) for the owning system's retired
// drain. Retirements happen in the device phase, so the rack driver drains
// them in its phase after the device phase — not inside the host tick.
func (p *Port) SetCollectRetired(on bool) { p.collectRetired = on }

// DrainRetired hands every buffered retired request to fn and clears the
// buffer. Call only from the rack's sequential phases.
func (p *Port) DrainRetired(fn func(*memreq.Request)) {
	if len(p.retired) == 0 {
		return
	}
	for i, r := range p.retired {
		p.retired[i] = nil
		fn(r)
	}
	p.retired = p.retired[:0]
}

// Outstanding reports requests admitted but not yet accepted by a device
// DDR controller.
func (p *Port) Outstanding() int { return p.outstanding }

// IngressDepth reports the configured admission bound on Outstanding.
func (p *Port) IngressDepth() int { return p.ingressDepth }

// ForEachPending visits every request currently inside this port: awaiting
// the TX link, in flight to the device, stalled on DDR backpressure, or
// traversing back on the response path. Requests inside the shared DDR
// controllers are not included — the rack walks each device's DDR once and
// dispatches by Request.Host, so no request is visited twice when a host
// has several ports on one device.
func (p *Port) ForEachPending(fn func(*memreq.Request)) {
	p.ingress.ForEach(fn)
	p.deviceQ.ForEach(fn)
	for i := range p.stalled {
		fn(p.stalled[i].req)
	}
	p.responses.ForEach(fn)
}

// Idle reports whether the port and the shared device have fully drained.
// On a shared device another host's in-flight work keeps Idle false — the
// conservative answer for drain checks.
func (p *Port) Idle() bool {
	if p.outstanding != 0 || p.ingress.Len() != 0 || p.deviceQ.Len() != 0 ||
		len(p.stalled) != 0 || p.responses.Len() != 0 {
		return false
	}
	return p.dev.Idle()
}
