// Package cxl models a CXL.mem channel: the processor- and device-side CXL
// port pipelines, the serial PCIe link with direction-dependent
// serialization delays and occupancy (queuing), and the type-3 device whose
// DDR controller(s) the requests terminate at.
//
// Latency model (paper §V): each of the four port traversals (CPU egress,
// device ingress, device egress, CPU ingress) costs 12.5 ns of flit
// packing, encoding/decoding and packet processing. The PCIe bus adds a
// serialization delay set by direction, bus width, and goodput: a 64B line
// is received (DRAM->CPU) in 2.5 ns on a symmetric x8 channel (26 GB/s
// goodput) and transmitted (CPU->DRAM) in 5.5 ns (13 GB/s goodput). The
// asymmetric 20RX/12TX variant receives in 2 ns (32 GB/s) and transmits in
// 9 ns (10 GB/s). Unloaded read adder: 4 x 12.5 + 2.5 = 52.5 ns.
package cxl

import (
	"math"

	"coaxial/internal/clock"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
)

// LinkParams captures one CXL channel's interface timing and bandwidth.
type LinkParams struct {
	// Name identifies the configuration in reports.
	Name string
	// PortNS is the one-way latency of a single CXL port traversal in ns
	// (12.5 by default; the 70 ns sensitivity study uses 17.5; an
	// OMI-class 10 ns interface uses 2.5).
	PortNS float64
	// RXGoodputGBs is the DRAM->CPU goodput after header overheads.
	RXGoodputGBs float64
	// TXGoodputGBs is the CPU->DRAM goodput after header overheads.
	TXGoodputGBs float64
	// ReqHeaderBytes is the size of a read request message on the TX link.
	ReqHeaderBytes int
}

// SymmetricX8 returns the default x8 CXL channel: 32 pins, 16 per
// direction, 26/13 GB/s RX/TX goodput.
func SymmetricX8() LinkParams {
	return LinkParams{Name: "x8", PortNS: 12.5, RXGoodputGBs: 26, TXGoodputGBs: 13, ReqHeaderBytes: 8}
}

// AsymmetricX8 returns the CXL-asym channel (§IV-D): the same 32 pins
// repurposed as 20 RX and 12 TX, for 32/10 GB/s RX/TX goodput.
func AsymmetricX8() LinkParams {
	return LinkParams{Name: "x8-asym", PortNS: 12.5, RXGoodputGBs: 32, TXGoodputGBs: 10, ReqHeaderBytes: 8}
}

// WithPortNS returns a copy with a different per-traversal port latency,
// used by the latency sensitivity studies (50 ns premium = 12.5 ns/port,
// 70 ns = 17.5, OMI-class 10 ns = 2.5).
func (p LinkParams) WithPortNS(ns float64) LinkParams {
	p.PortNS = ns
	return p
}

// portCycles returns one port traversal in cycles.
func (p LinkParams) portCycles() int64 { return clock.Cycles(p.PortNS) }

// rxSerCycles returns the RX serialization of a 64B line.
func (p LinkParams) rxSerCycles() int64 {
	return clock.SerializationCycles(memreq.LineSize, p.RXGoodputGBs)
}

// txDataSerCycles returns the TX serialization of a 64B write.
func (p LinkParams) txDataSerCycles() int64 {
	return clock.SerializationCycles(memreq.LineSize, p.TXGoodputGBs)
}

// txReqSerCycles returns the TX serialization of a read request header.
func (p LinkParams) txReqSerCycles() int64 {
	return clock.SerializationCycles(p.ReqHeaderBytes, p.TXGoodputGBs)
}

// UnloadedReadAdderNS returns the minimum latency the channel adds to a
// read, for documentation and tests (52.5 ns for the default symmetric x8).
func (p LinkParams) UnloadedReadAdderNS() float64 {
	return 4*p.PortNS + clock.NS(p.rxSerCycles())
}

// ChannelConfig describes one CXL channel and its type-3 device.
type ChannelConfig struct {
	Link LinkParams
	// DDR configures each DDR channel on the type-3 device.
	DDR dram.Config
	// DDRChannels is the number of DDR channels behind this CXL channel
	// (1 for symmetric x8; 2 for CXL-asym, §IV-D).
	DDRChannels int
	// IngressDepth bounds requests accepted but not yet handed to the
	// device's DDR controllers (CXL controller message queues).
	IngressDepth int
}

// DefaultChannelConfig returns a symmetric x8 channel with one DDR5-4800
// channel on the device.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		Link:         SymmetricX8(),
		DDR:          dram.DefaultConfig(),
		DDRChannels:  1,
		IngressDepth: 64,
	}
}

// Stats counts link-level activity.
type Stats struct {
	ReadsForwarded  uint64
	WritesForwarded uint64
	RespDelivered   uint64
	// RetryCycles accumulates cycles requests spent waiting at the device
	// for a DDR controller queue slot (backpressure).
	RetryCycles uint64
}

// waiting is a request stalled at the device ingress on DDR backpressure.
type waiting struct {
	req   *memreq.Request
	since int64 //lint:unit cycles
}

// Channel implements memreq.Backend for a CXL-attached memory channel.
type Channel struct {
	cfg ChannelConfig
	// Link traversal and serialization latencies, pre-converted to cycles.
	port                 int64 //lint:unit cycles
	rxSer, txData, txReq int64 //lint:unit cycles

	ddr []*dram.Channel

	// Link occupancy cursors.
	txFree int64 //lint:unit cycles
	rxFree int64 //lint:unit cycles

	// ingress: requests accepted from the cache hierarchy, ordered by
	// their on-chip arrival cycle, awaiting TX link allocation.
	ingress memreq.TimedHeap
	// deviceQ: requests in flight on the link, ordered by device arrival.
	deviceQ memreq.TimedHeap
	// stalled: requests at the device waiting for a DDR queue slot.
	stalled []waiting
	// responses: completed reads traversing back, ordered by CPU-side
	// delivery cycle.
	responses memreq.TimedHeap

	// outstanding counts requests admitted but not yet accepted by a DDR
	// controller (the CXL controller's message queue population).
	outstanding int

	// retired buffers writes that died inside the channel this backend
	// phase (committed on the device with no requester completer). Only
	// collected when collectRetired is set — the simulator drains the
	// buffer at the cycle barrier to recycle arena requests; raw channel
	// users leave it off and such requests simply become unreferenced.
	collectRetired bool
	//lint:owns handed to the owning System's retired drain by DrainRetired, which releases them
	retired []*memreq.Request

	stats Stats
	now   int64 //lint:unit cycles
}

// NewChannel builds a CXL channel. systemSubChannels densifies the DDR
// address decode as for direct channels.
func NewChannel(cfg ChannelConfig, systemSubChannels int) *Channel {
	if cfg.DDRChannels < 1 {
		cfg.DDRChannels = 1
	}
	if cfg.IngressDepth < 1 {
		cfg.IngressDepth = 64
	}
	c := &Channel{
		cfg:    cfg,
		port:   cfg.Link.portCycles(),
		rxSer:  cfg.Link.rxSerCycles(),
		txData: cfg.Link.txDataSerCycles(),
		txReq:  cfg.Link.txReqSerCycles(),
	}
	for i := 0; i < cfg.DDRChannels; i++ {
		c.ddr = append(c.ddr, dram.NewChannel(cfg.DDR, systemSubChannels))
	}
	return c
}

// Enqueue implements memreq.Backend: the request enters the CPU-side CXL
// controller at cycle `at`.
func (c *Channel) Enqueue(r *memreq.Request, at int64) bool {
	if c.outstanding >= c.cfg.IngressDepth {
		return false
	}
	if at < c.now {
		at = c.now
	}
	c.outstanding++
	// Interpose on the completion path: remember the requester's
	// completer and route DRAM completions back through this channel.
	r.Inner = r.Ret
	r.Ret = c
	c.ingress.Push(at, r)
	return true
}

// Complete receives DRAM-side completions (read data ready on the device,
// or write committed) and schedules the response path.
func (c *Channel) Complete(r *memreq.Request, now int64) {
	if r.Kind == memreq.Write {
		// Write data was already transferred; no response modeled (CXL
		// write completions are small NDR messages off the critical path).
		// A write with no requester completer dies here — buffer it for
		// the retired drain when collection is on.
		if r.Inner != nil {
			r.Inner.Complete(r, now)
		} else if c.collectRetired {
			c.retired = append(c.retired, r)
		}
		return
	}
	// Response path: device egress port, RX serialization under link
	// occupancy, CPU ingress port.
	ready := now + c.port
	start := ready
	if c.rxFree > start {
		start = c.rxFree
	}
	c.rxFree = start + c.rxSer
	deliver := start + c.rxSer + c.port
	r.CXLTime += deliver - now
	c.responses.Push(deliver, r)
}

// Tick implements memreq.Backend. Re-ticking an already-simulated cycle is
// a no-op so the event-driven loop can sync a lazily-skipped channel to the
// global clock before reading counters.
func (c *Channel) Tick(now int64) {
	if now <= c.now {
		return
	}
	c.now = now

	// Deliver due responses to the original requesters.
	for {
		r, ok := c.responses.PopDue(now)
		if !ok {
			break
		}
		c.stats.RespDelivered++
		if r.Inner != nil {
			r.Inner.Complete(r, now)
		}
	}

	// Admit due ingress requests onto the TX link.
	for {
		r, ok := c.ingress.PopDue(now)
		if !ok {
			break
		}
		ser := c.txReq
		if r.Kind == memreq.Write {
			ser = c.txData
		}
		ready := now + c.port
		start := ready
		if c.txFree > start {
			start = c.txFree
		}
		c.txFree = start + ser
		arrive := start + ser + c.port
		r.CXLTime += arrive - now
		c.deviceQ.Push(arrive, r)
	}

	// Retry device-stalled requests first (FIFO) to preserve ordering.
	for len(c.stalled) > 0 {
		w := c.stalled[0]
		if !c.ddrEnqueue(w.req, now) {
			break
		}
		// Waiting for a DDR queue slot is memory queuing, not interface
		// time; attribute it alongside controller-queue spill.
		c.stats.RetryCycles += uint64(now - w.since)
		w.req.Spill += now - w.since
		c.stalled = c.stalled[1:]
		c.noteForwarded(w.req)
	}

	// Hand requests arriving at the device to its DDR controllers.
	if len(c.stalled) == 0 {
		for {
			r, ok := c.deviceQ.PopDue(now)
			if !ok {
				break
			}
			if c.ddrEnqueue(r, now) {
				c.noteForwarded(r)
			} else {
				c.stalled = append(c.stalled, waiting{req: r, since: now})
				break
			}
		}
	}

	for _, d := range c.ddr {
		d.Tick(now)
	}
}

// NextEvent implements memreq.Backend. The channel only acts when a queued
// item comes due — a response delivery, an ingress request entering the TX
// link, a request arriving at the device — or when a device DDR channel has
// work, so the next event is the earliest of those. Cycles skipped on that
// basis are provable no-ops: every PopDue would return nothing and the DDR
// ticks would idle. The same bound covers device-stalled requests: a DDR
// queue slot only frees when a sub-channel issues a CAS (arrival pops move
// pending counts into the queues without changing the admission sum), and
// every such issue happens at a cycle the DDR channels' own NextEvent
// already reports, so stalled retries between DDR events are provably
// rejected again.
func (c *Channel) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	if t, ok := c.responses.PeekAt(); ok && t < next {
		next = t
	}
	if t, ok := c.ingress.PeekAt(); ok && t < next {
		next = t
	}
	if t, ok := c.deviceQ.PeekAt(); ok && t < next {
		next = t
	}
	for _, d := range c.ddr {
		if t := d.NextEvent(now); t < next {
			next = t
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// SetLazy switches per-sub-channel event skipping on or off in the
// device's DDR channels. The CXL link layer itself needs no lazy cache:
// its own Tick is cheap and the system-level event loop already skips the
// whole channel when it is idle.
func (c *Channel) SetLazy(on bool) {
	for _, d := range c.ddr {
		d.SetLazy(on)
	}
}

// Sync implements memreq.Backend: realize lagging background accounting in
// the device DDR channels without simulating events. The link layer keeps
// no per-cycle accounting of its own (RetryCycles accrues at retry events).
func (c *Channel) Sync(now int64) {
	for _, d := range c.ddr {
		d.Sync(now)
	}
}

func (c *Channel) noteForwarded(r *memreq.Request) {
	c.outstanding--
	if r.Kind == memreq.Write {
		c.stats.WritesForwarded++
	} else {
		c.stats.ReadsForwarded++
	}
}

// ddrEnqueue routes a request to the device DDR channel for its address.
func (c *Channel) ddrEnqueue(r *memreq.Request, now int64) bool {
	d := c.ddr[0]
	if len(c.ddr) > 1 {
		line := r.Addr >> memreq.LineShift
		h := line ^ (line >> 6) ^ (line >> 11)
		d = c.ddr[h%uint64(len(c.ddr))]
	}
	return d.Enqueue(r, now)
}

// PeakGBs implements memreq.Backend: the deliverable peak is the DDR
// capacity behind the channel (utilization in the paper's figures is
// quoted against DRAM peak).
func (c *Channel) PeakGBs() float64 {
	var total float64
	for _, d := range c.ddr {
		total += d.PeakGBs()
	}
	return total
}

// Counters sums the device's DRAM activity.
func (c *Channel) Counters() dram.Counters {
	var total dram.Counters
	for _, d := range c.ddr {
		ct := d.Counters()
		total.ACT += ct.ACT
		total.PRE += ct.PRE
		total.RD += ct.RD
		total.WR += ct.WR
		total.REF += ct.REF
		total.ReadBytes += ct.ReadBytes
		total.WriteBytes += ct.WriteBytes
		total.ActiveBankCycles += ct.ActiveBankCycles
		total.RowHits += ct.RowHits
		total.RowMisses += ct.RowMisses
	}
	return total
}

// ResetCounters zeroes device DRAM and link counters.
func (c *Channel) ResetCounters() {
	for _, d := range c.ddr {
		d.ResetCounters()
	}
	c.stats = Stats{}
}

// Stats returns link activity counters.
func (c *Channel) LinkStats() Stats { return c.stats }

// DDR exposes the device's DDR channels (validation taps and tests).
func (c *Channel) DDR() []*dram.Channel { return c.ddr }

// SetCollectRetired enables buffering of writes that die inside the channel
// (committed on the device with no requester completer), for the
// simulator's retired drain. Off by default.
func (c *Channel) SetCollectRetired(on bool) { c.collectRetired = on }

// DrainRetired hands every buffered retired request to fn and clears the
// buffer. Call only from the sequential phases of the tick loop.
func (c *Channel) DrainRetired(fn func(*memreq.Request)) {
	if len(c.retired) == 0 {
		return
	}
	for i, r := range c.retired {
		c.retired[i] = nil
		fn(r)
	}
	c.retired = c.retired[:0]
}

// Outstanding reports requests admitted but not yet accepted by a device
// DDR controller (the CXL controller's message-queue population).
func (c *Channel) Outstanding() int { return c.outstanding }

// IngressDepth reports the configured admission bound on Outstanding.
func (c *Channel) IngressDepth() int { return c.cfg.IngressDepth }

// ForEachPending visits every request currently inside the channel or its
// device: awaiting the TX link, in flight to the device, stalled on DDR
// backpressure, queued in a device DDR controller, or traversing back on
// the response path. For validation walks; fn must not mutate the channel.
func (c *Channel) ForEachPending(fn func(*memreq.Request)) {
	c.ingress.ForEach(fn)
	c.deviceQ.ForEach(fn)
	for i := range c.stalled {
		fn(c.stalled[i].req)
	}
	c.responses.ForEach(fn)
	for _, d := range c.ddr {
		d.ForEachPending(fn)
	}
}

// Idle reports whether the channel and its device have fully drained.
func (c *Channel) Idle() bool {
	if c.outstanding != 0 || c.ingress.Len() != 0 || c.deviceQ.Len() != 0 ||
		len(c.stalled) != 0 || c.responses.Len() != 0 {
		return false
	}
	for _, d := range c.ddr {
		if !d.Idle() {
			return false
		}
	}
	return true
}
