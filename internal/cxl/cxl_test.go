package cxl

import (
	"math"
	"testing"

	"coaxial/internal/clock"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
)

type collector struct {
	done  []*memreq.Request
	times []int64
}

func (c *collector) Complete(r *memreq.Request, now int64) {
	c.done = append(c.done, r)
	c.times = append(c.times, now)
}

func drain(t *testing.T, ch *Channel, deadline int64) int64 {
	t.Helper()
	var now int64
	for !ch.Idle() {
		now++
		ch.Tick(now)
		if now > deadline {
			t.Fatalf("CXL channel did not drain in %d cycles", deadline)
		}
	}
	return now
}

func TestLinkParams(t *testing.T) {
	sym := SymmetricX8()
	if got := sym.UnloadedReadAdderNS(); math.Abs(got-52.5) > 0.3 {
		t.Errorf("symmetric unloaded read adder = %.2f ns, want ~52.5", got)
	}
	asym := AsymmetricX8()
	if asym.RXGoodputGBs != 32 || asym.TXGoodputGBs != 10 {
		t.Errorf("asym goodput: %+v", asym)
	}
	if asym.rxSerCycles() >= sym.txDataSerCycles() {
		t.Error("asym RX serialization should be short")
	}
	// The 70 ns study: 17.5 ns per port.
	p70 := sym.WithPortNS(17.5)
	if got := p70.UnloadedReadAdderNS(); math.Abs(got-72.5) > 0.3 {
		t.Errorf("70ns-premium adder = %.2f ns, want ~72.5", got)
	}
	if sym.PortNS != 12.5 {
		t.Error("WithPortNS mutated the receiver")
	}
}

func TestUnloadedReadLatencyAdder(t *testing.T) {
	// Compare a read through CXL against a direct DDR read: the delta
	// must be the unloaded adder (ports + RX serialization), since the
	// request-path TX serialization is a single header flit.
	ddrCfg := dram.DefaultConfig()

	direct := dram.NewChannel(ddrCfg, ddrCfg.SubChannels)
	dc := &collector{}
	direct.Enqueue(&memreq.Request{Addr: 0x4000, Kind: memreq.Read, Ret: dc}, 1)
	var now int64
	for len(dc.done) == 0 {
		now++
		direct.Tick(now)
	}
	directDone := dc.times[0]

	ch := NewChannel(DefaultChannelConfig(), ddrCfg.SubChannels)
	cc := &collector{}
	ch.Enqueue(&memreq.Request{Addr: 0x4000, Kind: memreq.Read, Ret: cc}, 1)
	now = 0
	for len(cc.done) == 0 {
		now++
		ch.Tick(now)
		if now > 100000 {
			t.Fatal("CXL read never completed")
		}
	}
	cxlDone := cc.times[0]

	adder := cxlDone - directDone
	// 4 ports (30 cycles each) + RX ser (6) + TX header ser (~1) = ~127.
	wantLo, wantHi := int64(120), int64(136)
	if adder < wantLo || adder > wantHi {
		t.Errorf("CXL unloaded adder = %d cycles (%.1f ns), want in [%d,%d]",
			adder, clock.NS(adder), wantLo, wantHi)
	}
	if cc.done[0].CXLTime < 120 {
		t.Errorf("request's CXLTime = %d, want >= 120", cc.done[0].CXLTime)
	}
}

func TestRXSerializationSpacing(t *testing.T) {
	// Two reads completing in DRAM nearly simultaneously must be spaced
	// by at least the RX serialization delay on delivery.
	cfg := DefaultChannelConfig()
	ch := NewChannel(cfg, cfg.DDR.SubChannels)
	c := &collector{}
	// Same row, adjacent lines: DRAM returns them ~8 cycles apart, which
	// is above rxSer=6 — so instead check the invariant on many requests:
	// deliveries never violate the link rate.
	const n = 32
	for i := 0; i < n; i++ {
		ch.Enqueue(&memreq.Request{Addr: uint64(i) * 64, Kind: memreq.Read, Ret: c}, 1)
	}
	drain(t, ch, 1_000_000)
	if len(c.done) != n {
		t.Fatalf("completed %d/%d", len(c.done), n)
	}
	rx := cfg.Link.rxSerCycles()
	for i := 1; i < len(c.times); i++ {
		if c.times[i]-c.times[i-1] < rx {
			t.Errorf("deliveries %d cycles apart, below RX serialization %d", c.times[i]-c.times[i-1], rx)
		}
	}
}

func TestWritePathAndStats(t *testing.T) {
	cfg := DefaultChannelConfig()
	ch := NewChannel(cfg, cfg.DDR.SubChannels)
	c := &collector{}
	ch.Enqueue(&memreq.Request{Addr: 0x100, Kind: memreq.Write, Ret: c}, 1)
	ch.Enqueue(&memreq.Request{Addr: 0x8000, Kind: memreq.Read, Ret: c}, 1)
	drain(t, ch, 1_000_000)
	st := ch.LinkStats()
	if st.WritesForwarded != 1 || st.ReadsForwarded != 1 {
		t.Errorf("forward stats: %+v", st)
	}
	if st.RespDelivered != 1 {
		t.Errorf("resp delivered = %d, want 1 (reads only)", st.RespDelivered)
	}
	if len(c.done) != 2 {
		t.Errorf("completions = %d, want 2 (write ack + read)", len(c.done))
	}
	ct := ch.Counters()
	if ct.WR != 1 || ct.RD != 1 {
		t.Errorf("device DRAM counters: %+v", ct)
	}
}

func TestIngressBackpressure(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.IngressDepth = 4
	ch := NewChannel(cfg, cfg.DDR.SubChannels)
	c := &collector{}
	accepted := 0
	for i := 0; i < 16; i++ {
		if ch.Enqueue(&memreq.Request{Addr: uint64(i) * 4096, Kind: memreq.Read, Ret: c}, 1) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted %d with ingress depth 4", accepted)
	}
	drain(t, ch, 1_000_000)
	if len(c.done) != 4 {
		t.Errorf("completed %d", len(c.done))
	}
}

func TestDeviceStallAccountedAsQueue(t *testing.T) {
	// Tiny DDR queues force device-side stalls; that wait must appear in
	// Spill (queuing), not CXLTime.
	cfg := DefaultChannelConfig()
	cfg.DDR.ReadQueueDepth = 2
	cfg.IngressDepth = 64
	ch := NewChannel(cfg, cfg.DDR.SubChannels)
	c := &collector{}
	for i := 0; i < 32; i++ {
		// Conflicting rows on one bank: slow service, queues fill.
		addr := uint64(i) * uint64(cfg.DDR.RowBytes) * uint64(cfg.DDR.Banks()) * 2
		ch.Enqueue(&memreq.Request{Addr: addr, Kind: memreq.Read, Ret: c}, 1)
	}
	drain(t, ch, 5_000_000)
	if len(c.done) != 32 {
		t.Fatalf("completed %d/32", len(c.done))
	}
	if ch.LinkStats().RetryCycles == 0 {
		t.Skip("no device stalls materialized; nothing to verify")
	}
	var spilled int
	for _, r := range c.done {
		if r.Spill > 0 {
			spilled++
		}
	}
	if spilled == 0 {
		t.Error("device stalls happened but no request carries Spill time")
	}
}

func TestAsymChannelTwoDDR(t *testing.T) {
	cfg := DefaultChannelConfig()
	cfg.Link = AsymmetricX8()
	cfg.DDRChannels = 2
	ch := NewChannel(cfg, 2*cfg.DDR.SubChannels)
	if got := ch.PeakGBs(); math.Abs(got-76.8) > 1e-9 {
		t.Errorf("asym channel peak = %v, want 76.8 (two DDR channels)", got)
	}
	c := &collector{}
	const n = 64
	for i := 0; i < n; i++ {
		ch.Enqueue(&memreq.Request{Addr: uint64(i) * 64 * 131, Kind: memreq.Read, Ret: c}, 1)
	}
	drain(t, ch, 1_000_000)
	if len(c.done) != n {
		t.Fatalf("completed %d/%d", len(c.done), n)
	}
	// Both device DDR channels should have served traffic.
	ct := ch.Counters()
	if ct.RD != n {
		t.Errorf("device reads = %d", ct.RD)
	}
}

func TestResetCounters(t *testing.T) {
	cfg := DefaultChannelConfig()
	ch := NewChannel(cfg, cfg.DDR.SubChannels)
	c := &collector{}
	ch.Enqueue(&memreq.Request{Addr: 0, Kind: memreq.Read, Ret: c}, 1)
	drain(t, ch, 100000)
	ch.ResetCounters()
	if ch.Counters().RD != 0 || ch.LinkStats().ReadsForwarded != 0 {
		t.Error("counters survived reset")
	}
}

func TestTXLinkSharedByWritesAndReads(t *testing.T) {
	// A burst of writes occupies the TX link; a subsequent read request
	// header must wait, increasing its CXLTime beyond the unloaded adder.
	cfg := DefaultChannelConfig()
	ch := NewChannel(cfg, cfg.DDR.SubChannels)
	c := &collector{}
	for i := 0; i < 16; i++ {
		ch.Enqueue(&memreq.Request{Addr: uint64(i) * 64, Kind: memreq.Write, Ret: c}, 1)
	}
	read := &memreq.Request{Addr: 1 << 20, Kind: memreq.Read, Ret: c}
	ch.Enqueue(read, 1)
	drain(t, ch, 1_000_000)
	// Unloaded CXLTime ~ 127; the read behind 16x13-cycle write bursts
	// must see substantially more.
	if read.CXLTime < 150 {
		t.Errorf("read CXLTime = %d; expected TX queuing behind writes", read.CXLTime)
	}
}
