// Package rack composes N single-host sim.Systems into one rack-scale
// topology: every host keeps its private cores, caches, and NoC, while its
// CXL channels become ports into shared pooled type-3 devices
// (cxl.PooledDevice) whose queues are the cross-host coupling point —
// arbitration, per-host fairness accounting, and head-of-line contention
// all happen there.
//
// The rack advances all hosts in lockstep with the same phased-tick
// deterministic-drain discipline that makes intra-system parallelism
// bit-identical. One rack step to cycle `next`:
//
//	next    = min over hosts of NextEventBound(limit),
//	          min over devices of NextEvent(now)      (event clocking)
//	next    = now + 1                                 (cycle clocking)
//	phase H — every host TickCycle(next); parallel across
//	          RackParallelism goroutines (host-private state only:
//	          a port's ingress/response heaps are host-side)
//	phase D — every pooled device TickDevice(next); sequential, fixed
//	          device order, each device serving its ports in fixed
//	          attach order (= host order)
//	phase E — per host, in host order: re-arm the host's cached backend
//	          bounds with the port's fresh NextEvent (phase D only adds
//	          events, so clamping down is sufficient) and release writes
//	          that retired inside the devices
//
// Phases touch disjoint state, so results are bit-identical across
// RackParallelism × clocking, and a 1-host rack reproduces the equivalent
// single-System run exactly (TestRackClockingEquivalence).
package rack

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"coaxial/internal/clock"
	"coaxial/internal/cxl"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
	"coaxial/internal/sim"
	"coaxial/internal/stats"
	"coaxial/internal/trace"
	"coaxial/internal/validate"
)

// Config describes one rack: per-host system configurations plus the
// shared pooled devices their CXL channels attach to. Host channel ch
// wires to Pooled[ch % len(Pooled)]; with Pooled empty, hosts keep their
// private backends and merely run in lockstep (no cross-host coupling).
type Config struct {
	// Name labels the rack in results ("coaxial-pooled@4h", ...).
	Name string
	// Hosts configures each host system, in host-index order. With pooled
	// devices, every host must be CXLAttached: its cfg.CXL.Link and
	// IngressDepth parameterize the ports; its per-channel device config
	// (cfg.CXL.DDRChannels, cfg.DDR) is superseded by the Pooled entries.
	Hosts []sim.Config
	// Pooled configures the shared type-3 pool devices.
	Pooled []cxl.PooledDeviceConfig
}

// Validate checks rack-level configuration invariants (each host Config is
// validated by its own constructor).
func (c Config) Validate() error {
	if len(c.Hosts) < 1 {
		return fmt.Errorf("rack: %q: needs >= 1 host", c.Name)
	}
	if len(c.Pooled) > 0 {
		for h, hc := range c.Hosts {
			if hc.Kind != sim.CXLAttached {
				return fmt.Errorf("rack: %q: host %d is not CXL-attached; pooled devices need CXL ports", c.Name, h)
			}
		}
		for i, d := range c.Pooled {
			if d.DDRChannels < 1 {
				return fmt.Errorf("rack: %q: pooled device %d needs >= 1 DDR channel", c.Name, i)
			}
		}
	}
	return nil
}

// HostSeed derives host h's workload-generation seed from the rack seed:
// host 0 keeps the rack seed unchanged (the single-host identity), later
// hosts decorrelate via a golden-ratio stride.
func HostSeed(seed uint64, h int) uint64 {
	if h == 0 {
		return seed
	}
	return seed + uint64(h)*0x9E3779B97F4A7C15
}

// HostAddrOffset places host h's synthetic address space: disjoint 16 TiB
// windows so hosts sharing pooled devices never collide (each host's
// per-core bases stay below 1<<44). Host 0's offset is 0, preserving
// single-host bit-identity.
func HostAddrOffset(h int) uint64 { return uint64(h) << 44 }

// HostRunConfig derives host h's single-host run configuration from the
// rack-level one: the per-host seed plus a topology fingerprint that keys
// warm-state caches, so rack sweeps never alias warm entries across host
// counts or positions (sim.WarmKey).
func HostRunConfig(rc sim.RunConfig, cfg Config, h int) sim.RunConfig {
	rc.Seed = HostSeed(rc.Seed, h)
	rc.Topology = fmt.Sprintf("%s/p%d/hosts:%d/host:%d", cfg.Name, len(cfg.Pooled), len(cfg.Hosts), h)
	return rc
}

// DeviceStats summarizes one shared pooled device over the measured
// window.
type DeviceStats struct {
	Name string
	// TotalQueueCycles sums device-side queueing across all hosts: DDR
	// controller queuing delay of completed reads plus ingress-stall
	// cycles. Adding a host to a contended device never reduces it (the
	// metamorphic rack law).
	TotalQueueCycles uint64
	// QueueP50NS/P90NS/P99NS are tails of the device-side read queuing
	// delay distribution — the pooled-queue latency the rack quotes.
	QueueP50NS, QueueP90NS, QueueP99NS float64
	// HostReadBytes/HostWriteBytes attribute the device's data transfers
	// to hosts, indexed by host (the fairness accounting).
	HostReadBytes, HostWriteBytes []uint64
	// ReadGBs/WriteGBs are the device's achieved DDR bandwidth over the
	// rack's measured window; PeakGBs its theoretical peak.
	ReadGBs, WriteGBs, PeakGBs float64
	// DRAM is the device's raw DDR activity (unattributable per host; the
	// per-host slice is the byte tallies above).
	DRAM dram.Counters
}

// Result aggregates one rack run: per-host single-system results plus the
// rack-level aggregates.
type Result struct {
	Config string
	// Cycles is the measured window length (shared by all hosts — the
	// rack runs in lockstep).
	Cycles int64
	// Hosts holds each host's Result, in host-index order.
	Hosts []sim.Result
	// Devices summarizes each shared pooled device.
	Devices []DeviceStats
	// MeanIPC and GeomeanIPC aggregate the per-host mean IPCs.
	MeanIPC    float64
	GeomeanIPC float64
	// FairnessIndex is Jain's index over per-host IPCs: 1 when hosts
	// progress equally, approaching 1/hosts when contention starves some.
	FairnessIndex float64
}

// Run executes one rack experiment: cfg's hosts running workloads[h] on
// host h (one workload per active core), cold-started.
func Run(ctx context.Context, cfg Config, workloads [][]trace.Workload, rc sim.RunConfig) (Result, error) {
	return RunFrom(ctx, cfg, workloads, rc, nil)
}

// RunFrom is Run resuming hosts from pre-captured warm snapshots: warm[h]
// seeds host h (see sim.CaptureWarmHost); a nil warm slice or nil entry
// cold-starts that host. Cancellation stops at a cycle-window boundary and
// returns the partial measurements with a wrapping error.
func RunFrom(ctx context.Context, cfg Config, workloads [][]trace.Workload, rc sim.RunConfig, warm []*sim.WarmState) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(workloads) != len(cfg.Hosts) {
		return Result{}, fmt.Errorf("rack: %q: %d workload sets for %d hosts", cfg.Name, len(workloads), len(cfg.Hosts))
	}
	if warm != nil && len(warm) != len(cfg.Hosts) {
		return Result{}, fmt.Errorf("rack: %q: %d warm states for %d hosts", cfg.Name, len(warm), len(cfg.Hosts))
	}
	if rc.MeasureInstr == 0 {
		return Result{}, fmt.Errorf("rack: zero measure window")
	}
	if rc.SampleDetailInstr > 0 && rc.SampleFastFwdInstr > 0 {
		return Result{}, fmt.Errorf("rack: sampled simulation is incompatible with lockstep multi-host runs")
	}
	if rc.MaxCyclesPerInstr <= 0 {
		rc.MaxCyclesPerInstr = 400
	}
	rk, err := build(cfg, workloads, rc, warm)
	if err != nil {
		return Result{}, err
	}
	defer rk.close()
	return rk.run(ctx, workloads, rc)
}

// rack is one assembled topology mid-run.
type rack struct {
	cfg      Config
	hosts    []*sim.System
	ports    [][]*cxl.Port // per host, in channel order; nil when unpooled
	devices  []*cxl.PooledDevice
	pool     *workerPool
	clocking sim.Clocking
	validate bool
	oracles  []*validate.Oracle

	// progress, when non-nil, observes rack-level phase progress at the
	// cancellation-poll boundaries (RunConfig.OnProgress); measuring
	// selects the reported phase label.
	progress  func(sim.Progress)
	measuring bool

	now          int64
	measureStart int64
}

// build assembles devices, ports, and host systems in host-index order
// (attach order is the devices' arbitration order), runs each host's
// untimed warmup (or clones its warm snapshot), and wires validation.
func build(cfg Config, workloads [][]trace.Workload, rc sim.RunConfig, warm []*sim.WarmState) (*rack, error) {
	rk := &rack{cfg: cfg, clocking: rc.Clocking, validate: rc.Validate, progress: rc.OnProgress}
	for i, dcfg := range cfg.Pooled {
		if dcfg.Name == "" {
			dcfg.Name = fmt.Sprintf("pool%d", i)
		}
		// Densify the device's DDR address decode exactly as a single
		// host's private per-channel devices would be (host 0's geometry),
		// so a 1-host rack is timing-identical to the single-System run.
		subs := cfg.Hosts[0].Channels * dcfg.DDRChannels * dcfg.DDR.SubChannels
		rk.devices = append(rk.devices, cxl.NewPooledDevice(dcfg, subs))
	}
	for h, hcfg := range cfg.Hosts {
		hp := sim.HostParams{Index: h, AddrOffset: HostAddrOffset(h)}
		var ports []*cxl.Port
		if len(rk.devices) > 0 {
			backends := make([]sim.ExternalBackend, hcfg.Channels)
			ports = make([]*cxl.Port, hcfg.Channels)
			for ch := 0; ch < hcfg.Channels; ch++ {
				p := rk.devices[ch%len(rk.devices)].AttachHost(hcfg.CXL.Link, hcfg.CXL.IngressDepth, h)
				ports[ch] = p
				backends[ch] = p
			}
			hp.Backends = backends
		}
		hrc := HostRunConfig(rc, cfg, h)
		hrc.OnProgress = nil // the rack emits rack-level progress itself
		var sys *sim.System
		var err error
		if warm != nil && warm[h] != nil {
			sys, err = sim.NewWarmSystem(hcfg, warm[h], hrc, hp)
		} else if sys, err = sim.NewHostSystem(hcfg, workloads[h], hrc.Seed, hp); err == nil {
			sys.SetParallelism(hrc.Parallelism)
			sys.SetClocking(hrc.Clocking)
			if hrc.Validate {
				sys.EnableValidation()
			}
			sys.Prewarm(hrc)
		}
		if err != nil {
			rk.close()
			return nil, fmt.Errorf("rack: %q host %d: %w", cfg.Name, h, err)
		}
		rk.hosts = append(rk.hosts, sys)
		rk.ports = append(rk.ports, ports)
	}
	if rc.RackParallelism > 1 && len(rk.hosts) > 1 {
		rk.pool = newWorkerPool(rc.RackParallelism - 1)
	}
	if rc.Validate {
		rk.wireValidation()
	}
	return rk, nil
}

// wireValidation attaches the differential harness to the shared devices:
// an independent DDR5 timing oracle on every device sub-channel, plus a
// per-host pending-request walker over the shared DDR controllers (which
// the ports' own ForEachPending deliberately exclude). Each device's
// queues are walked once per host and dispatched by Request.Host, so every
// pending request is visited exactly once across the rack.
func (rk *rack) wireValidation() {
	for _, dev := range rk.devices {
		for ci, ch := range dev.DDR() {
			for si, sub := range ch.SubChannels() {
				o := validate.NewOracle(sub.Config(), fmt.Sprintf("%s/ddr%d/sub%d", dev.Name(), ci, si))
				sub.AttachObserver(o)
				rk.oracles = append(rk.oracles, o)
			}
		}
	}
	if len(rk.devices) == 0 {
		return
	}
	for h, sys := range rk.hosts {
		hostID := int16(h)
		devices := rk.devices
		sys.AddPendingWalker(func(fn func(*memreq.Request)) {
			for _, d := range devices {
				for _, ch := range d.DDR() {
					ch.ForEachPending(func(r *memreq.Request) {
						if r.Host == hostID {
							fn(r)
						}
					})
				}
			}
		})
	}
}

// close releases every host's worker goroutines and the rack's own pool.
func (rk *rack) close() {
	for _, s := range rk.hosts {
		if s != nil {
			s.Close()
		}
	}
	rk.pool.close()
}

// run executes the timed warmup and measure windows in lockstep, then
// collects per-host results and rack aggregates. Mirrors the single-host
// timedPhases contract: on cancellation the partial measurements return
// alongside the wrapped ctx error; end-of-window validation runs on the
// success path only.
func (rk *rack) run(ctx context.Context, workloads [][]trace.Workload, rc sim.RunConfig) (Result, error) {
	if rc.WarmupInstr > 0 {
		if err := rk.runPhase(ctx, rc.WarmupInstr, sim.MaxCycles(rc.WarmupInstr, rc)); err != nil {
			if ctx.Err() != nil {
				return rk.collect(workloads), err
			}
			return Result{}, err
		}
	}
	rk.beginMeasurement()
	if err := rk.runPhase(ctx, rc.MeasureInstr, sim.MaxCycles(rc.MeasureInstr, rc)); err != nil {
		if ctx.Err() != nil {
			return rk.collect(workloads), err
		}
		return Result{}, err
	}
	res := rk.collect(workloads)
	return res, rk.validationError()
}

// ctxCheckCycles is the cancellation-poll granularity, matching the
// single-host loop.
const ctxCheckCycles = 4096

// runPhase steps the rack until every core of every host retires `target`
// instructions (counted from the last measurement reset), bounded by
// maxCycles and ctx cancellation.
func (rk *rack) runPhase(ctx context.Context, target uint64, maxCycles int64) error {
	for _, s := range rk.hosts {
		s.SetTarget(target)
	}
	start := rk.now
	limit := rk.now + maxCycles
	nextCheck := rk.now + ctxCheckCycles
	for {
		done := true
		for _, s := range rk.hosts {
			if !s.Done() {
				done = false
				break
			}
		}
		if done {
			if rk.progress != nil {
				rk.emitProgress(target, start)
			}
			return nil
		}
		if rk.now >= limit {
			return fmt.Errorf("rack: %s: exceeded cycle budget (%d cycles for %d instructions)",
				rk.cfg.Name, maxCycles, target)
		}
		if rk.now >= nextCheck {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("rack: %s: stopped at cycle %d: %w", rk.cfg.Name, rk.now, err)
			}
			if rk.progress != nil {
				rk.emitProgress(target, start)
			}
			nextCheck = rk.now + ctxCheckCycles
		}
		rk.step(limit)
	}
}

// emitProgress delivers one rack-level observation: the slowest core of the
// slowest host toward the lockstep phase target.
func (rk *rack) emitProgress(target uint64, start int64) {
	p := sim.Progress{Phase: "warmup", Cycles: rk.now - start, Retired: target, Target: target}
	if rk.measuring {
		p.Phase = "measure"
	}
	for _, s := range rk.hosts {
		if r := s.PhaseRetired(target); r < p.Retired {
			p.Retired = r
		}
	}
	rk.progress(p)
}

// step advances the whole rack one chosen cycle: the phased H/D/E tick
// documented in the package comment.
func (rk *rack) step(limit int64) {
	next := rk.now + 1
	if rk.clocking == sim.EventDriven {
		next = limit
		for _, s := range rk.hosts {
			if t := s.NextEventBound(limit); t < next {
				next = t
			}
		}
		for _, d := range rk.devices {
			if t := d.NextEvent(rk.now); t < next {
				next = t
			}
		}
		if next <= rk.now {
			next = rk.now + 1
		}
	}

	// Phase H: hosts advance to `next`, each touching only host-private
	// state (port ingress/response heaps are host-side). Parallel across
	// the rack pool; bit-identical at any worker count because hosts
	// share nothing within the phase.
	if rk.pool != nil {
		hosts := rk.hosts
		rk.pool.run(len(hosts), func(i int) { hosts[i].TickCycle(next) })
	} else {
		for _, s := range rk.hosts {
			s.TickCycle(next)
		}
	}

	// Phase D: shared devices, sequential, fixed device order; each
	// serves its ports in fixed attach order (= host order) — the
	// deterministic cross-host arbitration point.
	for _, d := range rk.devices {
		d.TickDevice(next)
	}

	// Phase E: sequential per host, in host order — re-arm each host's
	// cached backend bounds (phase D scheduled new response deliveries;
	// wakes only clamp down, and phase D can only add events, so clamping
	// is sufficient) and release writes that retired inside the devices.
	for h, s := range rk.hosts {
		for ch, p := range rk.ports[h] {
			s.WakeBackendAt(ch, p.NextEvent(next))
		}
		s.DrainRetiredNow()
	}
	rk.now = next
}

// beginMeasurement zeroes all measurement state at the warmup boundary:
// per-host counters (which also reset the shared devices' DDR counters,
// idempotently) plus the rack-level device queueing and fairness tallies.
func (rk *rack) beginMeasurement() {
	for _, s := range rk.hosts {
		s.BeginMeasurement()
	}
	for _, d := range rk.devices {
		d.ResetStats()
	}
	rk.measuring = true
	rk.measureStart = rk.now
}

// collect snapshots per-host results, device stats, and rack aggregates.
func (rk *rack) collect(workloads [][]trace.Workload) Result {
	res := Result{Config: rk.cfg.Name, Cycles: rk.now - rk.measureStart}
	ipcs := make([]float64, 0, len(rk.hosts))
	for h, s := range rk.hosts {
		hr := s.Collect(workloads[h])
		res.Hosts = append(res.Hosts, hr)
		ipcs = append(ipcs, hr.IPC)
	}
	res.MeanIPC = stats.Mean(ipcs)
	res.GeomeanIPC = stats.Geomean(ipcs)
	res.FairnessIndex = stats.JainFairness(ipcs)
	for _, d := range rk.devices {
		ds := DeviceStats{
			Name:             d.Name(),
			TotalQueueCycles: d.TotalQueueCycles(),
			QueueP50NS:       clock.NS(d.QueuePercentile(50)),
			QueueP90NS:       clock.NS(d.QueuePercentile(90)),
			QueueP99NS:       clock.NS(d.QueuePercentile(99)),
			DRAM:             d.Counters(),
		}
		for h := range rk.hosts {
			r, w := d.HostBytes(h)
			ds.HostReadBytes = append(ds.HostReadBytes, r)
			ds.HostWriteBytes = append(ds.HostWriteBytes, w)
		}
		ds.ReadGBs = stats.GBs(ds.DRAM.ReadBytes, res.Cycles)
		ds.WriteGBs = stats.GBs(ds.DRAM.WriteBytes, res.Cycles)
		ds.PeakGBs = d.PeakGBs()
		res.Devices = append(res.Devices, ds)
	}
	return res
}

// Summary flattens a rack result into a single-system-shaped sim.Result
// so suite and sweep plumbing can carry rack jobs next to single-host
// ones: per-core IPCs concatenate across hosts in host order; traffic,
// DRAM activity, and CALM tallies sum; the latency columns are unweighted
// host means. IPC is the rack's MeanIPC. With pooled devices, PeakGBs is
// the devices' aggregate peak (summing per-host peaks would count every
// shared device once per attached host). Full per-host and per-device
// detail stays on the Result itself.
func (r Result) Summary() sim.Result {
	s := sim.Result{Config: r.Config, Cycles: r.Cycles, IPC: r.MeanIPC}
	if s.IPC > 0 {
		s.CPI = 1 / s.IPC
	}
	n := float64(len(r.Hosts))
	for _, hr := range r.Hosts {
		s.PerCoreIPC = append(s.PerCoreIPC, hr.PerCoreIPC...)
		s.Retired += hr.Retired
		s.ReadGBs += hr.ReadGBs
		s.WriteGBs += hr.WriteGBs
		s.PeakGBs += hr.PeakGBs
		s.OnChipNS += hr.OnChipNS / n
		s.QueueNS += hr.QueueNS / n
		s.ServiceNS += hr.ServiceNS / n
		s.CXLNS += hr.CXLNS / n
		s.TotalNS += hr.TotalNS / n
		s.P50NS += hr.P50NS / n
		s.P90NS += hr.P90NS / n
		s.P99NS += hr.P99NS / n
		s.LLCMPKI += hr.LLCMPKI / n
		s.LLCMissRatio += hr.LLCMissRatio / n
		s.FPDiscarded += hr.FPDiscarded
		s.CALM.Merge(hr.CALM)
		s.DRAM.Accumulate(hr.DRAM)
	}
	if len(r.Devices) > 0 {
		// Per-host results already report only each host's own port traffic,
		// so the sums above are the true rack totals; only the peak needs to
		// come from the shared devices.
		s.PeakGBs = 0
		for _, ds := range r.Devices {
			s.PeakGBs += ds.PeakGBs
		}
	}
	if s.PeakGBs > 0 {
		s.Utilization = (s.ReadGBs + s.WriteGBs) / s.PeakGBs
	}
	if len(r.Hosts) > 0 {
		s.Workload = r.Hosts[0].Workload
	}
	return s
}

// validationError aggregates the rack's end-of-window checks: each host's
// own harness report, device DDR queue-occupancy bounds, and the shared
// devices' timing oracles. Returns nil when validation is off or every
// check passed.
func (rk *rack) validationError() error {
	if !rk.validate {
		return nil
	}
	count := 0
	var b strings.Builder
	for h, s := range rk.hosts {
		if err := s.ValidationReport(); err != nil {
			var ve *sim.ValidationError
			if errors.As(err, &ve) {
				count += ve.Count
				fmt.Fprintf(&b, "host %d:\n%s", h, ve.Report)
			} else {
				count++
				fmt.Fprintf(&b, "host %d: %v\n", h, err)
			}
		}
	}
	for _, d := range rk.devices {
		for ci, ch := range d.DDR() {
			for si, sub := range ch.SubChannels() {
				r, w := sub.QueueOccupancy()
				cfg := sub.Config()
				if r < 0 || r > cfg.ReadQueueDepth || w < 0 || w > cfg.WriteQueueDepth {
					count++
					fmt.Fprintf(&b, "occupancy: %s/ddr%d/sub%d out of bounds: reads %d of %d, writes %d of %d\n",
						d.Name(), ci, si, r, cfg.ReadQueueDepth, w, cfg.WriteQueueDepth)
				}
			}
		}
	}
	for _, o := range rk.oracles {
		o.Quiesce(rk.now)
	}
	for _, o := range rk.oracles {
		count += o.ViolationCount()
		for _, v := range o.Violations() {
			b.WriteString(v.String())
		}
	}
	if count == 0 {
		return nil
	}
	return &sim.ValidationError{Count: count, Report: b.String()}
}
