package rack

import (
	"sync"
	"sync/atomic"
)

// workerPool runs the rack's parallel host phase (phase H) across a fixed
// set of goroutines, mirroring sim's intra-system pool. Workers are
// persistent and block on a channel between phases — no spinning — so an
// idle pool costs nothing; the caller participates in every phase, so a
// pool of size n-1 yields n-way parallelism.
type workerPool struct {
	tasks chan poolTask
	size  int
}

// poolTask is one phase: fn applied to indices [0, n), distributed by
// atomic index stealing so uneven per-host costs balance automatically.
type poolTask struct {
	fn  func(int)
	idx *atomic.Int64
	n   int64
	wg  *sync.WaitGroup
}

func newWorkerPool(size int) *workerPool {
	p := &workerPool{size: size, tasks: make(chan poolTask)}
	for w := 0; w < size; w++ {
		go func() {
			for t := range p.tasks {
				for {
					i := t.idx.Add(1) - 1
					if i >= t.n {
						break
					}
					t.fn(int(i))
				}
				t.wg.Done()
			}
		}()
	}
	return p
}

// run applies fn to every index in [0, n) across the pool plus the calling
// goroutine, returning when all calls have completed (the phase barrier).
func (p *workerPool) run(n int, fn func(int)) {
	var idx atomic.Int64
	var wg sync.WaitGroup
	helpers := p.size
	if helpers > n-1 {
		helpers = n - 1
	}
	wg.Add(helpers)
	t := poolTask{fn: fn, idx: &idx, n: int64(n), wg: &wg}
	for w := 0; w < helpers; w++ {
		p.tasks <- t
	}
	for {
		i := idx.Add(1) - 1
		if i >= int64(n) {
			break
		}
		fn(int(i))
	}
	wg.Wait()
}

// close releases the pool's goroutines. Safe on a nil pool.
func (p *workerPool) close() {
	if p != nil {
		close(p.tasks)
	}
}
