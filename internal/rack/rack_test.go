package rack

import (
	"context"
	"reflect"
	"testing"

	"coaxial/internal/cxl"
	"coaxial/internal/sim"
	"coaxial/internal/trace"
)

// pooledRack builds an n-host rack of CoaxialPooled hosts sharing one pool
// device per host channel (the topology the root CoaxialPooled preset
// wires).
func pooledRack(n int) Config {
	host := sim.CoaxialPooled()
	cfg := Config{Name: "coaxial-pooled-rack"}
	for h := 0; h < n; h++ {
		cfg.Hosts = append(cfg.Hosts, host)
	}
	for ch := 0; ch < host.Channels; ch++ {
		cfg.Pooled = append(cfg.Pooled, cxl.PooledDeviceConfig{
			DDR:         host.DDR,
			DDRChannels: host.CXL.DDRChannels,
		})
	}
	return cfg
}

func testRC() sim.RunConfig {
	rc := sim.DefaultRunConfig()
	rc.WarmupInstr = 5_000
	rc.MeasureInstr = 20_000
	rc.FunctionalWarmupInstr = 50_000
	return rc
}

// TestOneHostMatchesSingleSystem pins the foundational identity: a 1-host
// rack — host 0, offset 0, ports into private pool devices — is
// bit-identical to the equivalent single-System run with cxl.Channel
// backends.
func TestOneHostMatchesSingleSystem(t *testing.T) {
	host := sim.CoaxialPooled()
	wl := trace.RackMix(0, 12)
	rc := testRC()

	single, err := sim.RunMix(host, wl, rc)
	if err != nil {
		t.Fatalf("single-system run: %v", err)
	}
	rr, err := Run(context.Background(), pooledRack(1), [][]trace.Workload{wl}, rc)
	if err != nil {
		t.Fatalf("rack run: %v", err)
	}
	if len(rr.Hosts) != 1 {
		t.Fatalf("got %d host results, want 1", len(rr.Hosts))
	}
	if !reflect.DeepEqual(single, rr.Hosts[0]) {
		t.Errorf("1-host rack diverged from single system:\nsingle: %+v\nrack:   %+v", single, rr.Hosts[0])
	}
}

// TestRackValidationClean runs a contended 2-host rack under the full
// differential harness: the shared-device oracles, per-host lifecycle
// checkers, and cross-host pending walks must all come back clean.
func TestRackValidationClean(t *testing.T) {
	rc := testRC()
	rc.Validate = true
	wls := [][]trace.Workload{trace.RackMix(0, 12), trace.RackMix(1, 12)}
	rr, err := Run(context.Background(), pooledRack(2), wls, rc)
	if err != nil {
		t.Fatalf("validated rack run: %v", err)
	}
	if len(rr.Hosts) != 2 || len(rr.Devices) != 2 {
		t.Fatalf("got %d hosts / %d devices, want 2 / 2", len(rr.Hosts), len(rr.Devices))
	}
	for h, hr := range rr.Hosts {
		if hr.Retired == 0 || hr.IPC <= 0 {
			t.Errorf("host %d made no progress: %+v", h, hr)
		}
	}
	if rr.FairnessIndex <= 0 || rr.FairnessIndex > 1 {
		t.Errorf("fairness index %v outside (0, 1]", rr.FairnessIndex)
	}
}

// TestRackParallelTickRace exercises the rack worker pool under the race
// detector: phase H must touch only host-private state.
func TestRackParallelTickRace(t *testing.T) {
	rc := testRC()
	rc.RackParallelism = 4
	rc.Parallelism = 2
	wls := make([][]trace.Workload, 4)
	for h := range wls {
		wls[h] = trace.RackMix(h, 12)
	}
	seqRC := rc
	seqRC.RackParallelism = 1
	seqRC.Parallelism = 1
	par, err := Run(context.Background(), pooledRack(4), wls, rc)
	if err != nil {
		t.Fatalf("parallel rack run: %v", err)
	}
	seq, err := Run(context.Background(), pooledRack(4), wls, seqRC)
	if err != nil {
		t.Fatalf("sequential rack run: %v", err)
	}
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("rack results diverge across RackParallelism/Parallelism:\npar: %+v\nseq: %+v", par, seq)
	}
}
