package stats

import (
	"encoding/binary"
	"testing"
)

// FuzzHistogramAdd: arbitrary sample streams into arbitrary histogram
// geometries must never panic and must keep the histogram's structural
// invariants: exact counts, clamped negatives, monotone percentiles capped
// at the bucket range, and a mean bounded by the extremes.
func FuzzHistogramAdd(f *testing.F) {
	f.Add([]byte{}, int64(4096), int64(8))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, int64(1), int64(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 2}, int64(100), int64(7))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, int64(1<<20), int64(1))

	f.Fuzz(func(t *testing.T, data []byte, capLimit, width int64) {
		// Keep geometries sane-but-adversarial: tiny, zero, and negative
		// inputs all normalize inside NewHistogram; the upper bound keeps
		// the bucket array (capLimit/width entries) small enough to fuzz.
		if capLimit > 1<<22 || capLimit < -1<<40 {
			t.Skip()
		}
		if width > 1<<40 || width < -1<<40 {
			t.Skip()
		}
		h := NewHistogram(capLimit, width)

		var n uint64
		var maxSample int64
		for len(data) >= 8 {
			v := int64(binary.LittleEndian.Uint64(data))
			data = data[8:]
			// Mirror Add's clamping so the reference bounds match.
			if v < 0 {
				v = 0
			}
			if v > 1<<50 {
				v = 1 << 50 // keep the reference sum far from overflow
			}
			h.Add(v)
			n++
			if v > maxSample {
				maxSample = v
			}
		}
		if h.Count() != n {
			t.Fatalf("count = %d, want %d", h.Count(), n)
		}
		if got := h.Max(); got != maxSample {
			t.Fatalf("max = %d, want %d", got, maxSample)
		}
		if n == 0 {
			if h.Mean() != 0 || h.Percentile(50) != 0 {
				t.Fatalf("empty histogram reports mean %v p50 %d", h.Mean(), h.Percentile(50))
			}
			return
		}
		mean := h.Mean()
		if mean < 0 || mean > float64(maxSample) {
			t.Fatalf("mean %v outside [0, %d]", mean, maxSample)
		}
		// Percentiles are monotone in p and bounded by the bucket range
		// (overflow samples report the cap, never beyond it).
		prev := int64(0)
		bound := h.capLimit
		for _, p := range []float64{-5, 0, 1, 25, 50, 90, 99, 100, 150} {
			v := h.Percentile(p)
			if v < prev {
				t.Fatalf("percentile %v = %d below previous %d", p, v, prev)
			}
			if v > bound {
				t.Fatalf("percentile %v = %d beyond histogram cap %d", p, v, bound)
			}
			prev = v
		}
		// Merging into a same-geometry histogram doubles the population.
		h2 := NewHistogram(capLimit, width)
		if err := h2.Merge(h); err != nil {
			t.Fatalf("same-geometry merge refused: %v", err)
		}
		if err := h2.Merge(h); err != nil {
			t.Fatalf("second merge refused: %v", err)
		}
		if h2.Count() != 2*n {
			t.Fatalf("merged count = %d, want %d", h2.Count(), 2*n)
		}
		h.Reset()
		if h.Count() != 0 || h.Percentile(99) != 0 || h.Max() != 0 {
			t.Fatal("reset histogram still reports samples")
		}
	})
}
