package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramMeanCountMax(t *testing.T) {
	h := NewHistogram(1000, 10)
	for _, v := range []int64{10, 20, 30, 40} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Errorf("mean = %v, want 25", h.Mean())
	}
	if h.Max() != 40 {
		t.Errorf("max = %v, want 40", h.Max())
	}
}

func TestHistogramPercentileAgainstExact(t *testing.T) {
	h := NewHistogram(10000, 1)
	rng := rand.New(rand.NewSource(3))
	var vals []int64
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 200)
		vals = append(vals, v)
		h.Add(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 99} {
		exact := vals[int(p/100*float64(len(vals)))-1]
		got := h.Percentile(p)
		if math.Abs(float64(got-exact)) > math.Max(4, float64(exact)/20) {
			t.Errorf("p%v = %d, exact %d", p, got, exact)
		}
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := NewHistogram(1<<12, 4)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		h.Add(int64(rng.Intn(5000))) // includes overflow
	}
	f := func(a, b uint8) bool {
		p1 := float64(a%100) + 0.5
		p2 := float64(b%100) + 0.5
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return h.Percentile(p1) <= h.Percentile(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(100, 10)
	h.Add(1 << 30)
	if got := h.Percentile(99); got != 100 {
		t.Errorf("overflow percentile = %d, want cap 100", got)
	}
	if h.Count() != 1 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestHistogramMergeAndReset(t *testing.T) {
	a := NewHistogram(1000, 10)
	b := NewHistogram(1000, 10)
	a.Add(100)
	b.Add(300)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 2 || a.Mean() != 200 {
		t.Errorf("merged count=%d mean=%v", a.Count(), a.Mean())
	}
	c := NewHistogram(1000, 20)
	if err := a.Merge(c); err == nil {
		t.Error("mismatched geometry merge must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Error("nil merge should be a no-op")
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 || a.Max() != 0 {
		t.Error("reset incomplete")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(100, 1)
	h.Add(-50)
	if h.Mean() != 0 {
		t.Errorf("negative sample should clamp to 0, mean=%v", h.Mean())
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(10, 20, 30, 40)
	b.Add(20, 40, 60, 80)
	o, q, s, c := b.Means()
	if o != 15 || q != 30 || s != 45 || c != 60 {
		t.Errorf("means = %v %v %v %v", o, q, s, c)
	}
	if b.TotalMean() != 150 {
		t.Errorf("total = %v", b.TotalMean())
	}
	var other Breakdown
	other.Add(0, 0, 0, 0)
	b.Merge(other)
	if b.Count != 3 {
		t.Errorf("merged count = %d", b.Count)
	}
	// Negative components clamp.
	var neg Breakdown
	neg.Add(-5, -5, -5, -5)
	if neg.TotalMean() != 0 {
		t.Errorf("negative components must clamp: %v", neg.TotalMean())
	}
}

func TestBreakdownEmptyMeans(t *testing.T) {
	var b Breakdown
	if o, q, s, c := b.Means(); o != 0 || q != 0 || s != 0 || c != 0 {
		t.Error("empty breakdown must report zeros")
	}
}

func TestGBs(t *testing.T) {
	// 16 bytes per cycle at 2.4 GHz = 38.4 GB/s.
	got := GBs(16*1000, 1000)
	if math.Abs(got-38.4) > 1e-9 {
		t.Errorf("GBs = %v, want 38.4", got)
	}
	if GBs(100, 0) != 0 {
		t.Error("zero window must yield 0")
	}
}

func TestUtilization(t *testing.T) {
	if Utilization(19.2, 38.4) != 0.5 {
		t.Error("utilization math")
	}
	if Utilization(1, 0) != 0 {
		t.Error("zero peak guard")
	}
}

func TestGeomeanMeanQuantile(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean = %v", g)
	}
	if Geomean(nil) != 0 || Geomean([]float64{1, 0}) != 0 {
		t.Error("geomean guards")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
	if Mean(nil) != 0 {
		t.Error("mean empty")
	}
	vals := []float64{5, 1, 3, 2, 4}
	if Quantile(vals, 0) != 1 || Quantile(vals, 1) != 5 {
		t.Error("quantile extremes")
	}
	if q := Quantile(vals, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("quantile mutated its input")
	}
}

func TestGeomeanLEMean(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v) + 1
		}
		return Geomean(vals) <= Mean(vals)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	var b Bandwidth
	b.AddRead(64)
	b.AddWrite(128)
	if b.Total() != 192 {
		t.Errorf("total = %d", b.Total())
	}
	var o Bandwidth
	o.AddRead(8)
	b.Merge(o)
	if b.ReadBytes != 72 {
		t.Errorf("merged reads = %d", b.ReadBytes)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Errorf("n=%d mean=%v", w.N(), w.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance %v", w.Variance())
	}
	var empty Welford
	if empty.Variance() != 0 || empty.Std() != 0 {
		t.Error("empty welford guards")
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var w Welford
	var xs []float64
	for i := 0; i < 500; i++ {
		x := rng.NormFloat64()*3 + 10
		xs = append(xs, x)
		w.Add(x)
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("mean mismatch: %v vs %v", w.Mean(), Mean(xs))
	}
}
