// Package stats provides the statistics machinery used across the COAXIAL
// simulator: streaming histograms with percentile queries, latency
// breakdown accumulators, and bandwidth accounting windows.
package stats

import (
	"fmt"
	"math"
	"sort"

	"coaxial/internal/clock"
)

// Histogram is a fixed-bucket streaming histogram for latency samples
// measured in cycles. It supports mean and arbitrary percentile queries.
// Buckets are linear up to Cap; samples beyond Cap land in an overflow
// bucket whose contribution to percentiles is Cap (a conservative floor).
type Histogram struct {
	buckets  []uint64
	width    int64
	capLimit int64
	count    uint64
	sum      uint64
	max      int64
	overflow uint64
}

// NewHistogram creates a histogram covering [0, capLimit) cycles with the
// given bucket width in cycles.
func NewHistogram(capLimit, width int64) *Histogram {
	if width < 1 {
		width = 1
	}
	n := capLimit / width
	if n < 1 {
		n = 1
	}
	return &Histogram{
		buckets:  make([]uint64, n),
		width:    width,
		capLimit: n * width,
	}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += uint64(v)
	if v > h.max {
		h.max = v
	}
	if v >= h.capLimit {
		h.overflow++
		return
	}
	h.buckets[v/h.width]++
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average sample value, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the maximum recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns the p-th percentile (0 < p <= 100) using bucket
// midpoints. Overflow samples report the histogram cap.
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		p = 0.0001
	}
	if p > 100 {
		p = 100
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return int64(i)*h.width + h.width/2
		}
	}
	return h.capLimit
}

// Merge adds all samples of other into h. The histograms must share the
// same geometry.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.width != other.width || len(h.buckets) != len(other.buckets) {
		return fmt.Errorf("stats: merging histograms with mismatched geometry")
	}
	for i, b := range other.buckets {
		h.buckets[i] += b
	}
	h.count += other.count
	h.sum += other.sum
	h.overflow += other.overflow
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Reset clears all recorded samples.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.overflow, h.max = 0, 0, 0, 0
}

// Breakdown accumulates the components of L2-miss (memory access) latency
// the paper's figures decompose: on-chip time (NoC + LLC), queuing delay at
// the DDR controller, DRAM service time, and CXL interface time.
type Breakdown struct {
	Count   uint64
	OnChip  uint64
	Queue   uint64
	Service uint64
	CXL     uint64
}

// Add records one request's component latencies (cycles).
func (b *Breakdown) Add(onchip, queue, service, cxl int64) {
	b.Count++
	b.OnChip += clampU(onchip)
	b.Queue += clampU(queue)
	b.Service += clampU(service)
	b.CXL += clampU(cxl)
}

func clampU(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// Merge adds other's samples into b.
func (b *Breakdown) Merge(other Breakdown) {
	b.Count += other.Count
	b.OnChip += other.OnChip
	b.Queue += other.Queue
	b.Service += other.Service
	b.CXL += other.CXL
}

// Means returns the average of each component in cycles.
func (b *Breakdown) Means() (onchip, queue, service, cxl float64) {
	if b.Count == 0 {
		return 0, 0, 0, 0
	}
	n := float64(b.Count)
	return float64(b.OnChip) / n, float64(b.Queue) / n, float64(b.Service) / n, float64(b.CXL) / n
}

// TotalMean returns the average total L2-miss latency in cycles.
func (b *Breakdown) TotalMean() float64 {
	o, q, s, c := b.Means()
	return o + q + s + c
}

// Bandwidth tracks bytes moved over an interval and converts to GB/s and
// utilization against a peak.
type Bandwidth struct {
	ReadBytes  uint64
	WriteBytes uint64
}

// AddRead/AddWrite record one 64-byte line transfer by default; callers may
// pass other sizes.
func (b *Bandwidth) AddRead(n int)  { b.ReadBytes += uint64(n) }
func (b *Bandwidth) AddWrite(n int) { b.WriteBytes += uint64(n) }

// Merge adds other's bytes into b.
func (b *Bandwidth) Merge(other Bandwidth) {
	b.ReadBytes += other.ReadBytes
	b.WriteBytes += other.WriteBytes
}

// Total returns read+write bytes.
func (b *Bandwidth) Total() uint64 { return b.ReadBytes + b.WriteBytes }

// GBs converts bytes over the given cycle span to GB/s (cycle = 1/2.4 ns).
func GBs(bytes uint64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	seconds := float64(cycles) / (clock.FreqGHz * 1e9)
	return float64(bytes) / 1e9 / seconds
}

// Utilization returns achieved/peak bandwidth as a fraction in [0, +inf).
func Utilization(achievedGBs, peakGBs float64) float64 {
	if peakGBs <= 0 {
		return 0
	}
	return achievedGBs / peakGBs
}

// Geomean returns the geometric mean of a slice of positive values, or 0 if
// the slice is empty or contains a non-positive value.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) over the given
// non-negative shares (e.g. per-host IPCs or bandwidth allocations on a
// shared pooled device): 1 when all shares are equal, approaching 1/n when
// one consumer starves the rest. Returns 0 for an empty slice or all-zero
// shares.
func JainFairness(shares []float64) float64 {
	if len(shares) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range shares {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(shares)) * sumSq)
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// Quantile returns the q-th (0..1) quantile of vals by sorting a copy;
// intended for small offline aggregations, not hot paths.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	c := append([]float64(nil), vals...)
	sort.Float64s(c)
	if q <= 0 {
		return c[0]
	}
	if q >= 1 {
		return c[len(c)-1]
	}
	idx := q * float64(len(c)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(c) {
		return c[len(c)-1]
	}
	return c[lo]*(1-frac) + c[lo+1]*frac
}

// Welford accumulates a running mean and variance (Welford's online
// algorithm), used for multi-seed experiment aggregation.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds in one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }
