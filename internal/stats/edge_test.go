package stats

import (
	"math"
	"testing"
)

func TestHistogramEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Histogram
		check func(t *testing.T, h *Histogram)
	}{
		{
			name:  "empty-percentile",
			build: func() *Histogram { return NewHistogram(1000, 10) },
			check: func(t *testing.T, h *Histogram) {
				if p := h.Percentile(50); p != 0 {
					t.Errorf("p50 of empty histogram = %d, want 0", p)
				}
				if m := h.Mean(); m != 0 {
					t.Errorf("mean of empty histogram = %v, want 0", m)
				}
			},
		},
		{
			name: "overflow-reports-cap",
			build: func() *Histogram {
				h := NewHistogram(1000, 10)
				h.Add(1_000_000)
				return h
			},
			check: func(t *testing.T, h *Histogram) {
				if p := h.Percentile(99); p != 1000 {
					t.Errorf("overflow p99 = %d, want the 1000-cycle cap", p)
				}
				if h.Max() != 1_000_000 {
					t.Errorf("max = %d, want the raw sample", h.Max())
				}
			},
		},
		{
			name: "negative-clamps-to-zero",
			build: func() *Histogram {
				h := NewHistogram(1000, 10)
				h.Add(-50)
				return h
			},
			check: func(t *testing.T, h *Histogram) {
				if h.Count() != 1 || h.Mean() != 0 {
					t.Errorf("count %d mean %v, want 1 and 0", h.Count(), h.Mean())
				}
			},
		},
		{
			name:  "degenerate-geometry-normalizes",
			build: func() *Histogram { return NewHistogram(0, 0) },
			check: func(t *testing.T, h *Histogram) {
				h.Add(5) // single one-cycle bucket; must not panic
				if h.Count() != 1 {
					t.Errorf("count = %d, want 1", h.Count())
				}
			},
		},
		{
			name: "percentile-out-of-range-p",
			build: func() *Histogram {
				h := NewHistogram(1000, 10)
				h.Add(100)
				return h
			},
			check: func(t *testing.T, h *Histogram) {
				lo, hi := h.Percentile(-10), h.Percentile(200)
				if lo != hi || lo != h.Percentile(50) {
					t.Errorf("clamped percentiles differ: p<0 %d, p>100 %d, p50 %d", lo, hi, h.Percentile(50))
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { tc.check(t, tc.build()) })
	}
}

func TestHistogramMergeGeometryMismatch(t *testing.T) {
	base := NewHistogram(1000, 10)
	cases := []struct {
		name    string
		other   *Histogram
		wantErr bool
	}{
		{"nil-merge", nil, false},
		{"same-geometry", NewHistogram(1000, 10), false},
		{"width-mismatch", NewHistogram(1000, 20), true},
		{"bucket-count-mismatch", NewHistogram(2000, 10), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := base.Merge(tc.other)
			if (err != nil) != tc.wantErr {
				t.Errorf("Merge error = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
}

func TestGeomeanEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"contains-zero", []float64{2, 0, 8}, 0},
		{"contains-negative", []float64{2, -1, 8}, 0},
		{"two-values", []float64{2, 8}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Geomean(tc.in); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Geomean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	vals := []float64{3, 1, 2}
	cases := []struct {
		name string
		in   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"below-zero", vals, -1, 1},
		{"above-one", vals, 2, 3},
		{"median", vals, 0.5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Quantile(tc.in, tc.q); got != tc.want {
				t.Errorf("Quantile(%v, %v) = %v, want %v", tc.in, tc.q, got, tc.want)
			}
		})
	}
}
