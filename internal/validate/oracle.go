// Package validate implements the simulator's differential validation
// harness: an independent DDR5 timing oracle that re-checks every DRAM
// command the scheduler issues against JEDEC-style constraints, and a
// request-lifecycle invariant checker for the memory-request plumbing.
//
// Both checkers are deliberately naive re-implementations. They share no
// scheduling state with the components they watch — the oracle rebuilds
// bank/rank state from the command stream alone, the lifecycle checker
// tracks requests only through their issue/complete edges — so a bug in
// the fast path cannot cancel itself out inside the checker. This mirrors
// the validation methodology of CXL-DMSim and CXLRAMSim: credibility
// comes from an independent layer re-deriving what the model must obey.
package validate

import (
	"fmt"
	"strings"

	"coaxial/internal/dram"
)

// farPast marks "never happened" timestamps; adding any timing parameter
// to it cannot reach a simulated cycle.
const farPast = int64(-1) << 40

const (
	// historyDepth is how many recent commands each oracle retains for
	// violation reports.
	historyDepth = 32
	// maxViolations caps stored violations per oracle; further breaches
	// are still counted.
	maxViolations = 16
)

// Violation is one observed breach of a DDR timing or state rule.
type Violation struct {
	Label   string         // which sub-channel oracle observed it
	Rule    string         // the violated constraint ("tRCD", "tFAW", ...)
	Cmd     dram.Command   // the offending command
	Detail  string         // human-readable specifics
	History []dram.Command // recent commands, oldest first, ending at Cmd
}

// String formats the violation with its command history for reports.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: cycle %d: %s violated by %s bank %d group %d row %#x: %s\n",
		v.Label, v.Cmd.Cycle, v.Rule, v.Cmd.Kind, v.Cmd.Bank, v.Cmd.Group, v.Cmd.Row, v.Detail)
	for _, h := range v.History {
		fmt.Fprintf(&b, "    %10d %-3s bank %2d group %d row %#x\n", h.Cycle, h.Kind, h.Bank, h.Group, h.Row)
	}
	return b.String()
}

// obank is the oracle's per-bank state, rebuilt purely from the command
// stream (never read from the scheduler).
type obank struct {
	open       bool
	row        uint64
	actAt      int64 // last ACT cycle
	preAt      int64 // last PRE cycle
	lastRD     int64 // last read CAS cycle (gates PRE via tRTP)
	wrPreReady int64 // end of write data + tWR (gates PRE)
	refsbUntil int64 // REFsb block window end
	lastREFsb  int64 // last REFsb cycle (per-bank refresh window)
}

// Oracle is an independent DDR5 timing scoreboard for one sub-channel.
// Attach one per sub-channel via dram.SubChannel.AttachObserver: all state
// is private, so oracles are safe under parallel per-backend ticking as
// long as no two sub-channels share one.
type Oracle struct {
	label    string
	t        dram.Timing
	sameBank bool
	nBanks   int
	perGroup int32

	banks []obank

	// Rank-level command history.
	actRing    [4]int64 // FAW window: last four ACT cycles
	actIdx     int
	lastACT    int64
	lastACTGrp int32
	lastCAS    int64
	lastCASGrp int32
	lastCASWr  bool
	busBusy    int64 // data bus occupied until this cycle

	refBlockUntil int64 // all-bank tRFC window end
	lastREF       int64 // last all-bank REF cycle
	lastREFsb     int64 // last REFsb cycle (any bank)
	sbPeriod      int64 // expected REFsb cadence: tREFI / nBanks
	refSlack      int64 // scheduling slack allowed on refresh cadence

	firstCmd int64
	lastCmd  int64

	history []dram.Command
	histPos int

	commands   uint64
	violations []Violation
	nViol      int
}

// NewOracle builds a timing oracle for one sub-channel of a channel with
// the given configuration. The label identifies the sub-channel in
// violation reports (e.g. "ddr0/sub1" or "cxl0/ddr0/sub0").
func NewOracle(cfg dram.Config, label string) *Oracle {
	t := cfg.Timing
	n := cfg.Banks()
	o := &Oracle{
		label:    label,
		t:        t,
		sameBank: cfg.SameBankRefresh,
		nBanks:   n,
		perGroup: int32(cfg.BanksPerGroup),
		banks:    make([]obank, n),
		lastACT:  farPast,
		lastCAS:  farPast,
		lastREF:  farPast,
		firstCmd: farPast,
		lastCmd:  farPast,
		sbPeriod: t.REFI / int64(n),
		// Refresh cadence slack: the scheduler may legitimately issue a
		// refresh late by the quiesce cost — precharging every open bank,
		// each gated by its tRAS/tRTP/tWR window — plus one command slot
		// per bank and a small margin.
		refSlack: t.RAS + t.WL + t.BURST + t.WR + int64(n) + 64,
		history:  make([]dram.Command, 0, historyDepth),
	}
	o.lastREFsb = farPast
	for i := range o.actRing {
		o.actRing[i] = farPast
	}
	for i := range o.banks {
		b := &o.banks[i]
		b.actAt, b.preAt, b.lastRD, b.wrPreReady, b.refsbUntil, b.lastREFsb =
			farPast, farPast, farPast, farPast, farPast, farPast
	}
	return o
}

// Label returns the sub-channel label.
func (o *Oracle) Label() string { return o.label }

// Commands returns how many commands the oracle has observed.
func (o *Oracle) Commands() uint64 { return o.commands }

// ViolationCount returns the total number of breaches observed (including
// any beyond the stored cap).
func (o *Oracle) ViolationCount() int { return o.nViol }

// Violations returns the stored violations, oldest first.
func (o *Oracle) Violations() []Violation { return o.violations }

func (o *Oracle) flag(rule string, c dram.Command, detail string) {
	o.nViol++
	if len(o.violations) >= maxViolations {
		return
	}
	o.violations = append(o.violations, Violation{
		Label:   o.label,
		Rule:    rule,
		Cmd:     c,
		Detail:  detail,
		History: o.snapshotHistory(),
	})
}

func (o *Oracle) pushHistory(c dram.Command) {
	if len(o.history) < historyDepth {
		o.history = append(o.history, c)
		return
	}
	o.history[o.histPos] = c
	o.histPos = (o.histPos + 1) % historyDepth
}

// snapshotHistory returns the retained commands oldest-first.
func (o *Oracle) snapshotHistory() []dram.Command {
	out := make([]dram.Command, 0, len(o.history))
	if len(o.history) < historyDepth {
		return append(out, o.history...)
	}
	out = append(out, o.history[o.histPos:]...)
	return append(out, o.history[:o.histPos]...)
}

// OnCommand implements dram.CommandObserver: it checks the command against
// the oracle's reconstructed state, then applies it.
func (o *Oracle) OnCommand(c dram.Command) {
	o.commands++
	o.pushHistory(c)

	if o.lastCmd != farPast {
		if c.Cycle < o.lastCmd {
			o.flag("command-order", c,
				fmt.Sprintf("command cycle went backwards (previous command at %d)", o.lastCmd))
		} else if c.Cycle == o.lastCmd {
			o.flag("command-bus", c,
				fmt.Sprintf("second command in cycle %d (one command-bus slot per nCK)", c.Cycle))
		}
	}
	if o.firstCmd == farPast {
		o.firstCmd = c.Cycle
	}
	o.lastCmd = c.Cycle

	if c.Cycle < o.refBlockUntil {
		o.flag("tRFC", c,
			fmt.Sprintf("command inside all-bank refresh window (rank blocked until %d)", o.refBlockUntil))
	}

	if c.Bank >= 0 {
		if int(c.Bank) >= o.nBanks {
			o.flag("decode", c, fmt.Sprintf("bank %d out of range (%d banks)", c.Bank, o.nBanks))
			return
		}
		if c.Group != c.Bank/o.perGroup {
			o.flag("decode", c,
				fmt.Sprintf("bank group %d inconsistent with bank %d (expect %d)", c.Group, c.Bank, c.Bank/o.perGroup))
		}
	}

	switch c.Kind {
	case dram.CmdACT:
		o.onACT(c)
	case dram.CmdRD:
		o.onCAS(c, false)
	case dram.CmdWR:
		o.onCAS(c, true)
	case dram.CmdPRE:
		o.onPRE(c)
	case dram.CmdREF:
		if c.Bank < 0 {
			o.onREF(c)
		} else {
			o.onREFsb(c)
		}
	}
}

func (o *Oracle) onACT(c dram.Command) {
	b := &o.banks[c.Bank]
	if b.open {
		o.flag("bank-state", c, fmt.Sprintf("ACT to an open bank (row %#x already open)", b.row))
	}
	if c.Cycle < b.preAt+o.t.RP {
		o.flag("tRP", c,
			fmt.Sprintf("ACT %d cycles after PRE at %d, need tRP=%d", c.Cycle-b.preAt, b.preAt, o.t.RP))
	}
	if c.Cycle < b.actAt+o.t.RC {
		o.flag("tRC", c,
			fmt.Sprintf("ACT %d cycles after ACT at %d, need tRC=%d", c.Cycle-b.actAt, b.actAt, o.t.RC))
	}
	if c.Cycle < b.refsbUntil {
		o.flag("tRFCsb", c,
			fmt.Sprintf("ACT inside same-bank refresh window (bank blocked until %d)", b.refsbUntil))
	}
	rrd := o.t.RRDS
	if c.Group == o.lastACTGrp {
		rrd = o.t.RRDL
	}
	if o.lastACT != farPast && c.Cycle < o.lastACT+rrd {
		o.flag("tRRD", c,
			fmt.Sprintf("ACT %d cycles after rank ACT at %d, need tRRD=%d", c.Cycle-o.lastACT, o.lastACT, rrd))
	}
	if oldest := o.actRing[o.actIdx]; c.Cycle < oldest+o.t.FAW {
		o.flag("tFAW", c,
			fmt.Sprintf("fifth ACT %d cycles after ACT at %d, need tFAW=%d", c.Cycle-oldest, oldest, o.t.FAW))
	}

	b.open, b.row, b.actAt = true, c.Row, c.Cycle
	o.actRing[o.actIdx] = c.Cycle
	o.actIdx = (o.actIdx + 1) % len(o.actRing)
	o.lastACT, o.lastACTGrp = c.Cycle, c.Group
}

func (o *Oracle) onCAS(c dram.Command, isWrite bool) {
	b := &o.banks[c.Bank]
	switch {
	case !b.open:
		o.flag("bank-state", c, "column command to a closed bank")
	case b.row != c.Row:
		o.flag("row-match", c, fmt.Sprintf("column command to row %#x but row %#x is open", c.Row, b.row))
	}
	if c.Cycle < b.actAt+o.t.RCD {
		o.flag("tRCD", c,
			fmt.Sprintf("CAS %d cycles after ACT at %d, need tRCD=%d", c.Cycle-b.actAt, b.actAt, o.t.RCD))
	}
	if o.lastCAS != farPast {
		sameGrp := c.Group == o.lastCASGrp
		ccd := o.t.CCDS
		if sameGrp {
			ccd = o.t.CCDL
		}
		switch {
		case !isWrite && o.lastCASWr:
			wtr := o.t.WTRS
			if sameGrp {
				wtr = o.t.WTRL
			}
			if min := o.lastCAS + o.t.WL + o.t.BURST + wtr; c.Cycle < min {
				o.flag("tWTR", c,
					fmt.Sprintf("read %d cycles after write CAS at %d, need WL+BURST+tWTR=%d",
						c.Cycle-o.lastCAS, o.lastCAS, o.t.WL+o.t.BURST+wtr))
			}
		case isWrite && !o.lastCASWr:
			if min := o.lastCAS + ccd + o.t.RTW; c.Cycle < min {
				o.flag("tRTW", c,
					fmt.Sprintf("write %d cycles after read CAS at %d, need tCCD+tRTW=%d",
						c.Cycle-o.lastCAS, o.lastCAS, ccd+o.t.RTW))
			}
		default:
			if c.Cycle < o.lastCAS+ccd {
				o.flag("tCCD", c,
					fmt.Sprintf("CAS %d cycles after CAS at %d, need tCCD=%d", c.Cycle-o.lastCAS, o.lastCAS, ccd))
			}
		}
	}
	lat := o.t.RL
	if isWrite {
		lat = o.t.WL
	}
	dataStart := c.Cycle + lat
	if dataStart < o.busBusy {
		o.flag("data-bus", c,
			fmt.Sprintf("burst starting at %d overlaps previous burst (bus busy until %d)", dataStart, o.busBusy))
	}
	o.busBusy = dataStart + o.t.BURST
	o.lastCAS, o.lastCASGrp, o.lastCASWr = c.Cycle, c.Group, isWrite
	if isWrite {
		b.wrPreReady = dataStart + o.t.BURST + o.t.WR
	} else {
		b.lastRD = c.Cycle
	}
}

func (o *Oracle) onPRE(c dram.Command) {
	b := &o.banks[c.Bank]
	if !b.open {
		o.flag("bank-state", c, "PRE to a closed bank")
	}
	if c.Cycle < b.actAt+o.t.RAS {
		o.flag("tRAS", c,
			fmt.Sprintf("PRE %d cycles after ACT at %d, need tRAS=%d", c.Cycle-b.actAt, b.actAt, o.t.RAS))
	}
	if c.Cycle < b.lastRD+o.t.RTP {
		o.flag("tRTP", c,
			fmt.Sprintf("PRE %d cycles after read CAS at %d, need tRTP=%d", c.Cycle-b.lastRD, b.lastRD, o.t.RTP))
	}
	if c.Cycle < b.wrPreReady {
		o.flag("tWR", c,
			fmt.Sprintf("PRE before write recovery completes at %d", b.wrPreReady))
	}
	b.open, b.preAt = false, c.Cycle
}

func (o *Oracle) onREF(c dram.Command) {
	if o.sameBank {
		o.flag("refresh-mode", c, "all-bank REF issued in same-bank refresh mode")
	}
	for i := range o.banks {
		if o.banks[i].open {
			o.flag("refresh-quiesce", c, fmt.Sprintf("all-bank REF with bank %d open", i))
			break
		}
	}
	if o.lastREF != farPast {
		if gap := c.Cycle - o.lastREF; gap > o.t.REFI+o.refSlack {
			o.flag("tREFI", c,
				fmt.Sprintf("%d cycles since previous REF at %d, expected <= tREFI=%d (+%d quiesce slack)",
					gap, o.lastREF, o.t.REFI, o.refSlack))
		}
	}
	o.lastREF = c.Cycle
	o.refBlockUntil = c.Cycle + o.t.RFC
}

func (o *Oracle) onREFsb(c dram.Command) {
	if !o.sameBank {
		o.flag("refresh-mode", c, "same-bank REFsb issued in all-bank refresh mode")
	}
	b := &o.banks[c.Bank]
	if b.open {
		o.flag("refresh-quiesce", c, "REFsb to an open bank")
	}
	if o.lastREFsb != farPast {
		if gap := c.Cycle - o.lastREFsb; gap > o.sbPeriod+o.refSlack {
			o.flag("tREFIsb", c,
				fmt.Sprintf("%d cycles since previous REFsb at %d, expected <= tREFI/banks=%d (+%d slack)",
					gap, o.lastREFsb, o.sbPeriod, o.refSlack))
		}
	}
	if b.lastREFsb != farPast {
		if gap := c.Cycle - b.lastREFsb; gap > o.t.REFI+o.refSlack {
			o.flag("tREFW", c,
				fmt.Sprintf("bank refreshed %d cycles after its previous REFsb at %d, window is tREFI=%d (+%d slack)",
					gap, b.lastREFsb, o.t.REFI, o.refSlack))
		}
	}
	o.lastREFsb = c.Cycle
	b.lastREFsb = c.Cycle
	b.refsbUntil = c.Cycle + o.t.RFCsb
}

// Quiesce runs the end-of-run checks against the final system clock: the
// refresh schedule must not have silently stalled while the run was live.
// Call once, after the last tick.
func (o *Oracle) Quiesce(now int64) {
	if o.commands == 0 {
		return // sub-channel never saw traffic or a refresh tick
	}
	end := dram.Command{Cycle: now, Kind: dram.CmdREF, Bank: -1, Group: -1}
	// Bound: one full interval plus the refresh blackout plus quiesce
	// slack may separate the last refresh from the moment the run ended.
	bound := o.t.REFI + o.t.RFC + o.refSlack
	if o.sameBank {
		end.Bank = 0
		last := o.lastREFsb
		if last == farPast {
			last = o.firstCmd
		}
		if gap := now - last; gap > o.sbPeriod+bound {
			o.flag("refresh-stalled", end,
				fmt.Sprintf("run ended %d cycles after the last REFsb at %d", gap, last))
		}
		return
	}
	last := o.lastREF
	if last == farPast {
		last = o.firstCmd
	}
	if gap := now - last; gap > bound {
		o.flag("refresh-stalled", end,
			fmt.Sprintf("run ended %d cycles after the last all-bank REF at %d", gap, last))
	}
}
