package validate

import (
	"fmt"
	"sort"

	"coaxial/internal/memreq"
)

// maxLifecycleErrors caps stored error strings; further failures are still
// counted.
const maxLifecycleErrors = 16

// Lifecycle tracks every memory request from issue to completion and
// checks the request-plumbing invariants: each request is issued exactly
// once, reads complete exactly once, timestamps advance monotonically
// through the pipeline, the latency breakdown never exceeds the
// end-to-end latency, and nothing leaks at window end.
//
// The checker observes requests only at the sequential phases of the tick
// loop (send and Complete both run outside the parallel backend phase),
// so it needs no locking.
type Lifecycle struct {
	//lint:owns tracking keys only; entries are deleted on completion/retire, never dereferenced after release
	reads map[*memreq.Request]struct{}
	//lint:owns tracking keys only; entries are deleted on completion/retire, never dereferenced after release
	writes map[*memreq.Request]struct{}

	issuedReads    uint64
	issuedWrites   uint64
	completedReads uint64

	errs  []string
	nErrs int
}

// NewLifecycle returns an empty checker.
func NewLifecycle() *Lifecycle {
	return &Lifecycle{
		reads:  make(map[*memreq.Request]struct{}),
		writes: make(map[*memreq.Request]struct{}),
	}
}

func (l *Lifecycle) fail(format string, args ...any) {
	l.nErrs++
	if len(l.errs) >= maxLifecycleErrors {
		return
	}
	l.errs = append(l.errs, fmt.Sprintf(format, args...))
}

// Failf records an externally-detected invariant failure (e.g. a counter
// bound checked by the system wiring) so all findings surface through one
// report.
func (l *Lifecycle) Failf(format string, args ...any) {
	l.fail(format, args...)
}

// ErrorCount returns the total number of invariant failures (including
// any beyond the stored cap).
func (l *Lifecycle) ErrorCount() int { return l.nErrs }

// Errors returns the stored failure descriptions, oldest first.
func (l *Lifecycle) Errors() []string { return l.errs }

// Counts reports issued/completed tallies for tests.
func (l *Lifecycle) Counts() (issuedReads, issuedWrites, completedReads uint64) {
	return l.issuedReads, l.issuedWrites, l.completedReads
}

// OnIssue records a request entering the memory system at cycle `at`.
func (l *Lifecycle) OnIssue(r *memreq.Request, at int64) {
	if r == nil {
		l.fail("nil request issued at cycle %d", at)
		return
	}
	if at < r.Issue {
		l.fail("request %#x (core %d) issued at cycle %d before its Issue stamp %d",
			r.Addr, r.Core, at, r.Issue)
	}
	if r.Kind == memreq.Write {
		if _, dup := l.writes[r]; dup {
			l.fail("write %#x issued twice (cycle %d)", r.Addr, at)
			return
		}
		l.writes[r] = struct{}{}
		l.issuedWrites++
		return
	}
	if _, dup := l.reads[r]; dup {
		l.fail("read %#x (core %d) issued twice (cycle %d)", r.Addr, r.Core, at)
		return
	}
	l.reads[r] = struct{}{}
	l.issuedReads++
}

// OnComplete records a request's completion callback at cycle `now` and
// checks its timestamp monotonicity and latency breakdown. Write
// completions merely release tracking (writebacks usually complete
// unobserved, with no callback at all).
func (l *Lifecycle) OnComplete(r *memreq.Request, now int64) {
	if r == nil {
		l.fail("nil request completed at cycle %d", now)
		return
	}
	if r.Kind == memreq.Write {
		delete(l.writes, r)
		return
	}
	if _, ok := l.reads[r]; !ok {
		l.fail("read %#x (core %d) completed at cycle %d but was never issued (or completed twice)",
			r.Addr, r.Core, now)
		return
	}
	delete(l.reads, r)
	l.completedReads++

	switch {
	case r.ArriveMC < r.Issue:
		l.fail("read %#x: arrived at the controller (cycle %d) before issue (cycle %d)",
			r.Addr, r.ArriveMC, r.Issue)
	case r.StartSvc < r.ArriveMC:
		l.fail("read %#x: negative queue delay (first command at %d, arrival at %d)",
			r.Addr, r.StartSvc, r.ArriveMC)
	case r.DataDone < r.StartSvc:
		l.fail("read %#x: negative service time (data done at %d, first command at %d)",
			r.Addr, r.DataDone, r.StartSvc)
	case now < r.DataDone:
		l.fail("read %#x: completed at cycle %d before its data burst finished at %d",
			r.Addr, now, r.DataDone)
	}
	if r.Spill < 0 {
		l.fail("read %#x: negative spill time %d", r.Addr, r.Spill)
	}
	if r.CXLTime < 0 {
		l.fail("read %#x: negative CXL time %d", r.Addr, r.CXLTime)
	}
	// Breakdown must never regress: the components sum to at most the
	// end-to-end latency (the remainder is the on-chip share, which must
	// therefore be non-negative).
	if total := now - r.Issue; total < r.QueueDelay()+r.ServiceTime()+r.Spill+r.CXLTime {
		l.fail("read %#x: breakdown exceeds total latency (total %d < queue %d + service %d + spill %d + cxl %d)",
			r.Addr, total, r.QueueDelay(), r.ServiceTime(), r.Spill, r.CXLTime)
	}
}

// OnRetire records a request dying silently inside a memory backend (a
// write whose CAS retired with no completion callback). Tracking is
// released before the request's storage is recycled, so a later request
// reusing the same arena slot cannot be mistaken for a duplicate issue.
// Reads must never retire silently; one showing up here is a violation.
func (l *Lifecycle) OnRetire(r *memreq.Request) {
	if r == nil {
		l.fail("nil request retired inside a backend")
		return
	}
	if r.Kind != memreq.Write {
		l.fail("read %#x (core %d) retired silently inside a backend", r.Addr, r.Core)
		delete(l.reads, r)
		return
	}
	delete(l.writes, r)
}

// InFlight reports the tracked in-flight read population: total, and the
// subset still holding an MSHR (CALM false positives are discarded early
// and release theirs before the memory response returns).
func (l *Lifecycle) InFlight() (reads, nonDiscard int) {
	reads = len(l.reads)
	for r := range l.reads {
		if !r.Discard {
			nonDiscard++
		}
	}
	return reads, nonDiscard
}

// CheckEnd reconciles the tracked population against the physical one at
// window end. walk must visit every request the memory system still owns
// (spill queues plus every backend's internal queues); mshrHeld is the sum
// of outstanding MSHR entries across cores. Every tracked read must be
// physically present exactly once and vice versa; physical writes must be
// tracked (the converse does not hold — writes may complete unobserved, so
// consumed entries are pruned here instead).
func (l *Lifecycle) CheckEnd(walk func(func(*memreq.Request)), mshrHeld int) {
	seenR := make(map[*memreq.Request]struct{}, len(l.reads))
	seenW := make(map[*memreq.Request]struct{}, len(l.writes))
	walk(func(r *memreq.Request) {
		if r == nil {
			l.fail("nil request found in a memory-system queue at window end")
			return
		}
		if r.Kind == memreq.Write {
			if _, ok := l.writes[r]; !ok {
				l.fail("untracked write %#x present in a memory-system queue at window end", r.Addr)
			}
			if _, dup := seenW[r]; dup {
				l.fail("write %#x present in two memory-system queues at once", r.Addr)
			}
			seenW[r] = struct{}{}
			return
		}
		if _, ok := l.reads[r]; !ok {
			l.fail("untracked read %#x (core %d) present in a memory-system queue at window end", r.Addr, r.Core)
		}
		if _, dup := seenR[r]; dup {
			l.fail("read %#x (core %d) present in two memory-system queues at once", r.Addr, r.Core)
		}
		seenR[r] = struct{}{}
	})
	// Collect leaks and report in a fixed order: the failure strings are part
	// of a run's reproducible output and must not depend on map iteration.
	var leaked []*memreq.Request
	for r := range l.reads {
		if _, ok := seenR[r]; !ok {
			leaked = append(leaked, r)
		}
	}
	sort.Slice(leaked, func(i, j int) bool {
		if leaked[i].Addr != leaked[j].Addr {
			return leaked[i].Addr < leaked[j].Addr
		}
		return leaked[i].Core < leaked[j].Core
	})
	for _, r := range leaked {
		l.fail("read %#x (core %d) leaked: tracked in flight but absent from every memory-system queue",
			r.Addr, r.Core)
	}
	// Writes complete silently once the DRAM write CAS retires; prune
	// tracked entries that have physically drained.
	for r := range l.writes {
		if _, ok := seenW[r]; !ok {
			delete(l.writes, r)
		}
	}
	if _, nonDiscard := l.InFlight(); nonDiscard != mshrHeld {
		l.fail("MSHR accounting mismatch at window end: %d non-discarded in-flight reads vs %d held MSHR entries",
			nonDiscard, mshrHeld)
	}
}
