package validate

import (
	"math/rand"
	"testing"

	"coaxial/internal/dram"
	"coaxial/internal/memreq"
)

// sink absorbs completions; the oracle watches the command bus, not the
// request plumbing.
type sink struct{ done int }

func (s *sink) Complete(r *memreq.Request, now int64) { s.done++ }

// driveRandom runs one sub-channel under mixed random traffic for `cycles`
// cycles with an oracle attached, then drains it. schedCfg configures the
// scheduler under test; oracleCfg configures the oracle's reference timing
// (they differ only in mutation tests).
func driveRandom(t *testing.T, schedCfg, oracleCfg dram.Config, cycles int64, seed int64) (*Oracle, int64) {
	t.Helper()
	s := dram.NewSubChannel(schedCfg, 1)
	o := NewOracle(oracleCfg, "test/sub0")
	s.AttachObserver(o)
	snk := &sink{}
	rng := rand.New(rand.NewSource(seed))
	var last uint64
	var now int64
	for now = 1; now <= cycles; now++ {
		// Offered load around one request per three cycles: enough bank
		// conflicts, turnarounds, and write drains to exercise every rule.
		if rng.Intn(3) == 0 {
			addr := uint64(rng.Intn(1<<22)) << 6
			if rng.Intn(2) == 0 {
				addr = last + memreq.LineSize // row locality: back-to-back CAS
			}
			last = addr
			kind := memreq.Read
			if rng.Intn(4) == 0 {
				kind = memreq.Write
			}
			// Enqueue may refuse under backpressure; dropping is fine here.
			s.Enqueue(&memreq.Request{Addr: addr, Kind: kind, Issue: now, Ret: snk}, now)
		}
		s.Tick(now)
	}
	for !s.Idle() {
		now++
		s.Tick(now)
		if now > cycles+2_000_000 {
			t.Fatal("sub-channel failed to drain")
		}
	}
	return o, now
}

func assertClean(t *testing.T, o *Oracle) {
	t.Helper()
	if o.ViolationCount() == 0 {
		return
	}
	t.Errorf("oracle flagged %d violations on a correct scheduler", o.ViolationCount())
	for _, v := range o.Violations() {
		t.Logf("%s", v)
	}
}

func TestOracleCleanAllBankRefresh(t *testing.T) {
	cfg := dram.DefaultConfig()
	// Long enough to cross several tREFI intervals.
	o, end := driveRandom(t, cfg, cfg, 4*cfg.Timing.REFI, 1)
	o.Quiesce(end)
	assertClean(t, o)
	if o.Commands() < 1000 {
		t.Errorf("oracle observed only %d commands; traffic generator too weak", o.Commands())
	}
}

func TestOracleCleanSameBankRefresh(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.SameBankRefresh = true
	o, end := driveRandom(t, cfg, cfg, 4*cfg.Timing.REFI, 2)
	o.Quiesce(end)
	assertClean(t, o)
}

func TestOracleCleanNoBankPermutation(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.DisableBankPermutation = true
	o, end := driveRandom(t, cfg, cfg, 2*cfg.Timing.REFI, 3)
	o.Quiesce(end)
	assertClean(t, o)
}

// TestOracleCatchesInjectedTimingBugs is the harness's mutation test: the
// scheduler runs with one deliberately weakened timing parameter while the
// oracle checks the true DDR5-4800 constraints. Every weakening must
// surface as a violation of the matching rule — proving the oracle is not
// vacuously agreeing with the scheduler it watches.
func TestOracleCatchesInjectedTimingBugs(t *testing.T) {
	ref := dram.DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*dram.Timing)
		rule   string
	}{
		{"weak-tRCD", func(tm *dram.Timing) { tm.RCD = 1 }, "tRCD"},
		{"weak-tRP", func(tm *dram.Timing) { tm.RP = 1 }, "tRP"},
		{"weak-tRAS", func(tm *dram.Timing) { tm.RAS = 1; tm.RC = 40 }, "tRAS"},
		{"weak-tRRD", func(tm *dram.Timing) { tm.RRDL, tm.RRDS = 1, 1 }, "tRRD"},
		{"weak-tFAW", func(tm *dram.Timing) { tm.RRDL, tm.RRDS, tm.FAW = 1, 1, 4 }, "tFAW"},
		{"weak-tCCD", func(tm *dram.Timing) { tm.CCDL, tm.CCDS = 1, 1 }, "tCCD"},
		{"weak-tWTR", func(tm *dram.Timing) { tm.WTRL, tm.WTRS = 0, 0 }, "tWTR"},
		{"weak-tWR", func(tm *dram.Timing) { tm.WR = 1 }, "tWR"},
		{"stalled-refresh", func(tm *dram.Timing) { tm.REFI = 1 << 30 }, "refresh-stalled"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ref
			tc.mutate(&cfg.Timing)
			o, end := driveRandom(t, cfg, ref, 3*ref.Timing.REFI, 7)
			o.Quiesce(end)
			rules := make(map[string]int)
			for _, v := range o.Violations() {
				rules[v.Rule]++
			}
			if rules[tc.rule] == 0 {
				t.Errorf("oracle missed the injected %s bug; %d violations, rules seen: %v",
					tc.rule, o.ViolationCount(), rules)
			}
		})
	}
}

// TestOracleStateChecks feeds hand-built command streams straight into the
// oracle and checks the protocol/state rules that random scheduler traffic
// cannot produce.
func TestOracleStateChecks(t *testing.T) {
	cfg := dram.DefaultConfig()
	tm := cfg.Timing
	cmd := func(cycle int64, k dram.CommandKind, bank int32, row uint64) dram.Command {
		g := int32(-1)
		if bank >= 0 {
			g = bank / int32(cfg.BanksPerGroup)
		}
		return dram.Command{Cycle: cycle, Kind: k, Bank: bank, Group: g, Row: row}
	}
	cases := []struct {
		name     string
		sameBank bool
		feed     []dram.Command
		rule     string
	}{
		{
			name: "double-command-per-cycle",
			feed: []dram.Command{
				cmd(10, dram.CmdACT, 0, 1),
				cmd(10, dram.CmdACT, 8, 1),
			},
			rule: "command-bus",
		},
		{
			name: "time-goes-backwards",
			feed: []dram.Command{
				cmd(10, dram.CmdACT, 0, 1),
				cmd(9, dram.CmdPRE, 0, 1),
			},
			rule: "command-order",
		},
		{
			name: "cas-to-closed-bank",
			feed: []dram.Command{cmd(10, dram.CmdRD, 0, 1)},
			rule: "bank-state",
		},
		{
			name: "act-to-open-bank",
			feed: []dram.Command{
				cmd(10, dram.CmdACT, 0, 1),
				cmd(10+tm.RC, dram.CmdACT, 0, 2),
			},
			rule: "bank-state",
		},
		{
			name: "row-mismatch",
			feed: []dram.Command{
				cmd(10, dram.CmdACT, 0, 1),
				cmd(10+tm.RCD, dram.CmdRD, 0, 2),
			},
			rule: "row-match",
		},
		{
			name: "group-decode-mismatch",
			feed: []dram.Command{
				{Cycle: 10, Kind: dram.CmdACT, Bank: 0, Group: 3, Row: 1},
			},
			rule: "decode",
		},
		{
			name: "bank-out-of-range",
			feed: []dram.Command{
				{Cycle: 10, Kind: dram.CmdACT, Bank: int32(cfg.Banks()), Group: 0, Row: 1},
			},
			rule: "decode",
		},
		{
			name: "refsb-in-allbank-mode",
			feed: []dram.Command{cmd(10, dram.CmdREF, 0, 0)},
			rule: "refresh-mode",
		},
		{
			name:     "allbank-ref-in-sb-mode",
			sameBank: true,
			feed:     []dram.Command{cmd(10, dram.CmdREF, -1, 0)},
			rule:     "refresh-mode",
		},
		{
			name: "ref-with-open-bank",
			feed: []dram.Command{
				cmd(10, dram.CmdACT, 0, 1),
				cmd(10+tm.RAS, dram.CmdREF, -1, 0),
			},
			rule: "refresh-quiesce",
		},
		{
			name: "command-inside-trfc",
			feed: []dram.Command{
				cmd(10, dram.CmdREF, -1, 0),
				cmd(10+tm.RFC-1, dram.CmdACT, 0, 1),
			},
			rule: "tRFC",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			c.SameBankRefresh = tc.sameBank
			o := NewOracle(c, "synthetic")
			for _, f := range tc.feed {
				o.OnCommand(f)
			}
			found := false
			for _, v := range o.Violations() {
				if v.Rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Errorf("expected a %s violation, got %d violations: %v", tc.rule, o.ViolationCount(), o.Violations())
			}
		})
	}
}

// TestOracleViolationReportCarriesHistory checks that a violation report
// includes the recent command history needed to debug it.
func TestOracleViolationReportCarriesHistory(t *testing.T) {
	cfg := dram.DefaultConfig()
	o := NewOracle(cfg, "hist")
	for i := int64(0); i < 8; i++ {
		o.OnCommand(dram.Command{Cycle: 10 + i*cfg.Timing.RC, Kind: dram.CmdACT, Bank: int32(i), Group: int32(i) / int32(cfg.BanksPerGroup), Row: 5})
	}
	// Ninth command breaks tRCD against bank 7's ACT.
	last := 10 + 7*cfg.Timing.RC
	o.OnCommand(dram.Command{Cycle: last + 1, Kind: dram.CmdRD, Bank: 7, Group: 1, Row: 5})
	if o.ViolationCount() != 1 {
		t.Fatalf("want exactly 1 violation, got %d: %v", o.ViolationCount(), o.Violations())
	}
	v := o.Violations()[0]
	if v.Rule != "tRCD" {
		t.Errorf("rule = %q, want tRCD", v.Rule)
	}
	if len(v.History) != 9 {
		t.Errorf("history length = %d, want 9 (8 ACTs + the offending RD)", len(v.History))
	}
	if got := v.String(); len(got) == 0 {
		t.Error("violation formats to an empty string")
	}
}
