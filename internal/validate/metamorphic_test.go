// Metamorphic properties of the whole simulator, run through the public
// API: relations that must hold between runs with systematically varied
// inputs, regardless of the absolute numbers. They catch model-level bugs
// (a latency knob wired backwards, a CALM policy outperforming its oracle)
// that no single-run check can see.
//
// This lives in an external test package: internal/sim imports validate, so
// validate's own package cannot import the simulator.
package validate_test

import (
	"testing"

	"coaxial"
)

func metaRC() coaxial.RunConfig {
	rc := coaxial.DefaultRunConfig()
	rc.FunctionalWarmupInstr = 50_000
	rc.WarmupInstr = 2_000
	rc.MeasureInstr = 10_000
	rc.Seed = 1
	return rc
}

// TestMetamorphicSlowerLinkNoFasterLoads: raising the CXL port traversal
// latency (10 -> 50 -> 70 ns total premium) must never lower the mean
// L2-miss load latency, and the link share of the breakdown must grow.
func TestMetamorphicSlowerLinkNoFasterLoads(t *testing.T) {
	w, err := coaxial.WorkloadByName("stream-copy")
	if err != nil {
		t.Fatal(err)
	}
	rc := metaRC()
	var prev coaxial.Result
	for i, portNS := range []float64{2.5, 12.5, 17.5} {
		cfg := coaxial.Coaxial4x().WithCXLPortNS(portNS)
		res, err := coaxial.Run(cfg, w, rc)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if res.TotalNS < prev.TotalNS {
				t.Errorf("port %.1f ns: mean load latency %.1f ns dropped below %.1f ns at the faster link",
					portNS, res.TotalNS, prev.TotalNS)
			}
			if res.CXLNS <= prev.CXLNS {
				t.Errorf("port %.1f ns: CXL latency share %.1f ns did not grow (was %.1f ns)",
					portNS, res.CXLNS, prev.CXLNS)
			}
		}
		prev = res
	}
}

// TestMetamorphicIdealCALMDominatesMAPI: the oracle CALM policy (perfect
// LLC-outcome knowledge) must make no wrong decisions, and the realizable
// MAP-I predictor cannot be more accurate than it.
func TestMetamorphicIdealCALMDominatesMAPI(t *testing.T) {
	w, err := coaxial.WorkloadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rc := metaRC()
	run := func(kind coaxial.CALMConfig) coaxial.Result {
		t.Helper()
		res, err := coaxial.Run(coaxial.Coaxial4x().WithCALM(kind), w, rc)
		if err != nil {
			t.Fatal(err)
		}
		if res.CALM.L2Misses == 0 {
			t.Fatal("no L2 misses observed; workload too small for a CALM comparison")
		}
		return res
	}
	ideal := run(coaxial.CALMConfig{Kind: coaxial.CALMIdeal})
	mapi := run(coaxial.CALMConfig{Kind: coaxial.CALMMAPI})

	if fp, fn := ideal.CALM.FPRate(), ideal.CALM.FNRate(); fp != 0 || fn != 0 {
		t.Errorf("ideal CALM made wrong decisions: FP %.3f FN %.3f, want 0/0", fp, fn)
	}
	idealErr := ideal.CALM.FPRate() + ideal.CALM.FNRate()
	mapiErr := mapi.CALM.FPRate() + mapi.CALM.FNRate()
	if mapiErr < idealErr {
		t.Errorf("MAP-I (error %.3f) outperformed the ideal oracle (error %.3f)", mapiErr, idealErr)
	}
}

// TestMetamorphicMoreBanksNoMoreQueueing: at a fixed offered load, growing
// the per-sub-channel bank count (2 -> 8 bank groups) gives the scheduler
// strictly more parallelism to hide conflicts with, so the mean queue delay
// must not rise (small tolerance for scheduling noise).
func TestMetamorphicMoreBanksNoMoreQueueing(t *testing.T) {
	w, err := coaxial.WorkloadByName("stream-copy")
	if err != nil {
		t.Fatal(err)
	}
	rc := metaRC()
	run := func(groups int) coaxial.Result {
		t.Helper()
		cfg := coaxial.Baseline()
		cfg.DDR.BankGroups = groups
		cfg.Name = cfg.Name + "-banks"
		res, err := coaxial.Run(cfg, w, rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	few := run(2)  // 8 banks
	many := run(8) // 32 banks
	const eps = 0.02
	if many.QueueNS > few.QueueNS*(1+eps) {
		t.Errorf("32 banks queue %.1f ns exceeds 8 banks queue %.1f ns", many.QueueNS, few.QueueNS)
	}
}
