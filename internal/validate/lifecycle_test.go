package validate

import (
	"strings"
	"testing"

	"coaxial/internal/memreq"
)

// cleanRead builds a read with a consistent timestamp pipeline.
func cleanRead(addr uint64) *memreq.Request {
	return &memreq.Request{
		Addr:     addr,
		Kind:     memreq.Read,
		Issue:    10,
		ArriveMC: 30,
		StartSvc: 50,
		DataDone: 120,
	}
}

func hasError(l *Lifecycle, substr string) bool {
	for _, e := range l.Errors() {
		if strings.Contains(e, substr) {
			return true
		}
	}
	return false
}

func TestLifecycleCleanPath(t *testing.T) {
	l := NewLifecycle()
	r := cleanRead(0x1000)
	w := &memreq.Request{Addr: 0x2000, Kind: memreq.Write, Issue: 10}
	l.OnIssue(r, 10)
	l.OnIssue(w, 10)
	l.OnComplete(r, 140)
	l.OnComplete(w, 200)
	if l.ErrorCount() != 0 {
		t.Fatalf("clean path produced %d errors: %v", l.ErrorCount(), l.Errors())
	}
	ir, iw, cr := l.Counts()
	if ir != 1 || iw != 1 || cr != 1 {
		t.Errorf("counts = %d/%d/%d, want 1/1/1", ir, iw, cr)
	}
	if reads, nd := l.InFlight(); reads != 0 || nd != 0 {
		t.Errorf("in-flight after drain = %d/%d, want 0/0", reads, nd)
	}
}

func TestLifecycleDoubleIssue(t *testing.T) {
	l := NewLifecycle()
	r := cleanRead(0x40)
	l.OnIssue(r, 10)
	l.OnIssue(r, 11)
	if !hasError(l, "issued twice") {
		t.Errorf("double issue not flagged: %v", l.Errors())
	}

	w := &memreq.Request{Addr: 0x80, Kind: memreq.Write, Issue: 5}
	l.OnIssue(w, 5)
	l.OnIssue(w, 6)
	if !hasError(l, "write 0x80 issued twice") {
		t.Errorf("double write issue not flagged: %v", l.Errors())
	}
}

func TestLifecycleDoubleComplete(t *testing.T) {
	l := NewLifecycle()
	r := cleanRead(0x40)
	l.OnIssue(r, 10)
	l.OnComplete(r, 140)
	l.OnComplete(r, 141)
	if !hasError(l, "never issued (or completed twice)") {
		t.Errorf("double completion not flagged: %v", l.Errors())
	}
}

func TestLifecycleIssueBeforeStamp(t *testing.T) {
	l := NewLifecycle()
	r := cleanRead(0x40) // Issue stamp 10
	l.OnIssue(r, 9)
	if !hasError(l, "before its Issue stamp") {
		t.Errorf("early issue not flagged: %v", l.Errors())
	}
}

func TestLifecycleTimestampMonotonicity(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*memreq.Request)
		at     int64
		substr string
	}{
		{"arrive-before-issue", func(r *memreq.Request) { r.ArriveMC = 5 }, 140, "before issue"},
		{"negative-queue", func(r *memreq.Request) { r.StartSvc = 20 }, 140, "negative queue delay"},
		{"negative-service", func(r *memreq.Request) { r.DataDone = 40 }, 140, "negative service time"},
		{"complete-before-data", func(r *memreq.Request) {}, 100, "before its data burst finished"},
		{"negative-spill", func(r *memreq.Request) { r.Spill = -1 }, 140, "negative spill"},
		{"negative-cxl", func(r *memreq.Request) { r.CXLTime = -1 }, 140, "negative CXL time"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLifecycle()
			r := cleanRead(0x40)
			tc.mutate(r)
			l.OnIssue(r, r.Issue)
			l.OnComplete(r, tc.at)
			if !hasError(l, tc.substr) {
				t.Errorf("want error containing %q, got %v", tc.substr, l.Errors())
			}
		})
	}
}

func TestLifecycleBreakdownRegression(t *testing.T) {
	l := NewLifecycle()
	r := cleanRead(0x40)
	// Queue 20 + service 70 + spill 50 = 140 > total 130.
	r.Spill = 50
	l.OnIssue(r, 10)
	l.OnComplete(r, 140)
	if !hasError(l, "breakdown exceeds total latency") {
		t.Errorf("breakdown regression not flagged: %v", l.Errors())
	}
}

func TestLifecycleLeakDetection(t *testing.T) {
	l := NewLifecycle()
	r := cleanRead(0x40)
	l.OnIssue(r, 10)
	// Window ends; the memory system claims to hold nothing.
	l.CheckEnd(func(func(*memreq.Request)) {}, 0)
	if !hasError(l, "leaked") {
		t.Errorf("leaked read not flagged: %v", l.Errors())
	}
	if !hasError(l, "MSHR accounting mismatch") {
		t.Errorf("MSHR mismatch not flagged alongside the leak: %v", l.Errors())
	}
}

func TestLifecycleUntrackedAndDuplicatePresence(t *testing.T) {
	l := NewLifecycle()
	tracked := cleanRead(0x40)
	ghost := cleanRead(0x80)
	l.OnIssue(tracked, 10)
	l.CheckEnd(func(fn func(*memreq.Request)) {
		fn(tracked)
		fn(tracked) // same request in two queues
		fn(ghost)   // never issued
	}, 1)
	if !hasError(l, "present in two memory-system queues") {
		t.Errorf("duplicate presence not flagged: %v", l.Errors())
	}
	if !hasError(l, "untracked read") {
		t.Errorf("untracked read not flagged: %v", l.Errors())
	}
}

func TestLifecycleMSHRMismatch(t *testing.T) {
	l := NewLifecycle()
	a, b := cleanRead(0x40), cleanRead(0x80)
	l.OnIssue(a, 10)
	l.OnIssue(b, 10)
	l.CheckEnd(func(fn func(*memreq.Request)) { fn(a); fn(b) }, 1)
	if !hasError(l, "MSHR accounting mismatch") {
		t.Errorf("MSHR mismatch not flagged: %v", l.Errors())
	}
}

func TestLifecycleDiscardedReadsReleaseMSHR(t *testing.T) {
	l := NewLifecycle()
	a, b := cleanRead(0x40), cleanRead(0x80)
	b.Discard = true // CALM false positive: MSHR released early
	l.OnIssue(a, 10)
	l.OnIssue(b, 10)
	l.CheckEnd(func(fn func(*memreq.Request)) { fn(a); fn(b) }, 1)
	if l.ErrorCount() != 0 {
		t.Errorf("discarded read should not count toward MSHR holds: %v", l.Errors())
	}
}

func TestLifecycleWritesDrainSilently(t *testing.T) {
	l := NewLifecycle()
	w := &memreq.Request{Addr: 0x2000, Kind: memreq.Write, Issue: 10}
	l.OnIssue(w, 10)
	// A direct-DDR writeback retires at its write CAS without a callback:
	// absent from the walk, it must be pruned without an error.
	l.CheckEnd(func(func(*memreq.Request)) {}, 0)
	if l.ErrorCount() != 0 {
		t.Errorf("silently drained write flagged: %v", l.Errors())
	}
	// After pruning, a second reconciliation still holds.
	l.CheckEnd(func(func(*memreq.Request)) {}, 0)
	if l.ErrorCount() != 0 {
		t.Errorf("second reconciliation failed: %v", l.Errors())
	}
}

func TestLifecycleErrorCapStillCounts(t *testing.T) {
	l := NewLifecycle()
	for i := 0; i < maxLifecycleErrors+10; i++ {
		l.Failf("synthetic failure %d", i)
	}
	if l.ErrorCount() != maxLifecycleErrors+10 {
		t.Errorf("count = %d, want %d", l.ErrorCount(), maxLifecycleErrors+10)
	}
	if len(l.Errors()) != maxLifecycleErrors {
		t.Errorf("stored = %d, want cap %d", len(l.Errors()), maxLifecycleErrors)
	}
}
