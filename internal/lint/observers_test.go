package lint_test

import (
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/analysistest"
)

func TestObservers(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{
		lint.NewPurity(), // supplies write-free facts for Pending/peek
		lint.NewObservers(lint.ObserverConfig{
			Interfaces:    []string{"dram.CommandObserver"},
			HookTypes:     []string{"obsfix.hook"},
			StatePackages: []string{"dram"},
		}),
	}, "obsfix")
}
