package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"coaxial/internal/lint/analysis"
)

// NewDeterminism returns the analyzer enforcing the simulator's
// reproducibility substrate: no wall-clock reads, no global math/rand, and
// no order-sensitive iteration over maps. scope lists the package path
// prefixes the check applies to (nil: every analyzed package).
//
// A `range` over a map is accepted when its body is provably commutative —
// order-independent by construction — which covers the idioms the codebase
// actually uses:
//
//   - writes only to per-key targets (every assignment indexes by the loop
//     key, so iteration order cannot matter);
//   - pure integer reductions (+=, ++, |=, &=, ^= on integer types — all
//     associative and commutative; float accumulation is NOT accepted, its
//     rounding is order-dependent);
//   - guarded reductions (if statements whose conditions are call-free)
//     and min/max tracking (`if v > best { best = v }`);
//   - collecting keys into a slice that the same function later passes to
//     sort or slices (the canonical sorted-iteration idiom);
//   - delete(m, k) of the key being ranged.
//
// Anything else needs restructuring — or, where nondeterminism is genuinely
// benign, an explicit `//lint:deterministic <why>` annotation on the range
// statement's line (or the line above).
func NewDeterminism(scope []string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:       "determinism",
		Doc:        "forbids wall-clock reads, global math/rand, and order-sensitive map iteration in simulator packages",
		Directives: []string{"deterministic"},
	}
	a.Run = func(pass *analysis.Pass) error {
		if !pathPrefixes(pass.Pkg.Path(), scope) {
			return nil
		}
		for _, file := range pass.Files {
			runDeterminismFile(pass, file)
		}
		return nil
	}
	return a
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand[/v2] package-level functions that are
// fine to call: they build explicitly seeded generators rather than using
// the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runDeterminismFile(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkDeterministicCall(pass, x)
		case *ast.RangeStmt:
			checkMapRange(pass, file, x)
		}
		return true
	})
}

func checkDeterministicCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the host clock: simulated time must come from the cycle counter", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s uses the global process-wide RNG: draw from a seeded *rand.Rand (or the simulator's xorshift) instead",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags a range over a map unless its body is commutative.
func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	c := newCommuteChecker(pass, rs)
	if reason := c.check(); reason != "" {
		pass.Reportf(rs.Pos(),
			"map iteration order is nondeterministic and the loop body is not order-independent (%s); sort the keys, restructure, or annotate with //lint:deterministic <why>",
			reason)
		return
	}
	// Key-collection slices must actually be sorted afterwards.
	for obj, use := range c.needSort {
		if !sortedAfter(pass, file, rs, obj) {
			pass.Reportf(use,
				"keys collected from a map range into %q are never sorted in this function; iteration order leaks into the slice", obj.Name())
		}
	}
}

// commuteChecker decides whether a map-range body is order-independent.
type commuteChecker struct {
	pass *analysis.Pass
	rs   *ast.RangeStmt
	// loopVars holds the key/value objects (and nested loop variables).
	loopVars map[types.Object]bool
	// needSort maps key-collection slices to the position of their append.
	needSort map[types.Object]token.Pos
}

func newCommuteChecker(pass *analysis.Pass, rs *ast.RangeStmt) *commuteChecker {
	c := &commuteChecker{
		pass:     pass,
		rs:       rs,
		loopVars: map[types.Object]bool{},
		needSort: map[types.Object]token.Pos{},
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				c.loopVars[obj] = true
			}
		}
	}
	return c
}

// check returns "" when the body is commutative, else a short reason.
func (c *commuteChecker) check() string {
	for _, stmt := range c.rs.Body.List {
		if reason := c.stmtOK(stmt); reason != "" {
			return reason
		}
	}
	return ""
}

// stmtOK returns "" when stmt is order-independent.
func (c *commuteChecker) stmtOK(stmt ast.Stmt) string {
	info := c.pass.TypesInfo
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.IncDecStmt:
		if isIntegerType(info.TypeOf(s.X)) {
			return "" // integer ++/--: commutative reduction
		}
		return fmt.Sprintf("%s on non-integer type", s.Tok)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return "non-call expression statement"
		}
		if builtinName(info, call) == "delete" && len(call.Args) == 2 &&
			usesAny(info, call.Args[1], c.loopVars) {
			return "" // delete(m, k): per-key effect
		}
		return "call with order-dependent effects"
	case *ast.IfStmt:
		return c.ifOK(s)
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if reason := c.stmtOK(inner); reason != "" {
				return reason
			}
		}
		return ""
	case *ast.DeclStmt:
		return "" // local declaration
	case *ast.RangeStmt:
		return c.nestedRangeOK(s)
	case *ast.ForStmt:
		if s.Init != nil {
			if reason := c.stmtOK(s.Init); reason != "" {
				return reason
			}
		}
		if s.Post != nil {
			if reason := c.stmtOK(s.Post); reason != "" {
				return reason
			}
		}
		return c.stmtOK(s.Body)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return "early exit makes the result depend on iteration order"
	default:
		return "statement form the analyzer cannot prove order-independent"
	}
}

// assignOK classifies one assignment inside the loop body.
func (c *commuteChecker) assignOK(s *ast.AssignStmt) string {
	info := c.pass.TypesInfo
	switch s.Tok {
	case token.DEFINE:
		// New locals; note them so per-key indexing through them counts.
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil && usesAnyRHS(info, s.Rhs, c.loopVars) {
					c.loopVars[obj] = true
				}
			}
		}
		return ""
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, lhs := range s.Lhs {
			if !isIntegerType(info.TypeOf(lhs)) {
				return fmt.Sprintf("%s reduction on non-integer type (rounding is order-dependent)", s.Tok)
			}
		}
		return ""
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if reason := c.plainAssignOK(lhs, s, i); reason != "" {
				return reason
			}
		}
		return ""
	default:
		return fmt.Sprintf("%s assignment", s.Tok)
	}
}

// plainAssignOK judges one `=` target.
func (c *commuteChecker) plainAssignOK(lhs ast.Expr, s *ast.AssignStmt, i int) string {
	info := c.pass.TypesInfo
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return ""
		}
		obj := objOf(info, id)
		if declaredWithin(obj, c.rs.Body) {
			return "" // loop-local temporary
		}
		// keys = append(keys, k): the collect-then-sort idiom; record the
		// slice so the caller can verify the sort exists.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok && builtinName(info, call) == "append" {
				if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && objOf(info, base) == obj {
					argsOK := true
					for _, arg := range call.Args[1:] {
						if !usesOnly(info, arg, c.loopVars) {
							argsOK = false
						}
					}
					if argsOK {
						c.needSort[obj] = s.Pos()
						return ""
					}
				}
			}
		}
		return fmt.Sprintf("last-writer-wins assignment to %q", id.Name)
	}
	if indexedByLoopVar(info, lhs, c.loopVars) {
		return "" // per-key target: m2[k] = ...
	}
	return "assignment to a target not indexed by the loop key"
}

// ifOK accepts guarded commutative bodies and min/max tracking.
func (c *commuteChecker) ifOK(s *ast.IfStmt) string {
	info := c.pass.TypesInfo
	if s.Init != nil {
		if reason := c.stmtOK(s.Init); reason != "" {
			return reason
		}
	}
	if hasCalls(info, s.Cond) {
		return "if condition calls a function (effects may be order-dependent)"
	}
	// Min/max tracking: `if a OP b { b = a }` with a comparison operator.
	if bin, ok := s.Cond.(*ast.BinaryExpr); ok && len(s.Body.List) == 1 && s.Else == nil {
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if asg, ok := s.Body.List[0].(*ast.AssignStmt); ok && asg.Tok == token.ASSIGN &&
				len(asg.Lhs) == 1 && len(asg.Rhs) == 1 {
				if (sameExpr(asg.Lhs[0], bin.X) && sameExpr(asg.Rhs[0], bin.Y)) ||
					(sameExpr(asg.Lhs[0], bin.Y) && sameExpr(asg.Rhs[0], bin.X)) {
					return ""
				}
			}
		}
	}
	for _, inner := range s.Body.List {
		if reason := c.stmtOK(inner); reason != "" {
			return reason
		}
	}
	switch e := s.Else.(type) {
	case nil:
		return ""
	case *ast.BlockStmt:
		for _, inner := range e.List {
			if reason := c.stmtOK(inner); reason != "" {
				return reason
			}
		}
		return ""
	case *ast.IfStmt:
		return c.ifOK(e)
	default:
		return "else branch the analyzer cannot prove order-independent"
	}
}

// nestedRangeOK handles loops nested inside the map range.
func (c *commuteChecker) nestedRangeOK(s *ast.RangeStmt) string {
	t := c.pass.TypesInfo.TypeOf(s.X)
	if t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			return "nested map range"
		}
	}
	// The nested loop's variables act like per-key values.
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.loopVars[obj] = true
			}
		}
	}
	for _, inner := range s.Body.List {
		if reason := c.stmtOK(inner); reason != "" {
			return reason
		}
	}
	return ""
}

// --- small predicates -----------------------------------------------------

func isIntegerType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// indexedByLoopVar reports whether the expression path contains an index
// whose expression mentions a loop variable (per-key addressing).
func indexedByLoopVar(info *types.Info, e ast.Expr, loopVars map[types.Object]bool) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if usesAny(info, x.Index, loopVars) {
				return true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// hasCalls reports whether expr contains any non-builtin call.
func hasCalls(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			switch builtinName(info, call) {
			case "len", "cap", "min", "max":
			default:
				found = true
			}
		}
		return !found
	})
	return found
}

// usesAnyRHS reports whether any RHS expression mentions a tracked object.
func usesAnyRHS(info *types.Info, rhs []ast.Expr, objs map[types.Object]bool) bool {
	for _, e := range rhs {
		if usesAny(info, e, objs) {
			return true
		}
	}
	return false
}

// usesOnly reports whether every identifier in expr that refers to a
// variable refers to a tracked loop variable (constants and functions are
// fine).
func usesOnly(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	ok := true
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, isIdent := n.(*ast.Ident); isIdent {
			if v, isVar := objOf(info, id).(*types.Var); isVar && !objs[v] {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// sameExpr compares two expressions structurally for the min/max idiom
// (identifiers and selector chains only).
func sameExpr(a, b ast.Expr) bool {
	switch x := ast.Unparen(a).(type) {
	case *ast.Ident:
		y, ok := ast.Unparen(b).(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement within the same function.
func sortedAfter(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	body := findEnclosingFuncBody(file, rs.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return !found
		}
		fn := calleeOf(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return !found
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return !found
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && objOf(pass.TypesInfo, id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
