package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"coaxial/internal/lint/analysis"
)

// writeFreeFact is the fact key under which the purity pass records, for
// every function and method in a module package, whether its body provably
// writes nothing: no assignment, increment, send, or mutating builtin
// whose target is anything but a plain local identifier, and no call to a
// function that is not itself write-free. Later analyzers (phaseiso,
// observers) use the fact to allow calls like (*memreq.Request).QueueDelay
// from contexts where mutation is forbidden.
//
// Calls outside the module (the standard library) are assumed write-free:
// observers and phase workers have no business handing simulator state to
// the stdlib for mutation, and flagging fmt.Sprintf would drown the signal.
const writeFreeFact = "writeFree"

// NewPurity returns the facts-only pass computing writeFree for every
// function in the analyzed package. It must run before any analyzer that
// consumes the fact (the suite lists it first).
func NewPurity() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name:      "purity",
		Doc:       "computes write-free facts consumed by phaseiso and observers",
		FactsOnly: true,
	}
	a.Run = runPurity
	return a
}

func runPurity(pass *analysis.Pass) error {
	// Gather this package's function bodies.
	type fnInfo struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var fns []fnInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fnInfo{decl: fd, obj: obj})
		}
	}

	// Optimistic fixpoint: assume every package-local function write-free,
	// re-evaluate until nothing more is demoted. This converges (demotions
	// are monotone) and handles recursion and any declaration order.
	assumed := map[*types.Func]bool{}
	for _, fn := range fns {
		assumed[fn.obj] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if !assumed[fn.obj] {
				continue
			}
			if !bodyWriteFree(pass, fn.decl, assumed) {
				assumed[fn.obj] = false
				changed = true
			}
		}
	}
	for _, fn := range fns {
		pass.Facts.Set(fn.obj, writeFreeFact, assumed[fn.obj])
	}
	return nil
}

// bodyWriteFree evaluates one function body under the current same-package
// assumptions.
func bodyWriteFree(pass *analysis.Pass, fd *ast.FuncDecl, assumed map[*types.Func]bool) bool {
	info := pass.TypesInfo
	pure := true
	fail := func() { pure = false }

	// localPlainIdent reports whether e is a bare identifier bound inside
	// this function (parameters and results included) — the only write
	// target a write-free function may have.
	localPlainIdent := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		if id.Name == "_" {
			return true
		}
		return declaredWithin(objOf(info, id), fd)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !pure {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if !localPlainIdent(lhs) {
					fail()
				}
			}
		case *ast.IncDecStmt:
			if !localPlainIdent(x.X) {
				fail()
			}
		case *ast.SendStmt:
			fail()
		case *ast.GoStmt:
			fail()
		case *ast.RangeStmt:
			if x.Tok == token.ASSIGN {
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if e != nil && !localPlainIdent(e) {
						fail()
					}
				}
			}
		case *ast.CallExpr:
			switch builtinName(info, x) {
			case "len", "cap", "min", "max", "new", "make", "append",
				"real", "imag", "complex", "panic", "recover":
				return true
			case "":
				// Not a builtin; resolved below.
			default:
				// copy, delete, clear, print, println: mutating or
				// observable.
				fail()
				return false
			}
			callee := calleeOf(info, x)
			if callee == nil {
				// Dynamic call: unknowable, assume the worst. Conversions
				// land here too — filter them out first.
				if _, isConv := info.Types[x.Fun]; isConv && info.Types[x.Fun].IsType() {
					return true
				}
				fail()
				return false
			}
			if !pass.InModule(callee.Pkg()) {
				return true // stdlib assumed write-free (see package doc)
			}
			if ok, known := assumed[callee]; known {
				if !ok {
					fail()
				}
				return true
			}
			if !pass.Facts.Bool(callee, writeFreeFact) {
				fail()
			}
		}
		return pure
	})
	return pure
}
