// Package loader turns `go list` package patterns into type-checked
// packages for the coaxlint analyzers without depending on
// golang.org/x/tools: module packages are parsed and type-checked from
// source in dependency order (so analyzers can attach facts to their
// objects and find them again from importing packages), while standard
// library dependencies are imported from the toolchain's export data — the
// same data the compiler uses — which needs no network and no source
// type-checking.
package loader

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	// Target reports whether the package matched the load patterns itself
	// (false: pulled in only as a dependency).
	Target bool
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
	// TypeErrors collects type-checker complaints; the package is still
	// returned with as much type information as could be computed.
	TypeErrors []error
}

// Program is the result of one Load.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	// Packages holds the module packages in dependency order (imports
	// before importers).
	Packages []*Package
}

// PackageError is one package that failed to load or build. Pos, when
// go list (or the parser) could pin the failure to a file, is a
// file:line:column string; ImportPath is always set.
type PackageError struct {
	ImportPath string
	Pos        string
	Err        string
}

func (e *PackageError) Error() string {
	if e.Pos != "" {
		return fmt.Sprintf("%s: %s: %s", e.ImportPath, e.Pos, e.Err)
	}
	return fmt.Sprintf("%s: %s", e.ImportPath, e.Err)
}

// listError mirrors go list's JSON PackageError.
type listError struct {
	ImportPath string
	Pos        string
	Err        string
}

// asPackageError converts a go list error for pkg, preferring the error's
// own import path (go list attributes dependency failures to the dep).
// Build errors arrive with an empty Pos and compiler-style positions
// embedded in the message, so the first one is lifted out.
func (le *listError) asPackageError(pkg string) *PackageError {
	path := le.ImportPath
	if path == "" {
		path = pkg
	}
	pos, msg := le.Pos, le.Err
	if pos == "" {
		pos, msg = splitPos(msg, path)
	}
	return &PackageError{ImportPath: path, Pos: pos, Err: msg}
}

// splitPos lifts a leading file:line[:col] position out of a
// compiler-style message ("# pkg\nfile.go:3:25: msg\n\thave ()..."),
// dropping the "# pkg" header. Messages with no such position come back
// unchanged.
func splitPos(msg, pkg string) (string, string) {
	msg = strings.TrimPrefix(msg, "# "+pkg+"\n")
	lines := strings.Split(msg, "\n")
	for k, line := range lines {
		trimmed := strings.TrimSpace(line)
		i := strings.Index(trimmed, ".go:")
		if i < 0 {
			continue
		}
		rest := trimmed[i+len(".go:"):]
		j := strings.Index(rest, ": ")
		if j < 0 || !numericPos(rest[:j]) {
			continue
		}
		pos := trimmed[:i+len(".go:")+j]
		lines[k] = strings.TrimSpace(rest[j+2:])
		return pos, strings.Join(lines, "\n")
	}
	return "", msg
}

// numericPos reports whether s looks like "3" or "3:25".
func numericPos(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && r != ':' {
			return false
		}
	}
	return true
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Incomplete bool
	Error      *listError
	DepsErrors []*listError
}

// Load lists patterns in dir (a directory inside the module) and
// type-checks every module package in the dependency closure.
func Load(dir string, patterns ...string) (*Program, error) {
	return LoadOverlay(dir, nil, patterns...)
}

// LoadOverlay is Load with file substitution: files whose absolute path
// appears in overlay are parsed from the given contents instead of disk.
// The package set and build metadata still come from `go list` over the
// on-disk tree, so an overlay can change file contents (the mutation suite
// plants dimension bugs this way) but not add or remove files. Overlay
// contents may add imports freely as long as the imported packages are
// already in the dependency closure of the listed patterns.
func LoadOverlay(dir string, overlay map[string][]byte, patterns ...string) (*Program, error) {
	modulePath, err := goOutput(dir, "list", "-m", "-f", "{{.Path}}")
	if err != nil {
		return nil, fmt.Errorf("loader: resolving module: %w", err)
	}
	modulePath = strings.TrimSpace(modulePath)

	// -e keeps go list alive across broken packages so every failure in
	// the pattern set is reported below, each with its package path and
	// (when known) file position — not just the first.
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	out, err := goOutput(dir, args...)
	if err != nil {
		return nil, fmt.Errorf("loader: go list: %w", err)
	}

	var listed []*listPackage
	dec := json.NewDecoder(strings.NewReader(out))
	for {
		lp := &listPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}

	prog := &Program{Fset: token.NewFileSet(), ModulePath: modulePath}
	exports := map[string]string{} // import path -> export data file
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	gcImporter := importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	inModule := func(path string) bool {
		return path == modulePath || strings.HasPrefix(path, modulePath+"/")
	}
	srcPkgs := map[string]*Package{}

	// `go list -deps` emits dependencies before their importers, so a
	// single pass type-checks each module package after everything it
	// imports. Broken packages are collected — not bailed on — so one run
	// surfaces every failing package with its own path and position.
	var loadErrs []error
	seenErr := map[string]bool{}
	addErr := func(pe *PackageError) {
		key := pe.ImportPath + "\x00" + pe.Pos + "\x00" + pe.Err
		if !seenErr[key] {
			seenErr[key] = true
			loadErrs = append(loadErrs, pe)
		}
	}
	for _, lp := range listed {
		if !inModule(lp.ImportPath) {
			if lp.Error != nil {
				addErr(lp.Error.asPackageError(lp.ImportPath))
			}
			continue
		}
		if lp.Error != nil {
			addErr(lp.Error.asPackageError(lp.ImportPath))
			continue
		}
		for _, de := range lp.DepsErrors {
			addErr(de.asPackageError(lp.ImportPath))
		}
		pkg, err := typeCheck(prog, lp, srcPkgs, gcImporter, overlay)
		if err != nil {
			var pe *PackageError
			if errors.As(err, &pe) {
				addErr(pe)
			} else {
				return nil, err
			}
			continue
		}
		srcPkgs[lp.ImportPath] = pkg
		prog.Packages = append(prog.Packages, pkg)
	}
	if len(loadErrs) > 0 {
		return nil, fmt.Errorf("loader: %w", errors.Join(loadErrs...))
	}
	return prog, nil
}

// typeCheck parses and checks one module package from source.
func typeCheck(prog *Program, lp *listPackage, srcPkgs map[string]*Package,
	gcImporter types.Importer, overlay map[string][]byte) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		var src any
		if content, ok := overlay[path]; ok {
			src = content
		}
		f, err := parser.ParseFile(prog.Fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, parseError(lp.ImportPath, err)
		}
		files = append(files, f)
	}

	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Target:     !lp.DepOnly,
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}

	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if p, ok := srcPkgs[path]; ok {
			return p.Types, nil
		}
		return gcImporter.Import(path)
	})
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(lp.ImportPath, prog.Fset, files, pkg.Info)
	return pkg, nil
}

// parseError shapes a parser failure into a *PackageError carrying the
// first syntax error's file position.
func parseError(importPath string, err error) *PackageError {
	var el scanner.ErrorList
	if errors.As(err, &el) && len(el) > 0 {
		msg := el[0].Msg
		if len(el) > 1 {
			msg = fmt.Sprintf("%s (and %d more syntax errors)", msg, len(el)-1)
		}
		return &PackageError{ImportPath: importPath, Pos: el[0].Pos.String(), Err: msg}
	}
	return &PackageError{ImportPath: importPath, Err: err.Error()}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// goOutput runs the go command in dir and returns its stdout.
func goOutput(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return string(out), nil
}
