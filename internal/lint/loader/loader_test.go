package loader

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway module for load-error tests.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadReportsPerPackageErrors plants failures in two packages of one
// module and demands the loader name each broken package with a file
// position, rather than dying on the first with a bare module-level error.
func TestLoadReportsPerPackageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := writeTree(t, map[string]string{
		"go.mod": "module brokenmod\n\ngo 1.21\n",
		"ok/ok.go": `package ok

func Fine() int { return 1 }
`,
		"syntaxbad/bad.go": `package syntaxbad

func Broken( {
`,
		"otherbad/other.go": `package otherbad

func AlsoBroken() int { return }
`,
	})

	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("want load error for module with broken packages, got nil")
	}
	msg := err.Error()
	for _, want := range []string{"brokenmod/syntaxbad", "brokenmod/otherbad", "bad.go:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("load error missing %q:\n%s", want, msg)
		}
	}
	var pe *PackageError
	if !errors.As(err, &pe) {
		t.Errorf("load error does not unwrap to *PackageError: %v", err)
	} else if pe.Pos == "" {
		t.Errorf("first PackageError has no position: %+v", pe)
	}
}

// TestLoadOverlayParseError breaks a good on-disk file via the overlay:
// go list still sees a healthy tree, so the parse failure must be shaped
// into a positioned per-package error by the loader itself.
func TestLoadOverlayParseError(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := writeTree(t, map[string]string{
		"go.mod": "module overlaymod\n\ngo 1.21\n",
		"p/p.go": `package p

func Fine() int { return 1 }
`,
	})

	overlay := map[string][]byte{
		filepath.Join(dir, "p", "p.go"): []byte("package p\n\nfunc Broken( {\n"),
	}
	_, err := LoadOverlay(dir, overlay, "./...")
	if err == nil {
		t.Fatal("want load error for overlay with syntax error, got nil")
	}
	var pe *PackageError
	if !errors.As(err, &pe) {
		t.Fatalf("load error does not unwrap to *PackageError: %v", err)
	}
	if pe.ImportPath != "overlaymod/p" {
		t.Errorf("PackageError.ImportPath = %q, want overlaymod/p", pe.ImportPath)
	}
	if !strings.Contains(pe.Pos, "p.go:") {
		t.Errorf("PackageError.Pos = %q, want a p.go position", pe.Pos)
	}
}

// TestLoadHealthyModule guards the non-error path: a clean module loads
// with its packages in dependency order and no error.
func TestLoadHealthyModule(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	dir := writeTree(t, map[string]string{
		"go.mod": "module cleanmod\n\ngo 1.21\n",
		"a/a.go": `package a

const N = 3
`,
		"b/b.go": `package b

import "cleanmod/a"

func M() int { return a.N * 2 }
`,
	})

	prog, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("load clean module: %v", err)
	}
	var paths []string
	for _, p := range prog.Packages {
		paths = append(paths, p.ImportPath)
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: unexpected type errors: %v", p.ImportPath, p.TypeErrors)
		}
	}
	got := strings.Join(paths, ",")
	if got != "cleanmod/a,cleanmod/b" {
		t.Errorf("packages = %s, want cleanmod/a,cleanmod/b (deps before importers)", got)
	}
}
