package lint_test

import (
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/analysistest"
)

func TestPhaseIsolation(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{
		lint.NewPurity(), // supplies the write-free facts `limit` relies on
		lint.NewPhaseIsolation(nil, []string{"pool.Pool.Run"}),
	}, "phasefix")
}
