package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"coaxial/internal/lint/analysis"
)

// CounterConfig parameterizes the counter-hygiene analyzer.
type CounterConfig struct {
	// CounterTypes lists the stat-accumulator struct types as
	// "pkgpath.TypeName" (e.g. "coaxial/internal/dram.Counters"). Their
	// fields — and whole values of these types — may only be mutated by
	// accumulation (+=, ++, |=) or by the type's own methods; a plain `=`
	// anywhere else is a mid-window reset that silently corrupts measured
	// statistics.
	CounterTypes []string
	// ResultType names the aggregated result struct ("pkgpath.TypeName",
	// e.g. "coaxial/internal/sim.Result") whose every field must reach the
	// golden-corpus encoder: unexported fields and `json:"-"` /
	// `,omitempty` tags would silently drop a metric from drift detection.
	ResultType string
	// ExemptPrefixes are case-insensitive function-name prefixes allowed
	// to assign counters directly (constructors and sanctioned resets).
	// Nil defaults to reset/new/init/clear.
	ExemptPrefixes []string
}

// NewCounters returns the counter-hygiene analyzer.
func NewCounters(cfg CounterConfig) *analysis.Analyzer {
	if cfg.ExemptPrefixes == nil {
		cfg.ExemptPrefixes = []string{"reset", "new", "init", "clear"}
	}
	counterSet := map[string]bool{}
	for _, t := range cfg.CounterTypes {
		counterSet[t] = true
	}
	a := &analysis.Analyzer{
		Name: "counters",
		Doc:  "stat counters accumulate (+=/methods) and reset only in Reset/New functions; result fields must stay visible to the golden corpus encoder",
	}
	a.Run = func(pass *analysis.Pass) error {
		runCounterMutations(pass, counterSet, cfg.ExemptPrefixes)
		runResultCoverage(pass, cfg.ResultType)
		return nil
	}
	return a
}

// typeQName renders a (possibly pointer) named type as "pkgpath.Name".
func typeQName(t types.Type) string {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// runCounterMutations flags non-accumulating writes to counter types.
func runCounterMutations(pass *analysis.Pass, counterSet map[string]bool, exempt []string) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if funcExemptFromCounterRules(info, fd, counterSet, exempt) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					checkCounterAssign(pass, fd, x, counterSet)
				case *ast.IncDecStmt:
					if x.Tok == token.DEC && counterTarget(info, x.X, counterSet) != "" {
						pass.Reportf(x.Pos(),
							"counter %s decremented: stat counters only accumulate", counterTarget(info, x.X, counterSet))
					}
				}
				return true
			})
		}
	}
}

// funcExemptFromCounterRules: methods of a counter type implement it, and
// constructors/resets legitimately zero state.
func funcExemptFromCounterRules(info *types.Info, fd *ast.FuncDecl, counterSet map[string]bool, exempt []string) bool {
	name := strings.ToLower(fd.Name.Name)
	for _, p := range exempt {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				if counterSet[typeQName(recv.Type())] {
					return true
				}
			}
		}
	}
	return false
}

// counterTarget returns the counter type a write expression touches
// ("pkg.Type" or "pkg.Type.Field"), or "".
func counterTarget(info *types.Info, lhs ast.Expr, counterSet map[string]bool) string {
	lhs = ast.Unparen(lhs)
	// Whole-value (or through-pointer) assignment to a counter type.
	if q := typeQName(info.TypeOf(lhs)); counterSet[q] {
		return q
	}
	// Field of a counter struct.
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if q := typeQName(info.TypeOf(sel.X)); counterSet[q] {
			return q + "." + sel.Sel.Name
		}
	}
	return ""
}

// checkCounterAssign flags `=` (and non-additive compound) assignments to
// counter state reachable from outside a local snapshot.
func checkCounterAssign(pass *analysis.Pass, fd *ast.FuncDecl, s *ast.AssignStmt, counterSet map[string]bool) {
	info := pass.TypesInfo
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.DEFINE:
		return // accumulation, or a fresh local
	}
	for _, lhs := range s.Lhs {
		target := counterTarget(info, lhs, counterSet)
		if target == "" {
			continue
		}
		// Assembling a snapshot in a function-local value (e.g. collect()
		// summing per-backend counters into a local) is fine: the local is
		// not live measurement state. Pointer-typed roots are not exempt —
		// a local alias still reaches shared state.
		if id := rootIdent(lhs); id != nil {
			if obj := objOf(info, id); declaredWithin(obj, fd) {
				if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
					continue
				}
			}
		}
		what := "reset/reassigned"
		if s.Tok != token.ASSIGN {
			what = fmt.Sprintf("mutated with %s", s.Tok)
		}
		pass.Reportf(lhs.Pos(),
			"counter %s %s outside a Reset/New function: stat counters only accumulate mid-window (+= or the counter's own methods)",
			target, what)
	}
}

// runResultCoverage checks, in the package declaring ResultType, that every
// field (recursively through module-declared struct fields) is visible to
// the golden corpus's JSON encoder.
func runResultCoverage(pass *analysis.Pass, resultType string) {
	if resultType == "" {
		return
	}
	dot := strings.LastIndex(resultType, ".")
	if dot < 0 || resultType[:dot] != pass.Pkg.Path() {
		return
	}
	obj := pass.Pkg.Scope().Lookup(resultType[dot+1:])
	if obj == nil {
		return
	}
	named, ok := types.Unalias(obj.Type()).(*types.Named)
	if !ok {
		return
	}
	seen := map[*types.Named]bool{}
	checkEncoderVisibility(pass, named, obj.Pos(), resultType[dot+1:], seen)
}

func checkEncoderVisibility(pass *analysis.Pass, named *types.Named, pos token.Pos, path string, seen map[*types.Named]bool) {
	if seen[named] {
		return
	}
	seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fieldPath := path + "." + f.Name()
		fpos := f.Pos()
		if f.Pkg() != pass.Pkg {
			fpos = pos // report nested foreign fields at the embedding site
		}
		if !f.Exported() {
			pass.Reportf(fpos,
				"%s is unexported: the golden corpus encoder (encoding/json) cannot see it, so drift in this metric goes undetected", fieldPath)
			continue
		}
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		if tag == "-" {
			pass.Reportf(fpos, "%s is tagged json:\"-\": it is hidden from the golden corpus encoder", fieldPath)
			continue
		}
		if strings.Contains(tag, ",omitempty") {
			pass.Reportf(fpos,
				"%s is tagged omitempty: a zero value vanishes from the golden corpus, so drift to zero goes undetected", fieldPath)
			continue
		}
		if sub := namedOf(f.Type()); sub != nil && pass.InModule(sub.Obj().Pkg()) {
			checkEncoderVisibility(pass, sub, fpos, fieldPath, seen)
		}
	}
}
