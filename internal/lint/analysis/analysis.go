// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer / Pass /
// Diagnostic structure for the coaxlint suite to be written in the standard
// shape (and ported to the real framework wholesale if x/tools ever becomes
// a dependency). It adds the two pieces coaxlint needs that the stdlib does
// not provide: line-anchored //lint: suppression directives with mandatory
// justifications, and a cross-package object fact store filled in
// dependency order by the driver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, baselines, and
	// //lint:ignore directives.
	Name string
	// Doc is the one-paragraph description shown by the driver's -help.
	Doc string
	// Directives lists extra suppression directive names honoured for this
	// analyzer beside the generic "ignore" form; e.g. the determinism
	// analyzer accepts //lint:deterministic <why>.
	Directives []string
	// Annotations lists directive names the analyzer reads as declarations
	// rather than suppressions (e.g. unitcheck's //lint:unit <dim>). They
	// never silence a diagnostic; listing them here only tells the
	// directive validator the name is legitimate.
	Annotations []string
	// FactsOnly marks analyzers that never report: they only compute facts
	// consumed by later analyzers (the driver still runs them everywhere).
	FactsOnly bool
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Diagnostic is one reported finding, position-resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fix, when non-nil, is a machine-applicable resolution the -fix
	// driver can apply (ApplyFixes). Fixes ride along through -json.
	Fix *SuggestedFix
}

// String formats the diagnostic the way gc and go vet do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// ModulePath is the import-path prefix of packages whose source the
	// driver loaded (facts exist only for those); empty means every
	// analyzed package is module-local (the fixture loader).
	ModulePath string
	// Facts is shared across all passes of a run; the driver processes
	// packages in dependency order, so facts for imports are already
	// present when a package is analyzed.
	Facts *FactStore
	// FactsPartial marks runs that could not compute facts for the whole
	// module (go vet hands the tool one package at a time, with imports as
	// export data only). Fact-consuming analyzers then give
	// out-of-package functions the benefit of the doubt instead of
	// flagging every unknown call.
	FactsPartial bool

	report     func(Diagnostic)
	directives map[string][]directive // filename -> directives, line-keyed
}

// NewPass assembles a pass; report receives every non-suppressed
// diagnostic.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, modulePath string, facts *FactStore, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
		ModulePath: modulePath, Facts: facts, report: report,
		directives: map[string][]directive{},
	}
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		p.directives[fname] = collectDirectives(fset, f)
	}
	return p
}

// directive is one parsed //lint:<name> <args...> comment.
type directive struct {
	line       int
	standalone bool // on a line of its own (not trailing code)
	name       string
	args       string // remainder after the name, space-trimmed
}

// ParseDirective parses one comment's text as a //lint: directive. ok is
// false when the comment is not a lint directive at all (ordinary comment,
// or a different marker). When it is one, the name must be a non-empty run
// of lowercase letters terminated by end-of-comment or a space; anything
// else — `//lint:`, `//lint: ignore` (space before the name), `//lint:Unit`
// — returns a non-nil error so drivers can diagnose the malformed marker
// instead of silently treating it as prose.
func ParseDirective(text string) (name, args string, ok bool, err error) {
	rest, isDirective := strings.CutPrefix(text, "//lint:")
	if !isDirective {
		return "", "", false, nil
	}
	i := 0
	for i < len(rest) && rest[i] >= 'a' && rest[i] <= 'z' {
		i++
	}
	name = rest[:i]
	if name == "" {
		return "", "", true, fmt.Errorf("malformed //lint: directive: missing name")
	}
	if i < len(rest) && rest[i] != ' ' {
		return name, "", true, fmt.Errorf("malformed //lint: directive: name must be lowercase letters followed by a space, got %q", rest)
	}
	return name, strings.TrimSpace(rest[i:]), true, nil
}

// codeLines records which lines of a file hold code (non-comment nodes), so
// a directive can be classified as trailing code or standalone.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		if n.Pos().IsValid() {
			lines[fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	return lines
}

// collectDirectives scans a file's comments for well-formed //lint:
// markers. A directive trailing code covers that line; a standalone
// directive covers the line below it. Malformed directives are dropped
// here; CheckDirectives reports them.
func collectDirectives(fset *token.FileSet, f *ast.File) []directive {
	code := codeLines(fset, f)
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, args, ok, err := ParseDirective(c.Text)
			if !ok || err != nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			out = append(out, directive{
				line:       line,
				standalone: !code[line],
				name:       name,
				args:       args,
			})
		}
	}
	return out
}

// CheckDirectives validates every //lint: comment in the files: a parse
// error, an unknown directive name, or an ignore directive that names no
// known analyzer each produce a diagnostic (analyzer "directive"). known
// holds the legitimate directive names ("ignore" plus every analyzer's
// Directives and Annotations); analyzers holds the valid //lint:ignore
// targets. Malformed markers must never be silently accepted — a typo in a
// suppression would otherwise reintroduce the finding it meant to justify.
func CheckDirectives(fset *token.FileSet, files []*ast.File, known, analyzers map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "directive",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok, err := ParseDirective(c.Text)
				if !ok {
					continue
				}
				if err != nil {
					report(c.Pos(), "%v", err)
					continue
				}
				if !known[name] {
					report(c.Pos(), "unknown directive //lint:%s", name)
					continue
				}
				if name == "ignore" {
					target, _, _ := strings.Cut(args, " ")
					if !analyzers[target] {
						report(c.Pos(), "//lint:ignore must name an analyzer (got %q)", target)
					}
				}
			}
		}
	}
	return out
}

// InModule reports whether pkg belongs to the analyzed module (and was
// therefore source-loaded, so facts exist for its objects).
func (p *Pass) InModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == p.ModulePath || p.ModulePath == "" ||
		strings.HasPrefix(path, p.ModulePath+"/")
}

// DirectiveOn returns the arguments of a //lint:<name> directive covering
// pos's line — trailing the code on that line, or standalone on the line
// directly above — if one exists. Annotation-style directives (such as
// //lint:unit) are read through this; they do not suppress anything.
func (p *Pass) DirectiveOn(pos token.Pos, name string) (args string, ok bool) {
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename] {
		if d.name != name {
			continue
		}
		if d.line == position.Line || (d.standalone && d.line == position.Line-1) {
			return d.args, true
		}
	}
	return "", false
}

// Reportf reports a diagnostic at pos unless a suppression directive covers
// that line. A directive suppresses when it sits on the diagnostic's line
// (trailing the code) or standalone on the line directly above, names this
// analyzer (//lint:ignore <name> or one of the analyzer's dedicated
// directives), and carries a non-empty justification; a matching directive
// without a justification is itself reported, keeping annotations honest.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportWithFix(pos, nil, format, args...)
}

// ReportWithFix is Reportf carrying a suggested fix; the same suppression
// directives apply (a suppressed diagnostic's fix is never offered).
func (p *Pass) ReportWithFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	position := p.Fset.Position(pos)
	for _, d := range p.directives[position.Filename] {
		if d.line != position.Line && !(d.standalone && d.line == position.Line-1) {
			continue
		}
		matched := false
		if d.name == "ignore" {
			rest, ok := strings.CutPrefix(d.args+" ", p.Analyzer.Name+" ")
			if ok {
				matched = true
				d.args = strings.TrimSpace(rest)
			}
		}
		for _, dd := range p.Analyzer.Directives {
			if d.name == dd {
				matched = true
			}
		}
		if !matched {
			continue
		}
		if d.args == "" {
			p.report(Diagnostic{
				Pos:      position,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf("suppression directive //lint:%s needs a justification", d.name),
			})
		}
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// FactStore holds per-object facts shared across a run. Keys are
// types.Object identities, which the loader keeps stable by type-checking
// every module package exactly once against shared dependency packages.
type FactStore struct {
	m map[types.Object]map[string]any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: map[types.Object]map[string]any{}} }

// Set records a fact about obj under key.
func (s *FactStore) Set(obj types.Object, key string, v any) {
	facts, ok := s.m[obj]
	if !ok {
		facts = map[string]any{}
		s.m[obj] = facts
	}
	facts[key] = v
}

// Get retrieves the fact recorded about obj under key.
func (s *FactStore) Get(obj types.Object, key string) (any, bool) {
	v, ok := s.m[obj][key]
	return v, ok
}

// Bool retrieves a boolean fact; absent facts are false.
func (s *FactStore) Bool(obj types.Object, key string) bool {
	v, ok := s.Get(obj, key)
	b, isBool := v.(bool)
	return ok && isBool && b
}
