package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// ParseGuardedBy parses the argument of a //lint:guardedby annotation. The
// guard reference is the first whitespace-separated token — either a bare
// field name ("mu", a sibling field of the annotated one) or a dotted
// "Type.mu" naming a struct type in the same package — and anything after
// it is prose. The reference must be one or two Go identifiers; anything
// else (empty, leading/trailing dots, deeper paths, non-identifier runes)
// is an error so the annotator finds out instead of the annotation being
// silently inert.
func ParseGuardedBy(args string) (recv, field string, err error) {
	ref, _, _ := strings.Cut(strings.TrimSpace(args), " ")
	if ref == "" {
		return "", "", fmt.Errorf("missing guard reference (want \"mu\" or \"Type.mu\")")
	}
	parts := strings.Split(ref, ".")
	if len(parts) > 2 {
		return "", "", fmt.Errorf("guard reference %q has too many dots (want \"mu\" or \"Type.mu\")", ref)
	}
	for _, p := range parts {
		if !token.IsIdentifier(p) {
			return "", "", fmt.Errorf("guard reference %q is not an identifier path", ref)
		}
	}
	if len(parts) == 2 {
		return parts[0], parts[1], nil
	}
	return "", parts[0], nil
}

// ParseOwns validates the argument of a //lint:owns annotation, which marks
// a field or variable as taking ownership of arena handles stored into it.
// Like suppression justifications, the prose is mandatory: an ownership
// transfer without a stated protocol is exactly the situation handlecheck
// exists to flag.
func ParseOwns(args string) (why string, err error) {
	why = strings.TrimSpace(args)
	if why == "" {
		return "", fmt.Errorf("missing justification: //lint:owns must say who releases the handle")
	}
	return why, nil
}
