package analysis

import "go/ast"

// FlowState is one lattice element of a forward dataflow analysis. The
// engine owns when states are copied and merged; implementations only
// define the two structural operations.
type FlowState interface {
	// Clone returns an independent copy; the engine mutates clones freely.
	Clone() FlowState
	// Join merges other into the receiver (least upper bound) and reports
	// whether the receiver changed. A fixpoint is reached when no join
	// changes any block's entry state.
	Join(other FlowState) bool
}

// Forward runs a forward abstract interpretation over the CFG: entry seeds
// the entry block, transfer is applied to each node of a block in order,
// and out-states propagate to successors with Join at merge points. Loops
// iterate to a fixpoint (the worklist re-queues a successor whenever its
// entry state grows). The returned slice holds each block's entry state,
// indexed by Block.Index; nil marks unreachable blocks.
//
// transfer must mutate the given state in place and must be deterministic;
// it runs multiple times per node on loops, so clients that report
// diagnostics should converge first and replay reachable blocks once (see
// ReplayBlocks).
func Forward(g *CFG, entry FlowState, transfer func(ast.Node, FlowState)) []FlowState {
	in := make([]FlowState, len(g.Blocks))
	in[g.Entry.Index] = entry

	work := []int{g.Entry.Index}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true

	// Safety valve: a monotone lattice of finite height converges long
	// before this; the cap only guards against a buggy Join oscillating.
	maxSteps := 64*len(g.Blocks) + 256

	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		idx := work[0]
		work = work[1:]
		queued[idx] = false

		out := in[idx].Clone()
		for _, n := range g.Blocks[idx].Nodes {
			transfer(n, out)
		}
		for _, succ := range g.Blocks[idx].Succs {
			si := succ.Index
			changed := false
			if in[si] == nil {
				in[si] = out.Clone()
				changed = true
			} else if in[si].Join(out) {
				changed = true
			}
			if changed && !queued[si] {
				work = append(work, si)
				queued[si] = true
			}
		}
	}
	return in
}

// ReplayBlocks applies transfer once to every reachable block, in block
// order, starting from the converged entry states produced by Forward.
// This is the reporting pass: each node is visited exactly once with its
// fixpoint entry state, so diagnostics fire once regardless of how many
// fixpoint iterations a loop needed.
func ReplayBlocks(g *CFG, in []FlowState, transfer func(ast.Node, FlowState)) {
	for _, blk := range g.Blocks {
		if in[blk.Index] == nil {
			continue
		}
		s := in[blk.Index].Clone()
		for _, n := range blk.Nodes {
			transfer(n, s)
		}
	}
}
