package analysis

import (
	"strings"
	"testing"
)

// FuzzParseDirective pins the directive grammar: anything starting with
// "//lint:" is claimed as a directive (ok=true) and must either parse into a
// lowercase name, or come back with an explicit error — never a silent
// acceptance of a malformed marker, and never a panic.
func FuzzParseDirective(f *testing.F) {
	f.Add("//lint:ignore unitcheck adapter boundary")
	f.Add("//lint:unit cycles")
	f.Add("//lint:unit cycles latched at tick")
	f.Add("//lint:deterministic")
	f.Add("//lint:")
	f.Add("//lint: ignore")
	f.Add("//lint:Unit x")
	f.Add("//lint:unit\tcycles")
	f.Add("//lint:ignore")
	f.Add("// just a comment")
	f.Add("//lint:unit-cycles")
	f.Add("//lint:úñit x")
	f.Add("//lint:ignore unitcheck \x00")

	f.Fuzz(func(t *testing.T, text string) {
		name, args, ok, err := ParseDirective(text)

		if !strings.HasPrefix(text, "//lint:") {
			if ok || err != nil || name != "" || args != "" {
				t.Fatalf("non-directive %q claimed: name=%q args=%q ok=%v err=%v", text, name, args, ok, err)
			}
			return
		}

		// Everything carrying the marker is claimed, parsed or not — that is
		// what lets CheckDirectives report the malformed ones.
		if !ok {
			t.Fatalf("directive-prefixed %q not claimed", text)
		}

		rest := strings.TrimPrefix(text, "//lint:")
		wellFormed := false
		if i := strings.IndexFunc(rest, func(r rune) bool { return r < 'a' || r > 'z' }); i != 0 {
			if i < 0 {
				wellFormed = rest != ""
			} else {
				wellFormed = rest[i] == ' '
			}
		}

		if wellFormed {
			if err != nil {
				t.Fatalf("well-formed %q rejected: %v", text, err)
			}
			if name == "" {
				t.Fatalf("well-formed %q parsed to empty name", text)
			}
			for _, r := range name {
				if r < 'a' || r > 'z' {
					t.Fatalf("name %q from %q contains non-lowercase rune", name, text)
				}
			}
			if args != strings.TrimSpace(args) {
				t.Fatalf("args %q from %q not trimmed", args, text)
			}
		} else if err == nil {
			t.Fatalf("malformed %q silently accepted: name=%q args=%q", text, name, args)
		}
	})
}
