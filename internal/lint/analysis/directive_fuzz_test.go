package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// FuzzParseDirective pins the directive grammar: anything starting with
// "//lint:" is claimed as a directive (ok=true) and must either parse into a
// lowercase name, or come back with an explicit error — never a silent
// acceptance of a malformed marker, and never a panic.
func FuzzParseDirective(f *testing.F) {
	f.Add("//lint:ignore unitcheck adapter boundary")
	f.Add("//lint:unit cycles")
	f.Add("//lint:unit cycles latched at tick")
	f.Add("//lint:deterministic")
	f.Add("//lint:")
	f.Add("//lint: ignore")
	f.Add("//lint:Unit x")
	f.Add("//lint:unit\tcycles")
	f.Add("//lint:ignore")
	f.Add("// just a comment")
	f.Add("//lint:unit-cycles")
	f.Add("//lint:úñit x")
	f.Add("//lint:ignore unitcheck \x00")
	f.Add("//lint:guardedby mu")
	f.Add("//lint:guardedby store.mu guards the job table")
	f.Add("//lint:guardedby .mu")
	f.Add("//lint:guardedby a.b.c")
	f.Add("//lint:guardedby 123")
	f.Add("//lint:guardedby")
	f.Add("//lint:guardedby müx")
	f.Add("//lint:owns released by drain")
	f.Add("//lint:owns")
	f.Add("//lint:owns \t ")
	f.Add("//lint:allocfree")
	f.Add("//lint:allocfree trailing words")
	f.Add("//lint:alloc one-time window-end report, measured cold")
	f.Add("//lint:alloc")
	f.Add("//lint:alloc \t ")
	f.Add("//lint:ignore alloccheck startup-only wiring")

	f.Fuzz(func(t *testing.T, text string) {
		name, args, ok, err := ParseDirective(text)

		if !strings.HasPrefix(text, "//lint:") {
			if ok || err != nil || name != "" || args != "" {
				t.Fatalf("non-directive %q claimed: name=%q args=%q ok=%v err=%v", text, name, args, ok, err)
			}
			return
		}

		// Everything carrying the marker is claimed, parsed or not — that is
		// what lets CheckDirectives report the malformed ones.
		if !ok {
			t.Fatalf("directive-prefixed %q not claimed", text)
		}

		rest := strings.TrimPrefix(text, "//lint:")
		wellFormed := false
		if i := strings.IndexFunc(rest, func(r rune) bool { return r < 'a' || r > 'z' }); i != 0 {
			if i < 0 {
				wellFormed = rest != ""
			} else {
				wellFormed = rest[i] == ' '
			}
		}

		if wellFormed {
			if err != nil {
				t.Fatalf("well-formed %q rejected: %v", text, err)
			}
			if name == "" {
				t.Fatalf("well-formed %q parsed to empty name", text)
			}
			for _, r := range name {
				if r < 'a' || r > 'z' {
					t.Fatalf("name %q from %q contains non-lowercase rune", name, text)
				}
			}
			if args != strings.TrimSpace(args) {
				t.Fatalf("args %q from %q not trimmed", args, text)
			}
		} else if err == nil {
			t.Fatalf("malformed %q silently accepted: name=%q args=%q", text, name, args)
		}

		if err != nil {
			return
		}

		// The annotation grammars layered on top of the directive marker:
		// //lint:guardedby takes a one- or two-identifier guard reference
		// before any prose, //lint:owns demands a non-empty justification.
		// Both must classify exactly — never panic, never silently accept.
		switch name {
		case "guardedby":
			recv, field, gerr := ParseGuardedBy(args)
			ref, _, _ := strings.Cut(strings.TrimSpace(args), " ")
			parts := strings.Split(ref, ".")
			valid := ref != "" && len(parts) <= 2
			for _, p := range parts {
				if !token.IsIdentifier(p) {
					valid = false
				}
			}
			if valid != (gerr == nil) {
				t.Fatalf("guardedby %q: valid=%v but err=%v", args, valid, gerr)
			}
			if gerr != nil {
				return
			}
			if field != parts[len(parts)-1] {
				t.Fatalf("guardedby %q: field=%q, want %q", args, field, parts[len(parts)-1])
			}
			wantRecv := ""
			if len(parts) == 2 {
				wantRecv = parts[0]
			}
			if recv != wantRecv {
				t.Fatalf("guardedby %q: recv=%q, want %q", args, recv, wantRecv)
			}
		case "owns":
			why, oerr := ParseOwns(args)
			want := strings.TrimSpace(args)
			if (want == "") != (oerr != nil) {
				t.Fatalf("owns %q: justification=%q but err=%v", args, want, oerr)
			}
			if oerr == nil && why != want {
				t.Fatalf("owns %q: why=%q, want %q", args, why, want)
			}
		}
	})
}
