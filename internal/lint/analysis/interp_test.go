package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"testing"
)

// constState is a toy constant-propagation lattice for exercising the
// engine: variable name -> literal value, with -9 as the "conflicting
// values" top element.
const constTop = -9

type constState struct {
	vars map[string]int64
}

func (s *constState) Clone() FlowState {
	m := make(map[string]int64, len(s.vars))
	for k, v := range s.vars {
		m[k] = v
	}
	return &constState{vars: m}
}

func (s *constState) Join(other FlowState) bool {
	o := other.(*constState)
	changed := false
	for k, v := range o.vars {
		cur, ok := s.vars[k]
		if !ok {
			s.vars[k] = v
			changed = true
			continue
		}
		if cur != v && cur != constTop {
			s.vars[k] = constTop
			changed = true
		}
	}
	return changed
}

// constTransfer interprets `x = <int literal>` assignments.
func constTransfer(n ast.Node, s FlowState) {
	st := s.(*constState)
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	lit, ok := as.Rhs[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		st.vars[id.Name] = constTop
		return
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	if err != nil {
		st.vars[id.Name] = constTop
		return
	}
	st.vars[id.Name] = v
}

// runConst builds the CFG for body, runs the engine, and returns the CFG
// plus each block's converged entry state.
func runConst(t *testing.T, body string) (*CFG, []FlowState) {
	t.Helper()
	g := buildFor(t, body)
	in := Forward(g, &constState{vars: map[string]int64{}}, constTransfer)
	return g, in
}

// entryOf returns the converged entry state of the first block of the given
// kind.
func entryOf(t *testing.T, g *CFG, in []FlowState, kind string) *constState {
	t.Helper()
	for _, blk := range g.Blocks {
		if blk.Kind == kind {
			if in[blk.Index] == nil {
				t.Fatalf("block %s unreachable", kind)
			}
			return in[blk.Index].(*constState)
		}
	}
	t.Fatalf("no block of kind %s: %s", kind, summarize(g))
	return nil
}

func TestForwardBranchJoinAgreeing(t *testing.T) {
	g, in := runConst(t, "if cond {\n a = 1\n} else {\n a = 1\n}\nb = 2")
	join := entryOf(t, g, in, "if.join")
	if join.vars["a"] != 1 {
		t.Fatalf("agreeing branches should keep the value, got %d", join.vars["a"])
	}
}

func TestForwardBranchJoinConflicting(t *testing.T) {
	g, in := runConst(t, "if cond {\n a = 1\n} else {\n a = 2\n}\nb = 2")
	join := entryOf(t, g, in, "if.join")
	if join.vars["a"] != constTop {
		t.Fatalf("conflicting branches should join to top, got %d", join.vars["a"])
	}
}

func TestForwardOneArmedIf(t *testing.T) {
	// A variable assigned before the if and reassigned in only one arm must
	// join to top; one assigned identically stays.
	g, in := runConst(t, "a = 1\nb = 7\nif cond {\n a = 2\n}\nc = 3")
	join := entryOf(t, g, in, "if.join")
	if join.vars["a"] != constTop {
		t.Fatalf("one-armed reassignment should join to top, got %d", join.vars["a"])
	}
	if join.vars["b"] != 7 {
		t.Fatalf("untouched variable should survive the join, got %d", join.vars["b"])
	}
}

func TestForwardLoopFixpoint(t *testing.T) {
	// The loop body reassigns a; the head's fixpoint must reflect both the
	// initial value and the body's, i.e. top — and the engine must
	// terminate despite the back edge.
	g, in := runConst(t, "a = 1\nfor cond {\n a = 2\n}\nb = 3")
	head := entryOf(t, g, in, "for.head")
	if head.vars["a"] != constTop {
		t.Fatalf("loop head should see joined value, got %d", head.vars["a"])
	}
	exit := entryOf(t, g, in, "for.exit")
	if exit.vars["a"] != constTop {
		t.Fatalf("loop exit should see joined value, got %d", exit.vars["a"])
	}
}

func TestForwardLoopInvariant(t *testing.T) {
	g, in := runConst(t, "a = 1\nfor cond {\n b = 2\n}\nc = 3")
	exit := entryOf(t, g, in, "for.exit")
	if exit.vars["a"] != 1 {
		t.Fatalf("loop-invariant value should survive, got %d", exit.vars["a"])
	}
}

func TestForwardShortCircuitPaths(t *testing.T) {
	// cond2's block runs only on cond's true path; an assignment there
	// must weaken the join but not erase the straight-line path's value.
	g, in := runConst(t, "a = 1\nif cond && cond2 {\n a = 2\n}\nb = 3")
	join := entryOf(t, g, in, "if.join")
	if join.vars["a"] != constTop {
		t.Fatalf("then-path reassignment should reach the join as top, got %d", join.vars["a"])
	}
}

func TestForwardSwitchJoin(t *testing.T) {
	g, in := runConst(t, "switch a {\ncase 1:\n b = 1\ncase 2:\n b = 1\ndefault:\n b = 1\n}\nc = 2")
	exit := entryOf(t, g, in, "switch.exit")
	if exit.vars["b"] != 1 {
		t.Fatalf("agreeing cases should keep the value, got %d", exit.vars["b"])
	}
}

func TestForwardUnreachableNil(t *testing.T) {
	g, in := runConst(t, "return\na = 1")
	for _, blk := range g.Blocks {
		if blk.Kind == "unreachable" && in[blk.Index] != nil {
			t.Fatalf("unreachable block should have nil entry state")
		}
	}
	if in[g.Exit.Index] == nil {
		t.Fatalf("exit should be reachable")
	}
}

// deferToy is a miniature lock-set state for exercising the engine's defer
// protocol: `a = 1` acquires, `a = 0` releases, a DeferStmt registers one
// deferred release, and RunDefers applies the pending stack. held joins by
// max (may-held), defers joins by min (the common registration prefix of the
// merging paths — a defer registered on only one branch must not release on
// the other).
type deferToy struct {
	held   int
	defers int
}

func (s *deferToy) Clone() FlowState { c := *s; return &c }

func (s *deferToy) Join(other FlowState) bool {
	o := other.(*deferToy)
	changed := false
	if o.held > s.held {
		s.held = o.held
		changed = true
	}
	if o.defers < s.defers {
		s.defers = o.defers
		changed = true
	}
	return changed
}

func deferToyTransfer(n ast.Node, s FlowState) {
	st := s.(*deferToy)
	switch x := n.(type) {
	case *ast.AssignStmt:
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name == "a" {
				if lit, ok := x.Rhs[0].(*ast.BasicLit); ok {
					if lit.Value == "1" {
						st.held++
					} else if lit.Value == "0" {
						st.held--
					}
				}
			}
		}
	case *ast.DeferStmt:
		st.defers++
	case *RunDefers:
		st.held -= st.defers
		st.defers = 0
	}
}

func TestForwardDeferredReleaseBalancesExit(t *testing.T) {
	g := buildFor(t, "a = 1\ndefer func() {\n a = 0\n}()\nreturn")
	in := Forward(g, &deferToy{}, deferToyTransfer)
	exit := in[g.Exit.Index].(*deferToy)
	if exit.held != 0 || exit.defers != 0 {
		t.Fatalf("deferred release should balance the acquire at exit, got held=%d defers=%d", exit.held, exit.defers)
	}
}

func TestForwardDeferWithoutAcquireLeaks(t *testing.T) {
	g := buildFor(t, "a = 1\nreturn")
	in := Forward(g, &deferToy{}, deferToyTransfer)
	exit := in[g.Exit.Index].(*deferToy)
	if exit.held != 1 {
		t.Fatalf("acquire without deferred release must be visible at exit, got held=%d", exit.held)
	}
}

func TestForwardBranchLocalDeferJoinsToPrefix(t *testing.T) {
	// The defer registers on one branch only; the join keeps the common
	// prefix (none), so the exit must not apply a release the else path
	// never registered.
	g := buildFor(t, "if cond {\n defer func() {\n  a = 0\n }()\n}\na = 1\nreturn")
	in := Forward(g, &deferToy{}, deferToyTransfer)
	exit := in[g.Exit.Index].(*deferToy)
	if exit.held != 1 {
		t.Fatalf("branch-local defer must not release on the other path, got held=%d", exit.held)
	}
}

func TestForwardDeferInLoopStacksPerIteration(t *testing.T) {
	// Each iteration registers another deferred release; min-join across the
	// back edge keeps the entry count (0), and the engine converges.
	g := buildFor(t, "for cond {\n defer func() {\n  a = 0\n }()\n a = 1\n}\nreturn")
	in := Forward(g, &deferToy{}, deferToyTransfer)
	var head *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "for.head" {
			head = blk
		}
	}
	st := in[head.Index].(*deferToy)
	if st.defers != 0 {
		t.Fatalf("loop head should join defers to the common prefix 0, got %d", st.defers)
	}
	if st.held < 1 {
		t.Fatalf("acquire inside the loop should reach the head as may-held, got %d", st.held)
	}
}

func TestForwardLabeledContinueCarriesLockSet(t *testing.T) {
	// continue L skips the release, so the head must see the held lock from
	// the continuing path — the engine behavior lockcheck's double-lock
	// check rides on.
	g := buildFor(t, "L:\nfor cond {\n a = 1\n if cond2 {\n  continue L\n }\n a = 0\n}\nreturn")
	in := Forward(g, &deferToy{}, deferToyTransfer)
	var head *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "for.head" {
			head = blk
		}
	}
	st := in[head.Index].(*deferToy)
	if st.held < 1 {
		t.Fatalf("labeled continue should carry the held lock to the loop head, got held=%d", st.held)
	}
}

func TestReplayBlocksVisitsOnce(t *testing.T) {
	// Forward revisits loop nodes while iterating; ReplayBlocks must apply
	// the transfer exactly once per reachable node.
	g := buildFor(t, "a = 1\nfor cond {\n a = 2\n}\nb = 3")
	in := Forward(g, &constState{vars: map[string]int64{}}, constTransfer)
	visits := map[ast.Node]int{}
	ReplayBlocks(g, in, func(n ast.Node, s FlowState) {
		visits[n]++
		constTransfer(n, s)
	})
	for n, c := range visits {
		if c != 1 {
			t.Fatalf("node %T visited %d times in replay", n, c)
		}
	}
	// Every reachable node was visited: 2 straight-line assignments, the
	// loop condition, the body assignment, and the fall-off RunDefers.
	if len(visits) != 5 {
		t.Fatalf("want 5 replayed nodes, got %d", len(visits))
	}
}
