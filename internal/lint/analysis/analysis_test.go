package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const directiveSrc = `package p

func a() {
	_ = 1 // line 4: no directive
	_ = 2 //lint:mycheck benign because reasons
	//lint:mycheck also benign
	_ = 3
	_ = 4 //lint:mycheck
	_ = 5 //lint:ignore testcheck justified via the generic form
	_ = 6 //lint:ignore othercheck wrong analyzer
}
`

// reportAt builds a pass over directiveSrc for an analyzer honouring the
// "mycheck" directive and reports at the start of the given line.
func reportAt(t *testing.T, line int) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	a := &Analyzer{Name: "testcheck", Directives: []string{"mycheck"}}
	pass := NewPass(a, fset, []*ast.File{f}, types.NewPackage("p", "p"), nil, "", NewFactStore(),
		func(d Diagnostic) { diags = append(diags, d) })
	// Position of the first statement on the requested line.
	tf := fset.File(f.Pos())
	pass.Reportf(tf.LineStart(line), "finding on line %d", line)
	return diags
}

func TestReportfSuppression(t *testing.T) {
	cases := []struct {
		line int
		want string // "" means suppressed
	}{
		{4, "finding on line 4"},     // no directive: reported
		{5, ""},                      // same-line justified directive
		{7, ""},                      // directive on the line above
		{8, "needs a justification"}, // bare directive: flagged itself
		{9, ""},                      // generic //lint:ignore <analyzer> form
		{10, "finding on line 10"},   // directive names another analyzer
	}
	for _, c := range cases {
		diags := reportAt(t, c.line)
		if c.want == "" {
			if len(diags) != 0 {
				t.Errorf("line %d: want suppression, got %v", c.line, diags)
			}
			continue
		}
		if len(diags) != 1 || !strings.Contains(diags[0].Message, c.want) {
			t.Errorf("line %d: want message containing %q, got %v", c.line, c.want, diags)
		}
	}
}

func TestFactStore(t *testing.T) {
	s := NewFactStore()
	obj := types.NewVar(token.NoPos, nil, "x", types.Typ[types.Int])
	if s.Bool(obj, "writeFree") {
		t.Error("absent fact should read false")
	}
	s.Set(obj, "writeFree", true)
	if !s.Bool(obj, "writeFree") {
		t.Error("set fact should read true")
	}
	s.Set(obj, "writeFree", false)
	if s.Bool(obj, "writeFree") {
		t.Error("demoted fact should read false")
	}
	other := types.NewVar(token.NoPos, nil, "y", types.Typ[types.Int])
	if s.Bool(other, "writeFree") {
		t.Error("facts must not leak across objects")
	}
}
