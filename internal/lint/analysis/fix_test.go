package analysis

import (
	"encoding/json"
	"errors"
	"go/token"
	"strings"
	"testing"
)

// memFiles is an in-memory file store for applier tests.
type memFiles map[string]string

func (m memFiles) read(name string) ([]byte, error) {
	s, ok := m[name]
	if !ok {
		return nil, errors.New("no such file: " + name)
	}
	return []byte(s), nil
}

func (m memFiles) write(name string, b []byte) error {
	m[name] = string(b)
	return nil
}

func fixDiag(file string, edits ...TextEdit) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: 1},
		Analyzer: "alloccheck",
		Message:  "test finding",
		Fix:      &SuggestedFix{Message: "test fix", Edits: edits},
	}
}

func TestApplyFixesReplaceAndInsert(t *testing.T) {
	files := memFiles{"a.go": "x := make([]int, 0)\nfor range s {\n\tx = append(x, 1)\n}\n"}
	n, err := ApplyFixes([]Diagnostic{
		fixDiag("a.go", TextEdit{Filename: "a.go", Start: 5, End: 19, NewText: "make([]int, 0, len(s))"}),
	}, files.read, files.write)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied %d edits, want 1", n)
	}
	if want := "x := make([]int, 0, len(s))\n"; !strings.HasPrefix(files["a.go"], want) {
		t.Errorf("edited file starts %q, want prefix %q", files["a.go"], want)
	}
}

// TestApplyFixesDescendingOrder plants two edits in one file in ascending
// source order and checks neither shifts the other: the applier must work
// back-to-front.
func TestApplyFixesDescendingOrder(t *testing.T) {
	files := memFiles{"b.go": "aaa bbb ccc"}
	n, err := ApplyFixes([]Diagnostic{
		fixDiag("b.go",
			TextEdit{Filename: "b.go", Start: 0, End: 3, NewText: "AAAA"},
			TextEdit{Filename: "b.go", Start: 8, End: 11, NewText: "C"}),
	}, files.read, files.write)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || files["b.go"] != "AAAA bbb C" {
		t.Errorf("got %q (%d edits), want %q (2 edits)", files["b.go"], n, "AAAA bbb C")
	}
}

func TestApplyFixesOverlapRejected(t *testing.T) {
	files := memFiles{"c.go": "0123456789"}
	_, err := ApplyFixes([]Diagnostic{
		fixDiag("c.go", TextEdit{Filename: "c.go", Start: 2, End: 6, NewText: "x"}),
		fixDiag("c.go", TextEdit{Filename: "c.go", Start: 4, End: 8, NewText: "y"}),
	}, files.read, files.write)
	if err == nil || !strings.Contains(err.Error(), "overlapping") {
		t.Fatalf("want overlapping-fix error, got %v (file now %q)", err, files["c.go"])
	}
}

// TestApplyFixesIdenticalCollapse: two diagnostics proposing the same edit
// (e.g. two appends to one un-hinted make) apply it once, not twice.
func TestApplyFixesIdenticalCollapse(t *testing.T) {
	files := memFiles{"d.go": "make([]int, 0)"}
	e := TextEdit{Filename: "d.go", Start: 0, End: 14, NewText: "make([]int, 0, n)"}
	n, err := ApplyFixes([]Diagnostic{fixDiag("d.go", e), fixDiag("d.go", e)}, files.read, files.write)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || files["d.go"] != "make([]int, 0, n)" {
		t.Errorf("got %q (%d edits), want the edit applied exactly once", files["d.go"], n)
	}
}

func TestApplyFixesRangeChecked(t *testing.T) {
	files := memFiles{"e.go": "short"}
	_, err := ApplyFixes([]Diagnostic{
		fixDiag("e.go", TextEdit{Filename: "e.go", Start: 2, End: 99, NewText: "x"}),
	}, files.read, files.write)
	if err == nil || !strings.Contains(err.Error(), "outside file") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

func TestApplyFixesSkipsFixlessDiagnostics(t *testing.T) {
	files := memFiles{}
	n, err := ApplyFixes([]Diagnostic{{Pos: token.Position{Filename: "f.go"}, Message: "no fix"}},
		files.read, files.write)
	if err != nil || n != 0 {
		t.Fatalf("fixless diagnostics must be a no-op, got n=%d err=%v", n, err)
	}
}

// TestSuggestedFixJSONRoundTrip pins the wire shape the -json flag emits:
// a fix marshals to {message, edits:[{file,start,end,newText}]}, and the
// decoded form drives ApplyFixes to the same result as the original.
func TestSuggestedFixJSONRoundTrip(t *testing.T) {
	orig := fixDiag("g.go", TextEdit{Filename: "g.go", Start: 5, End: 9, NewText: "make([]int, 0, 8)"})
	b, err := json.Marshal(orig.Fix)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"message"`, `"edits"`, `"file"`, `"start"`, `"end"`, `"newText"`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("wire form %s missing key %s", b, key)
		}
	}
	var decoded SuggestedFix
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}

	before := memFiles{"g.go": "x := ____ rest"}
	after := memFiles{"g.go": "x := ____ rest"}
	if _, err := ApplyFixes([]Diagnostic{orig}, before.read, before.write); err != nil {
		t.Fatal(err)
	}
	rt := orig
	rt.Fix = &decoded
	if _, err := ApplyFixes([]Diagnostic{rt}, after.read, after.write); err != nil {
		t.Fatal(err)
	}
	if before["g.go"] != after["g.go"] {
		t.Errorf("round-tripped fix applied %q, original applied %q", after["g.go"], before["g.go"])
	}
}
