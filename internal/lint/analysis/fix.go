package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// TextEdit is one byte-range replacement in a single file. Offsets are
// 0-based byte offsets into the file's current contents ([Start, End)
// half-open); an insertion has Start == End. Offsets rather than
// line/column make the edit machine-applicable without re-parsing, and
// they survive the -json round trip losslessly.
type TextEdit struct {
	Filename string `json:"file"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	NewText  string `json:"newText"`
}

// SuggestedFix is a machine-applicable resolution for one diagnostic:
// a short imperative message ("add a capacity hint") plus the edits that
// implement it. Fixes must be conservative — applying one may not change
// program behavior, only allocation behavior — because the -fix driver
// applies them without human review.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Edit builds a TextEdit replacing the [pos, end) source range.
func Edit(fset *token.FileSet, pos, end token.Pos, newText string) TextEdit {
	p, e := fset.Position(pos), fset.Position(end)
	return TextEdit{Filename: p.Filename, Start: p.Offset, End: e.Offset, NewText: newText}
}

// Insert builds a TextEdit inserting newText before pos.
func Insert(fset *token.FileSet, pos token.Pos, newText string) TextEdit {
	p := fset.Position(pos)
	return TextEdit{Filename: p.Filename, Start: p.Offset, End: p.Offset, NewText: newText}
}

// ApplyFixes applies every diagnostic's suggested fix to the file
// contents provided by read, handing each rewritten file to write once.
// Edits are grouped per file and applied in descending offset order so
// earlier edits never shift later ones; overlapping edits within one file
// are an error (two fixes fighting over the same bytes need a human), as
// is an edit whose range falls outside the file. Returns the number of
// edits applied.
func ApplyFixes(diags []Diagnostic, read func(string) ([]byte, error), write func(string, []byte) error) (int, error) {
	byFile := map[string][]TextEdit{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	applied := 0
	for _, fname := range files {
		edits := byFile[fname]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start > edits[j].Start
			}
			return edits[i].End > edits[j].End
		})
		for i := 1; i < len(edits); i++ {
			// Descending order: edits[i] precedes edits[i-1] in the file.
			if edits[i].End > edits[i-1].Start {
				// Identical edits (two diagnostics proposing the same
				// change) collapse instead of conflicting.
				if edits[i] == edits[i-1] {
					edits = append(edits[:i], edits[i+1:]...)
					i--
					continue
				}
				return applied, fmt.Errorf("%s: overlapping suggested fixes at offsets %d-%d and %d-%d",
					fname, edits[i].Start, edits[i].End, edits[i-1].Start, edits[i-1].End)
			}
		}
		content, err := read(fname)
		if err != nil {
			return applied, err
		}
		for _, e := range edits {
			if e.Start < 0 || e.End < e.Start || e.End > len(content) {
				return applied, fmt.Errorf("%s: suggested fix range %d-%d outside file (len %d)",
					fname, e.Start, e.End, len(content))
			}
			content = append(content[:e.Start], append([]byte(e.NewText), content[e.End:]...)...)
			applied++
		}
		if err := write(fname, content); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
