package analysis

import (
	"go/ast"
	"go/token"
)

// Block is one basic block of a function's control-flow graph. Nodes holds
// the block's AST nodes in evaluation order: statements, plus the condition
// expressions that the builder lowers out of if/for/switch statements so
// that short-circuit operators (&&, ||) get distinct blocks per operand —
// `if a && b { .. }` evaluates b only when a is true, and a flow-sensitive
// client must see that path structure to join states correctly.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable, creation order).
	Index int
	// Kind names what created the block ("entry", "if.then", "for.head",
	// ...) for debugging and tests.
	Kind string
	// Nodes are the statements and lowered condition expressions executed
	// when control passes through the block.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Entry starts the
// body; Exit is the single synthetic sink every return (and the fall-off
// end of the body) flows to.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// RunDefers is a synthetic node the builder places at every function exit
// point — after each return statement's node, and at the fall-off end of the
// body — marking where the function's deferred calls execute. DeferStmt
// nodes stay in their blocks as ordinary statements (registration order is
// path-sensitive: a defer on one branch only runs on that branch), and a
// flow-sensitive client models them by pushing the deferred effect onto a
// stack in its state at the DeferStmt and popping the stack LIFO when it
// reaches a RunDefers. Clients that do not model defers can ignore the node:
// it is neither an ast.Stmt nor an ast.Expr, so statement/expression type
// switches skip it naturally.
type RunDefers struct {
	// At anchors diagnostics: the position of the return statement (or the
	// body's closing brace) whose exit triggers the deferred calls.
	At token.Pos
}

func (r *RunDefers) Pos() token.Pos { return r.At }
func (r *RunDefers) End() token.Pos { return r.At }

// BuildCFG constructs the control-flow graph of a function body. It lowers
// structured control flow (if/else, for, range, switch, type switch,
// select, labeled break/continue, goto, fallthrough) into blocks and edges;
// short-circuit && and || in conditions are expanded so each operand sits
// in its own block. Statements after an unconditional transfer (return,
// break, ...) land in a predecessor-less block the interpreter never
// reaches, matching the semantics of unreachable code.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelInfo{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.current = b.cfg.Entry
	b.stmt(body)
	b.add(&RunDefers{At: body.End()})
	b.edge(b.current, b.cfg.Exit)
	return b.cfg
}

// labelInfo tracks the blocks a label can transfer to.
type labelInfo struct {
	target *Block // goto target / labeled statement start
	brk    *Block // break target when the label names a loop/switch
	cont   *Block // continue target when the label names a loop
}

// loopCtx is one enclosing breakable/continuable construct.
type loopCtx struct {
	brk   *Block
	cont  *Block // nil for switch/select (not continuable)
	label string
}

type cfgBuilder struct {
	cfg     *CFG
	current *Block
	loops   []loopCtx // innermost last
	labels  map[string]*labelInfo
	// pendingLabel is consumed by the next loop/switch statement so that
	// `L: for ...` registers L's break/continue targets.
	pendingLabel string
	// fallthroughTo is the next case body during switch construction.
	fallthroughTo *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to next and makes next current.
func (b *cfgBuilder) jump(next *Block) {
	b.edge(b.current, next)
	b.current = next
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) { b.current.Nodes = append(b.current.Nodes, n) }

// label returns (creating on demand) the info record for a label, so
// forward gotos resolve.
func (b *cfgBuilder) label(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

// cond lowers a boolean expression into the CFG: control reaches t when the
// expression is true and f when it is false, with && and || expanded into
// per-operand blocks (the right operand of `a && b` evaluates only on a's
// true edge).
func (b *cfgBuilder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(x.X, mid, f)
			b.current = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(x.X, t, mid)
			b.current = mid
			b.cond(x.Y, t, f)
			return
		}
	}
	b.add(e)
	b.edge(b.current, t)
	b.edge(b.current, f)
}

// takeLabel consumes the pending label (set by a LabeledStmt wrapping a
// loop or switch) and binds its break/continue targets.
func (b *cfgBuilder) takeLabel(brk, cont *Block) string {
	name := b.pendingLabel
	b.pendingLabel = ""
	if name != "" {
		li := b.label(name)
		li.brk = brk
		li.cont = cont
	}
	return name
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, inner := range x.List {
			b.stmt(inner)
		}
	case *ast.IfStmt:
		b.stmt(x.Init)
		then := b.newBlock("if.then")
		join := b.newBlock("if.join")
		if x.Else != nil {
			els := b.newBlock("if.else")
			b.cond(x.Cond, then, els)
			b.current = then
			b.stmt(x.Body)
			b.edge(b.current, join)
			b.current = els
			b.stmt(x.Else)
			b.edge(b.current, join)
		} else {
			b.cond(x.Cond, then, join)
			b.current = then
			b.stmt(x.Body)
			b.edge(b.current, join)
		}
		b.current = join
	case *ast.ForStmt:
		b.stmt(x.Init)
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		exit := b.newBlock("for.exit")
		cont := head
		var post *Block
		if x.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		label := b.takeLabel(exit, cont)
		b.jump(head)
		if x.Cond != nil {
			b.cond(x.Cond, body, exit)
		} else {
			b.edge(b.current, body)
		}
		b.loops = append(b.loops, loopCtx{brk: exit, cont: cont, label: label})
		b.current = body
		b.stmt(x.Body)
		b.loops = b.loops[:len(b.loops)-1]
		if post != nil {
			b.jump(post)
			b.stmt(x.Post)
		}
		b.edge(b.current, head)
		b.current = exit
	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		exit := b.newBlock("range.exit")
		label := b.takeLabel(exit, head)
		b.jump(head)
		// The RangeStmt node itself carries the ranged expression and the
		// key/value bindings; clients transfer it as one step.
		b.add(x)
		b.edge(b.current, body)
		b.edge(b.current, exit)
		b.loops = append(b.loops, loopCtx{brk: exit, cont: head, label: label})
		b.current = body
		b.stmt(x.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.current, head)
		b.current = exit
	case *ast.SwitchStmt:
		b.stmt(x.Init)
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.switchClauses(x.Body, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})
	case *ast.TypeSwitchStmt:
		b.stmt(x.Init)
		// The implicit binding (`v := y.(type)`) and the tag expression
		// travel with the statement node.
		b.add(x.Assign)
		b.switchClauses(x.Body, func(cc *ast.CaseClause, blk *Block) {})
	case *ast.SelectStmt:
		exit := b.newBlock("select.exit")
		label := b.takeLabel(exit, nil)
		b.loops = append(b.loops, loopCtx{brk: exit, label: label})
		from := b.current
		for _, cl := range x.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(from, blk)
			b.current = blk
			b.stmt(comm.Comm)
			for _, inner := range comm.Body {
				b.stmt(inner)
			}
			b.edge(b.current, exit)
		}
		if len(x.Body.List) == 0 {
			b.edge(from, exit)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.current = exit
	case *ast.LabeledStmt:
		target := b.newBlock("label." + x.Label.Name)
		b.jump(target)
		b.label(x.Label.Name).target = target
		b.pendingLabel = x.Label.Name
		b.stmt(x.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		b.branch(x)
	case *ast.ReturnStmt:
		b.add(x)
		// Deferred calls run after the return operands are evaluated and
		// before control leaves the function.
		b.add(&RunDefers{At: x.Pos()})
		b.edge(b.current, b.cfg.Exit)
		b.current = b.newBlock("unreachable")
	case *ast.EmptyStmt:
		// nothing
	default:
		// Straight-line statements: assignments, declarations, expression
		// statements, sends, defers, go statements, inc/dec.
		b.add(s)
	}
}

// switchClauses builds the clause blocks of a switch/type-switch body.
// caseNodes appends a clause's guard expressions to its block.
func (b *cfgBuilder) switchClauses(body *ast.BlockStmt, caseNodes func(*ast.CaseClause, *Block)) {
	exit := b.newBlock("switch.exit")
	label := b.takeLabel(exit, nil)
	from := b.current

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	blocks := make([]*Block, 0, len(body.List))
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		blk := b.newBlock("switch.case")
		b.edge(from, blk)
		caseNodes(cc, blk)
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, cc)
		blocks = append(blocks, blk)
	}
	if !hasDefault {
		b.edge(from, exit)
	}
	b.loops = append(b.loops, loopCtx{brk: exit, label: label})
	for i, cc := range clauses {
		b.current = blocks[i]
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = exit
		}
		for _, inner := range cc.Body {
			b.stmt(inner)
		}
		b.edge(b.current, exit)
	}
	b.fallthroughTo = nil
	b.loops = b.loops[:len(b.loops)-1]
	b.current = exit
}

// branch wires break/continue/goto/fallthrough edges.
func (b *cfgBuilder) branch(x *ast.BranchStmt) {
	dead := func() { b.current = b.newBlock("unreachable") }
	switch x.Tok {
	case token.BREAK:
		if x.Label != nil {
			if li := b.label(x.Label.Name); li.brk != nil {
				b.edge(b.current, li.brk)
			}
			dead()
			return
		}
		if n := len(b.loops); n > 0 {
			b.edge(b.current, b.loops[n-1].brk)
		}
		dead()
	case token.CONTINUE:
		if x.Label != nil {
			if li := b.label(x.Label.Name); li.cont != nil {
				b.edge(b.current, li.cont)
			}
			dead()
			return
		}
		// The innermost *continuable* context (switches in between are
		// skipped, as the language does).
		for i := len(b.loops) - 1; i >= 0; i-- {
			if b.loops[i].cont != nil {
				b.edge(b.current, b.loops[i].cont)
				break
			}
		}
		dead()
	case token.GOTO:
		if x.Label != nil {
			li := b.label(x.Label.Name)
			if li.target == nil {
				// Forward goto: create the target now; the LabeledStmt
				// will jump into it when reached.
				li.target = b.newBlock("label." + x.Label.Name)
			}
			b.edge(b.current, li.target)
		}
		dead()
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.edge(b.current, b.fallthroughTo)
		}
		dead()
	}
}
