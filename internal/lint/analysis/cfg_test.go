package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFor parses src as the body of one function and builds its CFG.
func buildFor(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f(a, b, c int, cond, cond2 bool, xs []int, m map[int]int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// reachable returns the set of block indices reachable from the entry.
func reachable(g *CFG) map[int]bool {
	seen := map[int]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// summarize renders the reachable CFG structurally for shape assertions.
func summarize(g *CFG) string {
	seen := reachable(g)
	var b strings.Builder
	for _, blk := range g.Blocks {
		if !seen[blk.Index] {
			continue
		}
		fmt.Fprintf(&b, "%d:%s(%d)->[", blk.Index, blk.Kind, len(blk.Nodes))
		for i, s := range blk.Succs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s.Index)
		}
		b.WriteString("] ")
	}
	return strings.TrimSpace(b.String())
}

func TestCFGStraightLine(t *testing.T) {
	g := buildFor(t, "a = 1\nb = 2")
	// Both statements plus the synthetic RunDefers at the fall-off end.
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry should hold both statements and RunDefers, got %d: %s", len(g.Entry.Nodes), summarize(g))
	}
	if _, ok := g.Entry.Nodes[2].(*RunDefers); !ok {
		t.Fatalf("last entry node should be RunDefers, got %T", g.Entry.Nodes[2])
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry should flow straight to exit: %s", summarize(g))
	}
}

func TestCFGIfElseJoin(t *testing.T) {
	g := buildFor(t, "if cond {\n a = 1\n} else {\n a = 2\n}\na = 3")
	// The join block must have both the then and else blocks as
	// predecessors and carry the trailing statement.
	var join *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "if.join" {
			join = blk
		}
	}
	if join == nil {
		t.Fatalf("no join block: %s", summarize(g))
	}
	preds := 0
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s == join {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Fatalf("join should have 2 predecessors, got %d: %s", preds, summarize(g))
	}
	// Trailing statement plus the fall-off RunDefers.
	if len(join.Nodes) != 2 {
		t.Fatalf("join should carry the trailing statement: %s", summarize(g))
	}
}

func TestCFGShortCircuitCond(t *testing.T) {
	// `if cond && cond2` must place cond2 in its own block reached only on
	// cond's true edge.
	g := buildFor(t, "if cond && cond2 {\n a = 1\n}")
	var and *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "cond.and" {
			and = blk
		}
	}
	if and == nil {
		t.Fatalf("no cond.and block: %s", summarize(g))
	}
	if len(and.Nodes) != 1 {
		t.Fatalf("cond.and should hold the right operand only: %s", summarize(g))
	}
	// Entry (holding cond) branches to cond.and on true and if.join on
	// false — never straight into the then block.
	foundEdge := false
	for _, s := range g.Entry.Succs {
		if s == and {
			foundEdge = true
		}
		if s.Kind == "if.then" {
			t.Fatalf("left operand must not reach then directly: %s", summarize(g))
		}
	}
	if !foundEdge {
		t.Fatalf("entry should branch into cond.and: %s", summarize(g))
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	g := buildFor(t, "for a = 0; a < b; a = a + 1 {\n c = c + 1\n}\nb = 9")
	var head, post, exit *Block
	for _, blk := range g.Blocks {
		switch blk.Kind {
		case "for.head":
			head = blk
		case "for.post":
			post = blk
		case "for.exit":
			exit = blk
		}
	}
	if head == nil || post == nil || exit == nil {
		t.Fatalf("missing loop blocks: %s", summarize(g))
	}
	// The post block must loop back to the head.
	back := false
	for _, s := range post.Succs {
		if s == head {
			back = true
		}
	}
	if !back {
		t.Fatalf("post should edge back to head: %s", summarize(g))
	}
	// Trailing statement plus the fall-off RunDefers.
	if len(exit.Nodes) != 2 {
		t.Fatalf("exit should carry the statement after the loop: %s", summarize(g))
	}
}

func TestCFGRangeLoop(t *testing.T) {
	g := buildFor(t, "for i := range xs {\n a = i\n}")
	var head *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "range.head" {
			head = blk
		}
	}
	if head == nil {
		t.Fatalf("no range.head: %s", summarize(g))
	}
	if len(head.Nodes) != 1 {
		t.Fatalf("range.head should carry the RangeStmt: %s", summarize(g))
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Fatalf("range.head node should be the RangeStmt, got %T", head.Nodes[0])
	}
	// Head branches to both body and exit (zero-iteration path).
	if len(head.Succs) != 2 {
		t.Fatalf("range.head should have body and exit successors: %s", summarize(g))
	}
}

func TestCFGSwitchDefault(t *testing.T) {
	// With a default clause the dispatch block must NOT edge to the exit
	// directly; without one it must.
	withDefault := buildFor(t, "switch a {\ncase 1:\n b = 1\ndefault:\n b = 2\n}")
	without := buildFor(t, "switch a {\ncase 1:\n b = 1\n}")
	exitDirect := func(g *CFG) bool {
		for _, s := range g.Entry.Succs {
			if s.Kind == "switch.exit" {
				return true
			}
		}
		return false
	}
	if exitDirect(withDefault) {
		t.Fatalf("default-bearing switch should not fall to exit from dispatch: %s", summarize(withDefault))
	}
	if !exitDirect(without) {
		t.Fatalf("defaultless switch must fall to exit from dispatch: %s", summarize(without))
	}
}

func TestCFGFallthrough(t *testing.T) {
	g := buildFor(t, "switch a {\ncase 1:\n b = 1\n fallthrough\ncase 2:\n b = 2\n}")
	var cases []*Block
	for _, blk := range g.Blocks {
		if blk.Kind == "switch.case" {
			cases = append(cases, blk)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks: %s", summarize(g))
	}
	linked := false
	for _, s := range cases[0].Succs {
		if s == cases[1] {
			linked = true
		}
	}
	if !linked {
		t.Fatalf("fallthrough should edge case 1 into case 2: %s", summarize(g))
	}
}

func TestCFGBreakContinue(t *testing.T) {
	g := buildFor(t, "for cond {\n if cond2 {\n  break\n }\n if a < b {\n  continue\n }\n c = 1\n}")
	var head, exit *Block
	for _, blk := range g.Blocks {
		switch blk.Kind {
		case "for.head":
			head = blk
		case "for.exit":
			exit = blk
		}
	}
	headPreds, exitPreds := 0, 0
	for _, blk := range reachableBlocks(g) {
		for _, s := range blk.Succs {
			if s == head {
				headPreds++
			}
			if s == exit {
				exitPreds++
			}
		}
	}
	// head: entry jump, continue, loop-tail back edge. exit: cond false,
	// break.
	if headPreds < 3 {
		t.Fatalf("continue should add a head predecessor (got %d): %s", headPreds, summarize(g))
	}
	if exitPreds < 2 {
		t.Fatalf("break should add an exit predecessor (got %d): %s", exitPreds, summarize(g))
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildFor(t, "L:\nfor cond {\n for cond2 {\n  break L\n }\n}\na = 1")
	// The inner loop's break L must edge to the OUTER loop's exit.
	var outerExit *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "for.exit" && len(blk.Nodes) > 0 {
			outerExit = blk // the outer exit carries the trailing statement
		}
	}
	if outerExit == nil {
		t.Fatalf("no outer exit carrying trailing stmt: %s", summarize(g))
	}
	// Find the block holding the inner cond; its body block must reach
	// outerExit without passing the outer head.
	found := false
	for _, blk := range reachableBlocks(g) {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.BranchStmt); ok {
				t.Fatalf("branch statements should not appear as nodes")
			}
		}
		for _, s := range blk.Succs {
			if s == outerExit && blk.Kind == "for.body" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("break L should edge the inner body to the outer exit: %s", summarize(g))
	}
}

func TestCFGReturnUnreachable(t *testing.T) {
	g := buildFor(t, "return\na = 1")
	seen := reachable(g)
	for _, blk := range g.Blocks {
		if blk.Kind == "unreachable" && seen[blk.Index] {
			t.Fatalf("unreachable block is reachable: %s", summarize(g))
		}
		if blk.Kind == "unreachable" {
			// The dead block holds the statement after the return plus the
			// fall-off RunDefers the builder appends at the body end.
			if len(blk.Nodes) == 0 {
				t.Fatalf("statement after return should land in the dead block: %s", summarize(g))
			}
			if _, ok := blk.Nodes[0].(*ast.AssignStmt); !ok {
				t.Fatalf("dead block should start with the trailing statement, got %T", blk.Nodes[0])
			}
		}
	}
	if !seen[g.Exit.Index] {
		t.Fatalf("return should reach exit: %s", summarize(g))
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildFor(t, "select {\ncase v := <-ch:\n a = v\ncase ch <- a:\n b = 1\n}")
	cases := 0
	for _, blk := range reachableBlocks(g) {
		if blk.Kind == "select.case" {
			cases++
		}
	}
	if cases != 2 {
		t.Fatalf("want 2 select case blocks: %s", summarize(g))
	}
}

func TestCFGGotoForward(t *testing.T) {
	g := buildFor(t, "if cond {\n goto done\n}\na = 1\ndone:\nb = 2")
	seen := reachable(g)
	var target *Block
	for _, blk := range g.Blocks {
		if blk.Kind == "label.done" {
			target = blk
		}
	}
	if target == nil || !seen[target.Index] {
		t.Fatalf("goto target should exist and be reachable: %s", summarize(g))
	}
}

// runDefersIn collects the RunDefers nodes of a block.
func runDefersIn(blk *Block) []*RunDefers {
	var out []*RunDefers
	for _, n := range blk.Nodes {
		if rd, ok := n.(*RunDefers); ok {
			out = append(out, rd)
		}
	}
	return out
}

func TestCFGDeferStaysInBlock(t *testing.T) {
	// A DeferStmt is an ordinary block node — registration is path-sensitive
	// — and the synthetic RunDefers marks the exit point after it.
	g := buildFor(t, "defer func() {\n a = 1\n}()\nb = 2")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry should hold defer, statement, RunDefers: %s", summarize(g))
	}
	if _, ok := g.Entry.Nodes[0].(*ast.DeferStmt); !ok {
		t.Fatalf("first node should be the DeferStmt, got %T", g.Entry.Nodes[0])
	}
	if len(runDefersIn(g.Entry)) != 1 {
		t.Fatalf("entry should end with one RunDefers: %s", summarize(g))
	}
}

func TestCFGMultipleDefersKeepOrder(t *testing.T) {
	g := buildFor(t, "defer func() {\n a = 1\n}()\ndefer func() {\n a = 2\n}()\nb = 3")
	var defers []*ast.DeferStmt
	for _, n := range g.Entry.Nodes {
		if d, ok := n.(*ast.DeferStmt); ok {
			defers = append(defers, d)
		}
	}
	if len(defers) != 2 {
		t.Fatalf("want both DeferStmts in the entry block: %s", summarize(g))
	}
	if defers[0].Pos() >= defers[1].Pos() {
		t.Fatalf("defer registration order must be source order")
	}
}

func TestCFGRunDefersPerReturn(t *testing.T) {
	// Every return gets its own RunDefers directly after the ReturnStmt, so
	// path-sensitive defer stacks apply per exit path.
	g := buildFor(t, "if cond {\n defer func() {\n  a = 1\n }()\n return\n}\nb = 2")
	returns := 0
	for _, blk := range reachableBlocks(g) {
		for i, n := range blk.Nodes {
			if _, ok := n.(*ast.ReturnStmt); !ok {
				continue
			}
			returns++
			if i+1 >= len(blk.Nodes) {
				t.Fatalf("return should be followed by RunDefers in its block: %s", summarize(g))
			}
			if _, ok := blk.Nodes[i+1].(*RunDefers); !ok {
				t.Fatalf("node after return should be RunDefers, got %T", blk.Nodes[i+1])
			}
		}
	}
	if returns != 1 {
		t.Fatalf("want 1 reachable return, got %d: %s", returns, summarize(g))
	}
	// The fall-off path has its own RunDefers too.
	falloff := 0
	for _, blk := range reachableBlocks(g) {
		for _, rd := range runDefersIn(blk) {
			_ = rd
			falloff++
		}
	}
	if falloff != 2 {
		t.Fatalf("want one RunDefers per exit path (return + fall-off), got %d: %s", falloff, summarize(g))
	}
}

func TestCFGDeferInLoopBody(t *testing.T) {
	// A defer inside a loop body registers once per iteration; the builder
	// must keep the DeferStmt in the loop body and must NOT place a
	// RunDefers inside the loop (defers run at function exit, not loop exit).
	g := buildFor(t, "for cond {\n defer func() {\n  a = 1\n }()\n}\nb = 2")
	var body, exit *Block
	for _, blk := range g.Blocks {
		switch blk.Kind {
		case "for.body":
			body = blk
		case "for.exit":
			exit = blk
		}
	}
	if body == nil || exit == nil {
		t.Fatalf("missing loop blocks: %s", summarize(g))
	}
	if len(body.Nodes) != 1 {
		t.Fatalf("loop body should hold exactly the DeferStmt: %s", summarize(g))
	}
	if _, ok := body.Nodes[0].(*ast.DeferStmt); !ok {
		t.Fatalf("loop body node should be the DeferStmt, got %T", body.Nodes[0])
	}
	if len(runDefersIn(body)) != 0 {
		t.Fatalf("no RunDefers inside the loop body: %s", summarize(g))
	}
	if len(runDefersIn(exit)) != 1 {
		t.Fatalf("fall-off RunDefers should sit in the loop exit block: %s", summarize(g))
	}
}

func reachableBlocks(g *CFG) []*Block {
	seen := reachable(g)
	var out []*Block
	for _, blk := range g.Blocks {
		if seen[blk.Index] {
			out = append(out, blk)
		}
	}
	return out
}
