package lint_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/loader"
)

// allocMutations plants allocation bugs into real hot-path sources — the
// regressions alloccheck exists to catch: per-tick buffer resets with a
// fresh make, un-hinted append growth, stray fmt construction, interface
// boxing of scalars, map allocation inside a drain, a field retaining a
// per-tick slice, and a deleted //lint:alloc justification resurrecting
// the finding it covered. One bug per class, spread across the sim, cpu,
// dram, and cxl layers.
func allocMutations() []concMutation {
	return []concMutation{
		{
			name:     "sim-drain-fresh-make-instead-of-reslice",
			file:     "internal/sim/system.go",
			old:      `		s.coreEvents[i] = evs[:0]`,
			new:      `		s.coreEvents[i] = make([]memEvent, 0)`,
			patterns: []string{"coaxial/internal/sim"},
			wantSub:  "escapes (stored into an element)",
		},
		{
			name: "sim-duecores-append-without-hint",
			file: "internal/sim/system.go",
			old:  `	due := s.dueCores[:0]`,
			new:  `	due := []int{}`,
			// Drop the retaining store so the un-hinted growth, not the
			// field escape, is the finding under test.
			second: [2]string{
				"	s.dueCores = due\n",
				"	_ = due\n",
			},
			patterns: []string{"coaxial/internal/sim"},
			wantSub:  "append in a loop grows due, which was created without a capacity hint",
		},
		{
			name: "sim-complete-sprintf-trace",
			file: "internal/sim/system.go",
			old: `		s.val.lc.OnComplete(r, now) //lint:alloc validation hook; allocates only when recording an invariant failure
	}
	if r.Kind == memreq.Write {`,
			new: `		s.val.lc.OnComplete(r, now) //lint:alloc validation hook; allocates only when recording an invariant failure
	}
	_ = fmt.Sprintf("complete %x at %d", r.Addr, now)
	if r.Kind == memreq.Write {`,
			patterns: []string{"coaxial/internal/sim"},
			wantSub:  "call to fmt.Sprintf allocates in hot path",
		},
		{
			name:     "sim-onissue-justification-deleted",
			file:     "internal/sim/system.go",
			old:      `		s.val.lc.OnIssue(r, at) //lint:alloc validation hook; allocates only when recording an invariant failure`,
			new:      `		s.val.lc.OnIssue(r, at)`,
			patterns: []string{"coaxial/internal/sim"},
			wantSub:  "call to OnIssue allocates in hot path",
		},
		{
			name: "cpu-tick-boxes-scalar",
			file: "internal/cpu/core.go",
			old: `	c.lastTick = now
	c.issueDeferred(now)`,
			new: `	c.lastTick = now
	var trace interface{} = now
	_ = trace
	c.issueDeferred(now)`,
			patterns: []string{"coaxial/internal/cpu"},
			wantSub:  "interface boxing in hot path",
		},
		{
			name: "cpu-resolvemiss-map-literal",
			file: "internal/cpu/core.go",
			old: `	s := c.pending[idx]
	last := len(c.pending) - 1`,
			new: `	s := c.pending[idx]
	trace := map[uint64]int64{line: when}
	_ = trace
	last := len(c.pending) - 1`,
			patterns: []string{"coaxial/internal/cpu"},
			wantSub:  "map literal always allocates",
		},
		{
			name: "cpu-rob-alloc-boxes-interprocedurally",
			file: "internal/cpu/core.go",
			old: `	seq := c.tailSeq
	c.tailSeq++`,
			new: `	seq := c.tailSeq
	var dbg interface{} = seq
	_ = dbg
	c.tailSeq++`,
			patterns: []string{"coaxial/internal/cpu"},
			wantSub:  "call to alloc allocates in hot path",
		},
		{
			name: "dram-tick-make-map",
			file: "internal/dram/subchannel.go",
			old: `	// Move due arrivals into the scheduler queues.
	arrived := false`,
			new: `	// Move due arrivals into the scheduler queues.
	seen := make(map[uint64]bool)
	_ = seen
	arrived := false`,
			patterns: []string{"coaxial/internal/dram"},
			wantSub:  "make of a map always allocates",
		},
		{
			name: "dram-arrival-loop-invariant-map",
			file: "internal/dram/subchannel.go",
			old: `		arrived = true
		row, bnk, grp := s.decode(r.Addr)`,
			new: `		arrived = true
		prio := map[int]int{0: 1}
		_ = prio[0]
		row, bnk, grp := s.decode(r.Addr)`,
			patterns: []string{"coaxial/internal/dram"},
			wantSub:  "map literal always allocates",
		},
		{
			name: "cxl-tick-retains-fresh-slice",
			file: "internal/cxl/cxl.go",
			old: `	c.now = now

	// Deliver due responses to the original requesters.`,
			new: `	c.now = now
	c.traceBuf = make([]int64, 0)

	// Deliver due responses to the original requesters.`,
			second: [2]string{
				"	ddr []*dram.Channel\n",
				"	ddr []*dram.Channel\n\ttraceBuf []int64\n",
			},
			patterns: []string{"coaxial/internal/cxl"},
			wantSub:  "escapes (stored into field traceBuf)",
		},
	}
}

func TestAllocCheckMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation suite shells out to go list per case")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allocMutations() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			runConcMutation(t, root, "alloccheck", func() *analysis.Analyzer {
				return lint.NewAllocCheck(lint.DefaultAllocConfig())
			}, m)
		})
	}
}

// mutateAndLint applies one mutation, runs alloccheck alone, and returns
// the diagnostics plus the mutated file contents (for applying fixes).
func mutateAndLint(t *testing.T, root string, m concMutation) ([]analysis.Diagnostic, string, []byte) {
	t.Helper()
	path := filepath.Join(root, m.file)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(orig), m.old) != 1 {
		t.Fatalf("mutation anchor occurs %d times, want 1", strings.Count(string(orig), m.old))
	}
	text := strings.Replace(string(orig), m.old, m.new, 1)
	if m.second[0] != "" {
		if strings.Count(text, m.second[0]) != 1 {
			t.Fatalf("second anchor occurs %d times, want 1", strings.Count(text, m.second[0]))
		}
		text = strings.Replace(text, m.second[0], m.second[1], 1)
	}
	mutated := []byte(text)
	prog, err := loader.LoadOverlay(root, map[string][]byte{path: mutated}, m.patterns...)
	if err != nil {
		t.Fatalf("load with mutation: %v", err)
	}
	diags, err := lint.Run(prog, []*analysis.Analyzer{lint.NewAllocCheck(lint.DefaultAllocConfig())})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}
	return diags, path, mutated
}

// applyFixFor finds the diagnostic matching wantSub, requires it to carry
// a suggested fix, applies the fix against the in-memory mutated file, and
// returns the result.
func applyFixFor(t *testing.T, diags []analysis.Diagnostic, wantSub, path string, content []byte) string {
	t.Helper()
	// Interprocedural summaries repeat the site message inside the caller
	// finding's reason chain; the fix rides on the site finding itself.
	var picked *analysis.Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, wantSub) && diags[i].Fix != nil {
			picked = &diags[i]
			break
		}
	}
	if picked == nil {
		t.Fatalf("no diagnostic containing %q with a suggested fix; got %d diagnostics", wantSub, len(diags))
	}
	files := map[string][]byte{path: content}
	read := func(name string) ([]byte, error) {
		b, ok := files[name]
		if !ok {
			return nil, errors.New("unexpected file " + name)
		}
		return b, nil
	}
	write := func(name string, b []byte) error { files[name] = b; return nil }
	if _, err := analysis.ApplyFixes([]analysis.Diagnostic{*picked}, read, write); err != nil {
		t.Fatalf("applying fix: %v", err)
	}
	return string(files[path])
}

// TestAllocCheckCapacityHintFix: the un-hinted append finding carries an
// edit that sizes the slice to the ranged collection.
func TestAllocCheckCapacityHintFix(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m := concMutation{
		file: "internal/sim/system.go",
		old:  `	due := s.dueCores[:0]`,
		new:  `	due := []int{}`,
		second: [2]string{
			"	s.dueCores = due\n",
			"	_ = due\n",
		},
		patterns: []string{"coaxial/internal/sim"},
	}
	diags, path, mutated := mutateAndLint(t, root, m)
	fixed := applyFixFor(t, diags, "append in a loop grows due", path, mutated)
	want := "due := make([]int, 0, len(s.cores))"
	if !strings.Contains(fixed, want) {
		t.Errorf("capacity-hint fix did not produce %q", want)
	}
}

// TestAllocCheckHoistFix: a loop-invariant read-only map literal inside a
// hot loop gets hoisted above the loop.
func TestAllocCheckHoistFix(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m := concMutation{
		file: "internal/dram/subchannel.go",
		old: `		arrived = true
		row, bnk, grp := s.decode(r.Addr)`,
		new: `		arrived = true
		prio := map[int]int{0: 1}
		_ = prio[0]
		row, bnk, grp := s.decode(r.Addr)`,
		patterns: []string{"coaxial/internal/dram"},
	}
	diags, path, mutated := mutateAndLint(t, root, m)
	fixed := applyFixFor(t, diags, "map literal always allocates", path, mutated)
	// The defining statement moves above the loop; its old line empties.
	hoisted := "prio := map[int]int{0: 1}\n\tfor {"
	if !strings.Contains(fixed, hoisted) {
		t.Errorf("hoist fix did not move the allocation above the loop; got:\n%s",
			excerptAround(fixed, "prio :="))
	}
	if strings.Count(fixed, "prio := map[int]int{0: 1}") != 1 {
		t.Errorf("hoist fix duplicated the allocation:\n%s", excerptAround(fixed, "prio :="))
	}
}

// excerptAround returns a few lines surrounding the first occurrence of
// sub, for failure messages.
func excerptAround(s, sub string) string {
	i := strings.Index(s, sub)
	if i < 0 {
		return "(absent)"
	}
	lo, hi := i-200, i+200
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
