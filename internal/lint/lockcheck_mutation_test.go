package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/loader"
)

// concMutation plants one concurrency or lifetime bug into a real source
// file via the loader's overlay and demands the named analyzer catches it
// at the planted position. The bug classes mirror what the analyzers
// exist for: dropped unlocks, accesses hoisted out of critical sections,
// blocking sends smuggled under a lock, releases reordered before uses,
// and ownership annotations deleted out from under escape sites.
type concMutation struct {
	name string
	// file is repo-relative; old must occur exactly once and is replaced
	// by new.
	file     string
	old, new string
	// second, when non-empty, is a second replacement in the same file.
	second [2]string
	// patterns lists the packages to load (the mutated one last).
	patterns []string
	// wantSub must appear in at least one diagnostic of the analyzer in
	// file.
	wantSub string
}

func lockMutations() []concMutation {
	return []concMutation{
		{
			name: "store-get-unlock-dropped",
			file: "internal/serve/store.go",
			old: `func (st *store) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}`,
			new: `func (st *store) get(id string) (*job, bool) {
	st.mu.Lock()
	j, ok := st.jobs[id]
	return j, ok
}`,
			patterns: []string{"coaxial/internal/serve"},
			wantSub:  "still held when get returns",
		},
		{
			name: "store-create-seq-before-lock",
			file: "internal/serve/store.go",
			old: `	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++`,
			new: `	st.seq++
	st.mu.Lock()
	defer st.mu.Unlock()`,
			patterns: []string{"coaxial/internal/serve"},
			wantSub:  "write of seq requires mu, which is not held",
		},
		{
			name: "store-markrunning-double-lock",
			file: "internal/serve/store.go",
			old: `	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning`,
			new: `	st.mu.Lock()
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning`,
			patterns: []string{"coaxial/internal/serve"},
			wantSub:  "may already be held (self-deadlock)",
		},
		{
			name: "store-notepoint-lock-dropped",
			file: "internal/serve/store.go",
			old: `func (st *store) notePoint(j *job, pr PointResult) {
	st.mu.Lock()
	defer st.mu.Unlock()`,
			new: `func (st *store) notePoint(j *job, pr PointResult) {
	defer st.mu.Unlock()`,
			patterns: []string{"coaxial/internal/serve"},
			wantSub:  "Unlock of mu, which is not held",
		},
		{
			name: "store-broadcast-bare-send",
			file: "internal/serve/store.go",
			old: `	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}`,
			new: `	for _, ch := range j.subs {
		ch <- ev
	}`,
			patterns: []string{"coaxial/internal/serve"},
			wantSub:  "channel send while holding mu",
		},
		{
			name: "store-snapshot-helper-before-lock",
			file: "internal/serve/store.go",
			old: `	st.mu.Lock()
	defer st.mu.Unlock()
	return *st.snapshotLocked(j)`,
			new: `	out := *st.snapshotLocked(j)
	st.mu.Lock()
	defer st.mu.Unlock()
	return out`,
			patterns: []string{"coaxial/internal/serve"},
			wantSub:  "call to snapshotLocked requires mu, which is not held",
		},
		{
			name: "server-healthz-read-before-lock",
			file: "internal/serve/server.go",
			old: `	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()`,
			new: `	draining := s.draining
	s.mu.Lock()
	s.mu.Unlock()`,
			patterns: []string{"coaxial/internal/serve"},
			wantSub:  "access to draining requires mu, which is not held",
		},
		{
			name: "runner-warmstats-entries-before-lock",
			file: "runner.go",
			old: `	r.warm.mu.Lock()
	defer r.warm.mu.Unlock()
	return WarmStats{Entries: len(r.warm.entries), Captures: r.warm.captures}`,
			new: `	n := len(r.warm.entries)
	r.warm.mu.Lock()
	defer r.warm.mu.Unlock()
	return WarmStats{Entries: n, Captures: r.warm.captures}`,
			patterns: []string{"coaxial"},
			wantSub:  "access to entries requires mu, which is not held",
		},
	}
}

func handleMutations() []concMutation {
	return []concMutation{
		{
			name: "sim-discard-release-falls-through",
			file: "internal/sim/system.go",
			old: `	if r.Discard {
		s.fpDiscarded++
		s.arena.Release(r)
		return
	}
	core := int(r.Core)`,
			new: `	if r.Discard {
		s.fpDiscarded++
		s.arena.Release(r)
	}
	core := int(r.Core)`,
			patterns: []string{"coaxial/internal/sim"},
			wantSub:  "use of handle after release",
		},
		{
			name: "sim-retired-double-release",
			file: "internal/sim/system.go",
			old: `	if s.val != nil {
		s.val.lc.OnRetire(r)
	}
	s.arena.Release(r)
}`,
			new: `	if s.val != nil {
		s.val.lc.OnRetire(r)
	}
	s.arena.Release(r)
	s.arena.Release(r)
}`,
			patterns: []string{"coaxial/internal/sim"},
			wantSub:  "double release",
		},
		{
			name: "sim-complete-release-before-measuring",
			file: "internal/sim/system.go",
			old: `	s.wakeCore(slot, s.now+1)
	s.fillFromMemory(core, line, dirty, now)`,
			new: `	s.wakeCore(slot, s.now+1)
	s.fillFromMemory(core, line, dirty, now)
	s.arena.Release(r)`,
			patterns: []string{"coaxial/internal/sim"},
			wantSub:  "use of handle after release",
		},
		{
			name: "sim-writeback-escapes-unannotated-field",
			file: "internal/sim/system.go",
			old: `	sliceTile := s.coreTiles[s.llc.SliceOf(addr)]
	s.send(r, ch, now+s.mesh.Latency(sliceTile, s.portTiles[ch]))`,
			new: `	sliceTile := s.coreTiles[s.llc.SliceOf(addr)]
	s.lastWB = r
	s.send(r, ch, now+s.mesh.Latency(sliceTile, s.portTiles[ch]))`,
			second: [2]string{
				"	policy calm.Policy\n",
				"	policy calm.Policy\n\tlastWB *memreq.Request\n",
			},
			patterns: []string{"coaxial/internal/sim"},
			wantSub:  "live handle stored into field lastWB",
		},
		{
			name: "dram-reqqueue-owns-deleted",
			file: "internal/dram/subchannel.go",
			old: `	keys []entryKey
	//lint:owns popped on completion and released by the completer or the retired drain
	reqs []*memreq.Request`,
			new: `	keys []entryKey
	reqs []*memreq.Request`,
			patterns: []string{"coaxial/internal/dram"},
			wantSub:  "live handle stored into field reqs",
		},
		{
			name: "cxl-retired-owns-deleted",
			file: "internal/cxl/cxl.go",
			old: `	//lint:owns handed to the owning System's retired drain by DrainRetired, which releases them
	retired []*memreq.Request`,
			new:      `	retired []*memreq.Request`,
			patterns: []string{"coaxial/internal/cxl"},
			wantSub:  "live handle stored into field retired",
		},
		{
			name: "validate-reads-owns-deleted",
			file: "internal/validate/lifecycle.go",
			old: `	//lint:owns tracking keys only; entries are deleted on completion/retire, never dereferenced after release
	reads map[*memreq.Request]struct{}`,
			new:      `	reads map[*memreq.Request]struct{}`,
			patterns: []string{"coaxial/internal/validate"},
			wantSub:  "live handle stored into field reads",
		},
	}
}

// runConcMutation applies one mutation and runs a single analyzer over the
// overlay, demanding a diagnostic containing wantSub in the mutated file.
func runConcMutation(t *testing.T, root, analyzerName string, mk func() *analysis.Analyzer, m concMutation) {
	t.Helper()
	path := filepath.Join(root, m.file)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(orig)
	if strings.Count(src, m.old) != 1 {
		t.Fatalf("mutation anchor occurs %d times in %s, want 1:\n%s",
			strings.Count(src, m.old), m.file, m.old)
	}
	mutated := strings.Replace(src, m.old, m.new, 1)
	if m.second[0] != "" {
		if strings.Count(mutated, m.second[0]) != 1 {
			t.Fatalf("second anchor occurs %d times in %s, want 1:\n%s",
				strings.Count(mutated, m.second[0]), m.file, m.second[0])
		}
		mutated = strings.Replace(mutated, m.second[0], m.second[1], 1)
	}

	prog, err := loader.LoadOverlay(root,
		map[string][]byte{path: []byte(mutated)}, m.patterns...)
	if err != nil {
		t.Fatalf("load with mutation: %v", err)
	}
	diags, err := lint.Run(prog, []*analysis.Analyzer{mk()})
	if err != nil {
		t.Fatalf("lint run: %v", err)
	}

	var hit bool
	var inFile []string
	for _, d := range diags {
		if d.Analyzer != analyzerName || !strings.HasSuffix(d.Pos.Filename, m.file) {
			continue
		}
		inFile = append(inFile, d.String())
		if strings.Contains(d.Message, m.wantSub) {
			hit = true
		}
	}
	if !hit {
		t.Errorf("mutation not caught: want a %s diagnostic containing %q in %s; got %d in file:\n%s",
			analyzerName, m.wantSub, m.file, len(inFile), strings.Join(inFile, "\n"))
		for _, d := range diags {
			t.Logf("all: %s", d)
		}
	}
}

func TestLockCheckMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation suite shells out to go list per case")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range lockMutations() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			runConcMutation(t, root, "lockcheck", func() *analysis.Analyzer {
				return lint.NewLockCheck(lint.DefaultLockConfig())
			}, m)
		})
	}
}

func TestHandleCheckMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation suite shells out to go list per case")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range handleMutations() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			runConcMutation(t, root, "handlecheck", func() *analysis.Analyzer {
				return lint.NewHandleCheck(lint.DefaultHandleConfig())
			}, m)
		})
	}
}
