package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/loader"
)

// unitMutation plants one dimension bug into a real simulator source file
// via the loader's overlay and demands that unitcheck catches it. The
// mutations mirror the bug classes the analyzer exists for: dropped
// conversions, doubled conversions, swapped arguments, and raw casts
// smuggling ns values into cycle-valued state.
type unitMutation struct {
	name string
	// file is repo-relative; old must occur exactly once and is replaced
	// by new.
	file     string
	old, new string
	// extra packages to list alongside the mutated one so overlay-added
	// imports resolve from source (dependencies before importers).
	patterns []string
	// wantSub must appear in at least one unitcheck diagnostic in file.
	wantSub string
}

func unitMutations() []unitMutation {
	return []unitMutation{
		{
			name: "cxl-port-conversion-dropped",
			file: "internal/cxl/cxl.go",
			old:  "func (p LinkParams) portCycles() int64 { return clock.Cycles(p.PortNS) }",
			new:  "func (p LinkParams) portCycles() int64 { return int64(p.PortNS) }",
			patterns: []string{"coaxial/internal/cxl"},
			wantSub:  "declared cycles, got ns",
		},
		{
			name: "cxl-complete-raw-portns",
			file: "internal/cxl/cxl.go",
			old:  "ready := now + c.port\n\tstart := ready",
			new:  "ready := now + int64(c.cfg.Link.PortNS)\n\tstart := ready",
			patterns: []string{"coaxial/internal/cxl"},
			wantSub:  "cross-dimension arithmetic: cycles + ns",
		},
		{
			name: "cxl-enqueue-compare-ns",
			file: "internal/cxl/cxl.go",
			old:  "if at < c.now {",
			new:  "if at < int64(clock.NS(c.now)) {",
			patterns: []string{"coaxial/internal/cxl"},
			wantSub:  "comparing cycles to ns",
		},
		{
			name: "cxl-serialization-args-swapped",
			file: "internal/cxl/cxl.go",
			old:  "return clock.SerializationCycles(memreq.LineSize, p.RXGoodputGBs)",
			new:  "return clock.SerializationCycles(int(p.RXGoodputGBs), float64(memreq.LineSize))",
			patterns: []string{"coaxial/internal/cxl"},
			wantSub:  "is GB/s, parameter is declared bytes",
		},
		{
			name: "dram-rcd-double-converted",
			file: "internal/dram/subchannel.go",
			old:  "import (\n\t\"math\"\n\t\"math/bits\"\n\n\t\"coaxial/internal/memreq\"\n)",
			new:  "import (\n\t\"math\"\n\t\"math/bits\"\n\n\t\"coaxial/internal/clock\"\n\t\"coaxial/internal/memreq\"\n)",
			patterns: []string{"coaxial/internal/clock", "coaxial/internal/dram"},
			wantSub:  "cross-dimension arithmetic: cycles + ns",
		},
		{
			name: "noc-latency-returns-ns",
			file: "internal/noc/noc.go",
			old:  "package noc",
			new:  "package noc\n\nimport \"coaxial/internal/clock\"",
			patterns: []string{"coaxial/internal/clock", "coaxial/internal/noc"},
			wantSub:  "return of ns: Latency is declared to return cycles",
		},
		{
			name: "cpu-token-ready-in-ns",
			file: "internal/cpu/core.go",
			old:  "import (\n\t\"math\"\n\n\t\"coaxial/internal/memreq\"",
			new:  "import (\n\t\"math\"\n\n\t\"coaxial/internal/clock\"\n\t\"coaxial/internal/memreq\"",
			patterns: []string{"coaxial/internal/clock", "coaxial/internal/cpu"},
			wantSub:  "assigning ns to field tokenReadyAt, which is declared cycles",
		},
		{
			name: "stats-gbs-returns-bytes-per-cycle",
			file: "internal/stats/stats.go",
			old:  "seconds := float64(cycles) / (clock.FreqGHz * 1e9)\n\treturn float64(bytes) / 1e9 / seconds",
			new:  "seconds := float64(cycles) / (clock.FreqGHz * 1e9)\n\t_ = seconds\n\treturn float64(bytes) / float64(cycles)",
			patterns: []string{"coaxial/internal/stats"},
			wantSub:  "return of bytes/cycle: GBs is declared to return GB/s",
		},
		{
			name: "calm-peak-conversion-dropped",
			file: "internal/calm/regulated.go",
			old:  "peakBytesCyc: clock.BytesPerCycle(peakGBs),",
			new:  "peakBytesCyc: peakGBs,",
			patterns: []string{"coaxial/internal/calm"},
			wantSub:  "declared bytes/cycle, got GB/s",
		},
	}
}

// secondEdit covers mutations that need a second replacement beyond the
// import-block edit stored in old/new.
var secondEdit = map[string][2]string{
	"dram-rcd-double-converted": {
		"s.casReady[bnk] = now + s.t.RCD",
		"s.casReady[bnk] = now + int64(clock.NS(s.t.RCD))",
	},
	"noc-latency-returns-ns": {
		"return int64(h) * m.HopCycles",
		"return int64(clock.NS(int64(h) * m.HopCycles))",
	},
	"cpu-token-ready-in-ns": {
		"c.tokenReadyAt = c.computeTokenReady()",
		"c.tokenReadyAt = int64(clock.NS(c.computeTokenReady()))",
	},
}

func TestUnitCheckMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation suite shells out to go list per case")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range unitMutations() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			path := filepath.Join(root, m.file)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(orig)
			if strings.Count(src, m.old) != 1 {
				t.Fatalf("mutation anchor occurs %d times in %s, want 1:\n%s",
					strings.Count(src, m.old), m.file, m.old)
			}
			mutated := strings.Replace(src, m.old, m.new, 1)
			if extra, ok := secondEdit[m.name]; ok {
				if strings.Count(mutated, extra[0]) != 1 {
					t.Fatalf("second anchor occurs %d times in %s, want 1:\n%s",
						strings.Count(mutated, extra[0]), m.file, extra[0])
				}
				mutated = strings.Replace(mutated, extra[0], extra[1], 1)
			}

			prog, err := loader.LoadOverlay(root,
				map[string][]byte{path: []byte(mutated)}, m.patterns...)
			if err != nil {
				t.Fatalf("load with mutation: %v", err)
			}
			diags, err := lint.Run(prog, []*analysis.Analyzer{
				lint.NewUnitCheck(lint.DefaultUnitConfig()),
			})
			if err != nil {
				t.Fatalf("lint run: %v", err)
			}

			var hit bool
			var inFile []string
			for _, d := range diags {
				if d.Analyzer != "unitcheck" || !strings.HasSuffix(d.Pos.Filename, m.file) {
					continue
				}
				inFile = append(inFile, d.String())
				if strings.Contains(d.Message, m.wantSub) {
					hit = true
				}
			}
			if !hit {
				t.Errorf("mutation not caught: want a unitcheck diagnostic containing %q in %s; got %d in file:\n%s",
					m.wantSub, m.file, len(inFile), strings.Join(inFile, "\n"))
				for _, d := range diags {
					t.Logf("all: %s", d)
				}
			}
		})
	}
}
