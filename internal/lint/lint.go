package lint

import (
	"sort"

	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/loader"
)

// HotPathPackages are the packages the determinism and phase-isolation
// analyzers guard: everything a simulated cycle executes. Reporting and CLI
// code may read the wall clock; these packages may not.
var HotPathPackages = []string{
	"coaxial/internal/sim",
	"coaxial/internal/cpu",
	"coaxial/internal/cache",
	"coaxial/internal/dram",
	"coaxial/internal/cxl",
	"coaxial/internal/calm",
	"coaxial/internal/noc",
	"coaxial/internal/memreq",
	"coaxial/internal/clock",
	"coaxial/internal/rack",
	// The validation harness is not ticked per cycle, but its reports are
	// part of a run's reproducible output, so it obeys the same rules.
	"coaxial/internal/validate",
	// The service layer returns simulated measurements on the wire: no
	// time.Now in result payloads (wall clock enters only through the
	// daemon-injected serve.Clock, stamping job metadata) and no
	// order-sensitive map iteration in responses, so identical jobs are
	// byte-identical across runs (TestWireGolden).
	"coaxial/internal/serve",
}

// StatePackages hold mutable simulator state observers must never write.
var StatePackages = []string{
	"coaxial/internal/sim",
	"coaxial/internal/cpu",
	"coaxial/internal/cache",
	"coaxial/internal/dram",
	"coaxial/internal/cxl",
	"coaxial/internal/calm",
	"coaxial/internal/noc",
	"coaxial/internal/memreq",
	"coaxial/internal/rack",
}

// Suite returns the coaxlint analyzers configured for this repository, in
// run order (facts-only passes first).
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NewPurity(),
		NewDeterminism(HotPathPackages),
		NewPhaseIsolation(HotPathPackages, []string{
			"coaxial/internal/sim.workerPool.run",
			"coaxial/internal/rack.workerPool.run",
		}),
		NewCounters(CounterConfig{
			CounterTypes: []string{
				"coaxial/internal/stats.Histogram",
				"coaxial/internal/stats.Breakdown",
				"coaxial/internal/stats.Bandwidth",
				"coaxial/internal/stats.Welford",
				"coaxial/internal/dram.Counters",
				"coaxial/internal/cache.Stats",
				"coaxial/internal/cpu.Stats",
				"coaxial/internal/calm.Decisions",
			},
			ResultType: "coaxial/internal/sim.Result",
		}),
		NewObservers(ObserverConfig{
			Interfaces:    []string{"coaxial/internal/dram.CommandObserver"},
			HookTypes:     []string{"coaxial/internal/validate.Lifecycle"},
			StatePackages: StatePackages,
		}),
		NewUnitCheck(DefaultUnitConfig()),
		NewLockCheck(DefaultLockConfig()),
		NewHandleCheck(DefaultHandleConfig()),
		NewAllocCheck(DefaultAllocConfig()),
	}
}

// DirectiveNames collects the legitimate //lint: directive vocabulary of an
// analyzer set: the generic "ignore" suppression plus every analyzer's
// dedicated directives and annotations. The second map holds the valid
// //lint:ignore targets (analyzer names).
func DirectiveNames(analyzers []*analysis.Analyzer) (known, names map[string]bool) {
	known = map[string]bool{"ignore": true}
	names = map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
		for _, d := range a.Directives {
			known[d] = true
		}
		for _, d := range a.Annotations {
			known[d] = true
		}
	}
	return known, names
}

// Run executes the analyzers over a loaded program in dependency order,
// sharing one fact store, and returns the diagnostics of target packages
// sorted by position.
func Run(prog *loader.Program, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	facts := analysis.NewFactStore()
	known, names := DirectiveNames(analyzers)
	var diags []analysis.Diagnostic
	for _, pkg := range prog.Packages {
		if pkg.Target {
			diags = append(diags, analysis.CheckDirectives(prog.Fset, pkg.Files, known, names)...)
		}
		for _, a := range analyzers {
			report := func(d analysis.Diagnostic) {
				if pkg.Target && !a.FactsOnly {
					diags = append(diags, d)
				}
			}
			pass := analysis.NewPass(a, prog.Fset, pkg.Files, pkg.Types, pkg.Info,
				prog.ModulePath, facts, report)
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool { return diagLess(diags[i], diags[j]) })
}

func diagLess(a, b analysis.Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
