package lint_test

import (
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/analysistest"
)

// fixtureUnitConfig rebinds the dimension seeds to the hermetic unitfix
// fixture package: the same conventions as the repository configuration,
// with the declaration table pointing at the fixture's stand-in
// conversions.
func fixtureUnitConfig() lint.UnitConfig {
	cfg := lint.DefaultUnitConfig()
	cfg.Scope = []string{"unitfix"}
	cfg.Decls = map[string]string{
		"unitfix.FreqGHz":     "GHz",
		"unitfix.toCycles":    "ns -> cycles",
		"unitfix.toNS":        "cycles -> ns",
		"unitfix.hopCycles":   "-> cycles",
		"unitfix.Timing.*":    "cycles",
		"unitfix.Link.PortNS": "ns",
	}
	return cfg
}

func TestUnitCheck(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{
		lint.NewUnitCheck(fixtureUnitConfig()),
	}, "unitfix")
}
