package lint

import (
	"go/ast"
	"go/types"

	"coaxial/internal/lint/analysis"
)

// NewPhaseIsolation returns the analyzer guarding the parallel tick phases
// of sim.System.step: the function literals handed to the worker pool (and
// any goroutine bodies in scope packages) may only write state derived from
// their own worker index — the structural invariant TestParallelTickRace
// verifies probabilistically at runtime.
//
// spawners lists the pool entry points as "pkgpath.Recv.Name" (e.g.
// "coaxial/internal/sim.workerPool.run"); the last func-literal argument of
// a spawner call is treated as a worker body whose first int parameter is
// the worker index. Inside a worker body the analyzer allows:
//
//   - writes to locals declared inside the literal;
//   - writes whose target path is indexed by the worker index or by a
//     local derived from it (i := due[k]);
//   - method calls whose receiver path is index-derived (s.cores[i].Tick)
//     or rooted at a local;
//   - calls to write-free functions (purity facts) and to the stdlib;
//   - channel sends (synchronization is the point of a send).
//
// Everything else — a write to a captured field, a call to a mutating
// method on shared state — is exactly the cross-phase race the runtime
// equivalence matrix can only catch probabilistically, and is flagged.
func NewPhaseIsolation(scope, spawners []string) *analysis.Analyzer {
	spawnSet := map[string]bool{}
	for _, s := range spawners {
		spawnSet[s] = true
	}
	a := &analysis.Analyzer{
		Name: "phaseiso",
		Doc:  "restricts parallel tick-phase workers to state derived from their own worker index",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !pathPrefixes(pass.Pkg.Path(), scope) {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					if fn := calleeOf(pass.TypesInfo, x); fn != nil && spawnSet[funcQName(fn)] {
						if lit := lastFuncLit(x); lit != nil {
							checkWorkerBody(pass, lit, workerIndexParam(pass, lit))
						}
					}
				case *ast.GoStmt:
					if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
						checkWorkerBody(pass, lit, nil)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// lastFuncLit returns the trailing function-literal argument of a call.
func lastFuncLit(call *ast.CallExpr) *ast.FuncLit {
	if len(call.Args) == 0 {
		return nil
	}
	lit, _ := call.Args[len(call.Args)-1].(*ast.FuncLit)
	return lit
}

// workerIndexParam returns the object of the literal's first parameter
// (the worker index by the pool.run convention), or nil.
func workerIndexParam(pass *analysis.Pass, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[params.List[0].Names[0]]
}

// checkWorkerBody applies the isolation rules to one worker literal.
func checkWorkerBody(pass *analysis.Pass, lit *ast.FuncLit, indexParam types.Object) {
	info := pass.TypesInfo

	// derived tracks the worker index and locals computed from it; a single
	// pre-order pass matches source order closely enough for the
	// straight-line worker bodies this guards.
	derived := map[types.Object]bool{}
	if indexParam != nil {
		derived[indexParam] = true
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if asg, ok := n.(*ast.AssignStmt); ok && usesAnyRHS(info, asg.Rhs, derived) {
			for _, lhs := range asg.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := objOf(info, id); declaredWithin(obj, lit) {
						derived[obj] = true
					}
				}
			}
		}
		return true
	})

	// pathAllowed reports whether a write/receiver path is worker-private:
	// rooted at a literal-local, or indexed by a derived value.
	pathAllowed := func(e ast.Expr) bool {
		if indexedByLoopVar(info, e, derived) {
			return true
		}
		id := rootIdent(e)
		return id != nil && declaredWithin(objOf(info, id), lit)
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if id.Name == "_" || declaredWithin(objOf(info, id), lit) {
						continue
					}
				}
				if !pathAllowed(lhs) {
					pass.Reportf(lhs.Pos(),
						"parallel phase worker writes shared state not derived from its worker index")
				}
			}
		case *ast.IncDecStmt:
			if !pathAllowed(x.X) {
				pass.Reportf(x.Pos(),
					"parallel phase worker mutates shared state not derived from its worker index")
			}
		case *ast.CallExpr:
			checkWorkerCall(pass, x, pathAllowed)
		case *ast.FuncLit:
			return x == lit // nested literals get their own treatment only via spawner calls
		}
		return true
	})
}

// checkWorkerCall applies the isolation rules to one call inside a worker.
func checkWorkerCall(pass *analysis.Pass, call *ast.CallExpr,
	pathAllowed func(ast.Expr) bool) {
	info := pass.TypesInfo
	if builtinName(info, call) != "" {
		return // append/len/...: mutation shows up as the enclosing assignment
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fn := calleeOf(info, call)
	if fn == nil {
		// Dynamic call: allow when the function value is reached through a
		// local (e.g. a task struct received from a channel); flag captured
		// function values — the analyzer cannot see what they mutate.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && !pathAllowed(sel.X) {
			pass.Reportf(call.Pos(), "parallel phase worker calls a function value reached through shared state")
		}
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if pathAllowed(sel.X) {
				return // per-worker element or local receiver
			}
		}
		if _, isPtr := recv.Type().(*types.Pointer); !isPtr {
			return // value receiver: operates on a copy
		}
	}
	if !pass.InModule(fn.Pkg()) {
		return // stdlib (sync, atomic) is the synchronization vocabulary
	}
	if knownMutating(pass, fn) {
		pass.Reportf(call.Pos(),
			"parallel phase worker calls %s, which mutates state not derived from the worker index", fn.Name())
	}
}
