package lint_test

import (
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/analysistest"
)

// fixtureAllocConfig rebinds the hot-root table to the hermetic allocfix
// fixture: one table-declared root (tableHot) beside the annotation-driven
// ones, with the default always-allocates list unchanged.
func fixtureAllocConfig() lint.AllocConfig {
	cfg := lint.DefaultAllocConfig()
	cfg.HotFuncs = []string{"allocfix.tableHot"}
	return cfg
}

func TestAllocCheck(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{
		lint.NewAllocCheck(fixtureAllocConfig()),
	}, "allocfix")
}
