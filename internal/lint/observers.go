package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"coaxial/internal/lint/analysis"
)

// ObserverConfig parameterizes the observer-purity analyzer.
type ObserverConfig struct {
	// Interfaces lists observation interfaces as "pkgpath.TypeName" (e.g.
	// "coaxial/internal/dram.CommandObserver"). Every method of every type
	// implementing one of them is checked.
	Interfaces []string
	// HookTypes lists concrete observation types checked the same way even
	// though no interface names them (e.g.
	// "coaxial/internal/validate.Lifecycle", whose OnIssue/OnComplete are
	// called from the simulator's sequential drain).
	HookTypes []string
	// StatePackages are the import paths holding simulator state. An
	// observer may read them freely but must not write through a pointer
	// into them nor call one of their mutating methods.
	StatePackages []string
}

// NewObservers returns the analyzer enforcing the harness's
// observation-only guarantee structurally: validation taps must never
// mutate the simulation they watch, or a validated run stops being
// bit-identical to an unvalidated one (the property
// TestValidationObservationOnly pins at runtime).
//
// Inside a checked type's methods the analyzer allows mutation of the
// receiver's own state (that is what an oracle accumulates into) and of
// locals, and calls to write-free functions (purity facts) or the stdlib.
// It flags writes to package-level variables, writes through any pointer
// to a state-package type other than the receiver itself (including
// pointer parameters like *memreq.Request), and calls to mutating
// pointer-receiver methods on state-package types.
func NewObservers(cfg ObserverConfig) *analysis.Analyzer {
	stateSet := map[string]bool{}
	for _, p := range cfg.StatePackages {
		stateSet[p] = true
	}
	hookSet := map[string]bool{}
	for _, t := range cfg.HookTypes {
		hookSet[t] = true
	}
	a := &analysis.Analyzer{
		Name: "observers",
		Doc:  "command observers and validation hooks must not mutate simulator state",
	}
	a.Run = func(pass *analysis.Pass) error {
		ifaces := resolveInterfaces(pass, cfg.Interfaces)
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv == nil {
					continue
				}
				recvNamed := receiverNamed(pass.TypesInfo, fd)
				if recvNamed == nil {
					continue
				}
				if !observedType(recvNamed, ifaces, hookSet) {
					continue
				}
				checkObserverMethod(pass, fd, recvNamed, stateSet)
			}
		}
		return nil
	}
	return a
}

// resolveInterfaces finds the configured interfaces among this package and
// its imports (a type can only implement an interface it can reference).
func resolveInterfaces(pass *analysis.Pass, names []string) []*types.Interface {
	pkgs := append([]*types.Package{pass.Pkg}, pass.Pkg.Imports()...)
	var out []*types.Interface
	for _, qname := range names {
		dot := strings.LastIndex(qname, ".")
		if dot < 0 {
			continue
		}
		pkgPath, typeName := qname[:dot], qname[dot+1:]
		for _, pkg := range pkgs {
			if pkg.Path() != pkgPath {
				continue
			}
			if obj := pkg.Scope().Lookup(typeName); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					out = append(out, iface)
				}
			}
		}
	}
	return out
}

// receiverNamed returns the named type of a method's receiver.
func receiverNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	return namedOf(recv.Type())
}

// observedType reports whether T (or *T) implements one of the interfaces
// or is listed as a hook type.
func observedType(named *types.Named, ifaces []*types.Interface, hookSet map[string]bool) bool {
	if hookSet[typeQName(named)] {
		return true
	}
	ptr := types.NewPointer(named)
	for _, iface := range ifaces {
		if types.Implements(named, iface) || types.Implements(ptr, iface) {
			return true
		}
	}
	return false
}

// checkObserverMethod applies the purity rules to one method body.
func checkObserverMethod(pass *analysis.Pass, fd *ast.FuncDecl, recvNamed *types.Named, stateSet map[string]bool) {
	info := pass.TypesInfo

	// foreignStateDeref returns the offending subexpression if the path of
	// e reaches its target through a pointer to a state-package type other
	// than the receiver's own type.
	foreignStateDeref := func(e ast.Expr) ast.Expr {
		for {
			var base ast.Expr
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				base = x.X
			case *ast.IndexExpr:
				base = x.X
			case *ast.StarExpr:
				base = x.X
			default:
				return nil
			}
			if t := info.TypeOf(base); t != nil {
				if ptr, ok := t.Underlying().(*types.Pointer); ok {
					if named := namedOf(ptr.Elem()); named != nil && named != recvNamed &&
						named.Obj().Pkg() != nil && stateSet[named.Obj().Pkg().Path()] {
						return base
					}
				}
			}
			e = base
		}
	}

	checkWrite := func(lhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				return
			}
			if obj := objOf(info, id); obj != nil && !declaredWithin(obj, fd) {
				pass.Reportf(lhs.Pos(),
					"observer mutates package-level state %q: observation hooks must be effect-free on the simulation", id.Name)
			}
			return // rebinding a local or parameter copy
		}
		if bad := foreignStateDeref(lhs); bad != nil {
			pass.Reportf(lhs.Pos(),
				"observer writes simulator state through %s: observation hooks must not mutate the simulation they watch",
				types.ExprString(bad))
			return
		}
		if id := rootIdent(lhs); id != nil {
			if obj := objOf(info, id); obj != nil && !declaredWithin(obj, fd) {
				pass.Reportf(lhs.Pos(),
					"observer mutates captured or package-level state %q", id.Name)
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(x.X)
		case *ast.SendStmt:
			checkWrite(x.Chan)
		case *ast.CallExpr:
			checkObserverCall(pass, fd, x, recvNamed, stateSet, foreignStateDeref)
		}
		return true
	})
}

// checkObserverCall vets one call inside an observer method.
func checkObserverCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr,
	recvNamed *types.Named, stateSet map[string]bool, foreignStateDeref func(ast.Expr) ast.Expr) {
	info := pass.TypesInfo
	switch builtinName(info, call) {
	case "":
		// Resolved below.
	case "delete", "clear", "copy":
		// Mutating builtins: their target falls under the write rules.
		// Receiver-rooted targets (the observer's own maps) are fine; a
		// foreign pointer deref or captured root is not.
		if len(call.Args) > 0 {
			if bad := foreignStateDeref(call.Args[0]); bad != nil {
				pass.Reportf(call.Pos(),
					"observer mutates simulator state through %s", types.ExprString(bad))
			} else if id := rootIdent(call.Args[0]); id != nil {
				if obj := objOf(info, id); obj != nil && !declaredWithin(obj, fd) {
					pass.Reportf(call.Pos(), "observer mutates captured state %q", id.Name)
				}
			}
		}
		return
	default:
		return
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return // dynamic call (e.g. a walk callback): out of scope
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		recvTypeNamed := namedOf(recv.Type())
		if recvTypeNamed == recvNamed {
			return // the observer's own methods may mutate it
		}
		if _, isPtr := recv.Type().(*types.Pointer); !isPtr {
			return // value receiver: mutates a copy
		}
		if recvTypeNamed != nil && recvTypeNamed.Obj().Pkg() != nil &&
			stateSet[recvTypeNamed.Obj().Pkg().Path()] {
			if knownMutating(pass, fn) {
				pass.Reportf(call.Pos(),
					"observer calls %s.%s, which may mutate simulator state (not write-free)",
					recvTypeNamed.Obj().Name(), fn.Name())
			}
			return
		}
		return
	}
	// Plain function: only module functions handed a pointer into state
	// packages are suspect.
	if !pass.InModule(fn.Pkg()) || !knownMutating(pass, fn) {
		return
	}
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil {
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				if named := namedOf(ptr.Elem()); named != nil && named != recvNamed &&
					named.Obj().Pkg() != nil && stateSet[named.Obj().Pkg().Path()] {
					pass.Reportf(call.Pos(),
						"observer passes simulator state to %s, which is not write-free", fn.Name())
					return
				}
			}
		}
	}
}
