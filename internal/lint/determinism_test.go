package lint_test

import (
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{
		lint.NewDeterminism(nil), // nil scope: every fixture package
	}, "determfix")
}

// TestDeterminismScope checks that out-of-scope packages are untouched: the
// same bad fixture produces nothing when the scope excludes it.
func TestDeterminismScope(t *testing.T) {
	got := 0
	a := lint.NewDeterminism([]string{"some/other/pkg"})
	orig := a.Run
	a.Run = func(p *analysis.Pass) error { got++; return orig(p) }
	analysistest.RunExpectingNone(t, "testdata", []*analysis.Analyzer{a}, "determfix")
	if got == 0 {
		t.Fatal("analyzer never ran")
	}
}
