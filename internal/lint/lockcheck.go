package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"coaxial/internal/lint/analysis"
)

// lockcheck is a flow-sensitive lock-set analysis over the serve layer's
// mutex discipline. Struct fields annotated //lint:guardedby name the mutex
// that must be held to touch them; the analyzer tracks the set of held
// locks through each function's CFG — including defer Unlock via the
// engine's RunDefers protocol — and reports:
//
//   - access to a guarded field without the guard held,
//   - locking a mutex that may already be held (Go mutexes are not
//     reentrant: a second Lock self-deadlocks),
//   - unlocking a mutex that is not held,
//   - an operation that can block indefinitely — a channel send or receive
//     outside a select with a default clause, a range over a channel, or a
//     call on the configured blocking list (engine invocations,
//     WaitGroup.Wait) — while any lock is held,
//   - a lock still held when the function returns (the dropped-Unlock bug).
//
// The lock-set lattice is a pair of sets per mutex object: must-held
// (intersection at joins — the guarantee guarded-field checks ride on) and
// may-held (union at joins — what double-lock and blocking checks ride
// on). Deferred unlocks live on a per-state stack joined by longest common
// prefix, so a defer registered on only one branch releases only on that
// branch's paths.
//
// Interprocedural reasoning uses summaries propagated through the fact
// store in dependency order: a function that touches guarded state (or
// calls something that does) without ever manipulating the guard itself is
// inferred to *require* the lock — call sites must hold it, and the
// function's own body is checked with the requirement assumed. Net
// acquisitions and releases transfer to callers the same way. Lock
// identity is the mutex's declared object (field or variable), which
// conflates instances of one struct type; every lock in this repository is
// effectively a singleton per owning object graph, and the limitation is
// documented in DESIGN §6.
type lockcheckState struct {
	cfg      LockConfig
	blocking map[string]bool
	cfgCache map[*ast.FuncDecl]*analysis.CFG
	// names maps guard objects to their annotated display form
	// ("store.mu"); locks seen only at Lock sites render as the bare field
	// name.
	names map[types.Object]string
}

// LockConfig configures the lockcheck analyzer for a repository.
type LockConfig struct {
	// Scope lists the exact import paths where findings are reported.
	// Unlike prefix-scoped analyzers, lockcheck matches exactly: the root
	// package "coaxial" must not sweep in every subpackage. Facts
	// (annotations, summaries) are computed everywhere regardless.
	Scope []string
	// Blocking lists qualified names (pkgpath.Type.Method or pkgpath.Func)
	// of calls that may block indefinitely — simulation engine entry
	// points, WaitGroup.Wait — and therefore must not run under a lock.
	Blocking []string
}

// DefaultLockConfig returns the lock discipline for this repository: the
// root package (Runner warm cache) and the serve layer, with the
// simulation entry points as the blocking frontier.
func DefaultLockConfig() LockConfig {
	return LockConfig{
		Scope: []string{"coaxial", "coaxial/internal/serve"},
		Blocking: []string{
			"coaxial/internal/serve.Engine.RunPoint",
			"coaxial.Runner.Run",
			"coaxial.Runner.RunMix",
			"coaxial.Runner.RunRack",
			"coaxial.Runner.RunSuite",
			"sync.WaitGroup.Wait",
			"sync.Once.Do",
		},
	}
}

// Fact keys.
const (
	guardFact   = "lockguard" // field *types.Var -> guard types.Object
	lockSumFact = "locksum"   // *types.Func -> lockSummary
)

// lockSummary is a function's interprocedural lock behavior: locks that
// must be held at entry, locks held at exit that were not required, and
// required locks no longer held at exit.
type lockSummary struct {
	requires []types.Object
	acquires []types.Object
	releases []types.Object
}

func sameObjs(a, b []types.Object) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s lockSummary) equal(o lockSummary) bool {
	return sameObjs(s.requires, o.requires) && sameObjs(s.acquires, o.acquires) &&
		sameObjs(s.releases, o.releases)
}

// NewLockCheck builds the lockcheck analyzer from a configuration.
func NewLockCheck(cfg LockConfig) *analysis.Analyzer {
	l := &lockcheckState{
		cfg:      cfg,
		blocking: map[string]bool{},
		cfgCache: map[*ast.FuncDecl]*analysis.CFG{},
		names:    map[types.Object]string{},
	}
	for _, b := range cfg.Blocking {
		l.blocking[b] = true
	}
	return &analysis.Analyzer{
		Name:        "lockcheck",
		Doc:         "flow-sensitive lock-set analysis: unguarded access to //lint:guardedby fields, double-lock, unlock-without-lock, blocking calls under a lock, and locks leaked past return",
		Annotations: []string{"guardedby"},
		Run:         l.run,
	}
}

// exactScope reports whether path is exactly one of the scope entries.
func exactScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s {
			return true
		}
	}
	return false
}

func (l *lockcheckState) run(pass *analysis.Pass) error {
	l.annotate(pass)
	l.inferSummaries(pass)
	if exactScope(pass.Pkg.Path(), l.cfg.Scope) {
		l.reportPackage(pass)
	}
	return nil
}

// annotate resolves //lint:guardedby field annotations to guard objects and
// records them as facts. A malformed reference, an unknown guard, or a
// guard that is not a mutex is itself a finding: an inert annotation is a
// false sense of safety.
func (l *lockcheckState) annotate(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				args, ok := pass.DirectiveOn(field.Pos(), "guardedby")
				if !ok {
					continue
				}
				guard, display, err := l.resolveGuard(pass, st, args)
				if err != nil {
					pass.Reportf(field.Pos(), "bad //lint:guardedby annotation: %v", err)
					continue
				}
				l.names[guard] = display
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						pass.Facts.Set(obj, guardFact, guard)
					}
				}
			}
			return true
		})
	}
}

// resolveGuard resolves a guardedby reference: a bare name is a sibling
// field of the annotated struct; "Type.mu" names a struct type in the same
// package. The guard must be a sync.Mutex or sync.RWMutex.
func (l *lockcheckState) resolveGuard(pass *analysis.Pass, owner *ast.StructType, args string) (types.Object, string, error) {
	recv, name, err := analysis.ParseGuardedBy(args)
	if err != nil {
		return nil, "", err
	}
	findField := func(st *ast.StructType) types.Object {
		for _, f := range st.Fields.List {
			for _, id := range f.Names {
				if id.Name == name {
					return pass.TypesInfo.Defs[id]
				}
			}
		}
		return nil
	}
	var guard types.Object
	display := name
	if recv == "" {
		guard = findField(owner)
		if guard == nil {
			return nil, "", errNoGuard(name, "the annotated struct")
		}
	} else {
		display = recv + "." + name
		tn, _ := pass.Pkg.Scope().Lookup(recv).(*types.TypeName)
		if tn == nil {
			return nil, "", errNoGuard(recv, "this package")
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return nil, "", errNoGuard(name, recv+" (not a struct)")
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				guard = st.Field(i)
			}
		}
		if guard == nil {
			return nil, "", errNoGuard(name, recv)
		}
	}
	if !isMutexType(guard.Type()) {
		return nil, "", errNotMutex(display)
	}
	return guard, display, nil
}

type guardErr string

func (e guardErr) Error() string { return string(e) }

func errNoGuard(name, where string) error {
	return guardErr("guard " + name + " not found in " + where)
}

func errNotMutex(name string) error {
	return guardErr("guard " + name + " is not a sync.Mutex or sync.RWMutex")
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// guardOf returns the guard recorded for a field, or nil.
func (l *lockcheckState) guardOf(pass *analysis.Pass, field types.Object) types.Object {
	v, ok := pass.Facts.Get(field, guardFact)
	if !ok {
		return nil
	}
	g, _ := v.(types.Object)
	return g
}

// lockName renders a lock object for diagnostics.
func (l *lockcheckState) lockName(obj types.Object) string {
	if n, ok := l.names[obj]; ok {
		return n
	}
	return obj.Name()
}

// ---- flow state ----

// heldLock is one element of the held set.
type heldLock struct {
	read bool      // held in RLock mode
	pos  token.Pos // acquisition site; NoPos for entry-assumed requirements
}

// lockOp is one mutex operation (direct or deferred).
type lockOp struct {
	kind string // "lock", "unlock", "rlock", "runlock"
	obj  types.Object
	pos  token.Pos
}

// lockDefer is one registered defer's lock effect, in execution order.
type lockDefer struct {
	ops []lockOp
}

func (d lockDefer) equal(o lockDefer) bool {
	if len(d.ops) != len(o.ops) {
		return false
	}
	for i := range d.ops {
		if d.ops[i] != o.ops[i] {
			return false
		}
	}
	return true
}

// lockEnv is the flow state: must-held (intersection join), may-held
// (union join), and the defer stack (longest-common-prefix join).
type lockEnv struct {
	must   map[types.Object]heldLock
	may    map[types.Object]heldLock
	defers []lockDefer
}

func newLockEnv() *lockEnv {
	return &lockEnv{must: map[types.Object]heldLock{}, may: map[types.Object]heldLock{}}
}

func (e *lockEnv) Clone() analysis.FlowState {
	c := &lockEnv{
		must:   make(map[types.Object]heldLock, len(e.must)),
		may:    make(map[types.Object]heldLock, len(e.may)),
		defers: append([]lockDefer(nil), e.defers...),
	}
	for k, v := range e.must {
		c.must[k] = v
	}
	for k, v := range e.may {
		c.may[k] = v
	}
	return c
}

func (e *lockEnv) Join(other analysis.FlowState) bool {
	o := other.(*lockEnv)
	changed := false
	// must: intersection; a mode disagreement weakens to read-held.
	for k, v := range e.must {
		ov, ok := o.must[k]
		if !ok {
			delete(e.must, k)
			changed = true
			continue
		}
		if ov.read && !v.read {
			v.read = true
			e.must[k] = v
			changed = true
		}
	}
	// may: union; a mode disagreement strengthens to write-held.
	for k, ov := range o.may {
		v, ok := e.may[k]
		if !ok {
			e.may[k] = ov
			changed = true
			continue
		}
		if v.read && !ov.read {
			v.read = false
			e.may[k] = v
			changed = true
		}
	}
	// defers: longest common prefix.
	n := len(e.defers)
	if len(o.defers) < n {
		n = len(o.defers)
	}
	i := 0
	for i < n && e.defers[i].equal(o.defers[i]) {
		i++
	}
	if i < len(e.defers) {
		e.defers = e.defers[:i]
		changed = true
	}
	return changed
}

// ---- per-function analysis ----

// lockPrescan is the syntactic pre-pass over one function body.
type lockPrescan struct {
	// nonBlocking marks comm statements of selects that have a default
	// clause: they poll, they do not block.
	nonBlocking map[ast.Node]bool
	// manipulated records mutex objects this function locks or unlocks
	// itself (directly or via defer); an unheld access to a field guarded
	// by a manipulated mutex is a bug in this function, not an entry
	// requirement.
	manipulated map[types.Object]bool
}

type lockChecker struct {
	l    *lockcheckState
	pass *analysis.Pass
	pre  *lockPrescan
	// fname names the function in diagnostics.
	fname string
	// requires seeds the entry lock set in summary pass 2 and reporting.
	requires []types.Object
	// collect, when non-nil, gathers inferred entry requirements instead
	// of reporting (summary pass 1).
	collect map[types.Object]token.Pos
	// reporting enables diagnostics (the replay pass).
	reporting bool
}

// prescan walks a function body (skipping nested function literals).
func (c *lockChecker) prescan(body *ast.BlockStmt) {
	c.pre = &lockPrescan{nonBlocking: map[ast.Node]bool{}, manipulated: map[types.Object]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				for _, cl := range x.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						c.pre.nonBlocking[cc.Comm] = true
					}
				}
			}
		case *ast.CallExpr:
			if op, ok := c.mutexOp(x); ok {
				c.pre.manipulated[op.obj] = true
			}
		case *ast.DeferStmt:
			for _, op := range c.deferOps(x) {
				c.pre.manipulated[op.obj] = true
			}
		}
		return true
	})
}

// mutexOp recognizes x.Lock()/Unlock()/RLock()/RUnlock() on a sync mutex
// and resolves the lock's identity (the mutex field or variable object).
func (c *lockChecker) mutexOp(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var kind string
	switch sel.Sel.Name {
	case "Lock":
		kind = "lock"
	case "Unlock":
		kind = "unlock"
	case "RLock":
		kind = "rlock"
	case "RUnlock":
		kind = "runlock"
	default:
		return lockOp{}, false
	}
	if !isMutexType(c.pass.TypesInfo.TypeOf(sel.X)) {
		return lockOp{}, false
	}
	obj := c.lockObjOf(sel.X)
	if obj == nil {
		return lockOp{}, false
	}
	return lockOp{kind: kind, obj: obj, pos: call.Pos()}, true
}

// lockObjOf resolves the mutex expression to its declared object: a field
// object for st.mu (however deep the selector chain), a variable object
// for a local or package-level mutex.
func (c *lockChecker) lockObjOf(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(c.pass.TypesInfo, x)
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.StarExpr:
		return c.lockObjOf(x.X)
	}
	return nil
}

// deferOps extracts the lock operations a defer statement will perform at
// function exit: a direct mutex method call, or the mutex calls inside a
// deferred closure in source order.
func (c *lockChecker) deferOps(d *ast.DeferStmt) []lockOp {
	if op, ok := c.mutexOp(d.Call); ok {
		// The mutex operand is evaluated at defer time but the op runs at
		// exit; identity is by object either way.
		op.pos = d.Pos()
		return []lockOp{op}
	}
	lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var ops []lockOp
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, ok := c.mutexOp(call); ok {
				op.pos = d.Pos()
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// transfer is the abstract step for one CFG node.
func (c *lockChecker) transfer(n ast.Node, s analysis.FlowState) {
	env := s.(*lockEnv)
	switch x := n.(type) {
	case *analysis.RunDefers:
		for i := len(env.defers) - 1; i >= 0; i-- {
			for _, op := range env.defers[i].ops {
				c.applyOp(op, env)
			}
		}
		env.defers = nil
	case *ast.DeferStmt:
		env.defers = append(env.defers, lockDefer{ops: c.deferOps(x)})
	case *ast.RangeStmt:
		if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.blockingOp(x.Pos(), "range over channel", env)
			}
		}
		c.scanNode(x.X, env)
	default:
		c.scanNode(n, env)
	}
}

// scanNode walks one straight-line statement or lowered expression,
// firing lock, call, field-access, and channel events in source order.
func (c *lockChecker) scanNode(n ast.Node, env *lockEnv) {
	chanOK := c.pre.nonBlocking[n]
	writes := map[ast.Expr]bool{}
	markWrite := func(e ast.Expr) {
		e = ast.Unparen(e)
		writes[e] = true
		if ix, ok := e.(*ast.IndexExpr); ok {
			writes[ast.Unparen(ix.X)] = true
		}
	}
	switch x := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			markWrite(lhs)
		}
	case *ast.IncDecStmt:
		markWrite(x.X)
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch y := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			c.goStmt(y, env)
			return false
		case *ast.CallExpr:
			c.call(y, env)
		case *ast.SelectorExpr:
			c.fieldAccess(y, writes[y], env)
		case *ast.SendStmt:
			if !chanOK {
				c.blockingOp(y.Arrow, "channel send", env)
			}
		case *ast.UnaryExpr:
			if y.Op == token.ARROW && !chanOK {
				c.blockingOp(y.OpPos, "channel receive", env)
			}
		}
		return true
	})
}

// applyOp applies one mutex operation to the state, reporting double-lock
// and unlock-without-lock in the replay pass.
func (c *lockChecker) applyOp(op lockOp, env *lockEnv) {
	name := c.l.lockName(op.obj)
	switch op.kind {
	case "lock", "rlock":
		if held, ok := env.may[op.obj]; ok && c.reporting {
			// RLock while read-held is legal; everything else can
			// self-deadlock (Go mutexes are not reentrant).
			if !(op.kind == "rlock" && held.read) {
				c.pass.Reportf(op.pos, "%s of %s, which may already be held (self-deadlock)",
					verbFor(op.kind), name)
			}
		}
		h := heldLock{read: op.kind == "rlock", pos: op.pos}
		env.must[op.obj] = h
		env.may[op.obj] = h
	case "unlock", "runlock":
		if _, ok := env.may[op.obj]; !ok && c.reporting {
			c.pass.Reportf(op.pos, "%s of %s, which is not held", verbFor(op.kind), name)
		}
		delete(env.must, op.obj)
		delete(env.may, op.obj)
	}
}

func verbFor(kind string) string {
	switch kind {
	case "lock":
		return "Lock"
	case "rlock":
		return "RLock"
	case "unlock":
		return "Unlock"
	default:
		return "RUnlock"
	}
}

// call handles one call expression: mutex ops, blocking-list calls, and
// callee summaries (requirement checks, acquire/release effects).
func (c *lockChecker) call(call *ast.CallExpr, env *lockEnv) {
	if op, ok := c.mutexOp(call); ok {
		c.applyOp(op, env)
		return
	}
	fn := calleeOf(c.pass.TypesInfo, call)
	if fn == nil {
		return // dynamic call: no effect, benefit of the doubt
	}
	if c.l.blocking[funcQName(fn)] {
		c.blockingOp(call.Pos(), "call to "+fn.Name(), env)
		return
	}
	sum, ok := c.summaryOf(fn)
	if !ok {
		return
	}
	for _, req := range sum.requires {
		if _, held := env.must[req]; held {
			continue
		}
		c.needLock(req, call.Pos(), "call to "+fn.Name()+" requires")
	}
	for _, rel := range sum.releases {
		delete(env.must, rel)
		delete(env.may, rel)
	}
	for _, acq := range sum.acquires {
		h := heldLock{pos: call.Pos()}
		env.must[acq] = h
		env.may[acq] = h
	}
}

// goStmt checks that a spawned goroutine does not require caller-held
// locks (they do not transfer across the spawn), then scans the argument
// expressions, which evaluate synchronously.
func (c *lockChecker) goStmt(g *ast.GoStmt, env *lockEnv) {
	if fn := calleeOf(c.pass.TypesInfo, g.Call); fn != nil && c.reporting {
		if sum, ok := c.summaryOf(fn); ok {
			for _, req := range sum.requires {
				c.pass.Reportf(g.Pos(), "goroutine %s requires %s held, but locks do not transfer to goroutines",
					fn.Name(), c.l.lockName(req))
			}
		}
	}
	for _, arg := range g.Call.Args {
		c.scanNode(arg, env)
	}
}

// fieldAccess checks a read or write of a guarded struct field.
func (c *lockChecker) fieldAccess(sel *ast.SelectorExpr, write bool, env *lockEnv) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	guard := c.l.guardOf(c.pass, field)
	if guard == nil {
		return
	}
	if held, ok := env.must[guard]; ok && (!held.read || !write) {
		return // held in an adequate mode
	}
	what := "access to"
	if write {
		what = "write of"
		// A write needs the guard in write mode; a read-held guard is the
		// only way to get here with must-held.
		if _, ok := env.must[guard]; ok {
			c.report(sel.Pos(), "write of %s with %s held only in read mode",
				field.Name(), c.l.lockName(guard))
			return
		}
	}
	c.needLock(guard, sel.Pos(), what+" "+field.Name()+" requires")
}

// needLock handles a point that needs a lock held: in the collect pass it
// becomes an inferred entry requirement (unless this function manipulates
// the lock itself, which makes the miss a local bug); in the replay pass
// it reports.
func (c *lockChecker) needLock(guard types.Object, pos token.Pos, what string) {
	if c.collect != nil {
		if !c.pre.manipulated[guard] {
			if _, ok := c.collect[guard]; !ok {
				c.collect[guard] = pos
			}
		}
		return
	}
	if c.reporting {
		c.pass.Reportf(pos, "%s %s, which is not held", what, c.l.lockName(guard))
	}
}

func (c *lockChecker) report(pos token.Pos, format string, args ...any) {
	if c.reporting {
		c.pass.Reportf(pos, format, args...)
	}
}

// blockingOp reports an operation that can block indefinitely while any
// lock is held.
func (c *lockChecker) blockingOp(pos token.Pos, what string, env *lockEnv) {
	if !c.reporting || len(env.may) == 0 {
		return
	}
	// Deterministic pick: the earliest-declared held lock.
	var held types.Object
	for obj := range env.may {
		if held == nil || obj.Pos() < held.Pos() {
			held = obj
		}
	}
	c.pass.Reportf(pos, "%s while holding %s: the lock is held across a potentially-blocking operation",
		what, c.l.lockName(held))
}

// summaryOf fetches a callee's lock summary; absent summaries (stdlib,
// facts-partial runs) give the callee the benefit of the doubt.
func (c *lockChecker) summaryOf(fn *types.Func) (lockSummary, bool) {
	v, ok := c.pass.Facts.Get(fn, lockSumFact)
	if !ok {
		return lockSummary{}, false
	}
	sum, _ := v.(lockSummary)
	return sum, true
}

// sortedObjs renders a set deterministically (declaration order).
func sortedObjs(set map[types.Object]token.Pos) []types.Object {
	out := make([]types.Object, 0, len(set))
	for obj := range set {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// ---- package passes ----

// inferSummaries computes lock summaries for this package's functions to a
// fixpoint, so helpers that require a caller-held lock are recognized
// before their callers are checked — within the package by iteration,
// across packages by the driver's dependency order.
func (l *lockcheckState) inferSummaries(pass *analysis.Pass) {
	type cand struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var cands []cand
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			cands = append(cands, cand{decl: fd, obj: obj})
		}
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, cd := range cands {
			sum := l.summarize(pass, cd.decl)
			cur := lockSummary{}
			if v, ok := pass.Facts.Get(cd.obj, lockSumFact); ok {
				cur, _ = v.(lockSummary)
			}
			if !sum.equal(cur) {
				pass.Facts.Set(cd.obj, lockSumFact, sum)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// summarize computes one function's lock summary: pass 1 infers entry
// requirements (unheld guarded accesses of locks the function never
// manipulates), pass 2 re-runs with the requirements assumed and diffs the
// exit state against them.
func (l *lockcheckState) summarize(pass *analysis.Pass, fd *ast.FuncDecl) lockSummary {
	cfg := l.cfgFor(fd)
	c := &lockChecker{l: l, pass: pass, fname: fd.Name.Name}
	c.prescan(fd.Body)

	// Pass 1: collect entry requirements.
	c.collect = map[types.Object]token.Pos{}
	in := analysis.Forward(cfg, newLockEnv(), c.transfer)
	analysis.ReplayBlocks(cfg, in, c.transfer)
	requires := sortedObjs(c.collect)

	// Pass 2: assume the requirements, diff the exit state.
	c.collect = nil
	c.requires = requires
	entry := newLockEnv()
	for _, req := range requires {
		entry.must[req] = heldLock{}
		entry.may[req] = heldLock{}
	}
	in = analysis.Forward(cfg, entry, c.transfer)

	sum := lockSummary{requires: requires}
	exit := in[cfg.Exit.Index]
	if exit == nil {
		return sum // no path reaches the exit
	}
	ex := exit.(*lockEnv)
	reqSet := map[types.Object]bool{}
	for _, r := range requires {
		reqSet[r] = true
	}
	acq := map[types.Object]token.Pos{}
	for obj := range ex.must {
		if !reqSet[obj] {
			acq[obj] = obj.Pos()
		}
	}
	sum.acquires = sortedObjs(acq)
	rel := map[types.Object]token.Pos{}
	for _, r := range requires {
		if _, held := ex.must[r]; !held {
			rel[r] = r.Pos()
		}
	}
	sum.releases = sortedObjs(rel)
	return sum
}

func (l *lockcheckState) cfgFor(fd *ast.FuncDecl) *analysis.CFG {
	cfg := l.cfgCache[fd]
	if cfg == nil {
		cfg = analysis.BuildCFG(fd.Body)
		l.cfgCache[fd] = cfg
	}
	return cfg
}

// reportPackage runs the reporting pass over every function body and
// function literal of an in-scope package.
func (l *lockcheckState) reportPackage(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				var requires []types.Object
				if obj != nil {
					if v, ok := pass.Facts.Get(obj, lockSumFact); ok {
						sum, _ := v.(lockSummary)
						requires = sum.requires
					}
				}
				l.reportFunc(pass, l.cfgFor(fd), fd.Body, fd.Name.Name, requires)
			}
		}
		// Function literals are analyzed as independent functions: their
		// own entry requirements are inferred first, so a closure invoked
		// under a caller-held lock stays quiet. Directly-deferred literals
		// (defer func() { ... }()) are excluded: their lock operations are
		// modeled at the enclosing function's RunDefers point, where the
		// locks they release really are held.
		deferred := map[*ast.FuncLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
					deferred[lit] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && !deferred[lit] {
				cfg := analysis.BuildCFG(lit.Body)
				c := &lockChecker{l: l, pass: pass, fname: "func literal"}
				c.prescan(lit.Body)
				c.collect = map[types.Object]token.Pos{}
				in := analysis.Forward(cfg, newLockEnv(), c.transfer)
				analysis.ReplayBlocks(cfg, in, c.transfer)
				l.reportFunc(pass, cfg, lit.Body, "func literal", sortedObjs(c.collect))
			}
			return true
		})
	}
}

// reportFunc replays one function with diagnostics enabled and checks its
// exit state for leaked locks.
func (l *lockcheckState) reportFunc(pass *analysis.Pass, cfg *analysis.CFG, body *ast.BlockStmt, name string, requires []types.Object) {
	c := &lockChecker{l: l, pass: pass, fname: name, requires: requires}
	c.prescan(body)
	entry := newLockEnv()
	for _, req := range requires {
		entry.must[req] = heldLock{}
		entry.may[req] = heldLock{}
	}
	in := analysis.Forward(cfg, entry, c.transfer)
	c.reporting = true
	analysis.ReplayBlocks(cfg, in, c.transfer)

	exit := in[cfg.Exit.Index]
	if exit == nil {
		return
	}
	ex := exit.(*lockEnv)
	reqSet := map[types.Object]bool{}
	for _, r := range requires {
		reqSet[r] = true
	}
	leaks := map[types.Object]token.Pos{}
	for obj, h := range ex.may {
		if !reqSet[obj] && h.pos.IsValid() {
			leaks[obj] = h.pos
		}
	}
	for _, obj := range sortedObjs(leaks) {
		if _, must := ex.must[obj]; must {
			pass.Reportf(leaks[obj], "%s acquired here is still held when %s returns",
				l.lockName(obj), name)
		} else {
			pass.Reportf(leaks[obj], "%s acquired here may still be held on some return paths of %s",
				l.lockName(obj), name)
		}
	}
}
