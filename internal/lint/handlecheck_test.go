package lint_test

import (
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/analysistest"
)

// fixtureHandleConfig points the arena protocol at the hermetic arena
// stub package the handlefix fixture imports.
func fixtureHandleConfig() lint.HandleConfig {
	return lint.HandleConfig{
		Scope:       []string{"handlefix"},
		HandleTypes: []string{"arena.Request"},
		Allocs:      []string{"arena.Arena.Alloc"},
		Releases:    []string{"arena.Arena.Release"},
		Inspectors:  []string{"arena.Arena.IsLive"},
	}
}

func TestHandleCheck(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{
		lint.NewHandleCheck(fixtureHandleConfig()),
	}, "handlefix")
}
