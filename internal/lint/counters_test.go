package lint_test

import (
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/analysistest"
)

func TestCounters(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{
		lint.NewCounters(lint.CounterConfig{
			CounterTypes: []string{"stats.Histogram"},
			ResultType:   "counterfix.Result",
		}),
	}, "counterfix")
}
