// Package analysistest runs coaxlint analyzers over hermetic fixture
// packages and checks their diagnostics against `// want "regexp"`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// closely enough that the fixtures would port unchanged.
//
// Fixtures live under a testdata directory as src/<importpath>/*.go;
// imports resolve among the fixtures themselves (so a fixture directory
// src/time provides the `time` package its siblings import — stubs, not
// the real stdlib). Every loaded package is analyzed, stubs included: a
// stub that provokes a diagnostic without a matching want fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"coaxial/internal/lint/analysis"
)

// Run loads the fixture package at dir/src/<pkgPath> (plus everything it
// imports from the same tree) and applies the analyzers to every loaded
// package in dependency order, sharing one fact store. Diagnostics must
// match the want expectations one-to-one.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgPath string) {
	t.Helper()
	l, diags := analyze(t, dir, analyzers, pkgPath)

	wants := map[token.Position][]*wantExpectation{}
	for _, pkg := range l.order {
		for _, f := range pkg.files {
			collectWants(t, l.fset, f, wants)
		}
	}

	for _, d := range diags {
		key := token.Position{Filename: d.Pos.Filename, Line: d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	var keys []token.Position
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Filename != keys[j].Filename {
			return keys[i].Filename < keys[j].Filename
		}
		return keys[i].Line < keys[j].Line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matched `want %q`", k.Filename, k.Line, w.re)
			}
		}
	}
}

// RunExpectingNone loads and analyzes like Run but requires zero
// diagnostics, ignoring any want comments in the fixtures — for checking
// that a scoped-out or reconfigured analyzer goes quiet.
func RunExpectingNone(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgPath string) {
	t.Helper()
	_, diags := analyze(t, dir, analyzers, pkgPath)
	for _, d := range diags {
		t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
	}
}

// analyze loads the fixture tree rooted at pkgPath and runs the analyzers
// over every loaded package in dependency order with a shared fact store.
func analyze(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgPath string) (*fixtureLoader, []analysis.Diagnostic) {
	t.Helper()
	l := &fixtureLoader{
		fset: token.NewFileSet(),
		root: filepath.Join(dir, "src"),
		pkgs: map[string]*fixturePkg{},
	}
	if _, err := l.load(pkgPath); err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	facts := analysis.NewFactStore()
	known := map[string]bool{"ignore": true}
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
		for _, d := range a.Directives {
			known[d] = true
		}
		for _, d := range a.Annotations {
			known[d] = true
		}
	}
	var diags []analysis.Diagnostic
	for _, pkg := range l.order {
		diags = append(diags, analysis.CheckDirectives(l.fset, pkg.files, known, names)...)
		for _, a := range analyzers {
			capture := a // diagnostics of facts-only passes are not expected
			report := func(d analysis.Diagnostic) {
				if !capture.FactsOnly {
					diags = append(diags, d)
				}
			}
			pass := analysis.NewPass(a, l.fset, pkg.files, pkg.types, pkg.info, "", facts, report)
			if err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s on %s: %v", a.Name, pkg.path, err)
			}
		}
	}
	return l, diags
}

// wantExpectation is one `// want "re"` pattern awaiting a diagnostic.
type wantExpectation struct {
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses the want comments of one file. An expectation anchors
// to the line its comment starts on.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File, out map[token.Position][]*wantExpectation) {
	t.Helper()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			key := token.Position{Filename: pos.Filename, Line: pos.Line}
			for _, lit := range splitQuoted(m[1]) {
				pattern, err := strconv.Unquote(lit)
				if err != nil {
					t.Fatalf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, lit, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
				}
				out[key] = append(out[key], &wantExpectation{re: re})
			}
		}
	}
}

// splitQuoted extracts the string literals — double- or backtick-quoted,
// as x/tools fixtures write them — from a want comment's argument list.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(s) {
				return out
			}
			out = append(out, s[i:j+1])
			i = j
		case '`':
			j := strings.IndexByte(s[i+1:], '`')
			if j < 0 {
				return out
			}
			out = append(out, s[i:i+j+2])
			i += j + 1
		}
	}
	return out
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// fixtureLoader loads fixture packages recursively, recording dependency
// order (imports before importers) so facts flow like the real driver's.
type fixtureLoader struct {
	fset    *token.FileSet
	root    string
	pkgs    map[string]*fixturePkg
	order   []*fixturePkg
	loading []string
	gc      types.Importer
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %q (%s)", path, strings.Join(l.loading, " -> "))
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &fixturePkg{path: path}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.files = append(pkg.files, f)
	}
	if len(pkg.files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	pkg.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := &types.Config{Importer: importerFunc(l.importFixture)}
	tpkg, err := cfg.Check(path, l.fset, pkg.files, pkg.info)
	if err != nil {
		return nil, err
	}
	pkg.types = tpkg
	l.pkgs[path] = pkg
	l.order = append(l.order, pkg)
	return pkg, nil
}

// importFixture resolves an import: fixture tree first, real stdlib export
// data as a fallback (so fixtures may use e.g. sort without stubbing it —
// but a fixture stub, when present, always wins).
func (l *fixtureLoader) importFixture(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.types, nil
	}
	if l.gc == nil {
		l.gc = importer.ForCompiler(l.fset, "gc", nil)
	}
	return l.gc.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
