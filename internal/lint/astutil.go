// Package lint implements coaxlint: the static analyzers that enforce the
// simulator's determinism, phase-isolation, counter-hygiene, and
// observer-purity invariants (DESIGN.md §6). The analyzers are written
// against the miniature framework in internal/lint/analysis and are run by
// cmd/coaxial-lint, both standalone and as a `go vet -vettool`.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"coaxial/internal/lint/analysis"
)

// rootIdent peels selectors, indexes, parens, and derefs off an expression
// and returns the identifier at its base, or nil (e.g. for a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object (use or definition).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node — the
// cheap way to distinguish locals (including parameters and receivers) from
// captured and package-level variables.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos &&
		node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// usesAny reports whether expr mentions any of the given objects.
func usesAny(info *types.Info, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[objOf(info, id)] {
			found = true
		}
		return !found
	})
	return found
}

// calleeOf resolves a call to its static callee, or nil for dynamic calls
// (function values, interface methods) and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok && sel.Kind() == types.MethodVal {
				return fn
			}
			return nil // field of function type: dynamic
		}
		// Package-qualified function (no selection entry).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
		return id.Name
	}
	return ""
}

// funcQName renders a function or method as "pkgpath.Name" or
// "pkgpath.Recv.Name" (receiver pointer-ness erased), the form the
// analyzer configurations use.
func funcQName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// namedOf unwraps pointers and aliases down to the *types.Named beneath a
// type, or nil.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// typeDeclaredIn reports whether t (after unwrapping pointers) is a named
// type declared in a package whose import path is in paths.
func typeDeclaredIn(t types.Type, paths map[string]bool) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil && paths[named.Obj().Pkg().Path()]
}

// pathPrefixes reports whether path matches any scope entry: equal to it or
// nested beneath it.
func pathPrefixes(path string, scope []string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// knownMutating reports whether fn must be assumed to mutate state: it has
// no write-free fact, and the run's mode could have computed one (in
// facts-partial mode — go vet's one-package-at-a-time protocol — functions
// outside the current package get the benefit of the doubt).
func knownMutating(pass *analysis.Pass, fn *types.Func) bool {
	if pass.Facts.Bool(fn, writeFreeFact) {
		return false
	}
	return !pass.FactsPartial || fn.Pkg() == pass.Pkg
}

// findEnclosingFuncBody returns the innermost function body in file that
// contains pos — used by checks that must look "around" a statement, like
// the sorted-keys idiom search.
func findEnclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil && pos >= fn.Body.Pos() {
				best = fn.Body
			}
		case *ast.FuncLit:
			if pos >= fn.Body.Pos() {
				best = fn.Body
			}
		}
		return true
	})
	return best
}
