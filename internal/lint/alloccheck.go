package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"coaxial/internal/lint/analysis"
)

// alloccheck is a flow-sensitive escape/allocation analysis enforcing the
// zero-alloc discipline of the simulator's hot paths. The loaded-window
// speed work (DESIGN §7) holds only while the per-cycle tick allocates
// nothing in steady state; TestLoadedWindowAllocBudget guards that
// dynamically, but only on the configuration it happens to run. alloccheck
// proves it statically, per function, along every path.
//
// Hot roots come from two sources: the declaration table in
// DefaultAllocConfig (the phased tick — sim.System run/drain phases,
// dram.SubChannel scheduling, cpu.Core ROB/MSHR paths, the cxl link
// drains, rack host/device phases) and a //lint:allocfree annotation on
// any function declaration. Inside a hot function the analyzer reports:
//
//   - composite literals, new(T), and make([]T, ..) whose results escape —
//     stored into a field, map/slice element, or package variable,
//     returned, or captured by a closure. A tracked allocation that stays
//     local is NOT reported: the compiler's escape analysis stack-allocates
//     it, and flagging it would punish idiomatic scratch values.
//   - make(map)/make(chan) and map literals, which heap-allocate
//     unconditionally.
//   - append in a loop to a local slice created without a capacity hint
//     (make with no cap, or an empty literal) — the classic quadratic
//     regrowth bug. Appends to struct fields are exempt: retained buffers
//     amortize to zero allocations once warm (the arena discipline).
//   - interface boxing: a concrete non-pointer value passed to an
//     interface-typed parameter, converted to an interface type, or
//     assigned into an interface-typed location.
//   - string<->[]byte (and []rune) conversions, which copy.
//   - calls on the always-allocates list (fmt.Sprintf and friends,
//     errors.New, strconv formatting, sort.Slice).
//   - calls to any function whose interprocedural summary says it
//     allocates, with the original site threaded into the message.
//
// Summaries are computed for every function of every loaded package —
// within a package by fixpoint iteration, across packages through the
// fact store in dependency order — so SubChannel.tryIssue calling a
// helper checks at the call site, exactly like lockcheck's
// requires/acquires summaries. An allocation justified in place with
// //lint:alloc <why> is excluded from its function's summary: the
// justification covers the callers too.
//
// Where it can, the analyzer attaches a machine-applicable SuggestedFix
// (applied by coaxial-lint -fix): a capacity hint on the creation site of
// a flagged append target, and hoisting a loop-invariant, read-only
// allocation out of its loop.
//
// Soundness caveats (DESIGN §6): the analysis brackets the compiler's
// real escape analysis from both sides rather than reproducing it — a
// tracked local that never visibly escapes is assumed stack-allocated
// (the compiler may still spill it, e.g. when it is too large), and an
// escaping site is assumed heap-allocated (the compiler may still prove
// it dead). Function literals are not descended into, and calls with no
// summary (interface dispatch, function values, stdlib beyond the
// explicit list) are given the benefit of the doubt.
type alloccheckState struct {
	cfg      AllocConfig
	hot      map[string]bool
	allocFns map[string]bool
	cfgCache map[*ast.FuncDecl]*analysis.CFG
}

// AllocConfig configures the alloccheck analyzer for a repository.
type AllocConfig struct {
	// HotFuncs lists qualified names (pkgpath.Type.Method or pkgpath.Func)
	// of the hot roots: functions whose bodies are checked directly.
	// Everything they call is checked at the call site through summaries.
	HotFuncs []string
	// AllocFuncs lists qualified names of functions that always allocate
	// (string formatting, error construction); calls to them from hot
	// functions are reported without needing source for the callee.
	AllocFuncs []string
}

// DefaultAllocConfig returns the hot-path roots of this repository: the
// phased tick and its drains (DESIGN §2, §7). The roots are the drivers;
// interprocedural summaries extend the guarantee to every helper they
// call.
func DefaultAllocConfig() AllocConfig {
	return AllocConfig{
		HotFuncs: []string{
			// sim.System: the phased tick — per-cycle step, event-driven
			// step, core/backend drains, and the request completion path.
			"coaxial/internal/sim.System.step",
			"coaxial/internal/sim.System.stepEvent",
			"coaxial/internal/sim.System.tickEventCycle",
			"coaxial/internal/sim.System.nextEventBound",
			"coaxial/internal/sim.System.drainCoreEvents",
			"coaxial/internal/sim.System.drainCompletions",
			"coaxial/internal/sim.System.drainRetired",
			"coaxial/internal/sim.System.Access",
			"coaxial/internal/sim.System.Complete",
			"coaxial/internal/sim.System.send",
			"coaxial/internal/sim.System.flushSpill",
			// cpu.Core: ROB dispatch/retire and the MSHR miss paths.
			"coaxial/internal/cpu.Core.Tick",
			"coaxial/internal/cpu.Core.NextEvent",
			"coaxial/internal/cpu.Core.dispatchLoop",
			"coaxial/internal/cpu.Core.startMem",
			"coaxial/internal/cpu.Core.ResolveMiss",
			// dram.SubChannel: FR-FCFS scheduling and command issue.
			"coaxial/internal/dram.SubChannel.Tick",
			"coaxial/internal/dram.SubChannel.NextEvent",
			"coaxial/internal/dram.SubChannel.tryIssue",
			"coaxial/internal/dram.SubChannel.Enqueue",
			// cxl: link serialization, retry, and the retired drains.
			"coaxial/internal/cxl.Channel.Tick",
			"coaxial/internal/cxl.Channel.Enqueue",
			"coaxial/internal/cxl.Channel.Complete",
			"coaxial/internal/cxl.Channel.NextEvent",
			"coaxial/internal/cxl.PooledDevice.TickDevice",
			"coaxial/internal/cxl.Port.Tick",
			"coaxial/internal/cxl.Port.Enqueue",
			"coaxial/internal/cxl.Port.Complete",
			// rack: the lockstep host/device phases.
			"coaxial/internal/rack.rack.step",
		},
		AllocFuncs: []string{
			"fmt.Sprintf", "fmt.Sprint", "fmt.Sprintln",
			"fmt.Errorf", "fmt.Appendf",
			"fmt.Fprintf", "fmt.Fprint", "fmt.Fprintln",
			"errors.New", "errors.Join",
			"strconv.Itoa", "strconv.Quote",
			"strconv.FormatInt", "strconv.FormatUint", "strconv.FormatFloat",
			"strconv.AppendInt", "strconv.AppendUint", "strconv.AppendFloat",
			"strings.Join", "strings.Repeat", "strings.Builder.String",
			"sort.Slice", "sort.SliceStable",
		},
	}
}

// Fact key: *types.Func -> allocSummary.
const allocSumFact = "allocsum"

// allocSummary is a function's interprocedural allocation behavior. reason
// carries the first unsuppressed allocation with its position so the
// report at a distant call site still points at the real source.
type allocSummary struct {
	allocates bool
	reason    string
}

// NewAllocCheck builds the alloccheck analyzer from a configuration.
func NewAllocCheck(cfg AllocConfig) *analysis.Analyzer {
	a := &alloccheckState{
		cfg:      cfg,
		hot:      map[string]bool{},
		allocFns: map[string]bool{},
		cfgCache: map[*ast.FuncDecl]*analysis.CFG{},
	}
	for _, f := range cfg.HotFuncs {
		a.hot[f] = true
	}
	for _, f := range cfg.AllocFuncs {
		a.allocFns[f] = true
	}
	return &analysis.Analyzer{
		Name:        "alloccheck",
		Doc:         "flow-sensitive escape/allocation analysis: heap allocations (escaping composites, boxing, un-hinted append growth, string conversions, fmt/errors construction) reachable from hot tick/drain functions",
		Directives:  []string{"alloc"},
		Annotations: []string{"allocfree"},
		Run:         a.run,
	}
}

func (a *alloccheckState) run(pass *analysis.Pass) error {
	a.inferSummaries(pass)
	a.reportPackage(pass)
	return nil
}

// ---- allocation sites and flow state ----

// allocSite is one tracked allocation expression. Sites are shared across
// flow-state clones: escape is a may-property (any path escaping taints
// the site), so the shared mutable record is exactly the join we want.
type allocSite struct {
	pos  token.Pos
	what string // "composite literal", "new(T)", "make([]T, ..)"
	// hinted marks a make with an explicit capacity argument.
	hinted bool
	// value marks a non-pointer composite bound by value; it allocates
	// only if its address escapes.
	value bool
	// create is the allocation expression, kept for suggested fixes.
	create ast.Expr
	// escaped + how record the first witnessed escape.
	escaped bool
	how     string
}

// allocEnv is the flow state: a must-alias binding of local variables to
// allocation sites. Join keeps only bindings present and equal on both
// paths; a variable bound to different sites on merging paths becomes
// untracked (benefit of the doubt).
type allocEnv struct {
	bind map[types.Object]*allocSite
}

func newAllocEnv() *allocEnv { return &allocEnv{bind: map[types.Object]*allocSite{}} }

func (e *allocEnv) Clone() analysis.FlowState {
	c := &allocEnv{bind: make(map[types.Object]*allocSite, len(e.bind))}
	for k, v := range e.bind {
		c.bind[k] = v
	}
	return c
}

func (e *allocEnv) Join(other analysis.FlowState) bool {
	o := other.(*allocEnv)
	changed := false
	for k, v := range e.bind {
		if ov, ok := o.bind[k]; !ok || ov != v {
			delete(e.bind, k)
			changed = true
		}
	}
	return changed
}

// ---- per-function analysis ----

// allocPrescan is the syntactic pre-pass over one function body.
type allocPrescan struct {
	// loopOf maps every node inside a for/range body to its innermost
	// enclosing loop statement.
	loopOf map[ast.Node]ast.Stmt
	// captured holds objects referenced from inside function literals:
	// anything bound to them escapes into the closure.
	captured map[types.Object]bool
	// assigned holds objects assigned anywhere in the body (per loop, for
	// the hoist-invariance check) — keyed by loop, nil key = whole body.
	assignedIn map[ast.Stmt]map[types.Object]bool
	// names counts identifier definitions per name, to veto hoists that
	// would collide with a shadowed declaration.
	names map[string]int
}

type allocChecker struct {
	a    *alloccheckState
	pass *analysis.Pass
	pre  *allocPrescan
	body *ast.BlockStmt
	// reporting enables diagnostics (the hot-function replay pass).
	reporting bool
	// collect, when non-nil, receives the first unsuppressed allocation
	// (summary computation).
	collect *allocSummary
	// reported dedupes site-anchored diagnostics across replay paths.
	reported map[token.Pos]bool
}

// prescan walks the body once, mapping nodes to loops and closures.
func (c *allocChecker) prescan(body *ast.BlockStmt) {
	c.pre = &allocPrescan{
		loopOf:     map[ast.Node]ast.Stmt{},
		captured:   map[types.Object]bool{},
		assignedIn: map[ast.Stmt]map[types.Object]bool{},
		names:      map[string]int{},
	}
	var loops []ast.Stmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case nil:
			return false
		case *ast.FuncLit:
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := objOf(c.pass.TypesInfo, id); obj != nil && !declaredWithin(obj, x) {
						c.pre.captured[obj] = true
					}
				}
				return true
			})
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, x.(ast.Stmt))
			if fs, ok := x.(*ast.ForStmt); ok {
				ast.Inspect(fs.Init, walk)
			}
			var body *ast.BlockStmt
			var post ast.Stmt
			if fs, ok := x.(*ast.ForStmt); ok {
				body, post = fs.Body, fs.Post
			} else {
				body = x.(*ast.RangeStmt).Body
			}
			if post != nil {
				ast.Inspect(post, walk)
			}
			ast.Inspect(body, walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.Ident:
			if c.pass.TypesInfo.Defs[x] != nil {
				c.pre.names[x.Name]++
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					// A definition (:=) is the variable coming into being,
					// not a re-assignment; recording it would veto hoisting
					// the defining statement itself.
					if c.pass.TypesInfo.Defs[id] == nil {
						c.noteAssigned(loops, objOf(c.pass.TypesInfo, id))
					}
				} else if root := rootIdent(lhs); root != nil {
					// Writing s.f or s[i] mutates what s refers to.
					c.noteAssigned(loops, objOf(c.pass.TypesInfo, root))
				}
			}
		case *ast.IncDecStmt:
			if root := rootIdent(x.X); root != nil {
				c.noteAssigned(loops, objOf(c.pass.TypesInfo, root))
			}
		}
		if len(loops) > 0 {
			c.pre.loopOf[n] = loops[len(loops)-1]
		}
		return true
	}
	ast.Inspect(body, walk)
}

func (c *allocChecker) noteAssigned(loops []ast.Stmt, obj types.Object) {
	if obj == nil {
		return
	}
	keys := append([]ast.Stmt{nil}, loops...)
	for _, k := range keys {
		m := c.pre.assignedIn[k]
		if m == nil {
			m = map[types.Object]bool{}
			c.pre.assignedIn[k] = m
		}
		m[obj] = true
	}
}

// suppressed reports whether pos carries a //lint:alloc justification (or
// the generic ignore form); used when folding sites into summaries so a
// justified allocation does not taint every caller.
func (c *allocChecker) suppressed(pos token.Pos) bool {
	if args, ok := c.pass.DirectiveOn(pos, "alloc"); ok && args != "" {
		return true
	}
	if args, ok := c.pass.DirectiveOn(pos, "ignore"); ok {
		rest, found := cutPrefixWord(args, "alloccheck")
		return found && rest != ""
	}
	return false
}

// cutPrefixWord cuts a leading word followed by a space.
func cutPrefixWord(s, word string) (string, bool) {
	if s == word {
		return "", true
	}
	if len(s) > len(word) && s[:len(word)] == word && s[len(word)] == ' ' {
		return s[len(word)+1:], true
	}
	return "", false
}

// emit routes one allocation event: to the diagnostic stream in reporting
// mode (Reportf handles suppression), to the summary in collect mode
// (honoring suppressions itself).
func (c *allocChecker) emit(pos token.Pos, fix *analysis.SuggestedFix, format string, args ...any) {
	if c.collect != nil {
		if !c.collect.allocates && !c.suppressed(pos) {
			c.collect.allocates = true
			c.collect.reason = fmt.Sprintf("%s: %s",
				c.pass.Fset.Position(pos), fmt.Sprintf(format, args...))
		}
		return
	}
	if c.reporting {
		c.pass.ReportWithFix(pos, fix, format, args...)
	}
}

// emitSite is emit anchored at an allocation site, deduplicated (replay
// can witness the same site's escape through several variables or paths).
func (c *allocChecker) emitSite(site *allocSite, fix *analysis.SuggestedFix, format string, args ...any) {
	if c.reported[site.pos] {
		return
	}
	c.reported[site.pos] = true
	c.emit(site.pos, fix, format, args...)
}

// transfer is the abstract step for one CFG node.
func (c *allocChecker) transfer(n ast.Node, s analysis.FlowState) {
	env := s.(*allocEnv)
	switch x := n.(type) {
	case *analysis.RunDefers:
		return
	case *ast.AssignStmt:
		c.assign(x, env)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.declSpec(vs, env)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			c.escapeIfTracked(res, env, "returned")
			c.scanExpr(res, env)
		}
	case *ast.RangeStmt:
		c.scanExpr(x.X, env)
	default:
		c.scanNode(n, env)
	}
}

// declSpec handles `var x = <expr>` declarations like assignments.
func (c *allocChecker) declSpec(vs *ast.ValueSpec, env *allocEnv) {
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			c.bindOrScan(name, vs.Values[i], env)
		}
	}
}

// assign handles one assignment statement: allocation bindings, aliasing,
// escapes through composite LHS, boxing into interface locations, and
// append tracking.
func (c *allocChecker) assign(as *ast.AssignStmt, env *allocEnv) {
	// Parallel assignment with unequal arity (x, y := f()): no bindings to
	// track, just scan.
	if len(as.Lhs) != len(as.Rhs) {
		for _, rhs := range as.Rhs {
			c.scanExpr(rhs, env)
		}
		for _, lhs := range as.Lhs {
			c.scanLHS(lhs, env)
		}
		return
	}
	for i := range as.Lhs {
		lhs, rhs := ast.Unparen(as.Lhs[i]), ast.Unparen(as.Rhs[i])
		if id, ok := lhs.(*ast.Ident); ok {
			// A blank discard keeps nothing: the value cannot escape
			// through it.
			if id.Name == "_" {
				c.scanExpr(rhs, env)
				continue
			}
			c.bindOrScan(id, rhs, env)
			continue
		}
		// Composite LHS (field, element, deref, package var): anything
		// tracked on the RHS escapes into it, and a concrete RHS flowing
		// into an interface-typed location boxes.
		c.escapeIfTracked(rhs, env, "stored into "+lhsKind(c.pass, lhs))
		c.boxCheck(rhs, c.pass.TypesInfo.TypeOf(lhs), env)
		c.scanExpr(rhs, env)
		c.scanLHS(lhs, env)
	}
}

// scanLHS scans the subscripts/receiver parts of a non-identifier LHS.
func (c *allocChecker) scanLHS(lhs ast.Expr, env *allocEnv) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		c.scanExpr(x.Index, env)
	case *ast.StarExpr:
		c.scanExpr(x.X, env)
	}
}

// bindOrScan binds id to the allocation site of rhs when rhs allocates or
// aliases a tracked site; otherwise scans rhs normally. Binding to an
// interface-typed variable also box-checks.
func (c *allocChecker) bindOrScan(id *ast.Ident, rhs ast.Expr, env *allocEnv) {
	obj := objOf(c.pass.TypesInfo, id)
	if obj == nil {
		c.scanExpr(rhs, env)
		return
	}
	// A plain identifier can still be a package variable: assigning an
	// allocation to it escapes, same as the selector form.
	if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		c.escapeIfTracked(rhs, env, "stored into package variable "+id.Name)
		c.boxCheck(rhs, obj.Type(), env)
		c.scanExpr(rhs, env)
		return
	}
	c.boxCheck(rhs, obj.Type(), env)
	if site := c.siteOf(rhs, env); site != nil {
		env.bind[obj] = site
		if c.pre.captured[obj] {
			c.escapeSite(site, "captured by a closure")
		}
		// The allocation's operands still need scanning (a make's length
		// expression can itself allocate).
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				c.scanExpr(arg, env)
			}
		}
		return
	}
	// x = append(x, ...): keep x bound to its creation site; growth is
	// checked against that site's capacity hint.
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && builtinName(c.pass.TypesInfo, call) == "append" {
		c.appendCall(call, obj, env)
		return
	}
	delete(env.bind, obj)
	c.scanExpr(rhs, env)
}

// siteOf recognizes an allocation or aliasing expression: a composite
// literal (&T{...} pointer or T{...} value), new(T), make of a slice, or a
// plain identifier already bound to a site.
func (c *allocChecker) siteOf(rhs ast.Expr, env *allocEnv) *allocSite {
	switch x := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		return env.bind[objOf(c.pass.TypesInfo, x)]
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return nil
		}
		if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
			c.mapLitCheck(lit)
			return &allocSite{pos: x.Pos(), what: "&" + typeLabel(c.pass, lit) + " literal", create: rhs}
		}
		// &local: alias the pointed-to value's site, so escapes through
		// the pointer taint the composite.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return env.bind[objOf(c.pass.TypesInfo, id)]
		}
		return nil
	case *ast.CompositeLit:
		c.mapLitCheck(x)
		if isMapType(c.pass.TypesInfo.TypeOf(x)) {
			return nil // already reported unconditionally
		}
		site := &allocSite{pos: x.Pos(), what: typeLabel(c.pass, x) + " literal", create: rhs}
		site.value = !isSliceType(c.pass.TypesInfo.TypeOf(x))
		return site
	case *ast.CallExpr:
		switch builtinName(c.pass.TypesInfo, x) {
		case "new":
			return &allocSite{pos: x.Pos(), what: "new(" + typeLabel(c.pass, x.Args[0]) + ")", create: rhs}
		case "make":
			t := c.pass.TypesInfo.TypeOf(x)
			if isMapType(t) || isChanType(t) {
				site := &allocSite{pos: x.Pos(), create: rhs}
				var fix *analysis.SuggestedFix
				if c.reporting && !c.reported[site.pos] {
					fix = c.hoistFix(site)
				}
				c.emitSite(site, fix, "heap allocation in hot path: make of a %s always allocates", typeKindLabel(t))
				return nil
			}
			return &allocSite{
				pos: x.Pos(), what: "make(" + typeLabel(c.pass, x.Args[0]) + ", ..)",
				hinted: len(x.Args) == 3, create: rhs,
			}
		}
	}
	return nil
}

// mapLitCheck reports map literals, which always heap-allocate.
func (c *allocChecker) mapLitCheck(lit *ast.CompositeLit) {
	if isMapType(c.pass.TypesInfo.TypeOf(lit)) {
		site := &allocSite{pos: lit.Pos(), create: lit}
		var fix *analysis.SuggestedFix
		if c.reporting && !c.reported[site.pos] {
			fix = c.hoistFix(site)
		}
		c.emitSite(site, fix, "heap allocation in hot path: map literal always allocates")
	}
}

// escapeIfTracked marks the site behind expr (x, &x, or an allocation
// expression used directly) as escaped. Value composites escape only
// through their address: `*p = robEntry{}` or `return Victim{}` copies
// the value into existing storage and allocates nothing, while
// `s.f = &x` pins x on the heap. Pointer-producing sites (&T{}, new,
// make) escape whenever the pointer flows out.
func (c *allocChecker) escapeIfTracked(expr ast.Expr, env *allocEnv, how string) {
	expr = ast.Unparen(expr)
	viaAddress := false
	if ue, ok := expr.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		viaAddress = true
	}
	site := c.siteOf(expr, env)
	if site == nil {
		return
	}
	if site.value && !viaAddress {
		return
	}
	c.escapeSite(site, how)
}

// escapeSite records the escape and reports the site. When the site is a
// loop-invariant read-only allocation, the diagnostic carries a hoist fix.
func (c *allocChecker) escapeSite(site *allocSite, how string) {
	if !site.escaped {
		site.escaped = true
		site.how = how
	}
	var fix *analysis.SuggestedFix
	if c.reporting && !c.reported[site.pos] {
		fix = c.hoistFix(site)
	}
	c.emitSite(site, fix, "heap allocation in hot path: %s escapes (%s)", site.what, site.how)
}

// appendCall checks x = append(x, ...) growth discipline: inside a loop,
// the appended-to slice must carry a capacity hint.
func (c *allocChecker) appendCall(call *ast.CallExpr, target types.Object, env *allocEnv) {
	for _, arg := range call.Args[1:] {
		c.boxCheckSliceElem(call, arg, env)
		c.scanExpr(arg, env)
	}
	site := env.bind[target]
	loop := c.pre.loopOf[call]
	if loop == nil {
		return // one-shot appends amortize; only loops grow
	}
	if site == nil {
		// Untracked target: a parameter, field-copied slice, or a merge
		// casualty. Fields are exempt by design (retained buffers); for
		// the rest the benefit of the doubt applies.
		return
	}
	if site.hinted {
		return
	}
	var fix *analysis.SuggestedFix
	if c.reporting && !c.reported[site.pos] {
		fix = c.capacityHintFix(site, loop)
	}
	c.emitSite(site, fix, "append in a loop grows %s, which was created without a capacity hint", c.renderExpr(call.Args[0]))
}

// ---- expression scanning (boxing, conversions, calls) ----

// scanNode scans a straight-line statement.
func (c *allocChecker) scanNode(n ast.Node, env *allocEnv) {
	switch x := n.(type) {
	case *ast.ExprStmt:
		c.scanExpr(x.X, env)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
	case *ast.SendStmt:
		c.scanExpr(x.Chan, env)
		c.scanExpr(x.Value, env)
	case *ast.DeferStmt:
		c.scanExpr(x.Call, env)
	case *ast.GoStmt:
		c.scanExpr(x.Call, env)
	case ast.Expr:
		c.scanExpr(x, env)
	default:
		ast.Inspect(n, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok {
				c.scanExpr(e, env)
				return false
			}
			return true
		})
	}
}

// scanExpr walks one expression, firing call/conversion/boxing events.
// Function literals are not descended into.
func (c *allocChecker) scanExpr(e ast.Expr, env *allocEnv) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(m ast.Node) bool {
		switch y := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.call(y, env)
			return false // call() scans its own arguments
		}
		return true
	})
}

// call handles one call or conversion expression.
func (c *allocChecker) call(call *ast.CallExpr, env *allocEnv) {
	// Type conversions: string<->[]byte/[]rune copy; conversions to
	// interface types box.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.conversion(call, tv.Type, env)
		c.scanExpr(call.Args[0], env)
		return
	}
	switch builtinName(c.pass.TypesInfo, call) {
	case "append":
		// Append outside an assignment tracking context (nested in an
		// expression): scan arguments only.
		for _, arg := range call.Args {
			c.scanExpr(arg, env)
		}
		return
	case "make", "new":
		// An allocation expression in bare expression position (a call
		// argument, usually): handled by siteOf when bound; here it is
		// being handed away immediately.
		if site := c.siteOf(call, env); site != nil {
			c.escapeSite(site, "passed away unbound")
		}
		for _, arg := range call.Args {
			c.scanExpr(arg, env)
		}
		return
	case "":
	default:
		// len/cap/min/max/copy/delete and friends: scan operands.
		for _, arg := range call.Args {
			c.scanExpr(arg, env)
		}
		return
	}

	fn := calleeOf(c.pass.TypesInfo, call)
	if fn != nil {
		qname := funcQName(fn)
		if c.a.allocFns[qname] {
			c.emit(call.Pos(), nil, "call to %s allocates in hot path", qname)
		} else if v, ok := c.pass.Facts.Get(fn, allocSumFact); ok {
			if sum, _ := v.(allocSummary); sum.allocates {
				c.emit(call.Pos(), nil, "call to %s allocates in hot path (%s)", fn.Name(), sum.reason)
			}
		}
		c.boxCheckArgs(call, fn, env)
	}
	for _, arg := range call.Args {
		c.scanExpr(arg, env)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		c.scanExpr(sel.X, env)
	}
}

// conversion reports allocating type conversions.
func (c *allocChecker) conversion(call *ast.CallExpr, to types.Type, env *allocEnv) {
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if isStringType(to) && isByteOrRuneSlice(from) {
		c.emit(call.Pos(), nil, "string conversion allocates in hot path: string(%s) copies", c.renderExpr(call.Args[0]))
		return
	}
	if isByteOrRuneSlice(to) && isStringType(from) {
		c.emit(call.Pos(), nil, "string conversion allocates in hot path: %s copies", c.renderExpr(call))
		return
	}
	if types.IsInterface(to.Underlying()) {
		c.boxCheck(call.Args[0], to, env)
	}
}

// boxCheckArgs checks each argument against its parameter type for
// interface boxing. fmt-style always-allocates callees are exempt (the
// call itself was already reported).
func (c *allocChecker) boxCheckArgs(call *ast.CallExpr, fn *types.Func, env *allocEnv) {
	if c.a.allocFns[funcQName(fn)] {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a []T passed as T...: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.boxCheck(arg, pt, env)
	}
}

// boxCheckSliceElem checks appends into interface-element slices.
func (c *allocChecker) boxCheckSliceElem(call *ast.CallExpr, arg ast.Expr, env *allocEnv) {
	if st, ok := c.pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok {
		c.boxCheck(arg, st.Elem(), env)
	}
}

// boxCheck reports a concrete non-pointer value flowing into an
// interface-typed destination. Pointers, interfaces, channels, maps, and
// funcs fit in the interface word without allocating; constants fold to
// static cells; nil is nil.
func (c *allocChecker) boxCheck(arg ast.Expr, dest types.Type, env *allocEnv) {
	if dest == nil || !types.IsInterface(dest.Underlying()) {
		return
	}
	if _, isTypeParam := types.Unalias(dest).(*types.TypeParam); isTypeParam {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return
	}
	at := tv.Type
	if types.IsInterface(at.Underlying()) {
		return
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	c.emit(arg.Pos(), nil, "interface boxing in hot path: %s value %s converted to %s",
		at.String(), c.renderExpr(arg), dest.String())
}

// ---- suggested fixes ----

// capacityHintFix proposes editing an un-hinted slice creation so appends
// in a range loop stop growing it: make(S, 0) and S{} become
// make(S, 0, len(<ranged>)). Only offered when the loop is a range over a
// pure expression (an identifier or selector chain).
func (c *allocChecker) capacityHintFix(site *allocSite, loop ast.Stmt) *analysis.SuggestedFix {
	rng, ok := loop.(*ast.RangeStmt)
	if !ok {
		return nil
	}
	bound := c.renderExpr(rng.X)
	if bound == "" {
		return nil
	}
	switch x := ast.Unparen(site.create).(type) {
	case *ast.CallExpr:
		// make(S, 0) -> make(S, 0, len(bound)); only the zero-length form
		// is safely hintable (adding cap to a non-zero len changes nothing
		// semantically, but hinting len>0 makes is rarely what's wanted).
		if builtinName(c.pass.TypesInfo, x) != "make" || len(x.Args) != 2 || !isZeroLit(x.Args[1]) {
			return nil
		}
		return &analysis.SuggestedFix{
			Message: "add a capacity hint sized to the ranged collection",
			Edits: []analysis.TextEdit{
				analysis.Edit(c.pass.Fset, x.Args[1].End(), x.Args[1].End(), ", len("+bound+")"),
			},
		}
	case *ast.CompositeLit:
		if len(x.Elts) != 0 || !isSliceType(c.pass.TypesInfo.TypeOf(x)) {
			return nil
		}
		return &analysis.SuggestedFix{
			Message: "replace the empty literal with a capacity-hinted make",
			Edits: []analysis.TextEdit{
				analysis.Edit(c.pass.Fset, x.Pos(), x.End(),
					"make("+c.pass.TypesInfo.TypeOf(x).String()+", 0, len("+bound+"))"),
			},
		}
	}
	return nil
}

// hoistFix proposes moving a loop-invariant, read-only allocation above
// its loop. Offered only when it provably cannot change behavior: every
// operand of the allocation is a literal or a variable neither declared
// nor assigned inside the loop, and the bound variable is never written,
// appended to, captured, or passed to a call after creation (reads,
// len/cap, indexing, and ranging are fine) — a reused read-only slice or
// map is indistinguishable from a fresh one.
func (c *allocChecker) hoistFix(site *allocSite) *analysis.SuggestedFix {
	if site.create == nil {
		return nil
	}
	loop := c.pre.loopOf[site.create]
	if loop == nil {
		return nil
	}
	stmt := c.creationStmt(site)
	if stmt == nil || c.pre.loopOf[stmt] != loop {
		return nil
	}
	// The statement must be a single-variable := creation.
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || c.pre.names[id.Name] != 1 {
		return nil // shadowing risk: another declaration shares the name
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil || !c.readOnlyAfter(obj, loop) {
		return nil
	}
	if !c.invariantOperands(site.create, loop) {
		return nil
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, c.pass.Fset, stmt); err != nil {
		return nil
	}
	indent := c.lineIndent(loop.Pos())
	return &analysis.SuggestedFix{
		Message: "hoist the loop-invariant allocation above the loop",
		Edits: []analysis.TextEdit{
			analysis.Insert(c.pass.Fset, loop.Pos(), buf.String()+"\n"+indent),
			analysis.Edit(c.pass.Fset, stmt.Pos(), stmt.End(), ""),
		},
	}
}

// creationStmt finds the statement node holding the site's creation
// expression (the := assignment).
func (c *allocChecker) creationStmt(site *allocSite) ast.Stmt {
	var found ast.Stmt
	ast.Inspect(c.body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, rhs := range as.Rhs {
				if ast.Unparen(rhs) == ast.Unparen(site.create) {
					found = as
					return false
				}
			}
		}
		return true
	})
	return found
}

// readOnlyAfter reports whether obj is only ever read inside the loop:
// no assignments, no index/field writes through it, no address-of, no
// appearance as a call argument or method receiver, no capture.
func (c *allocChecker) readOnlyAfter(obj types.Object, loop ast.Stmt) bool {
	if c.pre.captured[obj] {
		return false
	}
	if c.pre.assignedIn[loop][obj] {
		return false
	}
	ok := true
	ast.Inspect(loop, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND && rootIdent(x.X) != nil && objOf(c.pass.TypesInfo, rootIdent(x.X)) == obj {
				ok = false
			}
		case *ast.CallExpr:
			if bn := builtinName(c.pass.TypesInfo, x); bn == "len" || bn == "cap" {
				return true
			}
			for _, arg := range x.Args {
				if id := rootIdent(arg); id != nil && objOf(c.pass.TypesInfo, id) == obj {
					ok = false
				}
			}
			if sel, isSel := ast.Unparen(x.Fun).(*ast.SelectorExpr); isSel {
				if id := rootIdent(sel.X); id != nil && objOf(c.pass.TypesInfo, id) == obj {
					ok = false
				}
			}
		}
		return ok
	})
	return ok
}

// invariantOperands reports whether every identifier inside the creation
// expression is declared outside the loop and never assigned inside it.
func (c *allocChecker) invariantOperands(create ast.Expr, loop ast.Stmt) bool {
	ok := true
	ast.Inspect(create, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || !ok {
			return ok
		}
		obj := objOf(c.pass.TypesInfo, id)
		if obj == nil {
			return true // type names in the literal
		}
		switch obj.(type) {
		case *types.Var:
			if declaredWithin(obj, loop) || c.pre.assignedIn[loop][obj] {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// lineIndent extracts the leading whitespace of pos's line, so an
// inserted statement aligns with the loop it precedes.
func (c *allocChecker) lineIndent(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	if p.Column <= 1 {
		return ""
	}
	// Reconstruct tabs: gofmt indents with tabs, one per level; column
	// counts each tab as one. This is exact for gofmt-formatted source.
	indent := make([]byte, p.Column-1)
	for i := range indent {
		indent[i] = '\t'
	}
	return string(indent)
}

// renderExpr prints a simple expression (identifier / selector chain) for
// messages and fixes; anything with side effects renders as "".
func (c *allocChecker) renderExpr(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := c.renderExpr(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			inner := c.renderExpr(x.Args[0])
			if inner == "" {
				return ""
			}
			return tv.Type.String() + "(" + inner + ")"
		}
	}
	return ""
}

// ---- type helpers ----

// isZeroLit reports whether e is the literal 0.
func isZeroLit(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == "0"
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeKindLabel(t types.Type) string {
	if isMapType(t) {
		return "map"
	}
	return "channel"
}

// typeLabel renders the type of an expression for messages.
func typeLabel(pass *analysis.Pass, e ast.Expr) string {
	if t := pass.TypesInfo.TypeOf(e); t != nil {
		return t.String()
	}
	return "value"
}

// lhsKind names an escaping assignment destination for messages.
func lhsKind(pass *analysis.Pass, lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return "field " + x.Sel.Name
		}
		return "package variable " + x.Sel.Name
	case *ast.IndexExpr:
		return "an element"
	case *ast.StarExpr:
		return "a pointed-to location"
	case *ast.Ident:
		return "package variable " + x.Name
	}
	return "a non-local location"
}

// ---- package passes ----

// hotDecl reports whether fd is a hot root: named in the declaration
// table, or carrying a //lint:allocfree annotation.
func (a *alloccheckState) hotDecl(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if _, ok := pass.DirectiveOn(fd.Pos(), "allocfree"); ok {
		return true
	}
	obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return obj != nil && a.hot[funcQName(obj)]
}

// inferSummaries computes allocation summaries for the package's
// functions to a fixpoint, so helper chains resolve before callers are
// checked — within the package by iteration, across packages by the
// driver's dependency order.
func (a *alloccheckState) inferSummaries(pass *analysis.Pass) {
	type cand struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var cands []cand
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			cands = append(cands, cand{decl: fd, obj: obj})
		}
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, cd := range cands {
			sum := a.summarize(pass, cd.decl)
			cur := allocSummary{}
			if v, ok := pass.Facts.Get(cd.obj, allocSumFact); ok {
				cur, _ = v.(allocSummary)
			}
			if sum != cur {
				pass.Facts.Set(cd.obj, allocSumFact, sum)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// summarize computes one function's allocation summary.
func (a *alloccheckState) summarize(pass *analysis.Pass, fd *ast.FuncDecl) allocSummary {
	cfg := a.cfgFor(fd)
	c := &allocChecker{a: a, pass: pass, body: fd.Body, reported: map[token.Pos]bool{}}
	c.prescan(fd.Body)
	c.collect = &allocSummary{}
	in := analysis.Forward(cfg, newAllocEnv(), c.transfer)
	analysis.ReplayBlocks(cfg, in, c.transfer)
	return *c.collect
}

// reportPackage replays every hot function with diagnostics enabled.
func (a *alloccheckState) reportPackage(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !a.hotDecl(pass, fd) {
				continue
			}
			cfg := a.cfgFor(fd)
			c := &allocChecker{a: a, pass: pass, body: fd.Body, reported: map[token.Pos]bool{}}
			c.prescan(fd.Body)
			in := analysis.Forward(cfg, newAllocEnv(), c.transfer)
			c.reporting = true
			c.reported = map[token.Pos]bool{}
			analysis.ReplayBlocks(cfg, in, c.transfer)
		}
	}
}

func (a *alloccheckState) cfgFor(fd *ast.FuncDecl) *analysis.CFG {
	cfg := a.cfgCache[fd]
	if cfg == nil {
		cfg = analysis.BuildCFG(fd.Body)
		a.cfgCache[fd] = cfg
	}
	return cfg
}
