package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"coaxial/internal/lint/analysis"
)

// unitcheck performs flow-sensitive dimensional analysis over the
// simulator's quantity dimensions: every latency in the evaluation is a sum
// across clock domains (core cycles at 2.4 GHz, DDR5 nCK, CXL port
// traversals quoted in ns, bandwidth in GB/s), and the code passes all of
// them around as bare int64/float64. The analyzer tracks which dimension
// each expression carries through a per-function CFG (join at merges,
// fixpoint over loops) and flags cross-dimension arithmetic — cycles + ns,
// comparing cycles against an ns-valued constant, multiplying two
// latencies — unless the value flows through a blessed conversion
// (internal/clock's Cycles/NS/BytesPerCycle/SerializationCycles, whose
// signatures are dimension-seeded).
//
// Dimensions come from four sources, in priority order:
//  1. //lint:unit <dim> annotations on fields, consts, vars, and funcs
//     (an annotation declares the dimension; it never suppresses).
//  2. the configured declaration table (qualified names, e.g.
//     "coaxial/internal/dram.Timing.*" -> cycles).
//  3. inferred function-result dimensions, computed per package to a
//     fixpoint and propagated across packages through the fact store in
//     dependency order (like the purity pass).
//  4. parameter/local naming conventions ("now" and *Cycles are cycles,
//     *NS is ns, *GBs is GB/s) — used to seed parameter dimensions and to
//     cross-check what a named local is assigned.
//
// Untyped and named constants without a seeded dimension are
// dimensionless: adding a literal to a cycle count is fine, and
// dimensionless values combine with anything (they are scale factors).
// Unknown ("") is the lattice top: joining two different dimensions yields
// unknown, and unknown never produces a report — the analyzer only flags
// arithmetic where both sides are confidently, differently dimensioned.

// Dim is one element of the dimension lattice. The empty string is
// "unknown" (top): no claim, never reported against.
type Dim string

const (
	DimCycles Dim = "cycles"
	DimNS     Dim = "ns"
	DimPS     Dim = "ps"
	DimBytes  Dim = "bytes"
	DimFlits  Dim = "flits"
	DimBPC    Dim = "bytes/cycle"
	DimGBs    Dim = "GB/s"
	// DimGHz is cycles per ns — the dimension of clock.FreqGHz; it is what
	// makes ns*GHz = cycles and cycles/GHz = ns algebraic rather than
	// special-cased.
	DimGHz Dim = "GHz"
	// DimNSPerCycle is ns per cycle (1/GHz), so cycles*(ns/cycle) = ns.
	DimNSPerCycle Dim = "ns/cycle"
	// DimScalar marks dimensionless values: literals, counts, ratios,
	// scale factors. Scalar combines freely with every dimension.
	DimScalar Dim = "dimensionless"
)

// validDims enumerates the dimensions accepted by //lint:unit and the
// declaration table.
var validDims = map[Dim]bool{
	DimCycles: true, DimNS: true, DimPS: true, DimBytes: true,
	DimFlits: true, DimBPC: true, DimGBs: true, DimGHz: true,
	DimNSPerCycle: true, DimScalar: true,
}

// parseDim validates a dimension name. "_" is the explicit "unconstrained"
// placeholder used in signature strings.
func parseDim(s string) (Dim, error) {
	if s == "_" {
		return "", nil
	}
	d := Dim(s)
	if !validDims[d] {
		return "", fmt.Errorf("unknown dimension %q (want cycles, ns, ps, bytes, flits, bytes/cycle, GB/s, GHz, ns/cycle, or dimensionless)", s)
	}
	return d, nil
}

// unitSig is a function's dimensional signature. A nil params slice leaves
// every parameter unconstrained; an empty-string entry leaves that one
// parameter unconstrained.
type unitSig struct {
	params  []Dim
	results []Dim
}

// UnitConfig configures the unitcheck analyzer for a repository.
type UnitConfig struct {
	// Scope lists import-path prefixes where findings are reported; facts
	// (annotations, inferred signatures) are computed for every analyzed
	// package regardless.
	Scope []string
	// Decls seeds dimensions by qualified name:
	//
	//	"pkg/path.Name"           const/var/func     "cycles" or "ns -> cycles"
	//	"pkg/path.Type.Name"      field/method       "cycles" or "-> cycles"
	//	"pkg/path.Type.*"         every numeric field of Type
	//
	// Entries containing "->" are function signatures: comma-separated
	// parameter dimensions (or "_" for unconstrained), then the result
	// dimension. "-> cycles" constrains only the result.
	Decls map[string]string
	// ParamNames maps exact parameter/local names to dimensions ("now" ->
	// cycles). Applied only to numeric identifiers.
	ParamNames map[string]Dim
	// Suffixes maps name suffixes to dimensions, checked in the given
	// order ("Cycles" -> cycles, "NS" -> ns). An empty dimension blocks
	// later, shorter suffixes from matching (e.g. "PerCycle" -> "" keeps
	// nsPerCycle from reading as cycles).
	Suffixes []SuffixRule
}

// SuffixRule is one name-suffix convention.
type SuffixRule struct {
	Suffix string
	Dim    Dim
}

// DefaultUnitConfig returns the dimension seeds for this repository: the
// blessed conversions in internal/clock, the nCK-denominated DDR timing
// table, the CXL link parameters, the NoC hop latency, and the stats
// accumulators.
func DefaultUnitConfig() UnitConfig {
	return UnitConfig{
		Scope: []string{
			"coaxial/internal/sim",
			"coaxial/internal/cpu",
			"coaxial/internal/cache",
			"coaxial/internal/dram",
			"coaxial/internal/cxl",
			"coaxial/internal/calm",
			"coaxial/internal/noc",
			"coaxial/internal/memreq",
			"coaxial/internal/clock",
			"coaxial/internal/stats",
			"coaxial/internal/power",
			"coaxial/internal/validate",
		},
		Decls: map[string]string{
			// The clock package defines the blessed conversions.
			"coaxial/internal/clock.FreqGHz":             "GHz",
			"coaxial/internal/clock.CyclePS":             "ps",
			"coaxial/internal/clock.Cycles":              "ns -> cycles",
			"coaxial/internal/clock.NS":                  "cycles -> ns",
			"coaxial/internal/clock.BytesPerCycle":       "GB/s -> bytes/cycle",
			"coaxial/internal/clock.SerializationCycles": "bytes, GB/s -> cycles",

			// DDR5 timing constraints are all in command-clock cycles.
			"coaxial/internal/dram.Timing.*":                 "cycles",
			"coaxial/internal/dram.Config.RowBytes":          "bytes",
			"coaxial/internal/dram.Config.PeakGBsPerSub":     "GB/s",
			"coaxial/internal/dram.Config.PeakGBs":           "-> GB/s",
			"coaxial/internal/dram.Channel.PeakGBs":          "-> GB/s",
			"coaxial/internal/dram.Counters.ReadBytes":       "bytes",
			"coaxial/internal/dram.Counters.WriteBytes":      "bytes",
			"coaxial/internal/dram.Counters.ActiveBankCycles": "cycles",

			// CXL link parameters: port latency in ns, goodput in GB/s.
			"coaxial/internal/cxl.LinkParams.PortNS":              "ns",
			"coaxial/internal/cxl.LinkParams.RXGoodputGBs":        "GB/s",
			"coaxial/internal/cxl.LinkParams.TXGoodputGBs":        "GB/s",
			"coaxial/internal/cxl.LinkParams.ReqHeaderBytes":      "bytes",
			"coaxial/internal/cxl.LinkParams.WithPortNS":          "ns -> _",
			"coaxial/internal/cxl.LinkParams.UnloadedReadAdderNS": "-> ns",
			"coaxial/internal/cxl.Stats.RetryCycles":              "cycles",
			"coaxial/internal/cxl.Channel.PeakGBs":                "-> GB/s",

			// NoC hop latency.
			"coaxial/internal/noc.Mesh.HopCycles": "cycles",
			"coaxial/internal/noc.Mesh.Latency":   "-> cycles",

			// Request/line geometry.
			"coaxial/internal/memreq.LineSize": "bytes",

			// Stats accumulators and bandwidth conversions.
			"coaxial/internal/stats.GBs":           "bytes, cycles -> GB/s",
			"coaxial/internal/stats.Utilization":   "GB/s, GB/s -> dimensionless",
			"coaxial/internal/stats.Breakdown.Add": "cycles, cycles, cycles, cycles ->",
			"coaxial/internal/stats.Breakdown.OnChip":  "cycles",
			"coaxial/internal/stats.Breakdown.Queue":   "cycles",
			"coaxial/internal/stats.Breakdown.Service": "cycles",
			"coaxial/internal/stats.Breakdown.CXL":     "cycles",
			"coaxial/internal/stats.Bandwidth.ReadBytes":  "bytes",
			"coaxial/internal/stats.Bandwidth.WriteBytes": "bytes",
			"coaxial/internal/stats.Bandwidth.AddRead":    "bytes ->",
			"coaxial/internal/stats.Bandwidth.AddWrite":   "bytes ->",
			"coaxial/internal/stats.Bandwidth.Total":      "-> bytes",
		},
		ParamNames: map[string]Dim{
			"now":  DimCycles,
			"at":   DimCycles,
			"when": DimCycles,
			"ns":   DimNS,
			"gbps": DimGBs,
			"gbs":  DimGBs,
		},
		Suffixes: []SuffixRule{
			// Blockers first: *PerCycle rates are not cycle counts.
			{Suffix: "PerCycle", Dim: ""},
			{Suffix: "Cycles", Dim: DimCycles},
			{Suffix: "Cycle", Dim: DimCycles},
			{Suffix: "NS", Dim: DimNS},
			{Suffix: "PS", Dim: DimPS},
			{Suffix: "GBs", Dim: DimGBs},
			{Suffix: "GBps", Dim: DimGBs},
			{Suffix: "Bytes", Dim: DimBytes},
		},
	}
}

// Fact keys.
const (
	unitFact    = "unit"    // types.Object (const/var/field) -> Dim
	unitSigFact = "unitsig" // *types.Func -> unitSig
)

// unitcheckState is the analyzer's parsed configuration plus caches shared
// across packages of one run.
type unitcheckState struct {
	cfg      UnitConfig
	decls    map[string]Dim
	sigs     map[string]unitSig
	cfgCache map[*ast.FuncDecl]*analysis.CFG
}

// NewUnitCheck builds the unitcheck analyzer from a configuration.
// Malformed Decls entries panic: the table is program text, not input.
func NewUnitCheck(cfg UnitConfig) *analysis.Analyzer {
	u := &unitcheckState{
		cfg:      cfg,
		decls:    map[string]Dim{},
		sigs:     map[string]unitSig{},
		cfgCache: map[*ast.FuncDecl]*analysis.CFG{},
	}
	for name, spec := range cfg.Decls {
		if strings.Contains(spec, "->") {
			sig, err := parseUnitSig(spec)
			if err != nil {
				panic(fmt.Sprintf("unitcheck: decl %q: %v", name, err))
			}
			u.sigs[name] = sig
			continue
		}
		d, err := parseDim(strings.TrimSpace(spec))
		if err != nil {
			panic(fmt.Sprintf("unitcheck: decl %q: %v", name, err))
		}
		u.decls[name] = d
	}
	return &analysis.Analyzer{
		Name:        "unitcheck",
		Doc:         "flow-sensitive dimensional analysis: flags cross-dimension arithmetic (cycles+ns, GB/s vs bytes/cycle, latency products) outside blessed conversions",
		Annotations: []string{"unit"},
		Run:         u.run,
	}
}

// parseUnitSig parses "ns, _ -> cycles" style signature strings.
func parseUnitSig(spec string) (unitSig, error) {
	left, right, _ := strings.Cut(spec, "->")
	var sig unitSig
	if l := strings.TrimSpace(left); l != "" {
		for _, p := range strings.Split(l, ",") {
			d, err := parseDim(strings.TrimSpace(p))
			if err != nil {
				return sig, err
			}
			sig.params = append(sig.params, d)
		}
	}
	if r := strings.TrimSpace(right); r != "" {
		d, err := parseDim(r)
		if err != nil {
			return sig, err
		}
		sig.results = append(sig.results, d)
	}
	return sig, nil
}

func (u *unitcheckState) run(pass *analysis.Pass) error {
	u.annotate(pass)
	u.infer(pass)
	if pathPrefixes(pass.Pkg.Path(), u.cfg.Scope) {
		u.reportPackage(pass)
	}
	return nil
}

// annotate records //lint:unit declarations as facts: on struct fields, on
// package consts/vars, and on functions (where the dimension names the
// result). Annotations are declarations of intent, so a bad dimension name
// is itself a finding.
func (u *unitcheckState) annotate(pass *analysis.Pass) {
	handle := func(pos token.Pos) (Dim, bool) {
		args, ok := pass.DirectiveOn(pos, "unit")
		if !ok {
			return "", false
		}
		// The dimension is the first token; anything after it is prose
		// ("//lint:unit cycles latched at tick").
		tok, _, _ := strings.Cut(strings.TrimSpace(args), " ")
		d, err := parseDim(tok)
		if err != nil || d == "" {
			if err == nil {
				err = fmt.Errorf("missing dimension")
			}
			pass.Reportf(pos, "bad //lint:unit annotation: %v", err)
			return "", false
		}
		return d, true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				for _, field := range x.Fields.List {
					d, ok := handle(field.Pos())
					if !ok {
						continue
					}
					for _, name := range field.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							pass.Facts.Set(obj, unitFact, d)
						}
					}
				}
			case *ast.ValueSpec:
				if d, ok := handle(x.Pos()); ok {
					for _, name := range x.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							pass.Facts.Set(obj, unitFact, d)
						}
					}
				}
			case *ast.FuncDecl:
				if d, ok := handle(x.Pos()); ok {
					if obj, _ := pass.TypesInfo.Defs[x.Name].(*types.Func); obj != nil {
						pass.Facts.Set(obj, unitSigFact, unitSig{results: []Dim{d}})
					}
				}
			}
			return true
		})
	}
}

// infer computes result dimensions for this package's functions to a
// fixpoint: a function whose every return statement yields the same known
// dimension gets that dimension as a signature fact, visible to later
// functions in this package (hence the iteration) and, because the driver
// runs packages in dependency order, to every importing package.
func (u *unitcheckState) infer(pass *analysis.Pass) {
	type cand struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var cands []cand
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			// Only functions whose first result is numeric and whose
			// signature is not already pinned by the table or an
			// annotation.
			sig := obj.Type().(*types.Signature)
			if sig.Results().Len() == 0 || !isNumericType(sig.Results().At(0).Type()) {
				continue
			}
			if _, pinned := u.sigs[funcQName(obj)]; pinned {
				continue
			}
			if _, pinned := pass.Facts.Get(obj, unitSigFact); pinned {
				continue
			}
			cands = append(cands, cand{decl: fd, obj: obj})
		}
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, cd := range cands {
			returns := u.analyzeFunc(pass, cd.decl, cd.obj, false)
			inferred := joinReturns(returns)
			cur := Dim("")
			if v, ok := pass.Facts.Get(cd.obj, unitSigFact); ok {
				if s, _ := v.(unitSig); len(s.results) > 0 {
					cur = s.results[0]
				}
			}
			if inferred != cur {
				pass.Facts.Set(cd.obj, unitSigFact, unitSig{results: []Dim{inferred}})
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// joinReturns reduces the dimensions a function returns to one: all equal
// and known (scalar sentinels like `return 0` don't count against a
// dimension) -> that dimension; conflicting or none -> unknown.
func joinReturns(returns []Dim) Dim {
	var d Dim
	for _, r := range returns {
		if r == "" || r == DimScalar {
			continue
		}
		if d == "" {
			d = r
		} else if d != r {
			return ""
		}
	}
	return d
}

// reportPackage runs the reporting pass over every function body and
// function literal of an in-scope package.
func (u *unitcheckState) reportPackage(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				u.analyzeFunc(pass, fd, obj, true)
			}
		}
		// Function literals are analyzed as independent functions: captured
		// variables are unknown (safe), parameters follow the naming
		// conventions.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				u.analyzeFuncLit(pass, lit, true)
			}
			return true
		})
	}
}

// analyzeFunc runs the flow engine over one function declaration and
// returns the dimensions of its return statements' first results.
func (u *unitcheckState) analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl, obj *types.Func, report bool) []Dim {
	cfg := u.cfgCache[fd]
	if cfg == nil {
		cfg = analysis.BuildCFG(fd.Body)
		u.cfgCache[fd] = cfg
	}
	c := &unitChecker{u: u, pass: pass, scope: fd}
	env := &unitEnv{vars: map[types.Object]Dim{}}
	if obj != nil {
		sig := obj.Type().(*types.Signature)
		declared, _ := u.sigOf(pass, obj)
		u.seedParams(env, sig.Params(), declared.params)
		u.seedResults(c, env, sig.Results(), declared.results)
		c.fname = obj.Name()
	}
	in := analysis.Forward(cfg, env, c.transfer)
	c.reporting = report
	c.collectReturns = !report
	analysis.ReplayBlocks(cfg, in, c.transfer)
	return c.returns
}

// analyzeFuncLit analyzes a function literal's body with convention-seeded
// parameters only.
func (u *unitcheckState) analyzeFuncLit(pass *analysis.Pass, lit *ast.FuncLit, report bool) {
	cfg := analysis.BuildCFG(lit.Body)
	c := &unitChecker{u: u, pass: pass, scope: lit, fname: "func literal"}
	env := &unitEnv{vars: map[types.Object]Dim{}}
	if sig, ok := pass.TypesInfo.TypeOf(lit).(*types.Signature); ok {
		u.seedParams(env, sig.Params(), nil)
		u.seedResults(c, env, sig.Results(), nil)
	}
	in := analysis.Forward(cfg, env, c.transfer)
	c.reporting = report
	analysis.ReplayBlocks(cfg, in, c.transfer)
}

// seedParams gives parameters their declared (table) dimensions, falling
// back to naming conventions for numeric parameters.
func (u *unitcheckState) seedParams(env *unitEnv, params *types.Tuple, declared []Dim) {
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		d := Dim("")
		if i < len(declared) {
			d = declared[i]
		}
		if d == "" {
			d = u.nameDim(p.Name(), p.Type())
		}
		if d != "" {
			env.vars[p] = d
		}
	}
}

// seedResults records the function's declared result dimensions for return
// checking and seeds named result variables.
func (u *unitcheckState) seedResults(c *unitChecker, env *unitEnv, results *types.Tuple, declared []Dim) {
	c.resultDims = make([]Dim, results.Len())
	for i := 0; i < results.Len(); i++ {
		r := results.At(i)
		d := Dim("")
		if i < len(declared) {
			d = declared[i]
		}
		if d == "" && r.Name() != "" {
			d = u.nameDim(r.Name(), r.Type())
		}
		c.resultDims[i] = d
		if d != "" && r.Name() != "" {
			env.vars[r] = d
		}
	}
}

// nameDim applies the naming conventions to a numeric identifier.
func (u *unitcheckState) nameDim(name string, t types.Type) Dim {
	if name == "" || name == "_" || !isNumericType(t) {
		return ""
	}
	if d, ok := u.cfg.ParamNames[name]; ok {
		return d
	}
	for _, rule := range u.cfg.Suffixes {
		if strings.HasSuffix(name, rule.Suffix) {
			return rule.Dim // may be "": blocker suffixes stop the scan
		}
	}
	return ""
}

// sigOf resolves a function's dimensional signature: fact store first
// (annotations and inference), then the declaration table.
func (u *unitcheckState) sigOf(pass *analysis.Pass, fn *types.Func) (unitSig, bool) {
	if v, ok := pass.Facts.Get(fn, unitSigFact); ok {
		sig, _ := v.(unitSig)
		return sig, true
	}
	if sig, ok := u.sigs[funcQName(fn)]; ok {
		return sig, true
	}
	return unitSig{}, false
}

// objDim resolves a non-field object's dimension: fact store, then the
// declaration table (package-level objects only), then "constants are
// dimensionless".
func (u *unitcheckState) objDim(pass *analysis.Pass, obj types.Object) Dim {
	if v, ok := pass.Facts.Get(obj, unitFact); ok {
		d, _ := v.(Dim)
		return d
	}
	if pkg := obj.Pkg(); pkg != nil && obj.Parent() == pkg.Scope() {
		if d, ok := u.decls[pkg.Path()+"."+obj.Name()]; ok {
			return d
		}
	}
	if _, isConst := obj.(*types.Const); isConst {
		return DimScalar
	}
	return ""
}

// fieldDim resolves a struct field's dimension: annotation fact, then the
// table by "pkg.Owner.Field", then the "pkg.Owner.*" wildcard (numeric
// fields only).
func (u *unitcheckState) fieldDim(pass *analysis.Pass, obj types.Object, owner *types.Named) Dim {
	if v, ok := pass.Facts.Get(obj, unitFact); ok {
		d, _ := v.(Dim)
		return d
	}
	if owner == nil || owner.Obj().Pkg() == nil {
		return ""
	}
	prefix := owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "."
	if d, ok := u.decls[prefix+obj.Name()]; ok {
		return d
	}
	if d, ok := u.decls[prefix+"*"]; ok && isNumericType(obj.Type()) {
		return d
	}
	return ""
}

func isNumericType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// conflict reports whether two dimensions are confidently incompatible:
// both known, different, and neither dimensionless.
func conflict(a, b Dim) bool {
	return a != "" && b != "" && a != b && a != DimScalar && b != DimScalar
}

// isLatency reports whether a dimension is a time/duration quantity.
func isLatency(d Dim) bool { return d == DimCycles || d == DimNS || d == DimPS }

// addSubDim combines dimensions under +/-: same dimension is preserved,
// dimensionless and unknown defer to the other side.
func addSubDim(a, b Dim) Dim {
	if a == b {
		return a
	}
	if a == "" || a == DimScalar {
		if b == "" {
			return a
		}
		return b
	}
	return a // b is unknown/scalar (conflicts are reported before this)
}

// mulDim applies the dimensional algebra of multiplication. The second
// result flags a latency product (cycles*ns and friends), which has no
// meaning in the simulator.
func mulDim(a, b Dim) (Dim, bool) {
	if a == DimScalar {
		return b, false
	}
	if b == DimScalar {
		return a, false
	}
	if a == "" || b == "" {
		return "", false
	}
	switch {
	case pairIs(a, b, DimNS, DimGHz):
		return DimCycles, false
	case pairIs(a, b, DimCycles, DimNSPerCycle):
		return DimNS, false
	case pairIs(a, b, DimBPC, DimCycles):
		return DimBytes, false
	case pairIs(a, b, DimGBs, DimNS):
		return DimBytes, false
	}
	if isLatency(a) && isLatency(b) {
		return "", true
	}
	return "", false
}

func pairIs(a, b, x, y Dim) bool { return (a == x && b == y) || (a == y && b == x) }

// divDim applies the dimensional algebra of division.
func divDim(a, b Dim) Dim {
	if b == DimScalar {
		return a
	}
	if b == "" || a == "" {
		return ""
	}
	if a == b {
		return DimScalar
	}
	switch {
	case a == DimCycles && b == DimGHz:
		return DimNS
	case a == DimScalar && b == DimGHz:
		return DimNSPerCycle
	case a == DimNS && b == DimNSPerCycle:
		return DimCycles
	case a == DimNS && b == DimCycles:
		return DimNSPerCycle
	case a == DimBytes && b == DimCycles:
		return DimBPC
	case a == DimBytes && b == DimBPC:
		return DimCycles
	case a == DimBytes && b == DimGBs:
		return DimNS // 1 GB/s is exactly 1 byte/ns
	case a == DimBytes && b == DimNS:
		return DimGBs // ... and bytes over ns is GB/s
	case a == DimGBs && b == DimGHz:
		return DimBPC
	}
	return ""
}

// remDim: a remainder keeps the dividend's dimension when the divisor is
// compatible (cycle alignment like now % tREFI), else unknown.
func remDim(a, b Dim) Dim {
	if b == DimScalar || a == b {
		return a
	}
	return ""
}

// unitEnv is the flow state: dimensions of local variables (parameters,
// named results, locals). Absent means untracked (unknown).
type unitEnv struct {
	vars map[types.Object]Dim
}

func (e *unitEnv) Clone() analysis.FlowState {
	m := make(map[types.Object]Dim, len(e.vars))
	for k, v := range e.vars {
		m[k] = v
	}
	return &unitEnv{vars: m}
}

func (e *unitEnv) Join(other analysis.FlowState) bool {
	o := other.(*unitEnv)
	changed := false
	for k, v := range o.vars {
		cur, ok := e.vars[k]
		if !ok {
			// Visible on only one path (declared in a branch): adopt.
			if v != "" {
				e.vars[k] = v
				changed = true
			}
			continue
		}
		if cur != "" && cur != v {
			e.vars[k] = "" // disagreement joins to unknown
			changed = true
		}
	}
	return changed
}

// unitChecker evaluates one function under one pass.
type unitChecker struct {
	u     *unitcheckState
	pass  *analysis.Pass
	scope ast.Node // the FuncDecl/FuncLit: objects declared within are locals
	fname string

	resultDims []Dim
	reporting  bool

	collectReturns bool
	returns        []Dim
}

func (c *unitChecker) reportf(pos token.Pos, format string, args ...any) {
	if c.reporting {
		c.pass.Reportf(pos, format, args...)
	}
}

// transfer is the abstract-interpretation step for one CFG node.
func (c *unitChecker) transfer(n ast.Node, s analysis.FlowState) {
	env := s.(*unitEnv)
	switch x := n.(type) {
	case *ast.RangeStmt:
		c.rangeHead(x, env)
	case ast.Stmt:
		c.stmt(x, env)
	case ast.Expr:
		c.expr(x, env)
	}
}

func (c *unitChecker) stmt(s ast.Stmt, env *unitEnv) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		c.assign(x, env)
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			var dims []Dim
			for _, v := range vs.Values {
				dims = append(dims, c.expr(v, env))
			}
			for i, name := range vs.Names {
				d := Dim("")
				if i < len(dims) {
					d = dims[i]
				}
				c.bindIdent(name, d, env)
			}
		}
	case *ast.ExprStmt:
		c.expr(x.X, env)
	case *ast.SendStmt:
		c.expr(x.Chan, env)
		c.expr(x.Value, env)
	case *ast.IncDecStmt:
		c.expr(x.X, env)
	case *ast.GoStmt:
		c.expr(x.Call, env)
	case *ast.DeferStmt:
		c.expr(x.Call, env)
	case *ast.ReturnStmt:
		c.returnStmt(x, env)
	}
}

// rangeHead handles the RangeStmt node the CFG places in the loop head:
// evaluate the ranged expression and bind key/value.
func (c *unitChecker) rangeHead(x *ast.RangeStmt, env *unitEnv) {
	xd := c.expr(x.X, env)
	keyDim, valDim := Dim(""), Dim("")
	if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
			// Indices are counts; elements carry the container's dimension
			// (a []int64 of cycle stamps indexes as scalar, yields cycles).
			keyDim, valDim = DimScalar, xd
		}
	}
	if id, ok := x.Key.(*ast.Ident); ok && x.Tok == token.DEFINE {
		c.bindIdent(id, keyDim, env)
	}
	if id, ok := x.Value.(*ast.Ident); ok && x.Tok == token.DEFINE {
		c.bindIdent(id, valDim, env)
	}
}

func (c *unitChecker) returnStmt(x *ast.ReturnStmt, env *unitEnv) {
	for i, res := range x.Results {
		d := c.expr(res, env)
		if i == 0 && c.collectReturns && len(x.Results) > 0 {
			c.returns = append(c.returns, d)
		}
		if i < len(c.resultDims) && conflict(d, c.resultDims[i]) {
			c.reportf(res.Pos(), "return of %s: %s is declared to return %s", d, c.fname, c.resultDims[i])
		}
	}
}

func (c *unitChecker) assign(x *ast.AssignStmt, env *unitEnv) {
	// Compound assignment: x op= y behaves as x = x op y.
	if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
		lhs := x.Lhs[0]
		target := c.expr(lhs, env)
		rhs := c.expr(x.Rhs[0], env)
		var res Dim
		switch x.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			if conflict(target, rhs) {
				c.reportf(x.Pos(), "cross-dimension arithmetic: %s %s %s", target, x.Tok, rhs)
			}
			res = addSubDim(target, rhs)
		case token.MUL_ASSIGN:
			var latency bool
			res, latency = mulDim(target, rhs)
			if latency {
				c.reportf(x.Pos(), "multiplying two latencies (%s * %s)", target, rhs)
			}
		case token.QUO_ASSIGN:
			res = divDim(target, rhs)
		case token.REM_ASSIGN:
			res = remDim(target, rhs)
		case token.SHL_ASSIGN, token.SHR_ASSIGN:
			res = target
		}
		c.store(lhs, res, env)
		return
	}

	var dims []Dim
	if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
		dims = c.tupleDims(x.Rhs[0], len(x.Lhs), env)
	} else {
		for _, r := range x.Rhs {
			dims = append(dims, c.expr(r, env))
		}
	}
	for i, l := range x.Lhs {
		d := Dim("")
		if i < len(dims) {
			d = dims[i]
		}
		c.store(l, d, env)
	}
}

// tupleDims evaluates a multi-value RHS (call, map index, type assert) and
// spreads its result dimensions.
func (c *unitChecker) tupleDims(e ast.Expr, n int, env *unitEnv) []Dim {
	first := c.expr(e, env)
	dims := make([]Dim, n)
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if fn := calleeOf(c.pass.TypesInfo, call); fn != nil {
			if sig, ok := c.u.sigOf(c.pass, fn); ok {
				copy(dims, sig.results)
				return dims
			}
		}
	}
	dims[0] = first
	return dims
}

// store assigns a dimension to an lvalue, checking declared dimensions
// (fields, seeded package vars) and local naming conventions.
func (c *unitChecker) store(l ast.Expr, d Dim, env *unitEnv) {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := objOf(c.pass.TypesInfo, x)
		if obj == nil {
			return
		}
		if declaredWithin(obj, c.scope) {
			c.bindIdent(x, d, env)
			return
		}
		// Package-level variable with a seeded/annotated dimension.
		if want := c.u.objDim(c.pass, obj); conflict(d, want) {
			c.reportf(l.Pos(), "assigning %s to %s, which is declared %s", d, x.Name, want)
		}
	case *ast.SelectorExpr:
		c.expr(x.X, env)
		if sel, ok := c.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			want := c.u.fieldDim(c.pass, sel.Obj(), namedOf(sel.Recv()))
			if conflict(d, want) {
				c.reportf(l.Pos(), "assigning %s to field %s, which is declared %s", d, x.Sel.Name, want)
			}
		}
	case *ast.IndexExpr:
		c.expr(x.X, env)
		c.expr(x.Index, env)
	case *ast.StarExpr:
		c.expr(x.X, env)
	}
}

// bindIdent records a local's dimension, cross-checking the naming
// convention: a variable whose name says ns should not receive cycles.
func (c *unitChecker) bindIdent(id *ast.Ident, d Dim, env *unitEnv) {
	if id.Name == "_" {
		return
	}
	obj := objOf(c.pass.TypesInfo, id)
	if obj == nil {
		return
	}
	expected := c.u.nameDim(id.Name, obj.Type())
	if conflict(d, expected) {
		c.reportf(id.Pos(), "%s is assigned %s, but its name suggests %s", id.Name, d, expected)
	}
	if d == "" && expected != "" {
		d = expected // trust the name when the value is untracked
	}
	env.vars[obj] = d
}

// expr computes the dimension of an expression, reporting conflicts found
// inside it.
func (c *unitChecker) expr(e ast.Expr, env *unitEnv) Dim {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return c.expr(x.X, env)
	case *ast.BasicLit:
		return DimScalar
	case *ast.Ident:
		obj := objOf(c.pass.TypesInfo, x)
		if obj == nil {
			return ""
		}
		if d, ok := env.vars[obj]; ok {
			return d
		}
		if declaredWithin(obj, c.scope) {
			return "" // untracked local
		}
		return c.u.objDim(c.pass, obj)
	case *ast.SelectorExpr:
		return c.selector(x, env)
	case *ast.CallExpr:
		return c.call(x, env)
	case *ast.BinaryExpr:
		return c.binary(x, env)
	case *ast.UnaryExpr:
		d := c.expr(x.X, env)
		if x.Op == token.SUB || x.Op == token.ADD {
			return d
		}
		return ""
	case *ast.StarExpr:
		return c.expr(x.X, env)
	case *ast.IndexExpr:
		d := c.expr(x.X, env)
		c.expr(x.Index, env)
		return d
	case *ast.SliceExpr:
		d := c.expr(x.X, env)
		for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
			if idx != nil {
				c.expr(idx, env)
			}
		}
		return d
	case *ast.CompositeLit:
		c.composite(x, env)
		return ""
	case *ast.TypeAssertExpr:
		c.expr(x.X, env)
		return ""
	}
	return ""
}

func (c *unitChecker) selector(x *ast.SelectorExpr, env *unitEnv) Dim {
	if sel, ok := c.pass.TypesInfo.Selections[x]; ok {
		c.expr(x.X, env)
		if sel.Kind() == types.FieldVal {
			return c.u.fieldDim(c.pass, sel.Obj(), namedOf(sel.Recv()))
		}
		return "" // method value
	}
	// Package-qualified name (clock.FreqGHz, math.MaxInt64, ...).
	if obj := objOf(c.pass.TypesInfo, x.Sel); obj != nil {
		if _, isFunc := obj.(*types.Func); !isFunc {
			return c.u.objDim(c.pass, obj)
		}
	}
	return ""
}

func (c *unitChecker) call(x *ast.CallExpr, env *unitEnv) Dim {
	// Builtins: len/cap are counts; min/max require agreeing dimensions.
	switch builtinName(c.pass.TypesInfo, x) {
	case "len", "cap":
		for _, a := range x.Args {
			c.expr(a, env)
		}
		return DimScalar
	case "min", "max":
		var joined Dim
		for _, a := range x.Args {
			d := c.expr(a, env)
			if conflict(d, joined) {
				c.reportf(a.Pos(), "min/max across dimensions: %s vs %s", joined, d)
			}
			joined = addSubDim(joined, d)
		}
		return joined
	case "":
		// not a builtin
	default:
		for _, a := range x.Args {
			c.expr(a, env)
		}
		return ""
	}

	// Type conversions are transparent for numeric targets: int64(x) and
	// float64(x) do not change what x measures. (This is what catches a
	// "raw cast" replacing clock.Cycles: the ns dimension survives the
	// cast and collides downstream.)
	if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
		d := c.expr(x.Args[0], env)
		if isNumericType(tv.Type) {
			return d
		}
		return ""
	}

	fn := calleeOf(c.pass.TypesInfo, x)
	var sig unitSig
	hasSig := false
	if fn != nil {
		sig, hasSig = c.u.sigOf(c.pass, fn)
	}
	variadic := false
	if fn != nil {
		if s, ok := fn.Type().(*types.Signature); ok {
			variadic = s.Variadic()
		}
	}
	for i, arg := range x.Args {
		ad := c.expr(arg, env)
		if hasSig && !variadic && !x.Ellipsis.IsValid() && i < len(sig.params) {
			if conflict(ad, sig.params[i]) {
				c.reportf(arg.Pos(), "argument %d to %s is %s, parameter is declared %s", i+1, fn.Name(), ad, sig.params[i])
			}
		}
	}
	if hasSig && len(sig.results) > 0 {
		return sig.results[0]
	}
	return ""
}

func (c *unitChecker) binary(x *ast.BinaryExpr, env *unitEnv) Dim {
	a := c.expr(x.X, env)
	b := c.expr(x.Y, env)
	switch x.Op {
	case token.ADD, token.SUB:
		if conflict(a, b) {
			c.reportf(x.OpPos, "cross-dimension arithmetic: %s %s %s", a, x.Op, b)
		}
		return addSubDim(a, b)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		if conflict(a, b) {
			c.reportf(x.OpPos, "comparing %s to %s", a, b)
		}
		return DimScalar
	case token.MUL:
		d, latency := mulDim(a, b)
		if latency {
			c.reportf(x.OpPos, "multiplying two latencies (%s * %s)", a, b)
		}
		return d
	case token.QUO:
		return divDim(a, b)
	case token.REM:
		return remDim(a, b)
	case token.SHL, token.SHR:
		return a
	case token.LAND, token.LOR:
		return DimScalar
	}
	return "" // bit operations: address math, hashes
}

// composite checks struct literal fields against their declared dimensions.
func (c *unitChecker) composite(x *ast.CompositeLit, env *unitEnv) {
	named := namedOf(c.pass.TypesInfo.TypeOf(x))
	var st *types.Struct
	if named != nil {
		st, _ = named.Underlying().(*types.Struct)
	}
	for i, el := range x.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			vd := c.expr(kv.Value, env)
			key, ok := kv.Key.(*ast.Ident)
			if !ok || st == nil {
				continue
			}
			if obj := objOf(c.pass.TypesInfo, key); obj != nil {
				if want := c.u.fieldDim(c.pass, obj, named); conflict(vd, want) {
					c.reportf(kv.Value.Pos(), "field %s.%s is declared %s, got %s", named.Obj().Name(), key.Name, want, vd)
				}
			}
			continue
		}
		vd := c.expr(el, env)
		if st != nil && i < st.NumFields() {
			if want := c.u.fieldDim(c.pass, st.Field(i), named); conflict(vd, want) {
				c.reportf(el.Pos(), "field %s.%s is declared %s, got %s", named.Obj().Name(), st.Field(i).Name(), want, vd)
			}
		}
	}
}
