package lint_test

import (
	"testing"

	"coaxial/internal/lint"
	"coaxial/internal/lint/analysis"
	"coaxial/internal/lint/analysistest"
)

// fixtureLockConfig scopes lockcheck to the hermetic lockfix package,
// keeping the default blocking-call list (the fixture exercises
// sync.WaitGroup.Wait from it).
func fixtureLockConfig() lint.LockConfig {
	cfg := lint.DefaultLockConfig()
	cfg.Scope = []string{"lockfix"}
	return cfg
}

func TestLockCheck(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{
		lint.NewLockCheck(fixtureLockConfig()),
	}, "lockfix")
}
