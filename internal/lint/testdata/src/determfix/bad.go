// Deliberately-bad determinism fixtures: every line below provokes the
// diagnostic its want comment names.
package determfix

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t := time.Now()   // want `time\.Now reads the host clock`
	_ = time.Since(t) // want `time\.Since reads the host clock`
	return 0
}

func globalRand() int {
	return rand.Intn(8) // want `rand\.Intn uses the global process-wide RNG`
}

func lastWriterWins(m map[string]int64) int64 {
	var last int64
	for _, v := range m { // want `map iteration order is nondeterministic`
		last = v
	}
	return last
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		sum += v
	}
	return sum
}

func earlyExit(m map[string]int64) bool {
	for _, v := range m { // want `map iteration order is nondeterministic`
		if v > 0 {
			return true
		}
	}
	return false
}

func unsortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // want `never sorted in this function`
	}
	return keys
}
