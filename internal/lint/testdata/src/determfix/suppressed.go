// Suppression-directive fixtures: a justified //lint:deterministic (or
// //lint:ignore determinism) silences the finding; an unjustified one is
// itself a finding.
package determfix

import "time"

func suppressedJustified(m map[string]int64) int64 {
	var last int64
	//lint:deterministic any surviving entry is an acceptable witness
	for _, v := range m {
		last = v
	}
	return last
}

func suppressedBare(m map[string]int64) int64 {
	var last int64
	//lint:deterministic
	for _, v := range m { // want `needs a justification`
		last = v
	}
	return last
}

func ignoredSameLine() int64 {
	_ = time.Now() //lint:ignore determinism startup banner timestamp only
	return 0
}
