// Clean fixtures: each function below uses one of the commutative map-range
// idioms the analyzer must accept without diagnostics.
package determfix

import (
	"math/rand"
	"sort"
)

func countEntries(m map[string]int) (n int) {
	for range m {
		n++
	}
	return
}

func perKeyWrites(src, dst map[string]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

func intReductions(m map[string]int) (sum, mask int) {
	for _, v := range m {
		sum += v
		mask |= v
	}
	return
}

func maxTracking(m map[string]int64) int64 {
	var best int64
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func pruneNegative(m map[string]int) {
	for k, v := range m {
		if v < 0 {
			delete(m, k)
		}
	}
}

func seededDraws() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(8)
}
