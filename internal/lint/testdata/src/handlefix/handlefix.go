// Package handlefix exercises the handlecheck analyzer: the arena
// Alloc/Release protocol, alias-aware use-after-release and
// double-release, ownership escapes gated on //lint:owns, deferred
// releases, and interprocedural consume / returns-fresh summaries.
package handlefix

import "arena"

// goodRoundTrip is the canonical lifetime: alloc, use, release.
func goodRoundTrip(a *arena.Arena) {
	r := a.Alloc()
	r.Addr = 1
	a.Release(r)
}

// useAfterRelease touches a field after the handle died.
func useAfterRelease(a *arena.Arena) uint64 {
	r := a.Alloc()
	a.Release(r)
	return r.Addr // want "use of handle after release"
}

// doubleRelease releases the same handle twice on one path.
func doubleRelease(a *arena.Arena) {
	r := a.Alloc()
	a.Release(r)
	a.Release(r) // want "double release"
}

// aliasDoubleRelease releases through both names of one handle.
func aliasDoubleRelease(a *arena.Arena) {
	r := a.Alloc()
	q := r
	a.Release(q)
	a.Release(r) // want "double release"
}

// condUse releases on one path only; after the join the handle may be
// released, which is enough to flag the use.
func condUse(a *arena.Arena, b bool) uint64 {
	r := a.Alloc()
	if b {
		a.Release(r)
	}
	return r.Addr // want "use of handle after release"
}

// inspectorsExempt: liveness probes accept released handles by design,
// and nil comparisons are identity checks, not uses.
func inspectorsExempt(a *arena.Arena) bool {
	r := a.Alloc()
	a.Release(r)
	if r == nil {
		return false
	}
	return a.IsLive(r)
}

// passAfterRelease hands a dead handle to an arbitrary function.
func passAfterRelease(a *arena.Arena) {
	r := a.Alloc()
	a.Release(r)
	sink(r) // want "handle passed to sink after release"
}

func sink(r *arena.Request) {}

// pool stores handles without declaring ownership: the handle can never
// be released again.
type pool struct {
	held []*arena.Request
}

func (p *pool) keep(a *arena.Arena) {
	r := a.Alloc()
	p.held = append(p.held, r) // want "live handle stored into field held"
}

// ownedPool declares the transfer protocol, so the store is sanctioned
// and the analysis stops tracking the handle.
type ownedPool struct {
	//lint:owns released by drain, which returns every held handle to the arena
	held []*arena.Request
}

func (p *ownedPool) keep(a *arena.Arena) {
	r := a.Alloc()
	p.held = append(p.held, r)
}

// box escapes a handle through a composite literal field.
type box struct {
	r *arena.Request
}

func badBox(a *arena.Arena) box {
	r := a.Alloc()
	return box{r: r} // want "live handle stored into field r"
}

// tracker escapes a handle as a map key.
type tracker struct {
	seen map[*arena.Request]bool
}

func (t *tracker) track(a *arena.Arena) {
	r := a.Alloc()
	t.seen[r] = true // want "live handle stored into field seen"
}

// scalarStoreIsNotEscape: storing a field read off a handle stores a
// scalar, not the handle.
type last struct {
	addr uint64
}

func (l *last) note(a *arena.Arena) {
	r := a.Alloc()
	l.addr = r.Addr
	a.Release(r)
}

// releaseBoth consumes its handle parameter; handlecheck infers the
// summary and applies it at call sites.
func releaseBoth(a *arena.Arena, r *arena.Request) {
	r.Kind = 2
	a.Release(r)
}

func callerDoubleViaHelper(a *arena.Arena) {
	r := a.Alloc()
	releaseBoth(a, r)
	a.Release(r) // want "double release"
}

func callerUseViaHelper(a *arena.Arena) uint64 {
	r := a.Alloc()
	releaseBoth(a, r)
	return r.Addr // want "use of handle after release"
}

// fresh is an Alloc wrapper; its returns-fresh summary makes the call
// site a tracked allocation.
func fresh(a *arena.Arena) *arena.Request {
	r := a.Alloc()
	r.Kind = 1
	return r
}

func wrapperDoubleRelease(a *arena.Arena) {
	r := fresh(a)
	a.Release(r)
	a.Release(r) // want "double release"
}

// deferRelease is the clean deferred form: every use precedes the
// function-exit release.
func deferRelease(a *arena.Arena) uint64 {
	r := a.Alloc()
	defer a.Release(r)
	r.Addr = 2
	return r.Addr
}

// deferDouble releases once inline and again at exit; the deferred
// release fires at the closing brace.
func deferDouble(a *arena.Arena) {
	r := a.Alloc()
	defer a.Release(r)
	a.Release(r)
} // want "double release"

// stash is an unannotated package-level destination.
var stash *arena.Request

func stashIt(a *arena.Arena) {
	r := a.Alloc()
	stash = r // want "live handle stored into package variable stash"
}

// parked declares its ownership protocol, so parking a handle there is a
// sanctioned transfer.
//
//lint:owns released by unpark, which returns the parked handle
var parked *arena.Request

func park(a *arena.Arena) {
	r := a.Alloc()
	parked = r
}

// loopRealloc re-allocates the same site each iteration; releasing the
// previous iteration's handle is fine.
func loopRealloc(a *arena.Arena, n int) {
	for i := 0; i < n; i++ {
		r := a.Alloc()
		r.Addr = uint64(i)
		a.Release(r)
	}
}
