// Package stats is a fixture stub of a stat-counter type: its own methods
// may maintain internal state freely; everyone else must only accumulate.
package stats

type Histogram struct {
	N   uint64
	Sum float64
	max float64
}

func (h *Histogram) Add(v float64) {
	h.N++
	h.Sum += v
	if v > h.max {
		h.max = v
	}
}

func (h *Histogram) Reset() { *h = Histogram{} }

func (h *Histogram) Max() float64 { return h.max }
