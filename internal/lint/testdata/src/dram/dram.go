// Package dram is a fixture stub of a simulator state package: it declares
// the observation interface and a mutable state type, and is listed as a
// state package in the observer-purity tests.
package dram

type Command struct {
	Kind int
	Addr uint64
}

// CommandObserver receives every command the subchannel issues.
type CommandObserver interface {
	OnCommand(Command)
}

// SubChannel is mutable simulator state an observer must never touch.
type SubChannel struct {
	Busy   int64
	issued uint64
}

// Push mutates the subchannel (not write-free).
func (s *SubChannel) Push(c Command) { s.issued++ }

// Pending is a pure getter (write-free).
func (s *SubChannel) Pending() int { return int(s.issued) }
