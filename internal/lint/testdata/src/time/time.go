// Package time is a fixture stub standing in for the real time package:
// the determinism analyzer matches callees by import path, so these
// signatures are all it needs.
package time

type Time struct{ ns int64 }

type Duration int64

func Now() Time              { return Time{} }
func Since(t Time) Duration  { return 0 }
func Until(t Time) Duration  { return 0 }
func Unix(sec, ns int64) Time { return Time{} }
