package counterfix

// Result mimics sim.Result: every field must stay visible to the golden
// corpus's JSON encoder, recursively through module-declared structs.
type Result struct {
	IPC     float64
	Cycles  uint64
	hidden  uint64                         // want `Result\.hidden is unexported`
	Skipped uint64 `json:"-"`              // want `Result\.Skipped is tagged json`
	Sparse  uint64 `json:"sparse,omitempty"` // want `Result\.Sparse is tagged omitempty`
	Sub     SubResult
}

// SubResult is reached through Result.Sub.
type SubResult struct {
	Hits   uint64
	misses uint64 // want `Result\.Sub\.misses is unexported`
}
