// Counter-hygiene fixtures: stat counters accumulate via += / their own
// methods; plain assignment outside Reset/New-style functions is a
// mid-window reset.
package counterfix

import "stats"

type engine struct {
	hist  stats.Histogram
	reads uint64
}

// record accumulates: always fine.
func (e *engine) record(v float64) {
	e.hist.Add(v)
	e.hist.N += 1
}

// midWindow mutates measurement state destructively.
func (e *engine) midWindow() {
	e.hist = stats.Histogram{} // want `counter stats\.Histogram reset/reassigned outside a Reset/New function`
	e.hist.N = 0               // want `counter stats\.Histogram\.N reset/reassigned outside a Reset/New function`
	e.hist.Sum *= 0.5          // want `counter stats\.Histogram\.Sum mutated with \*=`
	e.hist.N--                 // want `counter stats\.Histogram\.N decremented`
}

// sneaky aliases the counter through a local pointer; still flagged.
func (e *engine) sneaky() {
	h := &e.hist
	h.N = 0 // want `counter stats\.Histogram\.N reset/reassigned outside a Reset/New function`
}

// resetWindow is a sanctioned reset (name prefix).
func (e *engine) resetWindow() {
	e.hist = stats.Histogram{}
}

// newEngine is a sanctioned constructor (name prefix).
func newEngine() *engine {
	e := &engine{}
	e.hist = stats.Histogram{}
	return e
}

// collect assembles a snapshot in a local value: not live measurement
// state, so plain assignment is fine.
func collect(e *engine) stats.Histogram {
	var snap stats.Histogram
	snap = e.hist
	snap.N = e.reads
	return snap
}
