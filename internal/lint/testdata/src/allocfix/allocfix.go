// Package allocfix exercises the alloccheck analyzer: escaping
// composites/new/make, value-semantics copies (clean), un-hinted append
// growth in loops, interface boxing, string conversions, always-allocating
// calls, interprocedural summaries, //lint:allocfree roots, and
// //lint:alloc suppression with mandatory justification.
package allocfix

import "fmt"

type node struct {
	id   int
	next *node
}

type box struct {
	sink  *node
	items []int
	any   interface{}
}

var global *node

// coldPath is not a hot root: everything here is allowed.
func coldPath() *node {
	n := &node{id: 1}
	global = n
	return n
}

// ---- escapes ----

//lint:allocfree
func hotFieldStore(b *box) {
	n := &node{id: 1} // want `heap allocation in hot path: &allocfix\.node literal escapes \(stored into field sink\)`
	b.sink = n
}

//lint:allocfree
func hotReturnPtr() *node {
	return &node{id: 2} // want `heap allocation in hot path: &allocfix\.node literal escapes \(returned\)`
}

//lint:allocfree
func hotGlobalStore() {
	global = &node{id: 3} // want `heap allocation in hot path: &allocfix\.node literal escapes \(stored into package variable global\)`
}

//lint:allocfree
func hotNewEscape(b *box) {
	p := new(node) // want `heap allocation in hot path: new\(allocfix\.node\) escapes \(stored into field sink\)`
	b.sink = p
}

//lint:allocfree
func hotMakeEscape(b *box) {
	s := make([]int, 8) // want `heap allocation in hot path: make\(\[\]int, \.\.\) escapes \(stored into field items\)`
	b.items = s
}

//lint:allocfree
func hotClosureCapture() func() int {
	s := make([]int, 4) // want `heap allocation in hot path: make\(\[\]int, \.\.\) escapes \(captured by a closure\)`
	return func() int { return len(s) }
}

//lint:allocfree
func hotAddrOfValue(b *box) {
	v := node{id: 4} // want `heap allocation in hot path: allocfix\.node literal escapes \(stored into field sink\)`
	b.sink = &v
}

// ---- value semantics: copies, not allocations ----

//lint:allocfree
func cleanValueReturn() node {
	v := node{id: 5}
	return v
}

//lint:allocfree
func cleanValueStore(dst []node) {
	dst[0] = node{id: 6}
}

//lint:allocfree
func cleanLocalScratch() int {
	v := node{id: 7}
	v.id++
	return v.id
}

// ---- maps and channels ----

//lint:allocfree
func hotMakeMap() {
	m := make(map[int]int) // want `heap allocation in hot path: make of a map always allocates`
	m[1] = 2
}

//lint:allocfree
func hotMapLiteral() int {
	weights := map[string]int{"a": 1} // want `heap allocation in hot path: map literal always allocates`
	return weights["a"]
}

// ---- append growth ----

//lint:allocfree
func hotAppendNoHint(xs []int) int {
	buf := []int{} // want `append in a loop grows buf, which was created without a capacity hint`
	for _, x := range xs {
		buf = append(buf, x)
	}
	return len(buf)
}

//lint:allocfree
func cleanAppendHinted(xs []int) int {
	buf := make([]int, 0, len(xs))
	for _, x := range xs {
		buf = append(buf, x)
	}
	return len(buf)
}

//lint:allocfree
func cleanAppendOnce(xs []int) int {
	// A one-shot append outside any loop amortizes; not flagged. (The
	// slice must not escape — returning it would be an allocation.)
	buf := make([]int, 0)
	buf = append(buf, len(xs))
	return len(buf)
}

type ring struct {
	retained []int
}

//lint:allocfree
func (r *ring) cleanAppendField(xs []int) {
	// Retained-buffer discipline: appends to fields amortize to zero once
	// warm, exactly like the simulator's drain queues.
	r.retained = r.retained[:0]
	for _, x := range xs {
		r.retained = append(r.retained, x)
	}
}

// ---- interface boxing ----

func consume(v interface{}) int { return 0 }

func consumeVariadic(vs ...interface{}) int { return len(vs) }

//lint:allocfree
func hotBoxArg(n int) int {
	return consume(n) // want `interface boxing in hot path: int value n converted to interface\{\}`
}

//lint:allocfree
func hotBoxAssign(b *box, n int) {
	b.any = n // want `interface boxing in hot path: int value n converted to interface\{\}`
}

//lint:allocfree
func hotBoxConvert(n int) interface{} {
	return interface{}(n) // want `interface boxing in hot path: int value n converted to interface\{\}`
}

//lint:allocfree
func cleanBoxPointer(b *box, p *node) int {
	// Pointers fit the interface word: no allocation.
	b.any = p
	return consume(p)
}

//lint:allocfree
func cleanBoxConst() int {
	// Constants fold to static interface cells.
	return consume(42)
}

//lint:allocfree
func cleanEllipsisForward(vs ...interface{}) int {
	// Forwarding an existing []interface{} boxes nothing new.
	return consumeVariadic(vs...)
}

// ---- string conversions ----

//lint:allocfree
func hotBytesToString(b []byte) string {
	return string(b) // want `string conversion allocates in hot path: string\(b\) copies`
}

//lint:allocfree
func hotStringToBytes(s string) []byte {
	return []byte(s) // want `string conversion allocates in hot path: \[\]byte\(s\) copies`
}

// ---- always-allocating calls ----

//lint:allocfree
func hotSprintf(n int) string {
	return fmt.Sprintf("n=%d", n) // want `call to fmt\.Sprintf allocates in hot path`
}

// ---- interprocedural summaries ----

func escHelper(b *box) {
	b.sink = &node{id: 8}
}

func cleanHelper(b *box) int {
	v := node{id: 9}
	return v.id + len(b.items)
}

func chainHelper(b *box) {
	escHelper(b)
}

//lint:allocfree
func hotCallsEscHelper(b *box) {
	escHelper(b) // want `call to escHelper allocates in hot path`
}

//lint:allocfree
func hotCallsChain(b *box) {
	chainHelper(b) // want `call to chainHelper allocates in hot path`
}

//lint:allocfree
func cleanCallsCleanHelper(b *box) int {
	return cleanHelper(b)
}

// suppressedHelper's allocation carries a justification, so its summary
// stays alloc-free and hot callers are not tainted.
func suppressedHelper(b *box) {
	b.sink = &node{id: 10} //lint:alloc one-time window-end report, measured cold
}

//lint:allocfree
func cleanCallsSuppressedHelper(b *box) {
	suppressedHelper(b)
}

// ---- suppression ----

//lint:allocfree
func suppressedDirect(b *box) {
	b.sink = &node{id: 11} //lint:alloc arena refill, amortized over the window
}

//lint:allocfree
func suppressedViaIgnore(b *box) {
	b.sink = &node{id: 12} //lint:ignore alloccheck startup-only wiring
}

//lint:allocfree
func unjustifiedSuppression(b *box) {
	//lint:alloc
	b.sink = &node{id: 13} // want `suppression directive //lint:alloc needs a justification`
}

// tableHot is checked through the fixture config's HotFuncs table rather
// than an annotation.
func tableHot() *node {
	return &node{id: 14} // want `heap allocation in hot path: &allocfix\.node literal escapes \(returned\)`
}
