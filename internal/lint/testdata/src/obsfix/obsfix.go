// Observer-purity fixtures: implementations of dram.CommandObserver (and
// configured hook types) may accumulate into their own state but must not
// mutate the simulation they watch.
package obsfix

import "dram"

var totalCommands uint64

// goodOracle accumulates into receiver-rooted state only.
type goodOracle struct {
	commands uint64
	last     dram.Command
	perBank  map[uint64]uint64
}

func (o *goodOracle) OnCommand(c dram.Command) {
	o.commands++
	o.last = c
	o.perBank[c.Addr]++
}

// prune mutates the oracle's own map: fine (all methods of an observer
// type are checked, not just the interface method).
func (o *goodOracle) prune(addr uint64) {
	delete(o.perBank, addr)
}

// badOracle mutates the simulation it watches.
type badOracle struct {
	sc *dram.SubChannel
}

func (o *badOracle) OnCommand(c dram.Command) {
	totalCommands++    // want `observer mutates package-level state "totalCommands"`
	o.sc.Busy = 1      // want `observer writes simulator state through o\.sc`
	o.sc.Push(c)       // want `observer calls SubChannel\.Push, which may mutate simulator state`
	_ = o.sc.Pending() // write-free getter: fine
}

// peek is write-free; drain is not.
func peek(sc *dram.SubChannel) int64  { return sc.Busy }
func drain(sc *dram.SubChannel) int64 { sc.Busy = 0; return 0 }

// hook is checked via the HookTypes configuration (no interface names it).
type hook struct {
	seen int
	sc   *dram.SubChannel
}

func (h *hook) OnTick() {
	h.seen++
	h.sc.Busy++ // want `observer writes simulator state through h\.sc`
}

func (h *hook) OnEnd() {
	_ = peek(h.sc) // write-free: fine
	_ = drain(h.sc) // want `observer passes simulator state to drain, which is not write-free`
}
