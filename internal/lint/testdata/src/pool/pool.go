// Package pool is a fixture stand-in for sim.workerPool: Run hands each
// worker function its worker index, and is configured as a phase-isolation
// spawner ("pool.Pool.Run") in the analyzer tests.
package pool

type Pool struct{}

func (p *Pool) Run(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
