// Package rand is a fixture stub for math/rand: package-level draws use
// the (forbidden) global generator; constructors and methods are fine.
package rand

type Source struct{ seed int64 }

type Rand struct{ src *Source }

func NewSource(seed int64) *Source { return &Source{seed: seed} }
func New(src *Source) *Rand        { return &Rand{src: src} }

func Intn(n int) int    { return 0 }
func Float64() float64  { return 0 }
func Uint64() uint64    { return 0 }

func (r *Rand) Intn(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }
