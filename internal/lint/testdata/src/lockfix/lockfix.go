// Package lockfix exercises the lockcheck analyzer: //lint:guardedby
// field annotations, the held-lock lattice through defer and branches,
// double-lock and unlock-without-lock, blocking operations under a lock,
// interprocedural requires inference, and RWMutex read/write modes.
package lockfix

import "sync"

type counter struct {
	mu sync.Mutex
	//lint:guardedby mu
	n int
}

// good is the canonical pattern: manual lock/unlock bracket.
func (c *counter) good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// goodDefer releases via defer; the RunDefers node balances the exit.
func (c *counter) goodDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// goodDeferClosure releases inside a deferred closure.
func (c *counter) goodDeferClosure() {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	c.n++
}

// lateLock touches the guarded field before acquiring the guard. Because
// the function manipulates mu itself, the miss is a local bug, not an
// inferred entry requirement.
func (c *counter) lateLock() {
	c.n++ // want "write of n requires mu, which is not held"
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// doubleLock re-locks a mutex that is already held: Go mutexes are not
// reentrant, so this self-deadlocks.
func (c *counter) doubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want "Lock of mu, which may already be held"
}

// badUnlock releases a mutex that was never acquired.
func (c *counter) badUnlock() {
	c.mu.Unlock() // want "Unlock of mu, which is not held"
}

// leak returns with the lock still held on every path.
func (c *counter) leak() {
	c.mu.Lock() // want "mu acquired here is still held when leak returns"
	c.n++
}

// condLeak releases on only one path.
func (c *counter) condLeak(b bool) {
	c.mu.Lock() // want "mu acquired here may still be held on some return paths of condLeak"
	if b {
		c.mu.Unlock()
	}
}

// sendUnderLock performs an unbuffered-channel send while holding the
// lock: if no receiver ever arrives, the lock is held forever.
func (c *counter) sendUnderLock(ch chan int) {
	c.mu.Lock()
	ch <- 1 // want "channel send while holding mu"
	c.mu.Unlock()
}

// recvUnderLock blocks on a receive while holding the lock.
func (c *counter) recvUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	<-ch // want "channel receive while holding mu"
}

// pollUnderLock is the sanctioned non-blocking form: a select with a
// default clause polls instead of blocking, so holding the lock is fine.
func (c *counter) pollUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// selectUnderLock has no default clause, so the receive can block.
func (c *counter) selectUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-ch: // want "channel receive while holding mu"
	}
}

// rangeChanUnderLock blocks on every iteration's receive.
func (c *counter) rangeChanUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for range ch { // want "range over channel while holding mu"
	}
}

// waitUnderLock calls a configured blocking-list function under the lock.
func (c *counter) waitUnderLock(wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want "call to Wait while holding mu"
}

// nLocked reads guarded state and never manipulates mu itself, so
// lockcheck infers that callers must hold mu on entry.
func (c *counter) nLocked() int {
	return c.n
}

// callsHelperGood holds the inferred requirement at the call site.
func (c *counter) callsHelperGood() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nLocked()
}

// callsHelperBad calls the requires-mu helper without the lock. The
// function manipulates mu elsewhere, so the miss is local, not inherited.
func (c *counter) callsHelperBad() int {
	n := c.nLocked() // want "call to nLocked requires mu, which is not held"
	c.mu.Lock()
	n += c.n
	c.mu.Unlock()
	return n
}

// spawnMethod spawns a requires-mu method directly: locks never transfer
// across a go statement, so this is wrong even if the caller holds mu.
func (c *counter) spawnMethod() {
	go c.nLocked() // want "goroutine nLocked requires mu held, but locks do not transfer to goroutines"
}

// loopContinue leaks the lock on the continue path: the labeled continue
// skips the unlock, so the next iteration's Lock may self-deadlock and
// the loop can exit with the lock held.
func (c *counter) loopContinue(xs []int) {
L:
	for _, x := range xs {
		c.mu.Lock() // want "Lock of mu, which may already be held" "mu acquired here may still be held on some return paths of loopContinue"
		if x > 0 {
			continue L
		}
		c.mu.Unlock()
	}
}

// gauge exercises RWMutex read/write modes.
type gauge struct {
	rw sync.RWMutex
	//lint:guardedby rw
	v int
}

// read holds the guard in read mode, which is enough for a read.
func (g *gauge) read() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

// writeUnderRLock mutates guarded state with only the read lock.
func (g *gauge) writeUnderRLock() {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.v = 1 // want "write of v with rw held only in read mode"
}

// write holds the guard in write mode.
func (g *gauge) write() {
	g.rw.Lock()
	defer g.rw.Unlock()
	g.v = 2
}

// owner/item exercise the Type.mu annotation form: the guard lives on a
// different struct than the guarded field.
type owner struct {
	mu sync.Mutex
}

type item struct {
	//lint:guardedby owner.mu
	val int
}

func useItemGood(o *owner, it *item) {
	o.mu.Lock()
	defer o.mu.Unlock()
	it.val++
}

func useItemBad(o *owner, it *item) {
	it.val++ // want "write of val requires owner.mu, which is not held"
	o.mu.Lock()
	o.mu.Unlock()
}

// badAnn has annotations that cannot bind; an inert annotation is itself
// a finding.
type badAnn struct {
	n int
	//lint:guardedby notafield
	x int // want "guard notafield not found in the annotated struct"
	//lint:guardedby n
	y int // want "guard n is not a sync.Mutex or sync.RWMutex"
}
