// Package sort is a fixture stub: the determinism analyzer recognizes the
// collect-then-sort idiom by the callee's import path.
package sort

func Strings(x []string)                       {}
func Ints(x []int)                             {}
func Slice(x any, less func(i, j int) bool)    {}
