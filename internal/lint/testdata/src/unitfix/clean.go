// Clean fixtures: dimensionally sound code unitcheck must stay silent on —
// blessed conversions, dimensionless scale factors, joins that genuinely
// lose information, and cycle-aligned remainders.
package unitfix

func properAdd(now int64, l Link) int64 {
	return now + toCycles(l.PortNS)
}

func properCompare(now int64, t Timing) bool {
	return now >= t.RCD
}

func scaleFactor(t Timing) int64 {
	return 4 * t.RCD // dimensionless literals scale freely
}

func remAlign(now int64, t Timing) int64 {
	return now % t.RCD // refresh-style cycle alignment keeps the dimension
}

func ghzAlgebra(l Link) int64 {
	return int64(l.PortNS*FreqGHz + 0.5) // ns * GHz = cycles: the conversion itself
}

// branchJoin loses v's dimension at the merge (cycles on one path, ns on
// the other): joined-to-unknown must not report downstream.
func branchJoin(now int64, l Link, cond bool) int64 {
	v := now
	if cond {
		v = int64(l.PortNS)
	}
	return v + now
}

// shortCircuit: the right operand of && only evaluates on the left's true
// path; its comparison is same-dimension and clean.
func shortCircuit(now int64, t Timing) bool {
	return now > 0 && now < t.RCD
}

// rangeClean: ranging over a slice of cycle stamps yields scalar indices
// and cycle-valued elements.
func rangeClean(stamps []int64, t Timing) int64 {
	var last int64
	for i, s := range stamps {
		last = s + int64(i)*t.RCD
	}
	return last
}

// sentinelReturn: dimensionless sentinels (0, -1) are compatible with any
// declared result dimension.
func earliest(ready bool, l Link) int64 {
	if !ready {
		return -1
	}
	return l.readyAt
}
