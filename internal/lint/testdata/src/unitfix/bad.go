// Dimension-analysis fixtures: each marked line mixes dimensions the way a
// real clock-domain bug would, and unitcheck must flag exactly the
// diagnostic its want comment names. The test's declaration table seeds
// FreqGHz (GHz), toCycles/toNS/hopCycles (conversion signatures),
// Timing.* (cycles), and Link.PortNS (ns).
package unitfix

// Link stands in for a CXL-ish link config: PortNS is table-seeded ns;
// readyAt is dimensioned by annotation.
type Link struct {
	PortNS  float64
	readyAt int64 //lint:unit cycles
}

// Timing stands in for the DDR timing table (all cycles via the wildcard).
type Timing struct {
	RCD int64
	RP  int64
}

const FreqGHz = 2.4

func toCycles(ns float64) int64 { return int64(ns*FreqGHz + 0.5) }

func toNS(cycles int64) float64 { return float64(cycles) / FreqGHz }

func addMismatch(now int64, l Link) int64 {
	return now + int64(l.PortNS) // want `cross-dimension arithmetic: cycles \+ ns`
}

func compareMismatch(now int64, l Link) bool {
	return float64(now) < l.PortNS // want `comparing cycles to ns`
}

func latencyProduct(t Timing, l Link) float64 {
	return float64(t.RCD) * l.PortNS // want `multiplying two latencies \(cycles \* ns\)`
}

func argMismatch(t Timing) int64 {
	return toCycles(float64(t.RCD)) // want `argument 1 to toCycles is cycles, parameter is declared ns`
}

func fieldMismatch(l *Link) {
	l.readyAt = int64(l.PortNS) // want `assigning ns to field readyAt, which is declared cycles`
}

func localNameMismatch(l Link) {
	portCycles := int64(l.PortNS) // want `portCycles is assigned ns, but its name suggests cycles`
	_ = portCycles
}

// hopCycles is pinned "-> cycles" by the declaration table.
func hopCycles(l Link) int64 {
	return int64(l.PortNS) // want `return of ns: hopCycles is declared to return cycles`
}

func compositeMismatch(now int64) Link {
	return Link{PortNS: float64(now)} // want `field Link.PortNS is declared ns, got cycles`
}

func minMismatch(now int64, l Link) int64 {
	return min(now, int64(l.PortNS)) // want `min/max across dimensions: cycles vs ns`
}

// loopMismatch exercises the fixpoint: acc's dimension must survive the
// loop's join to be compared against readyAt after it.
func loopMismatch(n int, l Link) float64 {
	acc := toNS(l.readyAt)
	for i := 0; i < n; i++ {
		acc += l.PortNS
	}
	return acc + float64(l.readyAt) // want `cross-dimension arithmetic: ns \+ cycles`
}

// inferMismatch consumes a result dimension the analyzer inferred (doubleRCD
// has no table entry or annotation; its body makes it cycles).
func doubleRCD(t Timing) int64 { return 2 * t.RCD }

func inferMismatch(t Timing, l Link) float64 {
	return float64(doubleRCD(t)) + l.PortNS // want `cross-dimension arithmetic: cycles \+ ns`
}

type badAnnotated struct {
	x int64 //lint:unit parsecs // want `bad //lint:unit annotation`
}

//lint:nonsense no such directive exists // want `unknown directive //lint:nonsense`

//lint:ignore nosuchanalyzer with a reason // want `//lint:ignore must name an analyzer`
