// Suppression fixtures: a justified //lint:ignore unitcheck silences a
// finding at an intentional reinterpretation boundary; an unjustified one
// is itself reported. The //lint:unit directive is an annotation, never a
// suppression — it declares a dimension, it cannot silence a finding.
package unitfix

func suppressedAdd(now int64, l Link) int64 {
	//lint:ignore unitcheck adapter boundary reinterprets the port latency deliberately
	return now + int64(l.PortNS)
}

func unjustifiedSuppression(now int64, l Link) int64 {
	//lint:ignore unitcheck
	return now + int64(l.PortNS) // want `suppression directive //lint:ignore needs a justification`
}
