// Phase-isolation fixtures: workers handed to pool.Pool.Run (a configured
// spawner) may only touch state derived from their worker index.
package phasefix

import "pool"

type core struct{ cycles int64 }

func (c *core) tick() { c.cycles++ }

type system struct {
	pool   *pool.Pool
	cores  []core
	next   []int64
	shared int64
	stamp  int64
}

func (s *system) countUp() { s.shared++ }

// limit is write-free, so workers may call it.
func limit(v, hi int64) int64 {
	if v > hi {
		return hi
	}
	return v
}

// tickPar is the clean direct-index pattern.
func (s *system) tickPar(now int64) {
	s.pool.Run(len(s.cores), func(i int) {
		s.cores[i].tick()
		s.next[i] = now + 1
	})
}

// tickDuePar derives the element index from the worker index (i := due[k]).
func (s *system) tickDuePar(due []int) {
	s.pool.Run(len(due), func(k int) {
		i := due[k]
		s.cores[i].tick()
		s.next[i] = limit(s.next[i]+1, 1<<40)
	})
}

// locals inside the worker are always fair game.
func (s *system) scratch() {
	s.pool.Run(len(s.cores), func(i int) {
		sum := int64(0)
		sum += s.next[i]
		_ = sum
	})
}

// races shows every flavour of cross-worker sharing the analyzer rejects.
func (s *system) races(now int64) {
	s.pool.Run(len(s.cores), func(i int) {
		s.cores[i].tick()
		s.shared++    // want `mutates shared state not derived from its worker index`
		s.stamp = now // want `writes shared state not derived from its worker index`
		s.countUp()   // want `calls countUp, which mutates state not derived from the worker index`
	})
}

// goroutine bodies in scope packages are held to the same rules.
func (s *system) spawn() {
	go func() {
		s.shared++ // want `mutates shared state not derived from its worker index`
	}()
}
