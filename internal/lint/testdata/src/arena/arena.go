// Package arena is a hermetic stand-in for the real request arena: the
// same Alloc/Release/inspector surface, enough for handlecheck fixtures
// to exercise the protocol without importing the repository.
package arena

type Request struct {
	Addr uint64
	Kind int
}

type Arena struct{ live int }

func New() *Arena { return &Arena{} }

func (a *Arena) Alloc() *Request        { a.live++; return &Request{} }
func (a *Arena) Release(r *Request)     { a.live-- }
func (a *Arena) IsLive(r *Request) bool { return r != nil }
