package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"coaxial/internal/lint/analysis"
)

// handlecheck is a static arena-handle lifetime analysis. The request
// arena (memreq.Arena) recycles *memreq.Request objects through an
// explicit Alloc/Release protocol; the generation counters catch misuse at
// run time, but only on the paths a test happens to execute. handlecheck
// proves the protocol statically along every path:
//
//   - use-after-release: a field access, method call, or call argument on
//     a handle after the path released it,
//   - double-release: releasing a handle twice along one path,
//   - escape without transfer: storing a live handle into a struct field,
//     map, slice element, or package-level variable whose declaration does
//     not carry a //lint:owns annotation naming the release protocol.
//
// The flow state is an alias-aware cell model: every allocation site (and
// every handle-typed parameter) is a cell; variables bind to cells, so
// `q := r` makes q and r the same handle, and releasing through either
// name releases both. Cell states order live < released < unknown and
// join by maximum: a handle released on one incoming path is treated as
// released after the merge, and a handle whose ownership was transferred
// (stored into an annotated container, or passed to a function whose
// summary says it consumes the argument) goes to unknown — the analysis
// stops tracking it rather than guessing.
//
// Interprocedural reasoning mirrors lockcheck's: each function's summary —
// the exit state of every handle-typed parameter, plus whether every
// return yields a freshly allocated handle — propagates through the fact
// store in dependency order, so callers see through helpers like
// releaseRetired without any annotation. Calls with no summary (interface
// dispatch, function values, stdlib) leave handle state untouched: the
// benefit of the doubt, traded for zero false positives.
type handlecheckState struct {
	cfg        HandleConfig
	allocs     map[string]bool
	releases   map[string]bool
	inspectors map[string]bool
	handleType map[string]bool
	cfgCache   map[*ast.FuncDecl]*analysis.CFG
}

// HandleConfig configures the handlecheck analyzer.
type HandleConfig struct {
	// Scope lists import-path prefixes where findings are reported.
	Scope []string
	// HandleTypes are qualified names (pkgpath.Type) of arena-managed
	// types; a handle is a pointer to one of these.
	HandleTypes []string
	// Allocs are qualified names of allocator functions whose result is a
	// fresh live handle.
	Allocs []string
	// Releases are qualified names of release functions; the first
	// handle-typed argument is the handle being released.
	Releases []string
	// Inspectors are qualified names of read-only functions that accept
	// released handles by design (liveness probes, generation captures).
	Inspectors []string
}

// DefaultHandleConfig returns the request-arena protocol of this
// repository.
func DefaultHandleConfig() HandleConfig {
	return HandleConfig{
		Scope: []string{
			"coaxial/internal/sim",
			"coaxial/internal/memreq",
			"coaxial/internal/dram",
			"coaxial/internal/cxl",
			"coaxial/internal/validate",
			"coaxial/internal/rack",
		},
		HandleTypes: []string{"coaxial/internal/memreq.Request"},
		Allocs:      []string{"coaxial/internal/memreq.Arena.Alloc"},
		Releases:    []string{"coaxial/internal/memreq.Arena.Release"},
		Inspectors: []string{
			"coaxial/internal/memreq.Arena.Owns",
			"coaxial/internal/memreq.Arena.IsLive",
			"coaxial/internal/memreq.Arena.HandleOf",
		},
	}
}

// Fact keys.
const (
	ownsFact      = "handleowns" // destination object -> justification string
	handleSumFact = "handlesum"  // *types.Func -> handleSummary
)

// handleSummary is a function's interprocedural handle behavior: the exit
// state of each handle-typed parameter (by parameter position), and
// whether every return statement yields a freshly allocated handle.
type handleSummary struct {
	params       map[int]int8
	returnsFresh bool
}

func (s handleSummary) equal(o handleSummary) bool {
	if s.returnsFresh != o.returnsFresh || len(s.params) != len(o.params) {
		return false
	}
	for k, v := range s.params {
		if o.params[k] != v {
			return false
		}
	}
	return true
}

// NewHandleCheck builds the handlecheck analyzer from a configuration.
func NewHandleCheck(cfg HandleConfig) *analysis.Analyzer {
	h := &handlecheckState{
		cfg:        cfg,
		allocs:     map[string]bool{},
		releases:   map[string]bool{},
		inspectors: map[string]bool{},
		handleType: map[string]bool{},
		cfgCache:   map[*ast.FuncDecl]*analysis.CFG{},
	}
	for _, q := range cfg.Allocs {
		h.allocs[q] = true
	}
	for _, q := range cfg.Releases {
		h.releases[q] = true
	}
	for _, q := range cfg.Inspectors {
		h.inspectors[q] = true
	}
	for _, q := range cfg.HandleTypes {
		h.handleType[q] = true
	}
	return &analysis.Analyzer{
		Name:        "handlecheck",
		Doc:         "arena-handle lifetime analysis: use-after-release, double-release, and live handles escaping to containers without a //lint:owns transfer annotation",
		Annotations: []string{"owns"},
		Run:         h.run,
	}
}

func (h *handlecheckState) run(pass *analysis.Pass) error {
	h.annotate(pass)
	h.inferSummaries(pass)
	if pathPrefixes(pass.Pkg.Path(), h.cfg.Scope) {
		h.reportPackage(pass)
	}
	return nil
}

// annotate records //lint:owns annotations — on struct fields and on
// package-level variables — as ownership-transfer facts. The mandatory
// justification names who releases handles stored there.
func (h *handlecheckState) annotate(pass *analysis.Pass) {
	record := func(pos token.Pos, obj types.Object) {
		args, ok := pass.DirectiveOn(pos, "owns")
		if !ok {
			return
		}
		why, err := analysis.ParseOwns(args)
		if err != nil {
			pass.Reportf(pos, "bad //lint:owns annotation: %v", err)
			return
		}
		if obj != nil {
			pass.Facts.Set(obj, ownsFact, why)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.StructType:
				for _, field := range x.Fields.List {
					for _, name := range field.Names {
						record(field.Pos(), pass.TypesInfo.Defs[name])
					}
				}
			case *ast.GenDecl:
				if x.Tok != token.VAR {
					return true
				}
				for _, spec := range x.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						record(vs.Pos(), pass.TypesInfo.Defs[name])
					}
				}
			}
			return true
		})
	}
}

// owned reports whether obj carries an ownership-transfer annotation.
func (h *handlecheckState) owned(pass *analysis.Pass, obj types.Object) bool {
	_, ok := pass.Facts.Get(obj, ownsFact)
	return ok
}

// isHandle reports whether t is a pointer to a configured handle type.
func (h *handlecheckState) isHandle(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named := namedOf(ptr.Elem())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return h.handleType[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// ---- flow state ----

// Handle cell states, ordered so Join is max.
const (
	hLive int8 = iota
	hReleased
	hUnknown
)

// handleEnv is the flow state: variable -> cell bindings and cell ->
// lifetime states. Cell identity is the allocation site (or parameter
// declaration), so a loop re-executing an Alloc reuses the cell and the
// assignment resets it to live.
type handleEnv struct {
	vars  map[types.Object]int
	cells map[int]int8
	// defers holds deferred release operations (defer arena.Release(r)),
	// applied LIFO at RunDefers; joined by longest common prefix.
	defers []int // cell ids
}

func newHandleEnv() *handleEnv {
	return &handleEnv{vars: map[types.Object]int{}, cells: map[int]int8{}}
}

func (e *handleEnv) Clone() analysis.FlowState {
	c := &handleEnv{
		vars:   make(map[types.Object]int, len(e.vars)),
		cells:  make(map[int]int8, len(e.cells)),
		defers: append([]int(nil), e.defers...),
	}
	for k, v := range e.vars {
		c.vars[k] = v
	}
	for k, v := range e.cells {
		c.cells[k] = v
	}
	return c
}

func (e *handleEnv) Join(other analysis.FlowState) bool {
	o := other.(*handleEnv)
	changed := false
	// vars: keep only bindings both paths agree on.
	for k, v := range e.vars {
		if ov, ok := o.vars[k]; !ok || ov != v {
			delete(e.vars, k)
			changed = true
		}
	}
	// cells: max state; a cell only one path knows keeps its state.
	for k, ov := range o.cells {
		v, ok := e.cells[k]
		if !ok {
			e.cells[k] = ov
			changed = true
			continue
		}
		if ov > v {
			e.cells[k] = ov
			changed = true
		}
	}
	// defers: longest common prefix.
	n := len(e.defers)
	if len(o.defers) < n {
		n = len(o.defers)
	}
	i := 0
	for i < n && e.defers[i] == o.defers[i] {
		i++
	}
	if i < len(e.defers) {
		e.defers = e.defers[:i]
		changed = true
	}
	return changed
}

// ---- per-function analysis ----

type handleChecker struct {
	h    *handlecheckState
	pass *analysis.Pass
	// cellAt interns cells by creation site.
	cellAt map[token.Pos]int
	// fresh marks cells created by an allocation in this function (not
	// parameters), for returnsFresh inference.
	fresh map[int]bool
	// reporting enables diagnostics (the replay pass).
	reporting bool
	// tally enables return-freshness counting (the summary replay).
	tally bool
	// returns tallies return statements with a handle-typed result and
	// how many of those returned a fresh live cell.
	returns, freshReturns int
}

func (c *handleChecker) cell(pos token.Pos) int {
	id, ok := c.cellAt[pos]
	if !ok {
		id = len(c.cellAt) + 1
		c.cellAt[pos] = id
	}
	return id
}

// cellOf returns the cell a tracked identifier is bound to, or 0.
func (c *handleChecker) cellOf(e ast.Expr, env *handleEnv) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0
	}
	obj := objOf(c.pass.TypesInfo, id)
	if obj == nil {
		return 0
	}
	return env.vars[obj]
}

func (c *handleChecker) report(pos token.Pos, format string, args ...any) {
	if c.reporting {
		c.pass.Reportf(pos, format, args...)
	}
}

// transfer is the abstract step for one CFG node.
func (c *handleChecker) transfer(n ast.Node, s analysis.FlowState) {
	env := s.(*handleEnv)
	switch x := n.(type) {
	case *analysis.RunDefers:
		for i := len(env.defers) - 1; i >= 0; i-- {
			c.applyRelease(env.defers[i], x.At, env)
		}
		env.defers = nil
	case *ast.DeferStmt:
		if fn := calleeOf(c.pass.TypesInfo, x.Call); fn != nil && c.h.releases[funcQName(fn)] {
			for _, arg := range x.Call.Args {
				if cl := c.cellOf(arg, env); cl != 0 {
					env.defers = append(env.defers, cl)
				}
			}
			return
		}
		c.scanUses(x.Call, env)
	case *ast.AssignStmt:
		c.assign(x, env)
	case *ast.ReturnStmt:
		c.returnStmt(x, env)
	case *ast.RangeStmt:
		c.scanUses(x.X, env)
		// Range bindings over handle containers produce untracked values;
		// drop any shadowed bindings.
		for _, lhs := range []ast.Expr{x.Key, x.Value} {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := objOf(c.pass.TypesInfo, id); obj != nil {
					delete(env.vars, obj)
				}
			}
		}
	default:
		c.scanUses(n, env)
	}
}

// applyRelease transitions one cell through a release.
func (c *handleChecker) applyRelease(cl int, pos token.Pos, env *handleEnv) {
	switch env.cells[cl] {
	case hReleased:
		c.report(pos, "handle may already be released: double release")
	case hUnknown:
		// Ownership was transferred; whoever owns it now releases it.
		// Releasing it here anyway is exactly the double-free the transfer
		// annotation exists to prevent — but without tracking we stay
		// quiet rather than guess.
	}
	env.cells[cl] = hReleased
}

// assign handles bindings, aliasing, and escape checks for one assignment.
func (c *handleChecker) assign(x *ast.AssignStmt, env *handleEnv) {
	if len(x.Lhs) == len(x.Rhs) {
		for i := range x.Lhs {
			c.assignPair(x.Lhs[i], x.Rhs[i], env)
		}
		return
	}
	// Multi-value form (x, y := f()): scan the rhs, drop any handle-typed
	// lhs bindings — the engine does not track tuple results.
	for _, rhs := range x.Rhs {
		c.scanUses(rhs, env)
	}
	for _, lhs := range x.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := objOf(c.pass.TypesInfo, id); obj != nil {
				delete(env.vars, obj)
			}
		} else {
			c.scanUses(lhs, env)
		}
	}
}

func (c *handleChecker) assignPair(lhs, rhs ast.Expr, env *handleEnv) {
	lhs, rhs = ast.Unparen(lhs), ast.Unparen(rhs)

	if id, ok := lhs.(*ast.Ident); ok && c.h.isHandle(c.pass.TypesInfo.TypeOf(id)) &&
		!c.packageScoped(id) {
		obj := objOf(c.pass.TypesInfo, id)
		if obj == nil {
			c.scanUses(rhs, env)
			return
		}
		// Fresh allocation?
		if call, ok := rhs.(*ast.CallExpr); ok {
			if c.allocCall(call) {
				cl := c.cell(call.Pos())
				c.fresh[cl] = true
				env.cells[cl] = hLive
				env.vars[obj] = cl
				for _, arg := range call.Args {
					c.scanUses(arg, env)
				}
				return
			}
		}
		// Alias?
		if cl := c.cellOf(rhs, env); cl != 0 {
			env.vars[obj] = cl
			return
		}
		// Anything else (nil, field read, untracked call): stop tracking.
		c.scanUses(rhs, env)
		delete(env.vars, obj)
		return
	}

	// Destination is a field, element, or package-level variable: a live
	// handle flowing in is an ownership escape.
	c.scanUses(rhs, env)
	c.scanUses(lhs, env)
	c.escapeCheck(lhs, rhs, env)
}

// packageScoped reports whether an identifier names a package-level
// variable — a store into one is an escape, not a local binding.
func (c *handleChecker) packageScoped(id *ast.Ident) bool {
	v, ok := objOf(c.pass.TypesInfo, id).(*types.Var)
	return ok && v.Parent() == c.pass.Pkg.Scope()
}

// allocCall reports whether call is a configured allocator or a summarized
// always-fresh wrapper.
func (c *handleChecker) allocCall(call *ast.CallExpr) bool {
	fn := calleeOf(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if c.h.allocs[funcQName(fn)] {
		return true
	}
	if v, ok := c.pass.Facts.Get(fn, handleSumFact); ok {
		sum, _ := v.(handleSummary)
		return sum.returnsFresh
	}
	return false
}

// escapeCheck reports a live tracked handle stored into a destination
// without an ownership annotation, and stops tracking transferred cells.
func (c *handleChecker) escapeCheck(lhs, rhs ast.Expr, env *handleEnv) {
	var handles []int
	collectTracked(c, rhs, env, &handles)
	// A handle used as a map key escapes through the index expression.
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		collectTracked(c, ix.Index, env, &handles)
	}
	if len(handles) == 0 {
		return
	}
	dest, name := c.destination(lhs)
	if dest == nil {
		return // local through a pointer, or unresolvable: give up quietly
	}
	owned := c.h.owned(c.pass, dest)
	for _, cl := range handles {
		if env.cells[cl] == hLive {
			if owned {
				env.cells[cl] = hUnknown
			} else {
				c.report(lhs.Pos(), "live handle stored into %s, which has no //lint:owns annotation: ownership of the handle is lost", name)
			}
		}
	}
}

// collectTracked gathers the cells of tracked identifiers flowing into a
// destination as handle values: bare identifiers, append arguments, and
// composite-literal elements — but not identifiers under a field read
// (s.last = r.Addr stores a scalar, not the handle) or under an arbitrary
// call (the call's own effect is modeled by its summary).
func collectTracked(c *handleChecker, e ast.Expr, env *handleEnv, out *[]int) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch y := n.(type) {
		case *ast.FuncLit, *ast.SelectorExpr, *ast.IndexExpr:
			return false
		case *ast.CallExpr:
			if builtinName(c.pass.TypesInfo, y) == "append" {
				for _, arg := range y.Args {
					collectTracked(c, arg, env, out)
				}
			}
			return false
		case *ast.Ident:
			if obj := objOf(c.pass.TypesInfo, y); obj != nil {
				if cl, ok := env.vars[obj]; ok {
					*out = append(*out, cl)
				}
			}
		}
		return true
	})
}

// destination resolves the stored-into object of an lhs expression: the
// struct field of a selector, the container field/variable of an index
// expression, or a package-level variable.
func (c *handleChecker) destination(lhs ast.Expr) (types.Object, string) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj(), "field " + sel.Obj().Name()
		}
	case *ast.IndexExpr:
		return c.destination(x.X)
	case *ast.StarExpr:
		return c.destination(x.X)
	case *ast.Ident:
		obj := objOf(c.pass.TypesInfo, x)
		if v, ok := obj.(*types.Var); ok && v.Parent() == c.pass.Pkg.Scope() {
			return v, "package variable " + v.Name()
		}
	}
	return nil, ""
}

// returnStmt checks returned handles and tallies fresh returns.
func (c *handleChecker) returnStmt(x *ast.ReturnStmt, env *handleEnv) {
	for _, res := range x.Results {
		if cl := c.cellOf(res, env); cl != 0 {
			if env.cells[cl] == hReleased {
				c.report(res.Pos(), "returning a handle after it was released")
			}
			if c.tally {
				c.returns++
				if c.fresh[cl] && env.cells[cl] == hLive {
					c.freshReturns++
				}
			}
			continue
		}
		if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && c.allocCall(call) {
			if c.tally {
				c.returns++
				c.freshReturns++ // return a.Alloc(): directly fresh
			}
			continue
		}
		if c.tally && c.h.isHandle(c.pass.TypesInfo.TypeOf(res)) {
			c.returns++ // handle-typed but untracked: not provably fresh
		}
		c.scanUses(res, env)
	}
}

// scanUses walks an expression or statement firing use and escape events:
// field accesses and calls on released handles, calls with handle
// arguments, and composite literals capturing handles.
func (c *handleChecker) scanUses(n ast.Node, env *handleEnv) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch y := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			c.call(y, env)
			return false
		case *ast.SelectorExpr:
			if cl := c.cellOf(y.X, env); cl != 0 && env.cells[cl] == hReleased {
				c.report(y.Pos(), "use of handle after release")
			}
			return false
		case *ast.CompositeLit:
			c.compositeLit(y, env)
			return false
		}
		return true
	})
}

// call handles one call expression: release protocol, inspectors,
// summaries, and released-handle arguments.
func (c *handleChecker) call(call *ast.CallExpr, env *handleEnv) {
	// A method call on a tracked handle is a use.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if cl := c.cellOf(sel.X, env); cl != 0 && env.cells[cl] == hReleased {
			c.report(call.Pos(), "call on handle after release")
		}
	}
	fn := calleeOf(c.pass.TypesInfo, call)
	if fn != nil {
		qn := funcQName(fn)
		if c.h.releases[qn] {
			for _, arg := range call.Args {
				if cl := c.cellOf(arg, env); cl != 0 {
					c.applyRelease(cl, call.Pos(), env)
				} else {
					c.scanUses(arg, env)
				}
			}
			return
		}
		if c.h.inspectors[qn] {
			return // inspectors accept released handles by design
		}
	}
	var sum handleSummary
	if fn != nil {
		if v, ok := c.pass.Facts.Get(fn, handleSumFact); ok {
			sum, _ = v.(handleSummary)
		}
	}
	for i, arg := range call.Args {
		cl := c.cellOf(arg, env)
		if cl == 0 {
			c.scanUses(arg, env)
			continue
		}
		if env.cells[cl] == hReleased {
			what := "a function"
			if fn != nil {
				what = fn.Name()
			}
			c.report(arg.Pos(), "handle passed to %s after release", what)
			continue
		}
		if st, ok := sum.params[i]; ok && st > env.cells[cl] {
			env.cells[cl] = st
		}
	}
}

// compositeLit checks handles captured by a composite literal: the
// destination is the literal's field (or element type), which must carry
// an ownership annotation.
func (c *handleChecker) compositeLit(lit *ast.CompositeLit, env *handleEnv) {
	st := structOf(c.pass.TypesInfo.TypeOf(lit))
	for i, el := range lit.Elts {
		val := el
		var dest types.Object
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if st != nil {
				if key, ok := kv.Key.(*ast.Ident); ok {
					for j := 0; j < st.NumFields(); j++ {
						if st.Field(j).Name() == key.Name {
							dest = st.Field(j)
						}
					}
				}
			}
		} else if st != nil && i < st.NumFields() {
			dest = st.Field(i)
		}
		if inner, ok := val.(*ast.CompositeLit); ok {
			c.compositeLit(inner, env)
			continue
		}
		var handles []int
		collectTracked(c, val, env, &handles)
		if len(handles) == 0 {
			c.scanUses(val, env)
			continue
		}
		name := "a composite literal"
		owned := false
		if dest != nil {
			name = "field " + dest.Name()
			owned = c.h.owned(c.pass, dest)
		}
		for _, cl := range handles {
			switch env.cells[cl] {
			case hReleased:
				c.report(val.Pos(), "use of handle after release")
			case hLive:
				if owned {
					env.cells[cl] = hUnknown
				} else {
					c.report(val.Pos(), "live handle stored into %s, which has no //lint:owns annotation: ownership of the handle is lost", name)
				}
			}
		}
	}
}

// structOf unwraps a (possibly pointer or slice) type to its struct.
func structOf(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		return u
	case *types.Pointer:
		return structOf(u.Elem())
	case *types.Slice:
		return structOf(u.Elem())
	case *types.Array:
		return structOf(u.Elem())
	case *types.Map:
		return structOf(u.Elem())
	}
	return nil
}

// ---- package passes ----

// inferSummaries computes handle summaries for this package's functions to
// a fixpoint (wrappers of wrappers converge in as many iterations as the
// chain is deep; four covers everything in this repository).
func (h *handlecheckState) inferSummaries(pass *analysis.Pass) {
	type cand struct {
		decl *ast.FuncDecl
		obj  *types.Func
	}
	var cands []cand
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			cands = append(cands, cand{decl: fd, obj: obj})
		}
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, cd := range cands {
			sum := h.summarize(pass, cd.decl, cd.obj)
			cur := handleSummary{}
			if v, ok := pass.Facts.Get(cd.obj, handleSumFact); ok {
				cur, _ = v.(handleSummary)
			}
			if !sum.equal(cur) {
				pass.Facts.Set(cd.obj, handleSumFact, sum)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// paramHandles returns the handle-typed parameters of a function with
// their positions.
func (h *handlecheckState) paramHandles(obj *types.Func) map[int]*types.Var {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := map[int]*types.Var{}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if h.isHandle(p.Type()) {
			out[i] = p
		}
	}
	return out
}

// entryEnv builds the entry state: each handle-typed parameter is a live
// cell.
func (h *handlecheckState) entryEnv(c *handleChecker, obj *types.Func) *handleEnv {
	entry := newHandleEnv()
	for _, p := range h.paramHandles(obj) {
		cl := c.cell(p.Pos())
		entry.cells[cl] = hLive
		entry.vars[p] = cl
	}
	return entry
}

// summarize computes one function's handle summary.
func (h *handlecheckState) summarize(pass *analysis.Pass, fd *ast.FuncDecl, obj *types.Func) handleSummary {
	cfg := h.cfgFor(fd)
	c := &handleChecker{h: h, pass: pass, cellAt: map[token.Pos]int{}, fresh: map[int]bool{}}
	entry := h.entryEnv(c, obj)
	in := analysis.Forward(cfg, entry, c.transfer)

	sum := handleSummary{params: map[int]int8{}}
	params := h.paramHandles(obj)
	exit := in[cfg.Exit.Index]
	if exit != nil {
		ex := exit.(*handleEnv)
		for i, p := range params {
			cl, ok := ex.vars[p]
			if !ok {
				sum.params[i] = hUnknown // rebound or lost: stop tracking
				continue
			}
			if st := ex.cells[cl]; st != hLive {
				sum.params[i] = st
			}
		}
	}
	// returnsFresh needs per-return evidence, collected in a replay with
	// tallies on but diagnostics off.
	c.tally = true
	analysis.ReplayBlocks(cfg, in, c.transfer)
	sum.returnsFresh = c.returns > 0 && c.freshReturns == c.returns
	return sum
}

func (h *handlecheckState) cfgFor(fd *ast.FuncDecl) *analysis.CFG {
	cfg := h.cfgCache[fd]
	if cfg == nil {
		cfg = analysis.BuildCFG(fd.Body)
		h.cfgCache[fd] = cfg
	}
	return cfg
}

// reportPackage replays every function with diagnostics enabled.
func (h *handlecheckState) reportPackage(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			cfg := h.cfgFor(fd)
			c := &handleChecker{h: h, pass: pass, cellAt: map[token.Pos]int{}, fresh: map[int]bool{}}
			entry := h.entryEnv(c, obj)
			in := analysis.Forward(cfg, entry, c.transfer)
			c.reporting = true
			analysis.ReplayBlocks(cfg, in, c.transfer)
		}
		// Function literals run with no tracked state of their own (their
		// captures are the enclosing function's business), so analyzing
		// them independently checks only protocol-local bugs.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				cfg := analysis.BuildCFG(lit.Body)
				c := &handleChecker{h: h, pass: pass, cellAt: map[token.Pos]int{}, fresh: map[int]bool{}}
				in := analysis.Forward(cfg, newHandleEnv(), c.transfer)
				c.reporting = true
				analysis.ReplayBlocks(cfg, in, c.transfer)
			}
			return true
		})
	}
}
