package capacity

import (
	"testing"
	"testing/quick"
)

func TestCatalogCostCurve(t *testing.T) {
	cat := Catalog()
	byGB := map[int]float64{}
	for _, d := range cat {
		byGB[d.GB] = d.RelCost
	}
	if byGB[64] != 1.0 {
		t.Fatalf("64 GB module is the cost unit, got %v", byGB[64])
	}
	// Paper: 128/256 GB cost 5x/20x a 64 GB module.
	if byGB[128] != 5.0 || byGB[256] != 20.0 {
		t.Errorf("high-density premium: 128->%v 256->%v", byGB[128], byGB[256])
	}
	// Superlinear above 64 GB: cost per GB strictly increases.
	if byGB[128]/128 <= byGB[64]/64 || byGB[256]/256 <= byGB[128]/128 {
		t.Error("cost per GB must grow superlinearly at high density")
	}
}

func TestCheapestMeetsTarget(t *testing.T) {
	f := func(raw uint16) bool {
		target := int(raw%8192) + 64
		p, err := Cheapest(12, target)
		if err != nil {
			// Unreachable targets only beyond max capacity.
			return target > 12*2*256
		}
		return p.TotalGB >= target && p.RelCost > 0 && p.RelBandwidth > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCheapestUnreachable(t *testing.T) {
	if _, err := Cheapest(12, 1<<20); err == nil {
		t.Error("impossible capacity accepted")
	}
}

func TestTwoDPCPenaltyApplied(t *testing.T) {
	// Force a 2DPC plan: 12 channels, 6144 GB needs 2DPC x 256 GB.
	p, err := Cheapest(12, 6144)
	if err != nil {
		t.Fatal(err)
	}
	if p.DIMMsPerChan != 2 {
		t.Fatalf("expected 2DPC plan for max capacity, got %+v", p)
	}
	want := 12 * (1 - TwoDPCBandwidthPenalty)
	if p.RelBandwidth != want {
		t.Errorf("2DPC bandwidth %v, want %v", p.RelBandwidth, want)
	}
}

func TestCoaxialCheaperAtHighCapacity(t *testing.T) {
	// §IV-E's claim: at capacity targets that force the baseline onto
	// high-density DIMMs, COAXIAL's channel abundance reaches the same
	// capacity with cheap modules.
	for _, target := range []int{1536, 3072, 6144} {
		c, err := Compare(target)
		if err != nil {
			t.Fatal(err)
		}
		if c.Coaxial.RelCost >= c.Baseline.RelCost {
			t.Errorf("%d GB: COAXIAL cost %.1f not below baseline %.1f",
				target, c.Coaxial.RelCost, c.Baseline.RelCost)
		}
		if c.BWAdvantage < 2 {
			t.Errorf("%d GB: bandwidth advantage %.1fx, expected >= 2x", target, c.BWAdvantage)
		}
		if c.CostSaving <= 0 {
			t.Errorf("%d GB: no cost saving (%.2f)", target, c.CostSaving)
		}
	}
}

func TestCompareLowCapacity(t *testing.T) {
	// At small targets both use cheap DIMMs; COAXIAL may overprovision
	// channels but must still meet capacity.
	c, err := Compare(768)
	if err != nil {
		t.Fatal(err)
	}
	if c.Baseline.TotalGB < 768 || c.Coaxial.TotalGB < 768 {
		t.Errorf("capacity not met: %+v", c)
	}
	if c.BaselineDesc == "" || c.CoaxialDesc == "" {
		t.Error("descriptions empty")
	}
}

func TestSweepTargets(t *testing.T) {
	ts := SweepTargets()
	if len(ts) < 3 {
		t.Fatal("sweep too small")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Error("sweep not increasing")
		}
	}
}
