// Package capacity implements the paper's §IV-E analysis: COAXIAL's
// memory capacity and cost benefits. Servers optimized for capacity run
// two DIMMs per channel (2DPC), paying ~15% of channel bandwidth, and
// climb a superlinear DIMM price curve (128 GB and 256 GB DIMMs cost ~5x
// and ~20x a 64 GB DIMM). By multiplying DDR channels behind CXL, COAXIAL
// reaches the same capacity at 1DPC with low-density (cheap) DIMMs.
package capacity

import (
	"fmt"
	"sort"
)

// DIMM describes one module option.
type DIMM struct {
	GB int
	// RelCost is the price relative to the 64 GB module.
	RelCost float64
}

// Catalog returns the DIMM options with the paper's relative cost curve
// (§IV-E: 128/256 GB cost 5x/20x the 64 GB module), extended downward with
// near-linear pricing for commodity densities.
func Catalog() []DIMM {
	return []DIMM{
		{GB: 16, RelCost: 0.22},
		{GB: 32, RelCost: 0.45},
		{GB: 64, RelCost: 1.0},
		{GB: 128, RelCost: 5.0},
		{GB: 256, RelCost: 20.0},
	}
}

// TwoDPCBandwidthPenalty is the fraction of channel bandwidth lost when
// running two DIMMs per channel (§IV-E: ~15%).
const TwoDPCBandwidthPenalty = 0.15

// Plan is one way to provision a capacity target.
type Plan struct {
	Channels     int
	DIMMsPerChan int // 1 or 2
	DIMM         DIMM
	// TotalGB is the provisioned capacity.
	TotalGB int
	// RelCost is the total DIMM cost in 64 GB-module units.
	RelCost float64
	// RelBandwidth is the deliverable DRAM bandwidth relative to one
	// full-rate channel (accounts for the 2DPC penalty).
	RelBandwidth float64
}

// options enumerates plans for a channel count that meet the capacity.
func options(channels, targetGB int) []Plan {
	var out []Plan
	for _, d := range Catalog() {
		for _, dpc := range []int{1, 2} {
			total := channels * dpc * d.GB
			if total < targetGB {
				continue
			}
			bw := float64(channels)
			if dpc == 2 {
				bw *= 1 - TwoDPCBandwidthPenalty
			}
			out = append(out, Plan{
				Channels:     channels,
				DIMMsPerChan: dpc,
				DIMM:         d,
				TotalGB:      total,
				RelCost:      float64(channels*dpc) * d.RelCost,
				RelBandwidth: bw,
			})
		}
	}
	return out
}

// Cheapest returns the lowest-cost plan meeting targetGB on the given
// channel count, breaking ties toward higher bandwidth then lower
// overprovisioning.
func Cheapest(channels, targetGB int) (Plan, error) {
	opts := options(channels, targetGB)
	if len(opts) == 0 {
		return Plan{}, fmt.Errorf("capacity: %d GB unreachable with %d channels", targetGB, channels)
	}
	sort.Slice(opts, func(i, j int) bool {
		if opts[i].RelCost != opts[j].RelCost {
			return opts[i].RelCost < opts[j].RelCost
		}
		if opts[i].RelBandwidth != opts[j].RelBandwidth {
			return opts[i].RelBandwidth > opts[j].RelBandwidth
		}
		return opts[i].TotalGB < opts[j].TotalGB
	})
	return opts[0], nil
}

// Comparison contrasts the baseline (12 DDR channels) against COAXIAL-4x
// (48 channels) at one capacity target.
type Comparison struct {
	TargetGB     int
	Baseline     Plan
	Coaxial      Plan
	CostSaving   float64 // 1 - coax/base cost
	BWAdvantage  float64 // coax/base deliverable bandwidth
	BaselineDesc string
	CoaxialDesc  string
}

// Compare evaluates a capacity target on both systems.
func Compare(targetGB int) (Comparison, error) {
	base, err := Cheapest(12, targetGB)
	if err != nil {
		return Comparison{}, err
	}
	coax, err := Cheapest(48, targetGB)
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{
		TargetGB: targetGB,
		Baseline: base,
		Coaxial:  coax,
	}
	if base.RelCost > 0 {
		c.CostSaving = 1 - coax.RelCost/base.RelCost
	}
	if base.RelBandwidth > 0 {
		c.BWAdvantage = coax.RelBandwidth / base.RelBandwidth
	}
	c.BaselineDesc = desc(base)
	c.CoaxialDesc = desc(coax)
	return c, nil
}

func desc(p Plan) string {
	return fmt.Sprintf("%dch x %dDPC x %dGB = %dGB (cost %.1f, bw %.1f)",
		p.Channels, p.DIMMsPerChan, p.DIMM.GB, p.TotalGB, p.RelCost, p.RelBandwidth)
}

// SweepTargets returns the capacity points used by the capacity report
// (up to the baseline's 2DPC x 256 GB x 12-channel ceiling of 6 TB).
func SweepTargets() []int { return []int{768, 1536, 3072, 6144} }
