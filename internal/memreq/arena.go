package memreq

import "fmt"

// arenaSlab is the number of Requests added per freelist refill. Slabs are
// allocated as single blocks so recycled requests stay dense in memory.
const arenaSlab = 256

// Arena is a freelist allocator for Requests. A loaded simulation window
// issues ~100k requests whose lifetimes all end inside the window (reads at
// their completion callback, write-backs when their CAS retires), so the
// steady state recycles a small working set — a few hundred live requests —
// instead of allocating each one on the heap and feeding it to the garbage
// collector.
//
// Every request carries a liveness generation (odd while allocated, bumped
// on both alloc and release), so a double release or a use of a released
// request is detectable: Release checks the generation before touching the
// freelist, and Handle captures the generation at a point in time for later
// revalidation (the lifecycle checker's escaped-handle test).
//
// An Arena is not safe for concurrent use. The simulator allocates and
// releases only in the sequential phases of the tick loop (the core-event
// drain, the completion drain, and the retired-write drain all run at the
// cycle barrier), so the per-system arena needs no locking.
type Arena struct {
	slabs [][]Request
	//lint:owns the freelist is the released state; Alloc hands slots back out
	free []*Request
	live int

	allocs, releases uint64

	// failf reports an invariant violation (double release, foreign
	// request). The default panics; the validation harness reroutes it into
	// the lifecycle checker's report.
	failf func(format string, args ...any)
}

// NewArena returns an empty arena. Invariant violations panic until
// SetFailf installs a softer handler.
func NewArena() *Arena {
	return &Arena{
		failf: func(format string, args ...any) {
			panic(fmt.Sprintf("memreq: arena: "+format, args...))
		},
	}
}

// SetFailf replaces the invariant-violation handler (nil is ignored). The
// handler must not allocate from or release into this arena.
func (a *Arena) SetFailf(f func(format string, args ...any)) {
	if f != nil {
		a.failf = f
	}
}

// Alloc returns a zeroed Request owned by the arena. The request stays
// valid until Release; releasing bumps its generation, so dangling
// references are detectable via IsLive/Handle.
func (a *Arena) Alloc() *Request {
	if len(a.free) == 0 {
		a.grow()
	}
	n := len(a.free) - 1
	r := a.free[n]
	a.free[n] = nil
	a.free = a.free[:n]
	*r = Request{owner: a, gen: r.gen + 1} // odd generation = live
	a.live++
	a.allocs++
	return r
}

func (a *Arena) grow() {
	slab := make([]Request, arenaSlab)
	a.slabs = append(a.slabs, slab)
	for i := range slab {
		slab[i].owner = a
		a.free = append(a.free, &slab[i])
	}
}

// Release returns a request to the freelist. Releasing a request that is
// not live — already released, never arena-allocated, or owned by another
// arena — reports through the failure handler and leaves the freelist
// untouched (so a recorded violation cannot also corrupt the arena).
func (a *Arena) Release(r *Request) {
	if r == nil {
		a.failf("release of nil request")
		return
	}
	if r.owner != a {
		a.failf("release of request %#x not owned by this arena", r.Addr)
		return
	}
	if r.gen&1 == 0 {
		a.failf("double release of request %#x (generation %d)", r.Addr, r.gen)
		return
	}
	r.gen++
	a.live--
	a.releases++
	a.free = append(a.free, r)
}

// Owns reports whether r was allocated from this arena (live or not).
func (a *Arena) Owns(r *Request) bool { return r != nil && r.owner == a }

// IsLive reports whether r is a currently-allocated request of this arena.
// A released (or foreign) request reports false — the escaped-handle check
// walks the memory system's queues and flags any request that fails it.
func (a *Arena) IsLive(r *Request) bool {
	return r != nil && r.owner == a && r.gen&1 == 1
}

// Live returns the number of currently-allocated requests.
func (a *Arena) Live() int { return a.live }

// Allocs returns the total number of Alloc calls.
func (a *Arena) Allocs() uint64 { return a.allocs }

// Releases returns the total number of successful Release calls.
func (a *Arena) Releases() uint64 { return a.releases }

// Handle is a generation-checked reference to an arena request: it captures
// the request's generation at HandleOf time and revalidates it on use, so a
// handle held across the request's release (an escaped handle) resolves to
// nil instead of aliasing whatever the slot was recycled into.
type Handle struct {
	//lint:owns generation-checked weak reference; Request() revalidates before use
	r   *Request
	gen uint32
}

// HandleOf captures a generation-checked handle for r.
func (a *Arena) HandleOf(r *Request) Handle {
	if r == nil || r.owner != a {
		return Handle{}
	}
	return Handle{r: r, gen: r.gen}
}

// Request resolves the handle: the request if its generation still matches
// (it has not been released or recycled since capture), else nil.
func (h Handle) Request() *Request {
	if h.r == nil || h.r.gen != h.gen {
		return nil
	}
	return h.r
}

// Live reports whether the handle still resolves to a live request.
func (h Handle) Live() bool {
	return h.r != nil && h.r.gen == h.gen && h.gen&1 == 1
}
