// Package memreq defines the memory request type exchanged between the
// cache hierarchy and the memory backends (direct-DDR or CXL-attached), the
// Backend interface those backends implement, and physical address mapping
// helpers.
package memreq

// Kind discriminates memory request types at the memory-system boundary.
type Kind uint8

const (
	// Read is a demand read (including RFOs, which occupy the bus like
	// reads).
	Read Kind = iota
	// Write is a write-back of a dirty 64B line.
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "invalid"
	}
}

// LineSize is the cache line (and memory transfer) granularity in bytes.
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Completer receives completed requests from a memory backend.
type Completer interface {
	// Complete is invoked by the backend when the request's data has been
	// delivered back to the requester (after any CXL response path).
	Complete(r *Request, now int64)
}

// Request is one 64-byte memory transaction. The timestamps decompose the
// end-to-end latency the way the paper's breakdown figures do.
type Request struct {
	// Addr is the physical line-aligned address.
	Addr uint64
	// Kind is Read or Write.
	Kind Kind
	// Core identifies the issuing core (for per-core stats); -1 if N/A.
	Core int16
	// Host identifies the issuing host in rack-scale topologies where
	// several hosts share pooled CXL devices (per-host fairness accounting
	// and validation walks over shared device queues); 0 for single-host
	// systems.
	Host int16
	// CALM marks a concurrent LLC/memory access whose response may be
	// discarded if the LLC hits.
	CALM bool

	// Issue is the cycle the request left the L2 miss register.
	Issue int64 //lint:unit cycles
	// ArriveMC is the cycle the request entered the DDR controller queue
	// (on the type-3 device for CXL configurations).
	ArriveMC int64 //lint:unit cycles
	// StartSvc is the cycle the first DRAM command for this request
	// issued; ArriveMC..StartSvc is the controller queuing delay.
	StartSvc int64 //lint:unit cycles
	// DataDone is the cycle the DRAM data burst finished.
	DataDone int64 //lint:unit cycles
	// CXLTime accumulates cycles spent in CXL ports, serialization, and
	// link arbitration across both directions; 0 for direct DDR.
	CXLTime int64 //lint:unit cycles
	// Spill accumulates cycles spent blocked outside the backend when its
	// ingress queue was full (counted as queuing delay in breakdowns).
	Spill int64 //lint:unit cycles
	// AckAt is the earliest cycle the requester allows completion to be
	// observed (e.g. a CALM access must wait for the LLC's response even
	// if memory answers first).
	AckAt int64 //lint:unit cycles
	// Discard marks a CALM request whose LLC lookup hit: the memory
	// response is dropped on arrival (wasted bandwidth, a false positive).
	Discard bool

	// Ret receives the completion callback. May be nil for writes whose
	// completion is not observed.
	Ret Completer
	// Inner is used by interposing backends (the CXL channel) to remember
	// the requester's completer while the request is inside the device.
	Inner Completer
	// Meta is scratch space for the requester (e.g. MSHR index).
	Meta uint64

	// owner/gen are the Arena bookkeeping of an arena-allocated request:
	// owner is the allocating arena (nil for plain heap requests) and gen
	// its liveness generation (odd while allocated; bumped on both alloc
	// and release so stale handles are detectable). Managed exclusively by
	// Arena — see arena.go.
	owner *Arena
	gen   uint32
}

// QueueDelay returns the controller queuing component in cycles.
func (r *Request) QueueDelay() int64 { return r.StartSvc - r.ArriveMC }

// ServiceTime returns the DRAM service component in cycles.
func (r *Request) ServiceTime() int64 { return r.DataDone - r.StartSvc }

// Backend is the interface of a memory subsystem attachment point: either a
// direct DDR controller group or a CXL channel fronting a type-3 device.
type Backend interface {
	// Enqueue hands a request to the backend at the given cycle. The
	// request may be scheduled to arrive at a future cycle (at is allowed
	// to be >= now). Enqueue returns false if the backend's ingress queue
	// is full and the caller must retry.
	Enqueue(r *Request, at int64) bool
	// Tick advances the backend to the given cycle. Tick must be called
	// with monotonically non-decreasing cycles; re-ticking an
	// already-simulated cycle is a no-op.
	Tick(now int64)
	// NextEvent returns the earliest cycle after `now` at which Tick could
	// make progress (deliver an arrival or completion, issue a command, or
	// start a refresh): the event-driven loop skips the backend until
	// then. The bound is conservative — ticking earlier is harmless — and
	// backends that cannot prove a gap return now+1. A backend with no
	// scheduled work returns math.MaxInt64; new work arriving via Enqueue
	// obliges the caller to re-tick at the enqueued arrival cycle.
	NextEvent(now int64) int64
	// Sync realizes any lagging per-cycle accounting (e.g. open-bank
	// background-power integration) up to `now` without simulating events.
	// The event-driven loop calls it before reading or resetting counters
	// on a backend it has lazily skipped. Unlike Tick, Sync must never
	// deliver completions, admit arrivals, or issue commands: work enqueued
	// at the current cycle after the backend already ticked must wait for
	// the next Tick, exactly as it would under cycle-by-cycle clocking.
	Sync(now int64)
	// PeakGBs returns the backend's peak deliverable bandwidth in GB/s
	// (reads+writes) for utilization accounting.
	PeakGBs() float64
}

// LineAddr masks an address down to its line-aligned form.
func LineAddr(addr uint64) uint64 { return addr &^ (LineSize - 1) }

// Interleave describes how line addresses spread across channels.
// Channel selection uses bits immediately above the line offset XOR-folded
// with higher bits so that strided patterns still distribute.
type Interleave struct {
	// Channels is the number of backends; must be a power of two or any
	// positive integer (modulo distribution is used when not a power of
	// two).
	Channels int
}

// ChannelOf maps a line address to a channel index in [0, Channels).
func (iv Interleave) ChannelOf(addr uint64) int {
	if iv.Channels <= 1 {
		return 0
	}
	line := addr >> LineShift
	// Fold higher-order bits in so that power-of-two strides spread.
	h := line ^ (line >> 8) ^ (line >> 16)
	return int(h % uint64(iv.Channels))
}
