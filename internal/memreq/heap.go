package memreq

// Timed pairs a request with the cycle at which it becomes visible
// (arrival) or completes (completion).
type Timed struct {
	At int64
	//lint:owns popped by the queue drain, which releases or re-routes the request
	Req *Request
}

// TimedHeap is a binary min-heap of Timed items ordered by At. It is used
// for future arrivals into controller queues and for scheduled completions.
// The zero value is ready to use.
type TimedHeap struct {
	//lint:owns every Push is balanced by a Pop whose caller takes the request back
	items []Timed
	seq   []uint64 // tie-break: FIFO among equal timestamps
	next  uint64
}

// Len returns the number of queued items.
func (h *TimedHeap) Len() int { return len(h.items) }

// Push inserts an item.
func (h *TimedHeap) Push(at int64, r *Request) {
	h.items = append(h.items, Timed{At: at, Req: r})
	h.seq = append(h.seq, h.next)
	h.next++
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

// PeekAt returns the earliest timestamp, or ok=false when empty.
func (h *TimedHeap) PeekAt() (int64, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].At, true
}

// PopDue removes and returns the earliest item if its timestamp is <= now.
func (h *TimedHeap) PopDue(now int64) (*Request, bool) {
	if len(h.items) == 0 || h.items[0].At > now {
		return nil, false
	}
	r := h.items[0].Req
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.seq = h.seq[:last]
	h.down(0)
	return r, true
}

// ForEach visits every queued request in internal heap order (not sorted
// by timestamp). It exists for validation walks over the in-flight request
// population; fn must not push or pop.
func (h *TimedHeap) ForEach(fn func(*Request)) {
	for i := range h.items {
		fn(h.items[i].Req)
	}
}

func (h *TimedHeap) less(i, j int) bool {
	if h.items[i].At != h.items[j].At {
		return h.items[i].At < h.items[j].At
	}
	return h.seq[i] < h.seq[j]
}

func (h *TimedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.seq[i], h.seq[j] = h.seq[j], h.seq[i]
}

func (h *TimedHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
