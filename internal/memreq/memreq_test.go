package memreq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	if LineAddr(0x12345) != 0x12340 {
		t.Errorf("LineAddr(0x12345) = %#x", LineAddr(0x12345))
	}
	f := func(a uint64) bool {
		la := LineAddr(a)
		return la%LineSize == 0 && la <= a && a-la < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("kind strings")
	}
	if Kind(9).String() != "invalid" {
		t.Error("invalid kind string")
	}
}

func TestRequestDelays(t *testing.T) {
	r := Request{ArriveMC: 100, StartSvc: 130, DataDone: 190}
	if r.QueueDelay() != 30 || r.ServiceTime() != 60 {
		t.Errorf("delays: q=%d s=%d", r.QueueDelay(), r.ServiceTime())
	}
}

func TestInterleaveRange(t *testing.T) {
	for _, ch := range []int{1, 2, 3, 4, 5, 8} {
		iv := Interleave{Channels: ch}
		f := func(a uint64) bool {
			c := iv.ChannelOf(a)
			return c >= 0 && c < ch
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("channels=%d: %v", ch, err)
		}
	}
}

func TestInterleaveUniformity(t *testing.T) {
	// Sequential lines and strided patterns must spread roughly evenly.
	for _, ch := range []int{2, 4, 5} {
		iv := Interleave{Channels: ch}
		for _, stride := range []uint64{64, 64 * 2, 64 * 128, 4096} {
			counts := make([]int, ch)
			const n = 8000
			for i := uint64(0); i < n; i++ {
				counts[iv.ChannelOf(i*stride)]++
			}
			for c, k := range counts {
				frac := float64(k) / n
				want := 1.0 / float64(ch)
				if frac < want*0.5 || frac > want*1.6 {
					t.Errorf("channels=%d stride=%d: channel %d got %.2f of traffic (want ~%.2f)",
						ch, stride, c, frac, want)
				}
			}
		}
	}
}

func TestInterleaveSingleChannel(t *testing.T) {
	iv := Interleave{Channels: 0}
	if iv.ChannelOf(12345) != 0 {
		t.Error("degenerate channel count must map to 0")
	}
}

func TestTimedHeapOrdering(t *testing.T) {
	var h TimedHeap
	rng := rand.New(rand.NewSource(1))
	var times []int64
	for i := 0; i < 500; i++ {
		at := int64(rng.Intn(10000))
		times = append(times, at)
		h.Push(at, &Request{Meta: uint64(i)})
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	var popped []int64
	for {
		at, ok := h.PeekAt()
		if !ok {
			break
		}
		r, ok := h.PopDue(1 << 40)
		if !ok || r == nil {
			t.Fatal("PopDue with infinite now must succeed while non-empty")
		}
		popped = append(popped, at)
	}
	if len(popped) != len(times) {
		t.Fatalf("popped %d of %d", len(popped), len(times))
	}
	for i := range popped {
		if popped[i] != times[i] {
			t.Fatalf("pop order broken at %d: got %d want %d", i, popped[i], times[i])
		}
	}
}

func TestTimedHeapFIFOAmongEqual(t *testing.T) {
	var h TimedHeap
	for i := 0; i < 10; i++ {
		h.Push(42, &Request{Meta: uint64(i)})
	}
	for i := 0; i < 10; i++ {
		r, ok := h.PopDue(42)
		if !ok {
			t.Fatal("pop failed")
		}
		if r.Meta != uint64(i) {
			t.Fatalf("equal-timestamp order: got %d want %d", r.Meta, i)
		}
	}
}

func TestTimedHeapPopDueRespectsNow(t *testing.T) {
	var h TimedHeap
	h.Push(100, &Request{})
	if _, ok := h.PopDue(99); ok {
		t.Error("popped before due time")
	}
	if _, ok := h.PopDue(100); !ok {
		t.Error("did not pop at due time")
	}
	if _, ok := h.PopDue(1000); ok {
		t.Error("popped from empty heap")
	}
	if h.Len() != 0 {
		t.Error("len after drain")
	}
}

func TestTimedHeapPeekAtEmpty(t *testing.T) {
	var h TimedHeap
	if at, ok := h.PeekAt(); ok || at != 0 {
		t.Errorf("PeekAt on empty heap = (%d, %v), want (0, false)", at, ok)
	}
	// Drain back to empty and re-check: PeekAt must not resurrect state.
	h.Push(5, &Request{})
	if _, ok := h.PopDue(5); !ok {
		t.Fatal("pop failed")
	}
	if _, ok := h.PeekAt(); ok {
		t.Error("PeekAt reported an item after the heap drained")
	}
}

func TestTimedHeapPeekAtInterleaved(t *testing.T) {
	// The event loop leans on PeekAt to skip dead cycles, so it must stay
	// consistent under interleaved Push/PopDue: it always reports the
	// minimum timestamp, never mutates the heap, and an earlier Push is
	// visible to the very next PeekAt.
	var h TimedHeap
	rng := rand.New(rand.NewSource(7))
	live := []int64{}
	minOf := func() int64 {
		m := live[0]
		for _, v := range live[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	for i := 0; i < 2000; i++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			at := int64(rng.Intn(500))
			h.Push(at, &Request{})
			live = append(live, at)
		} else {
			want := minOf()
			at, ok := h.PeekAt()
			if !ok || at != want {
				t.Fatalf("step %d: PeekAt = (%d, %v), want (%d, true)", i, at, ok, want)
			}
			// PeekAt twice: must be idempotent (no mutation).
			if at2, _ := h.PeekAt(); at2 != at {
				t.Fatalf("step %d: PeekAt mutated the heap (%d then %d)", i, at, at2)
			}
			if _, ok := h.PopDue(at - 1); ok {
				t.Fatalf("step %d: PopDue(%d) popped before PeekAt's time %d", i, at-1, at)
			}
			if _, ok := h.PopDue(at); !ok {
				t.Fatalf("step %d: PopDue(%d) refused PeekAt's time", i, at)
			}
			for j, v := range live {
				if v == want {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		}
	}
	if h.Len() != len(live) {
		t.Fatalf("length drifted: heap %d, model %d", h.Len(), len(live))
	}
}

func TestTimedHeapProperty(t *testing.T) {
	// Property: popping everything yields a non-decreasing sequence.
	f := func(ats []int16) bool {
		var h TimedHeap
		for _, a := range ats {
			h.Push(int64(a), &Request{})
		}
		prev := int64(-1 << 60)
		for h.Len() > 0 {
			at, _ := h.PeekAt()
			if _, ok := h.PopDue(1 << 40); !ok {
				return false
			}
			if at < prev {
				return false
			}
			prev = at
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
