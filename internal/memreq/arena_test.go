package memreq

import (
	"fmt"
	"testing"
)

// collectFails installs a recording failure handler and returns the sink.
func collectFails(a *Arena) *[]string {
	var errs []string
	a.SetFailf(func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	})
	return &errs
}

func TestArenaAllocRelease(t *testing.T) {
	a := NewArena()
	r := a.Alloc()
	if r == nil {
		t.Fatal("Alloc returned nil")
	}
	if r.Addr != 0 || r.Kind != Read || r.Ret != nil || r.Issue != 0 {
		t.Fatalf("Alloc returned a non-zeroed request: %+v", r)
	}
	if !a.IsLive(r) || !a.Owns(r) {
		t.Fatal("freshly allocated request not live/owned")
	}
	if a.Live() != 1 || a.Allocs() != 1 {
		t.Fatalf("Live=%d Allocs=%d after one Alloc", a.Live(), a.Allocs())
	}
	a.Release(r)
	if a.IsLive(r) {
		t.Fatal("released request still live")
	}
	if !a.Owns(r) {
		t.Fatal("released request no longer owned")
	}
	if a.Live() != 0 || a.Releases() != 1 {
		t.Fatalf("Live=%d Releases=%d after release", a.Live(), a.Releases())
	}
}

func TestArenaRecyclesWithoutAllocating(t *testing.T) {
	a := NewArena()
	// Fill one slab so the freelist is primed.
	reqs := make([]*Request, arenaSlab)
	for i := range reqs {
		reqs[i] = a.Alloc()
	}
	for _, r := range reqs {
		a.Release(r)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r := a.Alloc()
		r.Addr = 0xdead
		a.Release(r)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Alloc/Release allocated %.1f objects/op, want 0", allocs)
	}
}

func TestArenaZeroesRecycledRequests(t *testing.T) {
	a := NewArena()
	r := a.Alloc()
	r.Addr = 0x1234
	r.Kind = Write
	r.Issue = 99
	r.Meta = 7
	a.Release(r)
	r2 := a.Alloc() // freelist LIFO: same slot
	if r2 != r {
		t.Fatalf("expected LIFO recycling of the released slot")
	}
	if r2.Addr != 0 || r2.Kind != Read || r2.Issue != 0 || r2.Meta != 0 {
		t.Fatalf("recycled request not zeroed: %+v", r2)
	}
}

func TestArenaDoubleReleaseCaught(t *testing.T) {
	a := NewArena()
	errs := collectFails(a)
	r := a.Alloc()
	a.Release(r)
	a.Release(r)
	if len(*errs) != 1 {
		t.Fatalf("double release produced %d failures, want 1: %v", len(*errs), *errs)
	}
	if a.Live() != 0 || a.Releases() != 1 {
		t.Fatalf("double release corrupted counters: Live=%d Releases=%d", a.Live(), a.Releases())
	}
	// The freelist must not hold the slot twice: two allocs must return two
	// distinct requests.
	r1, r2 := a.Alloc(), a.Alloc()
	if r1 == r2 {
		t.Fatal("double release duplicated a freelist slot")
	}
}

func TestArenaForeignReleaseCaught(t *testing.T) {
	a := NewArena()
	errs := collectFails(a)
	a.Release(&Request{Addr: 0x40}) // heap-allocated: not arena-owned
	b := NewArena()
	a.Release(b.Alloc()) // owned by another arena
	a.Release(nil)
	if len(*errs) != 3 {
		t.Fatalf("foreign releases produced %d failures, want 3: %v", len(*errs), *errs)
	}
}

func TestArenaDefaultFailPanics(t *testing.T) {
	a := NewArena()
	defer func() {
		if recover() == nil {
			t.Fatal("double release without a handler did not panic")
		}
	}()
	r := a.Alloc()
	a.Release(r)
	a.Release(r)
}

func TestArenaHandleGenerationCheck(t *testing.T) {
	a := NewArena()
	r := a.Alloc()
	h := a.HandleOf(r)
	if !h.Live() || h.Request() != r {
		t.Fatal("fresh handle does not resolve")
	}
	a.Release(r)
	if h.Live() {
		t.Fatal("handle still live after release")
	}
	if h.Request() != nil {
		t.Fatal("escaped handle resolved after release")
	}
	// Recycle the slot: the stale handle must not alias the new request.
	r2 := a.Alloc()
	if r2 != r {
		t.Fatal("expected slot recycling")
	}
	if h.Request() != nil || h.Live() {
		t.Fatal("escaped handle aliases a recycled request")
	}
	if got := a.HandleOf(&Request{}); got.Live() || got.Request() != nil {
		t.Fatal("handle of a foreign request must be empty")
	}
}
