package sim

import (
	"testing"

	"coaxial/internal/trace"
)

// TestCalibrationTableIV runs every workload on the DDR baseline and
// reports measured IPC and LLC MPKI against the paper's Table IV. It is a
// characterization harness: assertions are loose (order-of-magnitude and
// rank preservation), since the synthetic workloads approximate — not
// replay — the originals. Run with -v for the full table.
func TestCalibrationTableIV(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	rc := RunConfig{WarmupInstr: 10_000, MeasureInstr: 60_000, Seed: 1}
	cfg := Baseline()
	t.Logf("%-15s %7s %7s %8s %8s %7s %7s", "workload", "IPC", "ref", "MPKI", "ref", "util%", "R:W")
	for _, w := range trace.Workloads() {
		res, err := Run(cfg, w, rc)
		if err != nil {
			t.Fatalf("%s: %v", w.Params.Name, err)
		}
		rw := 0.0
		if res.WriteGBs > 0 {
			rw = res.ReadGBs / res.WriteGBs
		}
		t.Logf("%-15s %7.2f %7.2f %8.1f %8.1f %7.1f %7.1f",
			w.Params.Name, res.IPC, w.PaperIPC, res.LLCMPKI, w.PaperMPKI, res.Utilization*100, rw)
		if res.IPC <= 0 {
			t.Errorf("%s: zero IPC", w.Params.Name)
		}
		if res.LLCMPKI <= 0 {
			t.Errorf("%s: zero MPKI", w.Params.Name)
		}
	}
}
