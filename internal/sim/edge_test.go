package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"coaxial/internal/dram"
	"coaxial/internal/trace"
)

func TestLoadLatencyRejectsBadUtil(t *testing.T) {
	cfg := dram.DefaultConfig()
	if _, err := LoadLatency(cfg, 0, 10, 10, 1); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := LoadLatency(cfg, 1.5, 10, 10, 1); err == nil {
		t.Error("over-unity utilization accepted")
	}
}

func TestLoadLatencyDeterministic(t *testing.T) {
	cfg := dram.DefaultConfig()
	a, err := LoadLatency(cfg, 0.3, 100, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadLatency(cfg, 0.3, 100, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestMixLabel(t *testing.T) {
	w1, _ := trace.WorkloadByName("lbm")
	w2, _ := trace.WorkloadByName("gcc")
	if got := mixLabel([]trace.Workload{w1, w1, w1}); got != "lbm" {
		t.Errorf("homogeneous label %q", got)
	}
	got := mixLabel([]trace.Workload{w1, w2})
	if !strings.HasPrefix(got, "mix[") {
		t.Errorf("heterogeneous label %q", got)
	}
	if mixLabel(nil) != "" {
		t.Error("empty label")
	}
}

// TestRandomWorkloadParamsNeverWedge: arbitrary (sane) generator
// parameters must produce a system that finishes its instruction budget —
// no deadlocks in MSHR/queue/backpressure interplay. Property-based with a
// small count since each case simulates.
func TestRandomWorkloadParamsNeverWedge(t *testing.T) {
	if testing.Short() {
		t.Skip("property simulation")
	}
	cfg := Baseline()
	cfg.ActiveCores = 3 // keep each case cheap
	f := func(memF, storeF, hotF, streamF, depF uint8, seed uint64) bool {
		w := trace.Workload{Params: trace.Params{
			Name:       "prop",
			MemFrac:    0.05 + float64(memF%60)/100,
			StoreFrac:  float64(storeF%100) / 100,
			HotFrac:    float64(hotF%95) / 100,
			StreamFrac: float64(streamF%100) / 100,
			DepFrac:    float64(depF%100) / 100,
			WSBytes:    8 << 20,
		}}
		rc := RunConfig{
			WarmupInstr: 1_000, MeasureInstr: 6_000, Seed: seed%97 + 1,
			FunctionalWarmupInstr: 20_000,
		}
		res, err := Run(cfg, w, rc)
		if err != nil {
			t.Logf("params %+v: %v", w.Params, err)
			return false
		}
		return res.IPC > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestSkipFunctionalWarmup exercises the RunConfig escape hatch.
func TestSkipFunctionalWarmup(t *testing.T) {
	w, err := trace.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{WarmupInstr: 2_000, MeasureInstr: 8_000, Seed: 1, SkipFunctional: true}
	res, err := Run(Baseline(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Error("run without functional warmup broke")
	}
}

// TestCycleBudgetGuard: a pathological budget must produce an error, not a
// hang.
func TestCycleBudgetGuard(t *testing.T) {
	w, err := trace.WorkloadByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{
		WarmupInstr: 0, MeasureInstr: 1_000_000, Seed: 1,
		MaxCyclesPerInstr: 1, // lbm's CPI is ~6: impossible budget
		SkipFunctional:    true,
	}
	// The guard adds a 1M-cycle floor, so use a large measure target.
	if _, err := Run(Baseline(), w, rc); err == nil {
		t.Error("expected cycle-budget error")
	}
}
