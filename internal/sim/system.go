package sim

import (
	"context"
	"fmt"

	"coaxial/internal/cache"
	"coaxial/internal/calm"
	"coaxial/internal/cpu"
	"coaxial/internal/cxl"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
	"coaxial/internal/noc"
	"coaxial/internal/stats"
	"coaxial/internal/trace"
)

// ExternalBackend is the full memory-backend surface a System requires of
// its channels: a memreq.Backend that also exposes DRAM activity counters
// and a drain check. dram.Channel, cxl.Channel, and cxl.Port satisfy it.
// Exported so topology builders (internal/rack) can inject pre-built
// backends — ports into shared pooled devices — via HostParams.
type ExternalBackend interface {
	memreq.Backend
	Counters() dram.Counters
	ResetCounters()
	Idle() bool
}

// Clocking selects the main loop's time-advance strategy.
type Clocking uint8

const (
	// EventDriven (the default) advances the clock straight to the
	// earliest cycle any component reports it can make progress
	// (NextEvent), ticking only the components due at that cycle. Skipped
	// cycles are provable no-ops, and each component catches up its
	// per-cycle accounting on its next tick, so results are bit-identical
	// to CycleByCycle (see TestClockingEquivalence).
	EventDriven Clocking = iota
	// CycleByCycle ticks every core and backend on every cycle — the
	// straightforward reference loop, kept as the equivalence oracle.
	CycleByCycle
)

// spillItem is a request refused by a full backend ingress queue, held for
// in-order retry.
type spillItem struct {
	//lint:owns released through the normal send path once flushSpill re-enqueues it
	r  *memreq.Request
	at int64
}

// memEvent is one beyond-L2 action a core produced during the (potentially
// parallel) core tick phase, buffered for the sequential drain at the cycle
// barrier. Cores only touch their private L1/L2 inline; everything that
// reaches shared state — the LLC, the CALM policy, the NoC send path — is
// deferred here, so core ticks never race and the drain (in fixed core
// order) reproduces exactly the shared-state operation order the
// sequential loop would have produced.
type memEvent struct {
	kind  uint8 // evAccess or evVictim
	store bool
	line  uint64
	pc    uint64
	t2    int64 // the L2-miss cycle (the paper's datum) for evAccess
}

const (
	// evAccess is an L1+L2 miss headed for the LLC lookup (accessLLC).
	evAccess = iota
	// evVictim is a dirty L2 victim displaced by an L2-hit install,
	// headed for the LLC (l2VictimToLLC).
	evVictim
)

// completion is one backend completion buffered during the (potentially
// parallel) backend tick phase, delivered by drainCompletions at the cycle
// barrier in backend order.
type completion struct {
	//lint:owns released by Complete (reads) or the retired drain (writes) after delivery
	r  *memreq.Request
	at int64
}

// chanCompleter is the per-channel memreq.Completer handed to backends:
// each channel appends only to its own buffer, so the backend tick phase
// is race-free and the sequential drain preserves channel order.
type chanCompleter struct {
	s  *System
	ch int
}

// Complete implements memreq.Completer.
func (c *chanCompleter) Complete(r *memreq.Request, at int64) {
	c.s.doneBuf[c.ch] = append(c.s.doneBuf[c.ch], completion{r: r, at: at})
}

// retirer is a backend that buffers requests dying inside it (writes whose
// CAS retired with no completion callback) for the sequential retired
// drain; dram.Channel and cxl.Channel both satisfy it.
type retirer interface {
	SetCollectRetired(bool)
	DrainRetired(func(*memreq.Request))
}

// System is one assembled simulated machine.
type System struct {
	cfg  Config
	mesh noc.Mesh

	cores []*cpu.Core
	l1    []*cache.Cache
	l2    []*cache.Cache
	llc   *cache.LLC

	backends  []ExternalBackend
	portTiles []noc.Tile
	coreTiles []noc.Tile
	iv        memreq.Interleave

	policy calm.Policy

	// spill holds requests refused by full backend queues, per channel and
	// split by kind so writes cannot head-of-line-block reads.
	spillR [][]spillItem
	spillW [][]spillItem
	// spillPending counts queued spill items across all channels, so the
	// per-cycle paths can skip the per-channel scans when it is zero (the
	// common case).
	spillPending int

	// prefillHints, when non-nil, drives synthetic LLC pre-fill.
	prefillHints []trace.Params

	measuring bool
	// muteWrites suppresses write-back requests during functional warmup
	// (the memory system is not being timed yet).
	muteWrites bool
	breakdown  stats.Breakdown
	hist       *stats.Histogram
	// fpDiscarded counts CALM false-positive responses dropped on arrival.
	fpDiscarded uint64

	clocking Clocking
	// coreNext/backendNext cache each component's NextEvent: the earliest
	// cycle its Tick could make progress. Entries are refreshed whenever
	// the component ticks and clamped down by wake events (a completion
	// unblocking a core, an enqueue scheduling a backend arrival).
	coreNext    []int64
	backendNext []int64

	// Phased-tick state: per-core buffers of beyond-L2 work generated
	// during the core tick phase, and per-channel buffers of completions
	// generated during the backend tick phase, both drained sequentially
	// at the cycle barrier (see step/stepEvent). Always on — for every
	// clocking mode and parallelism level — so results are identical by
	// construction whatever the worker count.
	coreEvents [][]memEvent
	//lint:owns drained every cycle barrier by drainCompletions, which hands each entry to Complete
	doneBuf    [][]completion
	completers []*chanCompleter

	// touchSink keeps the cache-metadata pre-touch loads (Access,
	// drainCompletions) observable so the compiler cannot elide them;
	// per-core slots because Access may run concurrently across cores.
	touchSink []uint64

	// arena recycles memreq.Request allocations: every request the system
	// creates (LLC-miss reads, CALM probes, write-backs) is arena-allocated
	// and released at its death point — reads at their completion callback,
	// writes when the backends' retired drain hands them back — so a loaded
	// steady-state window allocates nothing per request. All alloc/release
	// sites run in the sequential phases of the tick loop (or, in
	// direct-completion mode, inside the sequential backend ticks), so the
	// arena needs no locking.
	arena *memreq.Arena
	// retirers are the backends that buffer requests dying inside them
	// (write CAS retirements with no completer); drainRetired releases
	// those at the cycle barrier. retirerOf indexes the same backends by
	// channel so the event loop can drain only the backends that ticked —
	// a request can only retire during its backend's tick, so un-ticked
	// backends provably buffered nothing. retireFn is the pre-bound
	// release callback (building a method value per cycle would allocate).
	retirers  []retirer
	retirerOf []retirer
	retireFn  func(*memreq.Request)
	// llcProbe is the preallocated CALM probe closure over probeLLCHit;
	// accessLLC stores the current lookup's outcome in the field and hands
	// every Decide call the same closure (see the comment there).
	llcProbe    func() bool
	probeLLCHit bool

	// progressFn, when non-nil, observes phase progress at cancellation-
	// poll boundaries (RunConfig.OnProgress; observation-only).
	progressFn func(Progress)

	// val, when non-nil, is the differential validation harness attached
	// by EnableValidation (RunConfig.Validate): timing oracles on every
	// DRAM sub-channel plus the request-lifecycle checker hooked into
	// send/Complete.
	val *validation
	// extraPending are additional pending-request walkers registered by a
	// topology builder (AddPendingWalker): requests this host owns that
	// live outside its backends' own queues — e.g. inside a shared pooled
	// device's DDR controllers, which the rack walks once per device and
	// dispatches by Request.Host.
	extraPending []func(func(*memreq.Request))

	// hostID tags every request this system creates (Request.Host) and
	// addrOffset displaces its synthetic address space, so several hosts
	// sharing pooled devices stay distinguishable and non-overlapping.
	// Zero for single-host systems.
	hostID     int16
	addrOffset uint64

	// Sampled-simulation state (runMeasureSampled): detailCycles sums the
	// cycles spent in detailed measurement windows (the denominator for
	// sampled rates); ffAccesses/ffMisses track the LLC statistics pollution
	// of the functional fast-forward streams, subtracted at collection.
	sampled      bool
	detailCycles int64
	ffAccesses   uint64
	ffMisses     uint64

	// par is the tick-phase worker count (<=1: sequential); pool holds the
	// par-1 helper goroutines when parallel.
	par  int
	pool *workerPool
	// dueCores/dueBackends are reused scratch lists of the components due
	// at the cycle stepEvent selected.
	dueCores    []int
	dueBackends []int

	now int64
}

// HostParams identifies a System's place in a multi-host topology. The
// zero value is a standalone single-host system.
type HostParams struct {
	// Index is the host's rack position; it tags every request the system
	// creates (Request.Host) for fairness accounting and validation walks
	// over shared device queues.
	Index int
	// AddrOffset displaces the host's synthetic address space so hosts
	// sharing pooled devices occupy disjoint physical ranges. Host 0's
	// offset must be 0 for single-host bit-identity.
	AddrOffset uint64
	// Backends, when non-nil, are pre-built memory backends injected in
	// channel order (len must equal cfg.Channels): ports into shared
	// pooled CXL devices. Nil builds the config's own private backends.
	Backends []ExternalBackend
}

// NewSystem assembles a system running the given per-core workloads
// (len(workloads) must equal the active core count; inactive cores idle).
func NewSystem(cfg Config, workloads []trace.Workload, seed uint64) (*System, error) {
	return NewHostSystem(cfg, workloads, seed, HostParams{})
}

// NewHostSystem is NewSystem for a host embedded in a multi-host topology:
// hp places the host's address space, tags its requests, and (for pooled
// topologies) injects its shared-device ports.
func NewHostSystem(cfg Config, workloads []trace.Workload, seed uint64, hp HostParams) (*System, error) {
	active := cfg.active()
	if len(workloads) != active {
		return nil, fmt.Errorf("sim: %d workloads for %d active cores", len(workloads), active)
	}
	gens := make([]trace.Generator, active)
	hints := make([]trace.Params, active)
	for i, w := range workloads {
		base := hp.AddrOffset + (uint64(i)+1)<<40 // disjoint per-instance address spaces
		gens[i] = trace.NewSynthetic(w.Params, base, seed*1_000_003+uint64(i)+1)
		hints[i] = w.Params
	}
	return newSystemGens(cfg, gens, hints, hp)
}

// NewSystemGens assembles a system over caller-provided instruction
// generators (e.g. recorded trace replays). hints, when non-nil, supplies
// per-core workload parameters used for LLC pre-fill and the dispatch-rate
// cap; pass nil to skip pre-fill (then provide enough warmup in the trace
// itself).
func NewSystemGens(cfg Config, gens []trace.Generator, hints []trace.Params) (*System, error) {
	return newSystemGens(cfg, gens, hints, HostParams{})
}

func newSystemGens(cfg Config, gens []trace.Generator, hints []trace.Params, hp HostParams) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	active := cfg.active()
	if len(gens) != active {
		return nil, fmt.Errorf("sim: %d generators for %d active cores", len(gens), active)
	}
	if hints != nil && len(hints) != active {
		return nil, fmt.Errorf("sim: %d prefill hints for %d active cores", len(hints), active)
	}

	if hp.Backends != nil && len(hp.Backends) != cfg.Channels {
		return nil, fmt.Errorf("sim: %d injected backends for %d channels", len(hp.Backends), cfg.Channels)
	}

	s := &System{
		cfg:        cfg,
		mesh:       cfg.Mesh,
		iv:         memreq.Interleave{Channels: cfg.Channels},
		hist:       stats.NewHistogram(6000, 4), // up to 2.5 us at 1.67 ns buckets
		hostID:     int16(hp.Index),
		addrOffset: hp.AddrOffset,
	}

	s.llc = cache.NewLLC(cfg.Cores, cfg.LLCSliceBytes, cfg.LLCAssoc, cfg.LLCLatency)

	// Memory backends and their mesh-perimeter port placement.
	systemSubs := cfg.Channels * cfg.DDR.SubChannels
	if cfg.Kind == CXLAttached {
		systemSubs = cfg.Channels * cfg.CXL.DDRChannels * cfg.DDR.SubChannels
	}
	for ch := 0; ch < cfg.Channels; ch++ {
		switch {
		case hp.Backends != nil:
			s.backends = append(s.backends, hp.Backends[ch])
		case cfg.Kind == DirectDDR:
			s.backends = append(s.backends, dram.NewChannel(cfg.DDR, systemSubs))
		case cfg.Kind == CXLAttached:
			ccfg := cfg.CXL
			ccfg.DDR = cfg.DDR
			s.backends = append(s.backends, cxl.NewChannel(ccfg, systemSubs))
		}
		s.portTiles = append(s.portTiles, cfg.Mesh.PortTile(ch, cfg.Channels))
	}
	s.spillR = make([][]spillItem, cfg.Channels)
	s.spillW = make([][]spillItem, cfg.Channels)

	s.policy = calm.New(cfg.CALM, cfg.Cores, s.peakGBs())

	for i := 0; i < cfg.Cores; i++ {
		s.coreTiles = append(s.coreTiles, cfg.Mesh.CoreTile(i))
		s.l1 = append(s.l1, cache.New(cfg.L1))
		s.l2 = append(s.l2, cache.New(cfg.L2))
	}
	for i := 0; i < active; i++ {
		ipcCap := 0.0
		if hints != nil {
			ipcCap = hints[i].IPCCap
		}
		s.cores = append(s.cores, cpu.New(i, gens[i], s, cfg.MSHRs, ipcCap))
	}
	s.prefillHints = hints
	s.coreNext = make([]int64, len(s.cores))
	s.backendNext = make([]int64, len(s.backends))
	for i := range s.coreNext {
		s.coreNext[i] = 1
	}
	for i := range s.backendNext {
		s.backendNext[i] = 1
	}
	s.coreEvents = make([][]memEvent, len(s.cores))
	s.touchSink = make([]uint64, len(s.cores))
	s.doneBuf = make([][]completion, len(s.backends))
	s.completers = make([]*chanCompleter, len(s.backends))
	for ch := range s.completers {
		s.completers[ch] = &chanCompleter{s: s, ch: ch}
	}
	s.arena = memreq.NewArena()
	s.retireFn = s.releaseRetired
	s.llcProbe = func() bool { return s.probeLLCHit }
	s.retirerOf = make([]retirer, len(s.backends))
	for ch, b := range s.backends {
		if rt, ok := b.(retirer); ok {
			rt.SetCollectRetired(true)
			s.retirers = append(s.retirers, rt)
			s.retirerOf[ch] = rt
		}
	}
	s.SetClocking(s.clocking) // apply the default mode's lazy ticking
	return s, nil
}

// completerFor returns the completion sink baked into requests headed for
// channel ch. With parallel backend ticking, completions must be buffered
// per channel (chanCompleter) and drained at the cycle barrier; with
// sequential backends (Parallelism <= 1) the System itself is the
// completer, so delivery runs inline inside the backend tick. The inline
// order is identical to the buffered drain's: backends tick in channel
// order, each sub-channel delivers its due completions in pop order (the
// same order they would have been appended to the buffer), and any request
// a delivery re-enqueues targets a future arrival cycle (the mesh hop is
// never zero), so no same-cycle pop can observe it. Set Parallelism before
// stepping begins; switching with requests in flight is unsupported.
func (s *System) completerFor(ch int) memreq.Completer {
	if s.par <= 1 {
		return s
	}
	return s.completers[ch]
}

// releaseRetired is the retired-drain callback: a request died inside a
// backend (write CAS with no completer), so release its tracking and
// return it to the arena.
func (s *System) releaseRetired(r *memreq.Request) {
	if s.val != nil {
		s.val.lc.OnRetire(r)
	}
	s.arena.Release(r)
}

// drainRetired releases every request that died inside a backend this
// cycle. Runs at the cycle barrier after the completion drain (sequential),
// or after sequential backend ticks in direct-completion mode.
func (s *System) drainRetired() {
	for _, rt := range s.retirers {
		rt.DrainRetired(s.retireFn)
	}
}

// SetParallelism sets the tick-phase worker count: cores (and backends)
// due at a cycle advance on n goroutines between the synchronization
// points, with all shared-state work drained at the barrier. Results are
// identical for every n by construction (TestClockingEquivalence covers
// Parallelism > 1). n <= 1 is sequential. Call Close when done with a
// parallel system to release its worker goroutines.
func (s *System) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	s.par = n
	if n > 1 && s.pool == nil {
		s.pool = newWorkerPool(n - 1)
	}
}

// Close releases the worker goroutines of a parallel system. Safe to call
// on a sequential system and more than once.
func (s *System) Close() {
	s.pool.close()
	s.pool = nil
	s.par = 1
}

// SetClocking selects the time-advance strategy; the zero value is
// EventDriven. Backends that support per-sub-component event skipping
// (dram.Channel, cxl.Channel) follow the mode: lazy under EventDriven so
// busy channels skip their inert sub-channels, naive under CycleByCycle so
// the reference loop really does tick everything every cycle. Switching
// after stepping has begun is unsupported.
func (s *System) SetClocking(m Clocking) {
	s.clocking = m
	for _, b := range s.backends {
		if lt, ok := b.(interface{ SetLazy(bool) }); ok {
			lt.SetLazy(m == EventDriven)
		}
	}
}

// SetProgress attaches a phase-progress observer (RunConfig.OnProgress):
// runPhase invokes it at every cancellation-poll boundary and once at
// phase end. Observation-only — a nil fn (the default) disables emission,
// and measurements are bit-identical either way.
func (s *System) SetProgress(fn func(Progress)) { s.progressFn = fn }

// PhaseRetired returns the slowest core's retirement count toward target,
// capped at target (cores that finish early keep executing to sustain
// memory pressure, but no longer advance phase progress). Counted from the
// last stats reset, like the target itself.
func (s *System) PhaseRetired(target uint64) uint64 {
	min := target
	for _, c := range s.cores {
		r := c.Stats().Retired
		if r < min {
			min = r
		}
	}
	return min
}

// emitProgress delivers one observation to the attached observer; start is
// the cycle the current phase began.
func (s *System) emitProgress(target uint64, start int64) {
	p := Progress{Phase: "warmup", Cycles: s.now - start, Retired: s.PhaseRetired(target), Target: target}
	if s.measuring {
		p.Phase = "measure"
	}
	s.progressFn(p)
}

// peakGBs sums backend peak bandwidths.
func (s *System) peakGBs() float64 {
	var total float64
	switch s.cfg.Kind {
	case DirectDDR:
		total = float64(s.cfg.Channels) * s.cfg.DDR.PeakGBs()
	case CXLAttached:
		total = float64(s.cfg.Channels*s.cfg.CXL.DDRChannels) * s.cfg.DDR.PeakGBs()
	}
	return total
}

// chOf maps an address to its memory channel.
func (s *System) chOf(addr uint64) int { return s.iv.ChannelOf(addr) }

// Access implements cpu.Hierarchy: the private L1 -> L2 path for a first
// access to a line, inline; anything beyond the L2 — LLC, CALM, memory —
// touches state shared between cores, so it is buffered as a memEvent for
// the sequential drain at the cycle barrier (accessLLC) and reported
// Async: the core parks the access in an MSHR and the barrier resolves
// same-cycle LLC hits before the next cycle begins. Access therefore only
// mutates per-core state and may run concurrently across cores.
func (s *System) Access(core int, addr, pc uint64, store bool, now int64) cpu.PathResult {
	line := memreq.LineAddr(addr)

	if s.l1[core].Lookup(line, store) {
		return cpu.PathResult{When: now + s.l1[core].Latency()}
	}
	t1 := now + s.l1[core].Latency()

	if s.l2[core].Lookup(line, store) {
		// Move up to L1 (write-allocate); victim may cascade.
		s.installL1Buffered(core, line, store)
		return cpu.PathResult{When: t1 + s.l2[core].Latency()}
	}
	t2 := t1 + s.l2[core].Latency() // the L2 miss register (paper's datum)

	s.coreEvents[core] = append(s.coreEvents[core], memEvent{
		kind: evAccess, store: store, line: line, pc: pc, t2: t2,
	})
	// The barrier drain will probe this line's LLC home set; start the
	// host-memory fetch of that (multi-megabyte, rarely cached) way
	// metadata now so the Lookup there finds it in flight. Touch reads
	// shared state without mutating it, so it is safe in this (potentially
	// parallel) phase; the per-core sink keeps the loads observable.
	s.touchSink[core] += s.llc.Touch(line)
	return cpu.PathResult{Async: true}
}

// accessLLC performs the shared-state half of one buffered access — the
// CALM decision and the LLC -> memory path — during the sequential drain.
// It reports whether the access resolved as an LLC hit (the core's MSHR
// was released, so its cached next event must be recomputed).
func (s *System) accessLLC(core int, ev *memEvent) bool {
	line, t2 := ev.line, ev.t2
	sliceIdx := s.llc.SliceOf(line)
	sliceTile := s.coreTiles[sliceIdx]
	nocTo := s.mesh.Latency(s.coreTiles[core], sliceTile)
	llcHit := s.llc.Lookup(line, false)

	doCALM := false
	if s.cfg.CALM.Kind != calm.Off {
		// The probe is a preallocated closure over s.probeLLCHit: handing
		// Decide a fresh `func() bool { return llcHit }` would heap-allocate
		// one closure per L2 miss (escape analysis cannot see through the
		// policy interface), the single largest allocation source in a
		// loaded window.
		s.probeLLCHit = llcHit
		doCALM = s.policy.Decide(core, ev.pc, t2, s.llcProbe)
	}
	s.policy.Observe(core, ev.pc, llcHit, doCALM)

	ch := s.chOf(line)
	portTile := s.portTiles[ch]

	if llcHit {
		when := t2 + nocTo + s.llc.Latency() + nocTo
		// Release the MSHR the core parked this access in; same-cycle
		// stores to the line merged into it, so the pending entry's dirty
		// bit subsumes ev.store.
		dirty := s.cores[coreSlot(s, core)].ResolveMiss(line, when)
		s.installPrivate(core, line, dirty, when)
		if doCALM {
			// False positive: the concurrent memory request was already
			// launched; its response will be discarded on arrival.
			r := s.arena.Alloc()
			r.Addr, r.Kind, r.Core, r.Host = line, memreq.Read, int16(core), s.hostID
			r.CALM, r.Discard, r.Issue = true, true, t2
			r.Ret = s.completerFor(ch)
			s.send(r, ch, t2+s.mesh.Latency(s.coreTiles[core], portTile))
		}
		if s.measuring {
			s.breakdown.Add(when-t2, 0, 0, 0)
			s.hist.Add(when - t2)
		}
		return true
	}

	// LLC miss: go to memory. The LLC's (miss) response still returns to
	// the L2; a CALM access may not complete before it (coherence rule).
	llcAck := t2 + nocTo + s.llc.Latency() + nocTo
	r := s.arena.Alloc()
	r.Addr, r.Kind, r.Core, r.Host = line, memreq.Read, int16(core), s.hostID
	r.CALM, r.Issue = doCALM, t2
	r.Ret = s.completerFor(ch)
	var at int64
	if doCALM {
		at = t2 + s.mesh.Latency(s.coreTiles[core], portTile)
		r.AckAt = llcAck
	} else {
		at = t2 + nocTo + s.llc.Latency() + s.mesh.Latency(sliceTile, portTile)
	}
	s.send(r, ch, at)
	return false
}

// drainCoreEvents applies the buffered beyond-L2 work in fixed core order
// (and, per core, in generation order), reproducing exactly the
// shared-state operation order of a sequential core loop. Cores whose
// accesses resolved as LLC hits get their cached next event recomputed
// under event-driven clocking: the resolution freed MSHRs and scheduled
// ROB completions after the core's own tick computed it.
func (s *System) drainCoreEvents(event bool) {
	for i := range s.coreEvents {
		evs := s.coreEvents[i]
		if len(evs) == 0 {
			continue
		}
		for k := range evs {
			ev := &evs[k]
			if ev.kind == evVictim {
				s.l2VictimToLLC(ev.line, s.now)
			} else {
				s.accessLLC(i, ev)
			}
		}
		s.coreEvents[i] = evs[:0]
		if event {
			// The tick phase skipped this core's NextEvent because its
			// buffered accesses could resolve here; compute it now, over
			// the post-drain state.
			s.coreNext[i] = s.cores[i].NextEvent(s.now)
		}
	}
}

// drainCompletions delivers the completions buffered during the backend
// tick phase, in backend order.
func (s *System) drainCompletions() {
	// Direct-completion mode (sequential backends) never routes through
	// doneBuf — backends call Complete inline — so there is nothing to
	// scan. See completerFor.
	if s.par <= 1 {
		return
	}
	// Pre-touch the way metadata each buffered read fill is about to hit
	// (LLC home set and the core's L2 set) so the misses on those
	// multi-megabyte arrays overlap instead of serializing through the
	// order-sensitive Complete calls below (same technique as prefillLLC).
	var sink uint64
	for ch := range s.doneBuf {
		for k := range s.doneBuf[ch] {
			r := s.doneBuf[ch][k].r
			if r.Kind == memreq.Read && !r.Discard {
				line := memreq.LineAddr(r.Addr)
				sink += s.llc.Touch(line) + s.l2[int(r.Core)].Touch(line)
			}
		}
	}
	s.touchSink[0] += sink
	for ch := range s.doneBuf {
		buf := s.doneBuf[ch]
		if len(buf) == 0 {
			continue
		}
		for k := range buf {
			s.Complete(buf[k].r, buf[k].at)
		}
		s.doneBuf[ch] = buf[:0]
	}
}

// Complete implements memreq.Completer: memory data arrived back at the
// processor (direct DDR: straight from the controller; CXL: after the
// response path).
func (s *System) Complete(r *memreq.Request, now int64) {
	if s.val != nil {
		s.val.lc.OnComplete(r, now) //lint:alloc validation hook; allocates only when recording an invariant failure
	}
	if r.Kind == memreq.Write {
		return // writes die in the backends; the retired drain releases them
	}
	if r.Discard {
		s.fpDiscarded++
		s.arena.Release(r)
		return
	}
	core := int(r.Core)
	line := memreq.LineAddr(r.Addr)
	nocBack := s.mesh.Latency(s.portTiles[s.chOf(line)], s.coreTiles[core])
	when := now + nocBack + s.cfg.FillLatency
	if r.AckAt > when {
		when = r.AckAt
	}

	slot := coreSlot(s, core)
	dirty := s.cores[slot].ResolveMiss(line, when)
	// The fill may unblock the core (MSHR freed, ROB head completion
	// scheduled): make sure it ticks next cycle, whatever its cached
	// NextEvent said. Complete always runs in the backend phase of cycle
	// s.now, after the cores ticked, so s.now+1 is the first cycle the
	// core could observe the fill — exactly as in cycle-by-cycle mode.
	s.wakeCore(slot, s.now+1)
	s.fillFromMemory(core, line, dirty, now)

	if s.measuring {
		total := when - r.Issue
		queue := r.QueueDelay() + r.Spill
		service := r.ServiceTime()
		onchip := total - queue - service - r.CXLTime
		s.breakdown.Add(onchip, queue, service, r.CXLTime)
		s.hist.Add(total)
	}
	// The read's life ends here: nothing holds it any longer (the backends
	// popped it on delivery, the MSHR is keyed by line, and the lifecycle
	// checker released its tracking above), so recycle the slot.
	s.arena.Release(r)
}

// coreSlot maps a core ID to its index in s.cores (identical while
// inactive cores are always the trailing ones).
func coreSlot(s *System, id int) int { return id }

// fillFromMemory installs a returning line in the LLC and private levels.
func (s *System) fillFromMemory(core int, line uint64, dirty bool, now int64) {
	v := s.llc.Fill(line, false)
	if v.Valid && v.Dirty {
		s.writeback(v.Addr, now)
	}
	s.installPrivate(core, line, dirty, now)
}

// installPrivate fills L2 then L1, cascading dirty victims downward.
func (s *System) installPrivate(core int, line uint64, dirty bool, now int64) {
	if v := s.l2[core].Fill(line, dirty); v.Valid && v.Dirty {
		s.l2VictimToLLC(v.Addr, now)
	}
	s.installL1(core, line, dirty)
}

// installL1 fills L1; its dirty victims land in the L2 (which may in turn
// displace a victim to the LLC; timestamps use the current tick). Only
// safe in the sequential drain phases, where the LLC may be touched.
func (s *System) installL1(core int, line uint64, dirty bool) {
	if v := s.l1[core].Fill(line, dirty); v.Valid && v.Dirty {
		if v2 := s.l2[core].Fill(v.Addr, true); v2.Valid && v2.Dirty {
			s.l2VictimToLLC(v2.Addr, s.now)
		}
	}
}

// installL1Buffered is installL1 for the (potentially parallel) core tick
// phase: a dirty L2 victim is buffered for the barrier drain instead of
// being written to the shared LLC inline.
func (s *System) installL1Buffered(core int, line uint64, dirty bool) {
	if v := s.l1[core].Fill(line, dirty); v.Valid && v.Dirty {
		if v2 := s.l2[core].Fill(v.Addr, true); v2.Valid && v2.Dirty {
			s.coreEvents[core] = append(s.coreEvents[core], memEvent{
				kind: evVictim, line: v2.Addr,
			})
		}
	}
}

// l2VictimToLLC absorbs a dirty L2 victim into the LLC (non-inclusive
// victim write-back); a dirty LLC victim goes to memory.
func (s *System) l2VictimToLLC(addr uint64, now int64) {
	if v := s.llc.Fill(addr, true); v.Valid && v.Dirty {
		s.writeback(v.Addr, now)
	}
}

// writeback sends a dirty 64B line to memory.
func (s *System) writeback(addr uint64, now int64) {
	if s.muteWrites {
		return
	}
	ch := s.chOf(addr)
	r := s.arena.Alloc()
	r.Addr, r.Kind, r.Core, r.Issue = addr, memreq.Write, -1, now
	r.Host = s.hostID
	sliceTile := s.coreTiles[s.llc.SliceOf(addr)]
	s.send(r, ch, now+s.mesh.Latency(sliceTile, s.portTiles[ch]))
}

// wakeCore clamps a core's cached next-event cycle down to `at`.
func (s *System) wakeCore(slot int, at int64) {
	if at < s.coreNext[slot] {
		s.coreNext[slot] = at
	}
}

// wakeBackend clamps a backend's cached next-event cycle down to `at` (the
// arrival cycle of a freshly enqueued request).
func (s *System) wakeBackend(ch int, at int64) {
	if at < s.backendNext[ch] {
		s.backendNext[ch] = at
	}
}

// send enqueues a request, spilling to the retry queue on backpressure.
// It runs only in the sequential drain phases (accessLLC, writeback,
// Complete all execute at the cycle barrier), so the lifecycle hook needs
// no locking.
func (s *System) send(r *memreq.Request, ch int, at int64) {
	if s.val != nil {
		s.val.lc.OnIssue(r, at) //lint:alloc validation hook; allocates only when recording an invariant failure
	}
	q := &s.spillR[ch]
	if r.Kind == memreq.Write {
		q = &s.spillW[ch]
	}
	if len(*q) == 0 && s.backends[ch].Enqueue(r, at) {
		s.wakeBackend(ch, at)
		return
	}
	*q = append(*q, spillItem{r: r, at: at})
	s.spillPending++
}

// flushSpill retries refused requests in FIFO order per kind.
func (s *System) flushSpill(now int64) {
	if s.spillPending == 0 {
		return
	}
	for ch := range s.backends {
		s.flushOne(&s.spillR[ch], ch, now)
		s.flushOne(&s.spillW[ch], ch, now)
	}
}

func (s *System) flushOne(qp *[]spillItem, ch int, now int64) {
	q := *qp
	n := 0
	for n < len(q) {
		it := q[n]
		at := it.at
		if at < now {
			at = now
		}
		if !s.backends[ch].Enqueue(it.r, at) {
			break
		}
		s.wakeBackend(ch, at)
		it.r.Spill += at - it.at
		n++
	}
	if n > 0 {
		*qp = q[n:]
		s.spillPending -= n
	}
}

// step advances the whole system one cycle (CycleByCycle mode). The cycle
// is phased: core ticks (parallelizable — cores touch only private state,
// buffering beyond-L2 work), core-event drain and spill retry at the
// barrier, backend ticks (parallelizable — channels touch only their own
// state, buffering completions), completion drain at the barrier.
func (s *System) step() {
	s.now++
	now := s.now
	if s.par > 1 && len(s.cores) > 1 {
		s.tickCoresPar(now)
	} else {
		for _, c := range s.cores {
			c.Tick(now)
		}
	}
	s.drainCoreEvents(false)
	s.flushSpill(now)
	if s.par > 1 && len(s.backends) > 1 {
		s.tickBackendsPar(now)
	} else {
		for _, b := range s.backends {
			b.Tick(now)
		}
	}
	s.drainCompletions()
	s.drainRetired()
}

// tickCoresPar / tickBackendsPar / tickDueCoresPar / tickDueBackendsPar
// hold the parallel tick phases in their own frames so the sequential
// paths pay no closure-capture allocations.
func (s *System) tickCoresPar(now int64) {
	s.pool.run(len(s.cores), func(i int) { s.cores[i].Tick(now) })
}

func (s *System) tickBackendsPar(now int64) {
	s.pool.run(len(s.backends), func(ch int) { s.backends[ch].Tick(now) })
}

func (s *System) tickDueCoresPar(due []int, next int64) {
	s.pool.run(len(due), func(k int) {
		i := due[k]
		s.cores[i].Tick(next)
		if len(s.coreEvents[i]) == 0 {
			s.coreNext[i] = s.cores[i].NextEvent(next)
		}
	})
}

func (s *System) tickDueBackendsPar(due []int, next int64) {
	s.pool.run(len(due), func(k int) {
		ch := due[k]
		s.backends[ch].Tick(next)
		s.backendNext[ch] = s.backends[ch].NextEvent(next)
	})
}

// stepEvent advances the clock to the earliest cached component event (at
// most `limit`) and ticks only the components due there. Components whose
// NextEvent lies beyond the chosen cycle are provably inert across the
// jump, so skipping their ticks — and the whole-system cycles where nobody
// is due — leaves simulated behaviour bit-identical to step(). Phase order
// within the chosen cycle matches step(): cores, core-event drain, spill
// retry, backends, completion drain. While any spill queue is non-empty
// the jump degrades to a single cycle, because spill retry timing depends
// on backend dequeues the caches can't see.
func (s *System) stepEvent(limit int64) {
	s.tickEventCycle(s.nextEventBound(limit))
}

// nextEventBound returns the cycle stepEvent would advance to given the
// budget limit: the earliest cached component event, degraded to now+1
// while spill retries are pending, clamped to (now, limit]. A rack driver
// folds each host's bound (and the pooled devices' NextEvents) into one
// global minimum so all hosts advance in lockstep.
func (s *System) nextEventBound(limit int64) int64 {
	next := limit
	if s.spillPending > 0 {
		next = s.now + 1
	} else {
		for _, t := range s.coreNext {
			if t < next {
				next = t
			}
		}
		for _, t := range s.backendNext {
			if t < next {
				next = t
			}
		}
	}
	if next <= s.now {
		next = s.now + 1
	}
	return next
}

// tickEventCycle simulates exactly the chosen cycle `next` (> now): the
// event-driven step body after the cycle choice.
func (s *System) tickEventCycle(next int64) {
	s.now = next

	due := s.dueCores[:0]
	for i := range s.cores {
		if s.coreNext[i] <= next {
			due = append(due, i)
		}
	}
	s.dueCores = due
	// Cores that buffered beyond-L2 work this tick get their NextEvent
	// computed after the drain instead (the barrier may resolve their
	// accesses, freeing MSHRs); computing it here too would be wasted.
	if s.par > 1 && len(due) > 1 {
		s.tickDueCoresPar(due, next)
	} else {
		for _, i := range due {
			s.cores[i].Tick(next)
			if len(s.coreEvents[i]) == 0 {
				s.coreNext[i] = s.cores[i].NextEvent(next)
			}
		}
	}
	s.drainCoreEvents(true)
	s.flushSpill(next)

	due = s.dueBackends[:0]
	for ch := range s.backends {
		if s.backendNext[ch] <= next {
			due = append(due, ch)
		}
	}
	s.dueBackends = due
	if s.par > 1 && len(due) > 1 {
		s.tickDueBackendsPar(due, next)
	} else {
		for _, ch := range due {
			s.backends[ch].Tick(next)
			s.backendNext[ch] = s.backends[ch].NextEvent(next)
		}
	}
	s.drainCompletions()
	// Only ticked backends can have buffered retired requests this cycle.
	for _, ch := range s.dueBackends {
		if rt := s.retirerOf[ch]; rt != nil {
			rt.DrainRetired(s.retireFn)
		}
	}
}

// syncClock realizes every component's lagging bulk accounting at the
// current cycle before counters are read or reset. Under event-driven
// clocking a component's local clock may lag the system clock (it was
// provably inert in between). Cores are re-Ticked: their Tick is idempotent
// at an already-simulated cycle, a lagging core has no due work at s.now
// (wakes always target s.now+1), and the tick runs the stall/token
// catch-up the cycle-by-cycle loop would have accrued. Backends use Sync
// rather than Tick: a lagging backend can hold work enqueued at s.now
// *after* its tick-order slot this cycle (a write-back from a
// later-ordered backend's completion), which the cycle-by-cycle loop only
// processes at s.now+1 — re-Ticking would process it a cycle early. Sync
// realizes the background integration (sub-channel ActiveBankCycles)
// without simulating any events.
func (s *System) syncClock() {
	for _, c := range s.cores {
		c.Tick(s.now)
	}
	for _, b := range s.backends {
		b.Sync(s.now)
	}
}

// prefillLLC synthesizes steady-state LLC content directly: the LLC is
// filled to capacity with addresses drawn from each core's cold-access
// distribution, dirty at the workload's store probability. Reaching this
// state through simulation alone would need tens of millions of warmup
// instructions for low-MPKI workloads (the LLC holds ~375k lines); the
// paper's 50M-instruction warmup serves the same role. Without a full LLC
// there are no evictions, hence no write-back traffic, in short windows.
func (s *System) prefillLLC(hints []trace.Params, seed uint64) {
	totalLines := 0
	for i := 0; i < s.llc.Slices(); i++ {
		totalLines += s.llc.Slice(i).Sets() * s.cfg.LLCAssoc
	}
	// Per-core weights proportional to cold-line fill rates.
	weights := make([]float64, len(hints))
	var wsum float64
	for i, p := range hints {
		stride := float64(p.ElemStride)
		if stride <= 0 {
			stride = 64
		}
		lineFrac := p.StreamFrac*minf(1, stride/64) + (1 - p.StreamFrac)
		weights[i] = p.MemFrac * (1 - p.HotFrac) * lineFrac
		if weights[i] <= 0 {
			weights[i] = 1e-6
		}
		wsum += weights[i]
	}
	rng := seed*2654435761 + 0x9E3779B97F4A7C15
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	// Overfill by 30% so set-conflict duplicates still leave sets full.
	// The fills hit random sets across tens of megabytes of way metadata,
	// so done one at a time they serialize on host-memory latency. Drawing
	// a window of addresses and touching every target set first lets those
	// misses overlap; the fills themselves still run in draw order, so the
	// resulting LLC state is identical.
	const batch = 64
	var addrs [batch]uint64
	var dirties [batch]bool
	var sink uint64
	for i, p := range hints {
		base := s.addrOffset + (uint64(i)+1)<<40
		wsLines := p.WSBytes / memreq.LineSize
		if wsLines == 0 {
			wsLines = 1
		}
		n := int(float64(totalLines) * 1.3 * weights[i] / wsum)
		for k := 0; k < n; k += batch {
			m := batch
			if n-k < m {
				m = n - k
			}
			for j := 0; j < m; j++ {
				addrs[j] = base + (next()%wsLines)*memreq.LineSize
				dirties[j] = float64(next()>>11)/(1<<53) < p.StoreFrac
				sink += s.llc.Touch(addrs[j])
			}
			for j := 0; j < m; j++ {
				s.llc.Fill(addrs[j], dirties[j])
			}
		}
	}
	prefillTouchSink = sink
}

// prefillTouchSink keeps prefillLLC's set pre-touch loads observable so the
// compiler cannot elide them.
var prefillTouchSink uint64

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// functionalWarmup streams instructions through the cache hierarchy with
// no timing, bringing cache contents (including dirty lines, hence
// write-back traffic) to steady state far faster than timed simulation.
// The paper's 50M-instruction warmup serves the same purpose.
func (s *System) functionalWarmup(perCore uint64) {
	s.muteWrites = true
	var ins trace.Instr
	for i, c := range s.cores {
		gen := c.Gen()
		for k := uint64(0); k < perCore; k++ {
			gen.Next(&ins)
			if !ins.IsMem {
				continue
			}
			line := memreq.LineAddr(ins.Addr)
			if s.l1[i].Lookup(line, ins.IsStore) {
				continue
			}
			if s.l2[i].Lookup(line, ins.IsStore) {
				s.installL1(i, line, ins.IsStore)
				continue
			}
			// Seed the LLC's dirty bits directly for store-fetched lines:
			// in steady state a written line's dirty bit reaches the LLC
			// through L2 eviction, a pipeline whose fill time would
			// otherwise dwarf the measured window (DESIGN.md §4).
			if !s.llc.Lookup(line, ins.IsStore) {
				s.llc.Fill(line, ins.IsStore)
			}
			s.installPrivate(i, line, ins.IsStore, 0)
		}
	}
	s.muteWrites = false
}

// fastForward advances each core's workload by perCore instructions
// without detailed timing, between sampled measurement windows. Three
// steps: (1) stream the instructions through the cache hierarchy
// functionally (cache and dirty-bit state advance; no requests, no clock) —
// the LLC statistics pollution is recorded for subtraction at collection;
// (2) freeze the cores and advance the clock by the gap's estimated
// detailed duration (perCore over each core's calibrated window IPC), so
// in-flight memory work drains at true latencies and periodic DRAM state —
// refresh schedules, idle precharge — stays realistic across the gap;
// (3) thaw the cores and wake them for the next detailed window.
// Measurement stays enabled throughout: completions landing during the
// drain belong to detailed-window requests and carry true latencies, and
// the functional stream adds none of its own.
func (s *System) fastForward(perCore uint64, ipc []float64) {
	st0 := s.llc.Stats()
	s.functionalWarmup(perCore)
	st1 := s.llc.Stats()
	s.ffAccesses += st1.Accesses - st0.Accesses
	s.ffMisses += st1.Misses - st0.Misses

	for _, c := range s.cores {
		c.SetFrozen(true)
	}
	var jump int64
	for _, v := range ipc {
		// Clamp the calibrated rate: a degenerate estimate must neither
		// stall the jump nor blow the cycle budget.
		if v < 0.02 {
			v = 0.02
		}
		if v > width {
			v = width
		}
		if j := int64(float64(perCore)/v) + 1; j > jump {
			jump = j
		}
	}
	target := s.now + jump
	for s.now < target {
		if s.clocking == CycleByCycle {
			s.step()
		} else {
			s.stepEvent(target)
		}
	}
	for i, c := range s.cores {
		c.SetFrozen(false)
		s.wakeCore(i, s.now+1)
	}
}

// width mirrors the core dispatch width for IPC clamping (cpu.Core's
// machine width is not exported; 4-wide throughout).
const width = 4

// runMeasureSampled runs the measure phase in sampled mode: detailed
// windows of `detail` per-core instructions alternate with functional
// fast-forward gaps of `ff`, until `total` per-core instructions
// (detailed + fast-forwarded) are accounted. Retirement targets are
// cumulative — cores only retire during detailed windows, and stats
// accumulate across them — so headline rates are computed over the union
// of the detailed windows (detailCycles) at collection.
func (s *System) runMeasureSampled(ctx context.Context, rc RunConfig) error {
	detail, ff, total := rc.SampleDetailInstr, rc.SampleFastFwdInstr, rc.MeasureInstr
	s.sampled = true
	ipc := make([]float64, len(s.cores))
	lastRetired := make([]uint64, len(s.cores))
	var done, cum uint64
	for done < total {
		d := detail
		if rem := total - done; rem < d {
			d = rem
		}
		cum += d
		budget := int64(d)*rc.MaxCyclesPerInstr + 1_000_000
		windowStart := s.now
		if err := s.runPhase(ctx, cum, budget); err != nil {
			return err
		}
		window := s.now - windowStart
		s.detailCycles += window
		// Calibrate per-core IPC from this window's deltas (retired since
		// the previous window over the window's cycles) for the next gap's
		// clock jump.
		for i, c := range s.cores {
			r := c.Stats().Retired
			if window > 0 {
				ipc[i] = float64(r-lastRetired[i]) / float64(window)
			}
			lastRetired[i] = r
		}
		done += d
		if done >= total {
			return nil
		}
		// Shorten the last gap so the run still ends with a detailed window:
		// collection anchors headline rates at the final window's finish
		// cycles, and a trailing gap would contribute nothing measured.
		f := ff
		if rem := total - done; f+detail > rem {
			if rem > detail {
				f = rem - detail
			} else {
				f = 0
			}
		}
		if f == 0 {
			continue
		}
		s.fastForward(f, ipc)
		done += f
	}
	return nil
}

// sampledIPC returns a core's measured IPC over the detailed windows only.
// The core retires instructions exclusively inside detailed windows (it is
// frozen across fast-forward gaps), and its final finish cycle lands inside
// the last detailed window, so its detailed span is the union of detailed
// windows minus the tail of the last one it did not need.
func (s *System) sampledIPC(c *cpu.Core) float64 {
	span := s.detailCycles
	if fc := c.FinishCycle; fc >= 0 {
		span -= s.now - fc
	}
	if span <= 0 {
		return 0
	}
	return float64(c.RetiredAtFinish()) / float64(span)
}

// BenchSteps advances the system n cycles (benchmark support), honoring
// the configured clocking mode.
func (s *System) BenchSteps(n int) {
	if s.clocking == CycleByCycle {
		for i := 0; i < n; i++ {
			s.step()
		}
		return
	}
	target := s.now + int64(n)
	for s.now < target {
		s.stepEvent(target)
	}
}

// resetStats zeroes all measurement state at the warmup boundary.
func (s *System) resetStats() {
	s.syncClock()
	for _, c := range s.cores {
		c.ResetStats(s.now)
	}
	for _, l := range s.l1 {
		l.ResetStats()
	}
	for _, l := range s.l2 {
		l.ResetStats()
	}
	s.llc.ResetStats()
	for _, b := range s.backends {
		b.ResetCounters()
	}
	s.policy.Reset()
	s.breakdown = stats.Breakdown{}
	s.hist.Reset()
	s.fpDiscarded = 0
	s.measuring = true
}

// ctxCheckCycles is the cancellation-poll granularity of runPhase: the
// context is consulted once per this many simulated cycles, so a canceled
// run stops at the next such window boundary with consistent state (every
// in-flight cycle fully drained) rather than mid-cycle.
const ctxCheckCycles = 4096

// runPhase executes until every core retires `target` instructions
// (counted from the last stats reset), bounded by maxCycles and by ctx
// cancellation (checked at ctxCheckCycles boundaries).
func (s *System) runPhase(ctx context.Context, target uint64, maxCycles int64) error {
	for _, c := range s.cores {
		c.SetTarget(target)
	}
	start := s.now
	limit := s.now + maxCycles
	nextCheck := s.now + ctxCheckCycles
	for {
		done := true
		for _, c := range s.cores {
			if !c.Done() {
				done = false
				break
			}
		}
		if done {
			if s.progressFn != nil {
				s.emitProgress(target, start)
			}
			return nil
		}
		if s.now >= limit {
			return fmt.Errorf("sim: %s: exceeded cycle budget (%d cycles for %d instructions)",
				s.cfg.Name, maxCycles, target)
		}
		if s.now >= nextCheck {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: %s: stopped at cycle %d: %w", s.cfg.Name, s.now, err)
			}
			if s.progressFn != nil {
				s.emitProgress(target, start)
			}
			nextCheck = s.now + ctxCheckCycles
		}
		if s.clocking == CycleByCycle {
			s.step()
		} else {
			s.stepEvent(limit)
		}
	}
}
