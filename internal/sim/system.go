package sim

import (
	"fmt"

	"coaxial/internal/cache"
	"coaxial/internal/calm"
	"coaxial/internal/cpu"
	"coaxial/internal/cxl"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
	"coaxial/internal/noc"
	"coaxial/internal/stats"
	"coaxial/internal/trace"
)

// counterBackend is a memory backend that also exposes DRAM activity
// counters; both dram.Channel and cxl.Channel satisfy it.
type counterBackend interface {
	memreq.Backend
	Counters() dram.Counters
	ResetCounters()
	Idle() bool
}

// spillItem is a request refused by a full backend ingress queue, held for
// in-order retry.
type spillItem struct {
	r  *memreq.Request
	at int64
}

// System is one assembled simulated machine.
type System struct {
	cfg  Config
	mesh noc.Mesh

	cores []*cpu.Core
	l1    []*cache.Cache
	l2    []*cache.Cache
	llc   *cache.LLC

	backends  []counterBackend
	portTiles []noc.Tile
	coreTiles []noc.Tile
	iv        memreq.Interleave

	policy calm.Policy

	// spill holds requests refused by full backend queues, per channel and
	// split by kind so writes cannot head-of-line-block reads.
	spillR [][]spillItem
	spillW [][]spillItem

	// prefillHints, when non-nil, drives synthetic LLC pre-fill.
	prefillHints []trace.Params

	measuring bool
	// muteWrites suppresses write-back requests during functional warmup
	// (the memory system is not being timed yet).
	muteWrites bool
	breakdown  stats.Breakdown
	hist       *stats.Histogram
	// fpDiscarded counts CALM false-positive responses dropped on arrival.
	fpDiscarded uint64

	now int64
}

// NewSystem assembles a system running the given per-core workloads
// (len(workloads) must equal the active core count; inactive cores idle).
func NewSystem(cfg Config, workloads []trace.Workload, seed uint64) (*System, error) {
	active := cfg.active()
	if len(workloads) != active {
		return nil, fmt.Errorf("sim: %d workloads for %d active cores", len(workloads), active)
	}
	gens := make([]trace.Generator, active)
	hints := make([]trace.Params, active)
	for i, w := range workloads {
		base := (uint64(i) + 1) << 40 // disjoint per-instance address spaces
		gens[i] = trace.NewSynthetic(w.Params, base, seed*1_000_003+uint64(i)+1)
		hints[i] = w.Params
	}
	return NewSystemGens(cfg, gens, hints)
}

// NewSystemGens assembles a system over caller-provided instruction
// generators (e.g. recorded trace replays). hints, when non-nil, supplies
// per-core workload parameters used for LLC pre-fill and the dispatch-rate
// cap; pass nil to skip pre-fill (then provide enough warmup in the trace
// itself).
func NewSystemGens(cfg Config, gens []trace.Generator, hints []trace.Params) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	active := cfg.active()
	if len(gens) != active {
		return nil, fmt.Errorf("sim: %d generators for %d active cores", len(gens), active)
	}
	if hints != nil && len(hints) != active {
		return nil, fmt.Errorf("sim: %d prefill hints for %d active cores", len(hints), active)
	}

	s := &System{
		cfg:  cfg,
		mesh: cfg.Mesh,
		iv:   memreq.Interleave{Channels: cfg.Channels},
		hist: stats.NewHistogram(6000, 4), // up to 2.5 us at 1.67 ns buckets
	}

	s.llc = cache.NewLLC(cfg.Cores, cfg.LLCSliceBytes, cfg.LLCAssoc, cfg.LLCLatency)

	// Memory backends and their mesh-perimeter port placement.
	systemSubs := cfg.Channels * cfg.DDR.SubChannels
	if cfg.Kind == CXLAttached {
		systemSubs = cfg.Channels * cfg.CXL.DDRChannels * cfg.DDR.SubChannels
	}
	for ch := 0; ch < cfg.Channels; ch++ {
		switch cfg.Kind {
		case DirectDDR:
			s.backends = append(s.backends, dram.NewChannel(cfg.DDR, systemSubs))
		case CXLAttached:
			ccfg := cfg.CXL
			ccfg.DDR = cfg.DDR
			s.backends = append(s.backends, cxl.NewChannel(ccfg, systemSubs))
		}
		s.portTiles = append(s.portTiles, cfg.Mesh.PortTile(ch, cfg.Channels))
	}
	s.spillR = make([][]spillItem, cfg.Channels)
	s.spillW = make([][]spillItem, cfg.Channels)

	s.policy = calm.New(cfg.CALM, cfg.Cores, s.peakGBs())

	for i := 0; i < cfg.Cores; i++ {
		s.coreTiles = append(s.coreTiles, cfg.Mesh.CoreTile(i))
		s.l1 = append(s.l1, cache.New(cfg.L1))
		s.l2 = append(s.l2, cache.New(cfg.L2))
	}
	for i := 0; i < active; i++ {
		ipcCap := 0.0
		if hints != nil {
			ipcCap = hints[i].IPCCap
		}
		s.cores = append(s.cores, cpu.New(i, gens[i], s, cfg.MSHRs, ipcCap))
	}
	s.prefillHints = hints
	return s, nil
}

// peakGBs sums backend peak bandwidths.
func (s *System) peakGBs() float64 {
	var total float64
	switch s.cfg.Kind {
	case DirectDDR:
		total = float64(s.cfg.Channels) * s.cfg.DDR.PeakGBs()
	case CXLAttached:
		total = float64(s.cfg.Channels*s.cfg.CXL.DDRChannels) * s.cfg.DDR.PeakGBs()
	}
	return total
}

// chOf maps an address to its memory channel.
func (s *System) chOf(addr uint64) int { return s.iv.ChannelOf(addr) }

// Access implements cpu.Hierarchy: the full L1 -> L2 -> (CALM?) -> LLC ->
// memory path for a first access to a line.
func (s *System) Access(core int, addr, pc uint64, store bool, now int64) cpu.PathResult {
	line := memreq.LineAddr(addr)

	if s.l1[core].Lookup(line, store) {
		return cpu.PathResult{When: now + s.l1[core].Latency()}
	}
	t1 := now + s.l1[core].Latency()

	if s.l2[core].Lookup(line, store) {
		// Move up to L1 (write-allocate); victim may cascade.
		s.installL1(core, line, store)
		return cpu.PathResult{When: t1 + s.l2[core].Latency()}
	}
	t2 := t1 + s.l2[core].Latency() // the L2 miss register (paper's datum)

	sliceIdx := s.llc.SliceOf(line)
	sliceTile := s.coreTiles[sliceIdx]
	nocTo := s.mesh.Latency(s.coreTiles[core], sliceTile)
	llcHit := s.llc.Lookup(line, false)

	doCALM := false
	if s.cfg.CALM.Kind != calm.Off {
		doCALM = s.policy.Decide(core, pc, t2, func() bool { return llcHit })
	}
	s.policy.Observe(core, pc, llcHit, doCALM)

	ch := s.chOf(line)
	portTile := s.portTiles[ch]

	if llcHit {
		when := t2 + nocTo + s.llc.Latency() + nocTo
		s.installPrivate(core, line, store, when)
		if doCALM {
			// False positive: the concurrent memory request was already
			// launched; its response will be discarded on arrival.
			r := &memreq.Request{
				Addr: line, Kind: memreq.Read, Core: int16(core),
				CALM: true, Discard: true, Issue: t2, Ret: s,
			}
			s.send(r, ch, t2+s.mesh.Latency(s.coreTiles[core], portTile))
		}
		if s.measuring {
			s.breakdown.Add(when-t2, 0, 0, 0)
			s.hist.Add(when - t2)
		}
		return cpu.PathResult{When: when}
	}

	// LLC miss: go to memory. The LLC's (miss) response still returns to
	// the L2; a CALM access may not complete before it (coherence rule).
	llcAck := t2 + nocTo + s.llc.Latency() + nocTo
	r := &memreq.Request{
		Addr: line, Kind: memreq.Read, Core: int16(core),
		CALM: doCALM, Issue: t2, Ret: s,
	}
	var at int64
	if doCALM {
		at = t2 + s.mesh.Latency(s.coreTiles[core], portTile)
		r.AckAt = llcAck
	} else {
		at = t2 + nocTo + s.llc.Latency() + s.mesh.Latency(sliceTile, portTile)
	}
	s.send(r, ch, at)
	return cpu.PathResult{Async: true}
}

// Complete implements memreq.Completer: memory data arrived back at the
// processor (direct DDR: straight from the controller; CXL: after the
// response path).
func (s *System) Complete(r *memreq.Request, now int64) {
	if r.Kind == memreq.Write {
		return
	}
	if r.Discard {
		s.fpDiscarded++
		return
	}
	core := int(r.Core)
	line := memreq.LineAddr(r.Addr)
	nocBack := s.mesh.Latency(s.portTiles[s.chOf(line)], s.coreTiles[core])
	when := now + nocBack + s.cfg.FillLatency
	if r.AckAt > when {
		when = r.AckAt
	}

	dirty := s.cores[coreSlot(s, core)].ResolveMiss(line, when)
	s.fillFromMemory(core, line, dirty, now)

	if s.measuring {
		total := when - r.Issue
		queue := r.QueueDelay() + r.Spill
		service := r.ServiceTime()
		onchip := total - queue - service - r.CXLTime
		s.breakdown.Add(onchip, queue, service, r.CXLTime)
		s.hist.Add(total)
	}
}

// coreSlot maps a core ID to its index in s.cores (identical while
// inactive cores are always the trailing ones).
func coreSlot(s *System, id int) int { return id }

// fillFromMemory installs a returning line in the LLC and private levels.
func (s *System) fillFromMemory(core int, line uint64, dirty bool, now int64) {
	v := s.llc.Fill(line, false)
	if v.Valid && v.Dirty {
		s.writeback(v.Addr, now)
	}
	s.installPrivate(core, line, dirty, now)
}

// installPrivate fills L2 then L1, cascading dirty victims downward.
func (s *System) installPrivate(core int, line uint64, dirty bool, now int64) {
	if v := s.l2[core].Fill(line, dirty); v.Valid && v.Dirty {
		s.l2VictimToLLC(v.Addr, now)
	}
	s.installL1(core, line, dirty)
}

// installL1 fills L1; its dirty victims land in the L2 (which may in turn
// displace a victim to the LLC; timestamps use the current tick).
func (s *System) installL1(core int, line uint64, dirty bool) {
	if v := s.l1[core].Fill(line, dirty); v.Valid && v.Dirty {
		if v2 := s.l2[core].Fill(v.Addr, true); v2.Valid && v2.Dirty {
			s.l2VictimToLLC(v2.Addr, s.now)
		}
	}
}

// l2VictimToLLC absorbs a dirty L2 victim into the LLC (non-inclusive
// victim write-back); a dirty LLC victim goes to memory.
func (s *System) l2VictimToLLC(addr uint64, now int64) {
	if v := s.llc.Fill(addr, true); v.Valid && v.Dirty {
		s.writeback(v.Addr, now)
	}
}

// writeback sends a dirty 64B line to memory.
func (s *System) writeback(addr uint64, now int64) {
	if s.muteWrites {
		return
	}
	ch := s.chOf(addr)
	r := &memreq.Request{Addr: addr, Kind: memreq.Write, Core: -1, Issue: now}
	sliceTile := s.coreTiles[s.llc.SliceOf(addr)]
	s.send(r, ch, now+s.mesh.Latency(sliceTile, s.portTiles[ch]))
}

// send enqueues a request, spilling to the retry queue on backpressure.
func (s *System) send(r *memreq.Request, ch int, at int64) {
	q := &s.spillR[ch]
	if r.Kind == memreq.Write {
		q = &s.spillW[ch]
	}
	if len(*q) == 0 && s.backends[ch].Enqueue(r, at) {
		return
	}
	*q = append(*q, spillItem{r: r, at: at})
}

// flushSpill retries refused requests in FIFO order per kind.
func (s *System) flushSpill(now int64) {
	for ch := range s.backends {
		s.flushOne(&s.spillR[ch], ch, now)
		s.flushOne(&s.spillW[ch], ch, now)
	}
}

func (s *System) flushOne(qp *[]spillItem, ch int, now int64) {
	q := *qp
	n := 0
	for n < len(q) {
		it := q[n]
		at := it.at
		if at < now {
			at = now
		}
		if !s.backends[ch].Enqueue(it.r, at) {
			break
		}
		it.r.Spill += at - it.at
		n++
	}
	if n > 0 {
		*qp = q[n:]
	}
}

// step advances the whole system one cycle.
func (s *System) step() {
	s.now++
	now := s.now
	for _, c := range s.cores {
		c.Tick(now)
	}
	s.flushSpill(now)
	for _, b := range s.backends {
		b.Tick(now)
	}
}

// prefillLLC synthesizes steady-state LLC content directly: the LLC is
// filled to capacity with addresses drawn from each core's cold-access
// distribution, dirty at the workload's store probability. Reaching this
// state through simulation alone would need tens of millions of warmup
// instructions for low-MPKI workloads (the LLC holds ~375k lines); the
// paper's 50M-instruction warmup serves the same role. Without a full LLC
// there are no evictions, hence no write-back traffic, in short windows.
func (s *System) prefillLLC(hints []trace.Params, seed uint64) {
	totalLines := 0
	for i := 0; i < s.llc.Slices(); i++ {
		totalLines += s.llc.Slice(i).Sets() * s.cfg.LLCAssoc
	}
	// Per-core weights proportional to cold-line fill rates.
	weights := make([]float64, len(hints))
	var wsum float64
	for i, p := range hints {
		stride := float64(p.ElemStride)
		if stride <= 0 {
			stride = 64
		}
		lineFrac := p.StreamFrac*minf(1, stride/64) + (1 - p.StreamFrac)
		weights[i] = p.MemFrac * (1 - p.HotFrac) * lineFrac
		if weights[i] <= 0 {
			weights[i] = 1e-6
		}
		wsum += weights[i]
	}
	rng := seed*2654435761 + 0x9E3779B97F4A7C15
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	// Overfill by 30% so set-conflict duplicates still leave sets full.
	for i, p := range hints {
		base := (uint64(i) + 1) << 40
		wsLines := p.WSBytes / memreq.LineSize
		if wsLines == 0 {
			wsLines = 1
		}
		n := int(float64(totalLines) * 1.3 * weights[i] / wsum)
		for k := 0; k < n; k++ {
			addr := base + (next()%wsLines)*memreq.LineSize
			dirty := float64(next()>>11)/(1<<53) < p.StoreFrac
			s.llc.Fill(addr, dirty)
		}
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// functionalWarmup streams instructions through the cache hierarchy with
// no timing, bringing cache contents (including dirty lines, hence
// write-back traffic) to steady state far faster than timed simulation.
// The paper's 50M-instruction warmup serves the same purpose.
func (s *System) functionalWarmup(perCore uint64) {
	s.muteWrites = true
	var ins trace.Instr
	for i, c := range s.cores {
		gen := c.Gen()
		for k := uint64(0); k < perCore; k++ {
			gen.Next(&ins)
			if !ins.IsMem {
				continue
			}
			line := memreq.LineAddr(ins.Addr)
			if s.l1[i].Lookup(line, ins.IsStore) {
				continue
			}
			if s.l2[i].Lookup(line, ins.IsStore) {
				s.installL1(i, line, ins.IsStore)
				continue
			}
			// Seed the LLC's dirty bits directly for store-fetched lines:
			// in steady state a written line's dirty bit reaches the LLC
			// through L2 eviction, a pipeline whose fill time would
			// otherwise dwarf the measured window (DESIGN.md §4).
			if !s.llc.Lookup(line, ins.IsStore) {
				s.llc.Fill(line, ins.IsStore)
			}
			s.installPrivate(i, line, ins.IsStore, 0)
		}
	}
	s.muteWrites = false
}

// BenchSteps advances the system n cycles (benchmark support).
func (s *System) BenchSteps(n int) {
	for i := 0; i < n; i++ {
		s.step()
	}
}

// resetStats zeroes all measurement state at the warmup boundary.
func (s *System) resetStats() {
	for _, c := range s.cores {
		c.ResetStats(s.now)
	}
	for _, l := range s.l1 {
		l.ResetStats()
	}
	for _, l := range s.l2 {
		l.ResetStats()
	}
	s.llc.ResetStats()
	for _, b := range s.backends {
		b.ResetCounters()
	}
	s.policy.Reset()
	s.breakdown = stats.Breakdown{}
	s.hist.Reset()
	s.fpDiscarded = 0
	s.measuring = true
}

// runPhase executes until every core retires `target` instructions
// (counted from the last stats reset), bounded by maxCycles.
func (s *System) runPhase(target uint64, maxCycles int64) error {
	for _, c := range s.cores {
		c.SetTarget(target)
	}
	limit := s.now + maxCycles
	for {
		done := true
		for _, c := range s.cores {
			if !c.Done() {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if s.now >= limit {
			return fmt.Errorf("sim: %s: exceeded cycle budget (%d cycles for %d instructions)",
				s.cfg.Name, maxCycles, target)
		}
		s.step()
	}
}
