package sim

import (
	"coaxial/internal/memreq"
	"coaxial/internal/trace"
)

// This file is the external driver surface of a System: the handles a
// multi-host topology (internal/rack) needs to run hosts in lockstep under
// its own phased loop instead of System's private runPhase. The methods
// re-expose existing sequential-phase internals unchanged, so a driver
// composing them in the documented order reproduces runPhase bit-exactly
// (the 1-host leg of TestRackClockingEquivalence pins this).
//
// Per-cycle protocol for a rack step to cycle `next`:
//
//	next := min over hosts of NextEventBound(limit),
//	        min over pooled devices of NextEvent(now)   (event mode)
//	next := now + 1                                     (cycle mode)
//	phase H: every host TickCycle(next)        — parallelizable per host
//	phase D: every pooled device TickDevice(next) — sequential, fixed order
//	phase E: per host, in host order:
//	         WakeBackendAt(ch, port.NextEvent(next)) for every port channel
//	         DrainRetiredNow()
//
// Phase H touches only host-private state (port ingress/response heaps are
// host-side), phase D only device state, so the phases need no finer
// locking; phase E re-arms each host's cached backend bounds after the
// device phase scheduled new response deliveries (wakes only clamp down,
// and phase D can only add events, so clamping is sufficient) and releases
// writes that retired inside the devices.

// Now returns the host's current cycle.
func (s *System) Now() int64 { return s.now }

// NextEventBound returns the next cycle this host needs to simulate, at
// most limit (see nextEventBound). Event-driven clocking only; under
// CycleByCycle drive the host with next = Now()+1.
func (s *System) NextEventBound(limit int64) int64 { return s.nextEventBound(limit) }

// TickCycle advances the host to cycle next (> Now()), honoring the
// configured clocking mode: the event-driven cycle body under EventDriven
// (callers choose next via NextEventBound folding), the full reference
// step under CycleByCycle (next must be Now()+1).
func (s *System) TickCycle(next int64) {
	if s.clocking == CycleByCycle {
		s.step()
		return
	}
	s.tickEventCycle(next)
}

// SetTarget sets every core's retirement target (counted from the last
// stats reset), the Done condition for the current phase.
func (s *System) SetTarget(target uint64) {
	for _, c := range s.cores {
		c.SetTarget(target)
	}
}

// Done reports whether every core reached its SetTarget retirement target.
func (s *System) Done() bool {
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// WakeBackendAt clamps channel ch's cached next-event cycle down to at.
// A rack driver calls it after each device phase with the port's fresh
// NextEvent, so response deliveries the device just scheduled are not
// skipped over.
func (s *System) WakeBackendAt(ch int, at int64) { s.wakeBackend(ch, at) }

// DrainRetiredNow releases every request that died inside a backend since
// the last drain (write retirements buffered by the device phase). Part of
// the rack's sequential per-host phase E; harmlessly idempotent.
func (s *System) DrainRetiredNow() { s.drainRetired() }

// Prewarm runs the untimed warmup (LLC pre-fill from the construction
// hints plus functional warmup) per rc, exactly as RunMixCtx does before
// its timed phases.
func (s *System) Prewarm(rc RunConfig) {
	if rc.SkipFunctional {
		return
	}
	if s.prefillHints != nil {
		s.prefillLLC(s.prefillHints, rc.Seed)
	}
	s.functionalWarmup(rc.functionalInstr())
}

// BeginMeasurement zeroes all measurement state at the warmup boundary
// (resetStats): counters, histograms, per-core stats, and backend DRAM
// counters; subsequent activity is measured.
func (s *System) BeginMeasurement() { s.resetStats() }

// Collect snapshots the host's measurements after the measure phase (see
// collect). workloads labels the result; it may be nil.
func (s *System) Collect(workloads []trace.Workload) Result { return s.collect(workloads) }

// ValidationReport runs the end-of-window validation checks and returns
// the aggregated *ValidationError, or nil — when validation is enabled and
// every check passed, or when validation is disabled. Call only on the
// success path with the system quiesced at its final cycle.
func (s *System) ValidationReport() error { return s.validationError() }

// AddPendingWalker registers an additional pending-request walker with the
// validation harness: requests this host owns that live outside its own
// backends (e.g. inside a shared pooled device's DDR controllers, which
// the port's ForEachPending deliberately excludes). The walker must visit
// each such request exactly once.
func (s *System) AddPendingWalker(w func(func(*memreq.Request))) {
	s.extraPending = append(s.extraPending, w)
}

// MaxCycles bounds a phase of target per-core instructions under rc's
// runaway budget, mirroring runPhase's limit arithmetic for external
// drivers.
func MaxCycles(target uint64, rc RunConfig) int64 {
	maxPer := rc.MaxCyclesPerInstr
	if maxPer <= 0 {
		maxPer = 400
	}
	return int64(target)*maxPer + 1_000_000
}
