package sim

import (
	"fmt"

	"coaxial/internal/clock"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
	"coaxial/internal/stats"
)

// LoadLatencyPoint is one point of the Fig. 2a load-latency curve: a DDR5
// channel driven with random reads at a target utilization.
type LoadLatencyPoint struct {
	TargetUtil   float64
	AchievedGBs  float64
	AchievedUtil float64
	MeanNS       float64
	P90NS        float64
	P99NS        float64
}

// latCollector measures arrival-to-data-return latency per request.
type latCollector struct {
	hist *stats.Histogram
	done int
}

func (lc *latCollector) Complete(r *memreq.Request, now int64) {
	lc.hist.Add(now - r.Issue)
	lc.done++
}

// LoadLatency drives one DDR channel with uniformly random reads arriving
// as a Bernoulli process at the target utilization, measuring the latency
// distribution over `requests` completed requests after `warmup` requests.
// This regenerates the paper's Fig. 2a (queuing effects shape the curve).
func LoadLatency(cfg dram.Config, targetUtil float64, warmup, requests int, seed uint64) (LoadLatencyPoint, error) {
	if targetUtil <= 0 || targetUtil > 1.05 {
		return LoadLatencyPoint{}, fmt.Errorf("sim: target utilization %v out of range", targetUtil)
	}
	ch := dram.NewChannel(cfg, cfg.SubChannels)
	lc := &latCollector{hist: stats.NewHistogram(1<<15, 4)}

	// One 64B line per request: lines per cycle at 100% utilization =
	// peak bytes/cycle / 64.
	linesPerCycle := clock.BytesPerCycle(cfg.PeakGBs()) / memreq.LineSize
	p := targetUtil * linesPerCycle

	rng := seed*0x9E3779B97F4A7C15 + 0x1234
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	rand01 := func() float64 { return float64(next()>>11) / (1 << 53) }

	const addrSpace = 4 << 30 // 4 GiB of backing DRAM
	total := warmup + requests
	injected := 0
	var backlog []*memreq.Request
	var now int64
	var startBytes uint64
	var startCycle int64

	for lc.done < total {
		now++
		if injected < total && rand01() < p {
			r := &memreq.Request{
				Addr:  (next() % (addrSpace / memreq.LineSize)) * memreq.LineSize,
				Kind:  memreq.Read,
				Core:  -1,
				Issue: now,
				Ret:   lc,
			}
			injected++
			if len(backlog) > 0 || !ch.Enqueue(r, now) {
				backlog = append(backlog, r)
			}
		}
		for len(backlog) > 0 && ch.Enqueue(backlog[0], now) {
			backlog = backlog[1:]
		}
		ch.Tick(now)
		if lc.done == warmup && startCycle == 0 {
			lc.hist.Reset()
			c := ch.Counters()
			startBytes = c.ReadBytes + c.WriteBytes
			startCycle = now
		}
		if now > int64(total)*100000 {
			return LoadLatencyPoint{}, fmt.Errorf("sim: load-latency run stalled at %d/%d", lc.done, total)
		}
	}

	c := ch.Counters()
	span := now - startCycle
	gbs := stats.GBs(c.ReadBytes+c.WriteBytes-startBytes, span)
	return LoadLatencyPoint{
		TargetUtil:   targetUtil,
		AchievedGBs:  gbs,
		AchievedUtil: stats.Utilization(gbs, cfg.PeakGBs()),
		MeanNS:       clock.NS(int64(lc.hist.Mean() + 0.5)),
		P90NS:        clock.NS(lc.hist.Percentile(90)),
		P99NS:        clock.NS(lc.hist.Percentile(99)),
	}, nil
}

// LoadLatencySweep runs LoadLatency across utilization points.
func LoadLatencySweep(cfg dram.Config, utils []float64, warmup, requests int, seed uint64) ([]LoadLatencyPoint, error) {
	var out []LoadLatencyPoint
	for _, u := range utils {
		pt, err := LoadLatency(cfg, u, warmup, requests, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
