package sim

import (
	"context"
	"fmt"

	"coaxial/internal/cache"
	"coaxial/internal/trace"
)

// WarmState is a snapshot of the untimed warmup product for one
// (cache geometry, workload set, seed) point: the cache contents after LLC
// pre-fill plus functional warmup, and every generator parked at its
// post-warmup stream position. One capture can seed any number of timed
// runs — each bit-identical to a cold run of the same configuration —
// which turns the warmup from a per-sweep-point cost into a one-time cost
// when sweep points share their warm key (WarmKey).
//
// The snapshot is immutable after capture: RunMixWarm clones the caches
// and generators per use.
type WarmState struct {
	workloads []trace.Workload
	hints     []trace.Params
	gens      []trace.Generator
	l1, l2    []*cache.Cache
	llc       *cache.LLC
	seed      uint64
	fw        uint64
	geom      string
	// host fingerprints the HostParams the warmup ran under: the address
	// offset shifts every generated address, so a snapshot is only valid
	// for the identical host position.
	host string
}

// Workloads returns the workload assignment the snapshot was captured for.
func (ws *WarmState) Workloads() []trace.Workload { return ws.workloads }

// warmGeometry fingerprints the configuration facets the untimed warmup
// depends on: core/cache shape only. Timing, backend, and CALM parameters
// are irrelevant to warmup (it is timing-free and touches caches and
// generators only), so e.g. a CALM-threshold sweep shares one warm state.
func warmGeometry(cfg Config) string {
	return fmt.Sprintf("c%d/%d|l1:%+v|l2:%+v|llc:%d/%d/%d",
		cfg.Cores, cfg.active(), cfg.L1, cfg.L2,
		cfg.LLCSliceBytes, cfg.LLCAssoc, cfg.LLCLatency)
}

// hostFingerprint identifies the HostParams facets the untimed warmup
// depends on: the address offset (it shifts every generated and prefilled
// address). Injected backends are irrelevant — warmup is timing-free and
// never touches them — and the host index only tags requests.
func hostFingerprint(hp HostParams) string {
	if hp.AddrOffset == 0 {
		return ""
	}
	return fmt.Sprintf("off:%#x", hp.AddrOffset)
}

// WarmKey identifies the warm state a (cfg, workloads, rc) run would
// consume: two runs with equal keys can share one CaptureWarm snapshot.
// rc.Topology participates so runs embedded in different multi-host
// topologies (different host counts, or different positions within one
// rack) never alias each other's cache entries.
func WarmKey(cfg Config, workloads []trace.Workload, rc RunConfig) string {
	key := fmt.Sprintf("%s|seed:%d|fw:%d", warmGeometry(cfg), rc.Seed, rc.functionalInstr())
	if rc.Topology != "" {
		key += "|topo:" + rc.Topology
	}
	for _, w := range workloads {
		key += fmt.Sprintf("|%+v", w.Params)
	}
	return key
}

// CaptureWarm builds cfg's system and runs the untimed warmup (LLC
// pre-fill plus functional warmup) once, returning the snapshot. ok is
// false — with no error — when the workloads' generators do not support
// cloning, in which case callers fall back to cold-start runs.
func CaptureWarm(cfg Config, workloads []trace.Workload, rc RunConfig) (ws *WarmState, ok bool, err error) {
	return CaptureWarmHost(cfg, workloads, rc, HostParams{})
}

// CaptureWarmHost is CaptureWarm for a host embedded in a multi-host
// topology: the snapshot is captured at hp's address offset and is only
// reusable at the same offset. The capture system is built with private
// backends even when the live host will use injected ones — the untimed
// warmup never touches a backend, and building throwaway ports would
// corrupt shared-device attach order.
func CaptureWarmHost(cfg Config, workloads []trace.Workload, rc RunConfig, hp HostParams) (ws *WarmState, ok bool, err error) {
	hp.Backends = nil
	sys, err := NewHostSystem(cfg, workloads, rc.Seed, hp)
	if err != nil {
		return nil, false, err
	}
	for _, c := range sys.cores {
		if _, ok := c.Gen().(trace.Cloner); !ok {
			return nil, false, nil
		}
	}
	hints := make([]trace.Params, len(workloads))
	for i, w := range workloads {
		hints[i] = w.Params
	}
	sys.prefillLLC(hints, rc.Seed)
	sys.functionalWarmup(rc.functionalInstr())

	ws = &WarmState{
		workloads: append([]trace.Workload(nil), workloads...),
		hints:     hints,
		gens:      make([]trace.Generator, len(sys.cores)),
		l1:        sys.l1,
		l2:        sys.l2,
		llc:       sys.llc,
		seed:      rc.Seed,
		fw:        rc.functionalInstr(),
		geom:      warmGeometry(cfg),
		host:      hostFingerprint(hp),
	}
	// The system is discarded, so its caches transfer to the snapshot
	// as-is; only the generators need detaching from the cores.
	for i, c := range sys.cores {
		ws.gens[i] = c.Gen()
	}
	return ws, true, nil
}

// RunMixWarm runs the timed phases of RunMixCtx from a warm snapshot,
// skipping the untimed warmup. The result is bit-identical to
// RunMixCtx(ctx, cfg, ws workloads, rc) (TestWarmStateBitIdentical); rc's
// seed and functional-warmup budget must match the capture, and cfg's
// core/cache geometry must match the capture configuration.
func RunMixWarm(ctx context.Context, cfg Config, ws *WarmState, rc RunConfig) (Result, error) {
	if rc.MeasureInstr == 0 {
		return Result{}, fmt.Errorf("sim: zero measure window")
	}
	if rc.MaxCyclesPerInstr <= 0 {
		rc.MaxCyclesPerInstr = 400
	}
	sys, err := NewWarmSystem(cfg, ws, rc, HostParams{})
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	return sys.timedPhases(ctx, ws.workloads, rc)
}

// NewWarmSystem rebuilds a ready-to-measure System from a warm snapshot:
// generators cloned at their post-warmup positions, caches cloned from the
// capture, clocking/parallelism/validation applied per rc. hp injects the
// host's topology placement — its address offset must match the capture
// (hostFingerprint), and hp.Backends wires shared pooled-device ports. The
// caller owns the system (Close it when done) and drives the timed phases
// itself; RunMixWarm is the single-host convenience wrapper.
func NewWarmSystem(cfg Config, ws *WarmState, rc RunConfig, hp HostParams) (*System, error) {
	if rc.SkipFunctional {
		return nil, fmt.Errorf("sim: warm run with SkipFunctional set")
	}
	if g := warmGeometry(cfg); g != ws.geom {
		return nil, fmt.Errorf("sim: warm state geometry mismatch: captured %q, running %q", ws.geom, g)
	}
	if rc.Seed != ws.seed || rc.functionalInstr() != ws.fw {
		return nil, fmt.Errorf("sim: warm state seed/warmup mismatch")
	}
	if h := hostFingerprint(hp); h != ws.host {
		return nil, fmt.Errorf("sim: warm state host mismatch: captured %q, running %q", ws.host, h)
	}
	gens := make([]trace.Generator, len(ws.gens))
	for i, g := range ws.gens {
		gens[i] = g.(trace.Cloner).Clone()
	}
	sys, err := newSystemGens(cfg, gens, ws.hints, hp)
	if err != nil {
		return nil, err
	}
	sys.SetParallelism(rc.Parallelism)
	sys.SetClocking(rc.Clocking)
	sys.SetProgress(rc.OnProgress)
	if rc.Validate {
		sys.EnableValidation()
	}
	for i := range sys.l1 {
		sys.l1[i] = ws.l1[i].Clone()
		sys.l2[i] = ws.l2[i].Clone()
	}
	sys.llc = ws.llc.Clone()
	return sys, nil
}
