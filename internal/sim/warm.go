package sim

import (
	"context"
	"fmt"

	"coaxial/internal/cache"
	"coaxial/internal/trace"
)

// WarmState is a snapshot of the untimed warmup product for one
// (cache geometry, workload set, seed) point: the cache contents after LLC
// pre-fill plus functional warmup, and every generator parked at its
// post-warmup stream position. One capture can seed any number of timed
// runs — each bit-identical to a cold run of the same configuration —
// which turns the warmup from a per-sweep-point cost into a one-time cost
// when sweep points share their warm key (WarmKey).
//
// The snapshot is immutable after capture: RunMixWarm clones the caches
// and generators per use.
type WarmState struct {
	workloads []trace.Workload
	hints     []trace.Params
	gens      []trace.Generator
	l1, l2    []*cache.Cache
	llc       *cache.LLC
	seed      uint64
	fw        uint64
	geom      string
}

// warmGeometry fingerprints the configuration facets the untimed warmup
// depends on: core/cache shape only. Timing, backend, and CALM parameters
// are irrelevant to warmup (it is timing-free and touches caches and
// generators only), so e.g. a CALM-threshold sweep shares one warm state.
func warmGeometry(cfg Config) string {
	return fmt.Sprintf("c%d/%d|l1:%+v|l2:%+v|llc:%d/%d/%d",
		cfg.Cores, cfg.active(), cfg.L1, cfg.L2,
		cfg.LLCSliceBytes, cfg.LLCAssoc, cfg.LLCLatency)
}

// WarmKey identifies the warm state a (cfg, workloads, rc) run would
// consume: two runs with equal keys can share one CaptureWarm snapshot.
func WarmKey(cfg Config, workloads []trace.Workload, rc RunConfig) string {
	key := fmt.Sprintf("%s|seed:%d|fw:%d", warmGeometry(cfg), rc.Seed, rc.functionalInstr())
	for _, w := range workloads {
		key += fmt.Sprintf("|%+v", w.Params)
	}
	return key
}

// CaptureWarm builds cfg's system and runs the untimed warmup (LLC
// pre-fill plus functional warmup) once, returning the snapshot. ok is
// false — with no error — when the workloads' generators do not support
// cloning, in which case callers fall back to cold-start runs.
func CaptureWarm(cfg Config, workloads []trace.Workload, rc RunConfig) (ws *WarmState, ok bool, err error) {
	sys, err := NewSystem(cfg, workloads, rc.Seed)
	if err != nil {
		return nil, false, err
	}
	for _, c := range sys.cores {
		if _, ok := c.Gen().(trace.Cloner); !ok {
			return nil, false, nil
		}
	}
	hints := make([]trace.Params, len(workloads))
	for i, w := range workloads {
		hints[i] = w.Params
	}
	sys.prefillLLC(hints, rc.Seed)
	sys.functionalWarmup(rc.functionalInstr())

	ws = &WarmState{
		workloads: append([]trace.Workload(nil), workloads...),
		hints:     hints,
		gens:      make([]trace.Generator, len(sys.cores)),
		l1:        sys.l1,
		l2:        sys.l2,
		llc:       sys.llc,
		seed:      rc.Seed,
		fw:        rc.functionalInstr(),
		geom:      warmGeometry(cfg),
	}
	// The system is discarded, so its caches transfer to the snapshot
	// as-is; only the generators need detaching from the cores.
	for i, c := range sys.cores {
		ws.gens[i] = c.Gen()
	}
	return ws, true, nil
}

// RunMixWarm runs the timed phases of RunMixCtx from a warm snapshot,
// skipping the untimed warmup. The result is bit-identical to
// RunMixCtx(ctx, cfg, ws workloads, rc) (TestWarmStateBitIdentical); rc's
// seed and functional-warmup budget must match the capture, and cfg's
// core/cache geometry must match the capture configuration.
func RunMixWarm(ctx context.Context, cfg Config, ws *WarmState, rc RunConfig) (Result, error) {
	if rc.MeasureInstr == 0 {
		return Result{}, fmt.Errorf("sim: zero measure window")
	}
	if rc.MaxCyclesPerInstr <= 0 {
		rc.MaxCyclesPerInstr = 400
	}
	if rc.SkipFunctional {
		return Result{}, fmt.Errorf("sim: warm run with SkipFunctional set")
	}
	if g := warmGeometry(cfg); g != ws.geom {
		return Result{}, fmt.Errorf("sim: warm state geometry mismatch: captured %q, running %q", ws.geom, g)
	}
	if rc.Seed != ws.seed || rc.functionalInstr() != ws.fw {
		return Result{}, fmt.Errorf("sim: warm state seed/warmup mismatch")
	}
	gens := make([]trace.Generator, len(ws.gens))
	for i, g := range ws.gens {
		gens[i] = g.(trace.Cloner).Clone()
	}
	sys, err := NewSystemGens(cfg, gens, ws.hints)
	if err != nil {
		return Result{}, err
	}
	sys.SetParallelism(rc.Parallelism)
	defer sys.Close()
	sys.SetClocking(rc.Clocking)
	if rc.Validate {
		sys.EnableValidation()
	}
	for i := range sys.l1 {
		sys.l1[i] = ws.l1[i].Clone()
		sys.l2[i] = ws.l2[i].Clone()
	}
	sys.llc = ws.llc.Clone()
	return sys.timedPhases(ctx, ws.workloads, rc)
}
