package sim

import (
	"fmt"
	"strings"

	"coaxial/internal/cxl"
	"coaxial/internal/dram"
	"coaxial/internal/memreq"
	"coaxial/internal/validate"
)

// validation bundles the per-system checkers of the differential
// validation harness (RunConfig.Validate / coaxial.WithValidation): one
// independent DDR5 timing oracle per sub-channel, attached as a command
// observer, and one request-lifecycle checker hooked into send/Complete.
type validation struct {
	lc      *validate.Lifecycle
	oracles []*validate.Oracle
}

// EnableValidation attaches the differential validation harness. Call
// before the first tick; idempotent. Oracles are per-sub-channel with
// private state, so they are safe under parallel backend ticking; the
// lifecycle checker only observes the sequential drain phases.
//
// The harness is observation-only: it never mutates requests or
// schedulers, so a validated run is bit-identical to an unvalidated one.
func (s *System) EnableValidation() {
	if s.val != nil {
		return
	}
	v := &validation{lc: validate.NewLifecycle()}
	attach := func(label string, d *dram.Channel) {
		for si, sub := range d.SubChannels() {
			o := validate.NewOracle(sub.Config(), fmt.Sprintf("%s/sub%d", label, si))
			sub.AttachObserver(o)
			v.oracles = append(v.oracles, o)
		}
	}
	for ch, b := range s.backends {
		switch t := b.(type) {
		case *dram.Channel:
			attach(fmt.Sprintf("ddr%d", ch), t)
		case *cxl.Channel:
			for di, d := range t.DDR() {
				attach(fmt.Sprintf("cxl%d/ddr%d", ch, di), d)
			}
		}
	}
	s.val = v
	// Route arena misuse (double release, foreign request) into the
	// lifecycle report instead of panicking, so a plumbing bug surfaces as
	// a *ValidationError with full context alongside any related findings.
	s.arena.SetFailf(v.lc.Failf)
}

// forEachPending walks every request the memory system currently owns:
// the spill retry queues plus each backend's internal queues (for CXL,
// including the device-side DDR controllers and the response path). For
// pooled-device ports the shared DDR controllers are covered by the
// topology's registered walkers (AddPendingWalker) — the rack walks each
// device once and dispatches by Request.Host — so a host with several
// ports on one device still visits each request exactly once.
func (s *System) forEachPending(fn func(*memreq.Request)) {
	for ch := range s.backends {
		for i := range s.spillR[ch] {
			fn(s.spillR[ch][i].r)
		}
		for i := range s.spillW[ch] {
			fn(s.spillW[ch][i].r)
		}
	}
	for _, b := range s.backends {
		switch t := b.(type) {
		case *dram.Channel:
			t.ForEachPending(fn)
		case *cxl.Channel:
			t.ForEachPending(fn)
		case *cxl.Port:
			t.ForEachPending(fn)
		}
	}
	for _, w := range s.extraPending {
		w(fn)
	}
}

// ValidationError aggregates every violation the harness observed in one
// run: DDR timing-rule breaches (with command history) and request-
// lifecycle invariant failures.
type ValidationError struct {
	// Count is the total number of violations, including any beyond the
	// per-checker storage caps.
	Count int
	// Report is the formatted violation listing.
	Report string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("sim: validation failed: %d invariant violation(s)\n%s", e.Count, e.Report)
}

// validationError runs the end-of-window checks and collapses the
// harness's findings into a single error (nil when every check passed).
// Call after the final syncClock, on the success path only: a cancelled
// or budget-exhausted run legitimately leaves requests in flight.
func (s *System) validationError() error {
	if s.val == nil {
		return nil
	}
	lc := s.val.lc

	// MSHR occupancy: per-core counts bounded by the configured MSHR
	// budget, and their sum must equal the non-discarded in-flight reads.
	held := 0
	for i, c := range s.cores {
		m := c.OutstandingMisses()
		if m < 0 || m > s.cfg.MSHRs {
			lc.Failf("core %d MSHR occupancy %d outside [0, %d] at window end", i, m, s.cfg.MSHRs)
		}
		held += m
	}
	lc.CheckEnd(s.forEachPending, held)

	// Arena handle escape: every request a queue still owns must be a live
	// allocation. A dead one means some component released a request while
	// another still held its pointer — the stale handle would silently read
	// a recycled request.
	s.forEachPending(func(r *memreq.Request) {
		if r != nil && !s.arena.IsLive(r) {
			lc.Failf("escaped handle: request %#x (core %d) present in a memory-system queue after release",
				r.Addr, r.Core)
		}
	})

	// Queue occupancy bounds.
	var extra []string
	checkSub := func(label string, si int, sub *dram.SubChannel) {
		r, w := sub.QueueOccupancy()
		cfg := sub.Config()
		if r < 0 || r > cfg.ReadQueueDepth || w < 0 || w > cfg.WriteQueueDepth {
			extra = append(extra, fmt.Sprintf(
				"%s/sub%d queue occupancy out of bounds: reads %d of %d, writes %d of %d",
				label, si, r, cfg.ReadQueueDepth, w, cfg.WriteQueueDepth))
		}
	}
	for ch, b := range s.backends {
		switch t := b.(type) {
		case *dram.Channel:
			for si, sub := range t.SubChannels() {
				checkSub(fmt.Sprintf("ddr%d", ch), si, sub)
			}
		case *cxl.Channel:
			if out := t.Outstanding(); out < 0 || out > t.IngressDepth() {
				extra = append(extra, fmt.Sprintf(
					"cxl%d outstanding count %d outside [0, %d]", ch, out, t.IngressDepth()))
			}
			for di, d := range t.DDR() {
				for si, sub := range d.SubChannels() {
					checkSub(fmt.Sprintf("cxl%d/ddr%d", ch, di), si, sub)
				}
			}
		case *cxl.Port:
			// Shared-device DDR occupancy is checked by the rack, which
			// owns the device; only the port-local bound is per-host.
			if out := t.Outstanding(); out < 0 || out > t.IngressDepth() {
				extra = append(extra, fmt.Sprintf(
					"port%d outstanding count %d outside [0, %d]", ch, out, t.IngressDepth()))
			}
		}
	}

	// Oracle end-of-run checks (refresh schedule liveness).
	for _, o := range s.val.oracles {
		o.Quiesce(s.now)
	}

	count := lc.ErrorCount() + len(extra)
	var b strings.Builder
	for _, o := range s.val.oracles {
		count += o.ViolationCount()
		for _, v := range o.Violations() {
			b.WriteString(v.String())
		}
	}
	for _, e := range lc.Errors() {
		b.WriteString("lifecycle: ")
		b.WriteString(e)
		b.WriteByte('\n')
	}
	for _, e := range extra {
		b.WriteString("occupancy: ")
		b.WriteString(e)
		b.WriteByte('\n')
	}
	if count == 0 {
		return nil
	}
	return &ValidationError{Count: count, Report: b.String()}
}
