package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"coaxial/internal/memreq"
	"coaxial/internal/trace"
)

// saveOracleReport writes a failed run's validation report to
// $ORACLE_REPORT_DIR (when set) so CI can upload it as an artifact.
func saveOracleReport(t *testing.T, err error) {
	t.Helper()
	dir := os.Getenv("ORACLE_REPORT_DIR")
	var ve *ValidationError
	if dir == "" || !errors.As(err, &ve) {
		return
	}
	if mkErr := os.MkdirAll(dir, 0o755); mkErr != nil {
		t.Logf("cannot create report dir: %v", mkErr)
		return
	}
	name := strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()) + ".txt"
	if wrErr := os.WriteFile(filepath.Join(dir, name), []byte(ve.Report), 0o644); wrErr != nil {
		t.Logf("cannot write report: %v", wrErr)
	}
}

// TestValidationSuite is the harness's acceptance matrix: the DDR timing
// oracle and the lifecycle checker must report zero violations across the
// default configuration suite (direct DDR, COAXIAL-4x, CXL-pooled) under
// both clocking modes, sequential and parallel ticking, on both a paper
// workload mix and the mixed-MPKI rack workload.
func TestValidationSuite(t *testing.T) {
	configs := []Config{Baseline(), Coaxial4x(), CoaxialPooled()}
	loads := []struct {
		name string
		wl   func(cores int) []trace.Workload
	}{
		{"mix1", func(c int) []trace.Workload { return trace.Mix(1, c) }},
		{"rack0", func(c int) []trace.Workload { return trace.RackMix(0, c) }},
	}
	modes := []struct {
		name string
		m    Clocking
	}{{"event", EventDriven}, {"cycle", CycleByCycle}}

	for _, cfg := range configs {
		for _, ld := range loads {
			wl := ld.wl(cfg.Cores)
			for _, mode := range modes {
				for _, par := range []int{1, 3} {
					t.Run(fmt.Sprintf("%s/%s/%s/par%d", cfg.Name, ld.name, mode.name, par), func(t *testing.T) {
						rc := RunConfig{
							FunctionalWarmupInstr: 40_000,
							WarmupInstr:           1_000,
							MeasureInstr:          6_000,
							Seed:                  1,
							Clocking:              mode.m,
							Parallelism:           par,
							Validate:              true,
						}
						res, err := RunMix(cfg, wl, rc)
						if err != nil {
							saveOracleReport(t, err)
							t.Fatalf("validated run failed: %v", err)
						}
						if res.Retired == 0 {
							t.Error("validated run retired no instructions")
						}
					})
				}
			}
		}
	}
}

// TestValidationSameBankRefresh runs the oracle against the DDR5 REFsb
// refresh path inside a full system, which the matrix above (all-bank REF)
// does not reach.
func TestValidationSameBankRefresh(t *testing.T) {
	cfg := Baseline()
	cfg.Name = "ddr-baseline-refsb"
	cfg.DDR.SameBankRefresh = true
	rc := RunConfig{
		FunctionalWarmupInstr: 40_000,
		WarmupInstr:           1_000,
		MeasureInstr:          8_000,
		Seed:                  2,
		Validate:              true,
	}
	if _, err := RunMix(cfg, trace.Mix(2, cfg.Cores), rc); err != nil {
		saveOracleReport(t, err)
		t.Fatalf("validated REFsb run failed: %v", err)
	}
}

// TestValidationObservationOnly pins the harness's central contract: a
// validated run is bit-identical to the same run without validation.
func TestValidationObservationOnly(t *testing.T) {
	for _, cfg := range []Config{Baseline(), CoaxialPooled()} {
		t.Run(cfg.Name, func(t *testing.T) {
			wl := trace.RackMix(1, cfg.Cores)
			rc := RunConfig{
				FunctionalWarmupInstr: 40_000,
				WarmupInstr:           1_000,
				MeasureInstr:          6_000,
				Seed:                  1,
			}
			plain, err := RunMix(cfg, wl, rc)
			if err != nil {
				t.Fatal(err)
			}
			rc.Validate = true
			checked, err := RunMix(cfg, wl, rc)
			if err != nil {
				saveOracleReport(t, err)
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, checked) {
				t.Errorf("validation perturbed the measurement\nplain:   %+v\nchecked: %+v", plain, checked)
			}
		})
	}
}

// TestValidationErrorSurfaces checks the plumbing from a detected violation
// to the caller: inject a lifecycle failure directly into an enabled
// system's harness and confirm the run reports it (with the Result still
// produced), rather than silently succeeding.
func TestValidationErrorSurfaces(t *testing.T) {
	w, err := trace.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	wl := make([]trace.Workload, 2)
	for i := range wl {
		wl[i] = w
	}
	cfg := Baseline().WithActiveCores(2)
	sys, err := NewSystem(cfg, wl, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableValidation()
	sys.val.lc.Failf("synthetic invariant failure for plumbing test")
	verr := sys.validationError()
	if verr == nil {
		t.Fatal("injected failure did not surface")
	}
	var ve *ValidationError
	if !errors.As(verr, &ve) {
		t.Fatalf("error type = %T, want *ValidationError", verr)
	}
	if ve.Count == 0 || !strings.Contains(ve.Report, "synthetic invariant failure") {
		t.Errorf("report missing the injected failure: %+v", ve)
	}
}

// plantedSystem builds a validated system under load and advances it until
// the memory system holds in-flight requests.
func plantedSystem(t *testing.T) *System {
	t.Helper()
	w, err := trace.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Coaxial4x()
	wl := make([]trace.Workload, cfg.Cores)
	for i := range wl {
		wl[i] = w
	}
	sys, err := NewSystem(cfg, wl, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableValidation()
	for i := 0; i < 50; i++ {
		sys.BenchSteps(2_000)
		pending := 0
		sys.forEachPending(func(*memreq.Request) { pending++ })
		if pending > 0 {
			return sys
		}
	}
	t.Fatal("no in-flight requests after 100k cycles")
	return nil
}

// TestValidationCatchesPlantedArenaFaults plants the two arena-misuse bugs
// the harness exists to catch and confirms each surfaces as a validation
// failure: an escaped handle (a request released while a memory-system
// queue still holds its pointer) and a double free.
func TestValidationCatchesPlantedArenaFaults(t *testing.T) {
	t.Run("escaped-handle", func(t *testing.T) {
		sys := plantedSystem(t)
		// Plant: free a request out from under the queue that owns it.
		var victim *memreq.Request
		sys.forEachPending(func(r *memreq.Request) {
			if victim == nil {
				victim = r
			}
		})
		sys.arena.Release(victim)
		verr := sys.validationError()
		var ve *ValidationError
		if !errors.As(verr, &ve) || !strings.Contains(ve.Report, "escaped handle") {
			t.Fatalf("planted escaped handle not reported; err = %v", verr)
		}
	})
	t.Run("double-free", func(t *testing.T) {
		sys := plantedSystem(t)
		var victim *memreq.Request
		sys.forEachPending(func(r *memreq.Request) {
			if victim == nil {
				victim = r
			}
		})
		sys.arena.Release(victim)
		sys.arena.Release(victim) // plant: second free of the same request
		verr := sys.validationError()
		var ve *ValidationError
		if !errors.As(verr, &ve) || !strings.Contains(ve.Report, "double release") {
			t.Fatalf("planted double free not reported; err = %v", verr)
		}
	})
}
