package sim

import (
	"testing"

	"coaxial/internal/trace"
)

// TestSmokeBaselineVsCoaxial runs one bandwidth-bound workload on the
// baseline and COAXIAL-4x and checks the headline phenomenon: COAXIAL's
// extra channels cut queuing delay enough to beat the baseline despite the
// CXL latency premium.
func TestSmokeBaselineVsCoaxial(t *testing.T) {
	w, err := trace.WorkloadByName("stream-copy")
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{WarmupInstr: 10_000, MeasureInstr: 40_000, Seed: 1}

	base, err := Run(Baseline(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	coax, err := Run(Coaxial4x(), w, rc)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("baseline: IPC=%.3f util=%.1f%% lat=%.0fns (onchip %.0f queue %.0f svc %.0f cxl %.0f) mpki=%.1f rd=%.1f wr=%.1f GB/s",
		base.IPC, base.Utilization*100, base.TotalNS, base.OnChipNS, base.QueueNS, base.ServiceNS, base.CXLNS,
		base.LLCMPKI, base.ReadGBs, base.WriteGBs)
	t.Logf("coaxial4x: IPC=%.3f util=%.1f%% lat=%.0fns (onchip %.0f queue %.0f svc %.0f cxl %.0f) mpki=%.1f rd=%.1f wr=%.1f GB/s",
		coax.IPC, coax.Utilization*100, coax.TotalNS, coax.OnChipNS, coax.QueueNS, coax.ServiceNS, coax.CXLNS,
		coax.LLCMPKI, coax.ReadGBs, coax.WriteGBs)
	t.Logf("speedup=%.2fx", coax.IPC/base.IPC)

	if base.IPC <= 0 || coax.IPC <= 0 {
		t.Fatalf("degenerate IPCs: base=%v coax=%v", base.IPC, coax.IPC)
	}
	if coax.IPC <= base.IPC {
		t.Errorf("COAXIAL-4x should beat the baseline on stream-copy: %.3f vs %.3f", coax.IPC, base.IPC)
	}
	if base.QueueNS <= coax.QueueNS {
		t.Errorf("queuing should shrink: base %.0fns vs coax %.0fns", base.QueueNS, coax.QueueNS)
	}
	if coax.CXLNS <= 0 {
		t.Errorf("COAXIAL must report CXL interface time, got %.1fns", coax.CXLNS)
	}
	if base.CXLNS != 0 {
		t.Errorf("baseline must not report CXL time, got %.1fns", base.CXLNS)
	}
}
