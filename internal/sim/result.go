package sim

import (
	"context"
	"fmt"

	"coaxial/internal/calm"
	"coaxial/internal/clock"
	"coaxial/internal/dram"
	"coaxial/internal/stats"
	"coaxial/internal/trace"
)

// RunConfig controls an experiment's simulation windows.
type RunConfig struct {
	// FunctionalWarmupInstr is the per-core timing-free warmup budget that
	// brings cache contents to steady state (so LLC fills and dirty
	// write-back traffic are representative). Zero uses the default of
	// 1M instructions; set to a negative-like sentinel via SkipFunctional
	// to disable.
	FunctionalWarmupInstr uint64
	// SkipFunctional disables functional warmup entirely.
	SkipFunctional bool
	// WarmupInstr is the per-core timed warmup budget (queues, predictors
	// and DRAM state settle; statistics are discarded).
	WarmupInstr uint64
	// MeasureInstr is the per-core measured instruction budget.
	MeasureInstr uint64
	// Seed determinizes workload generation.
	Seed uint64
	// MaxCyclesPerInstr bounds runaway simulations (cycles budget =
	// MaxCyclesPerInstr * instructions, per phase). Default 400.
	MaxCyclesPerInstr int64
	// Clocking selects the main-loop time-advance strategy; the zero value
	// is EventDriven. CycleByCycle is the bit-identical reference loop
	// (see TestClockingEquivalence), useful for debugging the event path.
	Clocking Clocking
	// Workers bounds RunSuite's parallelism; 0 means GOMAXPROCS.
	Workers int
	// Parallelism is the intra-system tick-phase worker count: cores and
	// memory backends due at a cycle tick on this many goroutines between
	// the cycle's synchronization points (see System.SetParallelism).
	// Results are bit-identical for every value; <= 1 ticks sequentially.
	Parallelism int
	// SampleDetailInstr and SampleFastFwdInstr enable sampled simulation
	// when both are positive: the measure phase alternates detailed windows
	// of SampleDetailInstr per-core instructions with functional
	// fast-forward gaps of SampleFastFwdInstr, until MeasureInstr
	// instructions (detailed + fast-forwarded) are accounted. Headline
	// rates are computed over the detailed windows only. Sampled results
	// approximate the detailed run (see the accuracy-budget test in
	// sampling_test.go); the warmup phases are unaffected.
	SampleDetailInstr  uint64
	SampleFastFwdInstr uint64
	// Validate attaches the differential validation harness: an
	// independent DDR5 timing oracle on every sub-channel plus the
	// request-lifecycle invariant checker. A run whose harness observes
	// any violation returns a *ValidationError alongside its (complete)
	// Result. Observation-only: measurements are bit-identical with or
	// without it.
	Validate bool
	// Topology fingerprints the multi-host topology the run is embedded in
	// ("" for a standalone single-host run). It contributes to WarmKey so
	// rack sweeps never alias warm-state cache entries across host counts
	// or host positions; rack drivers set it per host (see rack.HostRunConfig).
	Topology string
	// RackParallelism is the rack-level host-shard worker count: hosts
	// tick on this many goroutines between rack phases. Results are
	// bit-identical for every value; <= 1 ticks hosts sequentially. It is
	// independent of Parallelism (the intra-host worker count) and unused
	// by single-host runs.
	RackParallelism int
	// OnProgress, when non-nil, observes phase progress at the
	// cancellation-poll boundaries of the run loop (every ctxCheckCycles
	// simulated cycles) and once at each phase end; rack runs report
	// rack-level progress through the same hook. Observation-only: the
	// callback must not mutate simulator state, and measurements are
	// bit-identical with or without it. It is invoked synchronously from
	// the simulation goroutine, so it should return quickly. Excluded from
	// warm keys and configuration fingerprints (see serve.flightKey).
	OnProgress func(Progress)
}

// Progress is one phase-progress observation delivered to
// RunConfig.OnProgress: how far the slowest core has retired toward the
// phase target, and how many cycles the phase has consumed so far. A
// partial window returned on cancellation corresponds to the last
// observation delivered.
type Progress struct {
	// Phase is "warmup" or "measure".
	Phase string
	// Cycles is the simulated cycles spent in the phase so far.
	Cycles int64
	// Retired is the slowest core's instructions retired toward Target
	// (capped at Target; cores that finish early keep running but no
	// longer advance it).
	Retired uint64
	// Target is the per-core retirement target of the phase.
	Target uint64
}

// DefaultRunConfig returns the standard experiment windows. The paper
// simulates 200M instructions per core after 50M of warmup; our synthetic
// workloads are stationary by construction, so far shorter windows are
// representative (see DESIGN.md §4).
func DefaultRunConfig() RunConfig {
	return RunConfig{WarmupInstr: 40_000, MeasureInstr: 150_000, Seed: 1}
}

// Result aggregates one experiment's measurements.
type Result struct {
	Config   string
	Workload string

	// Cycles is the measured window length (to the last core's finish).
	Cycles int64
	// PerCoreIPC is each active core's measured IPC.
	PerCoreIPC []float64
	// IPC is the mean per-core IPC; CPI its inverse.
	IPC float64
	CPI float64

	// L2-miss latency breakdown, average nanoseconds per L2 miss
	// (Fig. 2b / Fig. 5 middle).
	OnChipNS  float64
	QueueNS   float64
	ServiceNS float64
	CXLNS     float64
	TotalNS   float64

	// Latency distribution of L2 misses (ns).
	P50NS, P90NS, P99NS float64

	// Memory traffic over the measured window.
	ReadGBs     float64
	WriteGBs    float64
	PeakGBs     float64
	Utilization float64

	// LLC behaviour.
	LLCMPKI      float64
	LLCMissRatio float64

	// CALM decision tallies (Fig. 7b).
	CALM calm.Decisions
	// FPDiscarded counts discarded CALM false-positive responses.
	FPDiscarded uint64

	// DRAM raw activity (power model input).
	DRAM dram.Counters

	// Retired is the total instructions retired in the window (including
	// overshoot by cores that finished early and kept running).
	Retired uint64
}

// Run executes one experiment: cfg's system running the same workload on
// every active core (the paper's rate mode).
func Run(cfg Config, w trace.Workload, rc RunConfig) (Result, error) {
	return RunCtx(context.Background(), cfg, w, rc)
}

// RunCtx is Run with cancellation; see RunMixCtx for its semantics.
func RunCtx(ctx context.Context, cfg Config, w trace.Workload, rc RunConfig) (Result, error) {
	wl := make([]trace.Workload, cfg.active())
	for i := range wl {
		wl[i] = w
	}
	res, err := RunMixCtx(ctx, cfg, wl, rc)
	res.Workload = w.Params.Name
	return res, err
}

// RunMix executes one experiment with per-core workloads (Fig. 6 mixes).
func RunMix(cfg Config, workloads []trace.Workload, rc RunConfig) (Result, error) {
	return RunMixCtx(context.Background(), cfg, workloads, rc)
}

// RunMixCtx is RunMix with cancellation: the simulation polls ctx at cycle
// window boundaries and stops cleanly when it is done. A canceled run
// returns the measurements collected so far (a partial window) together
// with an error wrapping the ctx cause; callers must treat the Result as
// incomplete whenever err != nil.
func RunMixCtx(ctx context.Context, cfg Config, workloads []trace.Workload, rc RunConfig) (Result, error) {
	if rc.MeasureInstr == 0 {
		return Result{}, fmt.Errorf("sim: zero measure window")
	}
	if rc.MaxCyclesPerInstr <= 0 {
		rc.MaxCyclesPerInstr = 400
	}
	sys, err := NewSystem(cfg, workloads, rc.Seed)
	if err != nil {
		return Result{}, err
	}
	sys.SetParallelism(rc.Parallelism)
	defer sys.Close()
	sys.SetClocking(rc.Clocking)
	sys.SetProgress(rc.OnProgress)
	if rc.Validate {
		sys.EnableValidation()
	}
	if !rc.SkipFunctional {
		hints := make([]trace.Params, len(workloads))
		for i, w := range workloads {
			hints[i] = w.Params
		}
		sys.prefillLLC(hints, rc.Seed)
		sys.functionalWarmup(rc.functionalInstr())
	}
	return sys.timedPhases(ctx, workloads, rc)
}

// functionalInstr resolves the functional-warmup budget.
func (rc RunConfig) functionalInstr() uint64 {
	if rc.FunctionalWarmupInstr == 0 {
		return 1_000_000
	}
	return rc.FunctionalWarmupInstr
}

// timedPhases runs the timed warmup and measure windows on an
// already-warmed system. On cancellation it returns the partial
// measurements alongside the wrapped ctx error.
func (s *System) timedPhases(ctx context.Context, workloads []trace.Workload, rc RunConfig) (Result, error) {
	if rc.WarmupInstr > 0 {
		budget := int64(rc.WarmupInstr)*rc.MaxCyclesPerInstr + 1_000_000
		if err := s.runPhase(ctx, rc.WarmupInstr, budget); err != nil {
			if ctx.Err() != nil {
				return s.collect(workloads), err
			}
			return Result{}, err
		}
	}
	s.resetStats()
	if rc.SampleDetailInstr > 0 && rc.SampleFastFwdInstr > 0 {
		if err := s.runMeasureSampled(ctx, rc); err != nil {
			if ctx.Err() != nil {
				return s.collect(workloads), err
			}
			return Result{}, err
		}
	} else {
		budget := int64(rc.MeasureInstr)*rc.MaxCyclesPerInstr + 1_000_000
		if err := s.runPhase(ctx, rc.MeasureInstr, budget); err != nil {
			if ctx.Err() != nil {
				return s.collect(workloads), err
			}
			return Result{}, err
		}
	}
	res := s.collect(workloads)
	// End-of-window validation runs on the success path only: a cancelled
	// run legitimately leaves requests in flight. The Result is complete
	// either way.
	return res, s.validationError()
}

// RunGenerators executes one experiment over caller-provided generators
// (e.g. trace replays). hints may be nil (no LLC pre-fill; the trace
// should carry its own warmup).
func RunGenerators(cfg Config, gens []trace.Generator, hints []trace.Params, rc RunConfig) (Result, error) {
	if rc.MeasureInstr == 0 {
		return Result{}, fmt.Errorf("sim: zero measure window")
	}
	if rc.MaxCyclesPerInstr <= 0 {
		rc.MaxCyclesPerInstr = 400
	}
	sys, err := NewSystemGens(cfg, gens, hints)
	if err != nil {
		return Result{}, err
	}
	sys.SetParallelism(rc.Parallelism)
	defer sys.Close()
	sys.SetClocking(rc.Clocking)
	sys.SetProgress(rc.OnProgress)
	if rc.Validate {
		sys.EnableValidation()
	}
	if !rc.SkipFunctional {
		if hints != nil {
			sys.prefillLLC(hints, rc.Seed)
		}
		sys.functionalWarmup(rc.functionalInstr())
	}
	res, err := sys.timedPhases(context.Background(), nil, rc)
	if err != nil {
		return Result{}, err
	}
	names := make([]string, 0, len(gens))
	for _, g := range gens {
		names = append(names, g.Name())
	}
	if len(names) > 0 {
		res.Workload = names[0]
		for _, n := range names[1:] {
			if n != res.Workload {
				res.Workload = fmt.Sprintf("trace-mix[%s,...x%d]", names[0], len(names))
				break
			}
		}
	}
	return res, nil
}

// collect snapshots measurements after the measure phase.
func (s *System) collect(workloads []trace.Workload) Result {
	s.syncClock()
	res := Result{
		Config:      s.cfg.Name,
		Workload:    mixLabel(workloads),
		PeakGBs:     s.peakGBs(),
		CALM:        s.policy.Decisions(),
		FPDiscarded: s.fpDiscarded,
	}

	var retired uint64
	for _, c := range s.cores {
		if s.sampled {
			res.PerCoreIPC = append(res.PerCoreIPC, s.sampledIPC(c))
		} else {
			res.PerCoreIPC = append(res.PerCoreIPC, c.IPC(s.now))
		}
		retired += c.Stats().Retired
	}
	res.Retired = retired
	res.IPC = stats.Mean(res.PerCoreIPC)
	if res.IPC > 0 {
		res.CPI = 1 / res.IPC
	}

	// Window: from the stats reset to now. The cores recorded their own
	// finish cycles; traffic counters ran to s.now. In sampled mode the
	// window is the union of the detailed windows — fast-forward jumps are
	// architecturally inert and must not dilute the rates.
	window := s.windowCycles()
	if s.sampled {
		window = s.detailCycles
	}
	res.Cycles = window

	o, q, sv, cx := s.breakdown.Means()
	res.OnChipNS = clock.NS(int64(o + 0.5))
	res.QueueNS = clock.NS(int64(q + 0.5))
	res.ServiceNS = clock.NS(int64(sv + 0.5))
	res.CXLNS = clock.NS(int64(cx + 0.5))
	res.TotalNS = res.OnChipNS + res.QueueNS + res.ServiceNS + res.CXLNS
	res.P50NS = clock.NS(s.hist.Percentile(50))
	res.P90NS = clock.NS(s.hist.Percentile(90))
	res.P99NS = clock.NS(s.hist.Percentile(99))

	var dc dram.Counters
	for _, b := range s.backends {
		c := b.Counters()
		dc.ACT += c.ACT
		dc.PRE += c.PRE
		dc.RD += c.RD
		dc.WR += c.WR
		dc.REF += c.REF
		dc.ReadBytes += c.ReadBytes
		dc.WriteBytes += c.WriteBytes
		dc.ActiveBankCycles += c.ActiveBankCycles
		dc.RowHits += c.RowHits
		dc.RowMisses += c.RowMisses
	}
	res.DRAM = dc
	res.ReadGBs = stats.GBs(dc.ReadBytes, window)
	res.WriteGBs = stats.GBs(dc.WriteBytes, window)
	res.Utilization = stats.Utilization(res.ReadGBs+res.WriteGBs, res.PeakGBs)

	lst := s.llc.Stats()
	// Discount the functional fast-forward stream's LLC traffic: those
	// accesses advanced cache state but were never timed.
	lst.Accesses -= s.ffAccesses
	lst.Misses -= s.ffMisses
	if retired > 0 {
		res.LLCMPKI = float64(lst.Misses) / (float64(retired) / 1000)
	}
	if lst.Accesses > 0 {
		res.LLCMissRatio = float64(lst.Misses) / float64(lst.Accesses)
	}
	return res
}

// windowCycles returns the measured window length.
func (s *System) windowCycles() int64 {
	var start int64
	if len(s.cores) > 0 {
		// All cores were reset at the same cycle.
		start = s.cores[0].MeasureStart()
	}
	return s.now - start
}

// mixLabel names a workload assignment.
func mixLabel(workloads []trace.Workload) string {
	if len(workloads) == 0 {
		return ""
	}
	first := workloads[0].Params.Name
	for _, w := range workloads[1:] {
		if w.Params.Name != first {
			return fmt.Sprintf("mix[%s,...x%d]", first, len(workloads))
		}
	}
	return first
}
