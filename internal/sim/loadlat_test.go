package sim

import (
	"testing"

	"coaxial/internal/dram"
)

// TestLoadLatencyShape checks the Fig. 2a phenomena: unloaded latency near
// DDR5's ~40 ns, monotone growth with load, p90 growing faster than the
// mean, and a steep knee at high utilization.
func TestLoadLatencyShape(t *testing.T) {
	cfg := dram.DefaultConfig()
	utils := []float64{0.05, 0.2, 0.4, 0.6, 0.8}
	pts, err := LoadLatencySweep(cfg, utils, 500, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("target=%.0f%% achieved=%.1fGB/s (%.0f%%) mean=%.0fns p90=%.0fns p99=%.0fns",
			p.TargetUtil*100, p.AchievedGBs, p.AchievedUtil*100, p.MeanNS, p.P90NS, p.P99NS)
	}
	if pts[0].MeanNS < 20 || pts[0].MeanNS > 70 {
		t.Errorf("unloaded latency %vns outside DDR5 plausibility [20,70]", pts[0].MeanNS)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanNS+2 < pts[i-1].MeanNS {
			t.Errorf("mean latency must not drop with load: %v then %v", pts[i-1].MeanNS, pts[i].MeanNS)
		}
	}
	last := pts[len(pts)-1]
	if last.MeanNS < 2*pts[0].MeanNS {
		t.Errorf("knee too shallow: 80%% load mean %.0fns < 2x unloaded %.0fns", last.MeanNS, pts[0].MeanNS)
	}
	if last.P90NS <= last.MeanNS {
		t.Errorf("p90 (%.0f) should exceed mean (%.0f) under load", last.P90NS, last.MeanNS)
	}
}
