package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"coaxial/internal/trace"
)

// relErr returns |got-ref|/|ref| (0 when both are 0).
func relErr(ref, got float64) float64 {
	if ref == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-ref) / math.Abs(ref)
}

// TestSampledAccuracyBudget is the accuracy gate for sampled simulation:
// against the full detailed run of the same budget, sampled headline
// metrics (mean IPC and mean L2-miss latency) must agree within 2%. The
// synthetic workloads are stationary, so systematic sampling's error here
// comes only from window truncation and fast-forward boundary effects.
func TestSampledAccuracyBudget(t *testing.T) {
	const tol = 0.02
	for _, cfg := range []Config{Baseline(), Coaxial4x()} {
		for _, wname := range []string{"pop2", "gcc"} {
			t.Run(fmt.Sprintf("%s/%s", cfg.Name, wname), func(t *testing.T) {
				w, err := trace.WorkloadByName(wname)
				if err != nil {
					t.Fatal(err)
				}
				rc := RunConfig{
					FunctionalWarmupInstr: 100_000,
					WarmupInstr:           10_000,
					MeasureInstr:          150_000,
					Seed:                  1,
				}
				ref, err := Run(cfg, w, rc)
				if err != nil {
					t.Fatalf("detailed: %v", err)
				}
				// 30% detail: windows of 15k separated by 35k fast-forwarded.
				rc.SampleDetailInstr = 15_000
				rc.SampleFastFwdInstr = 35_000
				got, err := Run(cfg, w, rc)
				if err != nil {
					t.Fatalf("sampled: %v", err)
				}
				if e := relErr(ref.IPC, got.IPC); e > tol {
					t.Errorf("IPC error %.3f%% exceeds %.0f%%: detailed %.4f sampled %.4f",
						100*e, 100*tol, ref.IPC, got.IPC)
				}
				if e := relErr(ref.TotalNS, got.TotalNS); e > tol {
					t.Errorf("TotalNS error %.3f%% exceeds %.0f%%: detailed %.2f sampled %.2f",
						100*e, 100*tol, ref.TotalNS, got.TotalNS)
				}
				if got.Cycles >= ref.Cycles {
					t.Errorf("sampled detailed-cycle count %d not below detailed run's %d",
						got.Cycles, ref.Cycles)
				}
			})
		}
	}
}

// TestSampledClockingEquivalence pins sampled mode to the same determinism
// contract as detailed mode: the fast-forward stream is deterministic and
// the frozen-core drain is event-schedule-independent, so sampled results
// must be bit-identical across clocking mode and tick-phase parallelism.
func TestSampledClockingEquivalence(t *testing.T) {
	w, err := trace.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Coaxial4x()
	rc := RunConfig{
		FunctionalWarmupInstr: 50_000,
		WarmupInstr:           2_000,
		MeasureInstr:          30_000,
		Seed:                  1,
		SampleDetailInstr:     5_000,
		SampleFastFwdInstr:    10_000,
	}
	rc.Clocking = EventDriven
	ref, err := Run(cfg, w, rc)
	if err != nil {
		t.Fatalf("event-driven: %v", err)
	}
	for _, mode := range []Clocking{EventDriven, CycleByCycle} {
		for _, par := range []int{1, 3} {
			if mode == EventDriven && par == 1 {
				continue // the reference itself
			}
			rc.Clocking = mode
			rc.Parallelism = par
			got, err := Run(cfg, w, rc)
			if err != nil {
				t.Fatalf("mode %d par %d: %v", mode, par, err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("mode %d par %d diverges from event-driven/sequential\nref: %+v\ngot: %+v",
					mode, par, ref, got)
			}
		}
	}
}

// TestSampledWithValidation runs sampled mode under the differential
// validation harness: freezing cores across gaps and recycling requests
// through the arena must not trip any lifecycle, oracle, or occupancy
// invariant.
func TestSampledWithValidation(t *testing.T) {
	w, err := trace.WorkloadByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{
		FunctionalWarmupInstr: 50_000,
		WarmupInstr:           2_000,
		MeasureInstr:          30_000,
		Seed:                  1,
		SampleDetailInstr:     5_000,
		SampleFastFwdInstr:    10_000,
		Validate:              true,
	}
	if _, err := Run(Coaxial4x(), w, rc); err != nil {
		t.Fatalf("sampled run under validation: %v", err)
	}
}
