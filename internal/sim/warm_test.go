package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"coaxial/internal/trace"
)

// TestWarmStateBitIdentical pins the warm-state contract: a timed run
// seeded from a CaptureWarm snapshot must be bit-identical to the cold run
// that does its own untimed warmup, and the snapshot must be reusable (two
// consecutive warm runs agree, proving the snapshot is not mutated).
func TestWarmStateBitIdentical(t *testing.T) {
	workloads := trace.Mix(2, 12)
	rc := RunConfig{
		FunctionalWarmupInstr: 60_000,
		WarmupInstr:           2_000,
		MeasureInstr:          8_000,
		Seed:                  3,
	}
	for _, cfg := range []Config{Baseline(), Coaxial4x()} {
		t.Run(cfg.Name, func(t *testing.T) {
			cold, err := RunMix(cfg, workloads, rc)
			if err != nil {
				t.Fatal(err)
			}
			ws, ok, err := CaptureWarm(cfg, workloads, rc)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("synthetic generators should be cloneable")
			}
			for i := 0; i < 2; i++ {
				warm, err := RunMixWarm(context.Background(), cfg, ws, rc)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cold, warm) {
					t.Errorf("warm run %d diverges from cold start\ncold: %+v\nwarm: %+v", i, cold, warm)
				}
			}
		})
	}
}

// TestWarmStateMismatch checks the guards against consuming a snapshot
// with an incompatible configuration.
func TestWarmStateMismatch(t *testing.T) {
	workloads := trace.Mix(0, 12)
	rc := RunConfig{FunctionalWarmupInstr: 10_000, MeasureInstr: 2_000, Seed: 1}
	ws, ok, err := CaptureWarm(Coaxial4x(), workloads, rc)
	if err != nil || !ok {
		t.Fatalf("capture: ok=%v err=%v", ok, err)
	}
	if _, err := RunMixWarm(context.Background(), Baseline(), ws, rc); err == nil {
		t.Error("expected geometry mismatch error (Baseline has a different LLC)")
	}
	rc2 := rc
	rc2.Seed = 9
	if _, err := RunMixWarm(context.Background(), Coaxial4x(), ws, rc2); err == nil {
		t.Error("expected seed mismatch error")
	}
}

// TestRunCancellation checks cooperative cancellation: a canceled context
// stops the run at a cycle-window boundary with a partial Result and an
// error wrapping the cause.
func TestRunCancellation(t *testing.T) {
	w, err := trace.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // stop at the first window boundary
	rc := RunConfig{
		FunctionalWarmupInstr: 10_000,
		WarmupInstr:           50_000,
		MeasureInstr:          50_000,
		Seed:                  1,
	}
	res, err := RunCtx(ctx, Coaxial4x(), w, rc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res.Config != "coaxial-4x" {
		t.Errorf("partial result not populated: %+v", res)
	}
}

// TestParallelTickRace drives the parallel tick phases on a loaded
// multi-core system in both clocking modes. Its real assertions are the
// race detector's: CI runs it under -race to prove the core and backend
// tick phases share no unsynchronized state.
func TestParallelTickRace(t *testing.T) {
	workloads := trace.Mix(1, 12)
	rc := RunConfig{
		FunctionalWarmupInstr: 20_000,
		WarmupInstr:           1_000,
		MeasureInstr:          4_000,
		Seed:                  2,
		Parallelism:           4,
	}
	for _, mode := range []Clocking{EventDriven, CycleByCycle} {
		rc.Clocking = mode
		if _, err := RunMix(Coaxial4x(), workloads, rc); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}
