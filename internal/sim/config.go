// Package sim assembles the full simulated systems — cores, cache
// hierarchy, NoC, CALM policy, and memory backends (direct DDR or
// CXL-attached) — and runs the warmup/measure experiment loop. It is the
// paper's ChampSim+DRAMSim3 harness equivalent.
package sim

import (
	"fmt"

	"coaxial/internal/cache"
	"coaxial/internal/calm"
	"coaxial/internal/cxl"
	"coaxial/internal/dram"
	"coaxial/internal/noc"
)

// MemKind selects the memory attachment technology.
type MemKind uint8

const (
	// DirectDDR attaches DRAM channels over on-package DDR PHYs
	// (the baseline in Fig. 3a).
	DirectDDR MemKind = iota
	// CXLAttached replaces every DDR interface with CXL channels fronting
	// type-3 devices (Fig. 3b).
	CXLAttached
)

// Config describes one simulated system (Table III).
type Config struct {
	// Name labels the configuration in results ("ddr-baseline",
	// "coaxial-4x", ...).
	Name string

	// Cores is the simulated core count (12: the paper's scaled-down
	// 144-core/12-channel system at the same 12:1 core:MC ratio).
	Cores int
	// ActiveCores bounds how many cores execute work (Fig. 11 utilization
	// study); 0 means all.
	ActiveCores int

	Mesh noc.Mesh

	// L1/L2 are per-core private cache configurations.
	L1 cache.Config
	L2 cache.Config
	// LLCSliceBytes/LLCAssoc/LLCLatency configure the shared LLC (one
	// slice per core tile).
	LLCSliceBytes int
	LLCAssoc      int
	LLCLatency    int64

	// MSHRs bounds outstanding memory-line misses per core.
	MSHRs int
	// FillLatency is the pipeline latency of filling a returning line up
	// the hierarchy to the core.
	FillLatency int64

	Kind MemKind
	// Channels is the number of memory interfaces: DDR channels for
	// DirectDDR, CXL channels for CXLAttached.
	Channels int
	// DDR configures each DDR channel (direct or on the type-3 device).
	DDR dram.Config
	// CXL configures each CXL channel (CXLAttached only); CXL.DDR is
	// overwritten with the DDR field above for consistency.
	CXL cxl.ChannelConfig

	// CALM selects the concurrent LLC/memory access mechanism.
	CALM calm.Config
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: config %q: cores must be >= 1", c.Name)
	}
	if c.Channels < 1 {
		return fmt.Errorf("sim: config %q: channels must be >= 1", c.Name)
	}
	if c.ActiveCores < 0 || c.ActiveCores > c.Cores {
		return fmt.Errorf("sim: config %q: active cores out of range", c.Name)
	}
	if c.LLCSliceBytes <= 0 || c.LLCAssoc <= 0 {
		return fmt.Errorf("sim: config %q: LLC geometry unset", c.Name)
	}
	if c.Kind == CXLAttached && c.CXL.DDRChannels < 1 {
		return fmt.Errorf("sim: config %q: CXL device needs >= 1 DDR channel", c.Name)
	}
	return nil
}

// active returns the number of executing cores.
func (c Config) active() int {
	if c.ActiveCores == 0 {
		return c.Cores
	}
	return c.ActiveCores
}

// Baseline returns the DDR-based baseline: 12 cores, 2 MB LLC/core, one
// DDR5-4800 channel (Table III, left column).
func Baseline() Config {
	return defaultSystem("ddr-baseline", DirectDDR, 1, 2<<20, calm.Config{Kind: calm.Off})
}

// Coaxial2x returns COAXIAL-2x: 2 CXL channels, full 2 MB LLC/core
// (iso-LLC, Table II).
func Coaxial2x() Config {
	return defaultSystem("coaxial-2x", CXLAttached, 2, 2<<20, calm.Default())
}

// Coaxial4x returns COAXIAL-4x, the paper's default COAXIAL: 4 CXL
// channels, LLC halved to 1 MB/core (balanced, Table II).
func Coaxial4x() Config {
	return defaultSystem("coaxial-4x", CXLAttached, 4, 1<<20, calm.Default())
}

// Coaxial5x returns COAXIAL-5x: 5 CXL channels at iso-pin (Table II; 17%
// extra die area).
func Coaxial5x() Config {
	return defaultSystem("coaxial-5x", CXLAttached, 5, 2<<20, calm.Default())
}

// CoaxialAsym returns COAXIAL-asym: 4 CXL-asym channels (20RX/12TX lanes),
// each fronting two DDR channels (§IV-D), LLC at 1 MB/core.
func CoaxialAsym() Config {
	c := defaultSystem("coaxial-asym", CXLAttached, 4, 1<<20, calm.Default())
	c.CXL.Link = cxl.AsymmetricX8()
	c.CXL.DDRChannels = 2
	return c
}

// CoaxialPooled returns a CXL-pooled rack configuration: 2 symmetric CXL
// channels, each fronting a two-DDR-channel type-3 pool device with a
// deeper ingress queue (the §VIII scalable-server direction, where several
// hosts share pooled devices and each host's share of the pool looks like
// fewer, fatter channels). LLC stays at 1 MB/core as in COAXIAL-4x.
func CoaxialPooled() Config {
	c := defaultSystem("coaxial-pooled", CXLAttached, 2, 1<<20, calm.Default())
	c.CXL.DDRChannels = 2
	c.CXL.IngressDepth = 128
	return c
}

// defaultSystem builds the shared Table III parameters.
func defaultSystem(name string, kind MemKind, channels int, llcPerCore int, cm calm.Config) Config {
	ddr := dram.DefaultConfig()
	return Config{
		Name:  name,
		Cores: 12,
		Mesh:  noc.Default12(),
		L1: cache.Config{
			SizeBytes:     32 << 10,
			Assoc:         8,
			LatencyCycles: 4,
		},
		L2: cache.Config{
			SizeBytes:     512 << 10,
			Assoc:         8,
			LatencyCycles: 8,
		},
		LLCSliceBytes: llcPerCore,
		LLCAssoc:      16,
		LLCLatency:    20,
		MSHRs:         16,
		FillLatency:   12,
		Kind:          kind,
		Channels:      channels,
		DDR:           ddr,
		CXL: cxl.ChannelConfig{
			Link:         cxl.SymmetricX8(),
			DDR:          ddr,
			DDRChannels:  1,
			IngressDepth: 64,
		},
		CALM: cm,
	}
}

// WithCALM returns a copy running a different CALM mechanism (Fig. 7).
func (c Config) WithCALM(cm calm.Config) Config {
	c.CALM = cm
	c.Name = c.Name + "+" + cm.Kind.String()
	return c
}

// WithActiveCores returns a copy with only n cores executing (Fig. 11).
func (c Config) WithActiveCores(n int) Config {
	c.ActiveCores = n
	c.Name = fmt.Sprintf("%s@%dc", c.Name, n)
	return c
}

// WithCXLPortNS returns a copy with a different CXL port latency: 12.5 ns
// per traversal is the paper's 50 ns premium, 17.5 ns the pessimistic
// 70 ns, and 2.5 ns the OMI-class 10 ns projection (Fig. 10, §VII).
func (c Config) WithCXLPortNS(ns float64) Config {
	c.CXL.Link = c.CXL.Link.WithPortNS(ns)
	c.Name = fmt.Sprintf("%s@%.1fns", c.Name, ns*4)
	return c
}
