package sim

import (
	"testing"

	"coaxial/internal/calm"
	"coaxial/internal/trace"
)

// quickRC returns fast experiment windows for integration tests.
func quickRC() RunConfig {
	return RunConfig{WarmupInstr: 8_000, MeasureInstr: 40_000, Seed: 1}
}

func mustWorkload(t *testing.T, name string) trace.Workload {
	t.Helper()
	w, err := trace.WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestConfigValidation(t *testing.T) {
	bad := Baseline()
	bad.Cores = 0
	if _, err := NewSystem(bad, nil, 1); err == nil {
		t.Error("zero cores accepted")
	}
	bad = Baseline()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero channels accepted")
	}
	bad = Baseline()
	bad.ActiveCores = 99
	if err := bad.Validate(); err == nil {
		t.Error("active cores beyond cores accepted")
	}
	bad = Baseline()
	bad.LLCSliceBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero LLC accepted")
	}
	bad = CoaxialAsym()
	bad.CXL.DDRChannels = 0
	if err := bad.Validate(); err == nil {
		t.Error("CXL device without DDR accepted")
	}
}

func TestWorkloadCountMismatch(t *testing.T) {
	if _, err := NewSystem(Baseline(), []trace.Workload{}, 1); err == nil {
		t.Error("workload/core mismatch accepted")
	}
}

func TestZeroMeasureRejected(t *testing.T) {
	if _, err := Run(Baseline(), trace.Workload{}, RunConfig{}); err == nil {
		t.Error("zero measure window accepted")
	}
}

func TestDeterminism(t *testing.T) {
	w := mustWorkload(t, "kmeans")
	rc := RunConfig{WarmupInstr: 4_000, MeasureInstr: 20_000, Seed: 42}
	a, err := Run(Coaxial4x(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Coaxial4x(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.Cycles != b.Cycles || a.DRAM != b.DRAM || a.CALM != b.CALM {
		t.Errorf("same seed diverged: IPC %v vs %v, cycles %v vs %v", a.IPC, b.IPC, a.Cycles, b.Cycles)
	}
	c, err := Run(Coaxial4x(), w, RunConfig{WarmupInstr: 4_000, MeasureInstr: 20_000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC == c.IPC && a.Cycles == c.Cycles {
		t.Error("different seeds produced identical runs")
	}
}

func TestBreakdownConsistency(t *testing.T) {
	w := mustWorkload(t, "PageRank")
	base, err := Run(Baseline(), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if base.CXLNS != 0 {
		t.Errorf("baseline reports CXL time %v", base.CXLNS)
	}
	for name, v := range map[string]float64{
		"onchip": base.OnChipNS, "queue": base.QueueNS, "dram": base.ServiceNS, "total": base.TotalNS,
	} {
		if v < 0 {
			t.Errorf("negative %s component: %v", name, v)
		}
	}
	if base.TotalNS < base.QueueNS || base.TotalNS < base.ServiceNS {
		t.Error("total below components")
	}
	// p50 <= p90 <= p99.
	if base.P50NS > base.P90NS || base.P90NS > base.P99NS {
		t.Errorf("percentile ordering: %v %v %v", base.P50NS, base.P90NS, base.P99NS)
	}
	// DRAM service should be in a DDR5-plausible band. Under load the
	// service component includes inter-command waits (FAW/bus) after the
	// first command issues, so the band is generous.
	if base.ServiceNS < 15 || base.ServiceNS > 120 {
		t.Errorf("DRAM service %v ns implausible", base.ServiceNS)
	}
}

func TestCALMHelpsCoaxial(t *testing.T) {
	// On a high-miss-ratio workload, CALM_70% must not hurt COAXIAL and
	// should reduce measured on-chip time versus serial access.
	w := mustWorkload(t, "Components")
	serial, err := Run(Coaxial4x().WithCALM(calm.Config{Kind: calm.Off}), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	calmed, err := Run(Coaxial4x(), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if calmed.OnChipNS >= serial.OnChipNS {
		t.Errorf("CALM did not cut on-chip time: %.1f vs %.1f ns", calmed.OnChipNS, serial.OnChipNS)
	}
	if calmed.IPC < serial.IPC*0.98 {
		t.Errorf("CALM hurt COAXIAL: %.3f vs %.3f", calmed.IPC, serial.IPC)
	}
	if calmed.CALM.CALMed == 0 {
		t.Error("no accesses CALMed")
	}
}

func TestCALMFalsePositivesDiscarded(t *testing.T) {
	// MIS has a partially LLC-resident set: CALM produces false positives
	// whose memory responses must be discarded (never filled).
	w := mustWorkload(t, "MIS")
	res, err := Run(Coaxial4x(), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if res.CALM.FalsePos == 0 {
		t.Skip("no false positives materialized")
	}
	if res.FPDiscarded == 0 {
		t.Error("false positives recorded but no responses discarded")
	}
}

func TestIdealCALMNoMispredictions(t *testing.T) {
	w := mustWorkload(t, "kmeans")
	res, err := Run(Coaxial4x().WithCALM(calm.Config{Kind: calm.Ideal}), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if res.CALM.FalsePos != 0 || res.CALM.FalseNeg != 0 {
		t.Errorf("ideal CALM mispredicted: %+v", res.CALM)
	}
}

func TestSingleCoreFavorsBaseline(t *testing.T) {
	// Fig. 11: at 8% utilization (1 core), latency-sensitive workloads
	// slow down under COAXIAL because there is no queuing to recover.
	w := mustWorkload(t, "omnetpp")
	rc := quickRC()
	base, err := Run(Baseline().WithActiveCores(1), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	coax, err := Run(Coaxial4x().WithActiveCores(1), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if coax.IPC >= base.IPC {
		t.Errorf("single-core COAXIAL should lose on omnetpp: %.3f vs %.3f", coax.IPC, base.IPC)
	}
}

func TestLatencyPremiumOrdering(t *testing.T) {
	// Lower CXL port latency must not reduce performance: 10ns >= 50ns >=
	// 70ns premium, measured on a bandwidth-bound workload.
	w := mustWorkload(t, "stream-triad")
	rc := quickRC()
	p10, err := Run(Coaxial4x().WithCXLPortNS(2.5), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	p50, err := Run(Coaxial4x(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	p70, err := Run(Coaxial4x().WithCXLPortNS(17.5), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if !(p10.IPC >= p50.IPC*0.99 && p50.IPC >= p70.IPC*0.99) {
		t.Errorf("premium ordering broken: 10ns %.3f, 50ns %.3f, 70ns %.3f", p10.IPC, p50.IPC, p70.IPC)
	}
	if p70.CXLNS <= p50.CXLNS {
		t.Errorf("70ns premium must raise CXL time: %.1f vs %.1f", p70.CXLNS, p50.CXLNS)
	}
}

func TestAsymBeatsSymOnReadHeavy(t *testing.T) {
	// COAXIAL-asym trades write for read bandwidth and adds a second DDR
	// channel per device; the paper reports it never loses.
	w := mustWorkload(t, "stream-triad")
	rc := quickRC()
	sym, err := Run(Coaxial4x(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	asym, err := Run(CoaxialAsym(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if asym.IPC < sym.IPC*0.98 {
		t.Errorf("asym should not lose on read-heavy streams: %.3f vs %.3f", asym.IPC, sym.IPC)
	}
}

func TestMoreChannelsMoreSpeedup(t *testing.T) {
	w := mustWorkload(t, "stream-add")
	rc := quickRC()
	c2, err := Run(Coaxial2x(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := Run(Coaxial4x(), w, rc)
	if err != nil {
		t.Fatal(err)
	}
	if c4.IPC <= c2.IPC {
		t.Errorf("4x should beat 2x on bandwidth-bound stream: %.3f vs %.3f", c4.IPC, c2.IPC)
	}
}

func TestTrafficConservation(t *testing.T) {
	// DRAM reads == LLC demand misses + CALM false positives (each miss
	// fetches exactly one line; merges collapse duplicates), within the
	// slack of requests still in flight at the measurement edges.
	w := mustWorkload(t, "PageRank")
	res, err := Run(Coaxial4x(), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(res.CALM.LLCMisses + res.CALM.FalsePos)
	got := float64(res.DRAM.RD)
	if got < expected*0.9 || got > expected*1.1 {
		t.Errorf("DRAM reads %v vs expected %v (llcMiss %d + FP %d)",
			got, expected, res.CALM.LLCMisses, res.CALM.FalsePos)
	}
}

func TestMixedWorkloadsRun(t *testing.T) {
	cfg := Baseline()
	wl := trace.Mix(0, cfg.Cores)
	res, err := RunMix(cfg, wl, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCoreIPC) != cfg.Cores {
		t.Fatalf("per-core IPCs: %d", len(res.PerCoreIPC))
	}
	for i, ipc := range res.PerCoreIPC {
		if ipc <= 0 {
			t.Errorf("core %d IPC %v", i, ipc)
		}
	}
}

func TestActiveCoresSubset(t *testing.T) {
	w := mustWorkload(t, "pop2")
	cfg := Baseline().WithActiveCores(4)
	res, err := Run(cfg, w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCoreIPC) != 4 {
		t.Errorf("active-core IPCs: %d, want 4", len(res.PerCoreIPC))
	}
}

func TestUtilizationBounded(t *testing.T) {
	w := mustWorkload(t, "stream-copy")
	res, err := Run(Baseline(), w, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0 || res.Utilization > 1.0 {
		t.Errorf("utilization %v out of (0, 1]", res.Utilization)
	}
}

func TestConfigBuilders(t *testing.T) {
	c := Baseline()
	if c.Kind != DirectDDR || c.Channels != 1 || c.CALM.Kind != calm.Off {
		t.Errorf("baseline: %+v", c)
	}
	c4 := Coaxial4x()
	if c4.Kind != CXLAttached || c4.Channels != 4 || c4.LLCSliceBytes != 1<<20 {
		t.Errorf("coaxial-4x: %+v", c4)
	}
	c5 := Coaxial5x()
	if c5.Channels != 5 || c5.LLCSliceBytes != 2<<20 {
		t.Errorf("coaxial-5x: %+v", c5)
	}
	ca := CoaxialAsym()
	if ca.CXL.DDRChannels != 2 || ca.CXL.Link.RXGoodputGBs != 32 {
		t.Errorf("coaxial-asym: %+v", ca)
	}
	named := c4.WithActiveCores(4)
	if named.ActiveCores != 4 || named.Name == c4.Name {
		t.Errorf("WithActiveCores: %+v", named)
	}
	lat := c4.WithCXLPortNS(17.5)
	if lat.CXL.Link.PortNS != 17.5 {
		t.Errorf("WithCXLPortNS: %+v", lat.CXL.Link)
	}
}

func TestPeakGBsByConfig(t *testing.T) {
	cases := map[string]struct {
		cfg  Config
		want float64
	}{
		"baseline": {Baseline(), 38.4},
		"2x":       {Coaxial2x(), 76.8},
		"4x":       {Coaxial4x(), 153.6},
		"asym":     {CoaxialAsym(), 307.2},
	}
	for name, c := range cases {
		s, err := NewSystem(c.cfg, repeat(mustWorkloadB(t), c.cfg.active()), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.peakGBs(); got != c.want {
			t.Errorf("%s peak = %v, want %v", name, got, c.want)
		}
	}
}

func mustWorkloadB(t *testing.T) trace.Workload {
	w, err := trace.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func repeat(w trace.Workload, n int) []trace.Workload {
	out := make([]trace.Workload, n)
	for i := range out {
		out[i] = w
	}
	return out
}
