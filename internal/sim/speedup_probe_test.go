package sim

import (
	"testing"

	"coaxial/internal/stats"
	"coaxial/internal/trace"
)

// TestProbeSpeedups is a development probe: per-workload COAXIAL-4x
// speedup across the whole suite. Skipped in -short.
func TestProbeSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("slow probe")
	}
	rc := RunConfig{WarmupInstr: 10_000, MeasureInstr: 60_000, Seed: 1}
	var sp []float64
	for _, w := range trace.Workloads() {
		b, err := Run(Baseline(), w, rc)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Run(Coaxial4x(), w, rc)
		if err != nil {
			t.Fatal(err)
		}
		s := c.IPC / b.IPC
		sp = append(sp, s)
		t.Logf("%-15s speedup=%.2f (base lat %4.0fns q%4.0f | coax lat %4.0fns q%4.0f cxl%3.0f) calm(fp%4.1f%% fn%4.1f%%)",
			w.Params.Name, s, b.TotalNS, b.QueueNS, c.TotalNS, c.QueueNS, c.CXLNS,
			c.CALM.FPRate()*100, c.CALM.FNRate()*100)
	}
	t.Logf("MEAN speedup = %.3f (geomean %.3f)", stats.Mean(sp), stats.Geomean(sp))
}
