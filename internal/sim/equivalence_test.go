package sim

import (
	"fmt"
	"reflect"
	"testing"

	"coaxial/internal/trace"
)

// TestClockingEquivalence is the golden guard for the main loop: every
// combination of clocking mode (event-driven vs the cycle-by-cycle
// reference) and tick-phase parallelism must be bit-identical — every
// Result field (IPC, cycle counts, latency breakdown and histogram
// percentiles, DRAM counters, CALM tallies) equal across configs covering
// direct DDR, symmetric CXL, asymmetric CXL (two DDR channels per device),
// same-bank refresh, and a partially-idle machine, over low- and high-MPKI
// workloads and multiple seeds.
func TestClockingEquivalence(t *testing.T) {
	sbr := Baseline()
	sbr.Name = "ddr-baseline-refsb"
	sbr.DDR.SameBankRefresh = true

	cases := []struct {
		cfg       Config
		workloads []string
		seeds     []uint64
	}{
		{Baseline(), []string{"pop2", "gcc"}, []uint64{1, 2}},
		{Coaxial4x(), []string{"pop2", "gcc"}, []uint64{1, 2}},
		{CoaxialAsym(), []string{"pop2", "bwaves"}, []uint64{1, 2}},
		{CoaxialPooled(), []string{"pop2", "gcc"}, []uint64{1, 2}},
		{sbr, []string{"raytrace"}, []uint64{1, 2}},
		// Mostly-idle machine: one active core, the regime where the event
		// loop skips the most and lazy per-component ticking matters.
		{CoaxialAsym().WithActiveCores(1), []string{"pop2"}, []uint64{1, 2}},
	}

	for _, tc := range cases {
		for _, wname := range tc.workloads {
			w, err := trace.WorkloadByName(wname)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range tc.seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", tc.cfg.Name, wname, seed), func(t *testing.T) {
					rc := RunConfig{
						FunctionalWarmupInstr: 50_000,
						WarmupInstr:           2_000,
						MeasureInstr:          10_000,
						Seed:                  seed,
					}
					rc.Clocking = EventDriven
					ref, err := Run(tc.cfg, w, rc)
					if err != nil {
						t.Fatalf("event-driven: %v", err)
					}
					for _, mode := range []Clocking{EventDriven, CycleByCycle} {
						for _, par := range []int{1, 3} {
							if mode == EventDriven && par == 1 {
								continue // the reference itself
							}
							rc.Clocking = mode
							rc.Parallelism = par
							got, err := Run(tc.cfg, w, rc)
							if err != nil {
								t.Fatalf("mode %d par %d: %v", mode, par, err)
							}
							if !reflect.DeepEqual(ref, got) {
								t.Errorf("mode %d par %d diverges from event-driven/sequential\nref: %+v\ngot: %+v",
									mode, par, ref, got)
							}
						}
					}
				})
			}
		}
	}
}

// TestClockingEquivalenceRackMix extends the clocking/parallelism
// equivalence guard to multi-core mixed-MPKI runs on the CXL-pooled
// configs: every core runs a different workload (the rack assignment), so
// per-core generators, CALM state, and backend queues all differ — the
// regime where a phase-ordering bug in the parallel tick loop would show.
func TestClockingEquivalenceRackMix(t *testing.T) {
	for _, cfg := range []Config{Coaxial4x(), CoaxialPooled()} {
		for _, rack := range []int{0, 1} {
			t.Run(fmt.Sprintf("%s/rack%d", cfg.Name, rack), func(t *testing.T) {
				wl := trace.RackMix(rack, cfg.Cores)
				rc := RunConfig{
					FunctionalWarmupInstr: 50_000,
					WarmupInstr:           2_000,
					MeasureInstr:          10_000,
					Seed:                  1,
					Clocking:              EventDriven,
				}
				ref, err := RunMix(cfg, wl, rc)
				if err != nil {
					t.Fatalf("event-driven: %v", err)
				}
				for _, mode := range []Clocking{EventDriven, CycleByCycle} {
					for _, par := range []int{1, 3} {
						if mode == EventDriven && par == 1 {
							continue // the reference itself
						}
						rc.Clocking = mode
						rc.Parallelism = par
						got, err := RunMix(cfg, wl, rc)
						if err != nil {
							t.Fatalf("mode %d par %d: %v", mode, par, err)
						}
						if !reflect.DeepEqual(ref, got) {
							t.Errorf("mode %d par %d diverges from event-driven/sequential\nref: %+v\ngot: %+v",
								mode, par, ref, got)
						}
					}
				}
			})
		}
	}
}

// TestClockingEquivalenceBenchSteps pins the fixed-cycle-window entry point
// (BenchSteps) too: after the same number of cycles in each mode, the
// systems must agree on retired-instruction counts and DRAM activity.
func TestClockingEquivalenceBenchSteps(t *testing.T) {
	w, err := trace.WorkloadByName("pop2")
	if err != nil {
		t.Fatal(err)
	}
	wl := make([]trace.Workload, 12)
	for i := range wl {
		wl[i] = w
	}
	build := func(m Clocking) *System {
		sys, err := NewSystem(Coaxial4x(), wl, 7)
		if err != nil {
			t.Fatal(err)
		}
		sys.SetClocking(m)
		return sys
	}
	ev, cyc := build(EventDriven), build(CycleByCycle)
	for _, n := range []int{1, 999, 30_000} {
		ev.BenchSteps(n)
		cyc.BenchSteps(n)
		if ev.now != cyc.now {
			t.Fatalf("clock diverged: event %d vs cycle %d", ev.now, cyc.now)
		}
		ev.syncClock()
		for i := range ev.cores {
			if es, cs := ev.cores[i].Stats(), cyc.cores[i].Stats(); es != cs {
				t.Fatalf("cycle %d core %d stats diverge: event %+v cycle %+v", ev.now, i, es, cs)
			}
		}
		for ch := range ev.backends {
			if ec, cc := ev.backends[ch].Counters(), cyc.backends[ch].Counters(); ec != cc {
				t.Fatalf("cycle %d backend %d counters diverge:\nevent: %+v\ncycle: %+v", ev.now, ch, ec, cc)
			}
		}
	}
}
