// Package dram implements a cycle-level DDR5 memory model: per-bank state
// machines with JEDEC-style timing constraints, an FR-FCFS scheduler with
// write-drain hysteresis, refresh, open-page row-buffer policy, and
// activity counters for the power model.
//
// The schedulable unit is the SubChannel: DDR5 splits each 64-bit channel
// into two independent 32-bit sub-channels, each with its own command bus
// and (here) one rank of 32 banks (8 bank groups x 4 banks), matching the
// paper's configuration. A Channel bundles two sub-channels and implements
// memreq.Backend for direct-attached DDR.
//
// All timing parameters are in command-clock cycles (nCK). DDR5-4800's
// command clock is 2.4 GHz, identical to the simulated CPU clock, so no
// domain crossing is needed (see internal/clock).
package dram

// Timing holds DDR device timing constraints in clock cycles (nCK).
// Field names follow JEDEC conventions.
type Timing struct {
	RL    int64 // read latency (CAS read to first data)
	WL    int64 // write latency (CAS write to first data)
	BURST int64 // data bus occupancy of one 64B transfer (BL16 on x32: 8 nCK)

	RCD  int64 // ACT to CAS delay
	RP   int64 // PRE to ACT delay
	RAS  int64 // ACT to PRE minimum
	RC   int64 // ACT to ACT same bank
	RTP  int64 // read CAS to PRE
	WR   int64 // end of write data to PRE (write recovery)
	CCDL int64 // CAS to CAS, same bank group
	CCDS int64 // CAS to CAS, different bank group
	RRDL int64 // ACT to ACT, same bank group
	RRDS int64 // ACT to ACT, different bank group
	FAW  int64 // four-activate window per rank
	WTRL int64 // end of write data to read CAS, same bank group
	WTRS int64 // end of write data to read CAS, different bank group
	RTW  int64 // extra bubble between read CAS and write CAS (turnaround)

	REFI  int64 // average refresh interval
	RFC   int64 // all-bank refresh cycle time
	RFCsb int64 // same-bank refresh cycle time (DDR5 REFsb)
}

// DDR5_4800 returns timing for a DDR5-4800 device (tCK = 0.41667 ns),
// following Micron's DDR5 core datasheet for the -4800 speed grade. Values
// in ns are converted at 2.4 GCK/s.
func DDR5_4800() Timing {
	return Timing{
		RL:    40, // CL40
		WL:    38, // CWL38
		BURST: 8,  // BL16, two beats per clock, x32 sub-channel

		RCD:  39, // 16.0 ns
		RP:   39,
		RAS:  77, // 32 ns
		RC:   116,
		RTP:  18, // 7.5 ns
		WR:   72, // 30 ns
		CCDL: 12,
		CCDS: 8,
		RRDL: 12,
		RRDS: 8,
		FAW:  32,
		WTRL: 24, // 10 ns
		WTRS: 6,  // 2.5 ns
		RTW:  4,

		REFI:  9360, // 3.9 us
		RFC:   708,  // tRFC1 = 295 ns (16 Gb DDR5 device)
		RFCsb: 312,  // tRFCsb = 130 ns
	}
}

// Config describes one DDR channel as simulated.
type Config struct {
	Timing Timing

	// Geometry of each sub-channel (one rank).
	BankGroups    int // 8
	BanksPerGroup int // 4
	RowBytes      int // row-buffer (page) size in bytes covered per bank

	SubChannels int // 2 for DDR5

	// Controller queue provisioning per sub-channel.
	ReadQueueDepth  int
	WriteQueueDepth int
	// Write-drain hysteresis thresholds (entries in the write queue).
	WriteHigh int
	WriteLow  int

	// PeakGBsPerSub is the theoretical peak bandwidth of one sub-channel
	// (19.2 GB/s for DDR5-4800 x32).
	PeakGBsPerSub float64

	// DisableBankPermutation turns off the XOR permutation of bank
	// indices by folded row bits (an ablation knob: without it, strided
	// patterns and per-core address-space bases collide on banks).
	DisableBankPermutation bool

	// SameBankRefresh uses DDR5's fine-granularity REFsb: banks refresh
	// round-robin, each blocking only itself for tRFCsb, instead of
	// all-bank REF stalling the whole rank for tRFC. Trims the refresh
	// tail latency at a small scheduling-overhead cost.
	SameBankRefresh bool
}

// DefaultConfig returns the paper's DDR5-4800 channel configuration: two
// 32-bit sub-channels, one rank each, 32 banks per rank, 8 KiB rows.
func DefaultConfig() Config {
	return Config{
		Timing:          DDR5_4800(),
		BankGroups:      8,
		BanksPerGroup:   4,
		RowBytes:        8192,
		SubChannels:     2,
		ReadQueueDepth:  48,
		WriteQueueDepth: 48,
		WriteHigh:       36,
		WriteLow:        12,
		PeakGBsPerSub:   19.2,
	}
}

// Banks returns the number of banks per sub-channel rank.
func (c Config) Banks() int { return c.BankGroups * c.BanksPerGroup }

// PeakGBs returns the whole channel's peak bandwidth.
func (c Config) PeakGBs() float64 { return c.PeakGBsPerSub * float64(c.SubChannels) }
