package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coaxial/internal/memreq"
)

// collector gathers completions.
type collector struct {
	done  []*memreq.Request
	times []int64
}

func (c *collector) Complete(r *memreq.Request, now int64) {
	c.done = append(c.done, r)
	c.times = append(c.times, now)
}

// runUntilDone ticks the sub-channel until it drains or the deadline hits.
func runUntilDone(t *testing.T, s *SubChannel, deadline int64) int64 {
	t.Helper()
	var now int64
	for !s.Idle() {
		now++
		s.Tick(now)
		if now > deadline {
			t.Fatalf("sub-channel did not drain within %d cycles", deadline)
		}
	}
	return now
}

func TestUnloadedReadLatencyClosedBank(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	r := &memreq.Request{Addr: 0x1000, Kind: memreq.Read, Issue: 0, Ret: c}
	if !s.Enqueue(r, 1) {
		t.Fatal("enqueue refused on empty channel")
	}
	runUntilDone(t, s, 10_000)
	if len(c.done) != 1 {
		t.Fatalf("expected 1 completion, got %d", len(c.done))
	}
	// Closed bank: arrival -> ACT (next cycle) -> tRCD -> CAS -> RL+BURST.
	want := int64(1) + 1 + cfg.Timing.RCD + cfg.Timing.RL + cfg.Timing.BURST
	got := c.done[0].DataDone
	if got < want-2 || got > want+4 {
		t.Errorf("unloaded read DataDone = %d, want about %d", got, want)
	}
	if q := c.done[0].QueueDelay(); q < 0 || q > 4 {
		t.Errorf("unloaded queue delay = %d, want near 0", q)
	}
	if svc := c.done[0].ServiceTime(); svc != cfg.Timing.RCD+cfg.Timing.RL+cfg.Timing.BURST {
		t.Errorf("service time = %d, want %d", svc, cfg.Timing.RCD+cfg.Timing.RL+cfg.Timing.BURST)
	}
}

func TestRowHitFasterThanRowMiss(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	// Two reads to the same row back to back: second is a row hit.
	r1 := &memreq.Request{Addr: 0x0, Kind: memreq.Read, Ret: c}
	r2 := &memreq.Request{Addr: 0x40, Kind: memreq.Read, Ret: c}
	s.Enqueue(r1, 1)
	s.Enqueue(r2, 1)
	runUntilDone(t, s, 10_000)
	if len(c.done) != 2 {
		t.Fatalf("want 2 completions, got %d", len(c.done))
	}
	if r2.ServiceTime() >= r1.ServiceTime() {
		t.Errorf("row hit service (%d) should beat row miss (%d)", r2.ServiceTime(), r1.ServiceTime())
	}
	ct := s.Counters()
	if ct.RowHits != 1 || ct.RowMisses != 1 {
		t.Errorf("row hit/miss counters = %d/%d, want 1/1", ct.RowHits, ct.RowMisses)
	}
}

func TestWriteCompletes(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	w := &memreq.Request{Addr: 0x2000, Kind: memreq.Write, Ret: c}
	s.Enqueue(w, 1)
	runUntilDone(t, s, 10_000)
	if len(c.done) != 1 {
		t.Fatalf("write not completed")
	}
	ct := s.Counters()
	if ct.WR != 1 || ct.WriteBytes != memreq.LineSize {
		t.Errorf("write counters wrong: %+v", ct)
	}
}

func TestQueueAdmissionBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadQueueDepth = 4
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	accepted := 0
	for i := 0; i < 10; i++ {
		r := &memreq.Request{Addr: uint64(i) * 64, Kind: memreq.Read, Ret: c}
		if s.Enqueue(r, 1) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted %d reads with depth 4", accepted)
	}
	// Writes have their own queue.
	if !s.Enqueue(&memreq.Request{Addr: 0x9000, Kind: memreq.Write, Ret: c}, 1) {
		t.Error("write refused although write queue empty")
	}
	runUntilDone(t, s, 100_000)
}

// traceChecker verifies JEDEC-style command spacing over a full trace.
type traceChecker struct {
	t   Timing
	cfg Config

	cmds []Command
}

func (tc *traceChecker) add(c Command) { tc.cmds = append(tc.cmds, c) }

// verify checks all pairwise timing constraints; returns the violations.
func (tc *traceChecker) verify(t *testing.T) {
	t.Helper()
	type bankState struct {
		lastACT, lastPRE int64
		lastRD, lastWR   int64
		open             bool
	}
	banks := map[int32]*bankState{}
	get := func(b int32) *bankState {
		st, ok := banks[b]
		if !ok {
			st = &bankState{lastACT: -1 << 40, lastPRE: -1 << 40, lastRD: -1 << 40, lastWR: -1 << 40}
			banks[b] = st
		}
		return st
	}
	var lastCAS int64 = -1 << 40
	var lastCASWrite bool
	var lastCASGroup int32 = -1
	var lastACTTime int64 = -1 << 40
	var lastACTGroup int32 = -1
	var actWindow []int64
	var busBusyUntil int64 = -1 << 40
	var prevCycle int64 = -1

	for _, c := range tc.cmds {
		if c.Cycle == prevCycle && c.Kind != CmdREF {
			t.Errorf("two commands in cycle %d (single command bus)", c.Cycle)
		}
		prevCycle = c.Cycle
		switch c.Kind {
		case CmdACT:
			st := get(c.Bank)
			if c.Cycle-st.lastACT < tc.t.RC {
				t.Errorf("tRC violation on bank %d: ACT@%d after ACT@%d", c.Bank, c.Cycle, st.lastACT)
			}
			if st.open {
				t.Errorf("ACT@%d to already-open bank %d", c.Cycle, c.Bank)
			}
			if c.Cycle-st.lastPRE < tc.t.RP {
				t.Errorf("tRP violation on bank %d: ACT@%d after PRE@%d", c.Bank, c.Cycle, st.lastPRE)
			}
			rrd := tc.t.RRDS
			if c.Group == lastACTGroup {
				rrd = tc.t.RRDL
			}
			if c.Cycle-lastACTTime < rrd {
				t.Errorf("tRRD violation: ACT@%d after ACT@%d (same-group=%v)", c.Cycle, lastACTTime, c.Group == lastACTGroup)
			}
			actWindow = append(actWindow, c.Cycle)
			if len(actWindow) > 4 {
				actWindow = actWindow[1:]
			}
			if len(actWindow) == 4 && c.Cycle-actWindow[0] < tc.t.FAW && actWindow[0] != c.Cycle {
				// window holds the last 4 including this: check span of 4
				if span := c.Cycle - actWindow[0]; span < tc.t.FAW {
					_ = span
					// The 5th ACT would violate; with exactly 4 in window the
					// constraint is on the next one. Recheck correctly below.
				}
			}
			st.lastACT = c.Cycle
			st.open = true
			lastACTTime = c.Cycle
			lastACTGroup = c.Group
		case CmdPRE:
			st := get(c.Bank)
			if !st.open {
				t.Errorf("PRE@%d to closed bank %d", c.Cycle, c.Bank)
			}
			if c.Cycle-st.lastACT < tc.t.RAS {
				t.Errorf("tRAS violation on bank %d: PRE@%d after ACT@%d", c.Bank, c.Cycle, st.lastACT)
			}
			if c.Cycle-st.lastRD < tc.t.RTP {
				t.Errorf("tRTP violation on bank %d: PRE@%d after RD@%d", c.Bank, c.Cycle, st.lastRD)
			}
			if st.lastWR > st.lastACT && c.Cycle-st.lastWR < tc.t.WL+tc.t.BURST+tc.t.WR {
				t.Errorf("tWR violation on bank %d: PRE@%d after WR@%d", c.Bank, c.Cycle, st.lastWR)
			}
			st.open = false
			st.lastPRE = c.Cycle
		case CmdRD, CmdWR:
			st := get(c.Bank)
			if !st.open {
				t.Errorf("%v@%d to closed bank %d", c.Kind, c.Cycle, c.Bank)
			}
			if c.Cycle-st.lastACT < tc.t.RCD {
				t.Errorf("tRCD violation on bank %d: CAS@%d after ACT@%d", c.Bank, c.Cycle, st.lastACT)
			}
			ccd := tc.t.CCDS
			if c.Group == lastCASGroup {
				ccd = tc.t.CCDL
			}
			if c.Kind == CmdRD && lastCASWrite {
				wtr := tc.t.WTRS
				if c.Group == lastCASGroup {
					wtr = tc.t.WTRL
				}
				if c.Cycle-lastCAS < tc.t.WL+tc.t.BURST+wtr {
					t.Errorf("tWTR violation: RD@%d after WR@%d", c.Cycle, lastCAS)
				}
			} else if c.Cycle-lastCAS < ccd {
				t.Errorf("tCCD violation: CAS@%d after CAS@%d", c.Cycle, lastCAS)
			}
			lat := tc.t.RL
			if c.Kind == CmdWR {
				lat = tc.t.WL
				st.lastWR = c.Cycle
			} else {
				st.lastRD = c.Cycle
			}
			dataStart := c.Cycle + lat
			if dataStart < busBusyUntil {
				t.Errorf("data bus overlap: CAS@%d data@%d, bus busy until %d", c.Cycle, dataStart, busBusyUntil)
			}
			busBusyUntil = dataStart + tc.t.BURST
			lastCAS = c.Cycle
			lastCASWrite = c.Kind == CmdWR
			lastCASGroup = c.Group
		case CmdREF:
			for b, st := range banks {
				if st.open {
					t.Errorf("REF@%d with bank %d open", c.Cycle, b)
				}
			}
		}
	}

	// FAW: in any window of tFAW cycles there are at most 4 ACTs.
	var acts []int64
	for _, c := range tc.cmds {
		if c.Kind == CmdACT {
			acts = append(acts, c.Cycle)
		}
	}
	for i := 4; i < len(acts); i++ {
		if acts[i]-acts[i-4] < tc.t.FAW {
			t.Errorf("tFAW violation: 5 ACTs within %d cycles ending @%d", acts[i]-acts[i-4], acts[i])
		}
	}
}

// TestTimingInvariantsRandomTraffic drives random mixed traffic through a
// sub-channel and verifies every JEDEC spacing constraint on the observed
// command trace.
func TestTimingInvariantsRandomTraffic(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	tc := &traceChecker{t: cfg.Timing, cfg: cfg}
	s.SetCommandTrace(tc.add)
	c := &collector{}
	rng := rand.New(rand.NewSource(42))

	var now int64
	injected := 0
	for injected < 3000 || !s.Idle() {
		now++
		if injected < 3000 && rng.Float64() < 0.2 {
			kind := memreq.Read
			if rng.Float64() < 0.33 {
				kind = memreq.Write
			}
			addr := uint64(rng.Int63n(1<<30)) &^ 63
			if rng.Float64() < 0.3 {
				// Cluster some addresses to exercise row hits.
				addr = uint64(rng.Int63n(64)) * 64
			}
			r := &memreq.Request{Addr: addr, Kind: kind, Ret: c}
			if s.Enqueue(r, now) {
				injected++
			}
		}
		s.Tick(now)
		if now > 10_000_000 {
			t.Fatal("did not drain")
		}
	}
	if len(c.done) != injected {
		t.Fatalf("completed %d of %d", len(c.done), injected)
	}
	tc.verify(t)
	t.Logf("verified %d commands for %d requests", len(tc.cmds), injected)
}

// TestRefreshCadence checks that refreshes happen about every tREFI.
func TestRefreshCadence(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	var now int64
	// Light load over 10 refresh intervals.
	for now < cfg.Timing.REFI*10 {
		now++
		if now%5000 == 0 {
			s.Enqueue(&memreq.Request{Addr: uint64(now) * 64, Kind: memreq.Read, Ret: c}, now)
		}
		s.Tick(now)
	}
	ct := s.Counters()
	if ct.REF < 8 || ct.REF > 11 {
		t.Errorf("expected ~10 refreshes over 10 tREFI, got %d", ct.REF)
	}
}

// TestStarvationBound verifies no request waits unboundedly even under a
// row-hit monopoly from an antagonist stream.
func TestStarvationBound(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}

	// Victim: one read to row 1 of bank of addr 0.
	victim := &memreq.Request{Addr: uint64(cfg.RowBytes) * uint64(cfg.Banks()), Kind: memreq.Read, Ret: c}
	s.Enqueue(victim, 1)

	// Antagonists: endless row hits to row 0 (same bank as the victim's
	// conflicting row would need).
	var now int64
	next := uint64(0)
	for now < 60_000 {
		now++
		if now%4 == 0 {
			r := &memreq.Request{Addr: next % uint64(cfg.RowBytes), Kind: memreq.Read, Ret: c}
			next += 64
			s.Enqueue(r, now)
		}
		s.Tick(now)
		if victim.DataDone > 0 {
			break
		}
	}
	if victim.DataDone == 0 {
		t.Fatal("victim starved beyond 60k cycles")
	}
	if victim.QueueDelay() > 20_000 {
		t.Errorf("victim queue delay %d exceeds starvation bound", victim.QueueDelay())
	}
}

// TestDecodeNoAliasing: distinct line addresses never map to the same
// (row, bank) with the same column (property-based).
func TestDecodeNoAliasing(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 4)
	f := func(a, b uint32) bool {
		la := uint64(a) * 64 * 4 // stay within the divisor's strided space
		lb := uint64(b) * 64 * 4
		if la == lb {
			return true
		}
		rowA, bnkA, _ := s.decode(la)
		rowB, bnkB, _ := s.decode(lb)
		colA := (la / 64 / 4) % uint64(cfg.RowBytes/64)
		colB := (lb / 64 / 4) % uint64(cfg.RowBytes/64)
		// Same (row, bank, col) for distinct lines would alias.
		return !(rowA == rowB && bnkA == bnkB && colA == colB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestDecodeBankSpread: sequential rows sweep many distinct banks
// (the permutation must spread streams).
func TestDecodeBankSpread(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	seen := map[int32]bool{}
	for i := 0; i < cfg.Banks()*2; i++ {
		addr := uint64(i) * uint64(cfg.RowBytes) // one address per row-sized block
		_, bnk, _ := s.decode(addr)
		seen[bnk] = true
	}
	if len(seen) < cfg.Banks()/2 {
		t.Errorf("sequential rows hit only %d/%d banks", len(seen), cfg.Banks())
	}
}

// TestDecodeCoreBasesSpread: the large per-core address-space bases used by
// the simulator must not all land on the same bank.
func TestDecodeCoreBasesSpread(t *testing.T) {
	s := NewSubChannel(DefaultConfig(), 2)
	seen := map[int32]bool{}
	for core := 0; core < 12; core++ {
		base := (uint64(core) + 1) << 40
		_, bnk, _ := s.decode(base)
		seen[bnk] = true
	}
	if len(seen) < 4 {
		t.Errorf("12 core bases map to only %d banks", len(seen))
	}
}

// TestWriteDrainHysteresis: a write burst beyond the high watermark drains
// even under continuous read pressure.
func TestWriteDrainHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	var now int64
	writes := 0
	// Fill the write queue to the high watermark.
	for i := 0; i < cfg.WriteHigh; i++ {
		if s.Enqueue(&memreq.Request{Addr: uint64(i) * 64 * 1024, Kind: memreq.Write, Ret: c}, 1) {
			writes++
		}
	}
	// Sustained reads.
	reads := 0
	for now < 100_000 {
		now++
		if reads < 200 && now%20 == 0 {
			if s.Enqueue(&memreq.Request{Addr: uint64(reads)*64 + 1<<26, Kind: memreq.Read, Ret: c}, now) {
				reads++
			}
		}
		s.Tick(now)
		if s.Idle() && reads >= 200 {
			break
		}
	}
	ct := s.Counters()
	if int(ct.WR) != writes {
		t.Errorf("only %d of %d writes drained", ct.WR, writes)
	}
	if int(ct.RD) != reads {
		t.Errorf("only %d of %d reads served", ct.RD, reads)
	}
}

// TestChannelInterleavesSubChannels: requests spread across both
// sub-channels of a channel.
func TestChannelInterleavesSubChannels(t *testing.T) {
	cfg := DefaultConfig()
	ch := NewChannel(cfg, cfg.SubChannels)
	c := &collector{}
	var now int64
	n := 0
	for n < 400 || !ch.Idle() {
		now++
		if n < 400 {
			if ch.Enqueue(&memreq.Request{Addr: uint64(n) * 64, Kind: memreq.Read, Ret: c}, now) {
				n++
			}
		}
		ch.Tick(now)
		if now > 1_000_000 {
			t.Fatal("drain timeout")
		}
	}
	for i, sub := range ch.SubChannels() {
		ct := sub.Counters()
		if ct.RD < 100 {
			t.Errorf("sub-channel %d served only %d reads of 400", i, ct.RD)
		}
	}
	if got := ch.Counters().RD; got != 400 {
		t.Errorf("channel total reads %d, want 400", got)
	}
}

// TestCountersReset: ResetCounters zeroes activity.
func TestCountersReset(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	s.Enqueue(&memreq.Request{Addr: 0, Kind: memreq.Read, Ret: c}, 1)
	runUntilDone(t, s, 10_000)
	s.ResetCounters()
	ct := s.Counters()
	if ct.RD != 0 || ct.ACT != 0 || ct.ReadBytes != 0 {
		t.Errorf("counters not reset: %+v", ct)
	}
}

// TestPeakBandwidthAchievable: multi-stream row-hit traffic should
// approach the theoretical peak. (A single stream is tCCD_L-bound at 8/12
// of peak on DDR5 — bank-group interleaving is required for full rate,
// which is why STREAM uses several arrays.)
func TestPeakBandwidthAchievable(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	var now int64
	// Four streams starting in different rows (hence banks/groups).
	streams := []uint64{0, 1 << 20, 2 << 20, 3 << 20}
	const target = 4000
	injected := 0
	si := 0
	for injected < target || !s.Idle() {
		now++
		for injected < target {
			if !s.Enqueue(&memreq.Request{Addr: streams[si], Kind: memreq.Read, Ret: c}, now) {
				break
			}
			streams[si] += 64
			si = (si + 1) % len(streams)
			injected++
		}
		s.Tick(now)
		if now > 10_000_000 {
			t.Fatal("drain timeout")
		}
	}
	bytes := s.Counters().ReadBytes
	gbs := float64(bytes) / (float64(now) / 2.4e9) / 1e9
	if gbs < cfg.PeakGBsPerSub*0.75 {
		t.Errorf("streaming read throughput %.1f GB/s below 75%% of %.1f peak", gbs, cfg.PeakGBsPerSub)
	}
	t.Logf("streaming read throughput: %.1f GB/s of %.1f peak", gbs, cfg.PeakGBsPerSub)
}

// TestSingleStreamCCDLBound documents the single-stream ceiling: one
// sequential stream stays within a bank group and is tCCD_L-limited to
// BURST/CCD_L of peak.
func TestSingleStreamCCDLBound(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	var now int64
	next := uint64(0)
	const target = 2000
	injected := 0
	for injected < target || !s.Idle() {
		now++
		for injected < target {
			if !s.Enqueue(&memreq.Request{Addr: next, Kind: memreq.Read, Ret: c}, now) {
				break
			}
			next += 64
			injected++
		}
		s.Tick(now)
		if now > 10_000_000 {
			t.Fatal("drain timeout")
		}
	}
	gbs := float64(s.Counters().ReadBytes) / (float64(now) / 2.4e9) / 1e9
	ceiling := cfg.PeakGBsPerSub * float64(cfg.Timing.BURST) / float64(cfg.Timing.CCDL)
	if gbs > ceiling*1.05 {
		t.Errorf("single stream %.1f GB/s exceeds tCCD_L ceiling %.1f", gbs, ceiling)
	}
	if gbs < ceiling*0.85 {
		t.Errorf("single stream %.1f GB/s far below tCCD_L ceiling %.1f", gbs, ceiling)
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Banks() != 32 {
		t.Errorf("banks = %d, want 32", cfg.Banks())
	}
	if cfg.PeakGBs() != 38.4 {
		t.Errorf("channel peak = %v, want 38.4", cfg.PeakGBs())
	}
}

// TestSameBankRefreshCadence: REFsb mode refreshes each bank about once
// per tREFI (32 banks -> 320 REFsb commands over 10 intervals).
func TestSameBankRefreshCadence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SameBankRefresh = true
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	var now int64
	for now < cfg.Timing.REFI*10 {
		now++
		if now%5000 == 0 {
			s.Enqueue(&memreq.Request{Addr: uint64(now) * 64, Kind: memreq.Read, Ret: c}, now)
		}
		s.Tick(now)
	}
	ref := s.Counters().REF
	want := uint64(10 * cfg.Banks())
	if ref < want*9/10 || ref > want*11/10 {
		t.Errorf("REFsb count %d, want ~%d", ref, want)
	}
}

// TestSameBankRefreshSlotSemantics pins the REFsb command-slot rules that
// stepRefreshSameBank implements: (1) while a due REFsb waits for its open
// victim bank's PRE window (now < preAllowed), the command slot is NOT
// consumed — other banks keep issuing through normal FR-FCFS scheduling;
// (2) once the window opens, the refresh path precharges the victim and
// issues REFsb the next cycle; (3) the REFsb blocks only its own bank for
// tRFCsb while other banks proceed immediately.
func TestSameBankRefreshSlotSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SameBankRefresh = true
	cfg.DisableBankPermutation = true // direct (bank, row) address control
	s := NewSubChannel(cfg, 1)

	var cmds []Command
	s.SetCommandTrace(func(c Command) { cmds = append(cmds, c) })

	linesPerRow := uint64(cfg.RowBytes / memreq.LineSize)
	addrOf := func(bank, row uint64) uint64 {
		return (row*uint64(cfg.Banks()) + bank) * linesPerRow * memreq.LineSize
	}
	c := &collector{}
	// sbDue starts at 0: bank 0's REFsb fires at cycle 1, bank 1's comes
	// due at tREFI/banks = 292. Read A opens bank 1 at 260, so its tRAS
	// window (ACT+77 = 337) holds bank 1 open past 292 — the REFsb must
	// wait. Read B (bank 2, arriving 295) must issue inside that wait.
	// Reads C (bank 1) and D (bank 3) arrive after the REFsb fires: C must
	// stall out the tRFCsb block, D must proceed immediately.
	s.Enqueue(&memreq.Request{Addr: addrOf(1, 3), Kind: memreq.Read, Ret: c}, 260)
	s.Enqueue(&memreq.Request{Addr: addrOf(2, 5), Kind: memreq.Read, Ret: c}, 295)
	s.Enqueue(&memreq.Request{Addr: addrOf(1, 9), Kind: memreq.Read, Ret: c}, 340)
	s.Enqueue(&memreq.Request{Addr: addrOf(3, 7), Kind: memreq.Read, Ret: c}, 345)
	for now := int64(1); now <= 2000; now++ {
		s.Tick(now)
	}
	if len(c.done) != 4 {
		t.Fatalf("completed %d/4 reads", len(c.done))
	}

	sbDue1 := cfg.Timing.REFI / int64(cfg.Banks()) // bank 1's REFsb due cycle
	find := func(kind CommandKind, bank int32, from int64) *Command {
		for i := range cmds {
			if cmds[i].Kind == kind && cmds[i].Bank == bank && cmds[i].Cycle >= from {
				return &cmds[i]
			}
		}
		return nil
	}

	ref1 := find(CmdREF, 1, 0)
	if ref1 == nil {
		t.Fatal("bank 1 never refreshed")
	}
	// (2) The refresh could only fire once bank 1's tRAS window opened
	// (ACT at 260 + tRAS), preceded by the quiescing PRE one cycle before.
	if actA := find(CmdACT, 1, 0); actA == nil || ref1.Cycle < actA.Cycle+cfg.Timing.RAS+1 {
		t.Errorf("REFsb at %d inside the victim's tRAS window", ref1.Cycle)
	}
	if pre := find(CmdPRE, 1, sbDue1); pre == nil || pre.Cycle >= ref1.Cycle {
		t.Errorf("no quiescing PRE on bank 1 between due cycle %d and REFsb %d", sbDue1, ref1.Cycle)
	}
	// (1) The key slot rule: bank 2's ACT issued while the due REFsb was
	// still waiting on bank 1's PRE window.
	actB := find(CmdACT, 2, 0)
	if actB == nil {
		t.Fatal("bank 2 never activated")
	}
	if actB.Cycle < sbDue1 || actB.Cycle >= ref1.Cycle {
		t.Errorf("bank 2 ACT at %d, want inside the REFsb wait window [%d, %d): a pending REFsb must not consume the slot",
			actB.Cycle, sbDue1, ref1.Cycle)
	}
	// (3) Only the victim bank blocks for tRFCsb.
	actC := find(CmdACT, 1, ref1.Cycle)
	if actC == nil {
		t.Fatal("bank 1 never reactivated after REFsb")
	}
	if actC.Cycle < ref1.Cycle+cfg.Timing.RFCsb {
		t.Errorf("bank 1 ACT at %d violates tRFCsb block until %d", actC.Cycle, ref1.Cycle+cfg.Timing.RFCsb)
	}
	actD := find(CmdACT, 3, 0)
	if actD == nil {
		t.Fatal("bank 3 never activated")
	}
	if actD.Cycle >= ref1.Cycle+cfg.Timing.RFCsb/2 {
		t.Errorf("bank 3 ACT at %d delayed by bank 1's REFsb (issued %d): REFsb must block only its bank",
			actD.Cycle, ref1.Cycle)
	}
}

// TestSameBankRefreshTrimsTail: under random load, per-bank refresh should
// cut the p99 latency versus all-bank refresh (no rank-wide tRFC stall).
func TestSameBankRefreshTrimsTail(t *testing.T) {
	measure := func(sb bool) (mean, p99 float64) {
		cfg := DefaultConfig()
		cfg.SameBankRefresh = sb
		// Reuse the load-latency machinery shape: random reads at ~30%.
		s := NewSubChannel(cfg, 1)
		c := &collector{}
		rng := uint64(99)
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		var now int64
		injected := 0
		const n = 6000
		for injected < n || !s.Idle() {
			now++
			if injected < n && next()%1000 < 37 { // ~30% of 19.2 GB/s
				r := &memreq.Request{Addr: (next() % (1 << 28)) &^ 63, Kind: memreq.Read, Issue: now, Ret: c}
				if s.Enqueue(r, now) {
					injected++
				}
			}
			s.Tick(now)
			if now > 50_000_000 {
				t.Fatal("drain timeout")
			}
		}
		var lats []float64
		for _, r := range c.done {
			lats = append(lats, float64(r.DataDone-r.Issue))
		}
		sortFloats(lats)
		return meanOf(lats), lats[len(lats)*99/100]
	}
	meanAB, p99AB := measure(false)
	meanSB, p99SB := measure(true)
	t.Logf("all-bank: mean %.0f cy p99 %.0f cy | same-bank: mean %.0f cy p99 %.0f cy",
		meanAB, p99AB, meanSB, p99SB)
	if p99SB >= p99AB {
		t.Errorf("REFsb should trim p99: %.0f vs %.0f cycles", p99SB, p99AB)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func meanOf(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	if len(v) == 0 {
		return 0
	}
	return s / float64(len(v))
}

func TestQueueOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSubChannel(cfg, 1)
	c := &collector{}
	r0, w0 := s.QueueOccupancy()
	if r0 != 0 || w0 != 0 {
		t.Errorf("fresh occupancy %d/%d", r0, w0)
	}
	s.Enqueue(&memreq.Request{Addr: 0, Kind: memreq.Read, Ret: c}, 100)
	s.Enqueue(&memreq.Request{Addr: 64, Kind: memreq.Write, Ret: c}, 100)
	// Pending arrivals count toward occupancy before they land.
	r1, w1 := s.QueueOccupancy()
	if r1 != 1 || w1 != 1 {
		t.Errorf("pending occupancy %d/%d", r1, w1)
	}
	runUntilDone(t, s, 100_000)
	r2, w2 := s.QueueOccupancy()
	if r2 != 0 || w2 != 0 {
		t.Errorf("drained occupancy %d/%d", r2, w2)
	}
}

func TestIdleTracksLifecycle(t *testing.T) {
	s := NewSubChannel(DefaultConfig(), 1)
	if !s.Idle() {
		t.Error("fresh sub-channel should be idle")
	}
	c := &collector{}
	s.Enqueue(&memreq.Request{Addr: 0, Kind: memreq.Read, Ret: c}, 1)
	if s.Idle() {
		t.Error("sub-channel with pending work reported idle")
	}
	runUntilDone(t, s, 100_000)
	if !s.Idle() {
		t.Error("drained sub-channel not idle")
	}
}

// TestNextEventMatchesCycleByCycle drives two identical sub-channels with
// the same traffic: a reference ticked every cycle and an event-driven twin
// ticked only at the cycles NextEvent claims (plus enqueue wakes, mirroring
// dram.Channel's lazy path). The command streams, completion times, and
// counters must match exactly: NextEvent may be conservative (extra no-op
// ticks) but must never skip a cycle where the reference acts. A mid-run
// injection gap exercises the long-jump candidates (refresh due, idle
// precharge, distant timing windows) rather than only loaded now+1 steps.
func TestNextEventMatchesCycleByCycle(t *testing.T) {
	for _, tc := range []struct {
		name     string
		sameBank bool
		seed     int64
		inject   float64
		n        int
	}{
		{"allbank-sparse", false, 1, 0.01, 400},
		{"allbank-bursty", false, 2, 0.25, 1500},
		{"samebank-sparse", true, 3, 0.01, 400},
		{"samebank-bursty", true, 4, 0.25, 1500},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.SameBankRefresh = tc.sameBank
			ref := NewSubChannel(cfg, 1)
			evt := NewSubChannel(cfg, 1)
			var refCmds, evtCmds []Command
			ref.SetCommandTrace(func(c Command) { refCmds = append(refCmds, c) })
			evt.SetCommandTrace(func(c Command) { evtCmds = append(evtCmds, c) })
			refC := &collector{}
			evtC := &collector{}
			rng := rand.New(rand.NewSource(tc.seed))

			var now, gapUntil int64
			nextDue := int64(1)
			var evtTicks int64
			injected := 0
			for injected < tc.n || !ref.Idle() || !evt.Idle() {
				now++
				if injected == tc.n/2 && gapUntil == 0 {
					gapUntil = now + 30_000
				}
				if injected < tc.n && now >= gapUntil && rng.Float64() < tc.inject {
					kind := memreq.Read
					if rng.Float64() < 0.33 {
						kind = memreq.Write
					}
					addr := uint64(rng.Int63n(1<<30)) &^ 63
					if rng.Float64() < 0.3 {
						addr = uint64(rng.Int63n(64)) * 64
					}
					rr := &memreq.Request{Addr: addr, Kind: kind, Ret: refC}
					re := &memreq.Request{Addr: addr, Kind: kind, Ret: evtC}
					okRef := ref.Enqueue(rr, now)
					okEvt := evt.Enqueue(re, now)
					if okRef != okEvt {
						t.Fatalf("cycle %d: admission diverged (ref %v, evt %v)", now, okRef, okEvt)
					}
					if okRef {
						injected++
						if now < nextDue {
							nextDue = now
						}
					}
				}
				ref.Tick(now)
				if now >= nextDue {
					evt.Tick(now)
					evtTicks++
					nextDue = evt.NextEvent(now)
				}
				if now > 10_000_000 {
					t.Fatal("did not drain")
				}
			}

			// Bring both twins' background accounting to a common cycle
			// before comparing counters.
			ref.Sync(now + 1)
			evt.Sync(now + 1)

			if len(refC.done) != tc.n || len(evtC.done) != tc.n {
				t.Fatalf("completions: ref %d, evt %d, want %d", len(refC.done), len(evtC.done), tc.n)
			}
			for i := range refC.done {
				if refC.times[i] != evtC.times[i] ||
					refC.done[i].Addr != evtC.done[i].Addr ||
					refC.done[i].DataDone != evtC.done[i].DataDone {
					t.Fatalf("completion %d diverged: ref {addr %#x t %d} evt {addr %#x t %d}",
						i, refC.done[i].Addr, refC.times[i], evtC.done[i].Addr, evtC.times[i])
				}
			}
			if len(refCmds) != len(evtCmds) {
				t.Fatalf("command counts diverged: ref %d, evt %d", len(refCmds), len(evtCmds))
			}
			for i := range refCmds {
				if refCmds[i] != evtCmds[i] {
					t.Fatalf("command %d diverged: ref %+v, evt %+v", i, refCmds[i], evtCmds[i])
				}
			}
			if ref.Counters() != evt.Counters() {
				t.Errorf("counters diverged:\nref %+v\nevt %+v", ref.Counters(), evt.Counters())
			}
			if evtTicks >= now {
				t.Errorf("event twin never skipped a cycle (%d ticks over %d cycles)", evtTicks, now)
			}
			t.Logf("%d cycles, %d event ticks (%.1f%%), %d commands",
				now, evtTicks, 100*float64(evtTicks)/float64(now), len(refCmds))
		})
	}
}
