package dram

import (
	"math"

	"coaxial/internal/memreq"
)

// Channel bundles a DDR channel's sub-channels and implements
// memreq.Backend for direct-attached (baseline) DDR memory. Requests are
// interleaved across sub-channels by a folded line hash.
type Channel struct {
	cfg  Config
	subs []*SubChannel

	// lazy enables per-sub-channel event skipping: Tick consults a cached
	// next-event cycle per sub-channel and skips those that are provably
	// inert. Off by default so the cycle-by-cycle reference loop stays a
	// naive tick-everything loop; the event-driven loop turns it on.
	lazy bool
	// subNext caches each sub-channel's NextEvent, maintained by Tick and
	// clamped down by Enqueue wakes. Valid only while lazy.
	subNext []int64
}

// NewChannel builds a channel. systemSubChannels is the total number of
// sub-channels across all channels in the system, used to densify each
// sub-channel's decoded address space.
func NewChannel(cfg Config, systemSubChannels int) *Channel {
	if systemSubChannels < cfg.SubChannels {
		systemSubChannels = cfg.SubChannels
	}
	c := &Channel{cfg: cfg}
	for i := 0; i < cfg.SubChannels; i++ {
		c.subs = append(c.subs, NewSubChannel(cfg, systemSubChannels))
	}
	return c
}

// subOf selects the sub-channel index for an address.
func (c *Channel) subOf(addr uint64) int {
	if len(c.subs) == 1 {
		return 0
	}
	line := addr >> memreq.LineShift
	h := line ^ (line >> 7) ^ (line >> 13)
	return int(h % uint64(len(c.subs)))
}

// SetLazy switches per-sub-channel event skipping on or off. Turning it on
// marks every sub-channel due so the next Tick seeds the cache.
func (c *Channel) SetLazy(on bool) {
	c.lazy = on
	c.subNext = nil
	if on {
		c.subNext = make([]int64, len(c.subs))
		for i := range c.subNext {
			c.subNext[i] = math.MinInt64
		}
	}
}

// Enqueue implements memreq.Backend.
func (c *Channel) Enqueue(r *memreq.Request, at int64) bool {
	i := c.subOf(r.Addr)
	if !c.subs[i].Enqueue(r, at) {
		return false
	}
	if c.lazy && at < c.subNext[i] {
		// Wake the sub-channel for the arrival. If its tick for cycle `at`
		// already ran, its own clock guard defers processing to the next
		// Tick — the same cycle the naive loop would process it.
		c.subNext[i] = at
	}
	return true
}

// Tick implements memreq.Backend. In lazy mode only sub-channels whose
// cached next event has come due are ticked; skipped sub-channels are
// provably inert at this cycle (NextEvent's contract), so behaviour is
// bit-identical to ticking everything.
func (c *Channel) Tick(now int64) {
	if !c.lazy {
		for _, s := range c.subs {
			s.Tick(now)
		}
		return
	}
	for i, s := range c.subs {
		if c.subNext[i] <= now {
			s.Tick(now)
			c.subNext[i] = s.NextEvent(now)
		}
	}
}

// NextEvent implements memreq.Backend: the channel's next event is the
// earliest next event across its sub-channels (served from the lazy cache
// when enabled).
func (c *Channel) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	if c.lazy {
		for _, t := range c.subNext {
			if t < next {
				next = t
			}
		}
		return next
	}
	for _, s := range c.subs {
		if t := s.NextEvent(now); t < next {
			next = t
		}
	}
	return next
}

// Sync implements memreq.Backend: realize lagging background accounting in
// every sub-channel without simulating events.
func (c *Channel) Sync(now int64) {
	for _, s := range c.subs {
		s.Sync(now)
	}
}

// PeakGBs implements memreq.Backend.
func (c *Channel) PeakGBs() float64 { return c.cfg.PeakGBs() }

// Counters sums all sub-channel activity counters.
func (c *Channel) Counters() Counters {
	var total Counters
	for _, s := range c.subs {
		total.Accumulate(s.Counters())
	}
	return total
}

// ResetCounters zeroes all sub-channel counters.
func (c *Channel) ResetCounters() {
	for _, s := range c.subs {
		s.ResetCounters()
	}
}

// Idle reports whether every sub-channel has drained.
func (c *Channel) Idle() bool {
	for _, s := range c.subs {
		if !s.Idle() {
			return false
		}
	}
	return true
}

// SubChannels exposes the underlying sub-channels (for CXL type-3 devices
// and tests).
func (c *Channel) SubChannels() []*SubChannel { return c.subs }

// SetCollectRetired enables retired-request buffering on every sub-channel
// (see SubChannel.SetCollectRetired).
func (c *Channel) SetCollectRetired(on bool) {
	for _, s := range c.subs {
		s.SetCollectRetired(on)
	}
}

// DrainRetired drains every sub-channel's retired-request buffer into fn.
// Call only from the sequential phases of the tick loop.
func (c *Channel) DrainRetired(fn func(*memreq.Request)) {
	for _, s := range c.subs {
		s.DrainRetired(fn)
	}
}

// ForEachPending visits every request any sub-channel currently owns (for
// validation walks).
func (c *Channel) ForEachPending(fn func(*memreq.Request)) {
	for _, s := range c.subs {
		s.ForEachPending(fn)
	}
}
