package dram

import (
	"coaxial/internal/memreq"
)

// Channel bundles a DDR channel's sub-channels and implements
// memreq.Backend for direct-attached (baseline) DDR memory. Requests are
// interleaved across sub-channels by a folded line hash.
type Channel struct {
	cfg  Config
	subs []*SubChannel
}

// NewChannel builds a channel. systemSubChannels is the total number of
// sub-channels across all channels in the system, used to densify each
// sub-channel's decoded address space.
func NewChannel(cfg Config, systemSubChannels int) *Channel {
	if systemSubChannels < cfg.SubChannels {
		systemSubChannels = cfg.SubChannels
	}
	c := &Channel{cfg: cfg}
	for i := 0; i < cfg.SubChannels; i++ {
		c.subs = append(c.subs, NewSubChannel(cfg, systemSubChannels))
	}
	return c
}

// subOf selects the sub-channel for an address.
func (c *Channel) subOf(addr uint64) *SubChannel {
	if len(c.subs) == 1 {
		return c.subs[0]
	}
	line := addr >> memreq.LineShift
	h := line ^ (line >> 7) ^ (line >> 13)
	return c.subs[h%uint64(len(c.subs))]
}

// Enqueue implements memreq.Backend.
func (c *Channel) Enqueue(r *memreq.Request, at int64) bool {
	return c.subOf(r.Addr).Enqueue(r, at)
}

// Tick implements memreq.Backend.
func (c *Channel) Tick(now int64) {
	for _, s := range c.subs {
		s.Tick(now)
	}
}

// PeakGBs implements memreq.Backend.
func (c *Channel) PeakGBs() float64 { return c.cfg.PeakGBs() }

// Counters sums all sub-channel activity counters.
func (c *Channel) Counters() Counters {
	var total Counters
	for _, s := range c.subs {
		ct := s.Counters()
		total.ACT += ct.ACT
		total.PRE += ct.PRE
		total.RD += ct.RD
		total.WR += ct.WR
		total.REF += ct.REF
		total.ReadBytes += ct.ReadBytes
		total.WriteBytes += ct.WriteBytes
		total.ActiveBankCycles += ct.ActiveBankCycles
		total.RowHits += ct.RowHits
		total.RowMisses += ct.RowMisses
	}
	return total
}

// ResetCounters zeroes all sub-channel counters.
func (c *Channel) ResetCounters() {
	for _, s := range c.subs {
		s.ResetCounters()
	}
}

// Idle reports whether every sub-channel has drained.
func (c *Channel) Idle() bool {
	for _, s := range c.subs {
		if !s.Idle() {
			return false
		}
	}
	return true
}

// SubChannels exposes the underlying sub-channels (for CXL type-3 devices
// and tests).
func (c *Channel) SubChannels() []*SubChannel { return c.subs }
