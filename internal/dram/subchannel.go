package dram

import (
	"math"

	"coaxial/internal/memreq"
)

// bank is the per-bank state machine: open row and the earliest cycles at
// which each command class may next issue to this bank.
type bank struct {
	open       bool
	row        uint64
	actAllowed int64 // next ACT (covers tRP after PRE and tRC after ACT)
	preAllowed int64 // next PRE (covers tRAS, tRTP, write recovery)
	casAllowed int64 // next CAS (covers tRCD after ACT)
	lastUse    int64 // last ACT/CAS cycle, for idle precharge
}

// entry is a queued request with its decoded bank/row coordinates.
type entry struct {
	req  *memreq.Request
	row  uint64
	bnk  int32
	grp  int32
	seen bool // first command issued (StartSvc recorded)
}

// Counters accumulates DRAM activity for bandwidth and power accounting.
type Counters struct {
	ACT, PRE, RD, WR, REF uint64
	ReadBytes             uint64
	WriteBytes            uint64
	// ActiveBankCycles integrates (open banks x cycles) for background
	// power; PrechargeCycles is derived as banks*window - active.
	ActiveBankCycles uint64
	// RowHits / RowMisses classify column accesses for locality stats.
	RowHits, RowMisses uint64
}

// SubChannel models one independent 32-bit DDR5 sub-channel: one rank of
// banks, its command/data buses, controller queues, and FR-FCFS scheduler.
type SubChannel struct {
	cfg Config
	t   Timing

	banks []bank

	readQ  []entry
	writeQ []entry

	arrivals    memreq.TimedHeap
	completions memreq.TimedHeap

	// Rank-level constraints.
	actTimes     [4]int64 // FAW ring of the last four ACT issue cycles
	actIdx       int
	lastActTime  int64
	lastActGroup int32
	lastCASTime  int64
	lastCASGroup int32
	lastCASWrite bool
	busFree      int64 // data bus next-free cycle

	draining   bool
	refreshing bool
	refreshEnd int64
	refreshDue int64
	// Same-bank refresh state: next bank index and its due cycle.
	sbNext int32
	sbDue  int64

	// Decode parameters.
	divisor     uint64 // total sub-channels in the system (strided out)
	linesPerRow uint64
	nBanks      uint64
	banksPerGrp int32
	noPermute   bool

	// Starvation guard: when the oldest request has waited longer than
	// this, row-hit-first bypassing is suspended.
	starvationLimit int64

	openBanks int
	lastInteg int64
	idleScan  int // round-robin cursor for idle precharge
	// idlePreAt caches the earliest cycle an idle-precharge scan could
	// succeed, set by a fruitless scan (see tryIdlePrecharge).
	idlePreAt int64
	// targetCnt counts queued requests (both queues) per bank, maintained
	// incrementally at arrival pop and CAS retirement so the idle-precharge
	// paths need no per-scan queue walks to build the protected-bank set.
	targetCnt []int32
	// issueBound caches tryIssue's return — the earliest cycle the command
	// slot could next be usable — valid only when boundAt equals the cycle
	// NextEvent is queried at (Tick and NextEvent run back to back).
	issueBound int64
	boundAt    int64

	// pendingR/pendingW count requests pushed but not yet arrived, so
	// queue-depth admission covers in-flight arrivals too.
	pendingR, pendingW int

	ctr Counters

	// cmdTrace, when non-nil, receives every issued command (testing and
	// analysis hook; nil in normal operation).
	cmdTrace func(Command)

	// observers receive every issued command after cmdTrace (validation
	// taps; empty in normal operation).
	observers []CommandObserver

	// now tracks the last ticked cycle for monotonicity.
	now int64
}

// CommandKind enumerates DRAM bus commands for tracing.
type CommandKind uint8

// Command kinds observed on the command bus.
const (
	CmdACT CommandKind = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
)

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	default:
		return "?"
	}
}

// Command is one traced command-bus event.
type Command struct {
	Cycle int64
	Kind  CommandKind
	Bank  int32
	Group int32
	Row   uint64
}

// SetCommandTrace installs a per-command observer (nil to disable). For
// verification: the observer must not mutate the sub-channel.
func (s *SubChannel) SetCommandTrace(fn func(Command)) { s.cmdTrace = fn }

// CommandObserver receives every command the scheduler puts on the command
// bus, in issue order. Implementations must not mutate the sub-channel;
// they are invoked synchronously from Tick, which under parallel phased
// ticking runs on a per-backend goroutine — observers therefore must not
// share mutable state across sub-channels.
type CommandObserver interface {
	OnCommand(Command)
}

// AttachObserver registers an additional command observer alongside any
// SetCommandTrace hook. Observers cannot be detached; attach them before
// the first tick.
func (s *SubChannel) AttachObserver(o CommandObserver) {
	s.observers = append(s.observers, o)
}

func (s *SubChannel) trace(kind CommandKind, bnk, grp int32, row uint64, now int64) {
	if s.cmdTrace == nil && len(s.observers) == 0 {
		return
	}
	c := Command{Cycle: now, Kind: kind, Bank: bnk, Group: grp, Row: row}
	if s.cmdTrace != nil {
		s.cmdTrace(c)
	}
	for _, o := range s.observers {
		o.OnCommand(c)
	}
}

// Config returns the sub-channel's configuration (validation oracles build
// their independent timing model from it).
func (s *SubChannel) Config() Config { return s.cfg }

// ForEachPending visits every request the sub-channel currently owns:
// queued in the scheduler, awaiting arrival, or awaiting completion
// delivery. For validation walks; fn must not mutate the sub-channel.
func (s *SubChannel) ForEachPending(fn func(*memreq.Request)) {
	for i := range s.readQ {
		fn(s.readQ[i].req)
	}
	for i := range s.writeQ {
		fn(s.writeQ[i].req)
	}
	s.arrivals.ForEach(fn)
	s.completions.ForEach(fn)
}

// NewSubChannel constructs a sub-channel. divisor is the total number of
// sub-channels across the whole memory system; line addresses are divided
// by it before bank/row decoding so each sub-channel sees a dense space.
func NewSubChannel(cfg Config, divisor int) *SubChannel {
	if divisor < 1 {
		divisor = 1
	}
	s := &SubChannel{
		cfg:   cfg,
		t:     cfg.Timing,
		banks: make([]bank, cfg.Banks()),
		// Queue occupancy is bounded by the admission check in Enqueue
		// (len+pending never exceeds the configured depth), so sizing the
		// backing arrays to capacity up front means the hot scheduler path
		// never reallocates: arrivals append within capacity and issueCAS's
		// in-place delete reuses the same array.
		readQ:           make([]entry, 0, cfg.ReadQueueDepth),
		writeQ:          make([]entry, 0, cfg.WriteQueueDepth),
		targetCnt:       make([]int32, cfg.Banks()),
		divisor:         uint64(divisor),
		linesPerRow:     uint64(cfg.RowBytes / memreq.LineSize),
		nBanks:          uint64(cfg.Banks()),
		banksPerGrp:     int32(cfg.BanksPerGroup),
		noPermute:       cfg.DisableBankPermutation,
		starvationLimit: 8000,
		refreshDue:      cfg.Timing.REFI,
		lastCASTime:     -1 << 40,
		lastActTime:     -1 << 40,
	}
	for i := range s.actTimes {
		s.actTimes[i] = -1 << 40
	}
	return s
}

// decode maps a line-aligned address to (row, bank, bankGroup) using an
// open-page-friendly layout (column bits low) with permutation-based bank
// interleaving: the bank index is XOR-permuted by a fold of the row bits
// (including high bits, so distinct per-core address-space bases land on
// different banks) while staying a within-row permutation, so distinct
// lines never alias to the same (bank, row, column).
func (s *SubChannel) decode(addr uint64) (row uint64, bnk, grp int32) {
	line := (addr >> memreq.LineShift) / s.divisor
	rest := line / s.linesPerRow
	bankRaw := rest % s.nBanks
	row = rest / s.nBanks
	if s.noPermute {
		return row, int32(bankRaw), int32(bankRaw) / s.banksPerGrp
	}
	fold := row ^ (row >> 7) ^ (row >> 13) ^ (row >> 19) ^ (row >> 25)
	b := bankRaw ^ (fold % s.nBanks)
	return row, int32(b), int32(b) / s.banksPerGrp
}

// Enqueue accepts a request that becomes visible to the scheduler at cycle
// `at`. It returns false when the corresponding queue (plus not-yet-arrived
// requests) is at capacity.
func (s *SubChannel) Enqueue(r *memreq.Request, at int64) bool {
	if r.Kind == memreq.Write {
		if len(s.writeQ)+s.pendingOf(memreq.Write) >= s.cfg.WriteQueueDepth {
			return false
		}
	} else {
		if len(s.readQ)+s.pendingOf(memreq.Read) >= s.cfg.ReadQueueDepth {
			return false
		}
	}
	if at < s.now {
		at = s.now
	}
	s.arrivals.Push(at, r)
	if r.Kind == memreq.Write {
		s.pendingW++
	} else {
		s.pendingR++
	}
	return true
}

func (s *SubChannel) pendingOf(k memreq.Kind) int {
	if k == memreq.Write {
		return s.pendingW
	}
	return s.pendingR
}

// QueueOccupancy reports current read/write queue depths including
// in-flight arrivals (for backpressure decisions by the CXL layer).
func (s *SubChannel) QueueOccupancy() (reads, writes int) {
	return len(s.readQ) + s.pendingR, len(s.writeQ) + s.pendingW
}

// Counters returns a copy of the activity counters (after integrating
// background state up to the last ticked cycle).
func (s *SubChannel) Counters() Counters {
	s.integrate(s.now)
	return s.ctr
}

// ResetCounters zeroes activity counters (used at the warmup/measure
// boundary). lastInteg is deliberately left alone: Sync may already have
// integrated past the sub-channel's own clock, and winding it back would
// double-count those cycles on the next state change.
func (s *SubChannel) ResetCounters() {
	s.integrate(s.now)
	s.ctr = Counters{}
}

// Sync integrates background bank-state accounting up to `now` without
// simulating any events. A sub-channel the event loop has skipped is
// provably inert over the gap — no commands, arrivals, or completions —
// but its open banks still accrue ActiveBankCycles each cycle; Sync
// realizes exactly that. The sub-channel's own clock is not advanced, so
// freshly enqueued work is still processed by the next Tick at the cycle
// the cycle-by-cycle loop would have processed it.
func (s *SubChannel) Sync(now int64) {
	s.integrate(now)
}

func (s *SubChannel) integrate(now int64) {
	if now > s.lastInteg {
		s.ctr.ActiveBankCycles += uint64(s.openBanks) * uint64(now-s.lastInteg)
		s.lastInteg = now
	}
}

// Tick advances the sub-channel one cycle. At most one command issues per
// tick, mirroring a single command bus. Re-ticking an already-simulated
// cycle is a no-op so that the event-driven loop may sync a lazily-skipped
// sub-channel to the global clock before reading counters.
func (s *SubChannel) Tick(now int64) {
	if now <= s.now {
		return
	}
	s.now = now

	// Deliver completions due this cycle.
	for {
		r, ok := s.completions.PopDue(now)
		if !ok {
			break
		}
		if r.Ret != nil {
			r.Ret.Complete(r, r.DataDone)
		}
	}

	// Move due arrivals into the scheduler queues.
	for {
		r, ok := s.arrivals.PopDue(now)
		if !ok {
			break
		}
		row, bnk, grp := s.decode(r.Addr)
		r.ArriveMC = now
		e := entry{req: r, row: row, bnk: bnk, grp: grp}
		s.targetCnt[bnk]++
		if r.Kind == memreq.Write {
			s.writeQ = append(s.writeQ, e)
			s.pendingW--
		} else {
			s.readQ = append(s.readQ, e)
			s.pendingR--
		}
	}

	if s.cfg.SameBankRefresh {
		// Fine-granularity refresh: each due REFsb blocks only its bank.
		if now >= s.sbDue {
			if s.stepRefreshSameBank(now) {
				return // command slot consumed this cycle
			}
		}
		s.issueBound = s.tryIssue(now)
		s.boundAt = now
		return
	}

	if s.refreshing {
		if now < s.refreshEnd {
			return
		}
		s.refreshing = false
	}

	// Refresh has priority once due: quiesce (precharge all banks), then
	// hold the rank for tRFC.
	if now >= s.refreshDue {
		if s.stepRefresh(now) {
			return
		}
		// Refresh issued or a PRE consumed the command slot.
		return
	}

	s.issueBound = s.tryIssue(now)
	s.boundAt = now
}

// NextEvent returns the earliest cycle after now at which Tick could make
// progress. Between ticks the scheduler state is frozen — queue contents
// change only when Tick pops an arrival or issues a CAS, and every timing
// gate (casAllowed, bus turnaround, actAllowed, tRRD, tFAW, preAllowed,
// starvation age) is a monotone threshold on now over that frozen state —
// so the first cycle any command could issue is exactly computable
// (nextIssueAt). The candidates are: that bound, the next arrival, the
// next completion delivery, and refresh becoming due. Any of those events
// triggers a tick, after which the caller re-queries NextEvent against the
// new state; cycles skipped between them are provable no-ops (Tick would
// pop nothing and fall through tryIssue without effect). During quiesce
// or REFsb windows (refreshDue/sbDue already past) the sub-channel claims
// now+1 and steps cycle by cycle, as those paths consume command slots on
// timing-dependent cycles of their own.
func (s *SubChannel) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	if t, ok := s.arrivals.PeekAt(); ok && t < next {
		next = t
	}
	if t, ok := s.completions.PeekAt(); ok && t < next {
		next = t
	}
	blocked := false // command slot unusable until an already-counted candidate
	if s.cfg.SameBankRefresh {
		// The next REFsb (or its quiescing PRE, when the victim bank sits
		// open) issues at sbDue; if that is already past — the PRE window
		// hasn't opened yet — re-examine every cycle.
		if s.sbDue < next {
			next = s.sbDue
		}
	} else {
		if s.refreshing && now < s.refreshEnd {
			// tRFC window: no command can issue before refreshEnd. With
			// empty queues clearing the flag is unobservable before the
			// next arrival; with queued work the first possible command
			// cycle is refreshEnd itself.
			blocked = true
			if (len(s.readQ) > 0 || len(s.writeQ) > 0) && s.refreshEnd < next {
				next = s.refreshEnd
			}
		}
		// refreshDue is the next all-bank REF sequence (quiesce begins).
		if s.refreshDue < next {
			next = s.refreshDue
		}
	}
	if next <= now {
		// An already-counted candidate forces the next cycle (quiesce or
		// REFsb PRE windows); the scheduler bound cannot be earlier.
		return now + 1
	}
	if !blocked && (len(s.readQ) > 0 || len(s.writeQ) > 0) {
		// Tick's scheduling decision already computed the bound over
		// exactly this frozen state; reuse it when NextEvent is queried
		// the same cycle (the normal Tick/NextEvent pairing) and fall
		// back to a fresh scan otherwise (e.g. after a refresh step
		// consumed the command slot before tryIssue ran).
		t := s.issueBound
		if s.boundAt != now {
			t = s.nextIssueAt()
		}
		if t < next {
			next = t
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// nextIssueAt computes the first cycle at which tryIssue, evaluated
// against the current (frozen) scheduler state, could issue any command.
// It mirrors tryIssue's candidate set — starvation guard, row-hit CAS,
// closed-bank ACT, conflict PRE, idle PRE — replacing each "may it issue
// now?" check with the exact cycle its timing gates open. Priority among
// candidates affects which command issues, not whether one can, so the
// minimum over all candidates is the first cycle the command slot is
// usable. The bound is invalidated by any state change (arrival pop, CAS
// retiring a queue entry, refresh), but each of those coincides with a
// tick, after which NextEvent recomputes.
func (s *SubChannel) nextIssueAt() int64 {
	// Mirror the write-drain hysteresis update tryIssue will apply to the
	// frozen queue lengths: it is idempotent until the lengths change.
	draining := s.draining
	if draining {
		if len(s.writeQ) <= s.cfg.WriteLow {
			draining = false
		}
	} else if len(s.writeQ) >= s.cfg.WriteHigh {
		draining = true
	}
	useWrites := draining
	if !useWrites && len(s.readQ) == 0 && len(s.writeQ) > 0 {
		useWrites = true
	}
	q := &s.readQ
	isWrite := false
	if useWrites {
		q = &s.writeQ
		isWrite = true
	}
	if len(*q) == 0 {
		return math.MaxInt64
	}

	var hitMask uint64
	for i := range *q {
		e := &(*q)[i]
		b := &s.banks[e.bnk]
		if b.open && b.row == e.row {
			hitMask |= 1 << uint(e.bnk)
		}
	}

	earliest := int64(math.MaxInt64)

	// Starvation guard: once the oldest request's age crosses the limit it
	// is served exclusively, through whichever command its bank state
	// needs — including a PRE that row-hit protection would veto below.
	oldest := &(*q)[0]
	g := int64(0)
	b := &s.banks[oldest.bnk]
	switch {
	case b.open && b.row == oldest.row:
		g = s.earliestCAS(oldest, isWrite)
	case !b.open:
		g = s.earliestACT(oldest)
	default:
		g = b.preAllowed
	}
	if t0 := oldest.req.ArriveMC + s.starvationLimit + 1; g < t0 {
		g = t0
	}
	if g < earliest {
		earliest = g
	}

	// Passes 1–3: row-hit CAS, closed-bank ACT, unprotected-conflict PRE.
	for i := range *q {
		e := &(*q)[i]
		b := &s.banks[e.bnk]
		var t int64
		switch {
		case b.open && b.row == e.row:
			t = s.earliestCAS(e, isWrite)
		case !b.open:
			t = s.earliestACT(e)
		case hitMask&(1<<uint(e.bnk)) == 0:
			t = b.preAllowed
		default:
			continue // conflict on a bank with protected row hits
		}
		if t < earliest {
			earliest = t
		}
	}

	// Pass 4: idle precharge of a stale open bank no queued request
	// targets (targetCnt spans both queues). Untargeting a bank requires a
	// queue entry to leave (a CAS — a tick), so excluding targeted banks
	// here is sound.
	if s.openBanks > 0 {
		for i := range s.banks {
			bb := &s.banks[i]
			if !bb.open || s.targetCnt[i] != 0 {
				continue
			}
			t := bb.lastUse + idlePreTimeout + 1
			if bb.preAllowed > t {
				t = bb.preAllowed
			}
			if t < earliest {
				earliest = t
			}
		}
	}
	return earliest
}

// earliestCAS returns the exact first cycle casOK(e, isWrite, ·) holds
// over the frozen state: the max of the bank CAS window, the CCD/turnaround
// window after the previous CAS, and the cycle the data bus frees up.
func (s *SubChannel) earliestCAS(e *entry, isWrite bool) int64 {
	t := s.banks[e.bnk].casAllowed
	sameGroup := e.grp == s.lastCASGroup
	var turn int64
	switch {
	case !isWrite && s.lastCASWrite:
		wtr := s.t.WTRS
		if sameGroup {
			wtr = s.t.WTRL
		}
		turn = s.lastCASTime + s.t.WL + s.t.BURST + wtr
	case isWrite && !s.lastCASWrite:
		ccd := s.t.CCDS
		if sameGroup {
			ccd = s.t.CCDL
		}
		turn = s.lastCASTime + ccd + s.t.RTW
	default:
		ccd := s.t.CCDS
		if sameGroup {
			ccd = s.t.CCDL
		}
		turn = s.lastCASTime + ccd
	}
	if turn > t {
		t = turn
	}
	lat := s.t.RL
	if isWrite {
		lat = s.t.WL
	}
	if bf := s.busFree - lat; bf > t {
		t = bf
	}
	return t
}

// earliestACT returns the exact first cycle actOK(e, ·) holds over the
// frozen state: the max of the bank tRP/tRC window, the rank tRRD window,
// and the four-activate window.
func (s *SubChannel) earliestACT(e *entry) int64 {
	t := s.banks[e.bnk].actAllowed
	rrd := s.t.RRDS
	if e.grp == s.lastActGroup {
		rrd = s.t.RRDL
	}
	if a := s.lastActTime + rrd; a > t {
		t = a
	}
	if f := s.actTimes[s.actIdx] + s.t.FAW; f > t {
		t = f
	}
	return t
}

// stepRefresh drives the quiesce-then-REF sequence. It returns true if the
// command slot was consumed (or the rank is still waiting on timing).
func (s *SubChannel) stepRefresh(now int64) bool {
	allClosed := true
	for i := range s.banks {
		b := &s.banks[i]
		if b.open {
			allClosed = false
			if now >= b.preAllowed {
				s.issuePRE(int32(i), now)
				return true
			}
		}
	}
	if !allClosed {
		return true // waiting for a PRE window
	}
	// All banks precharged: issue REF.
	s.refreshing = true
	s.refreshEnd = now + s.t.RFC
	s.refreshDue += s.t.REFI
	for i := range s.banks {
		if a := s.refreshEnd; a > s.banks[i].actAllowed {
			s.banks[i].actAllowed = a
		}
	}
	s.ctr.REF++
	s.trace(CmdREF, -1, -1, 0, now)
	return true
}

// stepRefreshSameBank advances the round-robin REFsb schedule. Each bank
// must refresh once per tREFI; banks take turns every tREFI/nBanks cycles,
// blocked individually for tRFCsb. Returns true if the command slot was
// consumed.
//
// Slot semantics: a pending REFsb consumes the cycle's single command slot
// only when it actually issues a command — the quiescing PRE for an open
// victim bank, or the REFsb itself once the bank is closed. While the
// victim bank sits open inside its tRAS/tRTP/tWR window (now < preAllowed),
// no command can issue for the refresh, so the slot is NOT consumed and
// ordinary FR-FCFS scheduling proceeds: other banks keep serving row hits
// and activates. Only the victim bank stalls. This is the point of
// same-bank refresh (DDR5 REFsb) versus all-bank refresh, which quiesces
// and blocks the entire rank for tRFC; TestSameBankRefreshSlotSemantics
// pins this behaviour.
func (s *SubChannel) stepRefreshSameBank(now int64) bool {
	b := &s.banks[s.sbNext]
	if b.open {
		if now >= b.preAllowed {
			s.issuePRE(s.sbNext, now)
			return true
		}
		return false // PRE window closed: slot unused, other banks proceed
	}
	// Bank closed: issue REFsb, blocking only this bank.
	blockUntil := now + s.t.RFCsb
	if blockUntil > b.actAllowed {
		b.actAllowed = blockUntil
	}
	s.ctr.REF++
	s.trace(CmdREF, s.sbNext, s.sbNext/s.banksPerGrp, 0, now)
	s.sbNext = (s.sbNext + 1) % int32(len(s.banks))
	s.sbDue += s.t.REFI / int64(len(s.banks))
	return true
}

// tryIssue performs one FR-FCFS scheduling decision and returns the
// earliest cycle the command slot could next be usable, fusing the
// scheduling scan with the bound computation NextEvent needs (the two
// previously walked the queue separately every tick). When a command
// issues, the returned bound is now+1: the issue changed rank state
// mid-scan, and an extra tick is always harmless (NextEvent's contract),
// while in the loaded regime the following cycle usually issues anyway.
// When nothing issues, the bound is exact over the frozen state: the
// minimum over every candidate's gate-opening cycle, matching what
// nextIssueAt would compute.
func (s *SubChannel) tryIssue(now int64) int64 {
	// Write-drain hysteresis.
	if s.draining {
		if len(s.writeQ) <= s.cfg.WriteLow {
			s.draining = false
		}
	} else if len(s.writeQ) >= s.cfg.WriteHigh {
		s.draining = true
	}

	useWrites := s.draining
	if !useWrites && len(s.readQ) == 0 && len(s.writeQ) > 0 {
		useWrites = true // opportunistic write issue on an idle read queue
	}

	q := &s.readQ
	isWrite := false
	if useWrites {
		q = &s.writeQ
		isWrite = true
	}
	if len(*q) == 0 {
		return math.MaxInt64 // both queues empty: only arrivals create work
	}

	// Per-bank mask of banks whose open row has queued hits; precharging
	// such a bank would throw away guaranteed row hits.
	var hitMask uint64
	for i := range *q {
		e := &(*q)[i]
		b := &s.banks[e.bnk]
		if b.open && b.row == e.row {
			hitMask |= 1 << uint(e.bnk)
		}
	}

	earliest := int64(math.MaxInt64)

	// Starvation guard: when the oldest request has waited pathologically
	// long, serve it exclusively this slot (ignoring row-hit protection).
	if oldest := &(*q)[0]; now-oldest.req.ArriveMC > s.starvationLimit {
		b := &s.banks[oldest.bnk]
		switch {
		case b.open && b.row == oldest.row:
			if s.casOK(oldest, isWrite, now) {
				s.issueCAS(q, 0, isWrite, now)
				return now + 1
			}
		case !b.open:
			if s.actOK(oldest, now) {
				s.issueACT(oldest, now)
				return now + 1
			}
		default:
			if now >= b.preAllowed {
				if !oldest.seen {
					oldest.seen = true
					oldest.req.StartSvc = now
				}
				s.issuePRE(oldest.bnk, now)
				return now + 1
			}
			// Protected-conflict oldest: the guard is the only path that
			// may precharge it, so its PRE window bounds the slot.
			if b.preAllowed < earliest {
				earliest = b.preAllowed
			}
		}
		// The oldest request's own timing blocks it; let others proceed.
	} else {
		// Guard not yet active: a protected-conflict oldest becomes
		// servable (via the guard's PRE) once its age crosses the limit.
		// Other classes are covered by the fused pass below, whose
		// candidates can only be earlier than the guard's.
		b := &s.banks[oldest.bnk]
		if b.open && b.row != oldest.row && hitMask&(1<<uint(oldest.bnk)) != 0 {
			g := b.preAllowed
			if t0 := oldest.req.ArriveMC + s.starvationLimit + 1; g < t0 {
				g = t0
			}
			if g < earliest {
				earliest = g
			}
		}
	}

	// Single fused pass over the queue, preserving the priority order of
	// the former passes 1–3: the first issuable row-hit CAS wins outright
	// (scanning stops — nothing later can preempt it); otherwise the first
	// issuable closed-bank ACT, then the first issuable unprotected-
	// conflict PRE, are remembered while the scan completes (a later
	// issuable CAS still has priority over either).
	actIdx, preIdx := -1, -1
	for i := range *q {
		e := &(*q)[i]
		b := &s.banks[e.bnk]
		switch {
		case b.open && b.row == e.row:
			if t := s.earliestCAS(e, isWrite); t <= now {
				s.issueCAS(q, i, isWrite, now)
				return now + 1
			} else if t < earliest {
				earliest = t
			}
		case !b.open:
			if actIdx >= 0 {
				continue
			}
			if t := s.earliestACT(e); t <= now {
				actIdx = i
			} else if t < earliest {
				earliest = t
			}
		case hitMask&(1<<uint(e.bnk)) == 0:
			if preIdx >= 0 {
				continue
			}
			if t := b.preAllowed; t <= now {
				preIdx = i
			} else if t < earliest {
				earliest = t
			}
		default:
			// Conflict on a bank with protected row hits: unservable
			// until a CAS retires a queue entry (a tick of its own).
		}
	}

	if actIdx >= 0 {
		s.issueACT(&(*q)[actIdx], now)
		return now + 1
	}
	if preIdx >= 0 {
		e := &(*q)[preIdx]
		if !e.seen {
			e.seen = true
			e.req.StartSvc = now
		}
		s.issuePRE(e.bnk, now)
		return now + 1
	}

	// Pass 4 (idle precharge): spend an otherwise-wasted command slot
	// closing a bank that has been idle past the timeout and has no queued
	// row hits, so future random accesses skip the conflict precharge.
	if t := s.tryIdlePrecharge(now); t < earliest {
		earliest = t
	}
	return earliest
}

// idlePreTimeout is the open-row idle window before speculative precharge.
const idlePreTimeout = 120

// tryIdlePrecharge closes one stale open bank, if any, and returns the
// earliest cycle a currently open, untargeted bank could become eligible
// (now+1 when a PRE issued). Banks targeted by any queued request — in
// either queue, tracked incrementally in targetCnt — are protected: a
// pending ACT would only be delayed by tRP anyway, and row hits would be
// thrown away. A fruitless scan caches the bound in idlePreAt so the
// per-cycle fast path is a single compare: re-scanning before it is
// provably fruitless because an untargeted bank's lastUse and preAllowed
// only ever move its eligibility later, banks opened after the scan are
// both targeted (their ACT served a queued entry) and fresh, closed banks
// drop out, and the one transition that could make a bank eligible
// *earlier* — losing its last targeting entry, which happens only when a
// CAS retires it — invalidates the cache at the issueCAS site.
func (s *SubChannel) tryIdlePrecharge(now int64) int64 {
	if s.openBanks == 0 {
		return math.MaxInt64
	}
	if now < s.idlePreAt {
		return s.idlePreAt
	}
	start := s.idleScan
	n := len(s.banks)
	earliest := int64(math.MaxInt64)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		b := &s.banks[i]
		if !b.open || s.targetCnt[i] != 0 {
			continue
		}
		if now >= b.preAllowed && now-b.lastUse > idlePreTimeout {
			s.issuePRE(int32(i), now)
			s.idleScan = i + 1
			return now + 1
		}
		e := b.lastUse + idlePreTimeout + 1
		if b.preAllowed > e {
			e = b.preAllowed
		}
		if e < earliest {
			earliest = e
		}
	}
	s.idleScan = start
	s.idlePreAt = earliest
	return earliest
}

// casOK reports whether a column command for e may issue at cycle now,
// checking bank tRCD, rank CAS-to-CAS spacing, write-to-read turnaround,
// and data-bus availability.
func (s *SubChannel) casOK(e *entry, isWrite bool, now int64) bool {
	b := &s.banks[e.bnk]
	if now < b.casAllowed {
		return false
	}
	var earliest int64
	sameGroup := e.grp == s.lastCASGroup
	switch {
	case !isWrite && s.lastCASWrite:
		// Read after write: wait for write data plus tWTR.
		wtr := s.t.WTRS
		if sameGroup {
			wtr = s.t.WTRL
		}
		earliest = s.lastCASTime + s.t.WL + s.t.BURST + wtr
	case isWrite && !s.lastCASWrite:
		// Write after read: CCD plus turnaround bubble.
		ccd := s.t.CCDS
		if sameGroup {
			ccd = s.t.CCDL
		}
		earliest = s.lastCASTime + ccd + s.t.RTW
	default:
		ccd := s.t.CCDS
		if sameGroup {
			ccd = s.t.CCDL
		}
		earliest = s.lastCASTime + ccd
	}
	if now < earliest {
		return false
	}
	lat := s.t.RL
	if isWrite {
		lat = s.t.WL
	}
	return now+lat >= s.busFree
}

// actOK reports whether an ACT for e may issue at cycle now, checking bank
// tRP/tRC, rank tRRD, and the four-activate window.
func (s *SubChannel) actOK(e *entry, now int64) bool {
	if now < s.banks[e.bnk].actAllowed {
		return false
	}
	rrd := s.t.RRDS
	if e.grp == s.lastActGroup {
		rrd = s.t.RRDL
	}
	if now < s.lastActTime+rrd {
		return false
	}
	return now >= s.actTimes[s.actIdx]+s.t.FAW
}

func (s *SubChannel) issueACT(e *entry, now int64) {
	b := &s.banks[e.bnk]
	s.integrate(now)
	b.open = true
	b.row = e.row
	b.lastUse = now
	b.casAllowed = now + s.t.RCD
	b.preAllowed = now + s.t.RAS
	b.actAllowed = now + s.t.RC
	s.actTimes[s.actIdx] = now
	s.actIdx = (s.actIdx + 1) % len(s.actTimes)
	s.lastActTime = now
	s.lastActGroup = e.grp
	s.openBanks++
	s.ctr.ACT++
	s.trace(CmdACT, e.bnk, e.grp, e.row, now)
	if !e.seen {
		e.seen = true
		e.req.StartSvc = now
	}
}

func (s *SubChannel) issuePRE(bnk int32, now int64) {
	b := &s.banks[bnk]
	s.integrate(now)
	b.open = false
	if a := now + s.t.RP; a > b.actAllowed {
		b.actAllowed = a
	}
	s.openBanks--
	s.ctr.PRE++
	s.trace(CmdPRE, bnk, bnk/s.banksPerGrp, b.row, now)
}

func (s *SubChannel) issueCAS(q *[]entry, i int, isWrite bool, now int64) {
	e := (*q)[i]
	b := &s.banks[e.bnk]
	lat := s.t.RL
	if isWrite {
		lat = s.t.WL
	}
	dataStart := now + lat
	dataEnd := dataStart + s.t.BURST
	b.lastUse = now
	s.busFree = dataEnd
	s.lastCASTime = now
	s.lastCASGroup = e.grp
	s.lastCASWrite = isWrite

	if !e.seen {
		e.req.StartSvc = now
		s.ctr.RowHits++
	} else {
		s.ctr.RowMisses++
	}
	e.req.DataDone = dataEnd

	if isWrite {
		// Write recovery gates the next PRE.
		if a := dataEnd + s.t.WR; a > b.preAllowed {
			b.preAllowed = a
		}
		s.ctr.WR++
		s.ctr.WriteBytes += memreq.LineSize
		s.trace(CmdWR, e.bnk, e.grp, e.row, now)
	} else {
		if a := now + s.t.RTP; a > b.preAllowed {
			b.preAllowed = a
		}
		s.ctr.RD++
		s.ctr.ReadBytes += memreq.LineSize
		s.trace(CmdRD, e.bnk, e.grp, e.row, now)
	}

	// Remove from queue preserving order.
	*q = append((*q)[:i], (*q)[i+1:]...)
	if s.targetCnt[e.bnk]--; s.targetCnt[e.bnk] == 0 {
		// The bank lost its last targeting entry: it joins the
		// idle-precharge candidate set, so fold its eligibility — exactly
		// computable here, since this CAS just set lastUse=now and any
		// recovery-window push to preAllowed happened above — into the
		// cached bound rather than forcing a rescan.
		t := now + idlePreTimeout + 1
		if b.preAllowed > t {
			t = b.preAllowed
		}
		if t < s.idlePreAt {
			s.idlePreAt = t
		}
	}

	if e.req.Ret != nil {
		s.completions.Push(dataEnd, e.req)
	}
}

// Idle reports whether the sub-channel has no queued work, arrivals, or
// completions outstanding (used by drain loops).
func (s *SubChannel) Idle() bool {
	return len(s.readQ) == 0 && len(s.writeQ) == 0 &&
		s.arrivals.Len() == 0 && s.completions.Len() == 0 &&
		s.pendingR == 0 && s.pendingW == 0
}
