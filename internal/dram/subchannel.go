package dram

import (
	"math"
	"math/bits"

	"coaxial/internal/memreq"
)

// entryKey is the decoded coordinate of one queued request: everything the
// FR-FCFS scans need, packed into 16 bytes. The queues are struct-of-arrays
// (keys, requests, and seen flags in parallel slices) so the per-cycle scans
// walk a dense key array instead of pointer-laden entries; the request
// pointer is only touched when a command actually issues.
type entryKey struct {
	row uint64
	bnk int32
	grp int32
}

// reqQueue is one scheduler queue in struct-of-arrays layout. Indices are
// shared across the three slices; push/remove keep them in lockstep.
type reqQueue struct {
	keys []entryKey
	//lint:owns popped on completion and released by the completer or the retired drain
	reqs []*memreq.Request
	seen []bool // first command issued (StartSvc recorded)
}

func newReqQueue(capacity int) reqQueue {
	return reqQueue{
		keys: make([]entryKey, 0, capacity),
		reqs: make([]*memreq.Request, 0, capacity),
		seen: make([]bool, 0, capacity),
	}
}

func (q *reqQueue) len() int { return len(q.keys) }

func (q *reqQueue) push(k entryKey, r *memreq.Request) {
	q.keys = append(q.keys, k)
	q.reqs = append(q.reqs, r)
	q.seen = append(q.seen, false)
}

// remove deletes index i preserving order (FR-FCFS ages by queue position).
func (q *reqQueue) remove(i int) {
	n := len(q.keys) - 1
	copy(q.keys[i:], q.keys[i+1:])
	copy(q.reqs[i:], q.reqs[i+1:])
	copy(q.seen[i:], q.seen[i+1:])
	q.reqs[n] = nil // drop the stale duplicate so the slot holds no reference
	q.keys = q.keys[:n]
	q.reqs = q.reqs[:n]
	q.seen = q.seen[:n]
}

// Counters accumulates DRAM activity for bandwidth and power accounting.
type Counters struct {
	ACT, PRE, RD, WR, REF uint64
	ReadBytes             uint64
	WriteBytes            uint64
	// ActiveBankCycles integrates (open banks x cycles) for background
	// power; PrechargeCycles is derived as banks*window - active.
	ActiveBankCycles uint64
	// RowHits / RowMisses classify column accesses for locality stats.
	RowHits, RowMisses uint64
}

// Accumulate adds ct's activity into c (summing counters across
// sub-channels, channels, or whole devices).
func (c *Counters) Accumulate(ct Counters) {
	c.ACT += ct.ACT
	c.PRE += ct.PRE
	c.RD += ct.RD
	c.WR += ct.WR
	c.REF += ct.REF
	c.ReadBytes += ct.ReadBytes
	c.WriteBytes += ct.WriteBytes
	c.ActiveBankCycles += ct.ActiveBankCycles
	c.RowHits += ct.RowHits
	c.RowMisses += ct.RowMisses
}

// SubChannel models one independent 32-bit DDR5 sub-channel: one rank of
// banks, its command/data buses, controller queues, and FR-FCFS scheduler.
//
// Per-bank state is struct-of-arrays: the readiness timestamps the
// scheduler scans every cycle live in dense int64 slices indexed by bank,
// and bank open/closed state is a single uint64 bitmask (like the row-hit
// mask, this caps the model at 64 banks per sub-channel — DDR5 has 32).
type SubChannel struct {
	cfg Config
	t   Timing

	// Per-bank timing state (SoA, indexed by bank).
	bankRow  []uint64
	casReady []int64 // next CAS (covers tRCD after ACT)
	actReady []int64 // next ACT (covers tRP after PRE, tRC after ACT, refresh)
	preReady []int64 // next PRE (covers tRAS, tRTP, write recovery)
	lastUse  []int64 // last ACT/CAS cycle, for idle precharge
	// openMask has bit b set while bank b holds an open row; popcount gives
	// the open-bank total for background-power integration.
	openMask uint64

	readQ  reqQueue
	writeQ reqQueue

	arrivals    memreq.TimedHeap
	completions memreq.TimedHeap

	// Rank-level constraints.
	actTimes     [4]int64 // FAW ring of the last four ACT issue cycles
	actIdx       int
	lastActTime  int64
	lastActGroup int32
	lastCASTime  int64
	lastCASGroup int32
	lastCASWrite bool
	busFree      int64 // data bus next-free cycle

	// Precomputed readiness gates, so the per-entry checks in the scheduler
	// scans are pure max-of-timestamps reductions with no timing-rule
	// branches. Each is a function of the rank-level state above and is
	// recomputed whenever that state changes (a CAS or ACT issue):
	//
	//   casTurn[w][g]  earliest next-CAS cycle imposed by the previous CAS,
	//                  for a next CAS of kind w (0 read, 1 write) in group
	//                  relation g (0 different bank group, 1 same group) —
	//                  the CCD / write-to-read / read-to-write turnaround
	//                  table evaluated once instead of per queue entry.
	//   busFloorR/W    earliest CAS cycle at which the data burst would find
	//                  the bus free (busFree - RL or WL).
	//   actTurn[g]     earliest next-ACT cycle imposed by tRRD (group
	//                  relation g) and the four-activate window, fused.
	casTurn              [2][2]int64
	busFloorR, busFloorW int64
	actTurn              [2]int64

	draining   bool
	refreshing bool
	refreshEnd int64
	refreshDue int64
	// Same-bank refresh state: next bank index and its due cycle.
	sbNext int32
	sbDue  int64

	// Decode parameters.
	divisor     uint64 // total sub-channels in the system (strided out)
	linesPerRow uint64
	nBanks      uint64
	banksPerGrp int32
	noPermute   bool

	// Starvation guard: when the oldest request has waited longer than
	// this, row-hit-first bypassing is suspended.
	starvationLimit int64

	lastInteg int64
	idleScan  int // round-robin cursor for idle precharge
	// idlePreAt caches the earliest cycle an idle-precharge scan could
	// succeed, set by a fruitless scan (see tryIdlePrecharge).
	idlePreAt int64
	// targetCnt counts queued requests (both queues) per bank, maintained
	// incrementally at arrival pop and CAS retirement so the idle-precharge
	// paths need no per-scan queue walks to build the protected-bank set.
	// targetMask mirrors it as a bank bitmask (bit set iff count nonzero)
	// so those scans iterate only open, untargeted banks.
	targetCnt  []int32
	targetMask uint64
	// issueBound caches tryIssue's return — the earliest cycle the command
	// slot could next be usable over the frozen scheduler state. It stays
	// exact until that state changes (an arrival pop, an issue, a refresh
	// step — the latter two force a rescan by setting it to now+1 or
	// invalidBound), so Tick skips the scan entirely before it. boundAt
	// records the cycle the bound was last endorsed; NextEvent reuses the
	// bound only when queried that same cycle (Tick and NextEvent run back
	// to back) and rescans otherwise.
	issueBound int64
	boundAt    int64

	// pendingR/pendingW count requests pushed but not yet arrived, so
	// queue-depth admission covers in-flight arrivals too.
	pendingR, pendingW int

	// retired buffers requests that died inside the sub-channel during this
	// backend phase: write CAS retirements with no completion callback.
	// Collected only when collectRetired is set (the simulator drains the
	// buffer at the cycle barrier to recycle arena requests); raw
	// sub-channel users leave it off and such requests simply become
	// unreferenced, as before.
	collectRetired bool
	//lint:owns handed to the owning System's retired drain by DrainRetired, which releases them
	retired []*memreq.Request

	ctr Counters

	// cmdTrace, when non-nil, receives every issued command (testing and
	// analysis hook; nil in normal operation).
	cmdTrace func(Command)

	// observers receive every issued command after cmdTrace (validation
	// taps; empty in normal operation).
	observers []CommandObserver

	// now tracks the last ticked cycle for monotonicity.
	now int64
}

// CommandKind enumerates DRAM bus commands for tracing.
type CommandKind uint8

// Command kinds observed on the command bus.
const (
	CmdACT CommandKind = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
)

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	default:
		return "?"
	}
}

// Command is one traced command-bus event.
type Command struct {
	Cycle int64
	Kind  CommandKind
	Bank  int32
	Group int32
	Row   uint64
}

// SetCommandTrace installs a per-command observer (nil to disable). For
// verification: the observer must not mutate the sub-channel.
func (s *SubChannel) SetCommandTrace(fn func(Command)) { s.cmdTrace = fn }

// CommandObserver receives every command the scheduler puts on the command
// bus, in issue order. Implementations must not mutate the sub-channel;
// they are invoked synchronously from Tick, which under parallel phased
// ticking runs on a per-backend goroutine — observers therefore must not
// share mutable state across sub-channels.
type CommandObserver interface {
	OnCommand(Command)
}

// AttachObserver registers an additional command observer alongside any
// SetCommandTrace hook. Observers cannot be detached; attach them before
// the first tick.
func (s *SubChannel) AttachObserver(o CommandObserver) {
	s.observers = append(s.observers, o)
}

func (s *SubChannel) trace(kind CommandKind, bnk, grp int32, row uint64, now int64) {
	if s.cmdTrace == nil && len(s.observers) == 0 {
		return
	}
	c := Command{Cycle: now, Kind: kind, Bank: bnk, Group: grp, Row: row}
	if s.cmdTrace != nil {
		s.cmdTrace(c)
	}
	for _, o := range s.observers {
		o.OnCommand(c)
	}
}

// Config returns the sub-channel's configuration (validation oracles build
// their independent timing model from it).
func (s *SubChannel) Config() Config { return s.cfg }

// ForEachPending visits every request the sub-channel currently owns:
// queued in the scheduler, awaiting arrival, or awaiting completion
// delivery. For validation walks; fn must not mutate the sub-channel.
func (s *SubChannel) ForEachPending(fn func(*memreq.Request)) {
	for _, r := range s.readQ.reqs {
		fn(r)
	}
	for _, r := range s.writeQ.reqs {
		fn(r)
	}
	s.arrivals.ForEach(fn)
	s.completions.ForEach(fn)
}

// SetCollectRetired enables buffering of requests that retire inside the
// sub-channel without a completion callback (write CAS retirements with a
// nil Ret). The simulator drains the buffer with DrainRetired at the cycle
// barrier to recycle arena-allocated requests. Off by default.
func (s *SubChannel) SetCollectRetired(on bool) { s.collectRetired = on }

// DrainRetired hands every buffered retired request to fn and clears the
// buffer. Call only from the sequential phases of the tick loop.
func (s *SubChannel) DrainRetired(fn func(*memreq.Request)) {
	if len(s.retired) == 0 {
		return
	}
	for i, r := range s.retired {
		s.retired[i] = nil
		fn(r)
	}
	s.retired = s.retired[:0]
}

// NewSubChannel constructs a sub-channel. divisor is the total number of
// sub-channels across the whole memory system; line addresses are divided
// by it before bank/row decoding so each sub-channel sees a dense space.
func NewSubChannel(cfg Config, divisor int) *SubChannel {
	if divisor < 1 {
		divisor = 1
	}
	nb := cfg.Banks()
	s := &SubChannel{
		cfg:      cfg,
		t:        cfg.Timing,
		bankRow:  make([]uint64, nb),
		casReady: make([]int64, nb),
		actReady: make([]int64, nb),
		preReady: make([]int64, nb),
		lastUse:  make([]int64, nb),
		// Queue occupancy is bounded by the admission check in Enqueue
		// (len+pending never exceeds the configured depth), so sizing the
		// backing arrays to capacity up front means the hot scheduler path
		// never reallocates: arrivals append within capacity and issueCAS's
		// in-place delete reuses the same arrays.
		readQ:           newReqQueue(cfg.ReadQueueDepth),
		writeQ:          newReqQueue(cfg.WriteQueueDepth),
		targetCnt:       make([]int32, nb),
		divisor:         uint64(divisor),
		linesPerRow:     uint64(cfg.RowBytes / memreq.LineSize),
		nBanks:          uint64(nb),
		banksPerGrp:     int32(cfg.BanksPerGroup),
		noPermute:       cfg.DisableBankPermutation,
		starvationLimit: 8000,
		refreshDue:      cfg.Timing.REFI,
		lastCASTime:     -1 << 40,
		lastActTime:     -1 << 40,
	}
	for i := range s.actTimes {
		s.actTimes[i] = -1 << 40
	}
	s.recomputeCASGates()
	s.recomputeACTGates()
	return s
}

// recomputeCASGates refreshes the precomputed CAS readiness vectors from
// the rank CAS state (lastCASTime/lastCASWrite/busFree). Called whenever a
// CAS issues; the table is exactly the turnaround case analysis the old
// per-entry check performed (read-after-write pays tWTR behind the write
// burst, write-after-read pays tCCD plus the bus-turnaround bubble,
// same-kind CAS pairs pay tCCD), evaluated once per issue instead of once
// per scanned queue entry.
func (s *SubChannel) recomputeCASGates() {
	t := s.lastCASTime
	if s.lastCASWrite {
		s.casTurn[0][0] = t + s.t.WL + s.t.BURST + s.t.WTRS
		s.casTurn[0][1] = t + s.t.WL + s.t.BURST + s.t.WTRL
		s.casTurn[1][0] = t + s.t.CCDS
		s.casTurn[1][1] = t + s.t.CCDL
	} else {
		s.casTurn[0][0] = t + s.t.CCDS
		s.casTurn[0][1] = t + s.t.CCDL
		s.casTurn[1][0] = t + s.t.CCDS + s.t.RTW
		s.casTurn[1][1] = t + s.t.CCDL + s.t.RTW
	}
	s.busFloorR = s.busFree - s.t.RL
	s.busFloorW = s.busFree - s.t.WL
}

// recomputeACTGates refreshes the precomputed ACT readiness vector from the
// rank ACT state (lastActTime and the FAW ring). Called whenever an ACT
// issues.
func (s *SubChannel) recomputeACTGates() {
	faw := s.actTimes[s.actIdx] + s.t.FAW
	a := s.lastActTime + s.t.RRDS
	if faw > a {
		a = faw
	}
	s.actTurn[0] = a
	b := s.lastActTime + s.t.RRDL
	if faw > b {
		b = faw
	}
	s.actTurn[1] = b
}

// b2i converts a gate-selection predicate to a table index (compiles to a
// conditional set, keeping the readiness reductions branch-free).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// decode maps a line-aligned address to (row, bank, bankGroup) using an
// open-page-friendly layout (column bits low) with permutation-based bank
// interleaving: the bank index is XOR-permuted by a fold of the row bits
// (including high bits, so distinct per-core address-space bases land on
// different banks) while staying a within-row permutation, so distinct
// lines never alias to the same (bank, row, column).
func (s *SubChannel) decode(addr uint64) (row uint64, bnk, grp int32) {
	line := (addr >> memreq.LineShift) / s.divisor
	rest := line / s.linesPerRow
	bankRaw := rest % s.nBanks
	row = rest / s.nBanks
	if s.noPermute {
		return row, int32(bankRaw), int32(bankRaw) / s.banksPerGrp
	}
	fold := row ^ (row >> 7) ^ (row >> 13) ^ (row >> 19) ^ (row >> 25)
	b := bankRaw ^ (fold % s.nBanks)
	return row, int32(b), int32(b) / s.banksPerGrp
}

// Enqueue accepts a request that becomes visible to the scheduler at cycle
// `at`. It returns false when the corresponding queue (plus not-yet-arrived
// requests) is at capacity.
func (s *SubChannel) Enqueue(r *memreq.Request, at int64) bool {
	if r.Kind == memreq.Write {
		if s.writeQ.len()+s.pendingW >= s.cfg.WriteQueueDepth {
			return false
		}
	} else {
		if s.readQ.len()+s.pendingR >= s.cfg.ReadQueueDepth {
			return false
		}
	}
	if at < s.now {
		at = s.now
	}
	s.arrivals.Push(at, r)
	if r.Kind == memreq.Write {
		s.pendingW++
	} else {
		s.pendingR++
	}
	return true
}

// QueueOccupancy reports current read/write queue depths including
// in-flight arrivals (for backpressure decisions by the CXL layer).
func (s *SubChannel) QueueOccupancy() (reads, writes int) {
	return s.readQ.len() + s.pendingR, s.writeQ.len() + s.pendingW
}

// Counters returns a copy of the activity counters (after integrating
// background state up to the last ticked cycle).
func (s *SubChannel) Counters() Counters {
	s.integrate(s.now)
	return s.ctr
}

// ResetCounters zeroes activity counters (used at the warmup/measure
// boundary). lastInteg is deliberately left alone: Sync may already have
// integrated past the sub-channel's own clock, and winding it back would
// double-count those cycles on the next state change.
func (s *SubChannel) ResetCounters() {
	s.integrate(s.now)
	s.ctr = Counters{}
}

// Sync integrates background bank-state accounting up to `now` without
// simulating any events. A sub-channel the event loop has skipped is
// provably inert over the gap — no commands, arrivals, or completions —
// but its open banks still accrue ActiveBankCycles each cycle; Sync
// realizes exactly that. The sub-channel's own clock is not advanced, so
// freshly enqueued work is still processed by the next Tick at the cycle
// the cycle-by-cycle loop would have processed it.
func (s *SubChannel) Sync(now int64) {
	s.integrate(now)
}

func (s *SubChannel) integrate(now int64) {
	if now > s.lastInteg {
		s.ctr.ActiveBankCycles += uint64(bits.OnesCount64(s.openMask)) * uint64(now-s.lastInteg)
		s.lastInteg = now
	}
}

// Tick advances the sub-channel one cycle. At most one command issues per
// tick, mirroring a single command bus. Re-ticking an already-simulated
// cycle is a no-op so that the event-driven loop may sync a lazily-skipped
// sub-channel to the global clock before reading counters.
func (s *SubChannel) Tick(now int64) {
	if now <= s.now {
		return
	}
	s.now = now

	// Deliver completions due this cycle.
	for {
		r, ok := s.completions.PopDue(now)
		if !ok {
			break
		}
		if r.Ret != nil {
			r.Ret.Complete(r, r.DataDone)
		}
	}

	// Move due arrivals into the scheduler queues.
	arrived := false
	for {
		r, ok := s.arrivals.PopDue(now)
		if !ok {
			break
		}
		arrived = true
		row, bnk, grp := s.decode(r.Addr)
		r.ArriveMC = now
		s.targetCnt[bnk]++
		s.targetMask |= 1 << uint(bnk)
		k := entryKey{row: row, bnk: bnk, grp: grp}
		if r.Kind == memreq.Write {
			s.writeQ.push(k, r)
			s.pendingW--
		} else {
			s.readQ.push(k, r)
			s.pendingR--
		}
	}

	if s.cfg.SameBankRefresh {
		// Fine-granularity refresh: each due REFsb blocks only its bank.
		if now >= s.sbDue {
			s.issueBound = invalidBound // REFsb path mutates bank state
			if s.stepRefreshSameBank(now) {
				return // command slot consumed this cycle
			}
		}
		if !arrived && now < s.issueBound {
			s.boundAt = now
			return
		}
		s.issueBound = s.tryIssue(now)
		s.boundAt = now
		return
	}

	if s.refreshing {
		if now < s.refreshEnd {
			return
		}
		s.refreshing = false
	}

	// Refresh has priority once due: quiesce (precharge all banks), then
	// hold the rank for tRFC.
	if now >= s.refreshDue {
		// Quiesce PREs and the REF itself mutate bank state without going
		// through tryIssue; force a rescan on the next normal tick.
		s.issueBound = invalidBound
		if s.stepRefresh(now) {
			return
		}
		// Refresh issued or a PRE consumed the command slot.
		return
	}

	// The last scan's bound is still exact when the frozen scheduler state
	// is unchanged since it was computed: no arrival joined a queue this
	// tick, no command issued (an issue returns a bound of now+1, forcing
	// the next tick to rescan), and no refresh sequence ran (invalidated
	// above). Every per-entry gate in tryIssue is a constant of that state
	// — including the starvation guard's activation cycle, which the scan
	// folds into the bound — so before the bound the slot is provably
	// unusable and the scan would issue nothing and change nothing.
	if !arrived && now < s.issueBound {
		s.boundAt = now
		return
	}
	s.issueBound = s.tryIssue(now)
	s.boundAt = now
}

// NextEvent returns the earliest cycle after now at which Tick could make
// progress. Between ticks the scheduler state is frozen — queue contents
// change only when Tick pops an arrival or issues a CAS, and every timing
// gate (casReady, bus turnaround, actReady, tRRD, tFAW, preReady,
// starvation age) is a monotone threshold on now over that frozen state —
// so the first cycle any command could issue is exactly computable
// (nextIssueAt). The candidates are: that bound, the next arrival, the
// next completion delivery, and refresh becoming due. Any of those events
// triggers a tick, after which the caller re-queries NextEvent against the
// new state; cycles skipped between them are provable no-ops (Tick would
// pop nothing and fall through tryIssue without effect). During quiesce
// or REFsb windows (refreshDue/sbDue already past) the sub-channel claims
// now+1 and steps cycle by cycle, as those paths consume command slots on
// timing-dependent cycles of their own.
func (s *SubChannel) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	if t, ok := s.arrivals.PeekAt(); ok && t < next {
		next = t
	}
	if t, ok := s.completions.PeekAt(); ok && t < next {
		next = t
	}
	blocked := false // command slot unusable until an already-counted candidate
	if s.cfg.SameBankRefresh {
		// The next REFsb (or its quiescing PRE, when the victim bank sits
		// open) issues at sbDue; if that is already past — the PRE window
		// hasn't opened yet — re-examine every cycle.
		if s.sbDue < next {
			next = s.sbDue
		}
	} else {
		if s.refreshing && now < s.refreshEnd {
			// tRFC window: no command can issue before refreshEnd. With
			// empty queues clearing the flag is unobservable before the
			// next arrival; with queued work the first possible command
			// cycle is refreshEnd itself.
			blocked = true
			if (s.readQ.len() > 0 || s.writeQ.len() > 0) && s.refreshEnd < next {
				next = s.refreshEnd
			}
		}
		// refreshDue is the next all-bank REF sequence (quiesce begins).
		if s.refreshDue < next {
			next = s.refreshDue
		}
	}
	if next <= now {
		// An already-counted candidate forces the next cycle (quiesce or
		// REFsb PRE windows); the scheduler bound cannot be earlier.
		return now + 1
	}
	if !blocked && (s.readQ.len() > 0 || s.writeQ.len() > 0) {
		// Tick's scheduling decision already computed the bound over
		// exactly this frozen state; reuse it when NextEvent is queried
		// the same cycle (the normal Tick/NextEvent pairing) and fall
		// back to a fresh scan otherwise (e.g. after a refresh step
		// consumed the command slot before tryIssue ran).
		t := s.issueBound
		if s.boundAt != now {
			t = s.nextIssueAt()
		}
		if t < next {
			next = t
		}
	}
	if next <= now {
		return now + 1
	}
	return next
}

// nextIssueAt computes the first cycle at which tryIssue, evaluated
// against the current (frozen) scheduler state, could issue any command.
// It mirrors tryIssue's candidate set — starvation guard, row-hit CAS,
// closed-bank ACT, conflict PRE, idle PRE — replacing each "may it issue
// now?" check with the exact cycle its timing gates open. Priority among
// candidates affects which command issues, not whether one can, so the
// minimum over all candidates is the first cycle the command slot is
// usable. The bound is invalidated by any state change (arrival pop, CAS
// retiring a queue entry, refresh), but each of those coincides with a
// tick, after which NextEvent recomputes.
func (s *SubChannel) nextIssueAt() int64 {
	// Mirror the write-drain hysteresis update tryIssue will apply to the
	// frozen queue lengths: it is idempotent until the lengths change.
	draining := s.draining
	if draining {
		if s.writeQ.len() <= s.cfg.WriteLow {
			draining = false
		}
	} else if s.writeQ.len() >= s.cfg.WriteHigh {
		draining = true
	}
	useWrites := draining
	if !useWrites && s.readQ.len() == 0 && s.writeQ.len() > 0 {
		useWrites = true
	}
	q := &s.readQ
	isWrite := false
	if useWrites {
		q = &s.writeQ
		isWrite = true
	}
	keys := q.keys
	if len(keys) == 0 {
		return math.MaxInt64
	}

	turn := &s.casTurn[b2i(isWrite)]
	busFloor := s.busFloorR
	if isWrite {
		busFloor = s.busFloorW
	}

	hitMask := s.hitMask(keys)

	earliest := int64(math.MaxInt64)

	// Starvation guard: once the oldest request's age crosses the limit it
	// is served exclusively, through whichever command its bank state
	// needs — including a PRE that row-hit protection would veto below.
	k0 := &keys[0]
	var g int64
	open0 := s.openMask&(1<<uint(k0.bnk)) != 0
	switch {
	case open0 && s.bankRow[k0.bnk] == k0.row:
		g = s.casReady[k0.bnk]
		if v := turn[b2i(k0.grp == s.lastCASGroup)]; v > g {
			g = v
		}
		if busFloor > g {
			g = busFloor
		}
	case !open0:
		g = s.earliestACT(k0.bnk, k0.grp)
	default:
		g = s.preReady[k0.bnk]
	}
	if t0 := q.reqs[0].ArriveMC + s.starvationLimit + 1; g < t0 {
		g = t0
	}
	if g < earliest {
		earliest = g
	}

	// Passes 1–3: row-hit CAS, closed-bank ACT, unprotected-conflict PRE.
	for i := range keys {
		k := &keys[i]
		bit := uint64(1) << uint(k.bnk)
		open := s.openMask&bit != 0
		var t int64
		switch {
		case open && s.bankRow[k.bnk] == k.row:
			t = s.casReady[k.bnk]
			if v := turn[b2i(k.grp == s.lastCASGroup)]; v > t {
				t = v
			}
			if busFloor > t {
				t = busFloor
			}
		case !open:
			t = s.earliestACT(k.bnk, k.grp)
		case hitMask&bit == 0:
			t = s.preReady[k.bnk]
		default:
			continue // conflict on a bank with protected row hits
		}
		if t < earliest {
			earliest = t
		}
	}

	// Pass 4: idle precharge of a stale open bank no queued request
	// targets (targetMask spans both queues). Untargeting a bank requires
	// a queue entry to leave (a CAS — a tick), so excluding targeted banks
	// here is sound.
	for m := s.openMask &^ s.targetMask; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		t := s.lastUse[i] + idlePreTimeout + 1
		if s.preReady[i] > t {
			t = s.preReady[i]
		}
		if t < earliest {
			earliest = t
		}
	}
	return earliest
}

// hitMask builds the per-bank mask of banks whose open row has queued hits;
// precharging such a bank would throw away guaranteed row hits.
func (s *SubChannel) hitMask(keys []entryKey) uint64 {
	var mask uint64
	for i := range keys {
		k := &keys[i]
		bit := uint64(1) << uint(k.bnk)
		if s.openMask&bit != 0 && s.bankRow[k.bnk] == k.row {
			mask |= bit
		}
	}
	return mask
}

// earliestACT returns the exact first cycle an ACT for (bnk, grp) could
// issue over the frozen state: the max of the bank tRP/tRC window and the
// precomputed rank gate (tRRD and the four-activate window, fused).
func (s *SubChannel) earliestACT(bnk, grp int32) int64 {
	t := s.actReady[bnk]
	if v := s.actTurn[b2i(grp == s.lastActGroup)]; v > t {
		t = v
	}
	return t
}

// stepRefresh drives the quiesce-then-REF sequence. It returns true if the
// command slot was consumed (or the rank is still waiting on timing).
func (s *SubChannel) stepRefresh(now int64) bool {
	if s.openMask != 0 {
		for m := s.openMask; m != 0; m &= m - 1 {
			i := int32(bits.TrailingZeros64(m))
			if now >= s.preReady[i] {
				s.issuePRE(i, now)
				return true
			}
		}
		return true // waiting for a PRE window
	}
	// All banks precharged: issue REF.
	s.refreshing = true
	s.refreshEnd = now + s.t.RFC
	s.refreshDue += s.t.REFI
	for i := range s.actReady {
		if s.refreshEnd > s.actReady[i] {
			s.actReady[i] = s.refreshEnd
		}
	}
	s.ctr.REF++
	s.trace(CmdREF, -1, -1, 0, now)
	return true
}

// stepRefreshSameBank advances the round-robin REFsb schedule. Each bank
// must refresh once per tREFI; banks take turns every tREFI/nBanks cycles,
// blocked individually for tRFCsb. Returns true if the command slot was
// consumed.
//
// Slot semantics: a pending REFsb consumes the cycle's single command slot
// only when it actually issues a command — the quiescing PRE for an open
// victim bank, or the REFsb itself once the bank is closed. While the
// victim bank sits open inside its tRAS/tRTP/tWR window (now < preReady),
// no command can issue for the refresh, so the slot is NOT consumed and
// ordinary FR-FCFS scheduling proceeds: other banks keep serving row hits
// and activates. Only the victim bank stalls. This is the point of
// same-bank refresh (DDR5 REFsb) versus all-bank refresh, which quiesces
// and blocks the entire rank for tRFC; TestSameBankRefreshSlotSemantics
// pins this behaviour.
func (s *SubChannel) stepRefreshSameBank(now int64) bool {
	b := s.sbNext
	if s.openMask&(1<<uint(b)) != 0 {
		if now >= s.preReady[b] {
			s.issuePRE(b, now)
			return true
		}
		return false // PRE window closed: slot unused, other banks proceed
	}
	// Bank closed: issue REFsb, blocking only this bank.
	blockUntil := now + s.t.RFCsb
	if blockUntil > s.actReady[b] {
		s.actReady[b] = blockUntil
	}
	s.ctr.REF++
	s.trace(CmdREF, b, b/s.banksPerGrp, 0, now)
	s.sbNext = (s.sbNext + 1) % int32(len(s.bankRow))
	s.sbDue += s.t.REFI / int64(len(s.bankRow))
	return true
}

// tryIssue performs one FR-FCFS scheduling decision and returns the
// earliest cycle the command slot could next be usable, fusing the
// scheduling scan with the bound computation NextEvent needs (the two
// previously walked the queue separately every tick). When a command
// issues, the returned bound is now+1: the issue changed rank state
// mid-scan, and an extra tick is always harmless (NextEvent's contract),
// while in the loaded regime the following cycle usually issues anyway.
// When nothing issues, the bound is exact over the frozen state: the
// minimum over every candidate's gate-opening cycle, matching what
// nextIssueAt would compute.
//
// Every readiness check is a max-of-timestamps reduction over the
// precomputed gate vectors (casTurn/busFloor/actTurn) — the timing-rule
// case analysis runs once per issue (recompute*Gates), not once per
// scanned entry, so the inner loop is a predictable min/max reduction.
func (s *SubChannel) tryIssue(now int64) int64 {
	// Write-drain hysteresis.
	if s.draining {
		if s.writeQ.len() <= s.cfg.WriteLow {
			s.draining = false
		}
	} else if s.writeQ.len() >= s.cfg.WriteHigh {
		s.draining = true
	}

	useWrites := s.draining
	if !useWrites && s.readQ.len() == 0 && s.writeQ.len() > 0 {
		useWrites = true // opportunistic write issue on an idle read queue
	}

	q := &s.readQ
	isWrite := false
	if useWrites {
		q = &s.writeQ
		isWrite = true
	}
	keys := q.keys
	if len(keys) == 0 {
		return math.MaxInt64 // both queues empty: only arrivals create work
	}

	turn := &s.casTurn[b2i(isWrite)]
	busFloor := s.busFloorR
	if isWrite {
		busFloor = s.busFloorW
	}

	hitMask := s.hitMask(keys)

	earliest := int64(math.MaxInt64)

	// Starvation guard: when the oldest request has waited pathologically
	// long, serve it exclusively this slot (ignoring row-hit protection).
	if now-q.reqs[0].ArriveMC > s.starvationLimit {
		k0 := &keys[0]
		open0 := s.openMask&(1<<uint(k0.bnk)) != 0
		switch {
		case open0 && s.bankRow[k0.bnk] == k0.row:
			t := s.casReady[k0.bnk]
			if v := turn[b2i(k0.grp == s.lastCASGroup)]; v > t {
				t = v
			}
			if busFloor > t {
				t = busFloor
			}
			if t <= now {
				s.issueCAS(q, 0, isWrite, now)
				return now + 1
			}
		case !open0:
			if s.earliestACT(k0.bnk, k0.grp) <= now {
				s.issueACT(q, 0, now)
				return now + 1
			}
		default:
			if now >= s.preReady[k0.bnk] {
				if !q.seen[0] {
					q.seen[0] = true
					q.reqs[0].StartSvc = now
				}
				s.issuePRE(k0.bnk, now)
				return now + 1
			}
			// Protected-conflict oldest: the guard is the only path that
			// may precharge it, so its PRE window bounds the slot.
			if s.preReady[k0.bnk] < earliest {
				earliest = s.preReady[k0.bnk]
			}
		}
		// The oldest request's own timing blocks it; let others proceed.
	} else {
		// Guard not yet active: a protected-conflict oldest becomes
		// servable (via the guard's PRE) once its age crosses the limit.
		// Other classes are covered by the fused pass below, whose
		// candidates can only be earlier than the guard's.
		k0 := &keys[0]
		bit0 := uint64(1) << uint(k0.bnk)
		if s.openMask&bit0 != 0 && s.bankRow[k0.bnk] != k0.row && hitMask&bit0 != 0 {
			g := s.preReady[k0.bnk]
			if t0 := q.reqs[0].ArriveMC + s.starvationLimit + 1; g < t0 {
				g = t0
			}
			if g < earliest {
				earliest = g
			}
		}
	}

	// Single fused pass over the queue, preserving the priority order of
	// the former passes 1–3: the first issuable row-hit CAS wins outright
	// (scanning stops — nothing later can preempt it); otherwise the first
	// issuable closed-bank ACT, then the first issuable unprotected-
	// conflict PRE, are remembered while the scan completes (a later
	// issuable CAS still has priority over either).
	actIdx, preIdx := -1, -1
	for i := range keys {
		k := &keys[i]
		bit := uint64(1) << uint(k.bnk)
		open := s.openMask&bit != 0
		switch {
		case open && s.bankRow[k.bnk] == k.row:
			t := s.casReady[k.bnk]
			if v := turn[b2i(k.grp == s.lastCASGroup)]; v > t {
				t = v
			}
			if busFloor > t {
				t = busFloor
			}
			if t <= now {
				s.issueCAS(q, i, isWrite, now)
				return now + 1
			} else if t < earliest {
				earliest = t
			}
		case !open:
			if actIdx >= 0 {
				continue
			}
			if t := s.earliestACT(k.bnk, k.grp); t <= now {
				actIdx = i
			} else if t < earliest {
				earliest = t
			}
		case hitMask&bit == 0:
			if preIdx >= 0 {
				continue
			}
			if t := s.preReady[k.bnk]; t <= now {
				preIdx = i
			} else if t < earliest {
				earliest = t
			}
		default:
			// Conflict on a bank with protected row hits: unservable
			// until a CAS retires a queue entry (a tick of its own).
		}
	}

	if actIdx >= 0 {
		s.issueACT(q, actIdx, now)
		return now + 1
	}
	if preIdx >= 0 {
		if !q.seen[preIdx] {
			q.seen[preIdx] = true
			q.reqs[preIdx].StartSvc = now
		}
		s.issuePRE(keys[preIdx].bnk, now)
		return now + 1
	}

	// Pass 4 (idle precharge): spend an otherwise-wasted command slot
	// closing a bank that has been idle past the timeout and has no queued
	// row hits, so future random accesses skip the conflict precharge.
	if t := s.tryIdlePrecharge(now); t < earliest {
		earliest = t
	}
	return earliest
}

// idlePreTimeout is the open-row idle window before speculative precharge.
const idlePreTimeout = 120

// invalidBound marks issueBound as stale (any past cycle would do): the
// next normal tick rescans instead of trusting the cached bound. Set by
// the refresh paths, which mutate bank state without going through
// tryIssue.
const invalidBound = math.MinInt64

// tryIdlePrecharge closes one stale open bank, if any, and returns the
// earliest cycle a currently open, untargeted bank could become eligible
// (now+1 when a PRE issued). Banks targeted by any queued request — in
// either queue, tracked incrementally in targetCnt — are protected: a
// pending ACT would only be delayed by tRP anyway, and row hits would be
// thrown away. A fruitless scan caches the bound in idlePreAt so the
// per-cycle fast path is a single compare: re-scanning before it is
// provably fruitless because an untargeted bank's lastUse and preReady
// only ever move its eligibility later, banks opened after the scan are
// both targeted (their ACT served a queued entry) and fresh, closed banks
// drop out, and the one transition that could make a bank eligible
// *earlier* — losing its last targeting entry, which happens only when a
// CAS retires it — invalidates the cache at the issueCAS site.
func (s *SubChannel) tryIdlePrecharge(now int64) int64 {
	if s.openMask == 0 {
		return math.MaxInt64
	}
	if now < s.idlePreAt {
		return s.idlePreAt
	}
	start := s.idleScan
	earliest := int64(math.MaxInt64)
	// Candidates are exactly the open, untargeted banks; walk their mask
	// in the historical round-robin order (banks >= start ascending, then
	// the wrap-around below start) instead of probing every bank index.
	elig := s.openMask &^ s.targetMask
	hi := elig & (^uint64(0) << uint(start))
	for _, m := range [2]uint64{hi, elig &^ hi} {
		for ; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if now >= s.preReady[i] && now-s.lastUse[i] > idlePreTimeout {
				s.issuePRE(int32(i), now)
				s.idleScan = i + 1
				return now + 1
			}
			e := s.lastUse[i] + idlePreTimeout + 1
			if s.preReady[i] > e {
				e = s.preReady[i]
			}
			if e < earliest {
				earliest = e
			}
		}
	}
	s.idleScan = start
	s.idlePreAt = earliest
	return earliest
}

func (s *SubChannel) issueACT(q *reqQueue, i int, now int64) {
	k := &q.keys[i]
	bnk := k.bnk
	s.integrate(now)
	s.openMask |= 1 << uint(bnk)
	s.bankRow[bnk] = k.row
	s.lastUse[bnk] = now
	s.casReady[bnk] = now + s.t.RCD
	s.preReady[bnk] = now + s.t.RAS
	s.actReady[bnk] = now + s.t.RC
	s.actTimes[s.actIdx] = now
	s.actIdx = (s.actIdx + 1) % len(s.actTimes)
	s.lastActTime = now
	s.lastActGroup = k.grp
	s.recomputeACTGates()
	s.ctr.ACT++
	s.trace(CmdACT, bnk, k.grp, k.row, now)
	if !q.seen[i] {
		q.seen[i] = true
		q.reqs[i].StartSvc = now
	}
}

func (s *SubChannel) issuePRE(bnk int32, now int64) {
	s.integrate(now)
	s.openMask &^= 1 << uint(bnk)
	if a := now + s.t.RP; a > s.actReady[bnk] {
		s.actReady[bnk] = a
	}
	s.ctr.PRE++
	s.trace(CmdPRE, bnk, bnk/s.banksPerGrp, s.bankRow[bnk], now)
}

func (s *SubChannel) issueCAS(q *reqQueue, i int, isWrite bool, now int64) {
	k := q.keys[i]
	r := q.reqs[i]
	seen := q.seen[i]
	bnk := k.bnk
	lat := s.t.RL
	if isWrite {
		lat = s.t.WL
	}
	dataStart := now + lat
	dataEnd := dataStart + s.t.BURST
	s.lastUse[bnk] = now
	s.busFree = dataEnd
	s.lastCASTime = now
	s.lastCASGroup = k.grp
	s.lastCASWrite = isWrite
	s.recomputeCASGates()

	if !seen {
		r.StartSvc = now
		s.ctr.RowHits++
	} else {
		s.ctr.RowMisses++
	}
	r.DataDone = dataEnd

	if isWrite {
		// Write recovery gates the next PRE.
		if a := dataEnd + s.t.WR; a > s.preReady[bnk] {
			s.preReady[bnk] = a
		}
		s.ctr.WR++
		s.ctr.WriteBytes += memreq.LineSize
		s.trace(CmdWR, bnk, k.grp, k.row, now)
	} else {
		if a := now + s.t.RTP; a > s.preReady[bnk] {
			s.preReady[bnk] = a
		}
		s.ctr.RD++
		s.ctr.ReadBytes += memreq.LineSize
		s.trace(CmdRD, bnk, k.grp, k.row, now)
	}

	// Remove from queue preserving order.
	q.remove(i)
	if s.targetCnt[bnk]--; s.targetCnt[bnk] == 0 {
		s.targetMask &^= 1 << uint(bnk)
		// The bank lost its last targeting entry: it joins the
		// idle-precharge candidate set, so fold its eligibility — exactly
		// computable here, since this CAS just set lastUse=now and any
		// recovery-window push to preReady happened above — into the
		// cached bound rather than forcing a rescan.
		t := now + idlePreTimeout + 1
		if s.preReady[bnk] > t {
			t = s.preReady[bnk]
		}
		if t < s.idlePreAt {
			s.idlePreAt = t
		}
	}

	if r.Ret != nil {
		s.completions.Push(dataEnd, r)
	} else if s.collectRetired {
		s.retired = append(s.retired, r)
	}
}

// Idle reports whether the sub-channel has no queued work, arrivals, or
// completions outstanding (used by drain loops).
func (s *SubChannel) Idle() bool {
	return s.readQ.len() == 0 && s.writeQ.len() == 0 &&
		s.arrivals.Len() == 0 && s.completions.Len() == 0 &&
		s.pendingR == 0 && s.pendingW == 0
}
