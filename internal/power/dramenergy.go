package power

import (
	"coaxial/internal/clock"
	"coaxial/internal/dram"
)

// Counter-based DRAM energy integration, DRAMSim3-style: each command
// class carries an energy cost derived from DDR5 IDD current specs, plus
// background power split by bank state. This complements the Table V
// utilization fit (Compute) with a first-principles model driven by the
// simulator's activity counters.
//
// Energy constants are per 32-bit sub-channel device rank at VDD = 1.1 V,
// derived from Micron DDR5-4800 datasheet currents (order-of-magnitude
// faithful; the paper's absolute DIMM numbers come from DRAMSim3's model of
// a 32 GB RDIMM, which these constants approximate within ~15%).
const (
	// EnergyACTpJ is the ACT+PRE pair energy per bank activation
	// (~2 nJ to open and close an 8 KiB row).
	EnergyACTpJ = 2_000.0
	// EnergyRDpJ is a 64B read burst's energy at ~22 pJ/bit
	// (column access + IO drive).
	EnergyRDpJ = 11_000.0
	// EnergyWRpJ is a 64B write burst's energy.
	EnergyWRpJ = 11_500.0
	// EnergyREFpJ is one all-bank refresh command's energy (IDD5 burst
	// over tRFC for a 16 Gb device).
	EnergyREFpJ = 150_000.0
	// PowerActStandbyMW is background power per open bank (mW); a fully
	// active rank draws ~70 mW of active standby.
	PowerActStandbyMW = 2.2
	// PowerPreStandbyMW is background power per closed bank (mW);
	// ~51 mW per precharged rank.
	PowerPreStandbyMW = 1.6
)

// DRAMEnergy summarizes integrated DRAM energy over a window.
type DRAMEnergy struct {
	ActivatePJ   float64
	ReadPJ       float64
	WritePJ      float64
	RefreshPJ    float64
	BackgroundPJ float64
}

// TotalPJ sums all components.
func (e DRAMEnergy) TotalPJ() float64 {
	return e.ActivatePJ + e.ReadPJ + e.WritePJ + e.RefreshPJ + e.BackgroundPJ
}

// AveragePowerW converts the integrated energy over windowCycles of the
// core clock (clock.FreqGHz) into average watts.
func (e DRAMEnergy) AveragePowerW(windowCycles int64) float64 {
	if windowCycles <= 0 {
		return 0
	}
	seconds := float64(windowCycles) / (clock.FreqGHz * 1e9)
	return e.TotalPJ() * 1e-12 / seconds
}

// IntegrateDRAM computes energy from a sub-channel's (or aggregated
// channel's) activity counters over windowCycles. banks is the total bank
// count behind the counters (32 per sub-channel).
func IntegrateDRAM(c dram.Counters, windowCycles int64, banks int) DRAMEnergy {
	var e DRAMEnergy
	e.ActivatePJ = float64(c.ACT) * EnergyACTpJ
	e.ReadPJ = float64(c.RD) * EnergyRDpJ
	e.WritePJ = float64(c.WR) * EnergyWRpJ
	e.RefreshPJ = float64(c.REF) * EnergyREFpJ
	if windowCycles > 0 && banks > 0 {
		nsPerCycle := 1.0 / clock.FreqGHz
		activeBankNS := float64(c.ActiveBankCycles) * nsPerCycle
		totalBankNS := float64(windowCycles) * float64(banks) * nsPerCycle
		idleBankNS := totalBankNS - activeBankNS
		if idleBankNS < 0 {
			idleBankNS = 0
		}
		// mW * ns = pJ.
		e.BackgroundPJ = activeBankNS*PowerActStandbyMW + idleBankNS*PowerPreStandbyMW
	}
	return e
}
