// Package power implements the paper's §VI-F energy model: the 144-core
// full-system power ledger (Table V) and the EDP / ED²P efficiency metrics,
// scaled from the 12-core simulation's measured utilization and CPI.
package power

// Constants of the Table V ledger (watts, 144-core server).
const (
	// CommonPowerW covers cores, L1 and L2 (500 W TDP minus DDR MC/PHY
	// and LLC shares).
	CommonPowerW = 393.0
	// DDRInterfaceWPerChannel is MC + PHY power per DDR5 channel.
	DDRInterfaceWPerChannel = 13.0 / 12.0
	// LLCPowerWPerMB is leakage + access power per MB of LLC (Cacti 7.0 @
	// 22 nm; 94 W for the baseline's 288 MB).
	LLCPowerWPerMB = 94.0 / 288.0
	// PCIeLaneW is PCIe 5.0 interface power per lane (idle + dynamic).
	PCIeLaneW = 0.2
)

// DIMM power model: a linear idle + utilization fit to DRAMSim3's model of
// a 32 GB DDR5-4800 RDIMM, anchored at the paper's ledger (146 W for 12
// DIMMs at the baseline's utilization, 358 W for 48 DIMMs at COAXIAL's).
const (
	DIMMIdleW        = 5.2
	DIMMActiveSlopeW = 12.9 // additional watts at 100% channel utilization
)

// SystemSpec describes the scaled-up (144-core) configuration whose power
// is being modelled.
type SystemSpec struct {
	Name string
	// DDRChannels is the total DRAM channel (= DIMM) count.
	DDRChannels int
	// CXLLanes is the total PCIe lane count (0 for the DDR baseline).
	CXLLanes int
	// LLCMB is total LLC capacity.
	LLCMB float64
}

// Baseline144 is Table V's baseline column: 12 DDR channels, 288 MB LLC.
func Baseline144() SystemSpec {
	return SystemSpec{Name: "DDR-based", DDRChannels: 12, LLCMB: 288}
}

// Coaxial144 is Table V's COAXIAL column: 48 DDR channels behind 48 x8 CXL
// channels (384 lanes), 144 MB LLC.
func Coaxial144() SystemSpec {
	return SystemSpec{Name: "COAXIAL", DDRChannels: 48, CXLLanes: 384, LLCMB: 144}
}

// Ledger itemizes system power (Table V rows).
type Ledger struct {
	CommonW       float64
	DDRInterfaceW float64
	LLCW          float64
	CXLInterfaceW float64
	DIMMW         float64
}

// TotalW sums the ledger.
func (l Ledger) TotalW() float64 {
	return l.CommonW + l.DDRInterfaceW + l.LLCW + l.CXLInterfaceW + l.DIMMW
}

// Compute builds the ledger for a system at the measured average
// per-channel DRAM utilization (0..1).
func Compute(spec SystemSpec, channelUtilization float64) Ledger {
	if channelUtilization < 0 {
		channelUtilization = 0
	}
	if channelUtilization > 1 {
		channelUtilization = 1
	}
	return Ledger{
		CommonW:       CommonPowerW,
		DDRInterfaceW: float64(spec.DDRChannels) * DDRInterfaceWPerChannel,
		LLCW:          spec.LLCMB * LLCPowerWPerMB,
		CXLInterfaceW: float64(spec.CXLLanes) * PCIeLaneW,
		DIMMW:         float64(spec.DDRChannels) * (DIMMIdleW + DIMMActiveSlopeW*channelUtilization),
	}
}

// Metrics are the paper's efficiency figures of merit.
type Metrics struct {
	PowerW    float64
	CPI       float64
	PerfPerW  float64 // 1/(CPI*power), arbitrary units
	EDP       float64 // power * CPI^2 (lower is better)
	ED2P      float64 // power * CPI^3 (lower is better)
	RelPerfW  float64 // vs a reference, filled by Compare
	RelEDP    float64
	RelED2P   float64
	RelFilled bool
}

// Evaluate computes the metrics for a ledger at the measured CPI.
func Evaluate(l Ledger, cpi float64) Metrics {
	p := l.TotalW()
	m := Metrics{PowerW: p, CPI: cpi}
	if cpi > 0 && p > 0 {
		m.PerfPerW = 1 / (cpi * p)
		m.EDP = p * cpi * cpi
		m.ED2P = p * cpi * cpi * cpi
	}
	return m
}

// Compare fills the relative columns of `m` against a reference system.
func Compare(m, ref Metrics) Metrics {
	if ref.PerfPerW > 0 {
		m.RelPerfW = m.PerfPerW / ref.PerfPerW
	}
	if m.EDP > 0 && ref.EDP > 0 {
		m.RelEDP = m.EDP / ref.EDP
	}
	if m.ED2P > 0 && ref.ED2P > 0 {
		m.RelED2P = m.ED2P / ref.ED2P
	}
	m.RelFilled = true
	return m
}
