package power

import (
	"math"
	"testing"
	"testing/quick"

	"coaxial/internal/dram"
)

func TestLedgerComponentsNearPaper(t *testing.T) {
	// At the paper's measured utilizations (54% baseline, COAXIAL lower
	// per channel), the ledger should land near Table V's rows.
	base := Compute(Baseline144(), 0.54)
	// COAXIAL moves ~1.3x the absolute traffic over 4x the channels:
	// per-channel utilization ~0.17.
	coax := Compute(Coaxial144(), 0.17)

	checks := []struct {
		name       string
		got, want  float64
		tolPercent float64
	}{
		{"base common", base.CommonW, 393, 1},
		{"base DDR if", base.DDRInterfaceW, 13, 1},
		{"base LLC", base.LLCW, 94, 1},
		{"base CXL", base.CXLInterfaceW, 0, 0.1},
		{"base DIMM", base.DIMMW, 146, 12},
		{"base total", base.TotalW(), 646, 5},
		{"coax DDR if", coax.DDRInterfaceW, 52, 1},
		{"coax LLC", coax.LLCW, 51, 10},
		{"coax CXL", coax.CXLInterfaceW, 77, 1},
		{"coax DIMM", coax.DIMMW, 358, 15},
		{"coax total", coax.TotalW(), 931, 6},
	}
	for _, c := range checks {
		tol := c.want * c.tolPercent / 100
		if tol == 0 {
			tol = 0.5
		}
		if math.Abs(c.got-c.want) > tol {
			t.Errorf("%s = %.1f W, want %.0f W (±%.0f%%)", c.name, c.got, c.want, c.tolPercent)
		}
	}
}

func TestTableVHeadlineMetrics(t *testing.T) {
	// Paper CPIs: baseline 2.05, COAXIAL 1.48 -> EDP 0.75x, ED2P 0.53x,
	// perf/W 0.96.
	b := Evaluate(Compute(Baseline144(), 0.54), 2.05)
	c := Compare(Evaluate(Compute(Coaxial144(), 0.17), 1.48), b)
	if c.RelEDP < 0.68 || c.RelEDP > 0.82 {
		t.Errorf("relative EDP %.2f, paper 0.75", c.RelEDP)
	}
	if c.RelED2P < 0.46 || c.RelED2P > 0.60 {
		t.Errorf("relative ED2P %.2f, paper 0.53", c.RelED2P)
	}
	if c.RelPerfW < 0.90 || c.RelPerfW > 1.02 {
		t.Errorf("relative perf/W %.2f, paper 0.96", c.RelPerfW)
	}
}

func TestEvaluateMath(t *testing.T) {
	l := Ledger{CommonW: 100}
	m := Evaluate(l, 2)
	if m.EDP != 400 || m.ED2P != 800 {
		t.Errorf("EDP=%v ED2P=%v", m.EDP, m.ED2P)
	}
	if m.PerfPerW != 1.0/200 {
		t.Errorf("perf/W = %v", m.PerfPerW)
	}
	z := Evaluate(l, 0)
	if z.EDP != 0 || z.PerfPerW != 0 {
		t.Error("zero CPI guard")
	}
}

func TestCompareSelfIsUnity(t *testing.T) {
	m := Evaluate(Compute(Baseline144(), 0.5), 2)
	c := Compare(m, m)
	if c.RelEDP != 1 || c.RelED2P != 1 || c.RelPerfW != 1 || !c.RelFilled {
		t.Errorf("self-compare: %+v", c)
	}
}

func TestUtilizationClamped(t *testing.T) {
	lo := Compute(Baseline144(), -1)
	hi := Compute(Baseline144(), 2)
	if lo.DIMMW != Compute(Baseline144(), 0).DIMMW {
		t.Error("negative utilization not clamped")
	}
	if hi.DIMMW != Compute(Baseline144(), 1).DIMMW {
		t.Error("over-unity utilization not clamped")
	}
}

func TestDIMMPowerMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		ua := float64(a) / 255
		ub := float64(b) / 255
		if ua > ub {
			ua, ub = ub, ua
		}
		return Compute(Baseline144(), ua).DIMMW <= Compute(Baseline144(), ub).DIMMW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEDPMonotoneInCPI(t *testing.T) {
	l := Compute(Baseline144(), 0.5)
	f := func(a, b uint8) bool {
		ca := float64(a)/64 + 0.1
		cb := float64(b)/64 + 0.1
		if ca > cb {
			ca, cb = cb, ca
		}
		return Evaluate(l, ca).EDP <= Evaluate(l, cb).EDP
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntegrateDRAMComponents(t *testing.T) {
	c := dram.Counters{ACT: 100, RD: 200, WR: 50, REF: 2, ActiveBankCycles: 10_000}
	e := IntegrateDRAM(c, 100_000, 32)
	if e.ActivatePJ != 100*EnergyACTpJ || e.ReadPJ != 200*EnergyRDpJ || e.WritePJ != 50*EnergyWRpJ {
		t.Errorf("command energies: %+v", e)
	}
	if e.RefreshPJ != 2*EnergyREFpJ {
		t.Errorf("refresh energy: %v", e.RefreshPJ)
	}
	if e.BackgroundPJ <= 0 {
		t.Error("background energy missing")
	}
	if e.TotalPJ() <= e.ActivatePJ {
		t.Error("total must exceed any component")
	}
	if e.AveragePowerW(100_000) <= 0 {
		t.Error("average power")
	}
	if e.AveragePowerW(0) != 0 {
		t.Error("zero-window guard")
	}
}

func TestIntegrateDRAMBaselinePlausible(t *testing.T) {
	// A sub-channel at ~80% utilization for 1 ms: energy-model power
	// should land in the plausible per-device-rank band (0.2-3 W).
	const window = 2_400_000 // 1 ms
	// 80% bus utilization: one 64B line per 8 cycles at 100%.
	lines := uint64(float64(window) * 0.8 / 8)
	c := dram.Counters{
		ACT:              lines / 3,
		RD:               lines * 2 / 3,
		WR:               lines / 3,
		REF:              uint64(window / 9360),
		ActiveBankCycles: uint64(window * 8), // ~8 banks open on average
	}
	p := IntegrateDRAM(c, window, 32).AveragePowerW(window)
	// Half a DIMM's DRAM devices at high load: ~1-4 W.
	if p < 1 || p > 4 {
		t.Errorf("sub-channel power %.2f W outside plausible band", p)
	}
}

func TestBackgroundFloorWhenIdle(t *testing.T) {
	e := IntegrateDRAM(dram.Counters{}, 2_400_000, 32)
	if e.BackgroundPJ <= 0 {
		t.Error("idle rank must still draw precharge standby power")
	}
	if e.ActivatePJ+e.ReadPJ+e.WritePJ+e.RefreshPJ != 0 {
		t.Error("no commands -> no dynamic energy")
	}
}
