package power

import (
	"math"
	"testing"

	"coaxial/internal/clock"
	"coaxial/internal/dram"
)

// TestDRAMEnergyTracksClock pins the wall-time conversions in the energy
// model to the single clock constant: every expected value below is
// expressed through clock.FreqGHz, so a frequency change (or a reintroduced
// hardcoded 2.4) shows up as a mismatch here rather than as a silently
// skewed power number.
func TestDRAMEnergyTracksClock(t *testing.T) {
	const windowCycles = int64(1_000_000)

	// Average power: E/t with t derived from the clock.
	e := DRAMEnergy{ReadPJ: 3e6}
	seconds := float64(windowCycles) / (clock.FreqGHz * 1e9)
	wantW := 3e6 * 1e-12 / seconds
	if got := e.AveragePowerW(windowCycles); math.Abs(got-wantW) > 1e-15 {
		t.Errorf("AveragePowerW = %v, want %v (from clock.FreqGHz=%v)", got, wantW, clock.FreqGHz)
	}

	// Background energy: bank-cycles convert to ns through the same
	// constant. One bank, half the window active.
	c := dram.Counters{ActiveBankCycles: uint64(windowCycles / 2)}
	nsPerCycle := 1.0 / clock.FreqGHz
	activeNS := float64(windowCycles/2) * nsPerCycle
	idleNS := float64(windowCycles)*nsPerCycle - activeNS
	wantBG := activeNS*PowerActStandbyMW + idleNS*PowerPreStandbyMW
	got := IntegrateDRAM(c, windowCycles, 1)
	if math.Abs(got.BackgroundPJ-wantBG) > 1e-6 {
		t.Errorf("BackgroundPJ = %v, want %v (from clock.FreqGHz=%v)", got.BackgroundPJ, wantBG, clock.FreqGHz)
	}

	// Cross-check the composition: a rank that is active the whole window
	// must draw exactly the active-standby power regardless of frequency,
	// because the ns terms cancel in E/t. This catches a conversion applied
	// on one side but not the other.
	full := IntegrateDRAM(dram.Counters{ActiveBankCycles: uint64(windowCycles)}, windowCycles, 1)
	wantFull := PowerActStandbyMW * 1e-3
	if gotW := full.AveragePowerW(windowCycles); math.Abs(gotW-wantFull) > 1e-12 {
		t.Errorf("fully-active bank power = %v W, want %v W", gotW, wantFull)
	}
}
