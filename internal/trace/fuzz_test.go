package trace

import (
	"bytes"
	"testing"
)

// FuzzReader: arbitrary bytes must never panic the trace reader; it either
// rejects the header or degrades to no-ops with Err set.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace and mutations of it.
	w, _ := WorkloadByName("pop2")
	gen := NewSynthetic(w.Params, 1<<40, 1)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 200); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("CXTR"))
	f.Add([]byte{})
	f.Add([]byte("CXTR\x01\x00\x04\x00abcd\xff\xff\xff\xff\xff\xff"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine
		}
		var ins Instr
		for i := 0; i < 500; i++ {
			r.Next(&ins)
			if ins.ExecLat < 1 && !ins.IsMem {
				t.Fatalf("invalid decoded instruction: %+v", ins)
			}
		}
	})
}

// FuzzParseTrace: parse arbitrary byte streams as recorded traces, seeded
// with real recordings of the workloads the examples replay (stream-copy,
// gcc, PageRank) and targeted corruptions of them. Beyond "never panic",
// it pins the degraded-mode contract: once a decode error sets Err, the
// error sticks, Next keeps yielding well-formed no-op instructions, and
// the trace name stays readable.
func FuzzParseTrace(f *testing.F) {
	for _, wname := range []string{"stream-copy", "gcc", "PageRank"} {
		w, err := WorkloadByName(wname)
		if err != nil {
			f.Fatal(err)
		}
		gen := NewSynthetic(w.Params, 1<<40, 1)
		var buf bytes.Buffer
		if err := Record(&buf, gen, 300); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		f.Add(valid[:len(valid)-3]) // truncated mid-record
		if len(valid) > 40 {
			corrupt := append([]byte(nil), valid...)
			corrupt[len(corrupt)/2] ^= 0xff // flipped payload byte
			f.Add(corrupt)
			f.Add(corrupt[:40]) // corrupted and truncated
		}
	}
	f.Add([]byte{})
	f.Add([]byte("CXTR"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected at the header: fine
		}
		_ = r.Name()
		var ins Instr
		var firstErr error
		for i := 0; i < 1000; i++ {
			r.Next(&ins)
			if ins.ExecLat < 1 && !ins.IsMem {
				t.Fatalf("step %d: invalid decoded instruction: %+v", i, ins)
			}
			if firstErr == nil {
				firstErr = r.Err
			} else if r.Err != firstErr {
				t.Fatalf("step %d: Err changed after first failure: %v -> %v", i, firstErr, r.Err)
			}
		}
	})
}

// FuzzRoundTrip: any instruction sequence encodes and decodes losslessly
// (modulo dropped non-mem PC/Addr).
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(100))
	f.Add(uint64(42), uint16(999))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16) {
		n := int(nRaw%500) + 1
		p := Params{Name: "fz", MemFrac: 0.4, StoreFrac: 0.3, WSBytes: 1 << 20,
			HotFrac: 0.3, StreamFrac: 0.4, DepFrac: 0.2}
		gen := NewSynthetic(p, 1<<40, seed)
		ref := NewSynthetic(p, 1<<40, seed)
		var buf bytes.Buffer
		if err := Record(&buf, gen, uint64(n)); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var got, want Instr
		for i := 0; i < n; i++ {
			ref.Next(&want)
			r.Next(&got)
			if !want.IsMem {
				want.PC, want.Addr = 0, 0
			}
			if got != want {
				t.Fatalf("instr %d mismatch: %+v vs %+v", i, got, want)
			}
		}
	})
}
