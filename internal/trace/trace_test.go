package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func collect(p Params, n int, seed uint64) []Instr {
	g := NewSynthetic(p, 1<<40, seed)
	out := make([]Instr, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func TestDeterminism(t *testing.T) {
	p := Params{Name: "x", MemFrac: 0.3, StoreFrac: 0.2, WSBytes: 1 << 20, HotFrac: 0.5, StreamFrac: 0.5, DepFrac: 0.2}
	a := collect(p, 5000, 7)
	b := collect(p, 5000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs across identical seeds", i)
		}
	}
	c := collect(p, 5000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestMemFracEmpirical(t *testing.T) {
	for _, mf := range []float64{0.1, 0.3, 0.5} {
		p := Params{Name: "x", MemFrac: mf, WSBytes: 1 << 20}
		ins := collect(p, 40_000, 3)
		mem := 0
		for _, i := range ins {
			if i.IsMem {
				mem++
			}
		}
		got := float64(mem) / float64(len(ins))
		if math.Abs(got-mf) > 0.02 {
			t.Errorf("MemFrac %.2f: empirical %.3f", mf, got)
		}
	}
}

func TestStoreFracEmpirical(t *testing.T) {
	p := Params{Name: "x", MemFrac: 0.5, StoreFrac: 0.3, WSBytes: 1 << 20}
	ins := collect(p, 40_000, 5)
	mem, stores := 0, 0
	for _, i := range ins {
		if i.IsMem {
			mem++
			if i.IsStore {
				stores++
			}
		}
	}
	got := float64(stores) / float64(mem)
	if math.Abs(got-0.3) > 0.03 {
		t.Errorf("StoreFrac empirical %.3f, want 0.3", got)
	}
}

func TestAddressesWithinSpace(t *testing.T) {
	p := Params{Name: "x", MemFrac: 0.5, StoreFrac: 0.3, WSBytes: 4 << 20, HotFrac: 0.3, StreamFrac: 0.5}
	base := uint64(3) << 40
	g := NewSynthetic(p, base, 9)
	var ins Instr
	for i := 0; i < 20_000; i++ {
		g.Next(&ins)
		if !ins.IsMem {
			continue
		}
		if ins.Addr < base || ins.Addr >= base+p.WSBytes {
			t.Fatalf("address %#x outside [base, base+WS)", ins.Addr)
		}
	}
}

func TestStreamsAdvanceSequentially(t *testing.T) {
	p := Params{Name: "x", MemFrac: 1.0, StoreFrac: 0, WSBytes: 1 << 20, StreamFrac: 1.0, Streams: 1, ElemStride: 64}
	g := NewSynthetic(p, 0, 1)
	var prev uint64
	var ins Instr
	g.Next(&ins)
	prev = ins.Addr
	for i := 0; i < 1000; i++ {
		g.Next(&ins)
		if ins.Addr != prev+64 && ins.Addr != 0 { // wrap allowed
			t.Fatalf("stream jumped from %#x to %#x", prev, ins.Addr)
		}
		prev = ins.Addr
	}
}

func TestStoreStreamsDisjointFromLoadStreams(t *testing.T) {
	p := Params{Name: "x", MemFrac: 1.0, StoreFrac: 0.5, WSBytes: 1 << 20, StreamFrac: 1.0, Streams: 2, ElemStride: 64}
	g := NewSynthetic(p, 0, 1)
	loadLines := map[uint64]bool{}
	storeLines := map[uint64]bool{}
	var ins Instr
	for i := 0; i < 4000; i++ {
		g.Next(&ins)
		line := ins.Addr >> 6
		if ins.IsStore {
			storeLines[line] = true
		} else {
			loadLines[line] = true
		}
	}
	for l := range storeLines {
		if loadLines[l] {
			t.Fatalf("line %#x touched by both load and store streams", l)
		}
	}
}

func TestDependentOnlyOnColdRandomLoads(t *testing.T) {
	p := Params{Name: "x", MemFrac: 0.5, StoreFrac: 0.3, WSBytes: 1 << 22, HotFrac: 0.4, StreamFrac: 0.3, DepFrac: 1.0}
	g := NewSynthetic(p, 0, 2)
	var ins Instr
	deps := 0
	for i := 0; i < 20_000; i++ {
		g.Next(&ins)
		if ins.Dependent {
			deps++
			if ins.IsStore || !ins.IsMem {
				t.Fatal("dependency on a store or non-memory instruction")
			}
		}
	}
	if deps == 0 {
		t.Error("DepFrac 1.0 produced no dependent loads")
	}
}

func TestBurstModulation(t *testing.T) {
	p := Params{Name: "x", MemFrac: 0.2, WSBytes: 1 << 20, BurstOn: 1000, BurstOff: 1000}
	g := NewSynthetic(p, 0, 3)
	var ins Instr
	window := make([]int, 40) // mem ops per 1000-instruction window
	for w := 0; w < 40; w++ {
		for i := 0; i < 1000; i++ {
			g.Next(&ins)
			if ins.IsMem {
				window[w]++
			}
		}
	}
	// Alternating windows should be strongly bimodal.
	lo, hi := 0, 0
	for _, c := range window {
		if c < 100 {
			lo++
		}
		if c > 300 {
			hi++
		}
	}
	if lo < 15 || hi < 15 {
		t.Errorf("burst modulation not bimodal: lo=%d hi=%d (counts %v)", lo, hi, window[:8])
	}
	// Average should still be near MemFrac.
	total := 0
	for _, c := range window {
		total += c
	}
	avg := float64(total) / 40000
	if math.Abs(avg-0.2) > 0.04 {
		t.Errorf("burst average MemFrac %.3f, want ~0.2", avg)
	}
}

func TestPCStability(t *testing.T) {
	p := Params{Name: "x", MemFrac: 0.5, StoreFrac: 0.2, WSBytes: 1 << 22, HotFrac: 0.3, StreamFrac: 0.3}
	g := NewSynthetic(p, 0, 4)
	var ins Instr
	pcs := map[uint64]bool{}
	for i := 0; i < 50_000; i++ {
		g.Next(&ins)
		pcs[ins.PC] = true
	}
	if len(pcs) > 256 {
		t.Errorf("PC pool too large for PC-indexed prediction: %d distinct PCs", len(pcs))
	}
	if len(pcs) < 8 {
		t.Errorf("suspiciously few PCs: %d", len(pcs))
	}
}

func TestWorkloadTable(t *testing.T) {
	ws := Workloads()
	if len(ws) != 36 {
		t.Fatalf("suite has %d workloads, want 36", len(ws))
	}
	seen := map[string]bool{}
	suites := map[Suite]int{}
	for _, w := range ws {
		p := w.Params
		if seen[p.Name] {
			t.Errorf("duplicate workload %q", p.Name)
		}
		seen[p.Name] = true
		suites[w.Suite]++
		if p.MemFrac <= 0 || p.MemFrac > 0.95 {
			t.Errorf("%s: MemFrac %v out of range", p.Name, p.MemFrac)
		}
		if p.StoreFrac < 0 || p.StoreFrac > 1 {
			t.Errorf("%s: StoreFrac %v", p.Name, p.StoreFrac)
		}
		if p.HotFrac < 0 || p.HotFrac >= 1 {
			t.Errorf("%s: HotFrac %v", p.Name, p.HotFrac)
		}
		if p.WSBytes < 1<<20 {
			t.Errorf("%s: working set %d too small", p.Name, p.WSBytes)
		}
		if w.PaperIPC <= 0 || w.PaperMPKI <= 0 {
			t.Errorf("%s: missing paper reference values", p.Name)
		}
		// Every workload must generate cleanly.
		g := NewSynthetic(p, 1<<40, 1)
		var ins Instr
		for i := 0; i < 1000; i++ {
			g.Next(&ins)
		}
	}
	if suites[SuiteSPEC] != 12 || suites[SuiteStream] != 4 || suites[SuiteParsec] != 5 || suites[SuiteKVS] != 2 || suites[SuiteLigra] != 13 {
		t.Errorf("suite composition: %v", suites)
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("lbm")
	if err != nil || w.Params.Name != "lbm" {
		t.Errorf("lookup failed: %v", err)
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Error("unknown workload must error")
	}
	names := Names()
	if len(names) != 36 || names[0] != "lbm" {
		t.Errorf("names: %d entries, first %q", len(names), names[0])
	}
}

func TestMixDeterministicAndValid(t *testing.T) {
	a := Mix(3, 12)
	b := Mix(3, 12)
	if len(a) != 12 {
		t.Fatalf("mix size %d", len(a))
	}
	for i := range a {
		if a[i].Params.Name != b[i].Params.Name {
			t.Fatal("mix not deterministic")
		}
	}
	c := Mix(4, 12)
	diff := false
	for i := range a {
		if a[i].Params.Name != c[i].Params.Name {
			diff = true
		}
	}
	if !diff {
		t.Error("different mix indices produced identical assignments")
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{Name: "d"}.withDefaults()
	if p.HotBytes == 0 || p.Streams == 0 || p.ElemStride == 0 || p.ExecLat == 0 || p.WSBytes == 0 {
		t.Errorf("defaults not filled: %+v", p)
	}
}

func TestRNGQuality(t *testing.T) {
	// f64 must be in [0,1) and roughly uniform.
	r := newRNG(123)
	var sum float64
	const n = 100_000
	for i := 0; i < n; i++ {
		v := r.f64()
		if v < 0 || v >= 1 {
			t.Fatalf("f64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("rng mean %.4f", mean)
	}
	// Zero seed must not produce a stuck generator.
	z := newRNG(0)
	if z.next() == z.next() {
		t.Error("zero-seeded rng stuck")
	}
}

func TestInstrGenerationProperty(t *testing.T) {
	// For any parameter combination, generated instructions are
	// well-formed: line-aligned mem addresses within the space, positive
	// exec latency.
	f := func(memF, storeF, hotF, streamF uint8, seed uint64) bool {
		p := Params{
			Name:       "q",
			MemFrac:    float64(memF%90) / 100,
			StoreFrac:  float64(storeF%100) / 100,
			HotFrac:    float64(hotF%99) / 100,
			StreamFrac: float64(streamF%100) / 100,
			WSBytes:    2 << 20,
		}
		g := NewSynthetic(p, 1<<40, seed)
		var ins Instr
		for i := 0; i < 300; i++ {
			g.Next(&ins)
			if ins.IsMem {
				if ins.Addr < 1<<40 || ins.Addr >= (1<<40)+p.WSBytes {
					return false
				}
			} else if ins.ExecLat < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
