package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file implements a compact binary trace format so instruction
// streams can be recorded once and replayed deterministically — the same
// workflow as the paper's artifact, which replays ChampSim traces. A
// recorded trace also lets non-Go tooling generate workloads for this
// simulator.
//
// Format (little-endian):
//
//	header:  magic "CXTR" | u16 version | u16 name length | name bytes
//	records: one per instruction, tagged by a flag byte:
//	         bit0 IsMem, bit1 IsStore, bit2 Dependent
//	         non-mem:  flags(0) | u8 execLat
//	         mem:      flags | u8 execLat | uvarint addrDelta(zigzag)
//	                   | uvarint pcIndex
//
// Memory addresses are delta-encoded (zigzag) against the previous memory
// address; PCs are dictionary-encoded (uvarint index into a table built in
// first-use order), keeping streams a few bytes per instruction.
// Non-memory instructions carry only their execution latency — the core
// model never reads their PC or address.

const (
	traceMagic   = "CXTR"
	traceVersion = 1

	flagMem       = 1 << 0
	flagStore     = 1 << 1
	flagDependent = 1 << 2
)

// Writer streams instructions to a trace file.
type Writer struct {
	w        *bufio.Writer
	prevAddr uint64
	pcIndex  map[uint64]uint64
	pcs      []uint64
	count    uint64
	err      error
}

// NewWriter writes a trace header for the named workload.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], traceVersion)
	if len(name) > 1<<15 {
		return nil, fmt.Errorf("trace: workload name too long (%d bytes)", len(name))
	}
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &Writer{w: bw, pcIndex: make(map[uint64]uint64)}, nil
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

// unzigzag decodes.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Write appends one instruction.
func (t *Writer) Write(ins Instr) error {
	if t.err != nil {
		return t.err
	}
	var flags byte
	if ins.IsMem {
		flags |= flagMem
	}
	if ins.IsStore {
		flags |= flagStore
	}
	if ins.Dependent {
		flags |= flagDependent
	}
	lat := ins.ExecLat
	if lat < 1 {
		lat = 1
	}
	buf := make([]byte, 0, 2+2*binary.MaxVarintLen64)
	buf = append(buf, flags, byte(lat))
	if ins.IsMem {
		buf = binary.AppendUvarint(buf, zigzag(int64(ins.Addr)-int64(t.prevAddr)))
		t.prevAddr = ins.Addr
		idx, ok := t.pcIndex[ins.PC]
		if !ok {
			idx = uint64(len(t.pcs))
			t.pcIndex[ins.PC] = idx
			t.pcs = append(t.pcs, ins.PC)
			// First use: emit the index with the high bit pattern
			// (idx*2+1) followed by the literal PC; repeats emit idx*2.
			buf = binary.AppendUvarint(buf, idx*2+1)
			buf = binary.AppendUvarint(buf, ins.PC)
		} else {
			buf = binary.AppendUvarint(buf, idx*2)
		}
	}
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
		return err
	}
	t.count++
	return nil
}

// Count returns instructions written so far.
func (t *Writer) Count() uint64 { return t.count }

// Flush drains buffered output.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Record captures n instructions from a generator into w.
func Record(w io.Writer, g Generator, n uint64) error {
	tw, err := NewWriter(w, g.Name())
	if err != nil {
		return err
	}
	var ins Instr
	for i := uint64(0); i < n; i++ {
		g.Next(&ins)
		if err := tw.Write(ins); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Reader replays a recorded trace as a Generator. When the trace is
// exhausted it either loops (rewinding requires an io.ReadSeeker) or, for
// plain readers, repeats the final instruction stream from an in-memory
// ring of the last instructions — callers that need faithful looping
// should pass a ReadSeeker.
type Reader struct {
	name     string
	br       *bufio.Reader
	seeker   io.ReadSeeker
	bodyOff  int64
	prevAddr uint64
	pcs      []uint64
	// Err records the first decode error; the Reader degrades to
	// repeating no-ops so simulation code need not handle mid-run errors.
	Err error
}

// NewReader parses the header. The reader must be positioned at the start
// of the trace. If r is an io.ReadSeeker the trace loops seamlessly.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, errors.New("trace: bad magic (not a CXTR trace)")
	}
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[2:4]))
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Reader{name: string(name), br: br}
	if s, ok := r.(io.ReadSeeker); ok {
		t.seeker = s
		t.bodyOff = int64(4 + 4 + nameLen)
	}
	return t, nil
}

// Name implements Generator.
func (t *Reader) Name() string { return t.name }

// rewind restarts the trace body (loop replay).
func (t *Reader) rewind() bool {
	if t.seeker == nil {
		return false
	}
	if _, err := t.seeker.Seek(t.bodyOff, io.SeekStart); err != nil {
		t.Err = err
		return false
	}
	t.br.Reset(t.seeker)
	t.prevAddr = 0
	t.pcs = t.pcs[:0]
	return true
}

// Next implements Generator. On EOF the trace loops (with a ReadSeeker) or
// degrades to no-ops; decode errors also degrade to no-ops with Err set.
func (t *Reader) Next(ins *Instr) {
	*ins = Instr{ExecLat: 1}
	if t.Err != nil {
		return
	}
	flags, err := t.br.ReadByte()
	if err != nil {
		// Loop the trace at most once per Next: an empty-body trace would
		// otherwise rewind forever.
		if errors.Is(err, io.EOF) && t.rewind() {
			flags, err = t.br.ReadByte()
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Err = err
			}
			return
		}
	}
	lat, err := t.br.ReadByte()
	if err != nil {
		t.Err = fmt.Errorf("trace: truncated record: %w", err)
		return
	}
	if lat == 0 || lat > 127 {
		lat = 1 // clamp corrupt latencies to a sane instruction
	}
	ins.ExecLat = int8(lat)
	if flags&flagMem == 0 {
		return
	}
	ins.IsMem = true
	ins.IsStore = flags&flagStore != 0
	ins.Dependent = flags&flagDependent != 0
	delta, err := binary.ReadUvarint(t.br)
	if err != nil {
		t.Err = fmt.Errorf("trace: truncated address: %w", err)
		*ins = Instr{ExecLat: 1}
		return
	}
	addr := uint64(int64(t.prevAddr) + unzigzag(delta))
	t.prevAddr = addr
	ins.Addr = addr
	tag, err := binary.ReadUvarint(t.br)
	if err != nil {
		t.Err = fmt.Errorf("trace: truncated pc: %w", err)
		*ins = Instr{ExecLat: 1}
		return
	}
	if tag&1 == 1 {
		pc, err := binary.ReadUvarint(t.br)
		if err != nil {
			t.Err = fmt.Errorf("trace: truncated pc literal: %w", err)
			*ins = Instr{ExecLat: 1}
			return
		}
		idx := tag >> 1
		if idx != uint64(len(t.pcs)) {
			t.Err = fmt.Errorf("trace: pc dictionary out of sync (idx %d, have %d)", idx, len(t.pcs))
			*ins = Instr{ExecLat: 1}
			return
		}
		t.pcs = append(t.pcs, pc)
		ins.PC = pc
		return
	}
	idx := tag >> 1
	if idx >= uint64(len(t.pcs)) {
		t.Err = fmt.Errorf("trace: pc index %d beyond dictionary (%d)", idx, len(t.pcs))
		*ins = Instr{ExecLat: 1}
		return
	}
	ins.PC = t.pcs[idx]
}
