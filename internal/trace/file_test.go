package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	w, err := WorkloadByName("PageRank")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	gen := NewSynthetic(w.Params, 1<<40, 7)
	ref := NewSynthetic(w.Params, 1<<40, 7)

	var buf bytes.Buffer
	if err := Record(&buf, gen, n); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "PageRank" {
		t.Errorf("name %q", r.Name())
	}
	var got, want Instr
	for i := 0; i < n; i++ {
		ref.Next(&want)
		r.Next(&got)
		if !want.IsMem {
			// The format drops PC/Addr for non-memory instructions (the
			// core never reads them).
			want.PC, want.Addr = 0, 0
		}
		if got != want {
			t.Fatalf("instr %d: got %+v want %+v", i, got, want)
		}
	}
	if r.Err != nil {
		t.Fatalf("reader error: %v", r.Err)
	}
	t.Logf("trace size: %d bytes for %d instructions (%.2f B/instr)",
		buf.Len(), n, float64(buf.Len())/n)
}

func TestTraceLoops(t *testing.T) {
	w, _ := WorkloadByName("pop2")
	gen := NewSynthetic(w.Params, 1<<40, 3)
	var buf bytes.Buffer
	const n = 200
	if err := Record(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Read two full laps: the second must equal the first.
	lap1 := make([]Instr, n)
	lap2 := make([]Instr, n)
	for i := range lap1 {
		r.Next(&lap1[i])
	}
	for i := range lap2 {
		r.Next(&lap2[i])
	}
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	for i := range lap1 {
		if lap1[i] != lap2[i] {
			t.Fatalf("loop mismatch at %d: %+v vs %+v", i, lap1[i], lap2[i])
		}
	}
}

func TestTraceEOFWithoutSeeker(t *testing.T) {
	w, _ := WorkloadByName("pop2")
	gen := NewSynthetic(w.Params, 1<<40, 3)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 50); err != nil {
		t.Fatal(err)
	}
	// Wrap in a Reader that is not a Seeker.
	r, err := NewReader(io.MultiReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	var ins Instr
	for i := 0; i < 60; i++ {
		r.Next(&ins)
	}
	// Past EOF: degrades to no-ops, no error.
	if r.Err != nil {
		t.Errorf("EOF should not set Err: %v", r.Err)
	}
	if ins.IsMem {
		t.Error("post-EOF instruction should be a no-op")
	}
}

func TestTraceBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(strings.NewReader("CX")); err == nil {
		t.Error("truncated magic accepted")
	}
}

func TestTraceTruncatedBody(t *testing.T) {
	w, _ := WorkloadByName("kmeans")
	gen := NewSynthetic(w.Params, 1<<40, 3)
	var buf bytes.Buffer
	if err := Record(&buf, gen, 100); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(io.MultiReader(bytes.NewReader(cut)))
	if err != nil {
		t.Fatal(err)
	}
	var ins Instr
	for i := 0; i < 120; i++ {
		r.Next(&ins) // must not panic; sets Err at the cut
	}
	if r.Err == nil {
		t.Error("truncated body not detected")
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(d int64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceCompression(t *testing.T) {
	// Streaming traces should delta-encode tightly: well under 8 bytes
	// per instruction.
	w, _ := WorkloadByName("stream-copy")
	gen := NewSynthetic(w.Params, 1<<40, 5)
	var buf bytes.Buffer
	const n = 10_000
	if err := Record(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(buf.Len()) / n
	if perInstr > 8 {
		t.Errorf("trace too fat: %.2f bytes/instr", perInstr)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tw.Write(Instr{ExecLat: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != 5 {
		t.Errorf("count %d", tw.Count())
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
}
