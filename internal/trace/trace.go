// Package trace generates the synthetic instruction streams that stand in
// for the paper's SPEC CPU2017, LIGRA, PARSEC, STREAM, Masstree and Kmeans
// execution traces (see DESIGN.md, substitution 1).
//
// Each workload is a parameterized stationary process: a fraction of
// instructions are memory operations; memory operations split between a
// small hot set (private-cache resident), sequential streams, and random
// accesses over a large working set; a fraction of loads depend on the
// previous load (pointer chasing); and an on/off phase modulation produces
// bursty arrivals. Parameters per workload are calibrated against the
// paper's published IPC/MPKI (Table IV) and read:write mix (Fig. 9).
package trace

import "coaxial/internal/memreq"

// Instr is one instruction handed to the core model.
type Instr struct {
	// Addr is the byte address of a memory operation (line-aligned use is
	// up to the cache model); meaningless when IsMem is false.
	Addr uint64
	// PC is a synthetic program counter identifying the access site
	// (stable per pattern source), used by PC-indexed predictors (MAP-I).
	PC uint64
	// ExecLat is the execution latency of a non-memory instruction.
	ExecLat int8
	// IsMem marks loads/stores.
	IsMem bool
	// IsStore marks stores (write-allocate; RFO on miss).
	IsStore bool
	// Dependent marks a load that must wait for the previous load's data
	// before issuing (address dependency / pointer chase).
	Dependent bool
}

// Generator produces a deterministic instruction stream.
type Generator interface {
	// Next fills ins with the next instruction.
	Next(ins *Instr)
	// Name identifies the workload.
	Name() string
}

// Cloner is an optional Generator extension: Clone deep-copies the
// generator at its current stream position, so the copy and the original
// produce identical continuations independently. Generators implementing
// it can participate in warm-state reuse (sim.CaptureWarm); those that
// don't (e.g. single-pass trace readers) fall back to cold-start runs.
type Cloner interface {
	Clone() Generator
}

// Params parameterizes a synthetic workload. See the package comment for
// the generation model.
type Params struct {
	Name string

	// MemFrac is the fraction of instructions that are memory operations.
	MemFrac float64
	// StoreFrac is the fraction of memory operations that are stores.
	StoreFrac float64

	// WSBytes is the cold working set per workload instance.
	WSBytes uint64
	// HotBytes is the hot set (private-cache resident); defaults to 128 KiB.
	HotBytes uint64
	// HotFrac is the fraction of memory operations hitting the hot set.
	HotFrac float64
	// StreamFrac is the fraction of *cold* accesses that are sequential.
	StreamFrac float64
	// Streams is the number of concurrent sequential streams (default 4).
	Streams int
	// ElemStride is the stream advance in bytes per access (64 = one line
	// per access; 8 models 8-byte-element kernels like STREAM where the
	// L1 absorbs 7 of every 8 accesses).
	ElemStride uint64

	// DepFrac is the fraction of loads carrying a dependency on the
	// previous load.
	DepFrac float64

	// BurstOn/BurstOff, when nonzero, modulate memory intensity in
	// instruction-count phases: all memory activity concentrates in the
	// on-phase (scaled to preserve the average MemFrac).
	BurstOn, BurstOff int

	// ExecLat is the completion latency of non-memory instructions
	// (an ILP knob; 1 = fully pipelined independent work).
	ExecLat int

	// IPCCap bounds the core's average dispatch rate (instructions per
	// cycle), modelling the application's inherent ILP limits (execution
	// dependency chains, branch behaviour) that the simplified core does
	// not capture microarchitecturally. 0 means the full 4-wide width.
	IPCCap float64
}

// withDefaults fills zero-valued fields.
func (p Params) withDefaults() Params {
	if p.HotBytes == 0 {
		p.HotBytes = 128 << 10
	}
	if p.Streams <= 0 {
		p.Streams = 4
	}
	if p.ElemStride == 0 {
		p.ElemStride = memreq.LineSize
	}
	if p.ExecLat <= 0 {
		p.ExecLat = 1
	}
	if p.WSBytes == 0 {
		p.WSBytes = 32 << 20
	}
	return p
}

// rng is a xorshift64* PRNG: deterministic, fast, no allocation.
type rng struct{ s uint64 }

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// f64 returns a uniform float64 in [0, 1).
func (r *rng) f64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Synthetic implements Generator for Params.
type Synthetic struct {
	p    Params
	r    rng
	base uint64

	effOn float64 // memory fraction during the on phase
	phase int     // instructions remaining in the current phase
	inOn  bool

	// Load and store traffic sweep disjoint stream sets (like STREAM's
	// distinct source/destination arrays), so only store-targeted lines
	// become dirty and the read:write traffic mix stays realistic.
	loadStreams  []uint64
	storeStreams []uint64
	loadIdx      int
	storeIdx     int

	wsLines  uint64
	hotLines uint64
}

// NewSynthetic builds a generator for one workload instance. base is the
// instance's address-space base (per-core disjoint regions); seed
// determinizes the stream.
func NewSynthetic(p Params, base, seed uint64) *Synthetic {
	p = p.withDefaults()
	g := &Synthetic{
		p:        p,
		r:        newRNG(seed ^ 0xA5A5_5A5A_DEAD_BEEF),
		base:     base,
		wsLines:  p.WSBytes / memreq.LineSize,
		hotLines: p.HotBytes / memreq.LineSize,
	}
	if g.wsLines == 0 {
		g.wsLines = 1
	}
	if g.hotLines == 0 {
		g.hotLines = 1
	}
	if p.BurstOn > 0 && p.BurstOff > 0 {
		g.effOn = p.MemFrac * float64(p.BurstOn+p.BurstOff) / float64(p.BurstOn)
		if g.effOn > 0.95 {
			g.effOn = 0.95
		}
		g.inOn = true
		g.phase = p.BurstOn
	} else {
		g.effOn = p.MemFrac
		g.inOn = true
		g.phase = -1
	}
	// Partition streams into load- and store-targeted sets, spreading
	// start points across the working set.
	nStore := 0
	if p.StoreFrac > 0 {
		nStore = int(float64(p.Streams)*p.StoreFrac + 0.5)
		if nStore < 1 {
			nStore = 1
		}
		if nStore >= p.Streams {
			nStore = p.Streams - 1
		}
		if nStore < 1 { // Streams == 1 with stores: share the one stream
			nStore = 0
		}
	}
	all := make([]uint64, p.Streams)
	for i := range all {
		all[i] = (uint64(i) * p.WSBytes / uint64(p.Streams)) &^ (memreq.LineSize - 1)
	}
	g.loadStreams = all[:p.Streams-nStore]
	g.storeStreams = all[p.Streams-nStore:]
	if len(g.storeStreams) == 0 {
		g.storeStreams = g.loadStreams
	}
	return g
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.p.Name }

// Clone implements Cloner: an independent generator at the same stream
// position. The store-stream set may alias the load-stream set (the
// single-stream store case); the copy preserves that aliasing.
func (g *Synthetic) Clone() Generator {
	d := *g
	d.loadStreams = append([]uint64(nil), g.loadStreams...)
	if len(g.storeStreams) > 0 && len(g.loadStreams) > 0 && &g.storeStreams[0] == &g.loadStreams[0] {
		d.storeStreams = d.loadStreams
	} else {
		d.storeStreams = append([]uint64(nil), g.storeStreams...)
	}
	return &d
}

// PC bases per access category; low bits select within a small pool so
// PC-indexed predictors observe stable per-site behaviour.
const (
	pcCompute = 0x400000
	pcHot     = 0x410000
	pcStream  = 0x420000
	pcRandom  = 0x430000
	pcStore   = 0x440000
)

// Next implements Generator.
func (g *Synthetic) Next(ins *Instr) {
	// Phase modulation.
	if g.phase == 0 {
		if g.inOn {
			g.inOn = false
			g.phase = g.p.BurstOff
		} else {
			g.inOn = true
			g.phase = g.p.BurstOn
		}
	}
	if g.phase > 0 {
		g.phase--
	}

	frac := 0.0
	if g.inOn {
		frac = g.effOn
	}

	if g.r.f64() >= frac {
		ins.IsMem = false
		ins.IsStore = false
		ins.Dependent = false
		ins.Addr = 0
		ins.ExecLat = int8(g.p.ExecLat)
		ins.PC = pcCompute + (g.r.next()&15)*4
		return
	}

	ins.IsMem = true
	ins.ExecLat = 1
	ins.IsStore = g.r.f64() < g.p.StoreFrac
	ins.Dependent = false

	switch {
	case g.r.f64() < g.p.HotFrac:
		line := g.r.next() % g.hotLines
		ins.Addr = g.base + line*memreq.LineSize
		ins.PC = pcHot + (g.r.next()&15)*4
	case g.r.f64() < g.p.StreamFrac:
		set := g.loadStreams
		idx := &g.loadIdx
		if ins.IsStore {
			set = g.storeStreams
			idx = &g.storeIdx
		}
		i := *idx
		*idx = (*idx + 1) % len(set)
		ptr := set[i]
		ins.Addr = g.base + ptr
		ptr += g.p.ElemStride
		if ptr >= g.p.WSBytes {
			ptr = 0
		}
		set[i] = ptr
		ins.PC = pcStream + uint64(i)*4
	default:
		line := g.r.next() % g.wsLines
		ins.Addr = g.base + line*memreq.LineSize
		ins.PC = pcRandom + (g.r.next()&31)*4
		if !ins.IsStore && g.r.f64() < g.p.DepFrac {
			ins.Dependent = true
		}
	}
	if ins.IsStore {
		ins.PC = pcStore + (ins.PC & 0x7F)
	}
}
