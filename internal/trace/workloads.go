package trace

import "fmt"

// Suite identifies the benchmark suite a workload models.
type Suite string

// Suites evaluated by the paper (§V).
const (
	SuiteSPEC   Suite = "SPEC"
	SuiteLigra  Suite = "LIGRA"
	SuiteStream Suite = "STREAM"
	SuiteParsec Suite = "PARSEC"
	SuiteKVS    Suite = "KVS&DA"
)

// Workload couples generator parameters with the paper's published
// baseline measurements (Table IV) used for calibration reporting.
type Workload struct {
	Params Params
	Suite  Suite
	// PaperIPC and PaperMPKI are Table IV's DDR-baseline measurements.
	PaperIPC  float64
	PaperMPKI float64
}

const (
	kib = 1 << 10
	mib = 1 << 20
)

// Workloads returns the 36 evaluated workloads in Table IV order. The
// parameters approximate each application's memory behaviour: memory
// intensity and working set sized to land near the published LLC MPKI,
// pattern mix (stream / random / pointer-chase) by application class, and
// store fractions shaped to Fig. 9's read:write ratios.
func Workloads() []Workload {
	w := []Workload{
		// --- SPEC CPU2017 (speed, ref) ---
		{Params{Name: "lbm", MemFrac: 0.40, StoreFrac: 0.38, WSBytes: 64 * mib, HotFrac: 0.84, StreamFrac: 0.92, DepFrac: 0.03, BurstOn: 3000, BurstOff: 1200, ExecLat: 2}, SuiteSPEC, 0.14, 64},
		{Params{Name: "bwaves", MemFrac: 0.35, StoreFrac: 0.20, WSBytes: 48 * mib, HotFrac: 0.96, StreamFrac: 0.82, DepFrac: 0.05, BurstOn: 2500, BurstOff: 1500, ExecLat: 2, IPCCap: 0.45}, SuiteSPEC, 0.33, 14},
		{Params{Name: "cactusBSSN", MemFrac: 0.30, StoreFrac: 0.25, WSBytes: 32 * mib, HotFrac: 0.973, StreamFrac: 0.70, DepFrac: 0.05, BurstOn: 2000, BurstOff: 2000, ExecLat: 1, IPCCap: 0.90}, SuiteSPEC, 0.68, 8},
		{Params{Name: "fotonik3d", MemFrac: 0.35, StoreFrac: 0.28, WSBytes: 48 * mib, HotFrac: 0.937, StreamFrac: 0.85, DepFrac: 0.03, ExecLat: 2, IPCCap: 0.45}, SuiteSPEC, 0.32, 22},
		{Params{Name: "cam4", MemFrac: 0.30, StoreFrac: 0.47, WSBytes: 16 * mib, HotFrac: 0.98, StreamFrac: 0.60, DepFrac: 0.08, ExecLat: 1, IPCCap: 1.10}, SuiteSPEC, 0.87, 6},
		{Params{Name: "wrf", MemFrac: 0.30, StoreFrac: 0.30, WSBytes: 32 * mib, HotFrac: 0.963, StreamFrac: 0.70, DepFrac: 0.05, ExecLat: 1, IPCCap: 0.80}, SuiteSPEC, 0.61, 11},
		{Params{Name: "mcf", MemFrac: 0.30, StoreFrac: 0.15, WSBytes: 64 * mib, HotFrac: 0.957, StreamFrac: 0.10, DepFrac: 0.30, ExecLat: 1, IPCCap: 1.00}, SuiteSPEC, 0.79, 13},
		{Params{Name: "roms", MemFrac: 0.28, StoreFrac: 0.28, WSBytes: 32 * mib, HotFrac: 0.979, StreamFrac: 0.75, DepFrac: 0.04, ExecLat: 1, IPCCap: 1.00}, SuiteSPEC, 0.77, 6},
		{Params{Name: "pop2", MemFrac: 0.25, StoreFrac: 0.30, WSBytes: 16 * mib, HotFrac: 0.988, StreamFrac: 0.60, DepFrac: 0.05, ExecLat: 1, IPCCap: 1.80}, SuiteSPEC, 1.50, 3},
		{Params{Name: "omnetpp", MemFrac: 0.30, StoreFrac: 0.22, WSBytes: 32 * mib, HotFrac: 0.967, StreamFrac: 0.05, DepFrac: 0.28, ExecLat: 1, IPCCap: 0.65}, SuiteSPEC, 0.50, 10},
		{Params{Name: "xalancbmk", MemFrac: 0.30, StoreFrac: 0.18, WSBytes: 4 * mib, HotFrac: 0.94, StreamFrac: 0.10, DepFrac: 0.25, ExecLat: 1, IPCCap: 0.65}, SuiteSPEC, 0.50, 12},
		// gcc is the paper's canonical COAXIAL loser: latency-bound, deep
		// load dependency chains, high LLC hit rate, low-moderate traffic.
		{Params{Name: "gcc", MemFrac: 0.30, StoreFrac: 0.20, WSBytes: 3 * mib, HotFrac: 0.88, StreamFrac: 0.02, DepFrac: 1.00, ExecLat: 1, IPCCap: 0.50}, SuiteSPEC, 0.27, 19},

		// --- LIGRA graph analytics ---
		{Params{Name: "PageRankDelta", MemFrac: 0.35, StoreFrac: 0.20, WSBytes: 128 * mib, HotFrac: 0.923, StreamFrac: 0.25, DepFrac: 0.12, BurstOn: 4000, BurstOff: 1500, ExecLat: 1, IPCCap: 0.40}, SuiteLigra, 0.30, 27},
		{Params{Name: "Comp-shortcut", MemFrac: 0.40, StoreFrac: 0.22, WSBytes: 128 * mib, HotFrac: 0.88, StreamFrac: 0.20, DepFrac: 0.10, BurstOn: 4000, BurstOff: 1500, ExecLat: 1}, SuiteLigra, 0.34, 48},
		{Params{Name: "Components", MemFrac: 0.40, StoreFrac: 0.22, WSBytes: 128 * mib, HotFrac: 0.88, StreamFrac: 0.20, DepFrac: 0.10, BurstOn: 3500, BurstOff: 1200, ExecLat: 1}, SuiteLigra, 0.36, 48},
		{Params{Name: "BC", MemFrac: 0.35, StoreFrac: 0.20, WSBytes: 128 * mib, HotFrac: 0.903, StreamFrac: 0.25, DepFrac: 0.12, BurstOn: 4000, BurstOff: 1500, ExecLat: 1, IPCCap: 0.42}, SuiteLigra, 0.33, 34},
		{Params{Name: "PageRank", MemFrac: 0.40, StoreFrac: 0.20, WSBytes: 128 * mib, HotFrac: 0.90, StreamFrac: 0.35, DepFrac: 0.08, ExecLat: 1}, SuiteLigra, 0.36, 40},
		{Params{Name: "Radii", MemFrac: 0.35, StoreFrac: 0.20, WSBytes: 128 * mib, HotFrac: 0.906, StreamFrac: 0.25, DepFrac: 0.10, BurstOn: 4000, BurstOff: 1500, ExecLat: 1, IPCCap: 0.52}, SuiteLigra, 0.41, 33},
		{Params{Name: "CF", MemFrac: 0.30, StoreFrac: 0.22, WSBytes: 64 * mib, HotFrac: 0.96, StreamFrac: 0.55, DepFrac: 0.06, ExecLat: 1, IPCCap: 1.00}, SuiteLigra, 0.80, 12},
		{Params{Name: "BFSCC", MemFrac: 0.30, StoreFrac: 0.20, WSBytes: 96 * mib, HotFrac: 0.943, StreamFrac: 0.30, DepFrac: 0.12, BurstOn: 3000, BurstOff: 1500, ExecLat: 1, IPCCap: 0.85}, SuiteLigra, 0.65, 17},
		{Params{Name: "BellmanFord", MemFrac: 0.30, StoreFrac: 0.22, WSBytes: 96 * mib, HotFrac: 0.97, StreamFrac: 0.35, DepFrac: 0.10, ExecLat: 1, IPCCap: 1.05}, SuiteLigra, 0.82, 9},
		{Params{Name: "BFS", MemFrac: 0.30, StoreFrac: 0.18, WSBytes: 96 * mib, HotFrac: 0.95, StreamFrac: 0.25, DepFrac: 0.15, BurstOn: 3000, BurstOff: 1500, ExecLat: 1, IPCCap: 0.85}, SuiteLigra, 0.66, 15},
		{Params{Name: "BFS-Bitvector", MemFrac: 0.30, StoreFrac: 0.18, WSBytes: 96 * mib, HotFrac: 0.95, StreamFrac: 0.35, DepFrac: 0.10, ExecLat: 1, IPCCap: 1.05}, SuiteLigra, 0.84, 15},
		{Params{Name: "Triangle", MemFrac: 0.35, StoreFrac: 0.12, WSBytes: 128 * mib, HotFrac: 0.94, StreamFrac: 0.40, DepFrac: 0.10, ExecLat: 1, IPCCap: 0.78}, SuiteLigra, 0.61, 21},
		// MIS is not in Table IV but appears in the CALM analysis (Fig. 7b,
		// where its false positives inflate memory accesses by 21%): a
		// frontier-style kernel whose cold set partially fits in the LLC.
		{Params{Name: "MIS", MemFrac: 0.32, StoreFrac: 0.20, WSBytes: 6 * mib, HotFrac: 0.90, StreamFrac: 0.20, DepFrac: 0.10, BurstOn: 3000, BurstOff: 1500, ExecLat: 1}, SuiteLigra, 0.55, 14},

		// --- STREAM kernels (8-byte elements; the L1 absorbs 7/8 accesses) ---
		{Params{Name: "stream-copy", MemFrac: 0.47, StoreFrac: 0.50, WSBytes: 96 * mib, HotFrac: 0, StreamFrac: 1.0, Streams: 2, ElemStride: 8, ExecLat: 1}, SuiteStream, 0.17, 58},
		{Params{Name: "stream-scale", MemFrac: 0.39, StoreFrac: 0.50, WSBytes: 96 * mib, HotFrac: 0, StreamFrac: 1.0, Streams: 2, ElemStride: 8, ExecLat: 1}, SuiteStream, 0.21, 48},
		{Params{Name: "stream-add", MemFrac: 0.55, StoreFrac: 0.34, WSBytes: 96 * mib, HotFrac: 0, StreamFrac: 1.0, Streams: 3, ElemStride: 8, ExecLat: 1}, SuiteStream, 0.16, 69},
		{Params{Name: "stream-triad", MemFrac: 0.47, StoreFrac: 0.34, WSBytes: 96 * mib, HotFrac: 0, StreamFrac: 1.0, Streams: 3, ElemStride: 8, ExecLat: 1}, SuiteStream, 0.18, 59},

		// --- KVS & data analytics ---
		{Params{Name: "masstree", MemFrac: 0.30, StoreFrac: 0.15, WSBytes: 64 * mib, HotFrac: 0.93, StreamFrac: 0.10, DepFrac: 0.30, ExecLat: 1, IPCCap: 0.48}, SuiteKVS, 0.37, 21},
		{Params{Name: "kmeans", MemFrac: 0.35, StoreFrac: 0.12, WSBytes: 64 * mib, HotFrac: 0.897, StreamFrac: 0.80, DepFrac: 0.03, ExecLat: 1}, SuiteKVS, 0.50, 36},

		// --- PARSEC ---
		{Params{Name: "fluidanimate", MemFrac: 0.25, StoreFrac: 0.28, WSBytes: 32 * mib, HotFrac: 0.972, StreamFrac: 0.50, DepFrac: 0.08, ExecLat: 1, IPCCap: 0.95}, SuiteParsec, 0.73, 7},
		{Params{Name: "facesim", MemFrac: 0.25, StoreFrac: 0.28, WSBytes: 32 * mib, HotFrac: 0.976, StreamFrac: 0.60, DepFrac: 0.06, ExecLat: 1, IPCCap: 0.95}, SuiteParsec, 0.74, 6},
		{Params{Name: "raytrace", MemFrac: 0.25, StoreFrac: 0.10, WSBytes: 16 * mib, HotFrac: 0.98, StreamFrac: 0.20, DepFrac: 0.12, ExecLat: 1, IPCCap: 1.35}, SuiteParsec, 1.10, 5},
		{Params{Name: "streamcluster", MemFrac: 0.30, StoreFrac: 0.10, WSBytes: 64 * mib, HotFrac: 0.953, StreamFrac: 0.85, DepFrac: 0.03, ExecLat: 1}, SuiteParsec, 0.95, 14},
		{Params{Name: "canneal", MemFrac: 0.25, StoreFrac: 0.20, WSBytes: 64 * mib, HotFrac: 0.972, StreamFrac: 0.05, DepFrac: 0.30, ExecLat: 1, IPCCap: 0.78}, SuiteParsec, 0.61, 7},
	}
	return w
}

// WorkloadByName returns the workload with the given name.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Params.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown workload %q", name)
}

// Names returns all workload names in Table IV order.
func Names() []string {
	ws := Workloads()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Params.Name
	}
	return out
}

// Mix returns the per-core workload assignment for workload mix `idx`
// (0..n-1): 12 workloads sampled with replacement from the full suite with
// a deterministic seed, as in Fig. 6.
func Mix(idx, cores int) []Workload {
	ws := Workloads()
	r := newRNG(uint64(idx)*0x9E37_79B9 + 0xC0A71A1)
	out := make([]Workload, cores)
	for i := range out {
		out[i] = ws[r.next()%uint64(len(ws))]
	}
	return out
}

// Rack-mix MPKI thresholds: workloads at or above rackHiMPKI are
// bandwidth-hungry "noisy neighbours"; at or below rackLoMPKI they are
// latency-sensitive foreground services.
const (
	rackHiMPKI = 25
	rackLoMPKI = 12
)

// RackMix returns the per-core assignment for mixed-MPKI rack mix `idx`:
// a deterministic model of a consolidated server where bandwidth-hungry
// batch jobs (Table IV MPKI >= 25: STREAM kernels, the heavy Ligra
// kernels, lbm, kmeans) and latency-sensitive services (MPKI <= 12) share
// the machine. Even core slots draw from the high-MPKI pool and odd slots
// from the low-MPKI pool, so every interleaving of channels and LLC slices
// sees both classes. This is the representative rack workload the
// validation harness and the CXL-pooled equivalence coverage run on.
func RackMix(idx, cores int) []Workload {
	var hi, lo []Workload
	for _, w := range Workloads() {
		switch {
		case w.PaperMPKI >= rackHiMPKI:
			hi = append(hi, w)
		case w.PaperMPKI <= rackLoMPKI:
			lo = append(lo, w)
		}
	}
	r := newRNG(uint64(idx)*0x51_7CC1_B727_2205 + 0x4AC4_3B1D)
	out := make([]Workload, cores)
	for i := range out {
		if i%2 == 0 {
			out[i] = hi[r.next()%uint64(len(hi))]
		} else {
			out[i] = lo[r.next()%uint64(len(lo))]
		}
	}
	return out
}
