// Package profiling wires the -cpuprofile/-memprofile CLI flags to
// runtime/pprof so profile-guided performance work is reproducible from the
// command line (go tool pprof <binary> <file>).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile to cpuPath (when non-empty) and returns a stop
// function that flushes it and, when memPath is non-empty, writes a heap
// profile taken after a forced GC. The stop function must run before the
// process exits (deferred from main); paths that exit via os.Exit skip it
// and leave the profiles unwritten, which is acceptable for a failed run.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize the steady-state live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
	}, nil
}
