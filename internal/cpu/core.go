// Package cpu implements the simplified out-of-order core model: a
// reorder-buffer-windowed, 4-wide fetch/retire engine whose memory-level
// parallelism is bounded by MSHRs and by explicit load-load dependencies in
// the instruction stream (pointer chases). It reproduces the IPC-limiting
// behaviour of the paper's ChampSim cores (4-wide, 256-entry ROB) without
// modelling individual functional units.
package cpu

import (
	"math"

	"coaxial/internal/memreq"
	"coaxial/internal/trace"
)

// PathResult is the hierarchy's answer to one first-touch memory access.
type PathResult struct {
	// When is the completion cycle when Async is false.
	When int64
	// Async means the access went to memory; completion arrives through
	// Core.ResolveMiss.
	Async bool
}

// Hierarchy is implemented by the system model (internal/sim): it performs
// the cache/NoC/memory path for a first access to a line and either
// returns a synchronous completion time (a cache hit at some level) or
// registers an in-flight memory access.
type Hierarchy interface {
	Access(core int, addr, pc uint64, store bool, now int64) PathResult
}

const (
	robSize = 256
	width   = 4
)

// robEntry is one in-flight instruction.
type robEntry struct {
	doneAt int64
	ready  bool // completion time known
}

// missEntry tracks one in-flight memory line (an MSHR).
type missEntry struct {
	waiters []uint64 // ROB sequence numbers of loads waiting on the fill
	dirty   bool     // a store merged into this miss: fill dirty (RFO)
}

// deferred is a dependent load whose issue waits on a producer load.
type deferred struct {
	seq      uint64
	producer uint64
	addr     uint64
	pc       uint64
	store    bool
}

// Stats counts core activity over the measurement window.
type Stats struct {
	Retired uint64
	Loads   uint64
	Stores  uint64
	// StallMSHR counts dispatch stalls due to MSHR exhaustion.
	StallMSHR uint64
}

// Core is one simulated out-of-order core.
type Core struct {
	ID int

	gen   trace.Generator
	hier  Hierarchy
	mshrs int

	// Dispatch-rate cap (token bucket): tokens accrue at ipcCap per cycle
	// and each dispatched instruction consumes one, modelling the
	// workload's inherent ILP limit.
	ipcCap float64
	tokens float64

	rob          [robSize]robEntry
	headSeq      uint64 // oldest un-retired sequence number
	tailSeq      uint64 // next sequence number to allocate
	lastLoadSeq  uint64 // most recent load, for dependency chaining
	haveLastLoad bool
	// Pointer chases serialize on the previous *dependent* load, forming
	// a[i] -> a[a[i]] chains rather than chaining to (usually L1-hit)
	// unrelated recent loads.
	lastDepSeq uint64
	haveDep    bool

	pending map[uint64]*missEntry // line address -> MSHR
	defq    []deferred

	// One fetched-but-undispatched instruction (held across stalls).
	held    trace.Instr
	hasHeld bool

	stats Stats

	// Measurement bookkeeping.
	target          uint64 // retired-instruction target for this phase
	FinishCycle     int64  // cycle the target was reached (-1 while running)
	retiredAtFinish uint64 // snapshot of Retired at FinishCycle
	measureStart    int64
}

// New builds a core. mshrs bounds outstanding memory-line misses; ipcCap
// bounds the average dispatch rate (<= 0 means the full machine width).
func New(id int, gen trace.Generator, hier Hierarchy, mshrs int, ipcCap float64) *Core {
	if mshrs < 1 {
		mshrs = 16
	}
	if ipcCap <= 0 || ipcCap > width {
		ipcCap = width
	}
	return &Core{
		ID:          id,
		gen:         gen,
		hier:        hier,
		mshrs:       mshrs,
		ipcCap:      ipcCap,
		pending:     make(map[uint64]*missEntry, mshrs*2),
		FinishCycle: -1,
	}
}

// SetTarget arms the retirement target; FinishCycle records when the
// core's retired count (since the last ResetStats) reaches it.
func (c *Core) SetTarget(instr uint64) {
	c.target = instr
	c.FinishCycle = -1
}

// Done reports whether the retirement target has been reached.
func (c *Core) Done() bool { return c.FinishCycle >= 0 }

// Stats returns the activity counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes counters at the warmup/measure boundary.
func (c *Core) ResetStats(now int64) {
	c.stats = Stats{}
	c.measureStart = now
	c.FinishCycle = -1
}

// IPC returns retired instructions per cycle since the last reset. Once
// the retirement target has been reached, the rate freezes at that point:
// the core keeps executing (to sustain memory pressure for slower cores)
// but the extra retirement must not inflate its measured IPC.
func (c *Core) IPC(now int64) float64 {
	end, retired := now, c.stats.Retired
	if c.FinishCycle >= 0 {
		end, retired = c.FinishCycle, c.retiredAtFinish
	}
	span := end - c.measureStart
	if span <= 0 {
		return 0
	}
	return float64(retired) / float64(span)
}

// robAt returns the entry for a sequence number.
func (c *Core) robAt(seq uint64) *robEntry { return &c.rob[seq%robSize] }

// producerDone reports whether the producer load of a dependency has
// completed by cycle now. A retired producer has necessarily completed.
func (c *Core) producerDone(producer uint64, now int64) bool {
	if producer < c.headSeq {
		return true
	}
	e := c.robAt(producer)
	return e.ready && e.doneAt <= now
}

// Tick advances the core one cycle: resolve deferred issues, retire, and
// dispatch.
func (c *Core) Tick(now int64) {
	c.issueDeferred(now)
	c.retire(now)
	c.dispatch(now)
}

func (c *Core) issueDeferred(now int64) {
	// Issue in order; stop at the first MSHR stall to preserve the chain.
	n := 0
	for _, d := range c.defq {
		if !c.producerDone(d.producer, now) {
			c.defq[n] = d
			n++
			continue
		}
		if !c.tryIssueMem(d.seq, d.addr, d.pc, d.store, now) {
			c.stats.StallMSHR++
			c.defq[n] = d
			n++
			continue
		}
	}
	c.defq = c.defq[:n]
}

func (c *Core) retire(now int64) {
	for i := 0; i < width && c.headSeq < c.tailSeq; i++ {
		e := c.robAt(c.headSeq)
		if !e.ready || e.doneAt > now {
			return
		}
		c.headSeq++
		c.stats.Retired++
		if c.FinishCycle < 0 && c.target > 0 && c.stats.Retired >= c.target {
			c.FinishCycle = now
			c.retiredAtFinish = c.stats.Retired
		}
	}
}

func (c *Core) dispatch(now int64) {
	c.tokens += c.ipcCap
	if c.tokens > width { // bucket depth: at most one full-width burst
		c.tokens = width
	}
	for i := 0; i < width; i++ {
		if c.tokens < 1 {
			return // ILP limit this cycle
		}
		if c.tailSeq-c.headSeq >= robSize {
			return // ROB full
		}
		if !c.hasHeld {
			c.gen.Next(&c.held)
			c.hasHeld = true
		}
		ins := &c.held

		if !ins.IsMem {
			seq := c.alloc()
			e := c.robAt(seq)
			lat := int64(ins.ExecLat)
			if lat < 1 {
				lat = 1
			}
			e.ready = true
			e.doneAt = now + lat
			c.tokens--
			c.hasHeld = false
			continue
		}

		// Memory instruction.
		line := memreq.LineAddr(ins.Addr)
		producer, haveProducer := c.lastDepSeq, c.haveDep
		if !haveProducer {
			producer, haveProducer = c.lastLoadSeq, c.haveLastLoad
		}
		if ins.Dependent && haveProducer && !c.producerDone(producer, now) {
			// Allocate the ROB slot; defer the access until the producer
			// completes.
			seq := c.alloc()
			e := c.robAt(seq)
			if ins.IsStore {
				// Stores retire through the store buffer regardless.
				e.ready = true
				e.doneAt = now + 1
				c.stats.Stores++
			} else {
				e.ready = false
				e.doneAt = math.MaxInt64
				c.stats.Loads++
			}
			c.defq = append(c.defq, deferred{
				seq: seq, producer: producer,
				addr: ins.Addr, pc: ins.PC, store: ins.IsStore,
			})
			if !ins.IsStore {
				c.lastLoadSeq = seq
				c.haveLastLoad = true
				c.lastDepSeq = seq
				c.haveDep = true
			}
			c.tokens--
			c.hasHeld = false
			continue
		}

		// Check the MSHR budget before committing to the access; merges
		// into an in-flight line are always allowed.
		if _, merging := c.pending[line]; !merging && len(c.pending) >= c.mshrs {
			c.stats.StallMSHR++
			return // structural stall: retry next cycle
		}

		seq := c.alloc()
		if ins.IsStore {
			c.stats.Stores++
			e := c.robAt(seq)
			e.ready = true
			e.doneAt = now + 1
		} else {
			c.stats.Loads++
			c.lastLoadSeq = seq
			c.haveLastLoad = true
			if ins.Dependent {
				c.lastDepSeq = seq
				c.haveDep = true
			}
		}
		c.startMem(seq, ins.Addr, ins.PC, ins.IsStore, now)
		c.tokens--
		c.hasHeld = false
	}
}

// alloc reserves the next ROB slot.
func (c *Core) alloc() uint64 {
	seq := c.tailSeq
	c.tailSeq++
	*c.robAt(seq) = robEntry{}
	return seq
}

// startMem performs the access for a memory instruction whose MSHR check
// has passed. Store ROB entries are completed at their dispatch site
// (store-buffer semantics); startMem never touches them, since a deferred
// store may issue after its ROB slot has been retired and recycled.
func (c *Core) startMem(seq uint64, addr, pc uint64, store bool, now int64) {
	line := memreq.LineAddr(addr)

	if m, ok := c.pending[line]; ok {
		// Merge into the in-flight miss.
		if store {
			m.dirty = true
		} else {
			e := c.robAt(seq)
			e.ready = false
			e.doneAt = math.MaxInt64
			m.waiters = append(m.waiters, seq)
		}
		return
	}

	res := c.hier.Access(c.ID, addr, pc, store, now)
	if !res.Async {
		if !store {
			e := c.robAt(seq)
			e.ready = true
			e.doneAt = res.When
		}
		return
	}

	m := &missEntry{dirty: store}
	if !store {
		e := c.robAt(seq)
		e.ready = false
		e.doneAt = math.MaxInt64
		m.waiters = append(m.waiters, seq)
	}
	c.pending[line] = m
}

// tryIssueMem issues a deferred access, honoring the MSHR budget. It
// returns false on a structural stall.
func (c *Core) tryIssueMem(seq uint64, addr, pc uint64, store bool, now int64) bool {
	line := memreq.LineAddr(addr)
	if _, merging := c.pending[line]; !merging && len(c.pending) >= c.mshrs {
		return false
	}
	c.startMem(seq, addr, pc, store, now)
	return true
}

// ResolveMiss is called by the hierarchy when the fill for line completes;
// `when` is the cycle data reaches the core. It returns whether the fill
// must install dirty (a store merged into the miss) and releases the MSHR.
func (c *Core) ResolveMiss(line uint64, when int64) (dirty bool) {
	m, ok := c.pending[line]
	if !ok {
		return false
	}
	delete(c.pending, line)
	for _, seq := range m.waiters {
		if seq < c.headSeq {
			continue // already retired (shouldn't happen; defensive)
		}
		e := c.robAt(seq)
		e.ready = true
		e.doneAt = when
	}
	return m.dirty
}

// OutstandingMisses reports the in-flight miss count (tests).
func (c *Core) OutstandingMisses() int { return len(c.pending) }

// MeasureStart returns the cycle of the last stats reset.
func (c *Core) MeasureStart() int64 { return c.measureStart }

// Gen exposes the instruction generator (for functional cache warmup).
func (c *Core) Gen() trace.Generator { return c.gen }
