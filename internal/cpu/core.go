// Package cpu implements the simplified out-of-order core model: a
// reorder-buffer-windowed, 4-wide fetch/retire engine whose memory-level
// parallelism is bounded by MSHRs and by explicit load-load dependencies in
// the instruction stream (pointer chases). It reproduces the IPC-limiting
// behaviour of the paper's ChampSim cores (4-wide, 256-entry ROB) without
// modelling individual functional units.
package cpu

import (
	"math"

	"coaxial/internal/memreq"
	"coaxial/internal/trace"
)

// PathResult is the hierarchy's answer to one first-touch memory access.
type PathResult struct {
	// When is the completion cycle when Async is false.
	When int64
	// Async means the access went to memory; completion arrives through
	// Core.ResolveMiss.
	Async bool
}

// Hierarchy is implemented by the system model (internal/sim): it performs
// the cache/NoC/memory path for a first access to a line and either
// returns a synchronous completion time (a cache hit at some level) or
// registers an in-flight memory access.
type Hierarchy interface {
	Access(core int, addr, pc uint64, store bool, now int64) PathResult
}

const (
	robSize = 256
	width   = 4
)

// robEntry is one in-flight instruction.
type robEntry struct {
	doneAt int64
	ready  bool // completion time known
}

// missSlot is one occupied MSHR, stored flat (no per-miss heap entry): the
// line address, the dirty flag (a store merged into the miss: fill dirty,
// RFO), and the ROB sequence numbers of loads waiting on the fill. The MSHR
// file is a flat array scanned linearly — at most `mshrs` (typically 16)
// slots, which beats a map on every hot query (dispatch's budget check,
// merge lookups, fills) — and the flat layout keeps those scans on one
// cache line instead of chasing a pointer per slot.
type missSlot struct {
	line    uint64
	dirty   bool
	waiters []uint64
}

// deferred is a dependent load whose issue waits on a producer load.
type deferred struct {
	seq      uint64
	producer uint64
	addr     uint64
	pc       uint64
	store    bool
}

// Stats counts core activity over the measurement window.
type Stats struct {
	Retired uint64
	Loads   uint64
	Stores  uint64
	// StallMSHR counts dispatch stalls due to MSHR exhaustion.
	StallMSHR uint64
}

// Core is one simulated out-of-order core.
type Core struct {
	ID int

	gen   trace.Generator
	hier  Hierarchy
	mshrs int

	// Dispatch-rate cap (token bucket): tokens accrue at ipcCap per cycle
	// and each dispatched instruction consumes one, modelling the
	// workload's inherent ILP limit. The balance is kept in closed form —
	// tokens(n) = min(width, tokenBase + (n-tokenBaseCycle)*ipcCap) — and
	// rebased only when dispatch consumes tokens, so the accrual arithmetic
	// is identical whatever cycles the core is actually ticked at (the
	// event-driven loop skips inert cycles; see NextEvent).
	ipcCap         float64
	tokenBase      float64
	tokenBaseCycle int64 //lint:unit cycles
	// tokenReadyAt memoizes the first cycle the accrual banks a full token
	// (a pure function of the rebase state above); -1 = recompute.
	tokenReadyAt int64 //lint:unit cycles

	rob          [robSize]robEntry
	headSeq      uint64 // oldest un-retired sequence number
	tailSeq      uint64 // next sequence number to allocate
	lastLoadSeq  uint64 // most recent load, for dependency chaining
	haveLastLoad bool
	// Pointer chases serialize on the previous *dependent* load, forming
	// a[i] -> a[a[i]] chains rather than chaining to (usually L1-hit)
	// unrelated recent loads.
	lastDepSeq uint64
	haveDep    bool

	pending []missSlot // occupied MSHRs (unordered; len <= mshrs)
	// freeWaiters recycles waiter-slice backing arrays: every beyond-L2
	// access parks in an MSHR until the cycle barrier resolves it, so
	// slice churn would otherwise be per-access, not per-miss.
	freeWaiters [][]uint64
	defq        []deferred

	// One fetched-but-undispatched instruction (held across stalls).
	held    trace.Instr
	hasHeld bool

	// frozen parks the core for sampled fast-forward: Tick only advances
	// the clock and NextEvent reports no events, so the memory system can
	// drain in-flight work without the core dispatching or retiring.
	frozen bool

	// Event-driven clocking state: lastTick is the last cycle Tick ran;
	// the skip* fields, latched by NextEvent, describe the per-cycle
	// counter effects of the provably-inert cycles between ticks so that
	// Tick's catch-up reproduces them exactly (see NextEvent).
	lastTick int64
	// skipStallDefer is the number of deferred accesses that are
	// MSHR-blocked with a completed producer; each adds one StallMSHR per
	// skipped cycle (issueDeferred retries them every cycle).
	skipStallDefer int
	// skipDispatchStallFrom is the first cycle from which a held,
	// MSHR-blocked memory instruction adds one StallMSHR per skipped cycle
	// (once the token bucket reaches a full token); MaxInt64 when N/A.
	skipDispatchStallFrom int64

	stats Stats

	// Measurement bookkeeping.
	target          uint64 // retired-instruction target for this phase
	FinishCycle     int64  // cycle the target was reached (-1 while running)
	retiredAtFinish uint64 // snapshot of Retired at FinishCycle
	measureStart    int64
}

// New builds a core. mshrs bounds outstanding memory-line misses; ipcCap
// bounds the average dispatch rate (<= 0 means the full machine width).
func New(id int, gen trace.Generator, hier Hierarchy, mshrs int, ipcCap float64) *Core {
	if mshrs < 1 {
		mshrs = 16
	}
	if ipcCap <= 0 || ipcCap > width {
		ipcCap = width
	}
	return &Core{
		ID:                    id,
		gen:                   gen,
		hier:                  hier,
		mshrs:                 mshrs,
		ipcCap:                ipcCap,
		tokenReadyAt:          -1,
		pending:               make([]missSlot, 0, mshrs),
		FinishCycle:           -1,
		skipDispatchStallFrom: math.MaxInt64,
	}
}

// SetTarget arms the retirement target; FinishCycle records when the
// core's retired count (since the last ResetStats) reaches it.
func (c *Core) SetTarget(instr uint64) {
	c.target = instr
	c.FinishCycle = -1
}

// Done reports whether the retirement target has been reached.
func (c *Core) Done() bool { return c.FinishCycle >= 0 }

// Stats returns the activity counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes counters at the warmup/measure boundary.
func (c *Core) ResetStats(now int64) {
	c.stats = Stats{}
	c.measureStart = now
	c.FinishCycle = -1
}

// IPC returns retired instructions per cycle since the last reset. Once
// the retirement target has been reached, the rate freezes at that point:
// the core keeps executing (to sustain memory pressure for slower cores)
// but the extra retirement must not inflate its measured IPC.
func (c *Core) IPC(now int64) float64 {
	end, retired := now, c.stats.Retired
	if c.FinishCycle >= 0 {
		end, retired = c.FinishCycle, c.retiredAtFinish
	}
	span := end - c.measureStart
	if span <= 0 {
		return 0
	}
	return float64(retired) / float64(span)
}

// robAt returns the entry for a sequence number.
func (c *Core) robAt(seq uint64) *robEntry { return &c.rob[seq%robSize] }

// producerDone reports whether the producer load of a dependency has
// completed by cycle now. A retired producer has necessarily completed.
func (c *Core) producerDone(producer uint64, now int64) bool {
	if producer < c.headSeq {
		return true
	}
	e := c.robAt(producer)
	return e.ready && e.doneAt <= now
}

// Tick advances the core one cycle: resolve deferred issues, retire, and
// dispatch. Cycles skipped since the previous Tick (the event-driven loop
// only ticks the core at cycles NextEvent reported) are caught up first;
// re-ticking an already-simulated cycle is a no-op.
func (c *Core) Tick(now int64) {
	if now <= c.lastTick {
		return
	}
	if c.frozen {
		c.lastTick = now
		return
	}
	if now-c.lastTick > 1 {
		c.catchUp(now)
	}
	c.lastTick = now
	c.issueDeferred(now)
	c.retire(now)
	c.dispatch(now)
}

// catchUp applies the per-cycle effects of the inert cycles in
// (lastTick, now) exactly as the cycle-by-cycle loop would have: MSHR-stall
// counters advance for accesses that would have retried and stalled every
// cycle. (Token accrual needs no catch-up: the closed-form bucket is a
// function of the cycle number, not of how often Tick ran.) The skip*
// fields were latched by NextEvent when the skip began; the core's
// architectural state is unchanged over the window by construction
// (otherwise NextEvent would have scheduled an earlier tick).
func (c *Core) catchUp(now int64) {
	skipped := now - c.lastTick - 1
	c.stats.StallMSHR += uint64(c.skipStallDefer) * uint64(skipped)
	if from := c.skipDispatchStallFrom; from < now {
		lo := c.lastTick + 1
		if from > lo {
			lo = from
		}
		// One dispatch stall per cycle in [lo, now-1]; the tick at `now`
		// counts its own.
		if n := now - lo; n > 0 {
			c.stats.StallMSHR += uint64(n)
		}
	}
}

// NextEvent returns the earliest cycle after `now` at which Tick could
// change core state beyond token-bucket accrual and MSHR-stall counting
// (which Tick's catch-up reproduces in bulk), or math.MaxInt64 when the
// core is fully blocked waiting for a memory response (ResolveMiss). The
// returned bound is conservative: an earlier tick is always harmless, a
// later one never happens. Must be called right after Tick(now); it also
// latches the per-skipped-cycle stall accounting used by catchUp.
func (c *Core) NextEvent(now int64) int64 {
	next := int64(math.MaxInt64)
	c.skipStallDefer = 0
	c.skipDispatchStallFrom = math.MaxInt64
	if c.frozen {
		return next
	}

	// Retirement: the ROB head's completion unblocks retire (and, the same
	// cycle, dispatch if the ROB is full). A head already complete means
	// this tick retired a full width and more are ready: next cycle.
	if c.headSeq < c.tailSeq {
		if e := c.robAt(c.headSeq); e.ready {
			t := e.doneAt
			if t <= now {
				t = now + 1
			}
			if t < next {
				next = t
			}
		}
	}

	// Deferred accesses: issue when their producer completes. An entry
	// whose producer is already done survived this tick's issue pass; if it
	// is still MSHR-blocked it retries (and counts a stall) every cycle
	// until an external fill frees an MSHR. An MSHR may however have been
	// freed *after* the issue pass — the cycle barrier resolves same-cycle
	// LLC hits between Tick and NextEvent — so re-check before latching the
	// per-skipped-cycle stall.
	for i := range c.defq {
		d := &c.defq[i]
		if c.producerDone(d.producer, now) {
			line := memreq.LineAddr(d.addr)
			if c.findMiss(line) >= 0 || len(c.pending) < c.mshrs {
				if now+1 < next {
					next = now + 1
				}
			} else {
				c.skipStallDefer++
			}
			continue
		}
		if e := c.robAt(d.producer); e.ready && e.doneAt < math.MaxInt64 {
			t := e.doneAt
			if t <= now {
				t = now + 1
			}
			if t < next {
				next = t
			}
		}
	}

	// Dispatch: the next cycle the token bucket holds a full token, the
	// core processes an instruction — unless the ROB is full (covered by
	// the retirement candidate: dispatch resumes the cycle the head
	// retires) or the held memory instruction is MSHR-blocked (external
	// wait, stalling every token-ready cycle).
	if c.tailSeq-c.headSeq < robSize {
		t := c.nextDispatchCycle(now)
		blocked := false
		if c.hasHeld && c.held.IsMem {
			line := memreq.LineAddr(c.held.Addr)
			producer, have := c.lastDepSeq, c.haveDep
			if !have {
				producer, have = c.lastLoadSeq, c.haveLastLoad
			}
			// A dependent access with an incomplete producer defers
			// (a state change) instead of stalling; only a
			// straight-line MSHR miss blocks dispatch outright.
			defers := c.held.Dependent && have && !c.producerDone(producer, t)
			if c.findMiss(line) < 0 && len(c.pending) >= c.mshrs && !defers {
				blocked = true
				c.skipDispatchStallFrom = t
			}
		}
		if !blocked && t < next {
			next = t
		}
	}
	return next
}

// tokensAt evaluates the closed-form token balance at cycle now. It is a
// pure function of (tokenBase, tokenBaseCycle, now), so event-driven and
// cycle-by-cycle clocking compute bit-identical balances regardless of
// which cycles the core was actually ticked at.
func (c *Core) tokensAt(now int64) float64 {
	t := c.tokenBase + float64(now-c.tokenBaseCycle)*c.ipcCap
	if t > width { // bucket depth: at most one full-width burst
		t = width
	}
	return t
}

// nextDispatchCycle returns the first cycle after now whose closed-form
// accrual reaches a full token. The threshold depends only on the rebase
// state, so it is computed once per token consumption and memoized.
func (c *Core) nextDispatchCycle(now int64) int64 {
	if c.tokenReadyAt < 0 {
		c.tokenReadyAt = c.computeTokenReady()
	}
	if c.tokenReadyAt <= now {
		return now + 1
	}
	return c.tokenReadyAt
}

// computeTokenReady locates the first cycle the accrual banks a full
// token. The division lands within one cycle of the answer; the correction
// loops pin it to the exact cycle tokensAt reports, so the bound agrees
// bit-for-bit with dispatch's own check.
func (c *Core) computeTokenReady() int64 {
	need := 1 - c.tokenBase
	if need <= 0 {
		return c.tokenBaseCycle // a full token is already banked
	}
	x := c.tokenBaseCycle + int64(math.Ceil(need/c.ipcCap))
	for x > c.tokenBaseCycle && c.tokensAt(x-1) >= 1 {
		x--
	}
	for c.tokensAt(x) < 1 {
		x++
	}
	return x
}

func (c *Core) issueDeferred(now int64) {
	// Issue in order; stop at the first MSHR stall to preserve the chain.
	n := 0
	for _, d := range c.defq {
		if !c.producerDone(d.producer, now) {
			c.defq[n] = d
			n++
			continue
		}
		if !c.tryIssueMem(d.seq, d.addr, d.pc, d.store, now) {
			c.stats.StallMSHR++
			c.defq[n] = d
			n++
			continue
		}
	}
	c.defq = c.defq[:n]
}

func (c *Core) retire(now int64) {
	for i := 0; i < width && c.headSeq < c.tailSeq; i++ {
		e := c.robAt(c.headSeq)
		if !e.ready || e.doneAt > now {
			return
		}
		c.headSeq++
		c.stats.Retired++
		if c.FinishCycle < 0 && c.target > 0 && c.stats.Retired >= c.target {
			c.FinishCycle = now
			c.retiredAtFinish = c.stats.Retired
		}
	}
}

func (c *Core) dispatch(now int64) {
	tokens, spent := c.dispatchLoop(now, c.tokensAt(now))
	// Rebase the closed form only when tokens were consumed: the accrual
	// expression then stays anchored at the same (base, cycle) pair in
	// both clocking modes, so float rounding cannot diverge between them.
	if spent {
		c.tokenBase = tokens
		c.tokenBaseCycle = now
		c.tokenReadyAt = -1
	}
}

// dispatchLoop processes up to `width` instructions and returns the
// remaining token balance plus whether any were consumed. Split from
// dispatch so the early returns (ILP limit, ROB full, structural stall)
// need no deferred rebase closure on the per-cycle path.
func (c *Core) dispatchLoop(now int64, tokens float64) (float64, bool) {
	spent := false
	for i := 0; i < width; i++ {
		if tokens < 1 {
			return tokens, spent // ILP limit this cycle
		}
		if c.tailSeq-c.headSeq >= robSize {
			return tokens, spent // ROB full
		}
		if !c.hasHeld {
			c.gen.Next(&c.held)
			c.hasHeld = true
		}
		ins := &c.held

		if !ins.IsMem {
			seq := c.alloc()
			e := c.robAt(seq)
			lat := int64(ins.ExecLat)
			if lat < 1 {
				lat = 1
			}
			e.ready = true
			e.doneAt = now + lat
			tokens--
			spent = true
			c.hasHeld = false
			continue
		}

		// Memory instruction.
		line := memreq.LineAddr(ins.Addr)
		producer, haveProducer := c.lastDepSeq, c.haveDep
		if !haveProducer {
			producer, haveProducer = c.lastLoadSeq, c.haveLastLoad
		}
		if ins.Dependent && haveProducer && !c.producerDone(producer, now) {
			// Allocate the ROB slot; defer the access until the producer
			// completes.
			seq := c.alloc()
			e := c.robAt(seq)
			if ins.IsStore {
				// Stores retire through the store buffer regardless.
				e.ready = true
				e.doneAt = now + 1
				c.stats.Stores++
			} else {
				e.ready = false
				e.doneAt = math.MaxInt64
				c.stats.Loads++
			}
			c.defq = append(c.defq, deferred{
				seq: seq, producer: producer,
				addr: ins.Addr, pc: ins.PC, store: ins.IsStore,
			})
			if !ins.IsStore {
				c.lastLoadSeq = seq
				c.haveLastLoad = true
				c.lastDepSeq = seq
				c.haveDep = true
			}
			tokens--
			spent = true
			c.hasHeld = false
			continue
		}

		// Check the MSHR budget before committing to the access; merges
		// into an in-flight line are always allowed.
		if c.findMiss(line) < 0 && len(c.pending) >= c.mshrs {
			c.stats.StallMSHR++
			return tokens, spent // structural stall: retry next cycle
		}

		seq := c.alloc()
		if ins.IsStore {
			c.stats.Stores++
			e := c.robAt(seq)
			e.ready = true
			e.doneAt = now + 1
		} else {
			c.stats.Loads++
			c.lastLoadSeq = seq
			c.haveLastLoad = true
			if ins.Dependent {
				c.lastDepSeq = seq
				c.haveDep = true
			}
		}
		c.startMem(seq, ins.Addr, ins.PC, ins.IsStore, now)
		tokens--
		spent = true
		c.hasHeld = false
	}
	return tokens, spent
}

// alloc reserves the next ROB slot.
func (c *Core) alloc() uint64 {
	seq := c.tailSeq
	c.tailSeq++
	*c.robAt(seq) = robEntry{}
	return seq
}

// startMem performs the access for a memory instruction whose MSHR check
// has passed. Store ROB entries are completed at their dispatch site
// (store-buffer semantics); startMem never touches them, since a deferred
// store may issue after its ROB slot has been retired and recycled.
func (c *Core) startMem(seq uint64, addr, pc uint64, store bool, now int64) {
	line := memreq.LineAddr(addr)

	if i := c.findMiss(line); i >= 0 {
		// Merge into the in-flight miss.
		s := &c.pending[i]
		if store {
			s.dirty = true
		} else {
			e := c.robAt(seq)
			e.ready = false
			e.doneAt = math.MaxInt64
			s.waiters = append(s.waiters, seq)
		}
		return
	}

	res := c.hier.Access(c.ID, addr, pc, store, now)
	if !res.Async {
		if !store {
			e := c.robAt(seq)
			e.ready = true
			e.doneAt = res.When
		}
		return
	}

	var w []uint64
	if !store {
		e := c.robAt(seq)
		e.ready = false
		e.doneAt = math.MaxInt64
		if n := len(c.freeWaiters); n > 0 {
			w = c.freeWaiters[n-1]
			c.freeWaiters = c.freeWaiters[:n-1]
		}
		w = append(w, seq)
	}
	c.pending = append(c.pending, missSlot{line: line, dirty: store, waiters: w})
}

// tryIssueMem issues a deferred access, honoring the MSHR budget. It
// returns false on a structural stall.
func (c *Core) tryIssueMem(seq uint64, addr, pc uint64, store bool, now int64) bool {
	line := memreq.LineAddr(addr)
	if c.findMiss(line) < 0 && len(c.pending) >= c.mshrs {
		return false
	}
	c.startMem(seq, addr, pc, store, now)
	return true
}

// ResolveMiss is called by the hierarchy when the fill for line completes;
// `when` is the cycle data reaches the core. It returns whether the fill
// must install dirty (a store merged into the miss) and releases the MSHR.
func (c *Core) ResolveMiss(line uint64, when int64) (dirty bool) {
	idx := c.findMiss(line)
	if idx < 0 {
		return false
	}
	s := c.pending[idx]
	last := len(c.pending) - 1
	c.pending[idx] = c.pending[last]
	c.pending[last] = missSlot{}
	c.pending = c.pending[:last]
	for _, seq := range s.waiters {
		if seq < c.headSeq {
			continue // already retired (shouldn't happen; defensive)
		}
		e := c.robAt(seq)
		e.ready = true
		e.doneAt = when
	}
	if s.waiters != nil {
		c.freeWaiters = append(c.freeWaiters, s.waiters[:0])
	}
	return s.dirty
}

// findMiss returns the MSHR index holding line, or -1. The MSHR set is
// tiny (≤16 entries), so a linear scan beats a map lookup on the hot path.
func (c *Core) findMiss(line uint64) int {
	for i := range c.pending {
		if c.pending[i].line == line {
			return i
		}
	}
	return -1
}

// OutstandingMisses reports the in-flight miss count (tests).
func (c *Core) OutstandingMisses() int { return len(c.pending) }

// MeasureStart returns the cycle of the last stats reset.
func (c *Core) MeasureStart() int64 { return c.measureStart }

// RetiredAtFinish returns the retired-count snapshot taken the cycle the
// retirement target was reached (meaningful only once Done reports true).
func (c *Core) RetiredAtFinish() uint64 { return c.retiredAtFinish }

// SetFrozen parks or resumes the core for sampled fast-forward. While
// frozen, Tick only advances the core's clock (no dispatch, retirement, or
// stall accounting) and NextEvent reports no upcoming events, letting the
// event-driven loop jump the clock while the memory system drains in-flight
// work. ResolveMiss still lands fills normally, so outstanding misses
// complete during the freeze and the core resumes from a quiesced window
// boundary. Both transitions clear the latched skip-stall accounting:
// frozen cycles are architecturally inert by construction and must not be
// retro-counted as stalls when the core thaws.
func (c *Core) SetFrozen(on bool) {
	c.frozen = on
	c.skipStallDefer = 0
	c.skipDispatchStallFrom = math.MaxInt64
}

// Gen exposes the instruction generator (for functional cache warmup).
func (c *Core) Gen() trace.Generator { return c.gen }
