package cpu

import (
	"testing"

	"coaxial/internal/memreq"
	"coaxial/internal/trace"
)

// scriptGen replays a fixed instruction list, then pads with no-ops.
type scriptGen struct {
	instrs []trace.Instr
	pos    int
}

func (g *scriptGen) Name() string { return "script" }
func (g *scriptGen) Next(ins *trace.Instr) {
	if g.pos < len(g.instrs) {
		*ins = g.instrs[g.pos]
		g.pos++
		return
	}
	*ins = trace.Instr{ExecLat: 1}
}

// stubHier is a controllable memory hierarchy: every first-touch access is
// async with a fixed latency, resolved by pump().
type stubHier struct {
	lat      int64
	core     *Core
	inflight map[uint64]int64 // line -> completion cycle
	accesses []uint64
	syncHit  bool // if set, respond synchronously at now+4 instead
}

func (h *stubHier) Access(core int, addr, pc uint64, store bool, now int64) PathResult {
	line := memreq.LineAddr(addr)
	h.accesses = append(h.accesses, line)
	if h.syncHit {
		return PathResult{When: now + 4}
	}
	h.inflight[line] = now + h.lat
	return PathResult{Async: true}
}

// pump delivers due completions.
func (h *stubHier) pump(now int64) {
	for line, at := range h.inflight {
		if at <= now {
			delete(h.inflight, line)
			h.core.ResolveMiss(line, at)
		}
	}
}

func newTestCore(instrs []trace.Instr, lat int64, mshrs int, cap float64) (*Core, *stubHier) {
	h := &stubHier{lat: lat, inflight: map[uint64]int64{}}
	c := New(0, &scriptGen{instrs: instrs}, h, mshrs, cap)
	h.core = c
	return c, h
}

// run advances the core by `cycles` from where the previous run left off.
var runClock = map[*Core]int64{}

func run(c *Core, h *stubHier, cycles int64) {
	start := runClock[c]
	for now := start + 1; now <= start+cycles; now++ {
		h.pump(now)
		c.Tick(now)
	}
	runClock[c] += cycles
}

func TestComputeOnlyIPC(t *testing.T) {
	c, h := newTestCore(nil, 0, 16, 0) // all no-ops, full width
	c.SetTarget(4000)
	run(c, h, 1100)
	if !c.Done() {
		t.Fatalf("4000 no-ops not retired in 1100 cycles (retired %d)", c.Stats().Retired)
	}
	ipc := c.IPC(1100)
	if ipc < 3.5 || ipc > 4.01 {
		t.Errorf("compute IPC = %.2f, want ~4", ipc)
	}
}

func TestIPCCapBinds(t *testing.T) {
	c, h := newTestCore(nil, 0, 16, 0.5)
	c.SetTarget(1000)
	run(c, h, 2100)
	if !c.Done() {
		t.Fatalf("target not reached; retired %d", c.Stats().Retired)
	}
	ipc := float64(1000) / float64(c.FinishCycle)
	if ipc > 0.55 || ipc < 0.40 {
		t.Errorf("capped IPC = %.3f, want ~0.5", ipc)
	}
}

func TestLoadBlocksRetirement(t *testing.T) {
	instrs := []trace.Instr{
		{IsMem: true, Addr: 0x1000, PC: 1, ExecLat: 1},
	}
	c, h := newTestCore(instrs, 200, 16, 0)
	c.SetTarget(1)
	run(c, h, 150)
	if c.Done() {
		t.Fatal("load retired before its data returned")
	}
	run(c, h, 100) // total 250 > 200
	if !c.Done() {
		t.Fatal("load never retired after completion")
	}
}

func TestStoreRetiresImmediately(t *testing.T) {
	instrs := []trace.Instr{
		{IsMem: true, IsStore: true, Addr: 0x2000, PC: 1, ExecLat: 1},
	}
	c, h := newTestCore(instrs, 1_000_000, 16, 0) // memory "never" returns
	c.SetTarget(1)
	run(c, h, 10)
	if !c.Done() {
		t.Error("store must retire through the store buffer without waiting")
	}
	if len(h.accesses) != 1 {
		t.Errorf("store RFO not issued: %d accesses", len(h.accesses))
	}
}

func TestMSHRMergeSameLine(t *testing.T) {
	instrs := []trace.Instr{
		{IsMem: true, Addr: 0x3000, PC: 1, ExecLat: 1},
		{IsMem: true, Addr: 0x3008, PC: 2, ExecLat: 1}, // same line
		{IsMem: true, Addr: 0x3010, PC: 3, ExecLat: 1}, // same line
	}
	c, h := newTestCore(instrs, 100, 16, 0)
	c.SetTarget(3)
	run(c, h, 200)
	if !c.Done() {
		t.Fatal("merged loads never completed")
	}
	if len(h.accesses) != 1 {
		t.Errorf("same-line loads issued %d hierarchy accesses, want 1", len(h.accesses))
	}
}

func TestMSHRLimitStallsDispatch(t *testing.T) {
	var instrs []trace.Instr
	for i := 0; i < 32; i++ {
		instrs = append(instrs, trace.Instr{IsMem: true, Addr: uint64(i) * 4096, PC: 1, ExecLat: 1})
	}
	c, h := newTestCore(instrs, 1000, 4, 0)
	run(c, h, 100)
	if got := c.OutstandingMisses(); got > 4 {
		t.Errorf("outstanding misses %d exceed MSHR limit 4", got)
	}
	if c.Stats().StallMSHR == 0 {
		t.Error("expected MSHR stalls")
	}
}

func TestDependentLoadSerializes(t *testing.T) {
	// Two dependent loads to distinct lines: the second may not issue
	// until the first completes.
	instrs := []trace.Instr{
		{IsMem: true, Addr: 0x1000, PC: 1, Dependent: true, ExecLat: 1},
		{IsMem: true, Addr: 0x2000, PC: 2, Dependent: true, ExecLat: 1},
	}
	c, h := newTestCore(instrs, 100, 16, 0)
	c.SetTarget(2)
	run(c, h, 90) // before the producer completes at ~101
	if len(h.accesses) != 1 {
		t.Fatalf("dependent load issued early: %d accesses by cycle 90", len(h.accesses))
	}
	run(c, h, 60) // past first completion at ~101
	if len(h.accesses) != 2 {
		t.Fatalf("dependent load never issued")
	}
	run(c, h, 100)
	if !c.Done() {
		t.Error("chain did not retire")
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// N independent loads should complete in ~1 latency, not N.
	var instrs []trace.Instr
	for i := 0; i < 8; i++ {
		instrs = append(instrs, trace.Instr{IsMem: true, Addr: uint64(i) * 4096, PC: 1, ExecLat: 1})
	}
	c, h := newTestCore(instrs, 100, 16, 0)
	c.SetTarget(8)
	run(c, h, 130)
	if !c.Done() {
		t.Errorf("8 independent loads (lat 100) not done by cycle 130; retired %d", c.Stats().Retired)
	}
}

func TestROBCapacityLimitsWindow(t *testing.T) {
	// One very slow load followed by compute: retirement blocks at the
	// load, so at most robSize instructions dispatch.
	instrs := []trace.Instr{{IsMem: true, Addr: 0x7000, PC: 1, ExecLat: 1}}
	c, h := newTestCore(instrs, 1_000_000, 16, 0)
	run(c, h, 2000)
	if got := c.Stats().Retired; got != 0 {
		t.Errorf("retired %d past a blocked head", got)
	}
	// tail-head <= robSize by construction; verify dispatch stopped.
	if c.tailSeq-c.headSeq > robSize {
		t.Errorf("ROB overfilled: %d", c.tailSeq-c.headSeq)
	}
	if c.tailSeq-c.headSeq < robSize {
		t.Errorf("ROB should be full while blocked, has %d", c.tailSeq-c.headSeq)
	}
}

func TestSyncHitFastPath(t *testing.T) {
	instrs := []trace.Instr{{IsMem: true, Addr: 0x100, PC: 1, ExecLat: 1}}
	c, h := newTestCore(instrs, 0, 16, 0)
	h.syncHit = true
	c.SetTarget(1)
	run(c, h, 10)
	if !c.Done() {
		t.Error("sync hit did not retire quickly")
	}
}

func TestStatsAndReset(t *testing.T) {
	instrs := []trace.Instr{
		{IsMem: true, Addr: 0x1, PC: 1, ExecLat: 1},
		{IsMem: true, IsStore: true, Addr: 0x4000, PC: 2, ExecLat: 1},
		{ExecLat: 1},
	}
	c, h := newTestCore(instrs, 10, 16, 0)
	c.SetTarget(3)
	run(c, h, 100)
	st := c.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Errorf("loads/stores = %d/%d", st.Loads, st.Stores)
	}
	c.ResetStats(100)
	if c.Stats().Retired != 0 || c.MeasureStart() != 100 {
		t.Error("reset incomplete")
	}
	if c.IPC(100) != 0 {
		t.Error("IPC with empty window must be 0")
	}
}

func TestResolveUnknownLineHarmless(t *testing.T) {
	c, _ := newTestCore(nil, 10, 16, 0)
	if dirty := c.ResolveMiss(0xDEAD000, 5); dirty {
		t.Error("unknown line resolve returned dirty")
	}
}

func TestDependentStoreDoesNotCorruptROB(t *testing.T) {
	// A dependent store defers its access but retires immediately; when
	// the deferred access finally issues, it must not touch the (long
	// recycled) ROB slot. Regression test for the slot-reuse hazard.
	instrs := []trace.Instr{
		{IsMem: true, Addr: 0x1000, PC: 1, Dependent: true, ExecLat: 1},
		{IsMem: true, IsStore: true, Addr: 0x2000, PC: 2, Dependent: true, ExecLat: 1},
	}
	// Pad with compute so the ROB recycles the store's slot before the
	// producer load completes.
	for i := 0; i < 600; i++ {
		instrs = append(instrs, trace.Instr{ExecLat: 1})
	}
	c, h := newTestCore(instrs, 400, 16, 0)
	c.SetTarget(uint64(len(instrs)))
	run(c, h, 3000)
	if !c.Done() {
		t.Fatalf("stream did not retire; retired=%d", c.Stats().Retired)
	}
	if len(h.accesses) != 2 {
		t.Errorf("expected 2 accesses (load + deferred store RFO), got %d", len(h.accesses))
	}
}
