package cpu

import "testing"

// TestComputeTokenReadyClosedForm pins the closed-form next-full-token
// computation against a naive cycle-at-a-time scan of tokensAt over a grid
// of rebase states. The two must agree exactly: nextDispatchCycle feeds
// NextEvent, and TestClockingEquivalence depends on event-driven and
// cycle-driven clocking dispatching on the same cycles.
func TestComputeTokenReadyClosedForm(t *testing.T) {
	ipcCaps := []float64{0.1, 0.25, 1.0 / 3.0, 0.5, 0.7, 0.9, 1.0, 1.3, 1.7, 2.0, 3.0, 4.0}
	bases := []float64{-7.25, -3.5, -1.0, -0.6, -1.0 / 3.0, 0, 0.2, 0.5, 0.999, 1.0, 1.5, 3.9, 4.0}
	baseCycles := []int64{0, 1, 17, 1_000_003}

	for _, cap := range ipcCaps {
		for _, base := range bases {
			for _, bc := range baseCycles {
				c := &Core{ipcCap: cap, tokenBase: base, tokenBaseCycle: bc}

				// Naive reference: step cycle by cycle from the rebase
				// point until the accrual banks a full token.
				naive := bc
				for c.tokensAt(naive) < 1 {
					naive++
					if naive-bc > 1_000 {
						t.Fatalf("ipcCap=%v base=%v: no full token within 1000 cycles", cap, base)
					}
				}

				got := c.computeTokenReady()
				if got != naive {
					t.Errorf("ipcCap=%v base=%v baseCycle=%d: computeTokenReady=%d, naive scan=%d",
						cap, base, bc, got, naive)
				}
			}
		}
	}
}

// TestNextDispatchCycleMemo pins nextDispatchCycle's contract: it memoizes
// computeTokenReady under the -1 sentinel and never returns a cycle at or
// before now.
func TestNextDispatchCycleMemo(t *testing.T) {
	c := &Core{ipcCap: 0.25, tokenBase: 0, tokenBaseCycle: 100, tokenReadyAt: -1}
	ready := c.computeTokenReady() // 104: four quarter-tokens
	if ready != 104 {
		t.Fatalf("computeTokenReady = %d, want 104", ready)
	}
	if got := c.nextDispatchCycle(100); got != ready {
		t.Fatalf("nextDispatchCycle(100) = %d, want %d", got, ready)
	}
	if c.tokenReadyAt != ready {
		t.Fatalf("memo not populated: tokenReadyAt = %d", c.tokenReadyAt)
	}
	// Once the threshold passes, the next candidate is always now+1.
	if got := c.nextDispatchCycle(ready); got != ready+1 {
		t.Fatalf("nextDispatchCycle(%d) = %d, want %d", ready, got, ready+1)
	}
	// A stale memo must not be recomputed while valid: poke it and observe
	// the poked value flows through.
	c.tokenReadyAt = 200
	if got := c.nextDispatchCycle(100); got != 200 {
		t.Fatalf("memoized value ignored: got %d, want 200", got)
	}
}
